package ridgewalker_test

import (
	"strings"
	"testing"

	"ridgewalker"
)

func TestPublicQuickstartFlow(t *testing.T) {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Balanced(10, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 20
	qs, err := ridgewalker.RandomQueries(g, cfg, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := ridgewalker.Simulate(g, qs, ridgewalker.SimOptions{Walk: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if stats.QueriesDone != 200 || res.Steps == 0 {
		t.Fatalf("done=%d steps=%d", stats.QueriesDone, res.Steps)
	}
	if stats.ThroughputMSteps() <= 0 {
		t.Fatal("no throughput reported")
	}
}

func TestPublicSoftwareEngineMatchesParallel(t *testing.T) {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Graph500(10, 6, 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 15
	qs, err := ridgewalker.RandomQueries(g, cfg, 100, 9)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ridgewalker.Walk(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := ridgewalker.WalkParallel(g, qs, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Steps != par.Steps {
		t.Fatalf("sequential %d steps vs parallel %d", seq.Steps, par.Steps)
	}
	counts := ridgewalker.VisitCounts(g, seq)
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no visits counted")
	}
}

func TestPublicGraphIO(t *testing.T) {
	g, err := ridgewalker.NewGraph(3, []ridgewalker.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/g.rwg"
	if err := ridgewalker.SaveGraph(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ridgewalker.LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices != 3 || g2.NumEdges() != 2 {
		t.Fatalf("round trip lost data: %d vertices %d edges", g2.NumVertices, g2.NumEdges())
	}
	g3, err := ridgewalker.ParseEdgeList(strings.NewReader("0 1\n1 2\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != 2 {
		t.Fatal("edge list parse failed")
	}
}

func TestPublicPlatforms(t *testing.T) {
	p, err := ridgewalker.PlatformByName("U55C")
	if err != nil || p.Channels != 32 {
		t.Fatalf("U55C lookup: %+v %v", p, err)
	}
	if len(ridgewalker.Datasets()) != 6 {
		t.Fatalf("want 6 dataset twins, got %d", len(ridgewalker.Datasets()))
	}
	if _, err := ridgewalker.DatasetByName("WG"); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAblationSwitches(t *testing.T) {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Graph500(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 20
	qs, err := ridgewalker.RandomQueries(g, cfg, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := ridgewalker.Simulate(g, qs, ridgewalker.SimOptions{Walk: cfg, DiscardPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	_, base, err := ridgewalker.Simulate(g, qs, ridgewalker.SimOptions{
		Walk: cfg, DiscardPaths: true, DisableAsync: true, DisableDynamicSched: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.ThroughputMSteps() <= base.ThroughputMSteps() {
		t.Fatalf("full (%.1f) not faster than baseline (%.1f)",
			full.ThroughputMSteps(), base.ThroughputMSteps())
	}
}
