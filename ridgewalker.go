// Package ridgewalker is a library for high-throughput graph random walks
// (GRWs), reproducing "RidgeWalker: Perfectly Pipelined Graph Random Walks
// on FPGAs" (HPCA 2026).
//
// It provides four layers:
//
//   - A graph substrate: CSR graphs, RMAT and dataset-twin generators,
//     binary serialization, and SNAP edge-list parsing.
//   - A software GRW engine (Walk, WalkParallel) implementing URW, PPR,
//     DeepWalk, Node2Vec and MetaPath with the paper's sampling algorithms
//     (uniform, alias, rejection, reservoir — Table I), plus a sharded
//     variant (WalkSharded, backend "cpu-sharded") that partitions the
//     graph into edge-balanced shards with per-shard worker pools and
//     batched walker migration across partition boundaries, and a
//     step-interleaved variant (WalkPipelined, backend "cpu-pipelined")
//     that decomposes each hop into batched Gather/Sample/Move stages
//     over cohorts of in-flight walkers so CSR row fetches overlap
//     sampling — the software analogue of the paper's perfectly
//     pipelined datapath. Both compose (Shards with Cohort) and both are
//     byte-identical to Walk for the same seed.
//   - A cycle-level simulation of the RidgeWalker accelerator (Simulate):
//     asynchronous Row-Access/Sampling/Column-Access pipelines over an
//     HBM/DDR channel model, the data-aware task router, and the
//     zero-bubble scheduler, with ablation switches for the paper's
//     Fig. 11 breakdown.
//   - A unified execution layer and serving frontend. Every engine — the
//     CPU engine, the accelerator simulator, and the modeled baseline
//     systems (LightRW, Su et al., FastRW, gSampler) — sits behind one
//     Backend interface and is selected by name (Backends, OpenBackend).
//     Sessions run query batches (Session.Run) or stream each finished
//     walk through a callback without materializing all paths
//     (Session.Stream). Service adds request coalescing (max batch size +
//     linger), cached sessions with a fixed worker pool whose reused path
//     buffers and RNG streams make the CPU hot path allocation-free, and
//     per-backend/per-algorithm served-query metrics.
//
// Quick start:
//
//	g, _ := ridgewalker.GenerateRMAT(ridgewalker.Balanced(14, 8, 1))
//	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
//	qs, _ := ridgewalker.RandomQueries(g, cfg, 1000, 7)
//	res, stats, _ := ridgewalker.Simulate(g, qs, ridgewalker.SimOptions{
//		Platform: ridgewalker.U55C, Walk: cfg,
//	})
//	fmt.Printf("%.0f MStep/s (%.0f%% of Eq.(1) peak)\n",
//		stats.ThroughputMSteps(), 100*stats.Eq1Utilization())
//	_ = res.Paths
//
// Serving:
//
//	svc, _ := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Backend: "cpu"})
//	defer svc.Close()
//	res, _ := svc.Submit(ctx, cfg, qs)        // batched with concurrent callers
//	_ = svc.Stream(ctx, cfg, qs, func(w ridgewalker.WalkOutput) error {
//		return nil // w.Path is valid during the callback only
//	})
package ridgewalker

import (
	"context"
	"errors"
	"fmt"
	"io"

	"ridgewalker/internal/admit"
	"ridgewalker/internal/core"
	"ridgewalker/internal/exec"
	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/plan"
	"ridgewalker/internal/walk"
)

// Graph is a compressed-sparse-row graph (see internal/graph for methods:
// Degree, Neighbors, HasEdge, Validate, AttachWeights, AttachLabels, ...).
type Graph = graph.CSR

// Edge is a directed edge for graph construction.
type Edge = graph.Edge

// VertexID identifies a vertex.
type VertexID = graph.VertexID

// RMATConfig parameterizes the RMAT generator.
type RMATConfig = graph.RMATConfig

// DatasetSpec describes a scaled twin of one of the paper's datasets.
type DatasetSpec = graph.DatasetSpec

// NewGraph builds a CSR graph from an edge list.
func NewGraph(numVertices int, edges []Edge, directed bool) (*Graph, error) {
	return graph.Build(numVertices, edges, directed)
}

// GenerateRMAT produces an RMAT graph.
func GenerateRMAT(cfg RMATConfig) (*Graph, error) { return graph.GenerateRMAT(cfg) }

// Balanced returns the balanced RMAT initiator (a=b=c=d=0.25).
func Balanced(scale, edgeFactor int, seed uint64) RMATConfig {
	return graph.Balanced(scale, edgeFactor, seed)
}

// Graph500 returns the skewed Graph500 RMAT initiator.
func Graph500(scale, edgeFactor int, seed uint64) RMATConfig {
	return graph.Graph500(scale, edgeFactor, seed)
}

// Datasets lists the scaled twins of the paper's Table II datasets.
func Datasets() []DatasetSpec { return graph.Datasets }

// DatasetByName returns a twin spec by its paper abbreviation (WG, CP, AS,
// LJ, AB, UK).
func DatasetByName(name string) (DatasetSpec, error) { return graph.DatasetByName(name) }

// LoadGraph reads a graph in the package binary format.
func LoadGraph(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraph writes a graph in the package binary format.
func SaveGraph(path string, g *Graph) error { return graph.SaveFile(path, g) }

// ParseEdgeList reads a SNAP-style whitespace edge list.
func ParseEdgeList(r io.Reader, directed bool) (*Graph, error) {
	return graph.ParseEdgeList(r, directed)
}

// VersionedGraph wraps an immutable base Graph with per-vertex delta
// overlays so edges can be inserted and deleted while walk sessions are
// serving: mutations advance an epoch, GraphSnapshot pins one, and
// Compact folds the deltas into a fresh base CSR. Service embeds one
// around its graph; use NewVersionedGraph for direct engine access.
type VersionedGraph = graph.Versioned

// GraphSnapshot is an immutable epoch-pinned view of a VersionedGraph,
// servable through BackendConfig.Snapshot.
type GraphSnapshot = graph.Snapshot

// GraphVersionStats is a VersionedGraph's mutation accounting.
type GraphVersionStats = graph.VersionStats

// NewVersionedGraph wraps g for in-place edge mutation with epoch-pinned
// snapshot serving.
func NewVersionedGraph(g *Graph) *VersionedGraph { return graph.NewVersioned(g) }

// Algorithm selects the GRW variant.
type Algorithm = walk.Algorithm

// GRW algorithm variants (paper §VIII-A4).
const (
	URW      = walk.URW
	PPR      = walk.PPR
	DeepWalk = walk.DeepWalk
	Node2Vec = walk.Node2Vec
	MetaPath = walk.MetaPath
)

// WalkConfig selects the GRW algorithm and parameters.
type WalkConfig = walk.Config

// Lane is a serving priority class (WalkConfig.Lane). It is scheduling
// metadata only — the Service admits and drains interactive traffic
// ahead of bulk, but a walk's trajectory never depends on its lane.
type Lane = walk.Lane

// Serving priority lanes.
const (
	// LaneInteractive is the latency-sensitive lane (the default).
	LaneInteractive = walk.LaneInteractive
	// LaneBulk is the throughput lane for corpus jobs.
	LaneBulk = walk.LaneBulk
)

// TenantQuota is a per-tenant token-bucket allowance (see ServiceConfig
// TenantQuota and TenantQuotas): QPS queries per second of sustained
// refill, Burst queries of instantaneous depth. The zero value is
// unlimited.
type TenantQuota = admit.Quota

// AdmissionCounter tallies admission outcomes in queries: Admitted
// passed the gate, Shed were rejected at admission (budget or quota),
// Expired were admitted but completed after every submitter's context
// was gone.
type AdmissionCounter = admit.Counters

// AdmissionStats is a point-in-time snapshot of the Service admission
// controller (Service.AdmissionStatus): the current in-flight budget,
// admitted-but-unfinished query count, EWMA service rate, feedback
// window, and per-lane/per-tenant outcome counters.
type AdmissionStats = admit.Stats

// AutoInFlight, as ServiceConfig.MaxInFlight, derives the in-flight
// budget from the observed service rate via the paper's Theorem VI.1
// feedback-depth math instead of a static cap.
const AutoInFlight = admit.Auto

// Serving sentinel errors, matchable with errors.Is through any
// wrapping the Service applies.
var (
	// ErrOverloaded rejects a Submit/Stream that would exceed the
	// admission budget or provably cannot meet its deadline. Shed
	// requests fail in microseconds — retry with backoff or downgrade
	// to LaneBulk.
	ErrOverloaded = admit.ErrOverloaded
	// ErrQuotaExceeded rejects a Submit/Stream whose tenant token
	// bucket has run dry; other tenants are unaffected.
	ErrQuotaExceeded = admit.ErrQuotaExceeded
	// ErrServiceClosed rejects work submitted after Service.Close.
	ErrServiceClosed = errors.New("ridgewalker: service is closed")
	// ErrEngineFault marks a contained engine crash: a panic inside a
	// backend (or an injected fault) was caught at a containment
	// boundary and delivered to the affected submitters as a typed
	// error. The service keeps serving; the faulted session is
	// discarded, the query class's circuit breaker advances, and
	// repeatedly-faulting queries are quarantined.
	ErrEngineFault = fault.ErrEngineFault
	// ErrQuarantined rejects a Submit/Stream carrying a query that has
	// already caused ServiceConfig.QuarantineThreshold engine faults — a
	// deterministic poison query cannot keep crashing fresh sessions.
	ErrQuarantined = errors.New("ridgewalker: query quarantined after repeated engine faults")
	// ErrEngineStalled wraps a batch the watchdog canceled for making no
	// engine progress (heartbeat stopped advancing).
	ErrEngineStalled = errors.New("ridgewalker: engine stalled (watchdog)")
)

// Query is one random-walk request.
type Query = walk.Query

// Result carries walk paths and the total step count.
type Result = walk.Result

// DefaultWalkConfig returns the paper's standard configuration for alg
// (length 80; α=0.2 for PPR; p=2, q=0.5 for Node2Vec).
func DefaultWalkConfig(alg Algorithm) WalkConfig { return walk.DefaultConfig(alg) }

// RandomQueries draws start vertices uniformly from eligible vertices.
func RandomQueries(g *Graph, cfg WalkConfig, n int, seed uint64) ([]Query, error) {
	return walk.RandomQueries(g, cfg, n, seed)
}

// Walk runs the software reference engine sequentially. It is a thin
// wrapper over the "cpu" execution backend with one worker.
func Walk(g *Graph, queries []Query, cfg WalkConfig) (*Result, error) {
	return runCPU(g, queries, cfg, 1)
}

// WalkParallel runs the software engine across worker goroutines; the
// result is byte-identical to Walk for the same seed.
func WalkParallel(g *Graph, queries []Query, cfg WalkConfig, workers int) (*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("ridgewalker: workers %d, want >= 1", workers)
	}
	return runCPU(g, queries, cfg, workers)
}

// WalkSharded runs the partitioned software engine: the graph is split
// into shards edge-balanced partitions, each owning a worker pool, and
// walkers migrate between shards through batched mailbox hand-offs when a
// hop crosses a partition boundary. The result is byte-identical to Walk
// for the same seed at any shard count. It is a thin wrapper over the
// "cpu-sharded" execution backend; shards may be 0 for the backend's
// default.
func WalkSharded(g *Graph, queries []Query, cfg WalkConfig, shards int) (*Result, error) {
	ses, err := exec.Open("cpu-sharded", g, exec.Config{Walk: cfg, Shards: shards})
	if err != nil {
		return nil, err
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: queries})
	if err != nil {
		return nil, err
	}
	return &Result{Paths: res.Paths, Steps: res.Steps}, nil
}

// WalkPipelined runs the step-interleaved software engine: each worker
// advances a cohort of in-flight walks together through batched
// Gather/Sample/Move stages, so one walk's CSR row fetch overlaps the
// sampling and move work of the others instead of stalling its own next
// hop. The result is byte-identical to Walk for the same seed at any
// cohort size. It is a thin wrapper over the "cpu-pipelined" execution
// backend; cohort may be 0 for the backend's default.
func WalkPipelined(g *Graph, queries []Query, cfg WalkConfig, cohort int) (*Result, error) {
	ses, err := exec.Open("cpu-pipelined", g, exec.Config{Walk: cfg, Cohort: cohort})
	if err != nil {
		return nil, err
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: queries})
	if err != nil {
		return nil, err
	}
	return &Result{Paths: res.Paths, Steps: res.Steps}, nil
}

func runCPU(g *Graph, queries []Query, cfg WalkConfig, workers int) (*Result, error) {
	ses, err := exec.Open("cpu", g, exec.Config{Walk: cfg, Workers: workers})
	if err != nil {
		return nil, err
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: queries})
	if err != nil {
		return nil, err
	}
	return &Result{Paths: res.Paths, Steps: res.Steps}, nil
}

// VisitCounts tallies per-vertex visit counts over a result.
func VisitCounts(g *Graph, res *Result) []int64 { return walk.VisitCounts(g, res) }

// Platform describes an accelerator board's memory system and clock.
type Platform = hbm.Platform

// Evaluation platforms (paper §VIII-A, Table III).
var (
	U55C    = hbm.U55C
	U50     = hbm.U50
	U280    = hbm.U280
	U250    = hbm.U250
	VCK5000 = hbm.VCK5000
)

// PlatformByName looks up a platform ("U55C", "U50", "U280", "U250",
// "VCK5000").
func PlatformByName(name string) (Platform, error) { return hbm.PlatformByName(name) }

// SimOptions configures an accelerator simulation.
type SimOptions struct {
	// Platform selects the memory system (default U55C).
	Platform Platform
	// Walk selects the GRW algorithm (required).
	Walk WalkConfig
	// Async and DynamicSched are the Fig. 11 ablation switches; both
	// default to true (full RidgeWalker). Set DisableAsync /
	// DisableDynamicSched to turn one off.
	DisableAsync        bool
	DisableDynamicSched bool
	// RecordPaths keeps full paths in the result (default true). Disable
	// for throughput studies on large workloads.
	DiscardPaths bool
}

// SimStats reports simulated accelerator performance.
type SimStats = core.Stats

// Simulate runs the query batch on the cycle-level RidgeWalker model and
// returns the walks plus simulated performance statistics. It is a thin
// wrapper over the "ridgewalker" execution backend; paths come back in
// query order.
func Simulate(g *Graph, queries []Query, opts SimOptions) (*Result, *SimStats, error) {
	ses, err := exec.Open("ridgewalker", g, exec.Config{
		Walk:                opts.Walk,
		Platform:            opts.Platform,
		DisableAsync:        opts.DisableAsync,
		DisableDynamicSched: opts.DisableDynamicSched,
		DiscardPaths:        opts.DiscardPaths,
	})
	if err != nil {
		return nil, nil, err
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: queries})
	if err != nil {
		return nil, nil, err
	}
	return &Result{Paths: res.Paths, Steps: res.Steps}, res.Sim, nil
}

// Execution layer: every engine in the repository behind one interface.
// See internal/exec for the contract; Service for the serving frontend.
type (
	// Backend is a named execution engine ("cpu", "cpu-sharded",
	// "cpu-pipelined", "ridgewalker", "lightrw", "suetal", "fastrw",
	// "gsampler").
	Backend = exec.Backend
	// Session is a backend bound to a graph and configuration, reusable
	// across batches and safe for concurrent use.
	Session = exec.Session
	// Batch is one unit of submitted work.
	Batch = exec.Batch
	// BatchResult aggregates a Session.Run call; simulator-backed
	// backends attach cycle-level stats (Sim) and baseline backends
	// attach modeled performance (Model).
	BatchResult = exec.BatchResult
	// WalkOutput is one finished walk delivered through a Stream
	// callback; its Path is valid only during the callback.
	WalkOutput = exec.WalkOutput
	// BackendConfig configures OpenBackend.
	BackendConfig = exec.Config
	// MemoryReport is a tiered session's placement accounting, attached
	// to BatchResult when the session was opened with a nonzero
	// MemoryBudgetBytes.
	MemoryReport = exec.MemoryReport
	// PlanOptions tune the "auto" backend's planner: calibration on/off,
	// probe seed and sizes, subgraph bound, and the drift thresholds
	// that trigger online re-planning (see BackendConfig.Plan and
	// ServiceConfig.Plan).
	PlanOptions = plan.Options
	// PlanReport is the resolved execution decision attached to
	// BatchResult (and available via the PlanReporter capability) for
	// sessions opened through the "auto" backend.
	PlanReport = exec.PlanReport
	// PlanClassStatus is one query class's planning state, reported by
	// Service.PlanStatus: the chosen plan, predicted vs observed
	// steps/sec, and the drift-triggered recalibration count.
	PlanClassStatus = plan.ClassStatus
)

// ExplainPlan renders the "auto" backend's full decision record for a
// configuration without opening a session: the graph statistics, every
// probed candidate's measured steps/sec (when cfg.Plan enables
// calibration), and the chosen plan. The CLI's -explain-plan flag is a
// thin wrapper over this.
func ExplainPlan(g *Graph, cfg BackendConfig) (string, error) {
	return exec.NewPlanner(g, cfg).Explain(cfg.Walk)
}

// SessionPlan returns the resolved execution plan of a session opened
// through the "auto" backend (nil, false for manually selected
// backends) — the chosen engine and shape plus predicted vs observed
// steps/sec so the planner's choice is inspectable, not a black box.
func SessionPlan(s Session) (*PlanReport, bool) {
	pr, ok := s.(exec.PlanReporter)
	if !ok {
		return nil, false
	}
	return pr.PlanReport(), true
}

// AutoMemoryBudget returns a fit-the-hubs default memory budget for g:
// large enough that the high-degree rows carrying the bulk of a
// power-law walk's traffic stay uncompressed, small enough that the
// compressed cold tail dominates the resident savings. Pass it to
// BackendConfig/ServiceConfig MemoryBudgetBytes.
func AutoMemoryBudget(g *Graph) int64 { return graph.AutoMemoryBudget(g) }

// Backends lists the registered execution backend names.
func Backends() []string { return exec.Names() }

// BackendByName returns a registered execution backend.
func BackendByName(name string) (Backend, error) { return exec.Lookup(name) }

// BackendSupportsMemoryTiering reports whether the named backend honors
// the MemoryBudgetBytes knob (tiered graph + sampler stores).
func BackendSupportsMemoryTiering(name string) bool { return exec.SupportsMemoryTiering(name) }

// BackendSupportsVersionedGraphs reports whether the named backend can
// serve a GraphSnapshot (BackendConfig.Snapshot). Backends without the
// capability reject snapshots at open; compact the graph first.
func BackendSupportsVersionedGraphs(name string) bool { return exec.SupportsVersionedGraphs(name) }

// OpenBackend binds a named execution backend to a graph, performing all
// per-workload setup (sampler construction, simulator instantiation,
// worker allocation) once; the session then runs any number of batches.
func OpenBackend(name string, g *Graph, cfg BackendConfig) (Session, error) {
	return exec.Open(name, g, cfg)
}

// Fault injection and fault-isolation surface. The library threads named
// injection points through its engine hot paths (sampler build, cold-row
// decode, shard ring hand-off, dispatcher flush, calibration probes,
// batch execution); arming one makes the point fail — as a typed error
// or a panic — on a deterministic schedule, exercising the same
// containment, breaker, quarantine, and watchdog machinery a real crash
// would. Disarmed points cost one atomic load. The chaos tests and the
// CLI's -chaos flag are built on this.
type (
	// FaultPoint names an injection point (see FaultPoints).
	FaultPoint = fault.Point
	// FaultSpec schedules an armed point: error or panic mode, fire
	// cadence (Every/After/Limit), and an optional backend tag filter.
	FaultSpec = fault.Spec
	// BreakerStatus is one query class's circuit-breaker state
	// (FaultReport.Breakers).
	BreakerStatus = fault.BreakerStatus
)

// FaultPoints lists every named injection point.
func FaultPoints() []FaultPoint { return fault.Points() }

// EnableFaultInjection arms one injection point. Panics on an unknown
// point or invalid spec (it is a test/chaos facility — misconfiguration
// should fail loudly).
func EnableFaultInjection(p FaultPoint, spec FaultSpec) { fault.Enable(p, spec) }

// DisableFaultInjection disarms every injection point and clears their
// schedules and counters.
func DisableFaultInjection() { fault.Reset() }

// ParseFaultInjection parses a comma-separated chaos directive like
//
//	"batch-exec=panic:tag=cpu-pipelined:every=100,cold-decode=error:after=5"
//
// and arms the named points, returning them. This is the CLI -chaos
// flag's format; see internal/fault.ParseSpec for the grammar. Parsing
// is all-or-nothing: on error no point is armed.
func ParseFaultInjection(directive string) ([]FaultPoint, error) { return fault.ParseSpecs(directive) }

// FaultInjectionCounts reports, per armed injection point, how many
// times it has fired.
func FaultInjectionCounts() map[FaultPoint]int64 { return fault.Counts() }
