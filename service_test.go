package ridgewalker_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ridgewalker"
)

func serviceTestGraph(t testing.TB) *ridgewalker.Graph {
	t.Helper()
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Graph500(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	g.AttachLabels(3)
	return g
}

// TestServiceMatchesGoldenEngine asserts Service output — both Submit and
// Stream — is byte-identical to Walk (the golden engine) for the same seed
// across all five algorithms.
func TestServiceMatchesGoldenEngine(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Backend: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	for _, alg := range []ridgewalker.Algorithm{
		ridgewalker.URW, ridgewalker.PPR, ridgewalker.DeepWalk,
		ridgewalker.Node2Vec, ridgewalker.MetaPath,
	} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := ridgewalker.DefaultWalkConfig(alg)
			cfg.WalkLength = 20
			cfg.Seed = 11
			qs, err := ridgewalker.RandomQueries(g, cfg, 250, 17)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ridgewalker.Walk(g, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := svc.Submit(ctx, cfg, qs)
			if err != nil {
				t.Fatal(err)
			}
			if got.Steps != want.Steps || !reflect.DeepEqual(got.Paths, want.Paths) {
				t.Fatal("Submit output differs from Walk")
			}
			streamed := make([][]ridgewalker.VertexID, len(qs))
			err = svc.Stream(ctx, cfg, qs, func(w ridgewalker.WalkOutput) error {
				cp := make([]ridgewalker.VertexID, len(w.Path))
				copy(cp, w.Path)
				streamed[w.Query] = cp
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(streamed, want.Paths) {
				t.Fatal("Stream output differs from Walk")
			}
		})
	}
}

// TestServiceConcurrentDeterminism submits many concurrent requests that
// coalesce into shared batches and checks every requester gets exactly the
// result a solo run would produce — batching must never bleed across
// requests.
func TestServiceConcurrentDeterminism(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:  "cpu",
		MaxBatch: 512,
		Linger:   2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 15
	cfg.Seed = 7
	// 24 requests with distinct (overlapping-ID) query slices.
	const requests = 24
	all, err := ridgewalker.RandomQueries(g, cfg, 120*requests, 23)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*ridgewalker.Result, requests)
	for r := 0; r < requests; r++ {
		want[r], err = ridgewalker.Walk(g, all[r*120:(r+1)*120], cfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	got := make([]*ridgewalker.Result, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			got[r], errs[r] = svc.Submit(context.Background(), cfg, all[r*120:(r+1)*120])
		}(r)
	}
	wg.Wait()
	for r := 0; r < requests; r++ {
		if errs[r] != nil {
			t.Fatalf("request %d: %v", r, errs[r])
		}
		if !reflect.DeepEqual(got[r].Paths, want[r].Paths) {
			t.Fatalf("request %d result depends on batch composition", r)
		}
	}
	m := svc.Metrics()
	c := m.PerAlgorithm["URW"]
	if c.Requests != requests || c.Queries != 120*requests {
		t.Fatalf("metrics: %+v", c)
	}
	if c.Batches >= requests {
		t.Fatalf("no coalescing happened: %d batches for %d requests", c.Batches, requests)
	}
	if m.PerBackend["cpu"].Steps == 0 {
		t.Fatal("no steps recorded")
	}
}

// TestServiceSimulatorBackend serves requests off the cycle-level
// simulator backend.
func TestServiceSimulatorBackend(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator runs are slow")
	}
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Backend: "ridgewalker"})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 15
	qs, err := ridgewalker.RandomQueries(g, cfg, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Submit(context.Background(), cfg, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != len(qs) || res.Steps == 0 {
		t.Fatalf("paths %d steps %d", len(res.Paths), res.Steps)
	}
}

func TestServiceRejectsBadInput(t *testing.T) {
	g := serviceTestGraph(t)
	if _, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Backend: "warp-drive"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	if _, err := svc.Submit(context.Background(), cfg, nil); err == nil {
		t.Fatal("empty request accepted")
	}
	cfg.WalkLength = 0
	qs := []ridgewalker.Query{{ID: 0, Start: 0}}
	if _, err := svc.Submit(context.Background(), cfg, qs); err == nil {
		t.Fatal("invalid walk config accepted")
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	cfg = ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	if _, err := svc.Submit(context.Background(), cfg, qs); err == nil {
		t.Fatal("submit after Close accepted")
	}
	if err := svc.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
}

// TestServiceSessionEviction drives more distinct walk configurations
// than the session cache holds: evicted sessions must be reopened
// transparently with identical results.
func TestServiceSessionEviction(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:     "cpu",
		MaxSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	qs := make([]ridgewalker.Query, 50)
	for i := range qs {
		qs[i] = ridgewalker.Query{ID: uint32(i), Start: 1}
	}
	check := func(seed uint64) {
		cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
		cfg.WalkLength = 10
		cfg.Seed = seed
		want, err := ridgewalker.Walk(g, qs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := svc.Submit(ctx, cfg, qs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Paths, want.Paths) {
			t.Fatalf("seed %d: result differs after session churn", seed)
		}
	}
	for seed := uint64(1); seed <= 5; seed++ {
		check(seed)
	}
	check(1) // evicted by now; must reopen with identical output
	if got := svc.Metrics().PerAlgorithm["URW"].Requests; got != 6 {
		t.Fatalf("requests = %d, want 6", got)
	}
}

func TestBackendsListAndOpen(t *testing.T) {
	names := ridgewalker.Backends()
	if len(names) < 5 {
		t.Fatalf("expected at least 5 backends, got %v", names)
	}
	g := serviceTestGraph(t)
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 10
	qs, err := ridgewalker.RandomQueries(g, cfg, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if strings.HasPrefix(name, "test-") {
			continue // fault-test fixtures registered by service_fault_test.go
		}
		if testing.Short() && name != "cpu" && name != "fastrw" && name != "gsampler" {
			continue
		}
		ses, err := ridgewalker.OpenBackend(name, g, ridgewalker.BackendConfig{Walk: cfg})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := ses.Run(context.Background(), ridgewalker.Batch{Queries: qs})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Steps == 0 {
			t.Fatalf("%s: no steps", name)
		}
		if err := ses.Close(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ridgewalker.BackendByName("cpu"); err != nil {
		t.Fatal(err)
	}
}

// Example-style sanity check that the README quickstart compiles and runs.
func TestServiceQuickstartShape(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Backend: "cpu", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.PPR)
	cfg.WalkLength = 30
	qs, err := ridgewalker.RandomQueries(g, cfg, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	var visits int64
	err = svc.Stream(context.Background(), cfg, qs, func(w ridgewalker.WalkOutput) error {
		visits += int64(len(w.Path))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visits == 0 {
		t.Fatal("no visits")
	}
	m := svc.Metrics()
	if m.PerAlgorithm["PPR"].Queries != 500 {
		t.Fatalf("metrics: %+v", m.PerAlgorithm)
	}
	_ = fmt.Sprintf("%+v", m)
}
