package ridgewalker

// Fault-isolation tests: the chaos matrix (every injection point × the
// CPU engine family, error and panic modes), the circuit breaker's
// demote-then-restore lifecycle, the watchdog, query quarantine, EDF
// flush ordering, per-chunk stream admission leases, and the
// CompactGraph budget handoff. In-package so the tests can reach the
// flush queue, the fault registry, and test-only backends.

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"ridgewalker/internal/exec"
	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
)

func faultTestGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := GenerateRMAT(Balanced(8, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func samePaths(a, b [][]VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestChaosMatrix arms every injection point against every CPU-family
// backend in both modes and asserts the containment contract: the
// service never crashes, failed requests carry the typed engine fault,
// retried and surviving requests are byte-identical to a fault-free
// run, and no admission slot leaks.
func TestChaosMatrix(t *testing.T) {
	g := faultTestGraph(t)
	cfg := DefaultWalkConfig(URW)
	cfg.WalkLength = 16
	cfg.Seed = 3
	qs, err := RandomQueries(g, cfg, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	const reqs = 4
	chunk := len(qs) / reqs
	golden := make([]*Result, reqs)
	for r := range golden {
		res, err := Walk(g, qs[r*chunk:(r+1)*chunk], cfg)
		if err != nil {
			t.Fatal(err)
		}
		golden[r] = res
	}
	backends := []string{"cpu", "cpu-pipelined", "cpu-sharded"}
	modes := []fault.Mode{fault.ModeError, fault.ModePanic}
	for _, backend := range backends {
		for _, point := range fault.Points() {
			for _, mode := range modes {
				name := fmt.Sprintf("%s/%s/%s", backend, point, mode)
				t.Run(name, func(t *testing.T) {
					defer fault.Reset()
					fault.Enable(point, fault.Spec{Mode: mode, Every: 1, Limit: 2})
					svc, err := NewService(g, ServiceConfig{
						Backend: backend,
						Workers: 2,
						// All-cold tiered stores put ColdDecode on the hot path.
						MemoryBudgetBytes:   -1,
						Linger:              100 * time.Microsecond,
						QuarantineThreshold: -1, // retries must pass the front door
						WatchdogInterval:    -1,
					})
					if err != nil {
						t.Fatal(err)
					}
					defer svc.Close()
					results := make([]*Result, reqs)
					errs := make([]error, reqs)
					var wg sync.WaitGroup
					for r := 0; r < reqs; r++ {
						wg.Add(1)
						go func(r int) {
							defer wg.Done()
							results[r], errs[r] = svc.Submit(context.Background(), cfg, qs[r*chunk:(r+1)*chunk])
						}(r)
					}
					wg.Wait()
					// Disarm, then retry every faulted request: recovery must be
					// byte-identical, proving the fault corrupted nothing shared.
					fault.Reset()
					for r := range errs {
						if errs[r] == nil {
							continue
						}
						if !errors.Is(errs[r], ErrEngineFault) {
							t.Fatalf("request %d: error %v, want ErrEngineFault", r, errs[r])
						}
						results[r], errs[r] = svc.Submit(context.Background(), cfg, qs[r*chunk:(r+1)*chunk])
						if errs[r] != nil {
							t.Fatalf("retry %d after fault: %v", r, errs[r])
						}
					}
					for r := range results {
						if !samePaths(results[r].Paths, golden[r].Paths) {
							t.Fatalf("request %d: paths differ from fault-free run", r)
						}
					}
					if got := svc.AdmissionStatus().InFlight; got != 0 {
						t.Fatalf("leaked admission slots: inflight=%d, want 0", got)
					}
				})
			}
		}
	}
}

// TestServiceBreakerDemoteRestore pins the breaker lifecycle end to end
// under the "auto" backend: consecutive engine faults demote the class
// to the cpu engine, the demoted plan serves cleanly (byte-identical),
// and after the cooldown a half-open re-probe restores the original
// plan.
func TestServiceBreakerDemoteRestore(t *testing.T) {
	defer fault.Reset()
	g := faultTestGraph(t)
	cfg := DefaultWalkConfig(URW)
	cfg.WalkLength = 8
	cfg.Seed = 5
	qs, err := RandomQueries(g, cfg, 8, 13)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := Walk(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(g, ServiceConfig{
		Backend:             "auto",
		Workers:             2,
		Plan:                &PlanOptions{}, // stats-only: no start-up micro-bench
		BreakerThreshold:    2,
		BreakerCooldown:     50 * time.Millisecond,
		QuarantineThreshold: -1,
		WatchdogInterval:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	classStatus := func() PlanClassStatus {
		for _, st := range svc.PlanStatus() {
			if st.Class.Algorithm == cfg.Algorithm {
				return st
			}
		}
		t.Fatal("class not planned")
		return PlanClassStatus{}
	}
	// Healthy baseline resolves the original plan.
	res, err := svc.Submit(ctx, cfg, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !samePaths(res.Paths, golden.Paths) {
		t.Fatal("healthy run differs from Walk")
	}
	orig := classStatus().Plan
	// Two faulted dispatches (Limit 1 per arm keeps exactly one fire per
	// submission regardless of worker count) trip the threshold-2 breaker.
	for i := 0; i < 2; i++ {
		fault.Enable(fault.BatchExec, fault.Spec{Mode: fault.ModePanic, Limit: 1})
		if _, err := svc.Submit(ctx, cfg, qs); !errors.Is(err, ErrEngineFault) {
			t.Fatalf("fault %d: error %v, want ErrEngineFault", i, err)
		}
	}
	fault.Reset()
	st := classStatus()
	if !st.Demoted {
		t.Fatal("class not demoted after breaker tripped")
	}
	if st.Plan.Backend != "cpu" || st.Plan.Source != "demoted" {
		t.Fatalf("demoted plan %s (source %s), want cpu/demoted", st.Plan.Backend, st.Plan.Source)
	}
	if got := svc.FaultStatus().BreakerOpens; got != 1 {
		t.Fatalf("breaker opens %d, want 1", got)
	}
	// The demoted plan serves — and serves byte-identically.
	res, err = svc.Submit(ctx, cfg, qs)
	if err != nil {
		t.Fatalf("demoted serving: %v", err)
	}
	if !samePaths(res.Paths, golden.Paths) {
		t.Fatal("demoted run differs from Walk")
	}
	if classStatus().Plan.Source != "demoted" {
		t.Fatal("breaker half-opened before its cooldown")
	}
	// Past the cooldown the next submission re-probes and restores.
	time.Sleep(70 * time.Millisecond)
	res, err = svc.Submit(ctx, cfg, qs)
	if err != nil {
		t.Fatalf("restored serving: %v", err)
	}
	if !samePaths(res.Paths, golden.Paths) {
		t.Fatal("restored run differs from Walk")
	}
	st = classStatus()
	if st.Demoted || st.Plan.Source != "restored" {
		t.Fatalf("plan source %s (demoted=%v), want restored", st.Plan.Source, st.Demoted)
	}
	if st.Plan.Backend != orig.Backend {
		t.Fatalf("restored backend %s, want original %s", st.Plan.Backend, orig.Backend)
	}
	if got := svc.AdmissionStatus().InFlight; got != 0 {
		t.Fatalf("leaked admission slots: inflight=%d", got)
	}
}

// wedgeBackend is a heartbeat-capable test engine that never makes
// progress: Run parks on the batch context until the watchdog cancels
// it.
type wedgeBackend struct{}

func (wedgeBackend) Name() string        { return "test-wedge" }
func (wedgeBackend) Description() string { return "test backend that wedges until canceled" }
func (wedgeBackend) Open(g *graph.CSR, cfg exec.Config) (exec.Session, error) {
	return wedgeSession{}, nil
}
func (wedgeBackend) MergesBatches() bool { return true }
func (wedgeBackend) Heartbeats() bool    { return true }

type wedgeSession struct{}

func (wedgeSession) Run(ctx context.Context, b exec.Batch) (*exec.BatchResult, error) {
	<-ctx.Done()
	return nil, ctx.Err()
}

func (wedgeSession) Stream(ctx context.Context, b exec.Batch, fn func(exec.WalkOutput) error) error {
	<-ctx.Done()
	return ctx.Err()
}

func (wedgeSession) Close() error { return nil }

// recorderBackend records the order in which groups reach the engine
// (keyed by walk seed), for the EDF ordering test.
type recorderBackend struct{}

var (
	recordMu sync.Mutex
	recorded []uint64
)

func (recorderBackend) Name() string        { return "test-recorder" }
func (recorderBackend) Description() string { return "test backend that records dispatch order" }
func (recorderBackend) Open(g *graph.CSR, cfg exec.Config) (exec.Session, error) {
	return recorderSession{seed: cfg.Walk.Seed}, nil
}
func (recorderBackend) MergesBatches() bool { return true }

type recorderSession struct{ seed uint64 }

func (s recorderSession) Run(ctx context.Context, b exec.Batch) (*exec.BatchResult, error) {
	recordMu.Lock()
	recorded = append(recorded, s.seed)
	recordMu.Unlock()
	paths := make([][]graph.VertexID, len(b.Queries))
	for i, q := range b.Queries {
		paths[i] = []graph.VertexID{q.Start}
	}
	return &exec.BatchResult{Paths: paths}, nil
}

func (s recorderSession) Stream(ctx context.Context, b exec.Batch, fn func(exec.WalkOutput) error) error {
	return errors.New("test-recorder: no stream")
}

func (recorderSession) Close() error { return nil }

func init() {
	exec.Register(wedgeBackend{})
	exec.Register(recorderBackend{})
}

// TestWatchdogKillsStalledGroup pins the watchdog path: a group on a
// heartbeat-capable engine that makes no progress is canceled after two
// scans, its submitter gets ErrEngineStalled, the shed queries are
// accounted as watchdog kills, and a diagnostic snapshot is recorded.
func TestWatchdogKillsStalledGroup(t *testing.T) {
	g := faultTestGraph(t)
	cfg := DefaultWalkConfig(URW)
	cfg.WalkLength = 8
	cfg.Seed = 9
	qs, err := RandomQueries(g, cfg, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(g, ServiceConfig{
		Backend:          "test-wedge",
		Workers:          1,
		WatchdogInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	_, err = svc.Submit(context.Background(), cfg, qs)
	if !errors.Is(err, ErrEngineStalled) {
		t.Fatalf("error %v, want ErrEngineStalled", err)
	}
	ast := svc.AdmissionStatus()
	if got := ast.PerLane["interactive"].WatchdogKilled; got != int64(len(qs)) {
		t.Fatalf("watchdog-killed %d, want %d", got, len(qs))
	}
	if got := ast.InFlight; got != 0 {
		t.Fatalf("leaked admission slots: inflight=%d", got)
	}
	fr := svc.FaultStatus()
	if len(fr.Watchdog) != 1 {
		t.Fatalf("watchdog events %d, want 1", len(fr.Watchdog))
	}
	ev := fr.Watchdog[0]
	if ev.Backend != "test-wedge" || ev.Lane != "interactive" || ev.Queries != len(qs) {
		t.Fatalf("watchdog event %+v", ev)
	}
}

// TestQuarantineAfterRepeatedFaults pins the poison-query path: a query
// that faults the engine QuarantineThreshold times is rejected with
// ErrQuarantined — even after the fault clears — while other queries
// keep serving.
func TestQuarantineAfterRepeatedFaults(t *testing.T) {
	defer fault.Reset()
	g := faultTestGraph(t)
	cfg := DefaultWalkConfig(URW)
	cfg.WalkLength = 8
	cfg.Seed = 21
	qs, err := RandomQueries(g, cfg, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(g, ServiceConfig{
		Backend:             "cpu",
		Workers:             1,
		QuarantineThreshold: 2,
		WatchdogInterval:    -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	poison := qs[:1]
	fault.Enable(fault.BatchExec, fault.Spec{Mode: fault.ModeError, Tag: "cpu"})
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(ctx, cfg, poison); !errors.Is(err, ErrEngineFault) {
			t.Fatalf("fault %d: error %v, want ErrEngineFault", i, err)
		}
	}
	if _, err := svc.Submit(ctx, cfg, poison); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("error %v, want ErrQuarantined", err)
	}
	fault.Reset()
	// The fault is gone: other queries serve, the poison stays out.
	if _, err := svc.Submit(ctx, cfg, qs[1:2]); err != nil {
		t.Fatalf("healthy query after quarantine: %v", err)
	}
	if _, err := svc.Submit(ctx, cfg, poison); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("error %v, want ErrQuarantined to persist", err)
	}
	ast := svc.AdmissionStatus()
	lane := ast.PerLane["interactive"]
	if lane.Faulted != 2 || lane.Quarantined != 2 {
		t.Fatalf("lane counters faulted=%d quarantined=%d, want 2/2", lane.Faulted, lane.Quarantined)
	}
	if got := svc.FaultStatus().QuarantinedQueries; got != 1 {
		t.Fatalf("quarantined queries %d, want 1", got)
	}
	if got := ast.InFlight; got != 0 {
		t.Fatalf("leaked admission slots: inflight=%d", got)
	}
}

// TestEDFFlushHeapOrder pins the lane-local dispatch order pure-unit:
// deadlined groups before deadline-free ones, earliest deadline first,
// FIFO among equals.
func TestEDFFlushHeapOrder(t *testing.T) {
	base := time.Unix(1000, 0)
	var h flushHeap
	push := func(key string, seq int64, dl time.Duration) {
		j := flushJob{key: key, seq: seq}
		if dl != 0 {
			j.deadline, j.hasDL = base.Add(dl), true
		}
		heap.Push(&h, j)
	}
	push("a", 1, 0)
	push("b", 2, 2*time.Second)
	push("c", 3, time.Second)
	push("d", 4, 0)
	push("e", 5, time.Second)
	want := []string{"c", "e", "b", "a", "d"}
	for i, w := range want {
		got := heap.Pop(&h).(flushJob).key
		if got != w {
			t.Fatalf("pop %d: %s, want %s", i, got, w)
		}
	}
}

// TestEDFDispatchOrder pins EDF ordering through the real flush path:
// with the dispatcher paused, three groups with (none, late, early)
// deadlines queue up; on resume a single worker must run them
// earliest-deadline-first with the deadline-free group last.
func TestEDFDispatchOrder(t *testing.T) {
	g := faultTestGraph(t)
	base := DefaultWalkConfig(URW)
	base.WalkLength = 4
	qs, err := RandomQueries(g, base, 2, 29)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(g, ServiceConfig{
		Backend:          "test-recorder",
		Workers:          1,
		Linger:           time.Millisecond,
		WatchdogInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	recordMu.Lock()
	recorded = nil
	recordMu.Unlock()
	svc.pauseFlush()
	var wg sync.WaitGroup
	submit := func(seed uint64, deadline time.Duration) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cfg := base
			cfg.Seed = seed // distinct seed → distinct group
			ctx := context.Background()
			if deadline != 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, deadline)
				defer cancel()
			}
			if _, err := svc.Submit(ctx, cfg, qs); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}()
	}
	submit(101, 0)              // no deadline: must run last
	submit(102, 20*time.Second) // late deadline
	submit(103, 10*time.Second) // early deadline: must run first
	deadlineAt := time.Now().Add(5 * time.Second)
	for {
		svc.flushMu.Lock()
		n := len(svc.flushQs[0])
		svc.flushMu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadlineAt) {
			t.Fatalf("groups queued: %d, want 3", n)
		}
		time.Sleep(time.Millisecond)
	}
	svc.resumeFlush()
	wg.Wait()
	recordMu.Lock()
	got := append([]uint64(nil), recorded...)
	recordMu.Unlock()
	want := []uint64{103, 102, 101}
	if len(got) != len(want) {
		t.Fatalf("dispatches %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// TestStreamChunkLeases pins admission-aware streaming: a long Stream
// holds in-flight slots only for the chunk being walked (≤ MaxBatch),
// not the whole request, releases everything at the end, and stays
// byte-identical to the unchunked engine.
func TestStreamChunkLeases(t *testing.T) {
	g := faultTestGraph(t)
	cfg := DefaultWalkConfig(URW)
	cfg.WalkLength = 8
	cfg.Seed = 31
	qs, err := RandomQueries(g, cfg, 16, 37)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := Walk(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(g, ServiceConfig{
		Backend:          "cpu",
		Workers:          1,
		MaxBatch:         4,
		WatchdogInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	maxInFlight := 0
	paths := make([][]VertexID, len(qs))
	err = svc.Stream(context.Background(), cfg, qs, func(w WalkOutput) error {
		if n := svc.AdmissionStatus().InFlight; n > maxInFlight {
			maxInFlight = n
		}
		paths[w.Query] = append([]VertexID(nil), w.Path...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxInFlight == 0 || maxInFlight > 4 {
		t.Fatalf("in-flight during stream %d, want 1..4 (chunk lease)", maxInFlight)
	}
	if got := svc.AdmissionStatus().InFlight; got != 0 {
		t.Fatalf("leaked admission slots: inflight=%d", got)
	}
	if !samePaths(paths, golden.Paths) {
		t.Fatal("chunked stream differs from Walk")
	}
}

// TestCompactGraphResetsAdmitEWMA pins the budget handoff: compaction
// replaces the base graph, so the admission controller's observed
// service rate (and the breaker table) restart from zero.
func TestCompactGraphResetsAdmitEWMA(t *testing.T) {
	g := faultTestGraph(t)
	cfg := DefaultWalkConfig(URW)
	cfg.WalkLength = 8
	cfg.Seed = 41
	qs, err := RandomQueries(g, cfg, 8, 43)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewService(g, ServiceConfig{
		Backend:          "cpu",
		Workers:          1,
		WatchdogInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.Submit(context.Background(), cfg, qs); err != nil {
		t.Fatal(err)
	}
	if rate := svc.AdmissionStatus().ServiceRate; rate == 0 {
		t.Fatal("no observed service rate before compaction")
	}
	svc.CompactGraph()
	if rate := svc.AdmissionStatus().ServiceRate; rate != 0 {
		t.Fatalf("service rate %.1f after compaction, want 0 (re-seed)", rate)
	}
	if n := len(svc.FaultStatus().Breakers); n != 0 {
		t.Fatalf("breaker table %d entries after compaction, want 0", n)
	}
	// And the service keeps serving on the compacted base.
	if _, err := svc.Submit(context.Background(), cfg, qs); err != nil {
		t.Fatalf("post-compaction serving: %v", err)
	}
}
