// Sharded execution: partition a graph into edge-balanced shards, run the
// same workload on the flat cpu backend and the cpu-sharded backend, and
// verify the walks are byte-identical — the sharded engine's per-walker
// RNG streams make its output independent of shard count, worker
// interleaving, and migration order.
//
//	go run ./examples/sharded
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"
	"time"

	"ridgewalker"
)

func main() {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Graph500(16, 16, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 80
	queries, err := ridgewalker.RandomQueries(g, cfg, 20000, 7)
	if err != nil {
		log.Fatal(err)
	}

	run := func(backend string, shards int) *ridgewalker.Result {
		ses, err := ridgewalker.OpenBackend(backend, g, ridgewalker.BackendConfig{
			Walk: cfg, Shards: shards,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ses.Close()
		start := time.Now()
		res, err := ses.Run(context.Background(), ridgewalker.Batch{Queries: queries})
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("%-12s shards=%d: %d steps in %v (%.1f MStep/s)\n",
			backend, shards, res.Steps, el.Round(time.Millisecond),
			float64(res.Steps)/el.Seconds()/1e6)
		return &ridgewalker.Result{Paths: res.Paths, Steps: res.Steps}
	}

	flat := run("cpu", 0)
	for _, shards := range []int{2, 4, 8} {
		sharded := run("cpu-sharded", shards)
		if !reflect.DeepEqual(flat.Paths, sharded.Paths) {
			log.Fatalf("shards=%d: walks diverged from the cpu backend", shards)
		}
	}
	fmt.Println("all shard counts byte-identical to the cpu backend")

	// WalkSharded is the one-call variant of the same engine.
	res, err := ridgewalker.WalkSharded(g, queries[:100], cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WalkSharded: %d walks, %d steps\n", len(res.Paths), res.Steps)
}
