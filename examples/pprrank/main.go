// PPR ranking: estimate personalized-PageRank scores by Monte-Carlo random
// walks (the database workload from the paper's intro — PPR walks with
// teleport termination), then report the top-ranked vertices for a seed
// vertex.
//
// The ranking only needs visit counts, so the walks are streamed through
// the serving layer: each finished walk is folded into the counters and
// its buffer recycled — memory stays O(queries) no matter how many steps
// the workload takes.
//
//	go run ./examples/pprrank
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"ridgewalker"
)

func main() {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Graph500(13, 10, 3))
	if err != nil {
		log.Fatal(err)
	}

	// Pick a well-connected seed vertex.
	var seed ridgewalker.VertexID
	best := 0
	for v := 0; v < g.NumVertices; v++ {
		if d := g.Degree(ridgewalker.VertexID(v)); d > best {
			best = d
			seed = ridgewalker.VertexID(v)
		}
	}
	fmt.Printf("personalizing on vertex %d (degree %d)\n", seed, best)

	// Monte-Carlo PPR: many short walks from the seed; the stationary visit
	// frequency estimates the PPR vector.
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.PPR) // alpha = 0.2
	cfg.WalkLength = 200                                  // effectively unbounded; alpha terminates
	const walks = 20000
	queries := make([]ridgewalker.Query, walks)
	for i := range queries {
		queries[i] = ridgewalker.Query{ID: uint32(i), Start: seed}
	}

	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Backend: "cpu"})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	counts := make([]int64, g.NumVertices)
	var steps int64
	err = svc.Stream(context.Background(), cfg, queries, func(w ridgewalker.WalkOutput) error {
		for _, v := range w.Path {
			counts[v]++
		}
		steps += w.Steps
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d PPR walks (%d steps) without materializing any path\n",
		walks, steps)
	type ranked struct {
		v ridgewalker.VertexID
		c int64
	}
	var rs []ranked
	for v, c := range counts {
		if c > 0 {
			rs = append(rs, ranked{ridgewalker.VertexID(v), c})
		}
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].c > rs[j].c })

	var total int64
	for _, r := range rs {
		total += r.c
	}
	fmt.Println("top-10 PPR estimates:")
	for i := 0; i < 10 && i < len(rs); i++ {
		fmt.Printf("  #%2d vertex %6d  score %.4f\n", i+1, rs[i].v, float64(rs[i].c)/float64(total))
	}
}
