// MetaPath walks on a heterogeneous graph: each hop must land on the next
// vertex type in a cyclic schema (metapath2vec). Walks terminate early when
// no neighbor matches — the workload irregularity that motivates the
// zero-bubble scheduler (paper Fig. 8d).
//
// The example runs the same workload with and without the scheduler to
// show the throughput the dynamic rescheduling recovers.
//
//	go run ./examples/metapath
package main

import (
	"fmt"
	"log"

	"ridgewalker"
)

func main() {
	// A heterogeneous graph: author/paper/venue-style 3-type labeling over
	// a skewed topology, with ThunderRW-style edge weights.
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Graph500(12, 12, 23))
	if err != nil {
		log.Fatal(err)
	}
	g.AttachWeights()
	g.AttachLabels(3)
	fmt.Printf("heterogeneous graph: %d vertices, %d edges, 3 vertex types\n",
		g.NumVertices, g.NumEdges())

	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.MetaPath) // schema 0→1→2→0→...
	cfg.WalkLength = 40
	queries, err := ridgewalker.RandomQueries(g, cfg, 3000, 29)
	if err != nil {
		log.Fatal(err)
	}

	res, full, err := ridgewalker.Simulate(g, queries, ridgewalker.SimOptions{
		Platform: ridgewalker.U250, Walk: cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, static, err := ridgewalker.Simulate(g, queries, ridgewalker.SimOptions{
		Platform: ridgewalker.U250, Walk: cfg,
		DisableDynamicSched: true, DiscardPaths: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	mean := float64(res.Steps) / float64(len(queries))
	fmt.Printf("mean walk length %.1f of %d (schema misses terminate early)\n", mean, cfg.WalkLength)
	fmt.Printf("with zero-bubble scheduler:    %.0f MStep/s\n", full.ThroughputMSteps())
	fmt.Printf("static batches (LightRW-like): %.0f MStep/s\n", static.ThroughputMSteps())
	fmt.Printf("dynamic rescheduling recovers %.1fx under early termination\n",
		full.ThroughputMSteps()/static.ThroughputMSteps())

	// Show a sample walk with its type sequence.
	for _, p := range res.Paths {
		if len(p) >= 6 {
			fmt.Print("sample walk (vertex:type): ")
			for _, v := range p[:6] {
				fmt.Printf("%d:%d ", v, g.Label(v))
			}
			fmt.Println("...")
			break
		}
	}
}
