// Quickstart: build a small graph, run uniform random walks on the
// cycle-level RidgeWalker model, and serve the same workload through the
// batched walk service.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"ridgewalker"
)

func main() {
	// A synthetic power-law graph: 2^12 vertices, ~32k directed edges with
	// the skewed Graph500 initiator — the workload shape GRW accelerators
	// are built for.
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Graph500(12, 8, 1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	// Uniform random walks, 1000 queries of up to 40 hops.
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 40
	queries, err := ridgewalker.RandomQueries(g, cfg, 1000, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Run on the simulated accelerator: 16 asynchronous pipelines over the
	// U55C HBM2 model. (The simulator is not the only pipelined engine —
	// the "cpu-pipelined" backend runs the same Gather/Sample/Move
	// pipelining in software over cohorts of walkers; see below.)
	res, stats, err := ridgewalker.Simulate(g, queries, ridgewalker.SimOptions{
		Platform: ridgewalker.U55C,
		Walk:     cfg,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("completed %d walks, %d total steps\n", stats.QueriesDone, res.Steps)
	fmt.Printf("simulated throughput: %.0f MStep/s (%.0f%% of the Eq.(1) random-access peak)\n",
		stats.ThroughputMSteps(), 100*stats.Eq1Utilization())

	// Walks are ordinary vertex sequences.
	fmt.Printf("first walk: %v\n", res.Paths[0])

	// The same workload on the multi-core software engine gives identical
	// statistics (the simulator is validated against it).
	sw, err := ridgewalker.WalkParallel(g, queries, cfg, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("software engine took %d steps across the same %d queries\n", sw.Steps, len(queries))

	// The step-interleaved software engine — cohorts of walkers advanced
	// together through batched Gather/Sample/Move stages, so CSR row
	// fetches overlap sampling — takes byte-identical walks.
	pl, err := ridgewalker.WalkPipelined(g, queries, cfg, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipelined engine took %d steps (byte-identical walks)\n", pl.Steps)

	// Serving mode: a Service coalesces concurrent requests into shared
	// backend batches. Every engine is available by name ("cpu" here;
	// "ridgewalker", "lightrw", ... — see ridgewalker.Backends()), and each
	// requester gets exactly the walks it asked for, byte-identical to a
	// solo run.
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Backend: "cpu"})
	if err != nil {
		log.Fatal(err)
	}
	defer svc.Close()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			part := queries[r*250 : (r+1)*250]
			res, err := svc.Submit(context.Background(), cfg, part)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("request %d: %d walks, %d steps\n", r, len(res.Paths), res.Steps)
		}(r)
	}
	wg.Wait()
	m := svc.Metrics()
	fmt.Printf("service metrics: %+v over %d batches\n",
		m.PerAlgorithm["URW"], m.PerBackend["cpu"].Batches)
}
