// Node2Vec exploration control: the p/q bias parameters steer walks between
// breadth-first-like (community/homophily) and depth-first-like
// (structural) exploration. This example runs both regimes on the software
// engine and quantifies the difference by how far walks stray from their
// start vertex.
//
//	go run ./examples/node2vec
package main

import (
	"fmt"
	"log"

	"ridgewalker"
)

func main() {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Balanced(12, 10, 5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges (undirected)\n", g.NumVertices, g.NumEdges())

	for _, mode := range []struct {
		name string
		p, q float64
	}{
		{"local (BFS-like: p=4, q=4)", 4, 4},
		{"paper default (p=2, q=0.5)", 2, 0.5},
		{"exploratory (DFS-like: p=0.25, q=0.25)", 0.25, 0.25},
	} {
		cfg := ridgewalker.DefaultWalkConfig(ridgewalker.Node2Vec)
		cfg.WalkLength = 30
		cfg.P, cfg.Q = mode.p, mode.q
		queries, err := ridgewalker.RandomQueries(g, cfg, 2000, 17)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ridgewalker.WalkParallel(g, queries, cfg, 8)
		if err != nil {
			log.Fatal(err)
		}
		// Revisit rate: how often a walk returns to an already-seen vertex —
		// high for local exploration, low for deep exploration.
		var revisits, hops int64
		for _, path := range res.Paths {
			seen := map[ridgewalker.VertexID]bool{}
			for i, v := range path {
				if i > 0 {
					hops++
					if seen[v] {
						revisits++
					}
				}
				seen[v] = true
			}
		}
		// Unique coverage per walk.
		var unique int64
		for _, path := range res.Paths {
			seen := map[ridgewalker.VertexID]bool{}
			for _, v := range path {
				seen[v] = true
			}
			unique += int64(len(seen))
		}
		fmt.Printf("%-42s revisit rate %.1f%%, mean unique vertices/walk %.1f\n",
			mode.name, 100*float64(revisits)/float64(hops),
			float64(unique)/float64(len(res.Paths)))
	}
}
