// DeepWalk corpus generation: weighted (alias-sampled) random walks over a
// graph produce the "sentences" a skip-gram embedding trains on — the
// graph-learning workload where GRW sampling dominates end-to-end time
// (paper intro: >50% of graph-learning pipelines).
//
// This example generates the walk corpus on the accelerator model and
// derives vertex co-occurrence statistics, the direct input to embedding
// training.
//
//	go run ./examples/deepwalk
package main

import (
	"fmt"
	"log"
	"sort"

	"ridgewalker"
)

func main() {
	spec, err := ridgewalker.DatasetByName("WG")
	if err != nil {
		log.Fatal(err)
	}
	spec.Scale -= 4 // quick-run scale
	g, err := spec.Generate(11)
	if err != nil {
		log.Fatal(err)
	}
	g.AttachWeights() // DeepWalk's alias sampler needs edge weights
	fmt.Printf("web-graph twin: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.DeepWalk)
	cfg.WalkLength = 40
	queries, err := ridgewalker.RandomQueries(g, cfg, 3000, 13)
	if err != nil {
		log.Fatal(err)
	}
	corpus, stats, err := ridgewalker.Simulate(g, queries, ridgewalker.SimOptions{
		Platform: ridgewalker.U50, // FastRW's board, for flavor
		Walk:     cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d walks, %d tokens, sampled at %.0f MStep/s (simulated)\n",
		len(corpus.Paths), corpus.Steps, stats.ThroughputMSteps())

	// Skip-gram co-occurrence with window 2: count (center, context) pairs.
	const window = 2
	cooc := map[[2]ridgewalker.VertexID]int{}
	for _, walk := range corpus.Paths {
		for i, center := range walk {
			for d := 1; d <= window; d++ {
				if i+d < len(walk) {
					cooc[[2]ridgewalker.VertexID{center, walk[i+d]}]++
				}
			}
		}
	}
	type pair struct {
		k [2]ridgewalker.VertexID
		n int
	}
	var ps []pair
	for k, n := range cooc {
		ps = append(ps, pair{k, n})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].n > ps[j].n })
	fmt.Printf("distinct co-occurring pairs (window %d): %d\n", window, len(cooc))
	fmt.Println("hottest training pairs:")
	for i := 0; i < 5 && i < len(ps); i++ {
		fmt.Printf("  (%d, %d) × %d\n", ps[i].k[0], ps[i].k[1], ps[i].n)
	}
}
