// Step-interleaved execution: run the same DeepWalk workload on the flat
// cpu backend and the cpu-pipelined backend — which advances a cohort of
// in-flight walkers together through batched Gather/Sample/Move stages so
// CSR row fetches overlap sampling — and verify the walks are
// byte-identical at every cohort size, alone and composed with sharding.
//
//	go run ./examples/pipelined
package main

import (
	"context"
	"fmt"
	"log"
	"reflect"
	"time"

	"ridgewalker"
)

func main() {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Graph500(16, 16, 1))
	if err != nil {
		log.Fatal(err)
	}
	g.AttachWeights() // DeepWalk samples neighbors weight-proportionally
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices, g.NumEdges())

	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.DeepWalk)
	cfg.WalkLength = 80
	queries, err := ridgewalker.RandomQueries(g, cfg, 20000, 7)
	if err != nil {
		log.Fatal(err)
	}

	run := func(backend string, cohort, shards int) *ridgewalker.Result {
		ses, err := ridgewalker.OpenBackend(backend, g, ridgewalker.BackendConfig{
			Walk: cfg, Cohort: cohort, Shards: shards,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ses.Close()
		start := time.Now()
		res, err := ses.Run(context.Background(), ridgewalker.Batch{Queries: queries})
		if err != nil {
			log.Fatal(err)
		}
		el := time.Since(start)
		fmt.Printf("%-13s cohort=%-3d shards=%d: %d steps in %v (%.1f MStep/s)\n",
			backend, cohort, shards, res.Steps, el.Round(time.Millisecond),
			float64(res.Steps)/el.Seconds()/1e6)
		return &ridgewalker.Result{Paths: res.Paths, Steps: res.Steps}
	}

	flat := run("cpu", 0, 0)
	for _, cohort := range []int{16, 64, 256} {
		pipelined := run("cpu-pipelined", cohort, 0)
		if !reflect.DeepEqual(flat.Paths, pipelined.Paths) {
			log.Fatalf("cohort=%d: walks diverged from the cpu backend", cohort)
		}
	}
	// Pipelining composes with sharding: per-shard workers run the same
	// cohort stepper, and walkers migrate between shards mid-cohort.
	composed := run("cpu-pipelined", 64, 4)
	if !reflect.DeepEqual(flat.Paths, composed.Paths) {
		log.Fatal("sharded+pipelined walks diverged from the cpu backend")
	}
	fmt.Println("all cohort sizes (and sharded composition) byte-identical to the cpu backend")

	// WalkPipelined is the one-call variant of the same engine.
	res, err := ridgewalker.WalkPipelined(g, queries[:100], cfg, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WalkPipelined: %d walks, %d steps\n", len(res.Paths), res.Steps)
}
