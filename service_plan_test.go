package ridgewalker_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"ridgewalker"
)

func fastPlanOptions() *ridgewalker.PlanOptions {
	return &ridgewalker.PlanOptions{
		Calibrate: true, Queries: 32, WalkLength: 8, Repeat: 1, SubgraphEdges: -1,
	}
}

// TestServiceAutoBackendMatchesGolden: the default backend is now the
// planner ("auto"); whatever engine it resolves per class, served
// results stay byte-identical to the golden engine, plan status is
// populated per class, and metrics record the resolved engine — never
// the literal "auto".
func TestServiceAutoBackendMatchesGolden(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Plan: fastPlanOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	ctx := context.Background()
	for _, alg := range []ridgewalker.Algorithm{
		ridgewalker.URW, ridgewalker.PPR, ridgewalker.DeepWalk,
		ridgewalker.Node2Vec, ridgewalker.MetaPath,
	} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := ridgewalker.DefaultWalkConfig(alg)
			cfg.WalkLength = 20
			cfg.Seed = 11
			qs, err := ridgewalker.RandomQueries(g, cfg, 250, 17)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ridgewalker.Walk(g, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := svc.Submit(ctx, cfg, qs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Paths, want.Paths) {
				t.Fatal("auto-planned Submit differs from the golden engine")
			}
		})
	}
	st := svc.PlanStatus()
	if len(st) != 5 {
		t.Fatalf("plan status covers %d classes, want 5", len(st))
	}
	for _, ps := range st {
		if ps.Plan.Backend == "" || ps.Plan.Backend == "auto" {
			t.Fatalf("class %s resolved to %q", ps.Class, ps.Plan.Backend)
		}
		if ps.Plan.Source != "calibrated" {
			t.Fatalf("class %s planned from %q, want calibrated", ps.Class, ps.Plan.Source)
		}
		if ps.Observations == 0 {
			t.Fatalf("class %s recorded no served observations", ps.Class)
		}
	}
	m := svc.Metrics()
	if _, ok := m.PerBackend["auto"]; ok {
		t.Fatal(`metrics recorded the literal "auto" instead of the resolved engine`)
	}
	var steps int64
	for _, c := range m.PerBackend {
		steps += c.Steps
	}
	if steps == 0 {
		t.Fatal("no steps recorded under any resolved backend")
	}
}

// TestServiceDriftReplanKeepsResults forces the drift trigger on nearly
// every batch (MinObservations 1, factor barely above 1) and checks the
// machinery under churn: revisions advance, and — the actual contract —
// every re-planned batch still returns byte-identical results, because
// a plan switch re-keys sessions instead of tearing live ones.
func TestServiceDriftReplanKeepsResults(t *testing.T) {
	g := serviceTestGraph(t)
	opts := fastPlanOptions()
	opts.MinObservations = 1
	opts.DriftFactor = 1.000001
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Plan: opts})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.DeepWalk)
	cfg.WalkLength = 12
	cfg.Seed = 5
	qs, err := ridgewalker.RandomQueries(g, cfg, 150, 29)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ridgewalker.Walk(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		got, err := svc.Submit(context.Background(), cfg, qs)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if !reflect.DeepEqual(got.Paths, want.Paths) {
			t.Fatalf("submit %d diverged after a drift re-plan", i)
		}
	}
	for _, ps := range svc.PlanStatus() {
		if ps.Class.Algorithm != ridgewalker.DeepWalk {
			continue
		}
		if ps.Recalibrations == 0 && ps.Plan.Revision == 0 {
			t.Fatal("hair-trigger drift settings never forced a re-plan")
		}
		return
	}
	t.Fatal("DeepWalk class missing from plan status")
}

// TestServiceExplainPlan: the explain surface renders the decision
// record for auto services and refuses manually pinned backends.
func TestServiceExplainPlan(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Plan: fastPlanOptions()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	out, err := svc.ExplainPlan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range []string{"class URW", "graph:", "probe", "plan:"} {
		if !strings.Contains(out, part) {
			t.Fatalf("explain output missing %q:\n%s", part, out)
		}
	}
	pinned, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Backend: "cpu"})
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	if _, err := pinned.ExplainPlan(cfg); err == nil {
		t.Fatal("ExplainPlan on a pinned backend should error")
	}
}
