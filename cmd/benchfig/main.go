// Command benchfig regenerates the paper's tables and figures.
//
// Usage:
//
//	benchfig [-shrink N] [-queries N] [-len N] [-seed N] [-json FILE] all | <id>...
//
// Experiment ids: fig3a fig8a fig8b fig8c fig8d fig9a fig9b fig9c fig9d
// fig10 fig11 tab3 tab4 obs2 micro shard perf. See DESIGN.md §4 for the
// index.
//
// -json runs the software-engine perf suite (the "perf" experiment) and
// additionally writes the machine-readable report to FILE (BENCH.json):
// backend, algorithm, graph, steps/sec, and allocs per walk, plus
// pipelined-vs-cpu throughput ratios — the perf trajectory CI records per
// commit. With -json, listing experiment ids is optional.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ridgewalker/internal/bench"
)

func main() {
	shrink := flag.Int("shrink", 3, "scale levels to shrink dataset twins by (0 = DESIGN.md sizes)")
	queries := flag.Int("queries", 2500, "queries per experiment run")
	length := flag.Int("len", 80, "maximum walk length")
	seed := flag.Uint64("seed", 42, "random seed")
	jsonPath := flag.String("json", "", "run the perf suite and write BENCH.json-style output to this file")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 && *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchfig [flags] all | <experiment-id>...")
		for _, e := range bench.All() {
			fmt.Fprintf(os.Stderr, "  %-7s %s\n", e.ID, e.Title)
		}
		os.Exit(2)
	}
	var exps []bench.Experiment
	if len(args) == 1 && args[0] == "all" {
		exps = bench.All()
	} else {
		for _, id := range args {
			e, err := bench.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	if *jsonPath != "" {
		// -json runs the perf suite itself (below); drop the registered
		// "perf" experiment so it is not run a second time, however it was
		// selected (explicit id or "all").
		kept := exps[:0]
		for _, e := range exps {
			if e.ID != "perf" {
				kept = append(kept, e)
			}
		}
		exps = kept
	}
	c := bench.NewContext(bench.Options{
		Shrink: *shrink, Queries: *queries, WalkLength: *length, Seed: *seed,
	})
	if *jsonPath != "" {
		start := time.Now()
		rep, err := bench.RunPerf(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WritePerfTable(rep, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WritePerfJSON(rep, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[perf completed in %v; wrote %s]\n",
			time.Since(start).Round(time.Millisecond), *jsonPath)
	}
	for _, e := range exps {
		start := time.Now()
		if err := e.Run(c, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
