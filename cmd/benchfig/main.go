// Command benchfig regenerates the paper's tables and figures.
//
// Usage:
//
//	benchfig [-shrink N] [-queries N] [-len N] [-seed N] [-procs LIST]
//	         [-repeat N] [-json FILE] [-baseline FILE] [-regress-tol F]
//	         [-regress-abs] all | <id>...
//
// Experiment ids: fig3a fig8a fig8b fig8c fig8d fig9a fig9b fig9c fig9d
// fig10 fig11 tab3 tab4 obs2 micro shard perf. See DESIGN.md §4 for the
// index.
//
// -json runs the software-engine perf suite (the "perf" experiment) and
// additionally writes the machine-readable report to FILE (BENCH.json):
// backend, algorithm, graph, per-GOMAXPROCS steps/sec, allocs per walk,
// parallel speedups, plus cpu-normalized throughput ratios — the perf
// trajectory CI records per commit. -procs sets the GOMAXPROCS sweep
// (default "1,N"). With -json, listing experiment ids is optional.
//
// -baseline diffs the fresh report against a previously written one and
// exits non-zero when any configuration's throughput regresses more than
// -regress-tol (default 15%). The comparison is cpu-normalized by default
// so it is meaningful across machines; -regress-abs compares raw
// steps/sec instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ridgewalker/internal/bench"
)

// parseProcs parses a comma-separated GOMAXPROCS list ("1,4").
func parseProcs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("benchfig: bad -procs entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	shrink := flag.Int("shrink", 3, "scale levels to shrink dataset twins by (0 = DESIGN.md sizes)")
	queries := flag.Int("queries", 2500, "queries per experiment run")
	length := flag.Int("len", 80, "maximum walk length")
	seed := flag.Uint64("seed", 42, "random seed")
	procsFlag := flag.String("procs", "", "comma-separated GOMAXPROCS sweep for the perf suite (default 1,NumCPU)")
	algsFlag := flag.String("algs", "", "comma-separated perf-suite workloads: urw, ppr, deepwalk, node2vec — deepwalk/node2vec run weighted (default urw,deepwalk)")
	repeat := flag.Int("repeat", 1, "perf suite measurement repetitions per configuration (best kept)")
	jsonPath := flag.String("json", "", "run the perf suite and write BENCH.json-style output to this file")
	baseline := flag.String("baseline", "", "diff the fresh perf report against this BENCH.json and fail on regressions")
	regressTol := flag.Float64("regress-tol", 0.15, "fractional throughput drop tolerated by -baseline")
	regressAbs := flag.Bool("regress-abs", false, "compare raw steps/sec instead of cpu-normalized throughput")
	flag.Parse()
	procs, err := parseProcs(*procsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *baseline != "" && *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "benchfig: -baseline requires -json (the fresh report to compare)")
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 && *jsonPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchfig [flags] all | <experiment-id>...")
		for _, e := range bench.All() {
			fmt.Fprintf(os.Stderr, "  %-7s %s\n", e.ID, e.Title)
		}
		os.Exit(2)
	}
	var exps []bench.Experiment
	if len(args) == 1 && args[0] == "all" {
		exps = bench.All()
	} else {
		for _, id := range args {
			e, err := bench.ByID(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	if *jsonPath != "" {
		// -json runs the perf suite itself (below); drop the registered
		// "perf" experiment so it is not run a second time, however it was
		// selected (explicit id or "all").
		kept := exps[:0]
		for _, e := range exps {
			if e.ID != "perf" {
				kept = append(kept, e)
			}
		}
		exps = kept
	}
	var algs []string
	if *algsFlag != "" {
		for _, a := range strings.Split(*algsFlag, ",") {
			algs = append(algs, strings.TrimSpace(a))
		}
	}
	c := bench.NewContext(bench.Options{
		Shrink: *shrink, Queries: *queries, WalkLength: *length, Seed: *seed,
		Procs: procs, Repeat: *repeat, Algorithms: algs,
	})
	if *jsonPath != "" {
		start := time.Now()
		rep, err := bench.RunPerf(c)
		if err != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WritePerfTable(rep, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WritePerfJSON(rep, *jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "perf: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[perf completed in %v; wrote %s]\n",
			time.Since(start).Round(time.Millisecond), *jsonPath)
		if *baseline != "" {
			old, err := bench.ReadPerfJSON(*baseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "baseline: %v\n", err)
				os.Exit(1)
			}
			regs, compared := bench.ComparePerf(old, rep, *regressTol, *regressAbs)
			if compared == 0 {
				fmt.Fprintf(os.Stderr, "baseline: no comparable records between %s and the fresh report (workload mismatch?)\n", *baseline)
				os.Exit(1)
			}
			if len(regs) > 0 {
				fmt.Fprintf(os.Stderr, "bench regression vs %s (%d records compared):\n", *baseline, compared)
				for _, r := range regs {
					fmt.Fprintf(os.Stderr, "  %s\n", r)
				}
				os.Exit(1)
			}
			fmt.Printf("[bench-regression: %d records within %.0f%% of %s]\n",
				compared, 100**regressTol, *baseline)
		}
	}
	for _, e := range exps {
		start := time.Now()
		if err := e.Run(c, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
