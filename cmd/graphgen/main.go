// Command graphgen generates synthetic graphs — RMAT draws or the scaled
// twins of the paper's Table II datasets — and writes them in the package
// binary format for ridgewalker and benchfig.
//
// Usage:
//
//	graphgen -dataset LJ -shrink 3 -o lj.rwg
//	graphgen -rmat 16,32,graph500 -weights -o sc16.rwg
//	graphgen -rmat 24,8,graph500 -weights -stream-chunk 4194304 -o sc24.rwg
//	graphgen -rmat 24,8,graph500 -stream-chunk 4194304 -sorted -o sc24.rwg
//	graphgen -list
//
// -stream-chunk streams RMAT generation to disk in bounded-memory
// chunks (byte-identical output), so RMAT-24+ graphs generate without
// materializing the edge list; -sorted spills pre-sorted chunks and
// k-way merges them, skipping the in-memory per-bucket sort.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ridgewalker"
	"ridgewalker/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	dataset := flag.String("dataset", "", "dataset twin to generate (WG, CP, AS, LJ, AB, UK)")
	rmat := flag.String("rmat", "", "RMAT spec: scale,edgefactor[,balanced|graph500]")
	out := flag.String("o", "", "output path (binary graph format)")
	shrink := flag.Int("shrink", 0, "scale levels to shrink a dataset twin by")
	weights := flag.Bool("weights", false, "attach ThunderRW-style edge weights")
	labels := flag.Int("labels", 0, "attach hashed vertex labels with this many types")
	seed := flag.Uint64("seed", 42, "random seed")
	streamChunk := flag.Int("stream-chunk", 0, "stream -rmat generation to disk with this many edges per spill chunk (0 = in-memory)")
	sorted := flag.Bool("sorted", false, "with -stream-chunk: spill pre-sorted chunks and k-way merge (skips the in-memory per-bucket sort)")
	list := flag.Bool("list", false, "list dataset twins and exit")
	flag.Parse()

	if *list {
		fmt.Println("dataset twins (scaled models of the paper's Table II):")
		for _, d := range ridgewalker.Datasets() {
			fmt.Printf("  %-3s %-16s scale=%d ef=%d directed=%v dangling=%.0f%%  (models |V|=%d |E|=%d δ=%d)\n",
				d.Name, d.FullName, d.Scale, d.EdgeFactor, d.Directed,
				100*d.DanglingFraction, d.PaperVertices, d.PaperEdges, d.PaperDiameter)
		}
		return nil
	}
	var g *ridgewalker.Graph
	var err error
	switch {
	case *dataset != "":
		spec, err2 := ridgewalker.DatasetByName(*dataset)
		if err2 != nil {
			return err2
		}
		spec.Scale -= *shrink
		if spec.Scale < 8 {
			spec.Scale = 8
		}
		g, err = spec.Generate(*seed)
	case *rmat != "":
		parts := strings.Split(*rmat, ",")
		if len(parts) < 2 {
			return fmt.Errorf("-rmat needs scale,edgefactor[,kind]")
		}
		scale, err2 := strconv.Atoi(parts[0])
		if err2 != nil {
			return err2
		}
		ef, err2 := strconv.Atoi(parts[1])
		if err2 != nil {
			return err2
		}
		cfg := ridgewalker.Balanced(scale, ef, *seed)
		if len(parts) > 2 && parts[2] == "graph500" {
			cfg = ridgewalker.Graph500(scale, ef, *seed)
		}
		if *streamChunk > 0 {
			if *out == "" {
				return fmt.Errorf("streaming generation needs -o")
			}
			st, err2 := graph.StreamRMAT(*out, cfg, graph.StreamOptions{
				ChunkEdges: *streamChunk,
				Sorted:     *sorted,
				Weights:    *weights,
				Labels:     *labels,
			})
			if err2 != nil {
				return err2
			}
			fmt.Printf("streamed: %d vertices, %d edges via %d spill chunks (%d MiB spilled, sorted=%v)\n",
				st.Vertices, st.Edges, st.Chunks, st.SpillBytes>>20, *sorted)
			fmt.Printf("wrote %s\n", *out)
			return nil
		}
		g, err = ridgewalker.GenerateRMAT(cfg)
	default:
		return fmt.Errorf("one of -dataset, -rmat, or -list is required")
	}
	if err != nil {
		return err
	}
	if *weights {
		g.AttachWeights()
	}
	if *labels > 0 {
		g.AttachLabels(*labels)
	}
	st := graph.Stats(g)
	fmt.Printf("generated: %d vertices, %d edges, mean degree %.1f, max %d, zero-out %.1f%%\n",
		st.Vertices, st.Edges, st.MeanDegree, st.MaxDegree, 100*st.ZeroOutFrac)
	if *out == "" {
		return fmt.Errorf("no -o given; graph discarded")
	}
	if err := ridgewalker.SaveGraph(*out, g); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}
