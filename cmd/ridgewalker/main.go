// Command ridgewalker runs graph random walks on the cycle-level
// RidgeWalker accelerator model or the multi-core software engine.
//
// Usage:
//
//	ridgewalker -graph WG -alg urw -queries 2000 -len 80
//	ridgewalker -graph rmat:14,8,graph500 -alg ppr -platform U250
//	ridgewalker -graph /path/to/graph.rwg -alg node2vec -engine cpu
//
// The -graph argument accepts a dataset twin name (WG, CP, AS, LJ, AB, UK),
// an inline RMAT spec "rmat:scale,edgefactor[,balanced|graph500]", or a
// path to a binary graph written by graphgen.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"ridgewalker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ridgewalker:", err)
		os.Exit(1)
	}
}

func run() error {
	graphSpec := flag.String("graph", "WG", "dataset twin name, rmat:scale,ef[,kind], or .rwg path")
	algName := flag.String("alg", "urw", "urw | ppr | deepwalk | node2vec | metapath")
	queries := flag.Int("queries", 2000, "number of walk queries")
	length := flag.Int("len", 80, "maximum walk length")
	platform := flag.String("platform", "U55C", "U55C | U50 | U280 | U250 | VCK5000")
	engine := flag.String("engine", "sim", "sim (accelerator model) | cpu (software engine)")
	alpha := flag.Float64("alpha", 0.2, "PPR teleport probability")
	p := flag.Float64("p", 2, "Node2Vec return parameter")
	q := flag.Float64("q", 0.5, "Node2Vec in-out parameter")
	shrink := flag.Int("shrink", 3, "scale levels to shrink dataset twins by")
	seed := flag.Uint64("seed", 1, "random seed")
	pathsOut := flag.String("paths", "", "write one walk per line to this file")
	noAsync := flag.Bool("no-async", false, "disable the asynchronous access engine (ablation)")
	noSched := flag.Bool("no-sched", false, "disable the zero-bubble scheduler (ablation)")
	flag.Parse()

	alg, err := parseAlg(*algName)
	if err != nil {
		return err
	}
	g, err := loadGraph(*graphSpec, *shrink, *seed)
	if err != nil {
		return err
	}
	cfg := ridgewalker.DefaultWalkConfig(alg)
	cfg.WalkLength = *length
	cfg.Alpha = *alpha
	cfg.P, cfg.Q = *p, *q
	cfg.Seed = *seed
	if alg == ridgewalker.DeepWalk || alg == ridgewalker.MetaPath {
		g.AttachWeights()
	}
	if alg == ridgewalker.MetaPath {
		g.AttachLabels(3)
	}
	qs, err := ridgewalker.RandomQueries(g, cfg, *queries, *seed^0xfeed)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges; algorithm: %s; %d queries × len %d\n",
		g.NumVertices, g.NumEdges(), alg, len(qs), *length)

	var res *ridgewalker.Result
	start := time.Now()
	switch *engine {
	case "cpu":
		res, err = ridgewalker.WalkParallel(g, qs, cfg, runtime.GOMAXPROCS(0))
		if err != nil {
			return err
		}
		el := time.Since(start)
		fmt.Printf("cpu engine: %d steps in %v (%.1f MStep/s wall)\n",
			res.Steps, el.Round(time.Millisecond), float64(res.Steps)/el.Seconds()/1e6)
	case "sim":
		plat, err := ridgewalker.PlatformByName(*platform)
		if err != nil {
			return err
		}
		var stats *ridgewalker.SimStats
		res, stats, err = ridgewalker.Simulate(g, qs, ridgewalker.SimOptions{
			Platform: plat, Walk: cfg,
			DisableAsync: *noAsync, DisableDynamicSched: *noSched,
		})
		if err != nil {
			return err
		}
		fmt.Printf("simulated %s: %d steps in %d cycles (%.3f ms at %v MHz)\n",
			plat.Name, stats.Steps, stats.Cycles, 1e3*stats.Seconds(), plat.CoreMHz)
		fmt.Printf("throughput: %.0f MStep/s  effective bw: %.2f GB/s  Eq.(1) utilization: %.0f%%\n",
			stats.ThroughputMSteps(), stats.EffectiveBandwidthGBs(), 100*stats.Eq1Utilization())
		fmt.Printf("wall time: %v  (simulation, not hardware)\n", time.Since(start).Round(time.Millisecond))
	default:
		return fmt.Errorf("unknown engine %q", *engine)
	}
	if *pathsOut != "" {
		f, err := os.Create(*pathsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, path := range res.Paths {
			for i, v := range path {
				if i > 0 {
					fmt.Fprint(f, " ")
				}
				fmt.Fprint(f, v)
			}
			fmt.Fprintln(f)
		}
		fmt.Printf("wrote %d walks to %s\n", len(res.Paths), *pathsOut)
	}
	return nil
}

func parseAlg(s string) (ridgewalker.Algorithm, error) {
	switch strings.ToLower(s) {
	case "urw":
		return ridgewalker.URW, nil
	case "ppr":
		return ridgewalker.PPR, nil
	case "deepwalk":
		return ridgewalker.DeepWalk, nil
	case "node2vec":
		return ridgewalker.Node2Vec, nil
	case "metapath":
		return ridgewalker.MetaPath, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func loadGraph(spec string, shrink int, seed uint64) (*ridgewalker.Graph, error) {
	if strings.HasPrefix(spec, "rmat:") {
		parts := strings.Split(strings.TrimPrefix(spec, "rmat:"), ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("rmat spec needs scale,edgefactor[,kind]")
		}
		scale, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		ef, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		kind := "balanced"
		if len(parts) > 2 {
			kind = parts[2]
		}
		switch kind {
		case "balanced":
			return ridgewalker.GenerateRMAT(ridgewalker.Balanced(scale, ef, seed))
		case "graph500":
			return ridgewalker.GenerateRMAT(ridgewalker.Graph500(scale, ef, seed))
		default:
			return nil, fmt.Errorf("unknown rmat kind %q", kind)
		}
	}
	if ds, err := ridgewalker.DatasetByName(spec); err == nil {
		ds.Scale -= shrink
		if ds.Scale < 8 {
			ds.Scale = 8
		}
		return ds.Generate(seed)
	}
	return ridgewalker.LoadGraph(spec)
}
