// Command ridgewalker runs graph random walks on any of the repository's
// execution backends — the cycle-level RidgeWalker accelerator model, the
// multi-core software engine, or the modeled baseline systems — selected
// by name, either as a one-shot batch or through the batched serving
// frontend.
//
// Usage:
//
//	ridgewalker -graph WG -alg urw -queries 2000 -len 80
//	ridgewalker -graph rmat:14,8,graph500 -alg ppr -platform U250
//	ridgewalker -graph /path/to/graph.rwg -alg node2vec -backend cpu
//	ridgewalker -graph WG -alg urw -backend lightrw
//	ridgewalker -graph WG -alg urw -backend cpu-sharded -shards 8
//	ridgewalker -graph WG -alg urw -backend cpu-pipelined -cohort 128
//	ridgewalker -graph WG -alg urw -backend auto -explain-plan
//	ridgewalker -graph WG -alg ppr -backend cpu -serve -requests 32
//	ridgewalker -graph WG -alg urw -backend cpu-pipelined -cpuprofile cpu.pprof
//	ridgewalker -list-backends
//
// The -graph argument accepts a dataset twin name (WG, CP, AS, LJ, AB, UK),
// an inline RMAT spec "rmat:scale,edgefactor[,balanced|graph500]", or a
// path to a binary graph written by graphgen.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"ridgewalker"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ridgewalker:", err)
		os.Exit(1)
	}
}

func run() error {
	graphSpec := flag.String("graph", "WG", "dataset twin name, rmat:scale,ef[,kind], or .rwg path")
	algName := flag.String("alg", "urw", "urw | ppr | deepwalk | node2vec | metapath")
	queries := flag.Int("queries", 2000, "number of walk queries")
	length := flag.Int("len", 80, "maximum walk length")
	platform := flag.String("platform", "U55C", "U55C | U50 | U280 | U250 | VCK5000")
	backendName := flag.String("backend", "", "execution backend: "+strings.Join(ridgewalker.Backends(), " | ")+" (overrides -engine)")
	engine := flag.String("engine", "sim", "deprecated alias: sim (accelerator model) | cpu (software engine)")
	listBackends := flag.Bool("list-backends", false, "list execution backends and exit")
	alpha := flag.Float64("alpha", 0.2, "PPR teleport probability")
	p := flag.Float64("p", 2, "Node2Vec return parameter")
	q := flag.Float64("q", 0.5, "Node2Vec in-out parameter")
	shrink := flag.Int("shrink", 3, "scale levels to shrink dataset twins by")
	seed := flag.Uint64("seed", 1, "random seed")
	pathsOut := flag.String("paths", "", "write one walk per line to this file")
	noAsync := flag.Bool("no-async", false, "disable the asynchronous access engine (ablation)")
	noSched := flag.Bool("no-sched", false, "disable the zero-bubble scheduler (ablation)")
	workers := flag.Int("workers", 0, "cpu backend worker-pool size (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "cpu-sharded/cpu-pipelined partition count (0 = backend default)")
	cohort := flag.Int("cohort", 0, "cpu-pipelined in-flight walkers per worker (0 = backend default)")
	hubCache := flag.Int64("hubcache", 0, "cpu-pipelined hub-arena byte budget (0 = off; e.g. 8388608 for 8 MiB)")
	memBudget := flag.String("membudget", "", "cpu backends' tiered-memory hot budget in bytes, or 'auto' (empty = flat stores)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	serve := flag.Bool("serve", false, "run the workload through the batched serving frontend")
	requests := flag.Int("requests", 16, "serve mode: concurrent requests the workload is split into")
	maxBatch := flag.Int("max-batch", 4096, "serve mode: max queries coalesced per backend dispatch")
	linger := flag.Duration("linger", 500*time.Microsecond, "serve mode: max wait for co-batched work")
	maxInflight := flag.String("max-inflight", "", "serve mode: in-flight query budget — 'auto' (feedback-derived), a count, or empty for unbounded")
	laneName := flag.String("lane", "interactive", "serve mode: priority lane (interactive | bulk)")
	laneWeights := flag.String("lane-weights", "", "serve mode: interactive:bulk drain ratio, e.g. 4:1 (empty = default)")
	tenant := flag.String("tenant", "", "serve mode: tenant name for quota accounting")
	tenantQPS := flag.Float64("tenant-qps", 0, "serve mode: default per-tenant quota in queries/sec (0 = unlimited)")
	tenantBurst := flag.Float64("tenant-burst", 0, "serve mode: default per-tenant burst depth in queries")
	deadline := flag.Duration("deadline", 0, "serve mode: per-request deadline (0 = none); infeasible requests shed fast")
	mutIns := flag.Int("mutate-insert", 0, "serve mode: insert this many random edges between serving rounds (versioned-graph serving)")
	mutDel := flag.Int("mutate-delete", 0, "serve mode: then delete this many of the inserted edges")
	mutCompact := flag.Bool("mutate-compact", false, "serve mode: compact the mutated graph and serve a final round")
	explainPlan := flag.Bool("explain-plan", false, "auto backend: print the planner's decision record (stats, probed candidates, chosen plan)")
	chaos := flag.String("chaos", "", "serve mode: arm deterministic fault injection, e.g. 'batch-exec=panic:every=3,cold-decode=error:after=5' (comma-separated point=mode[:every=N][:after=N][:limit=N][:tag=backend])")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ridgewalker: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ridgewalker: memprofile:", err)
			}
		}()
	}

	if *listBackends {
		for _, name := range ridgewalker.Backends() {
			b, err := ridgewalker.BackendByName(name)
			if err != nil {
				return err
			}
			mark := ""
			if ridgewalker.BackendSupportsMemoryTiering(name) {
				mark = "  [tiered-mem]"
			}
			if name == "auto" {
				mark += "  [planned]"
			}
			fmt.Printf("%-13s %s%s\n", name, b.Description(), mark)
		}
		fmt.Println("\n[tiered-mem] backends honor -membudget: hot rows stay in an")
		fmt.Println("uncompressed arena, the cold tail is delta-varint compressed, and the")
		fmt.Println("per-tier accounting (hot arena, compressed cold arena, locators,")
		fmt.Println("per-worker decode scratch) is reported after each run.")
		fmt.Println("\n[planned] resolves its engine and shape (backend, cohort, shards) per")
		fmt.Println("workload from graph statistics and a calibration micro-bench; the")
		fmt.Println("resolved plan — chosen config, predicted vs observed steps/sec — is")
		fmt.Println("reported after each run (add -explain-plan for the full decision record).")
		return nil
	}

	backend := *backendName
	if backend == "" {
		switch *engine {
		case "sim":
			backend = "ridgewalker"
		case "cpu":
			backend = "cpu"
		default:
			return fmt.Errorf("unknown engine %q (use -backend)", *engine)
		}
	}

	alg, err := parseAlg(*algName)
	if err != nil {
		return err
	}
	g, err := loadGraph(*graphSpec, *shrink, *seed)
	if err != nil {
		return err
	}
	cfg := ridgewalker.DefaultWalkConfig(alg)
	cfg.WalkLength = *length
	cfg.Alpha = *alpha
	cfg.P, cfg.Q = *p, *q
	cfg.Seed = *seed
	if alg == ridgewalker.DeepWalk || alg == ridgewalker.MetaPath {
		g.AttachWeights()
	}
	if alg == ridgewalker.MetaPath {
		g.AttachLabels(3)
	}
	plat, err := ridgewalker.PlatformByName(*platform)
	if err != nil {
		return err
	}
	qs, err := ridgewalker.RandomQueries(g, cfg, *queries, *seed^0xfeed)
	if err != nil {
		return err
	}
	budget, err := parseMemBudget(*memBudget, g)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %d vertices, %d edges; algorithm: %s; backend: %s; %d queries × len %d\n",
		g.NumVertices, g.NumEdges(), alg, backend, len(qs), *length)
	if budget != 0 {
		fmt.Printf("memory budget: %d bytes (tiered hot arenas + compressed cold tail)\n", budget)
	}

	if *explainPlan && backend != "auto" {
		return fmt.Errorf("-explain-plan requires -backend auto")
	}
	if *chaos != "" {
		if !*serve {
			// Outside the serving frontend there are no containment
			// boundaries, breakers, or watchdogs — an injected panic would
			// just crash the process, which demonstrates nothing.
			return fmt.Errorf("-chaos requires -serve (fault isolation lives in the serving frontend)")
		}
		points, err := ridgewalker.ParseFaultInjection(*chaos)
		if err != nil {
			return fmt.Errorf("chaos: %w", err)
		}
		defer ridgewalker.DisableFaultInjection()
		names := make([]string, len(points))
		for i, p := range points {
			names[i] = string(p)
		}
		fmt.Printf("chaos: armed %s\n", strings.Join(names, ", "))
	}
	if *serve {
		inflight, err := parseMaxInflight(*maxInflight)
		if err != nil {
			return err
		}
		lane, err := parseLane(*laneName)
		if err != nil {
			return err
		}
		iw, bw, err := parseLaneWeights(*laneWeights)
		if err != nil {
			return err
		}
		cfg.Lane = lane
		cfg.Tenant = *tenant
		return runServe(g, cfg, qs, *explainPlan, ridgewalker.ServiceConfig{
			Backend:             backend,
			Platform:            plat,
			Workers:             *workers,
			Shards:              *shards,
			Cohort:              *cohort,
			HubCacheBytes:       *hubCache,
			MemoryBudgetBytes:   budget,
			MaxBatch:            *maxBatch,
			Linger:              *linger,
			MaxInFlight:         inflight,
			InteractiveWeight:   iw,
			BulkWeight:          bw,
			TenantQuota:         ridgewalker.TenantQuota{QPS: *tenantQPS, Burst: *tenantBurst},
			DisableAsync:        *noAsync,
			DisableDynamicSched: *noSched,
		}, *requests, *pathsOut, *deadline, mutationPlan{
			inserts: *mutIns,
			deletes: *mutDel,
			compact: *mutCompact,
			seed:    *seed,
		})
	}
	if *mutIns != 0 || *mutDel != 0 || *mutCompact {
		return fmt.Errorf("-mutate-insert/-mutate-delete/-mutate-compact require -serve")
	}

	bcfg := ridgewalker.BackendConfig{
		Walk:                cfg,
		Platform:            plat,
		Workers:             *workers,
		Shards:              *shards,
		Cohort:              *cohort,
		HubCacheBytes:       *hubCache,
		MemoryBudgetBytes:   budget,
		DisableAsync:        *noAsync,
		DisableDynamicSched: *noSched,
	}
	if backend == "auto" {
		// A one-shot run amortizes calibration over a single batch, but the
		// probes are microseconds-to-milliseconds against the run itself —
		// and without them "auto" would be stats-only guesswork.
		bcfg.Plan = &ridgewalker.PlanOptions{Calibrate: true}
	}
	if *explainPlan {
		rec, err := ridgewalker.ExplainPlan(g, bcfg)
		if err != nil {
			return err
		}
		fmt.Print(rec)
	}
	ses, err := ridgewalker.OpenBackend(backend, g, bcfg)
	if err != nil {
		return err
	}
	defer ses.Close()
	start := time.Now()
	res, err := ses.Run(context.Background(), ridgewalker.Batch{Queries: qs})
	if err != nil {
		return err
	}
	el := time.Since(start)
	if res.Sim != nil {
		st := res.Sim
		fmt.Printf("simulated %s: %d steps in %d cycles (%.3f ms at %v MHz)\n",
			st.Platform.Name, st.Steps, st.Cycles, 1e3*st.Seconds(), st.Platform.CoreMHz)
		fmt.Printf("throughput: %.0f MStep/s  effective bw: %.2f GB/s  Eq.(1) utilization: %.0f%%\n",
			st.ThroughputMSteps(), st.EffectiveBandwidthGBs(), 100*st.Eq1Utilization())
		fmt.Printf("wall time: %v  (simulation, not hardware)\n", el.Round(time.Millisecond))
	}
	if res.Model != nil {
		m := res.Model
		fmt.Printf("modeled %s: %.0f MStep/s  effective bw: %.2f GB/s  bubble ratio: %.1f%%\n",
			m.System, m.ThroughputMSteps, m.EffectiveBandwidthGBs, 100*m.BubbleRatio)
	}
	if res.Sim == nil && res.Model == nil {
		fmt.Printf("cpu engine (%d workers): %d steps in %v (%.1f MStep/s wall)\n",
			effectiveWorkers(*workers), res.Steps, el.Round(time.Millisecond),
			float64(res.Steps)/el.Seconds()/1e6)
	}
	if pr := res.Plan; pr != nil {
		fmt.Printf("plan: %s  predicted %.3g steps/s, observed %.3g steps/s (%s)\n",
			planShape(pr), pr.PredictedStepsPerSec, pr.ObservedStepsPerSec, pr.Source)
	}
	if m := res.Memory; m != nil {
		fmt.Printf("tiered memory: %d B resident (flat %d B)\n",
			m.TotalBytes(), m.GraphFlatBytes+m.SamplerFlatBytes)
		fmt.Printf("  graph: %d hot rows / %d cold rows, %d B (cold tail %.2fx smaller)\n",
			m.GraphHotRows, m.GraphColdRows, m.GraphBytes, m.GraphColdRatio)
		if m.SamplerBudget != 0 {
			fmt.Printf("  sampler: %d hot rows / %d cold rows, %d B (cold rows %.2fx smaller)\n",
				m.SamplerHotRows, m.SamplerColdRows, m.SamplerBytes, m.SamplerColdRatio)
		}
		fmt.Printf("  decode scratch: ≤%d B per worker\n", m.ScratchBoundPerWorker)
	}
	return writePaths(*pathsOut, res.Paths)
}

// parseMaxInflight resolves the -max-inflight flag: empty = unbounded,
// "auto" = the Theorem VI.1 feedback-derived budget, otherwise a count.
func parseMaxInflight(s string) (int, error) {
	switch s {
	case "":
		return 0, nil
	case "auto":
		return ridgewalker.AutoInFlight, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("max-inflight: %q, want 'auto' or a positive count", s)
	}
	return n, nil
}

// parseLane resolves the -lane flag.
func parseLane(s string) (ridgewalker.Lane, error) {
	switch strings.ToLower(s) {
	case "interactive":
		return ridgewalker.LaneInteractive, nil
	case "bulk":
		return ridgewalker.LaneBulk, nil
	}
	return 0, fmt.Errorf("unknown lane %q (interactive | bulk)", s)
}

// parseLaneWeights resolves the -lane-weights flag ("I:B"); empty keeps
// the service default.
func parseLaneWeights(s string) (interactive, bulk int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("lane-weights: %q, want I:B (e.g. 4:1)", s)
	}
	interactive, err = strconv.Atoi(parts[0])
	if err == nil {
		bulk, err = strconv.Atoi(parts[1])
	}
	if err != nil || interactive < 1 || bulk < 1 {
		return 0, 0, fmt.Errorf("lane-weights: %q, want two positive integers I:B", s)
	}
	return interactive, bulk, nil
}

// parseMemBudget resolves the -membudget flag: empty = off, "auto" =
// graph.AutoMemoryBudget, otherwise a byte count (negative = all-cold,
// for footprint measurement).
func parseMemBudget(s string, g *ridgewalker.Graph) (int64, error) {
	switch s {
	case "":
		return 0, nil
	case "auto":
		return ridgewalker.AutoMemoryBudget(g), nil
	}
	b, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("membudget: %w", err)
	}
	return b, nil
}

// mutationPlan is the serve-mode edge-mutation schedule: a round of
// random inserts, an optional round of deletes over the inserted edges,
// and an optional final compaction — each followed by re-serving the
// workload at the new epoch.
type mutationPlan struct {
	inserts int
	deletes int
	compact bool
	seed    uint64
}

func (p mutationPlan) active() bool { return p.inserts > 0 || p.deletes > 0 || p.compact }

// randomEdges derives n deterministic pseudo-random edges over g's vertex
// range (a splitmix-style hash of the seed, so runs are reproducible).
func randomEdges(g *ridgewalker.Graph, n int, seed uint64) []ridgewalker.Edge {
	edges := make([]ridgewalker.Edge, n)
	x := seed ^ 0x9e3779b97f4a7c15
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	nv := uint64(g.NumVertices)
	for i := range edges {
		edges[i] = ridgewalker.Edge{
			Src: ridgewalker.VertexID(next() % nv),
			Dst: ridgewalker.VertexID(next() % nv),
		}
	}
	return edges
}

// runServe splits the workload into concurrent requests against a batched
// Service and reports the served-query metrics. With an active mutation
// plan it re-serves the workload after each mutation phase, exercising
// epoch-snapshot serving and incremental sampler maintenance end to end.
// planShape renders a plan report's chosen engine and shape.
func planShape(pr *ridgewalker.PlanReport) string {
	s := pr.Backend
	if pr.Cohort > 0 {
		s += fmt.Sprintf(" c%d", pr.Cohort)
	}
	if pr.Shards > 0 {
		s += fmt.Sprintf(" s%d", pr.Shards)
	}
	if pr.HubCacheBytes > 0 {
		s += fmt.Sprintf(" hub=%dB", pr.HubCacheBytes)
	}
	if pr.MemoryBudgetBytes != 0 {
		s += fmt.Sprintf(" budget=%dB", pr.MemoryBudgetBytes)
	}
	return s
}

func runServe(g *ridgewalker.Graph, cfg ridgewalker.WalkConfig, qs []ridgewalker.Query,
	explainPlan bool, scfg ridgewalker.ServiceConfig, requests int, pathsOut string,
	deadline time.Duration, plan mutationPlan) error {
	if requests < 1 {
		return fmt.Errorf("serve: requests %d, want >= 1", requests)
	}
	svc, err := ridgewalker.NewService(g, scfg)
	if err != nil {
		return err
	}
	defer svc.Close()
	paths, err := serveRound(svc, cfg, qs, requests, len(qs), deadline, pathsOut != "")
	if err != nil {
		return err
	}
	if plan.active() {
		if plan.inserts > 0 {
			ins := randomEdges(g, plan.inserts, plan.seed)
			if err := svc.InsertEdges(ins); err != nil {
				return fmt.Errorf("mutate: %w", err)
			}
			if plan.deletes > 0 {
				if plan.deletes > len(ins) {
					return fmt.Errorf("mutate: -mutate-delete %d > -mutate-insert %d (only inserted edges are deleted)", plan.deletes, plan.inserts)
				}
				if err := svc.DeleteEdges(ins[:plan.deletes]); err != nil {
					return fmt.Errorf("mutate: %w", err)
				}
			}
		} else if plan.deletes > 0 {
			return fmt.Errorf("mutate: -mutate-delete needs -mutate-insert (only inserted edges are deleted)")
		}
		st := svc.GraphStats()
		fmt.Printf("mutated: epoch %d, %d dirty rows (+%d edges, -%d edges)\n",
			st.Epoch, st.DirtyRows, st.Inserts, st.Deletes)
		if _, err := serveRound(svc, cfg, qs, requests, len(qs), deadline, false); err != nil {
			return err
		}
		if plan.compact {
			svc.CompactGraph()
			st = svc.GraphStats()
			fmt.Printf("compacted: epoch %d, %d compactions\n", st.Epoch, st.Compactions)
			if _, err := serveRound(svc, cfg, qs, requests, len(qs), deadline, false); err != nil {
				return err
			}
		}
	}
	if explainPlan {
		rec, err := svc.ExplainPlan(cfg)
		if err != nil {
			return err
		}
		fmt.Print(rec)
	}
	for _, ps := range svc.PlanStatus() {
		fmt.Printf("plan %-20s → %s  observed %.3g steps/s over %d batches (replans=%d)\n",
			ps.Class, ps.Plan, ps.ObservedStepsPerSec, ps.Observations, ps.Recalibrations)
	}
	m := svc.Metrics()
	for name, c := range m.PerBackend {
		fmt.Printf("backend %-12s requests=%d queries=%d steps=%d batches=%d\n",
			name, c.Requests, c.Queries, c.Steps, c.Batches)
	}
	for name, c := range m.PerAlgorithm {
		fmt.Printf("algorithm %-10s requests=%d queries=%d steps=%d batches=%d\n",
			name, c.Requests, c.Queries, c.Steps, c.Batches)
	}
	if len(m.PerEpoch) > 1 || plan.active() {
		for epoch, c := range m.PerEpoch {
			fmt.Printf("epoch %-14d requests=%d queries=%d steps=%d batches=%d\n",
				epoch, c.Requests, c.Queries, c.Steps, c.Batches)
		}
	}
	ast := svc.AdmissionStatus()
	fmt.Printf("admission: budget=%d inflight=%d rate=%.0f q/s/worker window=%v\n",
		ast.Budget, ast.InFlight, ast.ServiceRate, ast.FeedbackDelay.Round(time.Microsecond))
	for name, c := range ast.PerLane {
		fmt.Printf("lane %-15s admitted=%d shed=%d expired=%d faulted=%d quarantined=%d watchdog=%d\n",
			name, c.Admitted, c.Shed, c.Expired, c.Faulted, c.Quarantined, c.WatchdogKilled)
	}
	for name, c := range ast.PerTenant {
		fmt.Printf("tenant %-13s admitted=%d shed=%d expired=%d faulted=%d quarantined=%d watchdog=%d\n",
			name, c.Admitted, c.Shed, c.Expired, c.Faulted, c.Quarantined, c.WatchdogKilled)
	}
	fr := svc.FaultStatus()
	if fr.BreakerOpens > 0 || len(fr.Watchdog) > 0 || fr.QuarantinedQueries > 0 {
		fmt.Printf("faults: breaker-opens=%d quarantined-queries=%d watchdog-kills=%d\n",
			fr.BreakerOpens, fr.QuarantinedQueries, len(fr.Watchdog))
		for _, b := range fr.Breakers {
			fmt.Printf("breaker %-12s state=%s consecutive=%d\n", b.Key, b.State, b.Consecutive)
		}
		for _, w := range fr.Watchdog {
			fmt.Printf("watchdog-kill backend=%s lane=%s tenant=%s epoch=%d stage=%s queries=%d\n",
				w.Backend, w.Lane, w.Tenant, w.Epoch, w.Stage, w.Queries)
		}
	}
	if counts := ridgewalker.FaultInjectionCounts(); len(counts) > 0 {
		for p, n := range counts {
			fmt.Printf("chaos %-14s fired=%d\n", p, n)
		}
	}
	return writePaths(pathsOut, paths)
}

// serveRound fires the workload as concurrent requests and reports wall
// throughput; it returns the concatenated paths when keepPaths is set.
// Requests the admission gate sheds (over budget or quota, or an
// infeasible deadline) are counted and reported, not fatal.
func serveRound(svc *ridgewalker.Service, cfg ridgewalker.WalkConfig, qs []ridgewalker.Query,
	requests, total int, deadline time.Duration, keepPaths bool) ([][]ridgewalker.VertexID, error) {
	chunk := (len(qs) + requests - 1) / requests
	results := make([]*ridgewalker.Result, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	start := time.Now()
	served := 0
	for r := 0; r < requests; r++ {
		lo := r * chunk
		hi := min(lo+chunk, len(qs))
		if lo >= hi {
			break
		}
		served++
		wg.Add(1)
		go func(r, lo, hi int) {
			defer wg.Done()
			ctx := context.Background()
			if deadline > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, deadline)
				defer cancel()
			}
			results[r], errs[r] = svc.Submit(ctx, cfg, qs[lo:hi])
		}(r, lo, hi)
	}
	wg.Wait()
	el := time.Since(start)
	shed := 0
	for r, err := range errs {
		switch {
		case err == nil:
		case errors.Is(err, ridgewalker.ErrOverloaded),
			errors.Is(err, ridgewalker.ErrQuotaExceeded),
			errors.Is(err, context.DeadlineExceeded):
			shed++
		case errors.Is(err, ridgewalker.ErrEngineFault),
			errors.Is(err, ridgewalker.ErrQuarantined):
			// Chaos mode: contained engine faults are the point of the
			// exercise — count them as shed and keep reporting.
			shed++
		default:
			return nil, fmt.Errorf("request %d: %w", r, err)
		}
	}
	var steps int64
	var paths [][]ridgewalker.VertexID
	for _, res := range results[:served] {
		if res == nil {
			continue
		}
		steps += res.Steps
		if keepPaths {
			paths = append(paths, res.Paths...)
		}
	}
	fmt.Printf("served %d requests (%d shed, %d queries, %d steps) in %v — %.1f MStep/s wall (epoch %d)\n",
		served-shed, shed, total, steps, el.Round(time.Millisecond),
		float64(steps)/el.Seconds()/1e6, svc.GraphEpoch())
	return paths, nil
}

func effectiveWorkers(w int) int {
	if w == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

func writePaths(pathsOut string, paths [][]ridgewalker.VertexID) error {
	if pathsOut == "" {
		return nil
	}
	f, err := os.Create(pathsOut)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, path := range paths {
		for i, v := range path {
			if i > 0 {
				fmt.Fprint(f, " ")
			}
			fmt.Fprint(f, v)
		}
		fmt.Fprintln(f)
	}
	fmt.Printf("wrote %d walks to %s\n", len(paths), pathsOut)
	return nil
}

func parseAlg(s string) (ridgewalker.Algorithm, error) {
	switch strings.ToLower(s) {
	case "urw":
		return ridgewalker.URW, nil
	case "ppr":
		return ridgewalker.PPR, nil
	case "deepwalk":
		return ridgewalker.DeepWalk, nil
	case "node2vec":
		return ridgewalker.Node2Vec, nil
	case "metapath":
		return ridgewalker.MetaPath, nil
	}
	return 0, fmt.Errorf("unknown algorithm %q", s)
}

func loadGraph(spec string, shrink int, seed uint64) (*ridgewalker.Graph, error) {
	if strings.HasPrefix(spec, "rmat:") {
		parts := strings.Split(strings.TrimPrefix(spec, "rmat:"), ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("rmat spec needs scale,edgefactor[,kind]")
		}
		scale, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, err
		}
		ef, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, err
		}
		kind := "balanced"
		if len(parts) > 2 {
			kind = parts[2]
		}
		switch kind {
		case "balanced":
			return ridgewalker.GenerateRMAT(ridgewalker.Balanced(scale, ef, seed))
		case "graph500":
			return ridgewalker.GenerateRMAT(ridgewalker.Graph500(scale, ef, seed))
		default:
			return nil, fmt.Errorf("unknown rmat kind %q", kind)
		}
	}
	if ds, err := ridgewalker.DatasetByName(spec); err == nil {
		ds.Scale -= shrink
		if ds.Scale < 8 {
			ds.Scale = 8
		}
		return ds.Generate(seed)
	}
	return ridgewalker.LoadGraph(spec)
}
