// Benchmarks: one testing.B target per table and figure of the paper's
// evaluation (run with `go test -bench=. -benchmem`). Each executes the
// corresponding internal/bench experiment at reduced scale and reports
// simulated GRW steps per wall-second as steps/s; `cmd/benchfig` runs the
// same experiments at full scale with the paper-comparison columns.
package ridgewalker_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ridgewalker"
	"ridgewalker/internal/bench"
	"ridgewalker/internal/shard"
	"ridgewalker/internal/walk"
)

// benchOptions keeps individual iterations around a second.
func benchOptions() bench.Options {
	return bench.Options{Shrink: 6, Queries: 300, WalkLength: 40, Seed: 42}
}

// runExperiment is the shared driver for the per-figure benchmarks.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	c := bench.NewContext(benchOptions())
	// Warm the graph cache outside the timed region.
	if _, err := c.Twin("WG"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(c, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3a(b *testing.B)  { runExperiment(b, "fig3a") }
func BenchmarkFig8a(b *testing.B)  { runExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { runExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)  { runExperiment(b, "fig8c") }
func BenchmarkFig8d(b *testing.B)  { runExperiment(b, "fig8d") }
func BenchmarkFig9a(b *testing.B)  { runExperiment(b, "fig9a") }
func BenchmarkFig9b(b *testing.B)  { runExperiment(b, "fig9b") }
func BenchmarkFig9c(b *testing.B)  { runExperiment(b, "fig9c") }
func BenchmarkFig9d(b *testing.B)  { runExperiment(b, "fig9d") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkTable3(b *testing.B) { runExperiment(b, "tab3") }
func BenchmarkTable4(b *testing.B) { runExperiment(b, "tab4") }
func BenchmarkObs2(b *testing.B)   { runExperiment(b, "obs2") }
func BenchmarkMicro(b *testing.B)  { runExperiment(b, "micro") }

// BenchmarkSimulatorThroughput measures the cycle-level simulator itself:
// simulated GRW steps per wall-clock second for the full U55C model.
func BenchmarkSimulatorThroughput(b *testing.B) {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Balanced(12, 8, 1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 40
	qs, err := ridgewalker.RandomQueries(g, cfg, 2000, 3)
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := ridgewalker.Simulate(g, qs, ridgewalker.SimOptions{
			Walk: cfg, DiscardPaths: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		steps += st.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "simsteps/s")
}

// BenchmarkServiceThroughput measures end-to-end serving throughput:
// concurrent requests coalesced into shared batches on the cpu backend,
// reported as served GRW steps per wall-second.
func BenchmarkServiceThroughput(b *testing.B) {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Balanced(14, 16, 1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 80
	qs, err := ridgewalker.RandomQueries(g, cfg, 4096, 3)
	if err != nil {
		b.Fatal(err)
	}
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:  "cpu",
		MaxBatch: 4096,
		Linger:   200 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	const requests = 16
	chunk := len(qs) / requests
	var steps atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < requests; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				res, err := svc.Submit(context.Background(), cfg, qs[r*chunk:(r+1)*chunk])
				if err != nil {
					b.Error(err)
					return
				}
				steps.Add(res.Steps)
			}(r)
		}
		wg.Wait()
	}
	b.ReportMetric(float64(steps.Load())/b.Elapsed().Seconds(), "steps/s")
}

// shardedBenchGraph lazily builds (and caches for the whole bench run) the
// RMAT-22 dataset the sharded-throughput acceptance sweep is defined on:
// 2^22 vertices × edge factor 16, Graph500 skew — ~0.5 GB of CSR, large
// enough that partition locality is measurable. -short swaps in RMAT-18 so
// the sweep stays laptop-friendly.
var shardedBenchGraph = struct {
	sync.Once
	g   *ridgewalker.Graph
	err error
}{}

func shardedGraph(b *testing.B) *ridgewalker.Graph {
	b.Helper()
	shardedBenchGraph.Do(func() {
		scale := 22
		if testing.Short() {
			scale = 18
		}
		shardedBenchGraph.g, shardedBenchGraph.err =
			ridgewalker.GenerateRMAT(ridgewalker.Graph500(scale, 16, 1))
	})
	if shardedBenchGraph.err != nil {
		b.Fatal(shardedBenchGraph.err)
	}
	return shardedBenchGraph.g
}

// BenchmarkShardedThroughput sweeps the cpu-sharded backend over shard
// counts against the flat cpu baseline on the RMAT-22 dataset, reporting
// walks/s and steps/s. How much sharding wins is hardware-dependent: the
// gain comes from concentrating row-pointer/neighbor-list traffic into
// per-shard working sets, so machines whose last-level cache already holds
// the whole CSR see only a modest edge, while multi-core machines with
// ordinary cache sizes see the full partition-locality benefit.
func BenchmarkShardedThroughput(b *testing.B) {
	g := shardedGraph(b)
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 80
	qs, err := ridgewalker.RandomQueries(g, cfg, 20000, 3)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, backend string, shards int) {
		ses, err := ridgewalker.OpenBackend(backend, g, ridgewalker.BackendConfig{
			Walk: cfg, Shards: shards, DiscardPaths: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer ses.Close()
		var steps, walks int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ses.Run(context.Background(), ridgewalker.Batch{Queries: qs})
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
			walks += int64(len(qs))
		}
		b.ReportMetric(float64(walks)/b.Elapsed().Seconds(), "walks/s")
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	}
	b.Run("cpu", func(b *testing.B) { run(b, "cpu", 0) })
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded-%d", shards), func(b *testing.B) {
			run(b, "cpu-sharded", shards)
		})
	}
}

// BenchmarkShardMigrationAllocs pins the allocation-free migration rings
// (run with -benchmem): one op is one full Run of a migration-heavy
// workload on a warmed engine — a directed ring crossing 4 shard
// boundaries, so every walk migrates several times — and allocs/op must
// stay at the per-Run bookkeeping constant (a handful: run struct,
// completion channels, goroutine starts), independent of the thousands
// of migrations inside the op. allocs/migration is reported explicitly.
func BenchmarkShardMigrationAllocs(b *testing.B) {
	const n = 256
	edges := make([]ridgewalker.Edge, n)
	for i := range edges {
		edges[i] = ridgewalker.Edge{Src: ridgewalker.VertexID(i), Dst: ridgewalker.VertexID((i + 1) % n)}
	}
	g, err := ridgewalker.NewGraph(n, edges, true)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 80
	qs := make([]walk.Query, 1024)
	for i := range qs {
		qs[i] = walk.Query{ID: uint32(i), Start: ridgewalker.VertexID(i % n)}
	}
	for _, mode := range []struct {
		name   string
		cohort int
	}{{"depth-first", 0}, {"cohort", 32}} {
		b.Run(mode.name, func(b *testing.B) {
			p, err := shard.Partition(g, 4)
			if err != nil {
				b.Fatal(err)
			}
			e, err := shard.NewEngine(g, p, cfg, shard.EngineConfig{Workers: 4, Cohort: mode.cohort})
			if err != nil {
				b.Fatal(err)
			}
			emit := func(int, walk.Query, []ridgewalker.VertexID, int64) error { return nil }
			// Warm the mesh pool so the op measures the steady state.
			if _, err := e.Run(context.Background(), qs, emit); err != nil {
				b.Fatal(err)
			}
			var migrations int64
			var before, after runtime.MemStats
			b.ReportAllocs()
			runtime.ReadMemStats(&before)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stats, err := e.Run(context.Background(), qs, emit)
				if err != nil {
					b.Fatal(err)
				}
				migrations += stats.Migrations
			}
			b.StopTimer()
			runtime.ReadMemStats(&after)
			if migrations > 0 {
				b.ReportMetric(float64(after.Mallocs-before.Mallocs)/float64(migrations), "allocs/migration")
			}
		})
	}
}

// BenchmarkPipelinedThroughput is the acceptance sweep for the
// step-interleaved engine: DeepWalk (alias-sampled, weighted) on the
// RMAT-22 dataset (RMAT-18 under -short), flat cpu vs cpu-pipelined
// across cohort sizes, reporting walks/s and steps/s. The pipelined win
// comes from overlapping CSR row fetches across a cohort's walkers, so it
// grows with the gap between the graph's working set and the cache
// hierarchy; `benchfig -json BENCH.json` records the same cpu-pipelined/cpu
// ratio machine-readably.
func BenchmarkPipelinedThroughput(b *testing.B) {
	g := bench.Weighted(shardedGraph(b))
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.DeepWalk)
	cfg.WalkLength = 80
	qs, err := ridgewalker.RandomQueries(g, cfg, 20000, 3)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, backend string, cohort int) {
		ses, err := ridgewalker.OpenBackend(backend, g, ridgewalker.BackendConfig{
			Walk: cfg, Cohort: cohort, DiscardPaths: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer ses.Close()
		var steps, walks int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := ses.Run(context.Background(), ridgewalker.Batch{Queries: qs})
			if err != nil {
				b.Fatal(err)
			}
			steps += res.Steps
			walks += int64(len(qs))
		}
		b.ReportMetric(float64(walks)/b.Elapsed().Seconds(), "walks/s")
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	}
	b.Run("cpu", func(b *testing.B) { run(b, "cpu", 0) })
	for _, cohort := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("pipelined-%d", cohort), func(b *testing.B) {
			run(b, "cpu-pipelined", cohort)
		})
	}
}

// BenchmarkPipelinedAllocsPerStep pins the zero-allocation claim for the
// pipelined stepper itself (run with -benchmem): one op is one full batch
// through a reused walk.Pipeline with a non-copying emit, so allocs/op is
// allocations per batch — it must be 0, and per-step allocations are
// bounded above by it.
func BenchmarkPipelinedAllocsPerStep(b *testing.B) {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Balanced(14, 16, 1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 80
	qs, err := ridgewalker.RandomQueries(g, cfg, 4096, 3)
	if err != nil {
		b.Fatal(err)
	}
	p, err := walk.NewPipeline(g, cfg, 64)
	if err != nil {
		b.Fatal(err)
	}
	emit := func(int, ridgewalker.Query, []ridgewalker.VertexID, int64) error { return nil }
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := p.Run(qs, emit)
		if err != nil {
			b.Fatal(err)
		}
		steps += st
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
}

// BenchmarkWalkAllocsPerStep pins the zero-allocation claim of the serving
// hot path (run with -benchmem): one op is one full walk on a reused
// Walker, so allocs/op is allocations per walk — it must be 0, and per-step
// allocations are bounded above by it.
func BenchmarkWalkAllocsPerStep(b *testing.B) {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Balanced(14, 16, 1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 80
	qs, err := ridgewalker.RandomQueries(g, cfg, 4096, 3)
	if err != nil {
		b.Fatal(err)
	}
	w, err := walk.NewWalker(g, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := w.Walk(qs[i%len(qs)])
		steps += st
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
	b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
}

// BenchmarkSoftwareEngine measures the multi-core CPU engine (the
// ThunderRW-style path applications can use directly).
func BenchmarkSoftwareEngine(b *testing.B) {
	g, err := ridgewalker.GenerateRMAT(ridgewalker.Balanced(14, 16, 1))
	if err != nil {
		b.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 80
	qs, err := ridgewalker.RandomQueries(g, cfg, 5000, 3)
	if err != nil {
		b.Fatal(err)
	}
	var steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ridgewalker.WalkParallel(g, qs, cfg, runtime.GOMAXPROCS(0))
		if err != nil {
			b.Fatal(err)
		}
		steps += res.Steps
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
}
