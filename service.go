package ridgewalker

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"ridgewalker/internal/admit"
	"ridgewalker/internal/exec"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/plan"
	"ridgewalker/internal/walk"
)

// ServiceConfig configures a Service.
type ServiceConfig struct {
	// Backend names the execution engine serving requests (see Backends);
	// default "auto" — the planner picks a CPU-family engine and shape
	// per query class from graph statistics, a start-up calibration
	// micro-bench, and served-query observations (see PlanStatus). Name
	// a concrete backend ("cpu", "cpu-pipelined", ...) to pin the engine
	// by hand.
	Backend string
	// Platform selects the accelerator memory system for simulator-backed
	// backends; ignored by the cpu backend.
	Platform Platform
	// Workers sizes the cpu backends' worker pools — each worker owns a
	// reused path buffer and RNG stream, so the serving hot path allocates
	// nothing per step. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Shards sets the cpu-sharded backend's graph partition count (each
	// shard owns a worker pool; walkers migrate on boundary crossings).
	// The cpu-pipelined backend also honors it, composing the cohort
	// pipeline with sharded execution. 0 means a backend-chosen default;
	// other backends ignore it.
	Shards int
	// Cohort sets the cpu-pipelined backend's in-flight walker count per
	// worker (the width of the batched Gather/Sample/Move stages). 0 means
	// the backend default; other backends ignore it.
	Cohort int
	// HubCacheBytes, when positive, sizes the cpu-pipelined backend's
	// degree-aware hub arena (the compact cache-resident copy of the
	// highest-degree rows served to the cohort Gather stage). 0 leaves it
	// off; other backends ignore it.
	HubCacheBytes int64
	// MemoryBudgetBytes, when nonzero, serves the CPU backends through
	// tiered memory: hub rows uncompressed in a budget-bounded hot arena,
	// the cold tail delta-varint compressed, with the sampler store split
	// the same way for alias workloads (see exec.Config). Trajectories
	// are byte-identical at any budget. 0 keeps the flat stores.
	MemoryBudgetBytes int64
	// MaxBatch is the flush threshold for request coalescing: a pending
	// group is dispatched as soon as its accumulated queries reach this
	// size instead of waiting out the linger. It bounds how much
	// co-batched work a request can pick up, not the size of a backend
	// dispatch — a single request larger than MaxBatch is dispatched
	// whole. Default 4096.
	MaxBatch int
	// MaxSessions caps the cached backend sessions (one per distinct walk
	// configuration, each holding samplers and worker buffers). The least
	// recently used idle session is evicted and closed when the cap is
	// exceeded. Default 16.
	MaxSessions int
	// Linger bounds how long a submitted request may wait for co-batched
	// work before its group is flushed anyway. Default 500µs.
	Linger time.Duration
	// MaxInFlight bounds admitted-but-unfinished queries across the
	// service; excess load is rejected immediately with ErrOverloaded
	// instead of queueing without bound. 0 disables the budget (admit
	// everything — quotas and admission metrics still apply),
	// AutoInFlight (-1) derives it from the EWMA-observed service rate
	// via the paper's Theorem VI.1 feedback-depth math, and a positive
	// value pins it by hand.
	MaxInFlight int
	// InteractiveWeight and BulkWeight set the lane draining ratio (and
	// each lane's share of the in-flight budget). Both zero means the
	// default 4:1; when set, each must be >= 1 so every lane stays
	// starvation-free.
	InteractiveWeight int
	BulkWeight        int
	// TenantQuota is the token-bucket allowance applied to tenants
	// without an explicit TenantQuotas entry. The zero value is
	// unlimited.
	TenantQuota TenantQuota
	// TenantQuotas overrides TenantQuota per WalkConfig.Tenant name.
	// Submissions beyond a tenant's bucket are rejected with
	// ErrQuotaExceeded without affecting other tenants.
	TenantQuotas map[string]TenantQuota
	// Plan tunes the "auto" backend's planner. nil enables calibration
	// with defaults (the service is long-lived, so the start-up
	// micro-bench amortizes); a non-nil value is used verbatim, so
	// &PlanOptions{} yields stats-only planning. Ignored when Backend
	// names a concrete engine.
	Plan *PlanOptions
	// DisableAsync and DisableDynamicSched are the "ridgewalker" backend's
	// Fig. 11 ablation switches; other backends ignore them.
	DisableAsync        bool
	DisableDynamicSched bool
}

// Counter is a served-work tally (see Service.Metrics).
type Counter struct {
	// Requests counts Submit/Stream calls.
	Requests int64
	// Queries counts walk queries served.
	Queries int64
	// Steps counts GRW hops taken.
	Steps int64
	// Batches counts backend dispatches (several requests can share one).
	Batches int64
}

func (c *Counter) add(d Counter) {
	c.Requests += d.Requests
	c.Queries += d.Queries
	c.Steps += d.Steps
	c.Batches += d.Batches
}

// ServiceMetrics is a point-in-time snapshot of served work, keyed by
// backend name, by GRW algorithm, and by graph epoch (every mutation
// batch and compaction advances the epoch; epoch 0 is the pristine
// graph, so an immutable service accumulates everything under key 0).
type ServiceMetrics struct {
	PerBackend   map[string]Counter
	PerAlgorithm map[string]Counter
	PerEpoch     map[uint64]Counter
	// PerLane and PerTenant tally admission outcomes (admitted / shed /
	// expired queries) by priority lane and by tenant (the empty tenant
	// reports as "default").
	PerLane   map[string]AdmissionCounter
	PerTenant map[string]AdmissionCounter
}

// Service is a long-lived walk-serving frontend over one graph and one
// execution backend. Concurrent Submit calls with the same walk
// configuration are coalesced into shared backend batches (bounded by
// MaxBatch and Linger), sessions are cached per configuration so samplers
// and worker state are reused across requests, and per-backend /
// per-algorithm served-query metrics are tracked.
//
// Results are deterministic per request: each query's walk depends only on
// the configured seed, the query ID, and the start vertex — never on how
// requests were batched together — so a Submit returns byte-identical paths
// to Walk for the same configuration.
type Service struct {
	g   *Graph
	vg  *graph.Versioned
	cfg ServiceConfig

	// planner is non-nil when Backend is "auto": it resolves one plan
	// per query class and folds served steps/sec back in. Guarded by
	// s.mu (the pointer is swapped when CompactGraph replaces the base
	// graph); the planner itself is internally synchronized.
	planner *plan.Planner

	// admit is the front-door overload gate: every Submit/Stream passes
	// its lane, tenant, query count, and deadline headroom through
	// Admit before any work is queued, and completed dispatches feed
	// their service time back via Observe so the auto budget tracks
	// what the engine demonstrably sustains.
	admit *admit.Controller

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	seq      int64 // LRU clock for session eviction
	pending  map[string]*batchGroup
	closed   bool
	inflight sync.WaitGroup

	// The flush queue feeds detached batch groups to the fixed dispatcher
	// pool. Groups used to get one spawned goroutine each, which a flush
	// burst (many distinct configurations lingering out at once) turned
	// into unbounded goroutine growth; now group execution is bounded at
	// Workers pool goroutines and enqueueing never blocks (a
	// mutex-guarded FIFO, so no hand-off goroutines pile up behind a full
	// channel either). The queues are unbounded, but admission bounds
	// what enters them: a group enqueues at most once, callers that stop
	// waiting (context cancellation) return while their group stays
	// queued until a worker drains it, and the admission budget caps the
	// total queries those queued groups can hold. One FIFO per priority
	// lane; workers pick the next lane by weighted round-robin, so
	// interactive groups overtake queued bulk without starving it.
	flushMu   sync.Mutex
	flushCond *sync.Cond
	flushQs   [admit.NumLanes][]flushJob
	flushWRR  *admit.WRR
	flushStop bool
	flushWG   sync.WaitGroup

	metricsMu sync.Mutex
	metrics   ServiceMetrics
}

// flushJob is one detached batch group awaiting a dispatcher worker.
type flushJob struct {
	key string
	grp *batchGroup
}

// sessionEntry is a cached backend session with a reference count (in-use
// entries are never evicted) and an LRU stamp. The session is opened
// outside the service lock — Open can build O(E) alias tables, and holding
// s.mu through that would stall every concurrent submission.
type sessionEntry struct {
	once    sync.Once
	ses     exec.Session
	err     error
	refs    int
	lastUse int64
	// epoch is the graph epoch the session serves; mutations prune idle
	// entries whose epoch is stale (their key can never be requested
	// again, so without pruning they would squat in the LRU).
	epoch uint64
}

// batchGroup accumulates compatible requests awaiting a flush. The
// serving view (base CSR + overlay snapshot + epoch) is resolved once,
// when the group is created; the epoch is part of the group key, so
// every co-batched request shares one consistent view even if mutations
// land while the group lingers.
type batchGroup struct {
	cfg      WalkConfig
	lane     int
	base     *graph.CSR
	snap     *graph.Snapshot
	epoch    uint64
	requests []*request
	queries  int
	timer    *time.Timer
	// planned/plan carry the resolved execution plan under the "auto"
	// backend. The plan's fingerprint is part of the group key, so every
	// co-batched request shares one plan revision and a drift-triggered
	// re-plan keys later requests to a fresh group (and session) instead
	// of tearing this one.
	planned bool
	plan    plan.Plan

	// The group context joins its members' contexts: it cancels when
	// every member's context is done (and the group is sealed — no more
	// joiners), so one impatient caller cannot abort work its co-batched
	// peers still want, but a group nobody is waiting for stops burning
	// engine time mid-walk. A member without a cancelable context pins
	// the group for its full run.
	ctx      context.Context
	cancel   context.CancelFunc
	cmu      sync.Mutex
	members  int
	canceled int
	sealed   bool // detached from pending: membership is final
	eternal  bool // some member can never cancel (Background et al.)
	stops    []func() bool
}

func newBatchGroup(cfg WalkConfig, base *graph.CSR, snap *graph.Snapshot, epoch uint64, planned bool, pl plan.Plan) *batchGroup {
	g := &batchGroup{
		cfg:     cfg,
		lane:    int(cfg.Lane),
		base:    base,
		snap:    snap,
		epoch:   epoch,
		planned: planned,
		plan:    pl,
	}
	g.ctx, g.cancel = context.WithCancel(context.Background())
	return g
}

// addMember registers one submitter's context with the group. Called
// while the group is still in pending (membership not yet sealed).
func (g *batchGroup) addMember(ctx context.Context) {
	g.cmu.Lock()
	defer g.cmu.Unlock()
	g.members++
	if g.eternal {
		return
	}
	if ctx.Done() == nil {
		g.eternal = true
		return
	}
	g.stops = append(g.stops, context.AfterFunc(ctx, g.memberDone))
}

// memberDone runs when one member's context is done.
func (g *batchGroup) memberDone() {
	g.cmu.Lock()
	g.canceled++
	fire := g.sealed && !g.eternal && g.canceled >= g.members
	g.cmu.Unlock()
	if fire {
		g.cancel()
	}
}

// seal marks membership final (the group left pending). Until sealed,
// all-members-canceled must not cancel the group: a late joiner could
// still arrive and depend on the run.
func (g *batchGroup) seal() {
	g.cmu.Lock()
	g.sealed = true
	fire := !g.eternal && g.members > 0 && g.canceled >= g.members
	g.cmu.Unlock()
	if fire {
		g.cancel()
	}
}

// releaseCtx detaches the member watchers and releases the group
// context's resources after the run.
func (g *batchGroup) releaseCtx() {
	g.cmu.Lock()
	stops := g.stops
	g.stops = nil
	g.cmu.Unlock()
	for _, stop := range stops {
		stop()
	}
	g.cancel()
}

// request is one Submit call's share of a batch group.
type request struct {
	queries []Query
	tenant  string
	done    chan reply
}

type reply struct {
	res *Result
	err error
}

// NewService builds a serving frontend for g. Close releases it.
func NewService(g *Graph, cfg ServiceConfig) (*Service, error) {
	if cfg.Backend == "" {
		cfg.Backend = "auto"
	}
	if _, err := exec.Lookup(cfg.Backend); err != nil {
		return nil, err
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("ridgewalker: service workers %d, want >= 1", cfg.Workers)
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("ridgewalker: service max batch %d, want >= 1", cfg.MaxBatch)
	}
	if cfg.Linger == 0 {
		cfg.Linger = 500 * time.Microsecond
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 16
	}
	if cfg.MaxSessions < 1 {
		return nil, fmt.Errorf("ridgewalker: service max sessions %d, want >= 1", cfg.MaxSessions)
	}
	if cfg.MaxInFlight < AutoInFlight {
		return nil, fmt.Errorf("ridgewalker: service max in-flight %d, want AutoInFlight (-1), 0 (unbounded), or > 0", cfg.MaxInFlight)
	}
	weights := [admit.NumLanes]int{cfg.InteractiveWeight, cfg.BulkWeight}
	if weights != [admit.NumLanes]int{} {
		// A zero-weight lane would never drain — its queued groups (and
		// the submitters waiting on them) would hang forever.
		if cfg.InteractiveWeight < 1 || cfg.BulkWeight < 1 {
			return nil, fmt.Errorf("ridgewalker: lane weights %d:%d, want both >= 1 (or both 0 for the default)",
				cfg.InteractiveWeight, cfg.BulkWeight)
		}
	}
	s := &Service{
		g:        g,
		vg:       graph.NewVersioned(g),
		cfg:      cfg,
		sessions: map[string]*sessionEntry{},
		pending:  map[string]*batchGroup{},
		metrics: ServiceMetrics{
			PerBackend:   map[string]Counter{},
			PerAlgorithm: map[string]Counter{},
			PerEpoch:     map[uint64]Counter{},
		},
	}
	s.admit = admit.NewController(admit.Config{
		Workers:      cfg.Workers,
		MaxInFlight:  cfg.MaxInFlight,
		LaneWeights:  weights,
		DefaultQuota: cfg.TenantQuota,
		TenantQuotas: cfg.TenantQuotas,
	})
	s.flushWRR = admit.NewWRR(weights)
	s.flushCond = sync.NewCond(&s.flushMu)
	if cfg.Backend == "auto" {
		s.planner = s.newPlanner(g)
		// Service-start calibration: warm the always-valid URW class now
		// so the first request doesn't pay the micro-bench. Other classes
		// calibrate on first use, cached per class. Failure is not fatal —
		// the planner falls back to stats-only decisions.
		s.planner.PlanFor(walk.DefaultConfig(walk.URW))
	}
	s.flushWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.flushWorker()
	}
	return s, nil
}

// newPlanner builds the auto backend's planner over base: the service's
// pinned knobs become planning constraints, and calibration defaults on
// unless the caller supplied PlanOptions.
func (s *Service) newPlanner(base *graph.CSR) *plan.Planner {
	opts := plan.Options{Calibrate: true}
	if s.cfg.Plan != nil {
		opts = *s.cfg.Plan
	}
	return exec.NewPlanner(base, exec.Config{
		Workers:           s.cfg.Workers,
		Shards:            s.cfg.Shards,
		Cohort:            s.cfg.Cohort,
		HubCacheBytes:     s.cfg.HubCacheBytes,
		MemoryBudgetBytes: s.cfg.MemoryBudgetBytes,
		Plan:              &opts,
	})
}

// resolvePlan returns the current plan for cfg's class (calibrating on
// first use) plus the key suffix that folds it into request coalescing.
// Manual backends plan nothing and contribute no suffix.
func (s *Service) resolvePlan(cfg WalkConfig) (pl plan.Plan, planned bool, suffix string, err error) {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil {
		return plan.Plan{}, false, "", nil
	}
	pl, err = p.PlanFor(cfg)
	if err != nil {
		return plan.Plan{}, false, "", err
	}
	return pl, true, "|" + pl.Fingerprint(), nil
}

// observePlan feeds a served batch's realized throughput back to the
// planner (drift beyond the configured factor re-plans the class).
func (s *Service) observePlan(cfg WalkConfig, steps int64, elapsed time.Duration) {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil || steps == 0 || elapsed <= 0 {
		return
	}
	p.Observe(cfg, float64(steps)/elapsed.Seconds())
}

// PlanStatus reports the auto backend's per-class planning state: the
// resolved plan (chosen backend, cohort, shards, memory placement),
// predicted vs observed steps/sec, and how often drift forced a
// re-plan. nil when the service runs a manually pinned backend.
func (s *Service) PlanStatus() []PlanClassStatus {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Status()
}

// ExplainPlan renders the full decision record for cfg's class —
// graph statistics, probed candidates, chosen plan — resolving the plan
// first if needed. Errors when the service runs a manual backend.
func (s *Service) ExplainPlan(cfg WalkConfig) (string, error) {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil {
		return "", fmt.Errorf("ridgewalker: backend %q is manually pinned (no planner)", s.cfg.Backend)
	}
	return p.Explain(cfg)
}

// flushWorker is one dispatcher-pool goroutine: it drains the per-lane
// flush queues, running one detached group at a time, until Close
// signals stop (by then the queues are empty — Close waits out inflight
// first). The next lane is picked by weighted round-robin over the
// non-empty lanes, so interactive groups overtake queued bulk while a
// sustained interactive flood still grants bulk its weight share of
// dispatches (starvation-free).
func (s *Service) flushWorker() {
	defer s.flushWG.Done()
	for {
		s.flushMu.Lock()
		for s.flushEmptyLocked() && !s.flushStop {
			s.flushCond.Wait()
		}
		lane := s.flushWRR.Next(func(l int) bool { return len(s.flushQs[l]) > 0 })
		if lane < 0 {
			s.flushMu.Unlock()
			return // stopping and every lane is empty
		}
		q := s.flushQs[lane]
		j := q[0]
		q[0] = flushJob{}
		q = q[1:]
		if len(q) == 0 {
			q = nil // release the drained backing array
		}
		s.flushQs[lane] = q
		s.flushMu.Unlock()
		s.runGroup(j.key, j.grp)
		s.inflight.Done()
	}
}

// flushEmptyLocked reports whether every lane's flush queue is empty.
// Called with flushMu held.
func (s *Service) flushEmptyLocked() bool {
	for _, q := range s.flushQs {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// cfgKey canonicalizes a walk configuration plus the graph epoch it
// serves for session caching and request coalescing. The epoch dimension
// keeps sessions epoch-consistent: a mutation advances the epoch, so
// later requests key to (and open) a fresh session over the new serving
// view while in-flight groups finish on theirs. The lane dimension keeps
// priority classes in separate groups (they drain through different
// flush queues); the tenant is deliberately excluded — quotas gate at
// admission and cross-tenant co-batching is trajectory-neutral.
func cfgKey(cfg WalkConfig, epoch uint64) string {
	return fmt.Sprintf("%d|%d|%g|%g|%g|%v|%d|l%d|e%d",
		cfg.Algorithm, cfg.WalkLength, cfg.Alpha, cfg.P, cfg.Q, cfg.Schema, cfg.Seed, cfg.Lane, epoch)
}

// acquireSession returns the cached session for a walk configuration,
// opening it on first use, and pins it against eviction until
// releaseSession. Sessions serialize their own batches, so sharing is
// safe. Deliberately usable while closing: Close drains pending groups
// through it.
func (s *Service) acquireSession(key string, grp *batchGroup) (*sessionEntry, error) {
	s.mu.Lock()
	e := s.sessions[key]
	if e == nil {
		e = &sessionEntry{epoch: grp.epoch}
		s.sessions[key] = e
	}
	e.refs++ // pin before evicting so the new entry cannot be the victim
	s.evictLocked()
	s.mu.Unlock()
	// First user opens the session; everyone else waits here. The service
	// lock is not held, so submissions for other configurations proceed.
	// The session opens over the serving view its key's epoch pinned —
	// the base CSR current at key time plus the overlay snapshot (nil
	// when the overlay was empty) — never over state read at open time,
	// which a racing mutation could have advanced past the key.
	e.once.Do(func() {
		backend := s.cfg.Backend
		ec := exec.Config{
			Walk:                grp.cfg,
			Platform:            s.cfg.Platform,
			Workers:             s.cfg.Workers,
			Shards:              s.cfg.Shards,
			Cohort:              s.cfg.Cohort,
			HubCacheBytes:       s.cfg.HubCacheBytes,
			MemoryBudgetBytes:   s.cfg.MemoryBudgetBytes,
			Snapshot:            grp.snap,
			DisableAsync:        s.cfg.DisableAsync,
			DisableDynamicSched: s.cfg.DisableDynamicSched,
		}
		if grp.planned {
			// The plan was resolved at key time (its fingerprint is in the
			// key), so the session opens the chosen concrete engine with the
			// resolved shape — never "auto" recursively, which would
			// recalibrate per session open.
			backend = grp.plan.Backend
			ec.Shards = grp.plan.Shards
			ec.Cohort = grp.plan.Cohort
			ec.HubCacheBytes = grp.plan.HubCacheBytes
			ec.MemoryBudgetBytes = grp.plan.MemoryBudgetBytes
		}
		e.ses, e.err = exec.Open(backend, grp.base, ec)
	})
	if e.err != nil {
		s.mu.Lock()
		e.refs--
		if s.sessions[key] == e {
			delete(s.sessions, key) // failed open: allow a later retry
		}
		s.mu.Unlock()
		return nil, e.err
	}
	return e, nil
}

// releaseSession unpins an acquired session and stamps its recency.
func (s *Service) releaseSession(e *sessionEntry) {
	s.mu.Lock()
	e.refs--
	s.seq++
	e.lastUse = s.seq
	s.mu.Unlock()
}

// evictLocked enforces MaxSessions by closing the least recently used idle
// session. In-use sessions are skipped (the cap is soft while everything
// is busy). Called with s.mu held.
func (s *Service) evictLocked() {
	for len(s.sessions) > s.cfg.MaxSessions {
		var victimKey string
		var victim *sessionEntry
		for k, e := range s.sessions {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(s.sessions, victimKey)
		// refs==0 and the entry is out of the map, so nobody else can
		// reach it; Close is safe here (sessions serialize internally and
		// an idle session closes without blocking).
		if victim.ses != nil {
			victim.ses.Close()
		}
	}
}

// record folds served work into the metric maps. backend is the engine
// that actually served the batch — under "auto" the resolved backend
// name, so the metrics show where planned traffic really ran.
func (s *Service) record(backend string, alg Algorithm, epoch uint64, d Counter) {
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	b := s.metrics.PerBackend[backend]
	b.add(d)
	s.metrics.PerBackend[backend] = b
	a := s.metrics.PerAlgorithm[alg.String()]
	a.add(d)
	s.metrics.PerAlgorithm[alg.String()] = a
	ep := s.metrics.PerEpoch[epoch]
	ep.add(d)
	s.metrics.PerEpoch[epoch] = ep
}

// Metrics returns a snapshot of served-work counters.
func (s *Service) Metrics() ServiceMetrics {
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	out := ServiceMetrics{
		PerBackend:   make(map[string]Counter, len(s.metrics.PerBackend)),
		PerAlgorithm: make(map[string]Counter, len(s.metrics.PerAlgorithm)),
		PerEpoch:     make(map[uint64]Counter, len(s.metrics.PerEpoch)),
	}
	for k, v := range s.metrics.PerBackend {
		out.PerBackend[k] = v
	}
	for k, v := range s.metrics.PerAlgorithm {
		out.PerAlgorithm[k] = v
	}
	for k, v := range s.metrics.PerEpoch {
		out.PerEpoch[k] = v
	}
	ast := s.admit.Stats()
	out.PerLane = ast.PerLane
	out.PerTenant = ast.PerTenant
	return out
}

// AdmissionStatus snapshots the admission controller: the current
// in-flight budget (static, or Theorem VI.1-derived under
// AutoInFlight), admitted-but-unfinished queries, the EWMA service rate
// and feedback window driving the auto budget, and per-lane/per-tenant
// admitted/shed/expired counters.
func (s *Service) AdmissionStatus() AdmissionStats { return s.admit.Stats() }

// deadlineHeadroom converts a submitter's context deadline into the
// admission gate's headroom argument: time remaining until the deadline
// (floored at zero), or -1 when the context has none.
func deadlineHeadroom(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return -1
	}
	if h := time.Until(dl); h > 0 {
		return h
	}
	return 0
}

// Submit executes queries under cfg and returns their paths in input
// order. Concurrent submissions sharing a walk configuration are coalesced
// into one backend batch when the backend's determinism permits; the reply
// always covers exactly the caller's queries.
//
// Submissions pass the admission gate first: work beyond the in-flight
// budget (ServiceConfig.MaxInFlight), the tenant's quota, or the
// context deadline's feasibility is rejected immediately with
// ErrOverloaded / ErrQuotaExceeded instead of queueing — rejection
// costs microseconds where queueing would cost the deadline. ctx also
// propagates end to end: when every submitter of a batch has canceled,
// the batch itself is canceled mid-walk and its remaining steps shed.
func (s *Service) Submit(ctx context.Context, cfg WalkConfig, queries []Query) (*Result, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("ridgewalker: no queries")
	}
	if err := cfg.Validate(s.g); err != nil {
		return nil, err
	}
	lane := int(cfg.Lane)
	if err := s.admit.Admit(lane, cfg.Tenant, len(queries), deadlineHeadroom(ctx)); err != nil {
		return nil, err
	}
	// Admitted: from here every path must release the in-flight slots —
	// early returns directly, joined groups through runGroup's delivery.
	pl, planned, suffix, err := s.resolvePlan(cfg)
	if err != nil {
		s.admit.Release(lane, len(queries))
		return nil, err
	}
	base, snap, epoch := s.vg.Serving()
	key := cfgKey(cfg, epoch) + suffix
	req := &request{queries: queries, tenant: cfg.Tenant, done: make(chan reply, 1)}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.admit.Release(lane, len(queries))
		return nil, ErrServiceClosed
	}
	grp := s.pending[key]
	if grp == nil {
		grp = newBatchGroup(cfg, base, snap, epoch, planned, pl)
		s.pending[key] = grp
		grp.timer = time.AfterFunc(s.cfg.Linger, func() { s.flush(key, grp) })
	}
	grp.requests = append(grp.requests, req)
	grp.addMember(ctx)
	grp.queries += len(queries)
	full := grp.queries >= s.cfg.MaxBatch
	if full {
		grp.timer.Stop()
	}
	s.mu.Unlock()
	if full {
		s.flush(key, grp)
	}

	select {
	case r := <-req.done:
		return r.res, r.err
	case <-ctx.Done():
		// This caller stops waiting. The batch keeps running while any
		// co-batched request still wants it; once every member's context
		// is done the group context cancels and the engine sheds the
		// batch's remaining steps mid-walk.
		return nil, ctx.Err()
	}
}

// flush dispatches a pending group. The first of the two triggers (linger
// timer, size cap) wins; the group is detached under the lock so the
// other trigger finds it gone. The group is appended to the dispatcher
// pool's queue — a non-blocking O(1) enqueue, so Submit returns to its
// context select immediately and no goroutine ever parks on a hand-off —
// and executed by one of the Workers pool goroutines. The group is
// registered with inflight before it is queued, so Close cannot return
// before a worker has run it.
func (s *Service) flush(key string, grp *batchGroup) {
	s.mu.Lock()
	if s.pending[key] != grp {
		s.mu.Unlock()
		return
	}
	delete(s.pending, key)
	s.inflight.Add(1)
	s.mu.Unlock()
	// Detached: no more joiners, so all-members-canceled may now cancel
	// the group context.
	grp.seal()
	s.flushMu.Lock()
	s.flushQs[grp.lane] = append(s.flushQs[grp.lane], flushJob{key: key, grp: grp})
	s.flushMu.Unlock()
	s.flushCond.Signal()
}

// deliver hands one request its reply and returns its admission slots.
// An error reply while the group context is canceled means the admitted
// work expired mid-flight (every submitter was gone), which the
// controller counts separately from shedding at the gate.
func (s *Service) deliver(grp *batchGroup, r *request, rep reply) {
	if rep.err != nil && grp.ctx.Err() != nil {
		s.admit.Expire(grp.lane, r.tenant, len(r.queries))
	}
	r.done <- rep
	s.admit.Release(grp.lane, len(r.queries))
}

// runGroup executes a flushed group on the cached session and distributes
// per-request results. The group runs under its joined member context —
// canceled exactly when every submitter's context is done — so
// abandoned batches shed their remaining steps at the engine's next
// cooperative checkpoint instead of completing for nobody.
func (s *Service) runGroup(key string, grp *batchGroup) {
	defer grp.releaseCtx()
	e, err := s.acquireSession(key, grp)
	if err != nil {
		for _, r := range grp.requests {
			s.deliver(grp, r, reply{err: err})
		}
		return
	}
	defer s.releaseSession(e)
	ses := e.ses
	backend := s.cfg.Backend
	if grp.planned {
		backend = grp.plan.Backend
	}
	// Backends declaring the BatchMerger capability (the cpu family, whose
	// per-query RNG streams make walks independent of batch composition)
	// merge requests into one backend dispatch. The rest — simulators
	// routing walks through shared pipelines, models requiring unique query
	// IDs — run requests back-to-back instead, still amortizing the
	// session's sampler and configuration.
	merge := exec.MergesBatches(backend)
	ctx := grp.ctx
	if merge {
		all := make([]walk.Query, 0, grp.queries)
		for _, r := range grp.requests {
			all = append(all, r.queries...)
		}
		start := time.Now()
		res, err := ses.Run(ctx, exec.Batch{Queries: all})
		if err != nil {
			for _, r := range grp.requests {
				s.deliver(grp, r, reply{err: err})
			}
			return
		}
		service := time.Since(start)
		s.admit.Observe(len(all), service)
		if grp.planned {
			s.observePlan(grp.cfg, res.Steps, service)
		}
		lo := 0
		var steps int64
		for _, r := range grp.requests {
			hi := lo + len(r.queries)
			sub := &Result{Paths: res.Paths[lo:hi:hi]}
			for _, p := range sub.Paths {
				sub.Steps += int64(len(p) - 1)
			}
			steps += sub.Steps
			s.deliver(grp, r, reply{res: sub})
			lo = hi
		}
		s.record(backend, grp.cfg.Algorithm, grp.epoch, Counter{
			Requests: int64(len(grp.requests)),
			Queries:  int64(grp.queries),
			Steps:    steps,
			Batches:  1,
		})
		return
	}
	for _, r := range grp.requests {
		start := time.Now()
		res, err := ses.Run(ctx, exec.Batch{Queries: r.queries})
		if err != nil {
			s.deliver(grp, r, reply{err: err})
			continue
		}
		s.admit.Observe(len(r.queries), time.Since(start))
		s.deliver(grp, r, reply{res: &Result{Paths: res.Paths, Steps: res.Steps}})
		s.record(backend, grp.cfg.Algorithm, grp.epoch, Counter{
			Requests: 1,
			Queries:  int64(len(r.queries)),
			Steps:    res.Steps,
			Batches:  1,
		})
	}
}

// Stream executes queries under cfg, delivering each finished walk to fn
// as it completes instead of materializing all paths — the request's
// memory footprint stays O(queries), not O(steps). The path passed to fn
// is only valid during the callback. Streaming requests bypass batching
// (delivery is per-caller) but share the cached session.
func (s *Service) Stream(ctx context.Context, cfg WalkConfig, queries []Query, fn func(WalkOutput) error) error {
	if len(queries) == 0 {
		return fmt.Errorf("ridgewalker: no queries")
	}
	if err := cfg.Validate(s.g); err != nil {
		return err
	}
	lane := int(cfg.Lane)
	if err := s.admit.Admit(lane, cfg.Tenant, len(queries), deadlineHeadroom(ctx)); err != nil {
		return err
	}
	defer s.admit.Release(lane, len(queries))
	pl, planned, suffix, err := s.resolvePlan(cfg)
	if err != nil {
		return err
	}
	base, snap, epoch := s.vg.Serving()
	key := cfgKey(cfg, epoch) + suffix
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServiceClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	e, err := s.acquireSession(key, &batchGroup{cfg: cfg, lane: lane, base: base, snap: snap, epoch: epoch, planned: planned, plan: pl})
	if err != nil {
		return err
	}
	defer s.releaseSession(e)
	backend := s.cfg.Backend
	if planned {
		backend = pl.Backend
	}
	var steps int64
	start := time.Now()
	err = e.ses.Stream(ctx, exec.Batch{Queries: queries}, func(w WalkOutput) error {
		steps += w.Steps
		return fn(w)
	})
	if err != nil {
		if ctx.Err() != nil {
			// The caller's deadline expired (or it canceled) mid-stream:
			// the engine shed the remaining walks at its next checkpoint.
			s.admit.Expire(lane, cfg.Tenant, len(queries))
		}
		return err
	}
	service := time.Since(start)
	s.admit.Observe(len(queries), service)
	if planned {
		s.observePlan(cfg, steps, service)
	}
	s.record(backend, cfg.Algorithm, epoch, Counter{
		Requests: 1,
		Queries:  int64(len(queries)),
		Steps:    steps,
		Batches:  1,
	})
	return nil
}

// InsertEdges adds a batch of edges to the served graph, advancing its
// epoch. Undirected graphs mirror each edge and weighted graphs assign
// inserted edges the construction-recipe weight, so a later compaction
// (or a cold rebuild of the final edge list) is indistinguishable from
// the mutated view. In-flight requests finish on the epoch they started
// with; requests submitted after InsertEdges returns see the new edges.
// The batch is atomic: on error nothing is applied.
func (s *Service) InsertEdges(edges []Edge) error {
	if err := s.vg.InsertEdges(edges); err != nil {
		return err
	}
	s.pruneStaleSessions()
	s.refreshPlannerStats()
	return nil
}

// DeleteEdges removes a batch of edges from the served graph, advancing
// its epoch (see InsertEdges for visibility semantics). Deleting an edge
// the current view does not contain is an error, and the batch is
// atomic: on error nothing is applied.
func (s *Service) DeleteEdges(edges []Edge) error {
	if err := s.vg.DeleteEdges(edges); err != nil {
		return err
	}
	s.pruneStaleSessions()
	s.refreshPlannerStats()
	return nil
}

// CompactGraph folds all accumulated mutations into a fresh base CSR and
// empties the overlay, advancing the epoch. Subsequent sessions serve
// the compacted graph flat — no overlay probes, no derived sampler rows
// — so periodic compaction bounds the overlay cost of a long-lived
// mutating service. It is safe to call from a background goroutine while
// requests are being served. Returns the new base graph.
func (s *Service) CompactGraph() *Graph {
	g := s.vg.Compact()
	s.pruneStaleSessions()
	s.mu.Lock()
	if s.planner != nil {
		// Compaction replaces the base CSR, so the planner's statistics,
		// probe subgraph, and calibration cache all describe a dead graph:
		// rebuild over the new base. Classes recalibrate lazily on their
		// next request.
		s.planner = s.newPlanner(g)
	}
	s.mu.Unlock()
	return g
}

// GraphEpoch returns the served graph's current epoch (0 until the first
// mutation).
func (s *Service) GraphEpoch() uint64 { return s.vg.Epoch() }

// GraphStats returns the served graph's mutation accounting.
func (s *Service) GraphStats() GraphVersionStats { return s.vg.Stats() }

// refreshPlannerStats recomputes the planner's overlay-dependent
// statistics after a mutation: the serving snapshot's dirty fraction is
// a plan input, and crossing the heavy-dirtiness threshold marks every
// class for re-planning (see plan.Planner.RefreshStats).
func (s *Service) refreshPlannerStats() {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil {
		return
	}
	_, snap, _ := s.vg.Serving()
	p.RefreshStats(snap)
}

// pruneStaleSessions closes idle cached sessions keyed to epochs older
// than the current one. Their keys can never be requested again (the
// epoch only advances), so without pruning every mutation would leave a
// dead session squatting in the LRU until cap pressure evicted it. Busy
// stale sessions are left to finish and age out normally.
func (s *Service) pruneStaleSessions() {
	epoch := s.vg.Epoch()
	s.mu.Lock()
	var victims []exec.Session
	for k, e := range s.sessions {
		if e.refs == 0 && e.epoch < epoch {
			delete(s.sessions, k)
			if e.ses != nil {
				victims = append(victims, e.ses)
			}
		}
	}
	s.mu.Unlock()
	for _, ses := range victims {
		ses.Close()
	}
}

// Close flushes pending groups, waits for in-flight work, and releases the
// cached sessions. Submissions after Close fail.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	groups := make(map[string]*batchGroup, len(s.pending))
	for k, g := range s.pending {
		g.timer.Stop()
		groups[k] = g
	}
	s.mu.Unlock()
	for k, g := range groups {
		// flush re-checks membership; pending was not cleared, so detach
		// manually then run inline. Each group either drains normally
		// (some submitter still waits) or — when every member already
		// canceled — sheds via its joined context; either way every
		// request gets a reply and no group is silently dropped.
		s.mu.Lock()
		if s.pending[k] == g {
			delete(s.pending, k)
			s.mu.Unlock()
			g.seal()
			s.runGroup(k, g)
		} else {
			s.mu.Unlock()
		}
	}
	s.inflight.Wait()
	// All flushes registered with inflight have been executed by the pool
	// (flush registers before it enqueues), and closed stops new ones, so
	// the queue is empty and the workers can drain out.
	s.flushMu.Lock()
	s.flushStop = true
	s.flushMu.Unlock()
	s.flushCond.Broadcast()
	s.flushWG.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	keys := make([]string, 0, len(s.sessions))
	for k := range s.sessions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := s.sessions[k]
		if e.ses == nil {
			continue
		}
		if err := e.ses.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.sessions = map[string]*sessionEntry{}
	return firstErr
}
