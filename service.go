package ridgewalker

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ridgewalker/internal/admit"
	"ridgewalker/internal/exec"
	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/plan"
	"ridgewalker/internal/walk"
)

// ServiceConfig configures a Service.
type ServiceConfig struct {
	// Backend names the execution engine serving requests (see Backends);
	// default "auto" — the planner picks a CPU-family engine and shape
	// per query class from graph statistics, a start-up calibration
	// micro-bench, and served-query observations (see PlanStatus). Name
	// a concrete backend ("cpu", "cpu-pipelined", ...) to pin the engine
	// by hand.
	Backend string
	// Platform selects the accelerator memory system for simulator-backed
	// backends; ignored by the cpu backend.
	Platform Platform
	// Workers sizes the cpu backends' worker pools — each worker owns a
	// reused path buffer and RNG stream, so the serving hot path allocates
	// nothing per step. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Shards sets the cpu-sharded backend's graph partition count (each
	// shard owns a worker pool; walkers migrate on boundary crossings).
	// The cpu-pipelined backend also honors it, composing the cohort
	// pipeline with sharded execution. 0 means a backend-chosen default;
	// other backends ignore it.
	Shards int
	// Cohort sets the cpu-pipelined backend's in-flight walker count per
	// worker (the width of the batched Gather/Sample/Move stages). 0 means
	// the backend default; other backends ignore it.
	Cohort int
	// HubCacheBytes, when positive, sizes the cpu-pipelined backend's
	// degree-aware hub arena (the compact cache-resident copy of the
	// highest-degree rows served to the cohort Gather stage). 0 leaves it
	// off; other backends ignore it.
	HubCacheBytes int64
	// MemoryBudgetBytes, when nonzero, serves the CPU backends through
	// tiered memory: hub rows uncompressed in a budget-bounded hot arena,
	// the cold tail delta-varint compressed, with the sampler store split
	// the same way for alias workloads (see exec.Config). Trajectories
	// are byte-identical at any budget. 0 keeps the flat stores.
	MemoryBudgetBytes int64
	// MaxBatch is the flush threshold for request coalescing: a pending
	// group is dispatched as soon as its accumulated queries reach this
	// size instead of waiting out the linger. It bounds how much
	// co-batched work a request can pick up, not the size of a backend
	// dispatch — a single request larger than MaxBatch is dispatched
	// whole. Default 4096.
	MaxBatch int
	// MaxSessions caps the cached backend sessions (one per distinct walk
	// configuration, each holding samplers and worker buffers). The least
	// recently used idle session is evicted and closed when the cap is
	// exceeded. Default 16.
	MaxSessions int
	// Linger bounds how long a submitted request may wait for co-batched
	// work before its group is flushed anyway. Default 500µs.
	Linger time.Duration
	// MaxInFlight bounds admitted-but-unfinished queries across the
	// service; excess load is rejected immediately with ErrOverloaded
	// instead of queueing without bound. 0 disables the budget (admit
	// everything — quotas and admission metrics still apply),
	// AutoInFlight (-1) derives it from the EWMA-observed service rate
	// via the paper's Theorem VI.1 feedback-depth math, and a positive
	// value pins it by hand.
	MaxInFlight int
	// InteractiveWeight and BulkWeight set the lane draining ratio (and
	// each lane's share of the in-flight budget). Both zero means the
	// default 4:1; when set, each must be >= 1 so every lane stays
	// starvation-free.
	InteractiveWeight int
	BulkWeight        int
	// TenantQuota is the token-bucket allowance applied to tenants
	// without an explicit TenantQuotas entry. The zero value is
	// unlimited.
	TenantQuota TenantQuota
	// TenantQuotas overrides TenantQuota per WalkConfig.Tenant name.
	// Submissions beyond a tenant's bucket are rejected with
	// ErrQuotaExceeded without affecting other tenants.
	TenantQuotas map[string]TenantQuota
	// Plan tunes the "auto" backend's planner. nil enables calibration
	// with defaults (the service is long-lived, so the start-up
	// micro-bench amortizes); a non-nil value is used verbatim, so
	// &PlanOptions{} yields stats-only planning. Ignored when Backend
	// names a concrete engine.
	Plan *PlanOptions
	// DisableAsync and DisableDynamicSched are the "ridgewalker" backend's
	// Fig. 11 ablation switches; other backends ignore them.
	DisableAsync        bool
	DisableDynamicSched bool
	// BreakerThreshold is how many consecutive engine faults on one query
	// class open its circuit breaker — under the "auto" backend the class
	// is demoted to the known-good cpu engine until a half-open re-probe
	// succeeds. 0 means the default (3); negative disables the breaker
	// (faults are still counted and contained).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before allowing
	// one half-open restore probe. 0 means the default (5s).
	BreakerCooldown time.Duration
	// QuarantineThreshold is how many engine faults a single query (same
	// configuration, ID, and start vertex) may cause before later
	// submissions carrying it are rejected with ErrQuarantined — a
	// deterministic poison query cannot take the same engine down
	// forever. 0 means the default (3); negative disables quarantine.
	QuarantineThreshold int
	// WatchdogInterval is the no-progress scan period for dispatched
	// batch groups: a heartbeat-capable engine that reports no forward
	// progress for two consecutive scans is canceled and its queries shed
	// with watchdog accounting (see FaultStatus). 0 means the default
	// (2s); negative disables the watchdog.
	WatchdogInterval time.Duration
}

// Counter is a served-work tally (see Service.Metrics).
type Counter struct {
	// Requests counts Submit/Stream calls.
	Requests int64
	// Queries counts walk queries served.
	Queries int64
	// Steps counts GRW hops taken.
	Steps int64
	// Batches counts backend dispatches (several requests can share one).
	Batches int64
}

func (c *Counter) add(d Counter) {
	c.Requests += d.Requests
	c.Queries += d.Queries
	c.Steps += d.Steps
	c.Batches += d.Batches
}

// ServiceMetrics is a point-in-time snapshot of served work, keyed by
// backend name, by GRW algorithm, and by graph epoch (every mutation
// batch and compaction advances the epoch; epoch 0 is the pristine
// graph, so an immutable service accumulates everything under key 0).
type ServiceMetrics struct {
	PerBackend   map[string]Counter
	PerAlgorithm map[string]Counter
	PerEpoch     map[uint64]Counter
	// PerLane and PerTenant tally admission outcomes (admitted / shed /
	// expired queries) by priority lane and by tenant (the empty tenant
	// reports as "default").
	PerLane   map[string]AdmissionCounter
	PerTenant map[string]AdmissionCounter
}

// Service is a long-lived walk-serving frontend over one graph and one
// execution backend. Concurrent Submit calls with the same walk
// configuration are coalesced into shared backend batches (bounded by
// MaxBatch and Linger), sessions are cached per configuration so samplers
// and worker state are reused across requests, and per-backend /
// per-algorithm served-query metrics are tracked.
//
// Results are deterministic per request: each query's walk depends only on
// the configured seed, the query ID, and the start vertex — never on how
// requests were batched together — so a Submit returns byte-identical paths
// to Walk for the same configuration.
type Service struct {
	g   *Graph
	vg  *graph.Versioned
	cfg ServiceConfig

	// planner is non-nil when Backend is "auto": it resolves one plan
	// per query class and folds served steps/sec back in. Guarded by
	// s.mu (the pointer is swapped when CompactGraph replaces the base
	// graph); the planner itself is internally synchronized.
	planner *plan.Planner

	// admit is the front-door overload gate: every Submit/Stream passes
	// its lane, tenant, query count, and deadline headroom through
	// Admit before any work is queued, and completed dispatches feed
	// their service time back via Observe so the auto budget tracks
	// what the engine demonstrably sustains.
	admit *admit.Controller

	mu       sync.Mutex
	sessions map[string]*sessionEntry
	seq      int64 // LRU clock for session eviction
	pending  map[string]*batchGroup
	closed   bool
	inflight sync.WaitGroup

	// The flush queue feeds detached batch groups to the fixed dispatcher
	// pool. Groups used to get one spawned goroutine each, which a flush
	// burst (many distinct configurations lingering out at once) turned
	// into unbounded goroutine growth; now group execution is bounded at
	// Workers pool goroutines and enqueueing never blocks (a
	// mutex-guarded FIFO, so no hand-off goroutines pile up behind a full
	// channel either). The queues are unbounded, but admission bounds
	// what enters them: a group enqueues at most once, callers that stop
	// waiting (context cancellation) return while their group stays
	// queued until a worker drains it, and the admission budget caps the
	// total queries those queued groups can hold. One FIFO per priority
	// lane; workers pick the next lane by weighted round-robin, so
	// interactive groups overtake queued bulk without starving it.
	flushMu     sync.Mutex
	flushCond   *sync.Cond
	flushQs     [admit.NumLanes]flushHeap
	flushWRR    *admit.WRR
	flushSeq    int64
	flushStop   bool
	flushPaused bool // test hook: hold dispatch so EDF ordering can be observed
	flushWG     sync.WaitGroup

	// breaker trips a query class to the known-good cpu engine after
	// BreakerThreshold consecutive engine faults (see noteGroupOutcome /
	// resolvePlan). nil when BreakerThreshold is negative.
	breaker *fault.Breaker

	// Quarantine tracks per-query engine-fault counts: a query that
	// deterministically crashes the engine QuarantineThreshold times is
	// rejected at the front door instead of burning another session.
	// Keyed by a hash of (walk configuration identity, query ID, start);
	// bounded at quarantineTableCap entries.
	qmu     sync.Mutex
	qcounts map[uint64]int

	// Watchdog state: every dispatched group on a heartbeat-capable
	// engine registers here; the scanner cancels groups whose heartbeat
	// stops advancing (see watchdogScan).
	watchMu     sync.Mutex
	watched     map[*batchGroup]*watchEntry
	watchEvents []WatchdogEvent // bounded ring, newest last
	watchStop   chan struct{}
	watchWG     sync.WaitGroup

	metricsMu sync.Mutex
	metrics   ServiceMetrics
}

// quarantineTableCap bounds the quarantine fault-count table. Past the
// cap new faulting queries are no longer tracked (existing entries keep
// counting) — an adversarial query stream cannot grow the table without
// bound.
const quarantineTableCap = 4096

// watchdogEventCap bounds the retained watchdog diagnostic ring.
const watchdogEventCap = 32

// flushJob is one detached batch group awaiting a dispatcher worker.
type flushJob struct {
	key string
	grp *batchGroup
	// deadline is the group's earliest member deadline (EDF ordering
	// within the lane); hasDL false means no member carried one.
	deadline time.Time
	hasDL    bool
	// seq breaks ties FIFO so deadline-free groups keep arrival order.
	seq int64
}

// flushHeap orders one lane's detached groups earliest-deadline-first:
// deadlined groups ahead of deadline-free ones, earlier deadlines first,
// arrival order as the tiebreak. Lane selection stays weighted
// round-robin (see flushWorker); EDF applies within a lane's share.
type flushHeap []flushJob

func (h flushHeap) Len() int { return len(h) }
func (h flushHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.hasDL != b.hasDL {
		return a.hasDL
	}
	if a.hasDL && !a.deadline.Equal(b.deadline) {
		return a.deadline.Before(b.deadline)
	}
	return a.seq < b.seq
}
func (h flushHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *flushHeap) Push(x interface{}) { *h = append(*h, x.(flushJob)) }
func (h *flushHeap) Pop() interface{} {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = flushJob{}
	*h = old[:n-1]
	return j
}

// watchEntry is the scanner's per-group progress record.
type watchEntry struct {
	key     string
	backend string
	last    int64 // heartbeat value at the previous scan
	strikes int   // consecutive scans with no heartbeat advance
}

// WatchdogEvent is the diagnostic snapshot recorded when the watchdog
// cancels a no-progress batch group (see Service.FaultStatus).
type WatchdogEvent struct {
	Time    time.Time
	Key     string // coalescing key (configuration | epoch | plan)
	Backend string
	Lane    string
	Tenant  string // first member's tenant ("default" when unset)
	Epoch   uint64
	Stage   string // last stage the group reported before stalling
	Queries int
}

// sessionEntry is a cached backend session with a reference count (in-use
// entries are never evicted) and an LRU stamp. The session is opened
// outside the service lock — Open can build O(E) alias tables, and holding
// s.mu through that would stall every concurrent submission.
type sessionEntry struct {
	once    sync.Once
	ses     exec.Session
	err     error
	refs    int
	lastUse int64
	// epoch is the graph epoch the session serves; mutations prune idle
	// entries whose epoch is stale (their key can never be requested
	// again, so without pruning they would squat in the LRU).
	epoch uint64
	// discard marks a session whose engine faulted: its internal state is
	// suspect, so the last releaser closes it instead of returning it to
	// the cache (the entry is already out of the map; see discardSession).
	discard bool
}

// batchGroup accumulates compatible requests awaiting a flush. The
// serving view (base CSR + overlay snapshot + epoch) is resolved once,
// when the group is created; the epoch is part of the group key, so
// every co-batched request shares one consistent view even if mutations
// land while the group lingers.
type batchGroup struct {
	cfg      WalkConfig
	lane     int
	base     *graph.CSR
	snap     *graph.Snapshot
	epoch    uint64
	requests []*request
	queries  int
	timer    *time.Timer
	// planned/plan carry the resolved execution plan under the "auto"
	// backend. The plan's fingerprint is part of the group key, so every
	// co-batched request shares one plan revision and a drift-triggered
	// re-plan keys later requests to a fresh group (and session) instead
	// of tearing this one.
	planned bool
	plan    plan.Plan

	// The group context joins its members' contexts: it cancels when
	// every member's context is done (and the group is sealed — no more
	// joiners), so one impatient caller cannot abort work its co-batched
	// peers still want, but a group nobody is waiting for stops burning
	// engine time mid-walk. A member without a cancelable context pins
	// the group for its full run.
	ctx      context.Context
	cancel   context.CancelFunc
	cmu      sync.Mutex
	members  int
	canceled int
	sealed   bool // detached from pending: membership is final
	eternal  bool // some member can never cancel (Background et al.)
	stops    []func() bool
	// deadline/hasDL track the earliest member deadline for EDF flush
	// ordering (guarded by cmu; see addMember).
	deadline time.Time
	hasDL    bool

	// hb is the engine progress heartbeat: heartbeat-capable backends bump
	// it at every cooperative-stop checkpoint while running this group's
	// batch, and the watchdog scanner cancels the group when it stops
	// advancing. stalled records a watchdog kill so delivery accounts the
	// shed queries as watchdog-killed rather than caller-expired. stage is
	// the last dispatch stage the group entered (diagnostic only).
	hb      atomic.Int64
	stalled atomic.Bool
	stage   atomic.Value // string
}

// setStage records the group's current dispatch stage for watchdog
// diagnostics.
func (g *batchGroup) setStage(st string) { g.stage.Store(st) }

// lastStage returns the last recorded dispatch stage.
func (g *batchGroup) lastStage() string {
	if v, ok := g.stage.Load().(string); ok {
		return v
	}
	return ""
}

// earliestDeadline returns the earliest member deadline, if any member
// carried one.
func (g *batchGroup) earliestDeadline() (time.Time, bool) {
	g.cmu.Lock()
	defer g.cmu.Unlock()
	return g.deadline, g.hasDL
}

func newBatchGroup(cfg WalkConfig, base *graph.CSR, snap *graph.Snapshot, epoch uint64, planned bool, pl plan.Plan) *batchGroup {
	g := &batchGroup{
		cfg:     cfg,
		lane:    int(cfg.Lane),
		base:    base,
		snap:    snap,
		epoch:   epoch,
		planned: planned,
		plan:    pl,
	}
	g.ctx, g.cancel = context.WithCancel(context.Background())
	return g
}

// addMember registers one submitter's context with the group. Called
// while the group is still in pending (membership not yet sealed).
func (g *batchGroup) addMember(ctx context.Context) {
	g.cmu.Lock()
	defer g.cmu.Unlock()
	g.members++
	if dl, ok := ctx.Deadline(); ok {
		if !g.hasDL || dl.Before(g.deadline) {
			g.deadline, g.hasDL = dl, true
		}
	}
	if g.eternal {
		return
	}
	if ctx.Done() == nil {
		g.eternal = true
		return
	}
	g.stops = append(g.stops, context.AfterFunc(ctx, g.memberDone))
}

// memberDone runs when one member's context is done.
func (g *batchGroup) memberDone() {
	g.cmu.Lock()
	g.canceled++
	fire := g.sealed && !g.eternal && g.canceled >= g.members
	g.cmu.Unlock()
	if fire {
		g.cancel()
	}
}

// seal marks membership final (the group left pending). Until sealed,
// all-members-canceled must not cancel the group: a late joiner could
// still arrive and depend on the run.
func (g *batchGroup) seal() {
	g.cmu.Lock()
	g.sealed = true
	fire := !g.eternal && g.members > 0 && g.canceled >= g.members
	g.cmu.Unlock()
	if fire {
		g.cancel()
	}
}

// releaseCtx detaches the member watchers and releases the group
// context's resources after the run.
func (g *batchGroup) releaseCtx() {
	g.cmu.Lock()
	stops := g.stops
	g.stops = nil
	g.cmu.Unlock()
	for _, stop := range stops {
		stop()
	}
	g.cancel()
}

// request is one Submit call's share of a batch group.
type request struct {
	queries []Query
	tenant  string
	done    chan reply
	// delivered guards against double delivery when a contained panic
	// unwinds a group mid-distribution (only the group's single runner
	// goroutine touches it).
	delivered bool
}

type reply struct {
	res *Result
	err error
}

// NewService builds a serving frontend for g. Close releases it.
func NewService(g *Graph, cfg ServiceConfig) (*Service, error) {
	if cfg.Backend == "" {
		cfg.Backend = "auto"
	}
	if _, err := exec.Lookup(cfg.Backend); err != nil {
		return nil, err
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("ridgewalker: service workers %d, want >= 1", cfg.Workers)
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxBatch < 1 {
		return nil, fmt.Errorf("ridgewalker: service max batch %d, want >= 1", cfg.MaxBatch)
	}
	if cfg.Linger == 0 {
		cfg.Linger = 500 * time.Microsecond
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = 16
	}
	if cfg.MaxSessions < 1 {
		return nil, fmt.Errorf("ridgewalker: service max sessions %d, want >= 1", cfg.MaxSessions)
	}
	if cfg.MaxInFlight < AutoInFlight {
		return nil, fmt.Errorf("ridgewalker: service max in-flight %d, want AutoInFlight (-1), 0 (unbounded), or > 0", cfg.MaxInFlight)
	}
	weights := [admit.NumLanes]int{cfg.InteractiveWeight, cfg.BulkWeight}
	if weights != [admit.NumLanes]int{} {
		// A zero-weight lane would never drain — its queued groups (and
		// the submitters waiting on them) would hang forever.
		if cfg.InteractiveWeight < 1 || cfg.BulkWeight < 1 {
			return nil, fmt.Errorf("ridgewalker: lane weights %d:%d, want both >= 1 (or both 0 for the default)",
				cfg.InteractiveWeight, cfg.BulkWeight)
		}
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown == 0 {
		cfg.BreakerCooldown = 5 * time.Second
	} else if cfg.BreakerCooldown < 0 {
		return nil, fmt.Errorf("ridgewalker: breaker cooldown %v, want >= 0", cfg.BreakerCooldown)
	}
	if cfg.QuarantineThreshold == 0 {
		cfg.QuarantineThreshold = 3
	}
	if cfg.WatchdogInterval == 0 {
		cfg.WatchdogInterval = 2 * time.Second
	}
	s := &Service{
		g:        g,
		vg:       graph.NewVersioned(g),
		cfg:      cfg,
		sessions: map[string]*sessionEntry{},
		pending:  map[string]*batchGroup{},
		qcounts:  map[uint64]int{},
		watched:  map[*batchGroup]*watchEntry{},
		metrics: ServiceMetrics{
			PerBackend:   map[string]Counter{},
			PerAlgorithm: map[string]Counter{},
			PerEpoch:     map[uint64]Counter{},
		},
	}
	if cfg.BreakerThreshold > 0 {
		s.breaker = fault.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	s.admit = admit.NewController(admit.Config{
		Workers:      cfg.Workers,
		MaxInFlight:  cfg.MaxInFlight,
		LaneWeights:  weights,
		DefaultQuota: cfg.TenantQuota,
		TenantQuotas: cfg.TenantQuotas,
	})
	s.flushWRR = admit.NewWRR(weights)
	s.flushCond = sync.NewCond(&s.flushMu)
	if cfg.Backend == "auto" {
		s.planner = s.newPlanner(g)
		// Service-start calibration: warm the always-valid URW class now
		// so the first request doesn't pay the micro-bench. Other classes
		// calibrate on first use, cached per class. Failure is not fatal —
		// the planner falls back to stats-only decisions.
		s.planner.PlanFor(walk.DefaultConfig(walk.URW))
	}
	s.flushWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.flushWorker()
	}
	if cfg.WatchdogInterval > 0 {
		s.watchStop = make(chan struct{})
		s.watchWG.Add(1)
		go s.watchdogLoop()
	}
	return s, nil
}

// newPlanner builds the auto backend's planner over base: the service's
// pinned knobs become planning constraints, and calibration defaults on
// unless the caller supplied PlanOptions.
func (s *Service) newPlanner(base *graph.CSR) *plan.Planner {
	opts := plan.Options{Calibrate: true}
	if s.cfg.Plan != nil {
		opts = *s.cfg.Plan
	}
	return exec.NewPlanner(base, exec.Config{
		Workers:           s.cfg.Workers,
		Shards:            s.cfg.Shards,
		Cohort:            s.cfg.Cohort,
		HubCacheBytes:     s.cfg.HubCacheBytes,
		MemoryBudgetBytes: s.cfg.MemoryBudgetBytes,
		Plan:              &opts,
	})
}

// resolvePlan returns the current plan for cfg's class (calibrating on
// first use) plus the key suffix that folds it into request coalescing.
// Manual backends plan nothing and contribute no suffix.
//
// This is also where an open circuit breaker half-opens: once per
// cooldown one caller is elected to re-probe the demoted class's
// original engine (Planner.Restore runs a health probe synchronously);
// success closes the breaker and reinstates the plan, failure re-arms
// the cooldown. Everyone else keeps being served the demoted cpu plan.
func (s *Service) resolvePlan(cfg WalkConfig) (pl plan.Plan, planned bool, suffix string, err error) {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil {
		return plan.Plan{}, false, "", nil
	}
	if s.breaker != nil {
		ck := s.classKey(cfg)
		if s.breaker.AllowProbe(ck) {
			if _, ok := p.Restore(cfg); ok {
				s.breaker.Reset(ck)
			} else {
				s.breaker.Reopen(ck)
			}
		}
	}
	// Contained: a panic-mode fault during lazy calibration (sampler
	// build, probe open) must fail this submission, not crash the caller.
	cerr := fault.Contain("plan-resolve", func() error {
		var perr error
		pl, perr = p.PlanFor(cfg)
		return perr
	})
	if cerr != nil {
		return plan.Plan{}, false, "", cerr
	}
	return pl, true, "|" + pl.Fingerprint(), nil
}

// classKey is the circuit breaker's key for cfg's query class —
// plan-class granularity, matching what the planner can demote.
func (s *Service) classKey(cfg WalkConfig) string {
	base, _, _ := s.vg.Serving()
	return plan.ClassOf(base, cfg).String()
}

// observePlan feeds a served batch's realized throughput back to the
// planner (drift beyond the configured factor re-plans the class).
func (s *Service) observePlan(cfg WalkConfig, steps int64, elapsed time.Duration) {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil || steps == 0 || elapsed <= 0 {
		return
	}
	p.Observe(cfg, float64(steps)/elapsed.Seconds())
}

// PlanStatus reports the auto backend's per-class planning state: the
// resolved plan (chosen backend, cohort, shards, memory placement),
// predicted vs observed steps/sec, and how often drift forced a
// re-plan. nil when the service runs a manually pinned backend.
func (s *Service) PlanStatus() []PlanClassStatus {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Status()
}

// ExplainPlan renders the full decision record for cfg's class —
// graph statistics, probed candidates, chosen plan — resolving the plan
// first if needed. Errors when the service runs a manual backend.
func (s *Service) ExplainPlan(cfg WalkConfig) (string, error) {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil {
		return "", fmt.Errorf("ridgewalker: backend %q is manually pinned (no planner)", s.cfg.Backend)
	}
	return p.Explain(cfg)
}

// flushWorker is one dispatcher-pool goroutine: it drains the per-lane
// flush queues, running one detached group at a time, until Close
// signals stop (by then the queues are empty — Close waits out inflight
// first). The next lane is picked by weighted round-robin over the
// non-empty lanes, so interactive groups overtake queued bulk while a
// sustained interactive flood still grants bulk its weight share of
// dispatches (starvation-free).
func (s *Service) flushWorker() {
	defer s.flushWG.Done()
	for {
		s.flushMu.Lock()
		for (s.flushEmptyLocked() || s.flushPaused) && !s.flushStop {
			s.flushCond.Wait()
		}
		lane := s.flushWRR.Next(func(l int) bool { return len(s.flushQs[l]) > 0 })
		if lane < 0 {
			s.flushMu.Unlock()
			return // stopping and every lane is empty
		}
		j := heap.Pop(&s.flushQs[lane]).(flushJob)
		if len(s.flushQs[lane]) == 0 {
			s.flushQs[lane] = nil // release the drained backing array
		}
		s.flushMu.Unlock()
		s.runGroup(j.key, j.grp)
		s.inflight.Done()
	}
}

// flushEmptyLocked reports whether every lane's flush queue is empty.
// Called with flushMu held.
func (s *Service) flushEmptyLocked() bool {
	for _, q := range s.flushQs {
		if len(q) > 0 {
			return false
		}
	}
	return true
}

// pauseFlush / resumeFlush hold and release the dispatcher pool (test
// hook: enqueue several groups while paused, then observe EDF order).
func (s *Service) pauseFlush() {
	s.flushMu.Lock()
	s.flushPaused = true
	s.flushMu.Unlock()
}

func (s *Service) resumeFlush() {
	s.flushMu.Lock()
	s.flushPaused = false
	s.flushMu.Unlock()
	s.flushCond.Broadcast()
}

// cfgKey canonicalizes a walk configuration plus the graph epoch it
// serves for session caching and request coalescing. The epoch dimension
// keeps sessions epoch-consistent: a mutation advances the epoch, so
// later requests key to (and open) a fresh session over the new serving
// view while in-flight groups finish on theirs. The lane dimension keeps
// priority classes in separate groups (they drain through different
// flush queues); the tenant is deliberately excluded — quotas gate at
// admission and cross-tenant co-batching is trajectory-neutral.
func cfgKey(cfg WalkConfig, epoch uint64) string {
	return fmt.Sprintf("%d|%d|%g|%g|%g|%v|%d|l%d|e%d",
		cfg.Algorithm, cfg.WalkLength, cfg.Alpha, cfg.P, cfg.Q, cfg.Schema, cfg.Seed, cfg.Lane, epoch)
}

// acquireSession returns the cached session for a walk configuration,
// opening it on first use, and pins it against eviction until
// releaseSession. Sessions serialize their own batches, so sharing is
// safe. Deliberately usable while closing: Close drains pending groups
// through it.
func (s *Service) acquireSession(key string, grp *batchGroup) (*sessionEntry, error) {
	s.mu.Lock()
	e := s.sessions[key]
	if e == nil {
		e = &sessionEntry{epoch: grp.epoch}
		s.sessions[key] = e
	}
	e.refs++ // pin before evicting so the new entry cannot be the victim
	s.evictLocked()
	s.mu.Unlock()
	// First user opens the session; everyone else waits here. The service
	// lock is not held, so submissions for other configurations proceed.
	// The session opens over the serving view its key's epoch pinned —
	// the base CSR current at key time plus the overlay snapshot (nil
	// when the overlay was empty) — never over state read at open time,
	// which a racing mutation could have advanced past the key.
	e.once.Do(func() {
		backend := s.cfg.Backend
		ec := exec.Config{
			Walk:                grp.cfg,
			Platform:            s.cfg.Platform,
			Workers:             s.cfg.Workers,
			Shards:              s.cfg.Shards,
			Cohort:              s.cfg.Cohort,
			HubCacheBytes:       s.cfg.HubCacheBytes,
			MemoryBudgetBytes:   s.cfg.MemoryBudgetBytes,
			Snapshot:            grp.snap,
			DisableAsync:        s.cfg.DisableAsync,
			DisableDynamicSched: s.cfg.DisableDynamicSched,
		}
		if grp.planned {
			// The plan was resolved at key time (its fingerprint is in the
			// key), so the session opens the chosen concrete engine with the
			// resolved shape — never "auto" recursively, which would
			// recalibrate per session open.
			backend = grp.plan.Backend
			ec.Shards = grp.plan.Shards
			ec.Cohort = grp.plan.Cohort
			ec.HubCacheBytes = grp.plan.HubCacheBytes
			ec.MemoryBudgetBytes = grp.plan.MemoryBudgetBytes
		}
		// Contained: a panic during Open (e.g. an injected sampler-build
		// crash) becomes this entry's error — refs unwind, the entry
		// leaves the map, and every submitter gets a typed engine fault
		// instead of a dead process or a wedged sync.Once.
		e.err = fault.Contain("session-open", func() error {
			ses, err := exec.Open(backend, grp.base, ec)
			if err != nil {
				return err
			}
			e.ses = ses
			return nil
		})
	})
	if e.err != nil {
		s.mu.Lock()
		e.refs--
		if s.sessions[key] == e {
			delete(s.sessions, key) // failed open: allow a later retry
		}
		s.mu.Unlock()
		return nil, e.err
	}
	return e, nil
}

// releaseSession unpins an acquired session and stamps its recency. The
// last releaser of a discarded (engine-faulted) session closes it — the
// entry already left the cache map, so nobody can re-acquire it.
func (s *Service) releaseSession(e *sessionEntry) {
	s.mu.Lock()
	e.refs--
	s.seq++
	e.lastUse = s.seq
	var victim exec.Session
	if e.discard && e.refs == 0 && e.ses != nil {
		victim = e.ses
		e.ses = nil
	}
	s.mu.Unlock()
	if victim != nil {
		victim.Close()
	}
}

// discardSession removes key's cached session after an engine fault: the
// engine's internal state (worker buffers, shard rings, tiered caches)
// is suspect after a contained panic, so the next request for this key
// opens a fresh session. Closed immediately when idle, by the last
// releaser otherwise.
func (s *Service) discardSession(key string) {
	s.mu.Lock()
	e := s.sessions[key]
	var victim exec.Session
	if e != nil {
		delete(s.sessions, key)
		if e.refs == 0 {
			victim = e.ses
			e.ses = nil
		} else {
			e.discard = true
		}
	}
	s.mu.Unlock()
	if victim != nil {
		victim.Close()
	}
}

// evictLocked enforces MaxSessions by closing the least recently used idle
// session. In-use sessions are skipped (the cap is soft while everything
// is busy). Called with s.mu held.
func (s *Service) evictLocked() {
	for len(s.sessions) > s.cfg.MaxSessions {
		var victimKey string
		var victim *sessionEntry
		for k, e := range s.sessions {
			if e.refs > 0 {
				continue
			}
			if victim == nil || e.lastUse < victim.lastUse {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(s.sessions, victimKey)
		// refs==0 and the entry is out of the map, so nobody else can
		// reach it; Close is safe here (sessions serialize internally and
		// an idle session closes without blocking).
		if victim.ses != nil {
			victim.ses.Close()
		}
	}
}

// record folds served work into the metric maps. backend is the engine
// that actually served the batch — under "auto" the resolved backend
// name, so the metrics show where planned traffic really ran.
func (s *Service) record(backend string, alg Algorithm, epoch uint64, d Counter) {
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	b := s.metrics.PerBackend[backend]
	b.add(d)
	s.metrics.PerBackend[backend] = b
	a := s.metrics.PerAlgorithm[alg.String()]
	a.add(d)
	s.metrics.PerAlgorithm[alg.String()] = a
	ep := s.metrics.PerEpoch[epoch]
	ep.add(d)
	s.metrics.PerEpoch[epoch] = ep
}

// Metrics returns a snapshot of served-work counters.
func (s *Service) Metrics() ServiceMetrics {
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	out := ServiceMetrics{
		PerBackend:   make(map[string]Counter, len(s.metrics.PerBackend)),
		PerAlgorithm: make(map[string]Counter, len(s.metrics.PerAlgorithm)),
		PerEpoch:     make(map[uint64]Counter, len(s.metrics.PerEpoch)),
	}
	for k, v := range s.metrics.PerBackend {
		out.PerBackend[k] = v
	}
	for k, v := range s.metrics.PerAlgorithm {
		out.PerAlgorithm[k] = v
	}
	for k, v := range s.metrics.PerEpoch {
		out.PerEpoch[k] = v
	}
	ast := s.admit.Stats()
	out.PerLane = ast.PerLane
	out.PerTenant = ast.PerTenant
	return out
}

// AdmissionStatus snapshots the admission controller: the current
// in-flight budget (static, or Theorem VI.1-derived under
// AutoInFlight), admitted-but-unfinished queries, the EWMA service rate
// and feedback window driving the auto budget, and per-lane/per-tenant
// admitted/shed/expired counters.
func (s *Service) AdmissionStatus() AdmissionStats { return s.admit.Stats() }

// deadlineHeadroom converts a submitter's context deadline into the
// admission gate's headroom argument: time remaining until the deadline
// (floored at zero), or -1 when the context has none.
func deadlineHeadroom(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return -1
	}
	if h := time.Until(dl); h > 0 {
		return h
	}
	return 0
}

// Submit executes queries under cfg and returns their paths in input
// order. Concurrent submissions sharing a walk configuration are coalesced
// into one backend batch when the backend's determinism permits; the reply
// always covers exactly the caller's queries.
//
// Submissions pass the admission gate first: work beyond the in-flight
// budget (ServiceConfig.MaxInFlight), the tenant's quota, or the
// context deadline's feasibility is rejected immediately with
// ErrOverloaded / ErrQuotaExceeded instead of queueing — rejection
// costs microseconds where queueing would cost the deadline. ctx also
// propagates end to end: when every submitter of a batch has canceled,
// the batch itself is canceled mid-walk and its remaining steps shed.
func (s *Service) Submit(ctx context.Context, cfg WalkConfig, queries []Query) (*Result, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("ridgewalker: no queries")
	}
	if err := cfg.Validate(s.g); err != nil {
		return nil, err
	}
	lane := int(cfg.Lane)
	if s.quarantined(cfg, queries) {
		s.admit.Quarantine(lane, cfg.Tenant, len(queries))
		return nil, ErrQuarantined
	}
	if err := s.admit.Admit(lane, cfg.Tenant, len(queries), deadlineHeadroom(ctx)); err != nil {
		return nil, err
	}
	// Admitted: from here every path must release the in-flight slots —
	// early returns directly, joined groups through runGroup's delivery.
	pl, planned, suffix, err := s.resolvePlan(cfg)
	if err != nil {
		s.admit.Release(lane, len(queries))
		return nil, err
	}
	base, snap, epoch := s.vg.Serving()
	key := cfgKey(cfg, epoch) + suffix
	req := &request{queries: queries, tenant: cfg.Tenant, done: make(chan reply, 1)}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.admit.Release(lane, len(queries))
		return nil, ErrServiceClosed
	}
	grp := s.pending[key]
	if grp == nil {
		grp = newBatchGroup(cfg, base, snap, epoch, planned, pl)
		s.pending[key] = grp
		grp.timer = time.AfterFunc(s.cfg.Linger, func() { s.flush(key, grp) })
	}
	grp.requests = append(grp.requests, req)
	grp.addMember(ctx)
	grp.queries += len(queries)
	full := grp.queries >= s.cfg.MaxBatch
	if full {
		grp.timer.Stop()
	}
	s.mu.Unlock()
	if full {
		s.flush(key, grp)
	}

	select {
	case r := <-req.done:
		return r.res, r.err
	case <-ctx.Done():
		// This caller stops waiting. The batch keeps running while any
		// co-batched request still wants it; once every member's context
		// is done the group context cancels and the engine sheds the
		// batch's remaining steps mid-walk.
		return nil, ctx.Err()
	}
}

// flush dispatches a pending group. The first of the two triggers (linger
// timer, size cap) wins; the group is detached under the lock so the
// other trigger finds it gone. The group is appended to the dispatcher
// pool's queue — a non-blocking O(1) enqueue, so Submit returns to its
// context select immediately and no goroutine ever parks on a hand-off —
// and executed by one of the Workers pool goroutines. The group is
// registered with inflight before it is queued, so Close cannot return
// before a worker has run it.
func (s *Service) flush(key string, grp *batchGroup) {
	s.mu.Lock()
	if s.pending[key] != grp {
		s.mu.Unlock()
		return
	}
	delete(s.pending, key)
	s.inflight.Add(1)
	s.mu.Unlock()
	// Detached: no more joiners, so all-members-canceled may now cancel
	// the group context.
	grp.seal()
	j := flushJob{key: key, grp: grp}
	j.deadline, j.hasDL = grp.earliestDeadline()
	s.flushMu.Lock()
	s.flushSeq++
	j.seq = s.flushSeq
	heap.Push(&s.flushQs[grp.lane], j)
	s.flushMu.Unlock()
	s.flushCond.Signal()
}

// deliver hands one request its reply and returns its admission slots.
// An error reply while the group context is canceled means the admitted
// work either was killed by the watchdog (no engine progress — counted
// as a watchdog kill) or expired mid-flight (every submitter was gone),
// which the controller counts separately from shedding at the gate.
func (s *Service) deliver(grp *batchGroup, r *request, rep reply) {
	if r.delivered {
		return
	}
	r.delivered = true
	if rep.err != nil {
		switch {
		case grp.stalled.Load():
			s.admit.WatchdogKill(grp.lane, r.tenant, len(r.queries))
		case grp.ctx.Err() != nil:
			s.admit.Expire(grp.lane, r.tenant, len(r.queries))
		}
	}
	r.done <- rep
	s.admit.Release(grp.lane, len(r.queries))
}

// failGroup delivers err to every request the group has not yet
// answered. Used when a contained panic (or a pre-dispatch fault)
// aborts the group partway: every submitter still gets a reply and
// every admission slot is still released.
func (s *Service) failGroup(grp *batchGroup, err error) {
	for _, r := range grp.requests {
		s.deliver(grp, r, reply{err: err})
	}
}

// runGroup executes a flushed group on the cached session and distributes
// per-request results. The group runs under its joined member context —
// canceled exactly when every submitter's context is done — so
// abandoned batches shed their remaining steps at the engine's next
// cooperative checkpoint instead of completing for nobody.
//
// This is the service's primary fault boundary: the whole dispatch runs
// under fault.Contain, so an engine panic anywhere past this point —
// session open, sampler build, the run itself, result distribution —
// unwinds to here as a typed ErrEngineFault, is delivered to the
// group's submitters, and leaves the dispatcher worker (and the
// service) serving. The outcome then feeds fault accounting: per-query
// quarantine counts, the class circuit breaker, and session discard.
func (s *Service) runGroup(key string, grp *batchGroup) {
	defer grp.releaseCtx()
	backendName := s.cfg.Backend
	if grp.planned {
		backendName = grp.plan.Backend
	}
	if s.watchStop != nil && exec.SupportsHeartbeats(backendName) {
		s.watchRegister(key, backendName, grp)
		defer s.watchUnregister(grp)
	}
	var runErr error
	cerr := fault.Contain("batch-group", func() error {
		if err := fault.Check(fault.DispatchFlush); err != nil {
			return err
		}
		grp.setStage("acquire-session")
		e, err := s.acquireSession(key, grp)
		if err != nil {
			runErr = err
			s.failGroup(grp, err)
			return nil
		}
		defer s.releaseSession(e)
		runErr = s.runGroupExec(grp, e.ses)
		return nil
	})
	if cerr != nil {
		runErr = cerr
		s.failGroup(grp, cerr)
	}
	s.noteGroupOutcome(key, grp, runErr)
}

// noteGroupOutcome folds one dispatched group's result into the fault
// machinery. An engine fault quarantine-counts every member query,
// discards the (suspect) cached session, and advances the class
// breaker — tripping it demotes the class to the known-good cpu engine
// until a half-open re-probe succeeds. A clean run clears the members'
// quarantine counts and the breaker's consecutive-fault streak.
func (s *Service) noteGroupOutcome(key string, grp *batchGroup, runErr error) {
	if runErr == nil {
		if s.breaker != nil {
			s.breaker.Success(plan.ClassOf(grp.base, grp.cfg).String())
		}
		for _, r := range grp.requests {
			s.clearQuarantine(grp.cfg, r.queries)
		}
		return
	}
	if !errors.Is(runErr, fault.ErrEngineFault) {
		return // cancellation, validation, overload: not an engine fault
	}
	for _, r := range grp.requests {
		s.admit.Fault(grp.lane, r.tenant, len(r.queries))
		s.noteQuarantine(grp.cfg, r.queries)
	}
	s.discardSession(key)
	if s.breaker != nil && s.breaker.Fault(plan.ClassOf(grp.base, grp.cfg).String()) && grp.planned {
		s.mu.Lock()
		p := s.planner
		s.mu.Unlock()
		if p != nil {
			p.Demote(grp.cfg, fmt.Sprintf("circuit breaker: %d consecutive engine faults (last: %v)",
				s.cfg.BreakerThreshold, runErr))
		}
	}
}

// runGroupExec runs the group's batch on ses and distributes per-request
// results, returning the engine error (already delivered to the
// affected requests) for outcome accounting.
func (s *Service) runGroupExec(grp *batchGroup, ses exec.Session) error {
	backend := s.cfg.Backend
	if grp.planned {
		backend = grp.plan.Backend
	}
	// Backends declaring the BatchMerger capability (the cpu family, whose
	// per-query RNG streams make walks independent of batch composition)
	// merge requests into one backend dispatch. The rest — simulators
	// routing walks through shared pipelines, models requiring unique query
	// IDs — run requests back-to-back instead, still amortizing the
	// session's sampler and configuration.
	merge := exec.MergesBatches(backend)
	ctx := grp.ctx
	if merge {
		all := make([]walk.Query, 0, grp.queries)
		for _, r := range grp.requests {
			all = append(all, r.queries...)
		}
		grp.setStage("run")
		start := time.Now()
		res, err := ses.Run(ctx, exec.Batch{Queries: all, Heartbeat: &grp.hb})
		if err != nil {
			if grp.stalled.Load() {
				err = fmt.Errorf("%w: %v", ErrEngineStalled, err)
			}
			s.failGroup(grp, err)
			return err
		}
		grp.setStage("deliver")
		service := time.Since(start)
		s.admit.Observe(len(all), service)
		if grp.planned {
			s.observePlan(grp.cfg, res.Steps, service)
		}
		lo := 0
		var steps int64
		for _, r := range grp.requests {
			hi := lo + len(r.queries)
			sub := &Result{Paths: res.Paths[lo:hi:hi]}
			for _, p := range sub.Paths {
				sub.Steps += int64(len(p) - 1)
			}
			steps += sub.Steps
			s.deliver(grp, r, reply{res: sub})
			lo = hi
		}
		s.record(backend, grp.cfg.Algorithm, grp.epoch, Counter{
			Requests: int64(len(grp.requests)),
			Queries:  int64(grp.queries),
			Steps:    steps,
			Batches:  1,
		})
		return nil
	}
	var firstErr error
	for _, r := range grp.requests {
		grp.setStage("run")
		start := time.Now()
		res, err := ses.Run(ctx, exec.Batch{Queries: r.queries, Heartbeat: &grp.hb})
		if err != nil {
			if grp.stalled.Load() {
				err = fmt.Errorf("%w: %v", ErrEngineStalled, err)
			}
			if firstErr == nil {
				firstErr = err
			}
			s.deliver(grp, r, reply{err: err})
			continue
		}
		grp.setStage("deliver")
		s.admit.Observe(len(r.queries), time.Since(start))
		s.deliver(grp, r, reply{res: &Result{Paths: res.Paths, Steps: res.Steps}})
		s.record(backend, grp.cfg.Algorithm, grp.epoch, Counter{
			Requests: 1,
			Queries:  int64(len(r.queries)),
			Steps:    res.Steps,
			Batches:  1,
		})
	}
	return firstErr
}

// quarantineKey hashes one query's deterministic identity — the walk
// configuration fields that select its trajectory plus (ID, Start) — so
// a poison query is recognized across submissions regardless of lane,
// tenant, or batching.
func quarantineKey(cfg WalkConfig, q Query) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%g|%g|%g|%v|%d|%d|%d",
		cfg.Algorithm, cfg.WalkLength, cfg.Alpha, cfg.P, cfg.Q, cfg.Schema, cfg.Seed, q.ID, q.Start)
	return h.Sum64()
}

// quarantined reports whether any of the queries has caused
// QuarantineThreshold engine faults.
func (s *Service) quarantined(cfg WalkConfig, queries []Query) bool {
	if s.cfg.QuarantineThreshold <= 0 {
		return false
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for i := range queries {
		if s.qcounts[quarantineKey(cfg, queries[i])] >= s.cfg.QuarantineThreshold {
			return true
		}
	}
	return false
}

// noteQuarantine counts one engine fault against each query. New queries
// stop being tracked once the table is full; already-tracked queries
// keep counting.
func (s *Service) noteQuarantine(cfg WalkConfig, queries []Query) {
	if s.cfg.QuarantineThreshold <= 0 {
		return
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for i := range queries {
		k := quarantineKey(cfg, queries[i])
		if _, ok := s.qcounts[k]; !ok && len(s.qcounts) >= quarantineTableCap {
			continue
		}
		s.qcounts[k]++
	}
}

// clearQuarantine forgets the queries' fault counts after a clean run —
// a transient fault (since cleared) must not accumulate toward
// quarantine forever.
func (s *Service) clearQuarantine(cfg WalkConfig, queries []Query) {
	if s.cfg.QuarantineThreshold <= 0 {
		return
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if len(s.qcounts) == 0 {
		return
	}
	for i := range queries {
		delete(s.qcounts, quarantineKey(cfg, queries[i]))
	}
}

// watchRegister puts a dispatched group under watchdog observation.
func (s *Service) watchRegister(key, backend string, grp *batchGroup) {
	s.watchMu.Lock()
	s.watched[grp] = &watchEntry{key: key, backend: backend, last: grp.hb.Load()}
	s.watchMu.Unlock()
}

// watchUnregister removes a finished group from observation.
func (s *Service) watchUnregister(grp *batchGroup) {
	s.watchMu.Lock()
	delete(s.watched, grp)
	s.watchMu.Unlock()
}

// watchdogLoop scans dispatched groups every WatchdogInterval until
// Close.
func (s *Service) watchdogLoop() {
	defer s.watchWG.Done()
	t := time.NewTicker(s.cfg.WatchdogInterval)
	defer t.Stop()
	for {
		select {
		case <-s.watchStop:
			return
		case <-t.C:
			s.watchdogScan()
		}
	}
}

// watchdogScan cancels groups whose engine heartbeat has not advanced
// for two consecutive scans: the batch is shed (its submitters get the
// engine's cancellation error, accounted as watchdog kills) and a
// diagnostic snapshot is recorded. Two strikes, not one, so a group
// dispatched just before a scan isn't killed for arriving late.
func (s *Service) watchdogScan() {
	var kills []*batchGroup
	s.watchMu.Lock()
	for grp, e := range s.watched {
		cur := grp.hb.Load()
		if cur != e.last {
			e.last = cur
			e.strikes = 0
			continue
		}
		if e.strikes++; e.strikes < 2 {
			continue
		}
		tenant := "default"
		if len(grp.requests) > 0 && grp.requests[0].tenant != "" {
			tenant = grp.requests[0].tenant
		}
		ev := WatchdogEvent{
			Time:    time.Now(),
			Key:     e.key,
			Backend: e.backend,
			Lane:    admit.LaneName(grp.lane),
			Tenant:  tenant,
			Epoch:   grp.epoch,
			Stage:   grp.lastStage(),
			Queries: grp.queries,
		}
		s.watchEvents = append(s.watchEvents, ev)
		if len(s.watchEvents) > watchdogEventCap {
			s.watchEvents = append(s.watchEvents[:0], s.watchEvents[len(s.watchEvents)-watchdogEventCap:]...)
		}
		delete(s.watched, grp)
		kills = append(kills, grp)
	}
	s.watchMu.Unlock()
	for _, grp := range kills {
		// stalled before cancel: delivery observes the flag when the
		// engine's cancellation error surfaces.
		grp.stalled.Store(true)
		grp.cancel()
	}
}

// FaultReport is a point-in-time snapshot of the service's fault
// machinery (see Service.FaultStatus).
type FaultReport struct {
	// BreakerOpens counts breaker-open transitions since start (survives
	// CompactGraph's breaker reset).
	BreakerOpens int64
	// Breakers lists per-class breaker states, sorted by class key.
	Breakers []BreakerStatus
	// Watchdog holds the most recent watchdog-kill diagnostics (bounded).
	Watchdog []WatchdogEvent
	// QuarantinedQueries counts queries currently at or past the
	// quarantine threshold.
	QuarantinedQueries int
}

// FaultStatus snapshots the fault machinery: per-class circuit-breaker
// states, recorded watchdog kills, and the quarantine table.
// Per-lane/per-tenant fault counters flow through Metrics (and
// AdmissionStatus) alongside the admission counters.
func (s *Service) FaultStatus() FaultReport {
	var rep FaultReport
	if s.breaker != nil {
		rep.BreakerOpens = s.breaker.Opens()
		rep.Breakers = s.breaker.Snapshot()
	}
	s.watchMu.Lock()
	rep.Watchdog = append([]WatchdogEvent(nil), s.watchEvents...)
	s.watchMu.Unlock()
	s.qmu.Lock()
	for _, c := range s.qcounts {
		if c >= s.cfg.QuarantineThreshold {
			rep.QuarantinedQueries++
		}
	}
	s.qmu.Unlock()
	return rep
}

// Stream executes queries under cfg, delivering each finished walk to fn
// as it completes instead of materializing all paths — the request's
// memory footprint stays O(queries), not O(steps). The path passed to fn
// is only valid during the callback. Streaming requests bypass batching
// (delivery is per-caller) but share the cached session.
//
// Admission is leased per chunk of at most MaxBatch queries, not for the
// whole run up front: a long stream holds in-flight slots only for the
// chunk the engine is actually walking, so it cannot monopolize the
// budget against interactive submissions for its full duration. Each
// chunk re-passes the gate (with the caller's remaining deadline
// headroom); a mid-stream rejection returns ErrOverloaded with all
// completed chunks already delivered. Engine faults are contained per
// chunk like batch dispatches — typed error to the caller, fault
// accounting, session discard, breaker advance.
func (s *Service) Stream(ctx context.Context, cfg WalkConfig, queries []Query, fn func(WalkOutput) error) error {
	if len(queries) == 0 {
		return fmt.Errorf("ridgewalker: no queries")
	}
	if err := cfg.Validate(s.g); err != nil {
		return err
	}
	lane := int(cfg.Lane)
	if s.quarantined(cfg, queries) {
		s.admit.Quarantine(lane, cfg.Tenant, len(queries))
		return ErrQuarantined
	}
	pl, planned, suffix, err := s.resolvePlan(cfg)
	if err != nil {
		return err
	}
	base, snap, epoch := s.vg.Serving()
	key := cfgKey(cfg, epoch) + suffix
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServiceClosed
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()
	e, err := s.acquireSession(key, &batchGroup{cfg: cfg, lane: lane, base: base, snap: snap, epoch: epoch, planned: planned, plan: pl})
	if err != nil {
		if errors.Is(err, fault.ErrEngineFault) {
			s.admit.Fault(lane, cfg.Tenant, len(queries))
			s.noteQuarantine(cfg, queries)
			s.noteStreamFault(cfg, planned, err)
		}
		return err
	}
	defer s.releaseSession(e)
	backend := s.cfg.Backend
	if planned {
		backend = pl.Backend
	}
	var totalSteps int64
	var served int
	start := time.Now()
	for lo := 0; lo < len(queries); lo += s.cfg.MaxBatch {
		hi := lo + s.cfg.MaxBatch
		if hi > len(queries) {
			hi = len(queries)
		}
		chunk := queries[lo:hi:hi]
		if err := s.admit.Admit(lane, cfg.Tenant, len(chunk), deadlineHeadroom(ctx)); err != nil {
			return err // mid-stream shed: earlier chunks were delivered
		}
		var steps int64
		cerr := fault.Contain("stream", func() error {
			return e.ses.Stream(ctx, exec.Batch{Queries: chunk}, func(w WalkOutput) error {
				steps += w.Steps
				return fn(w)
			})
		})
		totalSteps += steps
		if cerr != nil {
			switch {
			case errors.Is(cerr, fault.ErrEngineFault):
				s.admit.Fault(lane, cfg.Tenant, len(chunk))
				s.noteQuarantine(cfg, chunk)
				s.discardSession(key)
				s.noteStreamFault(cfg, planned, cerr)
			case ctx.Err() != nil:
				// The caller's deadline expired (or it canceled) mid-stream:
				// the engine shed the remaining walks at its next checkpoint.
				s.admit.Expire(lane, cfg.Tenant, len(chunk))
			}
			s.admit.Release(lane, len(chunk))
			return cerr
		}
		s.admit.Release(lane, len(chunk))
		served += len(chunk)
	}
	service := time.Since(start)
	s.admit.Observe(served, service)
	if planned {
		s.observePlan(cfg, totalSteps, service)
	}
	if s.breaker != nil {
		s.breaker.Success(plan.ClassOf(base, cfg).String())
	}
	s.clearQuarantine(cfg, queries)
	s.record(backend, cfg.Algorithm, epoch, Counter{
		Requests: 1,
		Queries:  int64(len(queries)),
		Steps:    totalSteps,
		Batches:  1,
	})
	return nil
}

// noteStreamFault advances the class breaker for a streaming engine
// fault, demoting the class when it trips (the batch path's equivalent
// lives in noteGroupOutcome).
func (s *Service) noteStreamFault(cfg WalkConfig, planned bool, runErr error) {
	if s.breaker == nil {
		return
	}
	if !s.breaker.Fault(s.classKey(cfg)) || !planned {
		return
	}
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p != nil {
		p.Demote(cfg, fmt.Sprintf("circuit breaker: %d consecutive engine faults (last: %v)",
			s.cfg.BreakerThreshold, runErr))
	}
}

// InsertEdges adds a batch of edges to the served graph, advancing its
// epoch. Undirected graphs mirror each edge and weighted graphs assign
// inserted edges the construction-recipe weight, so a later compaction
// (or a cold rebuild of the final edge list) is indistinguishable from
// the mutated view. In-flight requests finish on the epoch they started
// with; requests submitted after InsertEdges returns see the new edges.
// The batch is atomic: on error nothing is applied.
func (s *Service) InsertEdges(edges []Edge) error {
	if err := s.vg.InsertEdges(edges); err != nil {
		return err
	}
	s.pruneStaleSessions()
	s.refreshPlannerStats()
	return nil
}

// DeleteEdges removes a batch of edges from the served graph, advancing
// its epoch (see InsertEdges for visibility semantics). Deleting an edge
// the current view does not contain is an error, and the batch is
// atomic: on error nothing is applied.
func (s *Service) DeleteEdges(edges []Edge) error {
	if err := s.vg.DeleteEdges(edges); err != nil {
		return err
	}
	s.pruneStaleSessions()
	s.refreshPlannerStats()
	return nil
}

// CompactGraph folds all accumulated mutations into a fresh base CSR and
// empties the overlay, advancing the epoch. Subsequent sessions serve
// the compacted graph flat — no overlay probes, no derived sampler rows
// — so periodic compaction bounds the overlay cost of a long-lived
// mutating service. It is safe to call from a background goroutine while
// requests are being served. Returns the new base graph.
func (s *Service) CompactGraph() *Graph {
	g := s.vg.Compact()
	s.pruneStaleSessions()
	s.mu.Lock()
	if s.planner != nil {
		// Compaction replaces the base CSR, so the planner's statistics,
		// probe subgraph, and calibration cache all describe a dead graph:
		// rebuild over the new base. Classes recalibrate lazily on their
		// next request.
		s.planner = s.newPlanner(g)
	}
	s.mu.Unlock()
	// Budget handoff: the admission controller's EWMA service rate (and
	// the Theorem VI.1 auto budget derived from it) was observed against
	// the old base — flat-store layouts, overlay probe costs, sampler
	// shapes all changed. Re-seed from the first post-compaction
	// dispatches instead of steering the new graph by the old one's
	// rate. The breaker likewise restarts closed: its faulting sessions
	// died with the old epoch's keys (opens-so-far stays counted).
	s.admit.ResetObservations()
	if s.breaker != nil {
		s.breaker.ResetAll()
	}
	return g
}

// GraphEpoch returns the served graph's current epoch (0 until the first
// mutation).
func (s *Service) GraphEpoch() uint64 { return s.vg.Epoch() }

// GraphStats returns the served graph's mutation accounting.
func (s *Service) GraphStats() GraphVersionStats { return s.vg.Stats() }

// refreshPlannerStats recomputes the planner's overlay-dependent
// statistics after a mutation: the serving snapshot's dirty fraction is
// a plan input, and crossing the heavy-dirtiness threshold marks every
// class for re-planning (see plan.Planner.RefreshStats).
func (s *Service) refreshPlannerStats() {
	s.mu.Lock()
	p := s.planner
	s.mu.Unlock()
	if p == nil {
		return
	}
	_, snap, _ := s.vg.Serving()
	p.RefreshStats(snap)
}

// pruneStaleSessions closes idle cached sessions keyed to epochs older
// than the current one. Their keys can never be requested again (the
// epoch only advances), so without pruning every mutation would leave a
// dead session squatting in the LRU until cap pressure evicted it. Busy
// stale sessions are left to finish and age out normally.
func (s *Service) pruneStaleSessions() {
	epoch := s.vg.Epoch()
	s.mu.Lock()
	var victims []exec.Session
	for k, e := range s.sessions {
		if e.refs == 0 && e.epoch < epoch {
			delete(s.sessions, k)
			if e.ses != nil {
				victims = append(victims, e.ses)
			}
		}
	}
	s.mu.Unlock()
	for _, ses := range victims {
		ses.Close()
	}
}

// Close flushes pending groups, waits for in-flight work, and releases the
// cached sessions. Submissions after Close fail.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	groups := make(map[string]*batchGroup, len(s.pending))
	for k, g := range s.pending {
		g.timer.Stop()
		groups[k] = g
	}
	s.mu.Unlock()
	for k, g := range groups {
		// flush re-checks membership; pending was not cleared, so detach
		// manually then run inline. Each group either drains normally
		// (some submitter still waits) or — when every member already
		// canceled — sheds via its joined context; either way every
		// request gets a reply and no group is silently dropped.
		s.mu.Lock()
		if s.pending[k] == g {
			delete(s.pending, k)
			s.mu.Unlock()
			g.seal()
			s.runGroup(k, g)
		} else {
			s.mu.Unlock()
		}
	}
	s.inflight.Wait()
	// All flushes registered with inflight have been executed by the pool
	// (flush registers before it enqueues), and closed stops new ones, so
	// the queue is empty and the workers can drain out.
	s.flushMu.Lock()
	s.flushStop = true
	s.flushMu.Unlock()
	s.flushCond.Broadcast()
	s.flushWG.Wait()
	if s.watchStop != nil {
		close(s.watchStop)
		s.watchWG.Wait()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var firstErr error
	keys := make([]string, 0, len(s.sessions))
	for k := range s.sessions {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := s.sessions[k]
		if e.ses == nil {
			continue
		}
		if err := e.ses.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.sessions = map[string]*sessionEntry{}
	return firstErr
}
