package ridgewalker_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ridgewalker"
)

// ringGraph builds a directed cycle: every vertex has exactly one
// out-neighbor, so URW walks never hit a sink and always run the full
// configured length — engine time is exactly schedulable, which the
// cancellation test below needs.
func ringGraph(t testing.TB, n int) *ridgewalker.Graph {
	t.Helper()
	edges := make([]ridgewalker.Edge, n)
	for v := 0; v < n; v++ {
		edges[v] = ridgewalker.Edge{Src: ridgewalker.VertexID(v), Dst: ridgewalker.VertexID((v + 1) % n)}
	}
	g, err := ridgewalker.NewGraph(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestServiceCanceledSubmitShedsEngineWork pins the deadline-propagation
// bugfix: runGroup used to run every batch under context.Background(), so
// a canceled Submit kept burning engine time until the whole batch
// finished. The batch here is big enough that completing it takes
// seconds (the ring graph guarantees full-length walks); after the only
// submitter cancels, the group context must cancel too and the engine
// must shed the remaining steps at its next cooperative checkpoint — so
// Submit plus a full drain (Close) finishes orders of magnitude sooner
// than the walk would have, and the whole batch is counted as expired.
func TestServiceCanceledSubmitShedsEngineWork(t *testing.T) {
	g := ringGraph(t, 1024)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{Backend: "cpu-pipelined"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 500000 // 64M steps across the batch: ~5s of engine time
	cfg.Seed = 7
	qs, err := ridgewalker.RandomQueries(g, cfg, 128, 21)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(30*time.Millisecond, cancel)
	start := time.Now()
	_, err = svc.Submit(ctx, cfg, qs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit after cancel: %v, want context.Canceled", err)
	}
	if err := svc.Close(); err != nil { // returns only after the group drains
		t.Fatal(err)
	}
	if el := time.Since(start); el > 3*time.Second {
		t.Fatalf("canceled batch held the engine for %v — cancellation did not propagate", el)
	}
	m := svc.Metrics()
	if exp := m.PerLane[ridgewalker.LaneInteractive.String()].Expired; exp != int64(len(qs)) {
		t.Fatalf("expired queries = %d, want %d (the whole abandoned batch)", exp, len(qs))
	}
}

// TestServiceCloseUnderSubmitBurst pins Close's contract under load: with
// submitters racing Close across many distinct configurations (so groups
// are queued, lingering, and flushing at the instant the service closes),
// every Submit must return — a result, the typed ErrServiceClosed, or an
// admission shed — and Close must drain without deadlocking or dropping
// a reply. Run under -race in CI.
func TestServiceCloseUnderSubmitBurst(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:     "cpu",
		MaxInFlight: 512, // small static budget: the burst also exercises shedding
		MaxBatch:    8,
		Linger:      200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 30
	qs, err := ridgewalker.RandomQueries(g, cfg, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 40; j++ {
				c := cfg
				c.Seed = uint64(1 + i*40 + j) // distinct groups: spread across pending/flushing
				_, err := svc.Submit(context.Background(), c, qs)
				switch {
				case err == nil:
				case errors.Is(err, ridgewalker.ErrServiceClosed):
				case errors.Is(err, ridgewalker.ErrOverloaded):
				default:
					t.Errorf("Submit during close burst: %v", err)
				}
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	closed := make(chan error, 1)
	go func() { closed <- svc.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Close deadlocked under submit burst")
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("a submitter never got a reply after Close")
	}
}

// TestServiceLaneStarvationFreedom floods the interactive lane through a
// single-dispatcher service and asserts a lone bulk request still
// completes: the weighted round-robin drain guarantees every positively
// weighted lane a share of each round, so heavy interactive traffic may
// delay bulk work but can never park it forever.
func TestServiceLaneStarvationFreedom(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:           "cpu",
		Workers:           1, // one dispatcher: drain order is exactly the WRR order
		MaxBatch:          1, // every request is its own group
		Linger:            50 * time.Microsecond,
		InteractiveWeight: 4,
		BulkWeight:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	icfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	icfg.WalkLength = 50
	icfg.Lane = ridgewalker.LaneInteractive
	iqs, err := ridgewalker.RandomQueries(g, icfg, 16, 9)
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var served atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := icfg
			for j := 0; !stop.Load(); j++ {
				c.Seed = uint64(1 + i*1000003 + j) // distinct groups, queued faster than one worker drains
				if _, err := svc.Submit(context.Background(), c, iqs); err == nil {
					served.Add(1)
				}
			}
		}()
	}
	defer func() { stop.Store(true); wg.Wait() }()
	time.Sleep(10 * time.Millisecond) // let the interactive queue build
	bcfg := icfg
	bcfg.Lane = ridgewalker.LaneBulk
	bcfg.Seed = 424242
	done := make(chan error, 1)
	go func() {
		_, err := svc.Submit(context.Background(), bcfg, iqs)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("bulk request failed under interactive flood: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("bulk request starved behind interactive traffic")
	}
	if served.Load() == 0 {
		t.Fatal("interactive flood served nothing — the test exercised no contention")
	}
	m := svc.Metrics()
	for _, lane := range []ridgewalker.Lane{ridgewalker.LaneInteractive, ridgewalker.LaneBulk} {
		if m.PerLane[lane.String()].Admitted == 0 {
			t.Fatalf("no admissions recorded for the %s lane", lane)
		}
	}
}

// TestServiceTenantQuotaIsolation pins per-tenant fairness: a tenant that
// exhausts its token bucket is shed with ErrQuotaExceeded while an
// unlimited tenant's traffic is untouched — one noisy neighbor cannot
// spend another tenant's capacity.
func TestServiceTenantQuotaIsolation(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend: "cpu",
		TenantQuotas: map[string]ridgewalker.TenantQuota{
			// One request's worth of burst and a refill rate that is
			// negligible at test timescale: the second request must shed.
			"abuser": {QPS: 0.001, Burst: 64},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 20
	cfg.Seed = 5
	qs, err := ridgewalker.RandomQueries(g, cfg, 64, 13)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	abuser := cfg
	abuser.Tenant = "abuser"
	if _, err := svc.Submit(ctx, abuser, qs); err != nil {
		t.Fatalf("abuser's first request (within burst): %v", err)
	}
	if _, err := svc.Submit(ctx, abuser, qs); !errors.Is(err, ridgewalker.ErrQuotaExceeded) {
		t.Fatalf("abuser's second request: %v, want ErrQuotaExceeded", err)
	}
	good := cfg
	good.Tenant = "good"
	for i := 0; i < 5; i++ {
		if _, err := svc.Submit(ctx, good, qs); err != nil {
			t.Fatalf("good tenant request %d failed beside a throttled neighbor: %v", i, err)
		}
	}
	m := svc.Metrics()
	if shed := m.PerTenant["abuser"].Shed; shed != int64(len(qs)) {
		t.Fatalf("abuser shed = %d queries, want %d", shed, len(qs))
	}
	if shed := m.PerTenant["good"].Shed; shed != 0 {
		t.Fatalf("good tenant shed = %d queries, want 0", shed)
	}
}

// TestServiceAdmissionPreservesTrajectories asserts admission control is
// trajectory-neutral: the same queries produce byte-identical paths with
// the feedback budget enabled, with admission effectively disabled
// (MaxInFlight 0), across lanes and tenants — all of it equal to the
// golden engine. Lane, tenant, and budget steer scheduling, never walks.
func TestServiceAdmissionPreservesTrajectories(t *testing.T) {
	g := serviceTestGraph(t)
	variants := []struct {
		name string
		scfg ridgewalker.ServiceConfig
		lane ridgewalker.Lane
	}{
		{"auto-budget", ridgewalker.ServiceConfig{
			Backend:     "cpu",
			MaxInFlight: ridgewalker.AutoInFlight,
			TenantQuota: ridgewalker.TenantQuota{QPS: 1e9, Burst: 1e9},
		}, ridgewalker.LaneInteractive},
		{"admission-off", ridgewalker.ServiceConfig{Backend: "cpu"}, ridgewalker.LaneBulk},
	}
	for _, alg := range []ridgewalker.Algorithm{ridgewalker.URW, ridgewalker.DeepWalk} {
		cfg := ridgewalker.DefaultWalkConfig(alg)
		cfg.WalkLength = 20
		cfg.Seed = 31
		qs, err := ridgewalker.RandomQueries(g, cfg, 200, 37)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ridgewalker.Walk(g, qs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range variants {
			t.Run(fmt.Sprintf("%s/%s", alg, v.name), func(t *testing.T) {
				svc, err := ridgewalker.NewService(g, v.scfg)
				if err != nil {
					t.Fatal(err)
				}
				defer svc.Close()
				c := cfg
				c.Lane = v.lane
				c.Tenant = "tenant-" + v.name
				got, err := svc.Submit(context.Background(), c, qs)
				if err != nil {
					t.Fatal(err)
				}
				if got.Steps != want.Steps || !reflect.DeepEqual(got.Paths, want.Paths) {
					t.Fatal("admitted walk differs from the golden engine")
				}
			})
		}
	}
}

// TestServiceSubmitRejectsExpiredDeadline pins fail-fast shedding on the
// deadline-feasibility gate: once the controller has observed a service
// rate, a submission whose deadline cannot possibly be met is rejected
// with ErrOverloaded at the front door instead of being walked for
// nobody.
func TestServiceSubmitRejectsExpiredDeadline(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:     "cpu",
		MaxInFlight: ridgewalker.AutoInFlight,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	cfg.WalkLength = 40
	cfg.Seed = 3
	qs, err := ridgewalker.RandomQueries(g, cfg, 64, 19)
	if err != nil {
		t.Fatal(err)
	}
	// Calibrate the service rate with a few normal submissions.
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(context.Background(), cfg, qs); err != nil {
			t.Fatal(err)
		}
	}
	// Hold the engine busy so queued work exists, then submit with an
	// already-expired deadline: predicted wait (> 0) exceeds headroom (0).
	var wg sync.WaitGroup
	busy := cfg
	busy.WalkLength = 200000
	busy.Seed = 99
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _ = svc.Submit(context.Background(), busy, qs)
	}()
	defer wg.Wait()
	deadline := time.Now().Add(25 * time.Millisecond)
	for {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		_, err = svc.Submit(ctx, cfg, qs)
		cancel()
		if errors.Is(err, ridgewalker.ErrOverloaded) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expired-deadline submission was never shed (last err: %v)", err)
		}
		// The busy batch may not have been admitted yet; retry briefly.
		time.Sleep(time.Millisecond)
	}
}
