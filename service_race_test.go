package ridgewalker_test

// Race/stress battery for the Service lifecycle: session eviction churn
// under concurrent Submit and Stream, and Close racing in-flight work.
// These tests are written to run under `go test -race` (CI runs them so)
// and assert ordering invariants that plain unit tests cannot see:
// evicted sessions never serve stale state, a closing service either
// completes a request correctly or rejects it cleanly, and no
// Submit/Stream/Close interleaving deadlocks or leaks a result to the
// wrong requester.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ridgewalker"
)

// raceIterations keeps the stress loops meaningful under -race without
// dominating -short CI time.
func raceIterations(t *testing.T) int {
	if testing.Short() {
		return 8
	}
	return 25
}

// TestServiceEvictionChurnConcurrent hammers a 2-entry session cache with
// 8 distinct walk configurations from concurrent submitters and
// streamers: every request forces cache churn, and every reply must be
// byte-identical to a solo run of its configuration — eviction must never
// tear down a session another request is using or resurrect stale state.
func TestServiceEvictionChurnConcurrent(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:     "cpu",
		MaxSessions: 2,
		Workers:     2,
		Linger:      100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const cfgs = 8
	qs, err := ridgewalker.RandomQueries(g, ridgewalker.DefaultWalkConfig(ridgewalker.URW), 60, 23)
	if err != nil {
		t.Fatal(err)
	}
	makeCfg := func(i int) ridgewalker.WalkConfig {
		cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
		cfg.WalkLength = 12
		cfg.Seed = uint64(i + 1)
		return cfg
	}
	want := make([]*ridgewalker.Result, cfgs)
	for i := range want {
		want[i], err = ridgewalker.Walk(g, qs, makeCfg(i))
		if err != nil {
			t.Fatal(err)
		}
	}

	iters := raceIterations(t)
	var wg sync.WaitGroup
	errCh := make(chan error, 2*cfgs)
	for i := 0; i < cfgs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := makeCfg(i)
			for n := 0; n < iters; n++ {
				got, err := svc.Submit(context.Background(), cfg, qs)
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(got.Paths, want[i].Paths) {
					errCh <- errors.New("submit result differs after eviction churn")
					return
				}
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := makeCfg(i)
			for n := 0; n < iters; n++ {
				paths := make([][]ridgewalker.VertexID, len(qs))
				err := svc.Stream(context.Background(), cfg, qs, func(w ridgewalker.WalkOutput) error {
					cp := make([]ridgewalker.VertexID, len(w.Path))
					copy(cp, w.Path)
					paths[w.Query] = cp
					return nil
				})
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(paths, want[i].Paths) {
					errCh <- errors.New("stream result differs after eviction churn")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestServiceShardedBackendConcurrent runs the same churn against the
// cpu-sharded backend, so session eviction also exercises the shard
// engine's per-run goroutine lifecycle under -race.
func TestServiceShardedBackendConcurrent(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:     "cpu-sharded",
		Shards:      3,
		MaxSessions: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	qs, err := ridgewalker.RandomQueries(g, ridgewalker.DefaultWalkConfig(ridgewalker.URW), 80, 29)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 6
	iters := raceIterations(t)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
			cfg.WalkLength = 10
			cfg.Seed = uint64(i%3 + 1) // 3 cfgs over a 2-entry cache
			want, err := ridgewalker.Walk(g, qs, cfg)
			if err != nil {
				errCh <- err
				return
			}
			for n := 0; n < iters; n++ {
				got, err := svc.Submit(context.Background(), cfg, qs)
				if err != nil {
					errCh <- err
					return
				}
				if !reflect.DeepEqual(got.Paths, want.Paths) {
					errCh <- errors.New("sharded submit differs under churn")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestServiceCloseRacesInflight closes services while submissions and
// streams are in flight: every call must either return a correct result
// or the "service is closed" error — never a torn result, a deadlock, or
// a panic — and Close must return exactly once per service with all
// pending groups drained.
func TestServiceCloseRacesInflight(t *testing.T) {
	g := serviceTestGraph(t)
	cfg := ridgewalker.DefaultWalkConfig(ridgewalker.PPR)
	cfg.WalkLength = 12
	cfg.Seed = 3
	qs, err := ridgewalker.RandomQueries(g, cfg, 40, 31)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ridgewalker.Walk(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rounds := raceIterations(t)
	for round := 0; round < rounds; round++ {
		svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
			Backend: "cpu",
			Workers: 2,
			Linger:  50 * time.Microsecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		const callers = 6
		var wg sync.WaitGroup
		var served, rejected atomic.Int64
		// Worst case: one error per caller plus both Close calls erroring.
		errCh := make(chan error, callers+2)
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var err error
				if i%2 == 0 {
					var got *ridgewalker.Result
					got, err = svc.Submit(context.Background(), cfg, qs)
					if err == nil && !reflect.DeepEqual(got.Paths, want.Paths) {
						errCh <- errors.New("torn submit result during Close")
						return
					}
				} else {
					var steps int64
					err = svc.Stream(context.Background(), cfg, qs, func(w ridgewalker.WalkOutput) error {
						steps += w.Steps
						return nil
					})
					if err == nil && steps != want.Steps {
						errCh <- errors.New("torn stream result during Close")
						return
					}
				}
				switch {
				case err == nil:
					served.Add(1)
				case strings.Contains(err.Error(), "closed"):
					rejected.Add(1)
				default:
					errCh <- err
				}
			}(i)
		}
		// Race Close against the callers; a second Close must be a no-op.
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Duration(round%5) * 50 * time.Microsecond)
			if err := svc.Close(); err != nil {
				errCh <- err
			}
			if err := svc.Close(); err != nil {
				errCh <- err
			}
		}()
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Fatal(err)
		}
		if served.Load()+rejected.Load() != callers {
			t.Fatalf("round %d: %d served + %d rejected != %d callers",
				round, served.Load(), rejected.Load(), callers)
		}
		// After Close everything is rejected.
		if _, err := svc.Submit(context.Background(), cfg, qs); err == nil {
			t.Fatal("submit after Close accepted")
		}
	}
}

// TestServiceMetricsUnderConcurrency pins the metrics invariant the
// stress exposes: served-query totals must equal the sum of successful
// requests exactly, even when requests race eviction and coalescing.
func TestServiceMetricsUnderConcurrency(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:     "cpu",
		MaxSessions: 2,
		Linger:      200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	qs, err := ridgewalker.RandomQueries(g, ridgewalker.DefaultWalkConfig(ridgewalker.URW), 50, 37)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 10
	iters := raceIterations(t)
	var wg sync.WaitGroup
	var failed atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
			cfg.WalkLength = 8
			cfg.Seed = uint64(i%4 + 1)
			for n := 0; n < iters; n++ {
				if _, err := svc.Submit(context.Background(), cfg, qs); err != nil {
					failed.Add(1)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d callers failed", failed.Load())
	}
	m := svc.Metrics()
	c := m.PerAlgorithm["URW"]
	wantQueries := int64(callers) * int64(iters) * int64(len(qs))
	if c.Queries != wantQueries || c.Requests != int64(callers)*int64(iters) {
		t.Fatalf("metrics lost work under concurrency: %+v, want %d queries", c, wantQueries)
	}
	if b := m.PerBackend["cpu"]; b.Queries != wantQueries {
		t.Fatalf("per-backend metrics lost work: %+v", b)
	}
}

// TestServiceBurstFlushStress floods the service with a burst of tiny
// batches across many distinct walk configurations at MaxBatch=1, so
// every Submit triggers an immediate flush. Group execution must run on
// the fixed dispatcher pool — bounded goroutines with backpressure, not
// one spawned goroutine per flushed group — while every reply stays
// byte-identical to a solo run of its configuration and Close still
// drains cleanly mid-burst.
func TestServiceBurstFlushStress(t *testing.T) {
	g := serviceTestGraph(t)
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:  "cpu",
		Workers:  2,
		MaxBatch: 1, // every submission fills its group: maximal flush rate
		Linger:   50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := ridgewalker.RandomQueries(g, ridgewalker.DefaultWalkConfig(ridgewalker.URW), 8, 41)
	if err != nil {
		t.Fatal(err)
	}
	const cfgs = 12
	makeCfg := func(i int) ridgewalker.WalkConfig {
		cfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
		cfg.WalkLength = 6 + i%5
		cfg.Seed = uint64(i + 1)
		return cfg
	}
	want := make([]*ridgewalker.Result, cfgs)
	for i := range want {
		res, err := ridgewalker.Walk(g, qs, makeCfg(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	const callers = 16
	iters := raceIterations(t)
	var wg sync.WaitGroup
	var bad atomic.Int64
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				i := (c + n) % cfgs
				res, err := svc.Submit(context.Background(), makeCfg(i), qs)
				if err != nil {
					bad.Add(1)
					return
				}
				if !reflect.DeepEqual(res.Paths, want[i].Paths) {
					bad.Add(1)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d callers saw errors or wrong paths under burst flush", bad.Load())
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	// Submissions after Close must be rejected, not queued to dead workers.
	if _, err := svc.Submit(context.Background(), makeCfg(0), qs); err == nil {
		t.Fatal("Submit after Close succeeded")
	}
}
