// Package engine implements RidgeWalker's asynchronous memory access engine
// (paper §V-B, Fig. 6), the microarchitectural core of the Row Access and
// Column Access modules.
//
// An incoming task enters the Request Proxy, which forwards the address to
// the memory channel and enqueues the task's metadata separately in a
// Metadata Queue sized to cover the round-trip latency. The channel's AXI
// responses may complete out of order across transaction IDs; a reorder
// buffer reconstructs issue order, and the Response Proxy reunites each
// response with its metadata before handing the completed task downstream.
//
// Unlike a conventional stalling pipeline, the engine never blocks on
// response availability: as long as the metadata queue and the channel
// window have room, a new request issues every cycle (II=1), keeping up to
// MaxOutstanding transactions in flight and fully hiding memory latency.
package engine

import (
	"fmt"

	"ridgewalker/internal/hbm"
)

// Stats counts engine activity.
type Stats struct {
	Issued    int64
	Completed int64
	// StallMetaFull counts cycles a request was ready but the metadata
	// queue was full.
	StallMetaFull int64
	// StallChannelFull counts cycles the channel window was exhausted.
	StallChannelFull int64
}

// Engine is the asynchronous access engine, generic over the metadata type
// M that rides alongside each transaction.
type Engine[M any] struct {
	channel *hbm.Channel

	// metaDepth bounds in-flight transactions; the paper sizes this BRAM
	// queue to cover round-trip latency (up to 512 entries; 128 on U55C).
	metaDepth int
	meta      []metaEntry[M] // issue-order metadata queue

	// Reorder buffer: responses arrive keyed by sequence number; delivery
	// follows issue order so metadata reunification is a simple FIFO pop.
	issueSeq uint64
	popSeq   uint64
	rob      map[uint64]hbm.Response

	out   []completed[M]
	stats Stats

	// maxOutstanding additionally bounds in-flight requests; 1 models a
	// blocking design (the ablation baseline), larger values model the
	// paper's 128-deep non-blocking engine.
	maxOutstanding int
}

type completed[M any] struct {
	meta M
	addr uint64
}

// metaEntry associates metadata with the number of transactions that must
// complete before it is released (multi-beat accesses, e.g. the extra
// probes of rejection sampling).
type metaEntry[M any] struct {
	meta      M
	remaining int
}

// Config parameterizes an Engine.
type Config struct {
	// MetaDepth is the metadata queue depth (default 128).
	MetaDepth int
	// MaxOutstanding caps in-flight transactions; 1 = blocking access.
	// Defaults to MetaDepth.
	MaxOutstanding int
}

// New builds an engine over the given channel.
func New[M any](ch *hbm.Channel, cfg Config) (*Engine[M], error) {
	if cfg.MetaDepth == 0 {
		cfg.MetaDepth = 128
	}
	if cfg.MetaDepth < 1 {
		return nil, fmt.Errorf("engine: metadata depth %d, want >= 1", cfg.MetaDepth)
	}
	if cfg.MaxOutstanding == 0 {
		cfg.MaxOutstanding = cfg.MetaDepth
	}
	if cfg.MaxOutstanding < 1 {
		return nil, fmt.Errorf("engine: max outstanding %d, want >= 1", cfg.MaxOutstanding)
	}
	return &Engine[M]{
		channel:        ch,
		metaDepth:      cfg.MetaDepth,
		rob:            make(map[uint64]hbm.Response),
		maxOutstanding: cfg.MaxOutstanding,
	}, nil
}

// InFlight returns the number of transactions between issue and completion.
func (e *Engine[M]) InFlight() int { return int(e.issueSeq - e.popSeq) }

// CanAccept reports whether a request can issue this cycle.
func (e *Engine[M]) CanAccept() bool {
	if e.InFlight() >= e.maxOutstanding {
		return false
	}
	if len(e.meta) >= e.metaDepth {
		return false
	}
	return e.channel.CanAccept()
}

// Push issues a request for addr carrying meta. It returns false when the
// engine cannot accept (metadata queue or channel window full).
func (e *Engine[M]) Push(addr uint64, meta M) bool {
	return e.PushN(addr, meta, 1)
}

// CanAcceptN reports whether an n-transaction access can issue this cycle.
func (e *Engine[M]) CanAcceptN(n int) bool {
	if e.InFlight()+n > e.maxOutstanding {
		return false
	}
	if len(e.meta) >= e.metaDepth {
		return false
	}
	return e.channel.CanAcceptN(n)
}

// PushN issues one logical access of n >= 1 memory transactions (e.g. a
// sampled read plus its rejection probes). The metadata is released once
// after the n-th transaction completes. All n transactions issue together
// or not at all.
func (e *Engine[M]) PushN(addr uint64, meta M, n int) bool {
	if n < 1 {
		panic("engine: PushN with n < 1")
	}
	// Classify the more specific stall first: the metadata queue mirrors
	// in-flight count, so when MetaDepth == MaxOutstanding both bounds trip
	// together and the metadata queue is the architectural limiter.
	if len(e.meta) >= e.metaDepth {
		e.stats.StallMetaFull++
		return false
	}
	if e.InFlight()+n > e.maxOutstanding || !e.channel.CanAcceptN(n) {
		e.stats.StallChannelFull++
		return false
	}
	for i := 0; i < n; i++ {
		if !e.channel.Push(hbm.Request{Addr: addr + uint64(i)*8, Tag: e.issueSeq}) {
			// CanAcceptN guaranteed room; a failure here is a model bug.
			panic("engine: channel rejected a pre-checked transaction")
		}
		e.issueSeq++
	}
	e.meta = append(e.meta, metaEntry[M]{meta: meta, remaining: n})
	e.stats.Issued++
	return true
}

// Tick drains channel responses into the reorder buffer and releases
// completed tasks in issue order. The channel itself must be ticked
// separately (it is shared infrastructure registered with the simulator).
func (e *Engine[M]) Tick(now int64) {
	for {
		resp, ok := e.channel.PopResponse()
		if !ok {
			break
		}
		e.rob[resp.Tag] = resp
	}
	for {
		resp, ok := e.rob[e.popSeq]
		if !ok {
			break
		}
		delete(e.rob, e.popSeq)
		e.popSeq++
		e.meta[0].remaining--
		if e.meta[0].remaining == 0 {
			m := e.meta[0].meta
			e.meta = e.meta[1:]
			e.out = append(e.out, completed[M]{meta: m, addr: resp.Addr})
			e.stats.Completed++
		}
	}
}

// PopCompleted returns the oldest completed task's metadata and address.
func (e *Engine[M]) PopCompleted() (meta M, addr uint64, ok bool) {
	var zero M
	if len(e.out) == 0 {
		return zero, 0, false
	}
	c := e.out[0]
	e.out = e.out[1:]
	return c.meta, c.addr, true
}

// PendingCompleted returns the number of completed tasks not yet popped.
func (e *Engine[M]) PendingCompleted() int { return len(e.out) }

// Stats returns a copy of the counters.
func (e *Engine[M]) Stats() Stats { return e.stats }
