package engine

import (
	"testing"
	"testing/quick"

	"ridgewalker/internal/hbm"
	"ridgewalker/internal/rng"
)

func newChan(outstanding, reorder int) *hbm.Channel {
	return hbm.NewChannel(hbm.ChannelConfig{
		ServiceInterval: 2,
		Latency:         20,
		MaxOutstanding:  outstanding,
		ReorderWindow:   reorder,
		Seed:            3,
	})
}

// drive pushes n requests as fast as the engine accepts and returns the
// metadata in completion order plus total cycles used.
func drive(t *testing.T, e *Engine[int], ch *hbm.Channel, n int) ([]int, int64) {
	t.Helper()
	pushed := 0
	var out []int
	var now int64
	for now = 0; now < int64(n)*200+1000 && len(out) < n; now++ {
		if pushed < n && e.CanAccept() {
			if e.Push(uint64(pushed)*8, pushed) {
				pushed++
			}
		}
		ch.Tick(now)
		e.Tick(now)
		for {
			meta, addr, ok := e.PopCompleted()
			if !ok {
				break
			}
			if addr != uint64(meta)*8 {
				t.Fatalf("metadata %d reunited with wrong address %#x", meta, addr)
			}
			out = append(out, meta)
		}
	}
	return out, now
}

func TestEngineReunitesMetadataInOrder(t *testing.T) {
	ch := newChan(64, 16) // out-of-order completions
	e, err := New[int](ch, Config{MetaDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := drive(t, e, ch, 200)
	if len(out) != 200 {
		t.Fatalf("completed %d/200", len(out))
	}
	for i, m := range out {
		if m != i {
			t.Fatalf("completion %d carries metadata %d; reorder buffer failed", i, m)
		}
	}
}

func TestEngineNonBlockingHidesLatency(t *testing.T) {
	// Blocking engine (1 outstanding): each access pays full latency.
	// Async engine (64 outstanding): throughput approaches the service rate.
	const n = 300

	chB := newChan(64, 0)
	blocking, err := New[int](chB, Config{MetaDepth: 64, MaxOutstanding: 1})
	if err != nil {
		t.Fatal(err)
	}
	outB, cyclesBlocking := drive(t, blocking, chB, n)

	chA := newChan(64, 0)
	async, err := New[int](chA, Config{MetaDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	outA, cyclesAsync := drive(t, async, chA, n)

	if len(outB) != n || len(outA) != n {
		t.Fatalf("incomplete runs: %d %d", len(outB), len(outA))
	}
	// Latency 20 + service 2 ≈ 22+ cycles each when blocking; ~2 when
	// pipelined. Expect at least 5× separation.
	if cyclesBlocking < 5*cyclesAsync {
		t.Fatalf("async %d cycles vs blocking %d: latency not hidden", cyclesAsync, cyclesBlocking)
	}
}

func TestEngineMetadataQueueBound(t *testing.T) {
	ch := newChan(1024, 0)
	e, err := New[int](ch, Config{MetaDepth: 4})
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 10; i++ {
		if e.Push(uint64(i), i) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d pushes with MetaDepth=4", accepted)
	}
	if e.Stats().StallMetaFull == 0 {
		t.Fatal("metadata-full stalls not counted")
	}
}

func TestEngineChannelWindowStall(t *testing.T) {
	ch := newChan(2, 0)
	e, err := New[int](ch, Config{MetaDepth: 64})
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for i := 0; i < 6; i++ {
		if e.Push(uint64(i), i) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d pushes with channel window 2", accepted)
	}
	if e.Stats().StallChannelFull == 0 {
		t.Fatal("channel-full stalls not counted")
	}
}

func TestEngineConfigDefaults(t *testing.T) {
	ch := newChan(8, 0)
	e, err := New[string](ch, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.metaDepth != 128 || e.maxOutstanding != 128 {
		t.Fatalf("defaults = (%d,%d), want (128,128)", e.metaDepth, e.maxOutstanding)
	}
	if _, err := New[string](ch, Config{MetaDepth: -1}); err == nil {
		t.Fatal("negative depth accepted")
	}
	if _, err := New[string](ch, Config{MaxOutstanding: -2}); err == nil {
		t.Fatal("negative outstanding accepted")
	}
}

// TestEngineConservationProperty: random arrival gaps and reorder windows;
// every pushed item completes exactly once, in issue order, with its own
// address.
func TestEngineConservationProperty(t *testing.T) {
	f := func(seed uint64, reorderRaw uint8, nRaw uint8) bool {
		reorder := int(reorderRaw % 24)
		n := int(nRaw%100) + 1
		ch := hbm.NewChannel(hbm.ChannelConfig{
			ServiceInterval: 1.7, Latency: 12, MaxOutstanding: 32,
			ReorderWindow: reorder, Seed: seed,
		})
		e, err := New[uint64](ch, Config{MetaDepth: 32})
		if err != nil {
			return false
		}
		r := rng.New(seed)
		pushed := 0
		var out []uint64
		for now := int64(0); now < int64(n)*100+500 && len(out) < n; now++ {
			if pushed < n && r.Intn(3) == 0 && e.CanAccept() {
				if e.Push(uint64(pushed)*16, uint64(pushed)) {
					pushed++
				}
			}
			ch.Tick(now)
			e.Tick(now)
			for {
				meta, addr, ok := e.PopCompleted()
				if !ok {
					break
				}
				if addr != meta*16 {
					return false
				}
				out = append(out, meta)
			}
		}
		if len(out) != n {
			return false
		}
		for i, m := range out {
			if m != uint64(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
