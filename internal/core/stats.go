package core

import (
	"ridgewalker/internal/engine"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/hwsim"
)

// Stats reports a run's simulated performance in the paper's metrics.
type Stats struct {
	Platform hbm.Platform
	// Cycles is the simulated end-to-end duration at the platform clock.
	Cycles int64
	// Steps is the total count of visited vertices (hops) across queries —
	// the numerator of the MStep/s metric (§VIII-A).
	Steps int64
	// QueriesDone counts completed queries.
	QueriesDone int
	// PipelineBusy tracks, per pipeline, cycles doing useful work vs idle.
	PipelineBusy []hwsim.BusyCounter
	// RowEngine / ColEngine aggregate access-engine counters (logical
	// accesses; one access may span several memory transactions).
	RowEngine, ColEngine engine.Stats
	// RowTx / ColTx count actual memory transactions per channel group.
	RowTx, ColTx int64
	// ChannelUtilization is the mean service-unit utilization across all
	// channels.
	ChannelUtilization float64
	// SchedRecycles counts tasks returned through the scheduler (dynamic
	// mode only).
	SchedRecycles int64
}

// Seconds converts simulated cycles to seconds at the platform clock.
func (s Stats) Seconds() float64 {
	return float64(s.Cycles) / s.Platform.CoreHz()
}

// ThroughputMSteps returns throughput in millions of steps per second,
// the paper's primary metric.
func (s Stats) ThroughputMSteps() float64 {
	sec := s.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(s.Steps) / sec / 1e6
}

// EffectiveBandwidthGBs returns the paper's effective-bandwidth measure:
// the memory footprint of traversed edges (8 bytes per step) over time.
func (s Stats) EffectiveBandwidthGBs() float64 {
	sec := s.Seconds()
	if sec == 0 {
		return 0
	}
	return float64(s.Steps) * 8 / sec / 1e9
}

// Eq1Utilization returns effective bandwidth normalized by the Equation-(1)
// theoretical peak — the y-axis of Fig. 11 and the last row of Table III.
func (s Stats) Eq1Utilization() float64 {
	return s.EffectiveBandwidthGBs() * 1e9 / s.Platform.Eq1PeakBytesPerSec()
}

// MeanBubbleRatio averages the per-pipeline bubble ratios.
func (s Stats) MeanBubbleRatio() float64 {
	if len(s.PipelineBusy) == 0 {
		return 0
	}
	t := 0.0
	for _, b := range s.PipelineBusy {
		t += b.BubbleRatio()
	}
	return t / float64(len(s.PipelineBusy))
}
