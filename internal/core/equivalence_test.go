package core

import (
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

// chiSquaredVisits compares per-vertex visit counts between the accelerator
// and the golden engine on identical workloads.
func chiSquaredVisits(t *testing.T, g *graph.CSR, wcfg walk.Config, nq int) float64 {
	t.Helper()
	qs, err := walk.RandomQueries(g, wcfg, nq, 13)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(smallPlatform(), wcfg)
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hwRes, _, err := a.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	swRes, err := walk.Run(g, qs, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	hw := walk.VisitCounts(g, hwRes)
	sw := walk.VisitCounts(g, swRes)
	var hwTotal, swTotal int64
	for v := range hw {
		hwTotal += hw[v]
		swTotal += sw[v]
	}
	chi2 := 0.0
	for v := range hw {
		expect := float64(sw[v]) / float64(swTotal) * float64(hwTotal)
		if expect < 5 {
			continue
		}
		d := float64(hw[v]) - expect
		chi2 += d * d / expect
	}
	return chi2
}

func TestDeepWalkDistributionMatchesGolden(t *testing.T) {
	// Alias-sampled weighted walks: the accelerator's out-of-order
	// execution must preserve the weight-proportional visit distribution.
	g := graph.SmallTestGraph()
	g.AttachWeights()
	wcfg := walk.Config{Algorithm: walk.DeepWalk, WalkLength: 25, Seed: 17}
	chi2 := chiSquaredVisits(t, g, wcfg, 2500)
	// 4 dof; generous bound covering engine RNG differences.
	if chi2 > 25 {
		t.Fatalf("DeepWalk visit distribution diverges: chi2 = %v", chi2)
	}
}

func TestNode2VecDistributionMatchesGolden(t *testing.T) {
	// Second-order rejection sampling is the hardest case: the task tuple
	// must carry VPrev correctly through routing and recycling.
	g := graph.SmallTestGraph()
	wcfg := walk.Config{Algorithm: walk.Node2Vec, WalkLength: 25, P: 2, Q: 0.5, Seed: 19}
	chi2 := chiSquaredVisits(t, g, wcfg, 2500)
	if chi2 > 25 {
		t.Fatalf("Node2Vec visit distribution diverges: chi2 = %v", chi2)
	}
}

func TestStaticModeDistributionMatchesGolden(t *testing.T) {
	// The lockstep baseline reorders nothing, but zombie slots must never
	// contaminate recorded paths.
	g := graph.SmallTestGraph()
	wcfg := walk.Config{Algorithm: walk.URW, WalkLength: 25, Seed: 23}
	qs, err := walk.RandomQueries(g, wcfg, 2000, 29)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(smallPlatform(), wcfg)
	cfg.DynamicSched = false
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := a.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	if st.QueriesDone != len(qs) {
		t.Fatalf("done %d/%d", st.QueriesDone, len(qs))
	}
	if err := walk.ValidatePaths(g, res, wcfg); err != nil {
		t.Fatal(err)
	}
	// SmallTestGraph has no sinks: every walk must be full length (no
	// zombie-truncated or zombie-extended paths).
	for i, p := range res.Paths {
		if len(p) != 26 {
			t.Fatalf("query %d path length %d, want 26", i, len(p))
		}
	}
}
