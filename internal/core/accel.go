package core

import (
	"errors"
	"fmt"

	"ridgewalker/internal/engine"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/hwsim"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/sched"
	"ridgewalker/internal/walk"
)

// Accelerator is one configured RidgeWalker instance bound to a graph.
type Accelerator struct {
	cfg     Config
	g       *graph.CSR
	sampler sampling.Sampler
	layout  Layout

	sim     *hwsim.Sim
	rpChans []*hbm.Channel
	clChans []*hbm.Channel

	// Dynamic mode plumbing.
	scheduler *sched.Scheduler[Task]
	rowRouter *sched.Router[Task] // routes row-complete tasks to the CL pipeline
	pipes     []*pipeline

	// Static mode plumbing.
	statics []*staticPipeline

	// Query management.
	queries   []walk.Query
	nextQuery int
	active    int
	doneCount int

	paths [][]graph.VertexID
	steps int64

	// Streaming delivery (SetOnWalk).
	onWalk  func(query uint32, path []graph.VertexID) bool
	stopped bool
}

// ErrStopped is returned by Run when the OnWalk callback requested an early
// stop by returning false.
var ErrStopped = errors.New("core: run stopped by OnWalk callback")

// SetOnWalk installs (or, with nil, clears) a per-walk delivery callback.
// When set — and RecordPaths is enabled — each query's completed path is
// handed to fn the cycle the query retires and then released, so a run
// streams walks out without materializing the full path set. The path slice
// is owned by the accelerator only until fn returns; fn may retain it (it is
// never reused). Returning false stops the simulation; Run then reports
// ErrStopped. Takes effect on the next Run call.
func (a *Accelerator) SetOnWalk(fn func(query uint32, path []graph.VertexID) bool) {
	a.onWalk = fn
}

// New builds an accelerator for g under cfg. The graph must satisfy the
// walk config's requirements (weights for DeepWalk, labels for MetaPath).
func New(g *graph.CSR, cfg Config) (*Accelerator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	sampler := cfg.Sampler
	if sampler == nil {
		sampler, err = walk.BuildSampler(g, cfg.Walk)
		if err != nil {
			return nil, err
		}
	} else if err := cfg.Walk.Validate(g); err != nil {
		return nil, err
	}
	a := &Accelerator{
		cfg:     cfg,
		g:       g,
		sampler: sampler,
		layout:  Layout{Pipelines: cfg.Pipelines},
		sim:     hwsim.NewSim(),
	}
	n := cfg.Pipelines
	a.rpChans = make([]*hbm.Channel, n)
	a.clChans = make([]*hbm.Channel, n)
	for i := 0; i < n; i++ {
		a.rpChans[i] = hbm.NewChannel(cfg.Platform.ChannelConfig(cfg.Seed ^ uint64(i)<<1))
		a.clChans[i] = hbm.NewChannel(cfg.Platform.ChannelConfig(cfg.Seed ^ uint64(i)<<1 ^ 1))
		a.sim.Register(a.rpChans[i])
		a.sim.Register(a.clChans[i])
	}
	if cfg.DynamicSched {
		if err := a.buildDynamic(); err != nil {
			return nil, err
		}
	} else {
		if err := a.buildStatic(); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// engineConfig returns the access-engine sizing for the ablation mode.
func (a *Accelerator) engineConfig() engine.Config {
	if a.cfg.Async {
		return engine.Config{MetaDepth: a.cfg.EngineDepth}
	}
	// Blocking design: metadata queue still covers latency, but only a few
	// transactions may be in flight (shallow dataflow FIFOs, §VIII-D).
	return engine.Config{MetaDepth: a.cfg.EngineDepth, MaxOutstanding: a.cfg.BlockingOutstanding}
}

func (a *Accelerator) buildDynamic() error {
	n := a.cfg.Pipelines
	var err error
	a.scheduler, err = sched.NewScheduler[Task](a.sim, sched.SchedulerConfig{
		Pipelines:          n,
		OutputDepth:        a.cfg.SchedulerOutputDepth,
		PrioritizeRecycled: true,
	}, func(t Task) int { return a.layout.RowPipeline(t.VCur) })
	if err != nil {
		return err
	}
	a.rowRouter, err = sched.NewRouter[Task](a.sim, "core.rowcol", n, 4,
		func(t Task) int { return a.layout.ColPipeline(t.VCur) })
	if err != nil {
		return err
	}
	rsrc := rng.NewSource(a.cfg.Seed + 0x9e3779b97f4a7c15)
	a.pipes = make([]*pipeline, n)
	for i := 0; i < n; i++ {
		rowEng, err := engine.New[Task](a.rpChans[i], a.engineConfig())
		if err != nil {
			return err
		}
		colEng, err := engine.New[Task](a.clChans[i], a.engineConfig())
		if err != nil {
			return err
		}
		a.pipes[i] = &pipeline{
			a: a, idx: i,
			rowEng: rowEng, colEng: colEng,
			in:      a.scheduler.Output(i),
			routeIn: a.rowRouter.Inputs()[i],
			sampIn:  a.rowRouter.Outputs()[i],
			rng:     rsrc.Stream(uint64(i)),
		}
		a.sim.Register(a.pipes[i])
	}
	// Query loader: inject one pending query per cycle under the streaming
	// window.
	a.sim.Register(hwsim.ModuleFunc(func(now int64) {
		if a.nextQuery >= len(a.queries) || a.active >= a.cfg.MaxQueriesInFlight {
			return
		}
		q := a.queries[a.nextQuery]
		if !a.scheduler.CanInject() {
			return
		}
		if a.scheduler.Inject(Task{Query: q.ID, VCur: q.Start}) {
			a.nextQuery++
			a.active++
		}
	}))
	return nil
}

// finishQuery retires a query, streaming its path out when a delivery
// callback is installed.
func (a *Accelerator) finishQuery(q uint32) {
	a.doneCount++
	a.active--
	if a.onWalk != nil && !a.stopped {
		// Once stopped, no further deliveries: queries retiring later in
		// the same cycle (the stop condition is only checked between
		// cycles) must not reach a callback that already returned false.
		if !a.onWalk(q, a.paths[q]) {
			a.stopped = true
		}
		a.paths[q] = nil // streamed out; do not accumulate
	}
}

// recordHop appends a visited vertex and counts the step.
func (a *Accelerator) recordHop(q uint32, v graph.VertexID) {
	a.steps++
	if a.cfg.RecordPaths {
		a.paths[q] = append(a.paths[q], v)
	}
}

// sampleCost converts a sampling decision into pipeline occupancy cycles
// and column-channel transactions (see DESIGN.md):
//
//	uniform    1 cycle, 1 transaction (the chosen neighbor read)
//	alias      1 cycle, 1 transaction (fused 128-bit alias+neighbor entry)
//	rejection  t cycles, 2t−1 transactions (t candidate reads + t−1
//	           membership probes against prev's list)
//	reservoir  ⌈deg/8⌉ cycles (512-bit streaming scan), 1 transaction
func (a *Accelerator) sampleCost(t *Task, res sampling.Result) (cost, txs int) {
	switch a.sampler.Kind() {
	case sampling.KindUniform, sampling.KindAlias:
		return 1, 1
	case sampling.KindRejection:
		trips := res.Probes
		txs = 2*trips - 1
		// Bound by what the engine window can hold at once.
		limit := a.cfg.EngineDepth
		if !a.cfg.Async {
			limit = a.cfg.BlockingOutstanding
		}
		if txs > limit {
			txs = limit
		}
		return trips, txs
	default: // reservoir, metapath
		cost = (int(t.deg) + 7) / 8
		if cost < 1 {
			cost = 1
		}
		return cost, 1
	}
}

// Run executes the query batch to completion (or the cycle budget) and
// returns walk results plus simulated performance statistics.
func (a *Accelerator) Run(queries []walk.Query) (*walk.Result, *Stats, error) {
	if len(queries) == 0 {
		return nil, nil, fmt.Errorf("core: no queries")
	}
	a.queries = queries
	a.nextQuery = 0
	a.active = 0
	a.doneCount = 0
	a.steps = 0
	a.stopped = false
	maxID := uint32(0)
	seen := make(map[uint32]bool, len(queries))
	for _, q := range queries {
		if seen[q.ID] {
			return nil, nil, fmt.Errorf("core: duplicate query ID %d (IDs key result tracking)", q.ID)
		}
		seen[q.ID] = true
		if int(q.Start) >= a.g.NumVertices {
			return nil, nil, fmt.Errorf("core: query %d starts at vertex %d, graph has %d", q.ID, q.Start, a.g.NumVertices)
		}
		if q.ID > maxID {
			maxID = q.ID
		}
	}
	a.paths = make([][]graph.VertexID, maxID+1)
	if a.cfg.RecordPaths {
		for _, q := range queries {
			a.paths[q.ID] = append(a.paths[q.ID], q.Start)
		}
	}
	if !a.cfg.DynamicSched {
		a.assignStaticQueries()
	}
	// Generous budget: worst case every step serialized through latency.
	budget := int64(len(queries))*int64(a.cfg.Walk.WalkLength)*int64(a.cfg.Platform.LatencyCycles)/int64(a.cfg.Pipelines) + 1_000_000
	_, ok := a.sim.RunUntil(func() bool { return a.doneCount >= len(queries) || a.stopped }, budget)
	if a.stopped {
		return nil, nil, ErrStopped
	}
	if !ok {
		return nil, nil, fmt.Errorf("core: simulation exceeded %d-cycle budget (%d/%d queries done)",
			budget, a.doneCount, len(queries))
	}
	res := &walk.Result{Paths: a.paths, Steps: a.steps}
	st := a.collectStats()
	return res, st, nil
}

func (a *Accelerator) collectStats() *Stats {
	st := &Stats{
		Platform:    a.cfg.Platform,
		Cycles:      a.sim.Now(),
		Steps:       a.steps,
		QueriesDone: a.doneCount,
	}
	util := 0.0
	for i := range a.rpChans {
		util += a.rpChans[i].Stats().Utilization()
		util += a.clChans[i].Stats().Utilization()
		st.RowTx += a.rpChans[i].Stats().Completed
		st.ColTx += a.clChans[i].Stats().Completed
	}
	st.ChannelUtilization = util / float64(2*len(a.rpChans))
	if a.cfg.DynamicSched {
		st.SchedRecycles = a.scheduler.Recycled()
		for _, p := range a.pipes {
			st.PipelineBusy = append(st.PipelineBusy, p.busy)
			st.RowEngine.Issued += p.rowEng.Stats().Issued
			st.RowEngine.Completed += p.rowEng.Stats().Completed
			st.ColEngine.Issued += p.colEng.Stats().Issued
			st.ColEngine.Completed += p.colEng.Stats().Completed
		}
	} else {
		for _, p := range a.statics {
			st.PipelineBusy = append(st.PipelineBusy, p.busy)
			st.RowEngine.Issued += p.rowEng.Stats().Issued
			st.RowEngine.Completed += p.rowEng.Stats().Completed
			st.ColEngine.Issued += p.colEng.Stats().Issued
			st.ColEngine.Completed += p.colEng.Stats().Completed
		}
	}
	return st
}

// pipeline is one asynchronous pipeline (dynamic mode): Row Access →
// (router) → Sampling → Column Access, with completions recycled through
// the Zero-Bubble Scheduler.
type pipeline struct {
	a   *Accelerator
	idx int

	rowEng *engine.Engine[Task]
	colEng *engine.Engine[Task]

	in      *hwsim.FIFO[Task] // scheduler output: tasks to row-access here
	routeIn *hwsim.FIFO[Task] // row-complete tasks enter the col router
	sampIn  *hwsim.FIFO[Task] // router output: tasks to sample/col-access here

	// Sampling unit occupancy.
	cur          *Task
	curRemaining int
	curTxs       int

	// One-deep retry registers for backpressured handoffs.
	rowDone    *Task // row-completed task waiting for router space
	colDone    *Task // col-completed task waiting for recycle space
	colDoneEnd bool  // termination decision for colDone (made exactly once)

	rng  *rng.Stream
	busy hwsim.BusyCounter
}

// Tick implements hwsim.Module. Stages drain downstream-first so a task can
// advance one stage per cycle without slot conflicts.
func (p *pipeline) Tick(now int64) {
	a := p.a
	p.rowEng.Tick(now)
	p.colEng.Tick(now)
	worked := false

	// 1. Column-access completions: finalize the hop, then recycle or
	// retire. One per cycle (module II=1).
	if p.colDone == nil {
		if t, _, ok := p.colEng.PopCompleted(); ok {
			v := a.g.Col[t.colBase+int64(t.chosenIdx)]
			a.recordHop(t.Query, v)
			t.VPrev, t.VCur, t.HasPrev = t.VCur, v, true
			t.Step++
			// Decide termination exactly once; a backpressured recycle must
			// not re-roll the PPR teleport coin.
			p.colDoneEnd = int(t.Step) >= a.cfg.Walk.WalkLength
			if !p.colDoneEnd && a.cfg.Walk.Algorithm == walk.PPR && p.rng.Float64() < a.cfg.Walk.Alpha {
				p.colDoneEnd = true
			}
			p.colDone = &t
		}
	}
	if p.colDone != nil {
		t := *p.colDone
		if p.colDoneEnd {
			a.finishQuery(t.Query)
			p.colDone = nil
			worked = true
		} else {
			nt := Task{Query: t.Query, Step: t.Step, VCur: t.VCur, VPrev: t.VPrev, HasPrev: t.HasPrev}
			if a.scheduler.Recycle(p.idx, nt) {
				p.colDone = nil
				worked = true
			}
		}
	}

	// 2. Sampling unit.
	if p.cur != nil && p.curRemaining > 0 {
		p.curRemaining--
		worked = true
	}
	if p.cur != nil && p.curRemaining == 0 {
		t := *p.cur
		addr := a.layout.ColAddr(t.colBase, t.chosenIdx)
		if p.colEng.CanAcceptN(p.curTxs) && p.colEng.PushN(addr, t, p.curTxs) {
			p.cur = nil
			worked = true
		}
	}
	if p.cur == nil {
		if t, ok := p.sampIn.Pop(); ok {
			res := a.sampler.Sample(a.g, sampling.Context{
				Cur: t.VCur, Prev: t.VPrev, HasPrev: t.HasPrev, Step: int(t.Step),
			}, p.rng)
			if res.Index < 0 {
				// No selectable neighbor (MetaPath schema miss): early
				// termination without a column access.
				a.finishQuery(t.Query)
			} else {
				t.chosenIdx = int32(res.Index)
				cost, txs := a.sampleCost(&t, res)
				p.cur = &t
				p.curRemaining = cost - 1
				p.curTxs = txs
				if p.curRemaining == 0 {
					addr := a.layout.ColAddr(t.colBase, t.chosenIdx)
					if p.colEng.CanAcceptN(txs) && p.colEng.PushN(addr, t, txs) {
						p.cur = nil
					}
				}
			}
			worked = true
		}
	}

	// 3. Row-access completions: learn the degree, terminate on sinks,
	// otherwise route to the column pipeline.
	if p.rowDone == nil {
		if t, _, ok := p.rowEng.PopCompleted(); ok {
			deg := a.g.Degree(t.VCur)
			if deg == 0 {
				a.finishQuery(t.Query)
				worked = true
			} else {
				t.deg = int32(deg)
				t.colBase = a.g.RowPtr[t.VCur]
				p.rowDone = &t
			}
		}
	}
	if p.rowDone != nil {
		if p.routeIn.Push(*p.rowDone) {
			p.rowDone = nil
			worked = true
		}
	}

	// 4. Issue a new row access.
	if p.rowEng.CanAccept() {
		if t, ok := p.in.Pop(); ok {
			if !p.rowEng.Push(a.layout.RowAddr(t.VCur), t) {
				panic("core: row engine rejected pre-checked push")
			}
			worked = true
		}
	}

	p.busy.Record(worked)
}
