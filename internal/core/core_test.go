package core

import (
	"math"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/walk"
)

// testGraph returns a mid-size RMAT graph shared by the heavier tests.
func testGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.RMATConfig{
		Scale: 11, EdgeFactor: 8, A: 0.45, B: 0.22, C: 0.22, D: 0.11,
		Directed: true, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// smallPlatform is a 4-pipeline (8-channel) configuration so tests run fast.
func smallPlatform() hbm.Platform {
	p := hbm.U55C
	p.Channels = 8
	return p
}

func runAccel(t testing.TB, g *graph.CSR, cfg Config, nq int) (*walk.Result, *Stats) {
	t.Helper()
	qs, err := walk.RandomQueries(g, cfg.Walk, nq, 77)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := a.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	return res, st
}

func TestURWCompletesAllQueries(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 40, Seed: 3})
	res, st := runAccel(t, g, cfg, 300)
	if st.QueriesDone != 300 {
		t.Fatalf("completed %d/300 queries", st.QueriesDone)
	}
	if res.Steps == 0 || st.Steps != res.Steps {
		t.Fatalf("steps inconsistent: res=%d st=%d", res.Steps, st.Steps)
	}
	if err := walk.ValidatePaths(g, res, cfg.Walk); err != nil {
		t.Fatal(err)
	}
}

func TestURWPathsAreRealWalks(t *testing.T) {
	// Every consecutive pair in every emitted path must be a graph edge,
	// proving out-of-order execution never mixes queries up.
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 25, Seed: 5})
	res, _ := runAccel(t, g, cfg, 200)
	if err := walk.ValidatePaths(g, res, cfg.Walk); err != nil {
		t.Fatal(err)
	}
	// SmallTestGraph has no sinks: every path must be full length.
	for i, p := range res.Paths {
		if len(p) != 26 {
			t.Fatalf("query %d path length %d, want 26", i, len(p))
		}
	}
}

func TestVisitDistributionMatchesGolden(t *testing.T) {
	// Chi-squared comparison of per-vertex visit counts between the
	// accelerator and the software golden engine on the same workload.
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 30, Seed: 11})
	const nq = 2000
	qs, err := walk.RandomQueries(g, cfg.Walk, nq, 13)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hwRes, _, err := a.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := walk.Run(g, qs, cfg.Walk)
	if err != nil {
		t.Fatal(err)
	}
	hw := walk.VisitCounts(g, hwRes)
	sw := walk.VisitCounts(g, golden)
	var hwTotal, swTotal int64
	for v := range hw {
		hwTotal += hw[v]
		swTotal += sw[v]
	}
	chi2 := 0.0
	for v := range hw {
		expect := float64(sw[v]) / float64(swTotal) * float64(hwTotal)
		if expect < 5 {
			continue
		}
		d := float64(hw[v]) - expect
		chi2 += d * d / expect
	}
	// 4 dof (5 vertices), p=0.001 → 18.47; generous margin for the rng
	// difference between engines.
	if chi2 > 25 {
		t.Fatalf("visit distribution diverges from golden: chi2=%v hw=%v sw=%v", chi2, hw, sw)
	}
}

func TestPPRLengthDistribution(t *testing.T) {
	g := graph.SmallTestGraph()
	w := walk.DefaultConfig(walk.PPR)
	w.WalkLength = 400
	cfg := DefaultConfig(smallPlatform(), w)
	res, st := runAccel(t, g, cfg, 3000)
	mean := float64(res.Steps) / 3000
	if math.Abs(mean-5) > 0.4 {
		t.Fatalf("PPR mean length %v, want ~5 (alpha 0.2)", mean)
	}
	if st.QueriesDone != 3000 {
		t.Fatalf("done %d/3000", st.QueriesDone)
	}
}

func TestDeepWalkOnWeightedGraph(t *testing.T) {
	g := testGraph(t)
	g.AttachWeights()
	w := walk.DefaultConfig(walk.DeepWalk)
	w.WalkLength = 30
	cfg := DefaultConfig(smallPlatform(), w)
	res, st := runAccel(t, g, cfg, 200)
	if st.QueriesDone != 200 {
		t.Fatalf("done %d/200", st.QueriesDone)
	}
	if err := walk.ValidatePaths(g, res, w); err != nil {
		t.Fatal(err)
	}
}

func TestNode2VecRejection(t *testing.T) {
	g := testGraph(t)
	w := walk.DefaultConfig(walk.Node2Vec)
	w.WalkLength = 20
	cfg := DefaultConfig(smallPlatform(), w)
	res, st := runAccel(t, g, cfg, 150)
	if st.QueriesDone != 150 {
		t.Fatalf("done %d/150", st.QueriesDone)
	}
	if err := walk.ValidatePaths(g, res, w); err != nil {
		t.Fatal(err)
	}
	// Rejection issues extra membership probes: column transactions must
	// exceed one per step.
	if st.ColTx <= st.Steps {
		t.Fatalf("rejection sampling issued %d column transactions for %d steps", st.ColTx, st.Steps)
	}
}

func TestMetaPathEarlyTermination(t *testing.T) {
	g := testGraph(t)
	g.AttachWeights()
	g.AttachLabels(3)
	w := walk.DefaultConfig(walk.MetaPath)
	w.WalkLength = 30
	cfg := DefaultConfig(smallPlatform(), w)
	res, st := runAccel(t, g, cfg, 200)
	if st.QueriesDone != 200 {
		t.Fatalf("done %d/200", st.QueriesDone)
	}
	// Schema misses shorten many walks.
	if res.Steps >= 200*30 {
		t.Fatal("no early terminations on a 3-type schema; suspicious")
	}
	// Labels along every path must follow the schema.
	for i, p := range res.Paths {
		for j, v := range p {
			if want := w.Schema[j%len(w.Schema)]; g.Label(v) != want {
				t.Fatalf("query %d position %d: label %d, want %d", i, j, g.Label(v), want)
			}
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	// Fig. 11: full > async-only > sched-only > baseline in throughput.
	g := testGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 40, Seed: 9}
	modes := []struct {
		name                string
		async, dynamicSched bool
	}{
		{"baseline", false, false},
		{"sched-only", false, true},
		{"async-only", true, false},
		{"full", true, true},
	}
	const nq = 400
	through := make(map[string]float64)
	for _, m := range modes {
		cfg := DefaultConfig(smallPlatform(), w)
		cfg.Async = m.async
		cfg.DynamicSched = m.dynamicSched
		cfg.RecordPaths = false
		_, st := runAccel(t, g, cfg, nq)
		if st.QueriesDone != nq {
			t.Fatalf("%s: done %d/%d", m.name, st.QueriesDone, nq)
		}
		through[m.name] = st.ThroughputMSteps()
	}
	if !(through["full"] > through["async-only"] &&
		through["async-only"] > through["sched-only"] &&
		through["sched-only"] > through["baseline"]) {
		t.Fatalf("ablation ordering violated: %+v", through)
	}
	// The paper's full-vs-baseline gap is 12–17×; assert at least 4× here
	// (the exact factor depends on graph and scale).
	if through["full"] < 4*through["baseline"] {
		t.Fatalf("full/baseline = %.1f, want >= 4", through["full"]/through["baseline"])
	}
}

func TestFullModeUtilization(t *testing.T) {
	// The flagship claim: RidgeWalker sustains a large fraction of the
	// Equation-(1) random-access peak (paper: 81–88%).
	g := testGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 60, Seed: 21}
	cfg := DefaultConfig(smallPlatform(), w)
	cfg.RecordPaths = false
	_, st := runAccel(t, g, cfg, 3000)
	u := st.Eq1Utilization()
	if u < 0.60 || u > 1.05 {
		t.Fatalf("Eq.(1) utilization %.3f, want in [0.60, 1.05] (paper: 0.81–0.88)", u)
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.SmallTestGraph()
	w := walk.Config{Algorithm: walk.URW, WalkLength: 5, Seed: 1}
	bad := []Config{
		{Platform: smallPlatform(), Walk: w, Pipelines: 3},
		{Platform: smallPlatform(), Walk: w, BatchSize: -1},
		{Platform: smallPlatform(), Walk: w, BlockingOutstanding: -1},
		{Platform: smallPlatform(), Walk: w, EngineDepth: -1},
	}
	for i, cfg := range bad {
		if _, err := New(g, cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
	// Weighted requirement surfaces through New.
	if _, err := New(g, DefaultConfig(smallPlatform(), walk.DefaultConfig(walk.DeepWalk))); err == nil {
		t.Error("DeepWalk accepted unweighted graph")
	}
}

func TestRunRequiresQueries(t *testing.T) {
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 5, Seed: 1})
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Run(nil); err == nil {
		t.Fatal("empty query batch accepted")
	}
}

func TestStaticModeCompletesEverything(t *testing.T) {
	g := testGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 25, Seed: 4}
	cfg := DefaultConfig(smallPlatform(), w)
	cfg.DynamicSched = false
	cfg.BatchSize = 16
	res, st := runAccel(t, g, cfg, 500)
	if st.QueriesDone != 500 {
		t.Fatalf("static mode done %d/500", st.QueriesDone)
	}
	if err := walk.ValidatePaths(g, res, w); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutMapping(t *testing.T) {
	l := Layout{Pipelines: 8}
	for v := graph.VertexID(0); v < 1000; v++ {
		if d := l.RowPipeline(v); d < 0 || d >= 8 {
			t.Fatalf("RowPipeline(%d) = %d", v, d)
		}
		if d := l.ColPipeline(v); d < 0 || d >= 8 {
			t.Fatalf("ColPipeline(%d) = %d", v, d)
		}
	}
	// Row partition must be balanced exactly; col hash approximately.
	counts := make([]int, 8)
	for v := graph.VertexID(0); v < 8000; v++ {
		counts[l.ColPipeline(v)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("col hash imbalance at %d: %v", i, counts)
		}
	}
}
