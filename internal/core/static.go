package core

import (
	"ridgewalker/internal/engine"
	"ridgewalker/internal/hwsim"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

// Static mode: the Fig. 11 ablation baseline. Queries are statically bound
// to pipelines, and each pipeline executes bulk-synchronous batches of
// BatchSize walkers in per-step lockstep rounds: round k+1 begins only when
// every live walker has finished step k. "Without early-termination
// handling" (§VIII-D) means a walk that dies early — sink vertex, PPR
// teleport, schema miss — does not free its reserved slot: the slot keeps
// executing its fixed schedule (a row access per round against its final
// vertex) until the full walk length elapses, producing no useful steps.
// These zombie slots are the pipeline bubbles FastRW/LightRW suffer (§III,
// Observation #2) and what the Zero-Bubble Scheduler reclaims. Memory
// accesses go through the pipeline's own channel pair.

// walkerPhase tracks a static walker's position in the step state machine.
type walkerPhase uint8

const (
	phaseIdle walkerPhase = iota // slot empty (query finished or never loaded)
	phaseNeedRow
	phaseInRow
	phaseNeedSample
	phaseSampling
	phaseNeedCol
	phaseInCol
	// phaseWaitRound parks a walker that finished the current lockstep
	// round until every live walker has, too (the bulk-synchronous
	// barrier).
	phaseWaitRound
)

type staticWalker struct {
	phase walkerPhase
	task  Task
	txs   int
	// dead marks a zombie: the query has retired but the slot still runs
	// its reserved schedule until the walk length elapses.
	dead bool
}

type staticPipeline struct {
	a   *Accelerator
	idx int

	rowEng *engine.Engine[int] // metadata: walker slot index
	colEng *engine.Engine[int]

	queries []walk.Query // statically assigned
	next    int

	slots  []staticWalker
	alive  int
	rrScan int // round-robin issue pointer
	// waiting counts live walkers parked at the round barrier.
	waiting int

	// Sampling unit occupancy (II > 1 for reservoir scans).
	sampSlot      int
	sampRemaining int

	rng  *rng.Stream
	busy hwsim.BusyCounter
}

func (a *Accelerator) buildStatic() error {
	n := a.cfg.Pipelines
	rsrc := rng.NewSource(a.cfg.Seed + 0x517cc1b727220a95)
	a.statics = make([]*staticPipeline, n)
	for i := 0; i < n; i++ {
		rowEng, err := engine.New[int](a.rpChans[i], a.engineConfig())
		if err != nil {
			return err
		}
		colEng, err := engine.New[int](a.clChans[i], a.engineConfig())
		if err != nil {
			return err
		}
		a.statics[i] = &staticPipeline{
			a: a, idx: i,
			rowEng: rowEng, colEng: colEng,
			slots:    make([]staticWalker, a.cfg.BatchSize),
			sampSlot: -1,
			rng:      rsrc.Stream(uint64(i)),
		}
		a.sim.Register(a.statics[i])
	}
	return nil
}

// assignStaticQueries distributes the query batch round-robin across
// pipelines (the fixed, input-order binding of static designs).
func (a *Accelerator) assignStaticQueries() {
	if a.statics == nil {
		return
	}
	for _, p := range a.statics {
		p.queries = p.queries[:0]
		p.next = 0
		p.alive = 0
		for i := range p.slots {
			p.slots[i] = staticWalker{}
		}
	}
	for i, q := range a.queries {
		p := a.statics[i%len(a.statics)]
		p.queries = append(p.queries, q)
	}
}

// refillBatch loads the next bulk-synchronous batch. Called only when every
// slot is idle (the barrier).
func (p *staticPipeline) refillBatch() {
	for s := range p.slots {
		if p.next >= len(p.queries) {
			break
		}
		q := p.queries[p.next]
		p.next++
		p.slots[s] = staticWalker{
			phase: phaseNeedRow,
			task:  Task{Query: q.ID, VCur: q.Start},
		}
		p.alive++
	}
}

// finishWalker retires slot s's query at the natural end of its schedule;
// the slot goes idle until the batch barrier.
func (p *staticPipeline) finishWalker(s int) {
	if !p.slots[s].dead {
		p.a.finishQuery(p.slots[s].task.Query)
	}
	p.slots[s] = staticWalker{}
	p.alive--
}

// zombify retires slot s's query early but keeps the slot executing its
// reserved schedule (no early-termination handling): the query's results
// are final, yet the slot continues issuing a row access per round until
// the walk length elapses.
func (p *staticPipeline) zombify(s int) {
	if p.slots[s].dead {
		return
	}
	p.a.finishQuery(p.slots[s].task.Query)
	p.slots[s].dead = true
}

// Tick implements hwsim.Module.
func (p *staticPipeline) Tick(now int64) {
	a := p.a
	p.rowEng.Tick(now)
	p.colEng.Tick(now)
	worked := false

	// Batch barrier: refill only when all slots are idle.
	if p.alive == 0 {
		if p.next < len(p.queries) {
			p.refillBatch()
			p.waiting = 0
			worked = true
		}
	}
	// Round barrier: when every live walker has completed the current step
	// (bulk-synchronous execution), release them all into the next round.
	if p.alive > 0 && p.waiting == p.alive {
		for s := range p.slots {
			if p.slots[s].phase == phaseWaitRound {
				p.slots[s].phase = phaseNeedRow
			}
		}
		p.waiting = 0
		worked = true
	}

	// Column completions: finalize hops.
	if s, _, ok := p.colEng.PopCompleted(); ok {
		w := &p.slots[s]
		t := &w.task
		v := a.g.Col[t.colBase+int64(t.chosenIdx)]
		a.recordHop(t.Query, v)
		t.VPrev, t.VCur, t.HasPrev = t.VCur, v, true
		t.Step++
		if a.cfg.Walk.Algorithm == walk.PPR && int(t.Step) < a.cfg.Walk.WalkLength &&
			p.rng.Float64() < a.cfg.Walk.Alpha {
			// Teleport: the query is done, the slot is not.
			p.zombify(s)
		}
		p.endOrWait(s)
		worked = true
	}

	// Row completions: degree known; sinks retire the query but not the
	// slot (zombie), and zombies burn their round here.
	if s, _, ok := p.rowEng.PopCompleted(); ok {
		w := &p.slots[s]
		t := &w.task
		deg := a.g.Degree(t.VCur)
		if deg == 0 {
			p.zombify(s)
		}
		if w.dead {
			t.Step++
			p.endOrWait(s)
		} else {
			t.deg = int32(deg)
			t.colBase = a.g.RowPtr[t.VCur]
			w.phase = phaseNeedSample
		}
		worked = true
	}

	// Sampling unit: one walker at a time, cost cycles each.
	if p.sampSlot >= 0 {
		if p.sampRemaining > 0 {
			p.sampRemaining--
			worked = true
		}
		if p.sampRemaining == 0 {
			p.slots[p.sampSlot].phase = phaseNeedCol
			p.sampSlot = -1
		}
	}
	if p.sampSlot < 0 {
		if s := p.findPhase(phaseNeedSample); s >= 0 {
			w := &p.slots[s]
			t := &w.task
			res := a.sampler.Sample(a.g, sampling.Context{
				Cur: t.VCur, Prev: t.VPrev, HasPrev: t.HasPrev, Step: int(t.Step),
			}, p.rng)
			if res.Index < 0 {
				// Schema miss: query done, slot zombies on.
				p.zombify(s)
				t.Step++
				p.endOrWait(s)
			} else {
				t.chosenIdx = int32(res.Index)
				cost, txs := a.sampleCost(t, res)
				w.txs = txs
				if cost <= 1 {
					w.phase = phaseNeedCol
				} else {
					w.phase = phaseSampling
					p.sampSlot = s
					p.sampRemaining = cost - 1
				}
			}
			worked = true
		}
	}

	// Issue memory accesses: one row and one column issue per cycle.
	if s := p.findPhase(phaseNeedCol); s >= 0 {
		t := &p.slots[s].task
		addr := a.layout.ColAddr(t.colBase, t.chosenIdx)
		if p.colEng.CanAcceptN(p.slots[s].txs) && p.colEng.PushN(addr, s, p.slots[s].txs) {
			p.slots[s].phase = phaseInCol
			worked = true
		}
	}
	if s := p.findPhase(phaseNeedRow); s >= 0 {
		t := &p.slots[s].task
		if p.rowEng.CanAccept() && p.rowEng.Push(a.layout.RowAddr(t.VCur), s) {
			p.slots[s].phase = phaseInRow
			worked = true
		}
	}

	p.busy.Record(worked)
}

// endOrWait parks slot s at the round barrier, or retires it once its full
// schedule (WalkLength rounds) has elapsed.
func (p *staticPipeline) endOrWait(s int) {
	if int(p.slots[s].task.Step) >= p.a.cfg.Walk.WalkLength {
		p.finishWalker(s)
		return
	}
	p.slots[s].phase = phaseWaitRound
	p.waiting++
}

// findPhase scans slots round-robin for the next walker in the given phase.
func (p *staticPipeline) findPhase(ph walkerPhase) int {
	n := len(p.slots)
	for k := 0; k < n; k++ {
		s := (p.rrScan + k) % n
		if p.slots[s].phase == ph {
			p.rrScan = (s + 1) % n
			return s
		}
	}
	return -1
}
