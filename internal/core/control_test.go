package core

import (
	"math"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

func controlAccel(t *testing.T) *Accelerator {
	t.Helper()
	g := graph.SmallTestGraph()
	g.AttachWeights()
	g.AttachLabels(3)
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 10, Seed: 1})
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestControlRegisterRoundTrip(t *testing.T) {
	a := controlAccel(t)
	if err := a.WriteRegister(RegWalkLength, 33); err != nil {
		t.Fatal(err)
	}
	if v, err := a.ReadRegister(RegWalkLength); err != nil || v != 33 {
		t.Fatalf("walk length register = (%d,%v)", v, err)
	}
	if err := a.WriteRegister(RegAlpha, floatToQ16(0.25)); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.ReadRegister(RegAlpha); math.Abs(q16ToFloat(v)-0.25) > 1e-4 {
		t.Fatalf("alpha register = %v", q16ToFloat(v))
	}
}

func TestControlModeSwitchWithoutRebuild(t *testing.T) {
	// §VII: switch URW → PPR → DeepWalk → Node2Vec on one accelerator
	// instance and run each; queries must complete under every mode.
	a := controlAccel(t)
	qs := []walk.Query{{ID: 0, Start: 0}, {ID: 1, Start: 1}, {ID: 2, Start: 4}}
	for _, alg := range []walk.Algorithm{walk.URW, walk.PPR, walk.DeepWalk, walk.Node2Vec, walk.MetaPath} {
		if err := a.WriteRegister(RegAlgorithm, uint32(alg)); err != nil {
			t.Fatalf("switch to %s: %v", alg, err)
		}
		res, st, err := a.Run(qs)
		if err != nil {
			t.Fatalf("%s run: %v", alg, err)
		}
		if st.QueriesDone != len(qs) {
			t.Fatalf("%s: done %d/%d", alg, st.QueriesDone, len(qs))
		}
		_ = res
		if got, _ := a.ReadRegister(RegAlgorithm); got != uint32(alg) {
			t.Fatalf("mode register reads %d, want %d", got, uint32(alg))
		}
	}
}

func TestControlModeSwitchValidatesGraph(t *testing.T) {
	// DeepWalk on an unweighted graph must be rejected at the register
	// write, like the host driver would report a configuration error.
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 5, Seed: 1})
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRegister(RegAlgorithm, uint32(walk.DeepWalk)); err == nil {
		t.Fatal("DeepWalk mode accepted on unweighted graph")
	}
	// The failed switch must not corrupt the current mode.
	if v, _ := a.ReadRegister(RegAlgorithm); v != uint32(walk.URW) {
		t.Fatalf("mode register corrupted: %d", v)
	}
}

func TestControlBiasChangesSampling(t *testing.T) {
	a := controlAccel(t)
	if err := a.WriteRegister(RegAlgorithm, uint32(walk.Node2Vec)); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRegister(RegP, floatToQ16(4)); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteRegister(RegQ, floatToQ16(0.25)); err != nil {
		t.Fatal(err)
	}
	if v, _ := a.ReadRegister(RegP); math.Abs(q16ToFloat(v)-4) > 1e-4 {
		t.Fatalf("p register = %v", q16ToFloat(v))
	}
	qs := []walk.Query{{ID: 0, Start: 0}}
	if _, st, err := a.Run(qs); err != nil || st.QueriesDone != 1 {
		t.Fatalf("run after bias write: %v", err)
	}
}

func TestControlRejectsBadWrites(t *testing.T) {
	a := controlAccel(t)
	if err := a.WriteRegister(0xFF, 1); err == nil {
		t.Error("unknown register accepted")
	}
	if _, err := a.ReadRegister(0xFF); err == nil {
		t.Error("unknown register read")
	}
	if err := a.WriteRegister(RegWalkLength, 0); err == nil {
		t.Error("zero walk length accepted")
	}
	if err := a.WriteRegister(RegAlpha, floatToQ16(1.5)); err == nil {
		t.Error("alpha >= 1 accepted")
	}
	if err := a.WriteRegister(RegP, 0); err == nil {
		t.Error("zero bias accepted")
	}
}

func TestQ16Conversions(t *testing.T) {
	for _, f := range []float64{0, 0.2, 0.5, 1, 2, 100.25} {
		if got := q16ToFloat(floatToQ16(f)); math.Abs(got-f) > 1e-4 {
			t.Errorf("Q16 round trip %v → %v", f, got)
		}
	}
	if floatToQ16(-1) != 0 {
		t.Error("negative not clamped")
	}
	if floatToQ16(1e12) != ^uint32(0) {
		t.Error("overflow not saturated")
	}
}
