package core

import (
	"math"
	"testing"

	"ridgewalker/internal/hbm"
	"ridgewalker/internal/hwsim"
)

func TestStatsDerivedMetrics(t *testing.T) {
	st := Stats{
		Platform: hbm.U55C,
		Cycles:   320_000_000, // exactly one second at 320 MHz
		Steps:    2_000_000_000,
	}
	if got := st.Seconds(); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Seconds = %v, want 1", got)
	}
	if got := st.ThroughputMSteps(); math.Abs(got-2000) > 1e-6 {
		t.Fatalf("ThroughputMSteps = %v, want 2000", got)
	}
	if got := st.EffectiveBandwidthGBs(); math.Abs(got-16) > 1e-9 {
		t.Fatalf("EffectiveBandwidthGBs = %v, want 16", got)
	}
	// Eq.(1) peak for U55C: 74.5M × 32 × 8 B = 19.072 GB/s.
	wantUtil := 16.0 / 19.072
	if got := st.Eq1Utilization(); math.Abs(got-wantUtil) > 1e-6 {
		t.Fatalf("Eq1Utilization = %v, want %v", got, wantUtil)
	}
}

func TestStatsZeroCycles(t *testing.T) {
	st := Stats{Platform: hbm.U55C}
	if st.ThroughputMSteps() != 0 || st.EffectiveBandwidthGBs() != 0 {
		t.Fatal("zero-cycle stats must report zero rates")
	}
	if st.MeanBubbleRatio() != 0 {
		t.Fatal("no pipelines → zero bubble ratio")
	}
}

func TestStatsMeanBubbleRatio(t *testing.T) {
	var a, b hwsim.BusyCounter
	for i := 0; i < 8; i++ {
		a.Record(true)
	}
	for i := 0; i < 2; i++ {
		a.Record(false)
	}
	for i := 0; i < 6; i++ {
		b.Record(true)
	}
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	st := Stats{PipelineBusy: []hwsim.BusyCounter{a, b}}
	// Mean of 0.2 and 0.4.
	if got := st.MeanBubbleRatio(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("MeanBubbleRatio = %v, want 0.3", got)
	}
}
