package core

import (
	"fmt"

	"ridgewalker/internal/walk"
)

// Control registers (§VII): the real design exposes memory-mapped AXI4-Lite
// registers over PCIe so the host can program algorithm parameters — PPR's
// teleport α, Node2Vec's p and q, walk length, and a sampling-mode selector
// — as lightweight 32-bit writes, switching GRW variants without
// resynthesis. This file reproduces that interface: registers are written
// between runs and take effect on the next Run call.
//
// Fractional parameters use Q16.16 fixed point, as hardware registers
// would.
const (
	// RegAlgorithm selects the GRW variant (walk.Algorithm value). Writing
	// it rebuilds the sampling datapath (the "mode bit" of §VII); the
	// target variant's graph requirements (weights, labels) must already
	// be satisfied.
	RegAlgorithm uint32 = 0x00
	// RegWalkLength sets the maximum walk length.
	RegWalkLength uint32 = 0x04
	// RegAlpha sets PPR's teleport probability in Q16.16.
	RegAlpha uint32 = 0x08
	// RegP and RegQ set Node2Vec's bias factors in Q16.16.
	RegP uint32 = 0x0C
	RegQ uint32 = 0x10
)

// q16 converts Q16.16 fixed point to float64.
func q16ToFloat(v uint32) float64 { return float64(v) / 65536 }

// floatToQ16 converts float64 to Q16.16 (saturating at the register width).
func floatToQ16(f float64) uint32 {
	if f < 0 {
		return 0
	}
	v := f * 65536
	if v > float64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(v)
}

// WriteRegister programs one control register. Parameter registers take
// effect on the next Run; writing RegAlgorithm re-validates the graph and
// swaps the sampling module immediately.
func (a *Accelerator) WriteRegister(addr, value uint32) error {
	switch addr {
	case RegAlgorithm:
		alg := walk.Algorithm(value)
		next := a.cfg.Walk
		next.Algorithm = alg
		if next.Alpha == 0 && alg == walk.PPR {
			next.Alpha = 0.2
		}
		if (next.P == 0 || next.Q == 0) && alg == walk.Node2Vec {
			next.P, next.Q = 2, 0.5
		}
		if len(next.Schema) == 0 && alg == walk.MetaPath {
			next.Schema = []uint8{0, 1, 2}
		}
		sampler, err := walk.BuildSampler(a.g, next)
		if err != nil {
			return fmt.Errorf("core: mode switch rejected: %w", err)
		}
		a.cfg.Walk = next
		a.sampler = sampler
	case RegWalkLength:
		if value == 0 {
			return fmt.Errorf("core: walk length register must be >= 1")
		}
		a.cfg.Walk.WalkLength = int(value)
	case RegAlpha:
		f := q16ToFloat(value)
		if f >= 1 {
			return fmt.Errorf("core: alpha register %v, want < 1.0", f)
		}
		a.cfg.Walk.Alpha = f
	case RegP, RegQ:
		f := q16ToFloat(value)
		if f <= 0 {
			return fmt.Errorf("core: bias register must be positive")
		}
		if addr == RegP {
			a.cfg.Walk.P = f
		} else {
			a.cfg.Walk.Q = f
		}
		// Bias changes require rebuilding the rejection/reservoir sampler.
		sampler, err := walk.BuildSampler(a.g, a.cfg.Walk)
		if err != nil {
			return err
		}
		a.sampler = sampler
	default:
		return fmt.Errorf("core: unknown control register %#x", addr)
	}
	return nil
}

// ReadRegister returns a control register's current value.
func (a *Accelerator) ReadRegister(addr uint32) (uint32, error) {
	switch addr {
	case RegAlgorithm:
		return uint32(a.cfg.Walk.Algorithm), nil
	case RegWalkLength:
		return uint32(a.cfg.Walk.WalkLength), nil
	case RegAlpha:
		return floatToQ16(a.cfg.Walk.Alpha), nil
	case RegP:
		return floatToQ16(a.cfg.Walk.P), nil
	case RegQ:
		return floatToQ16(a.cfg.Walk.Q), nil
	}
	return 0, fmt.Errorf("core: unknown control register %#x", addr)
}
