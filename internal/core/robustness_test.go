package core

import (
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/walk"
)

func TestSimulationDeterministic(t *testing.T) {
	// The whole simulation is a pure function of graph, queries, and seed:
	// two runs must agree cycle for cycle and path for path.
	g := testGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 25, Seed: 5}
	qs, err := walk.RandomQueries(g, w, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (*walk.Result, *Stats) {
		a, err := New(g, DefaultConfig(smallPlatform(), w))
		if err != nil {
			t.Fatal(err)
		}
		res, st, err := a.Run(qs)
		if err != nil {
			t.Fatal(err)
		}
		return res, st
	}
	r1, s1 := run()
	r2, s2 := run()
	if s1.Cycles != s2.Cycles || s1.Steps != s2.Steps {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", s1.Cycles, s1.Steps, s2.Cycles, s2.Steps)
	}
	for i := range r1.Paths {
		if len(r1.Paths[i]) != len(r2.Paths[i]) {
			t.Fatalf("path %d differs between runs", i)
		}
		for j := range r1.Paths[i] {
			if r1.Paths[i][j] != r2.Paths[i][j] {
				t.Fatalf("path %d position %d differs", i, j)
			}
		}
	}
}

func TestDuplicateQueryIDsRejected(t *testing.T) {
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 5, Seed: 1})
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Run([]walk.Query{{ID: 3, Start: 0}, {ID: 3, Start: 1}}); err == nil {
		t.Fatal("duplicate query IDs accepted")
	}
}

func TestOutOfRangeStartRejected(t *testing.T) {
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 5, Seed: 1})
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Run([]walk.Query{{ID: 0, Start: 99}}); err == nil {
		t.Fatal("out-of-range start vertex accepted")
	}
}

func TestWalkLengthOne(t *testing.T) {
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 1, Seed: 2})
	res, st := runAccel(t, g, cfg, 50)
	if st.QueriesDone != 50 {
		t.Fatalf("done %d/50", st.QueriesDone)
	}
	for i, p := range res.Paths {
		if len(p) != 2 {
			t.Fatalf("query %d: length-1 walk has path %v", i, p)
		}
	}
}

func TestSinglePipelineConfig(t *testing.T) {
	// N=1 degenerates the butterfly to wires; everything must still work.
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 10, Seed: 3})
	cfg.Pipelines = 1
	res, st := runAccel(t, g, cfg, 100)
	if st.QueriesDone != 100 {
		t.Fatalf("done %d/100", st.QueriesDone)
	}
	if err := walk.ValidatePaths(g, res, cfg.Walk); err != nil {
		t.Fatal(err)
	}
}

func TestThrottledChannelStillCorrect(t *testing.T) {
	// Failure injection: a memory system 20× slower must not corrupt walks,
	// only slow them down.
	g := graph.SmallTestGraph()
	w := walk.Config{Algorithm: walk.URW, WalkLength: 15, Seed: 4}
	slow := smallPlatform()
	slow.ServiceTxPerSecPerChan /= 20
	fast := smallPlatform()

	cfgSlow := DefaultConfig(slow, w)
	cfgFast := DefaultConfig(fast, w)
	resSlow, stSlow := runAccel(t, g, cfgSlow, 100)
	_, stFast := runAccel(t, g, cfgFast, 100)

	if err := walk.ValidatePaths(g, resSlow, w); err != nil {
		t.Fatal(err)
	}
	if stSlow.QueriesDone != 100 {
		t.Fatalf("throttled run incomplete: %d/100", stSlow.QueriesDone)
	}
	if stSlow.ThroughputMSteps() >= stFast.ThroughputMSteps() {
		t.Fatalf("throttled channels not slower: %.1f vs %.1f",
			stSlow.ThroughputMSteps(), stFast.ThroughputMSteps())
	}
}

func TestAllSinksGraph(t *testing.T) {
	// Every walk dies on its first row access; the accelerator must retire
	// all queries without emitting steps beyond the starts.
	g, err := graph.Build(4, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Start at vertex 1 (a sink) explicitly.
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 10, Seed: 5})
	a, err := New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, st, err := a.Run([]walk.Query{{ID: 0, Start: 1}, {ID: 1, Start: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if st.QueriesDone != 2 || res.Steps != 0 {
		t.Fatalf("done=%d steps=%d, want 2 queries, 0 steps", st.QueriesDone, res.Steps)
	}
}

func TestEveryPlatformRunsURW(t *testing.T) {
	if testing.Short() {
		t.Skip("platform sweep is slow")
	}
	g := testGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 20, Seed: 6}
	qs, err := walk.RandomQueries(g, w, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range hbm.Platforms {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			cfg := DefaultConfig(p, w)
			cfg.RecordPaths = false
			a, err := New(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			_, st, err := a.Run(qs)
			if err != nil {
				t.Fatal(err)
			}
			if st.QueriesDone != len(qs) {
				t.Fatalf("%s: done %d/%d", p.Name, st.QueriesDone, len(qs))
			}
			if u := st.Eq1Utilization(); u <= 0 || u > 1.1 {
				t.Fatalf("%s: utilization %.3f out of range", p.Name, u)
			}
		})
	}
}

func TestRecordPathsOffKeepsSteps(t *testing.T) {
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(smallPlatform(), walk.Config{Algorithm: walk.URW, WalkLength: 10, Seed: 8})
	cfg.RecordPaths = false
	res, st := runAccel(t, g, cfg, 100)
	if st.Steps != 100*10 {
		t.Fatalf("steps = %d, want 1000", st.Steps)
	}
	for _, p := range res.Paths {
		if len(p) != 0 {
			t.Fatal("paths recorded despite RecordPaths=false")
		}
	}
}

func TestStepsPerQueryNeverExceedLength(t *testing.T) {
	g := testGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 7, Seed: 9}
	cfg := DefaultConfig(smallPlatform(), w)
	res, _ := runAccel(t, g, cfg, 200)
	for i, p := range res.Paths {
		if len(p) > 8 {
			t.Fatalf("query %d walked %d hops, cap 7", i, len(p)-1)
		}
	}
}
