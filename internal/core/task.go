// Package core implements the RidgeWalker accelerator itself: Markov-based
// task decomposition (§V-A), asynchronous Row-Access → Sampling →
// Column-Access pipelines over per-pipeline HBM channels (§IV, §V), the
// data-aware Task Router, and the Zero-Bubble Scheduler feeding it all
// (§VI) — plus the ablation switches (§VIII-D) that turn the asynchronous
// engine and the dynamic scheduler off independently to reproduce Fig. 11.
//
// The accelerator runs on the cycle-level kernel of internal/hwsim with the
// memory model of internal/hbm. Data values (degrees, neighbor ids) are
// read directly from the in-memory CSR at the moment the simulated
// transaction completes; the channel model supplies the timing. Walk
// statistics are therefore exact while performance is simulated.
package core

import (
	"ridgewalker/internal/graph"
)

// Task is the stateless unit of work a GRW query decomposes into (paper
// Fig. 5a): one hop of one walk, carrying everything the pipeline stages
// need — ⟨v_last, query ID, step counter, …⟩ — in a single pipeline word
// (≤512 bits in hardware).
type Task struct {
	// Query uniquely identifies the owning query for result tracking.
	Query uint32
	// Step is the hop index this task will execute (0-based).
	Step uint16
	// VCur is the vertex whose neighbor is sampled this hop.
	VCur graph.VertexID
	// VPrev is the previously visited vertex (second-order walks).
	VPrev graph.VertexID
	// HasPrev is false on a query's first hop.
	HasPrev bool

	// Fields below are stage scratch, filled as the task flows through the
	// pipeline (they ride in the same pipeline word).

	// deg and colBase are produced by Row Access.
	deg     int32
	colBase int64
	// chosenIdx is produced by Sampling.
	chosenIdx int32
}

// Layout maps graph data to memory channels (paper Fig. 4b): the row
// pointer array is partitioned across the Row Access channels, and neighbor
// lists are shuffled across the Column Access channels to spread load.
type Layout struct {
	// Pipelines is N; channel pairs (rp[i], cl[i]) belong to pipeline i.
	Pipelines int
}

// RowPipeline returns the pipeline whose Row Access channel holds v's row
// pointer entry. The paper randomly partitions the CSR across channels
// (§IV-A); a multiplicative hash realizes that random partition — a plain
// v mod N would inherit the per-bit skew of RMAT vertex ids and hot-spot
// one channel.
func (l Layout) RowPipeline(v graph.VertexID) int {
	h := (uint64(v) + 0x632be59bd9b4e019) * 0xff51afd7ed558ccd
	return int((h >> 33) % uint64(l.Pipelines))
}

// ColPipeline returns the pipeline whose Column Access channel holds v's
// neighbor list. A different multiplicative hash decorrelates it from
// RowPipeline, modeling the round-robin shuffle of Fig. 4b.
func (l Layout) ColPipeline(v graph.VertexID) int {
	h := uint64(v) * 0x9e3779b97f4a7c15
	return int((h >> 32) % uint64(l.Pipelines))
}

// RowAddr returns the byte address of v's row-pointer entry within its
// channel partition (8-byte entries).
func (l Layout) RowAddr(v graph.VertexID) uint64 {
	return uint64(v) / uint64(l.Pipelines) * 8
}

// ColAddr returns the byte address of the idx-th entry of a neighbor list
// starting at colBase within its channel.
func (l Layout) ColAddr(colBase int64, idx int32) uint64 {
	return uint64(colBase+int64(idx)) * 8 / uint64(l.Pipelines)
}
