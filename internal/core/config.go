package core

import (
	"fmt"

	"ridgewalker/internal/hbm"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

// Config assembles an accelerator instance.
type Config struct {
	// Platform selects the memory system and clock (hbm.U55C etc.).
	Platform hbm.Platform
	// Walk selects the GRW algorithm and its parameters.
	Walk walk.Config

	// Pipelines overrides the platform's channel-derived pipeline count
	// (Channels/2). It must be a power of two. 0 uses the platform value,
	// rounded down to a power of two.
	Pipelines int

	// Async enables the asynchronous memory access engine (§V-B). When
	// false, each engine allows only BlockingOutstanding in-flight
	// transactions, modeling a conventional stalling dataflow design —
	// ablation "w/o Async" of Fig. 11.
	Async bool
	// DynamicSched enables the Zero-Bubble Scheduler with per-hop task
	// rerouting. When false, queries are statically bound to pipelines and
	// executed in bulk-synchronous batches of BatchSize — ablation
	// "w/o Scheduler" of Fig. 11.
	DynamicSched bool

	// BlockingOutstanding is the in-flight budget of the non-async
	// configurations (shallow HLS dataflow FIFOs). Default 8.
	BlockingOutstanding int
	// BatchSize is the static mode's bulk-synchronous batch per pipeline
	// (LightRW-style ring buffer). Default 256 — large enough to amortize the per-round drain tail, as real ring designs do.
	BatchSize int
	// EngineDepth is the async engine's metadata queue / outstanding window
	// (paper: 128). Default 128.
	EngineDepth int
	// SchedulerOutputDepth is the per-pipeline task FIFO depth; 0 uses the
	// paper's deployed 65 (§VIII-F).
	SchedulerOutputDepth int

	// MaxQueriesInFlight caps concurrently active queries (the streaming
	// window of the Query Loader). Default 4 × Pipelines × 64.
	MaxQueriesInFlight int

	// RecordPaths keeps full per-query paths in the result. Disable for
	// large benchmark runs to save memory; step counts are always kept.
	RecordPaths bool

	// Sampler, when non-nil, is used instead of building a sampler from
	// Walk. Execution layers that instantiate accelerators repeatedly for
	// the same workload pass a prebuilt sampler so alias tables are not
	// reconstructed per batch; the walk config is still validated against
	// the graph.
	Sampler sampling.Sampler

	// Seed drives sampling and layout jitter.
	Seed uint64
}

// DefaultConfig returns the full RidgeWalker configuration (both
// optimizations on) for a platform and walk.
func DefaultConfig(p hbm.Platform, w walk.Config) Config {
	return Config{
		Platform:     p,
		Walk:         w,
		Async:        true,
		DynamicSched: true,
		RecordPaths:  true,
		Seed:         w.Seed,
	}
}

// withDefaults fills zero fields and validates.
func (c Config) withDefaults() (Config, error) {
	if c.Pipelines == 0 {
		n := c.Platform.Pipelines()
		p := 1
		for p*2 <= n {
			p *= 2
		}
		c.Pipelines = p
	}
	if c.Pipelines < 1 || c.Pipelines&(c.Pipelines-1) != 0 {
		return c, fmt.Errorf("core: pipelines %d must be a positive power of two", c.Pipelines)
	}
	if c.BlockingOutstanding == 0 {
		c.BlockingOutstanding = 8
	}
	if c.BlockingOutstanding < 1 {
		return c, fmt.Errorf("core: blocking outstanding %d, want >= 1", c.BlockingOutstanding)
	}
	if c.BatchSize == 0 {
		c.BatchSize = 256
	}
	if c.BatchSize < 1 {
		return c, fmt.Errorf("core: batch size %d, want >= 1", c.BatchSize)
	}
	if c.EngineDepth == 0 {
		c.EngineDepth = 128
	}
	if c.EngineDepth < 1 {
		return c, fmt.Errorf("core: engine depth %d, want >= 1", c.EngineDepth)
	}
	if c.SchedulerOutputDepth == 0 {
		c.SchedulerOutputDepth = 65
	}
	if c.MaxQueriesInFlight == 0 {
		c.MaxQueriesInFlight = 4 * c.Pipelines * 64
	}
	return c, nil
}
