// Package bench regenerates every table and figure of the paper's
// evaluation (§VIII). Each experiment is a named runner that produces the
// same rows/series the paper reports — throughput in MStep/s, speedups
// against the appropriate baseline, normalized bandwidth utilization — next
// to the paper's published values for direct shape comparison.
//
// Workloads run on scaled dataset twins (internal/graph, DESIGN.md §5);
// absolute numbers therefore differ from the paper, but who wins, by
// roughly what factor, and where crossovers fall is the reproduction
// target (EXPERIMENTS.md records both sides).
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"

	"ridgewalker/internal/baselines"
	"ridgewalker/internal/core"
	"ridgewalker/internal/exec"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/walk"
)

// Options scales experiment workloads.
type Options struct {
	// Shrink subtracts scale levels from every dataset twin (each level
	// halves the vertex count). 0 reproduces DESIGN.md §5 sizes; the
	// default 3 keeps a full `benchfig all` run in minutes.
	Shrink int
	// Queries per run (paper workloads stream continuously; throughput is
	// query-count independent once pipelines saturate).
	Queries int
	// WalkLength is the maximum walk length (paper: 80).
	WalkLength int
	// Seed drives all generation and sampling.
	Seed uint64
	// Procs lists the GOMAXPROCS settings the perf suite sweeps (each
	// BENCH.json record carries the setting it was measured under). Empty
	// means {1, NumCPU} deduplicated. Other experiments ignore it.
	Procs []int
	// Repeat is the perf suite's measurement repetition count per
	// configuration; the best (highest-throughput) repetition is recorded,
	// since downward outliers on shared machines are scheduling noise,
	// which is exactly what a regression gate must not fire on. 0 means 1.
	// Other experiments ignore it.
	Repeat int
	// Algorithms names the GRW workloads the perf suite sweeps
	// (case-insensitive: urw, ppr, deepwalk, node2vec — the latter two
	// run on the weighted twin of the suite's graph, so node2vec
	// exercises the weighted reservoir). Empty means {urw, deepwalk}.
	// Other experiments ignore it.
	Algorithms []string
}

// DefaultOptions returns the standard quick configuration. Queries must
// comfortably exceed pipelines × memory-latency so throughput is measured
// at steady state, not concurrency-limited (~2500 walks keeps 16 pipelines
// saturated through a ~200-cycle round trip).
func DefaultOptions() Options {
	return Options{Shrink: 3, Queries: 2500, WalkLength: 80, Seed: 42}
}

// Context caches generated graphs across experiments in one invocation.
// It is safe for concurrent use, so experiments can run in parallel.
type Context struct {
	Opts   Options
	mu     sync.Mutex
	graphs map[string]*graph.CSR
}

// NewContext returns a fresh experiment context.
func NewContext(opts Options) *Context {
	if opts.Queries == 0 {
		opts.Queries = 1500
	}
	if opts.WalkLength == 0 {
		opts.WalkLength = 80
	}
	if opts.Seed == 0 {
		opts.Seed = 42
	}
	return &Context{Opts: opts, graphs: map[string]*graph.CSR{}}
}

// Twin returns the (cached) scaled twin of a Table-II dataset.
func (c *Context) Twin(name string) (*graph.CSR, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if g, ok := c.graphs[name]; ok {
		return g, nil
	}
	spec, err := graph.DatasetByName(name)
	if err != nil {
		return nil, err
	}
	spec.Scale -= c.Opts.Shrink
	if spec.Scale < 8 {
		spec.Scale = 8
	}
	g, err := spec.Generate(c.Opts.Seed)
	if err != nil {
		return nil, err
	}
	c.graphs[name] = g
	return g, nil
}

// Weighted returns a shallow copy of g with ThunderRW-style edge weights.
func Weighted(g *graph.CSR) *graph.CSR {
	gw := *g
	gw.Weights = nil
	gw2 := &gw
	gw2.AttachWeights()
	return gw2
}

// Labeled returns a shallow copy of g with hashed vertex labels.
func Labeled(g *graph.CSR, types int) *graph.CSR {
	gl := *g
	gl.Labels = nil
	gl2 := &gl
	gl2.AttachLabels(types)
	return gl2
}

// Experiment is one reproducible artifact of the evaluation.
type Experiment struct {
	// ID is the key used by `benchfig <id>` (e.g. "fig9a", "tab3").
	ID string
	// Title describes the artifact.
	Title string
	// Run executes the experiment and writes its table to w.
	Run func(c *Context, w io.Writer) error
}

// registry is populated by the per-figure files' init functions.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, ordered by ID.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (try: %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	return out
}

// table is a small aligned-text table builder.
type table struct {
	w     *tabwriter.Writer
	title string
}

func newTable(w io.Writer, title string) *table {
	t := &table{w: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0), title: title}
	fmt.Fprintf(w, "\n== %s ==\n", title)
	return t
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.w, "%.1f", v)
		default:
			fmt.Fprintf(t.w, "%v", v)
		}
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() error { return t.w.Flush() }

// Every experiment runs its engines through the unified execution layer:
// figure drivers name a backend ("ridgewalker", "lightrw", "suetal",
// "fastrw", "gsampler") and the layer does the rest.

// runSim executes the workload on a simulator-hosted backend and returns
// its cycle-level statistics.
func runSim(backend string, g *graph.CSR, wcfg walk.Config, platform hbm.Platform, queries []walk.Query, ablate func(*exec.Config)) (*core.Stats, error) {
	cfg := exec.Config{Walk: wcfg, Platform: platform, DiscardPaths: true}
	if ablate != nil {
		ablate(&cfg)
	}
	ses, err := exec.Open(backend, g, cfg)
	if err != nil {
		return nil, err
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), exec.Batch{Queries: queries})
	if err != nil {
		return nil, err
	}
	return res.Sim, nil
}

// runModel executes the workload on a baseline backend and returns its
// modeled performance result.
func runModel(backend string, g *graph.CSR, queries []walk.Query, cfg exec.Config) (baselines.Result, error) {
	cfg.DiscardPaths = true
	ses, err := exec.Open(backend, g, cfg)
	if err != nil {
		return baselines.Result{}, err
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), exec.Batch{Queries: queries})
	if err != nil {
		return baselines.Result{}, err
	}
	if res.Model == nil {
		return baselines.Result{}, fmt.Errorf("bench: backend %q reported no model result", backend)
	}
	return *res.Model, nil
}

// runRidgeWalker runs the full accelerator and returns its stats.
func runRidgeWalker(g *graph.CSR, wcfg walk.Config, platform hbm.Platform, queries []walk.Query) (*core.Stats, error) {
	return runSim("ridgewalker", g, wcfg, platform, queries, nil)
}

// workload builds the standard query stream for an algorithm on a graph.
// The paper streams queries continuously, so throughput must be measured at
// steady state; a small pilot run estimates the mean walk length (early
// termination on sinks, PPR teleports, schema misses) and the query count
// scales to keep the total step volume at Queries × WalkLength.
func (c *Context) workload(g *graph.CSR, alg walk.Algorithm) (walk.Config, []walk.Query, error) {
	wcfg := walk.DefaultConfig(alg)
	wcfg.WalkLength = c.Opts.WalkLength
	wcfg.Seed = c.Opts.Seed
	pilotN := 200
	pilot, err := walk.RandomQueries(g, wcfg, pilotN, c.Opts.Seed^0x9e37)
	if err != nil {
		return wcfg, nil, err
	}
	pres, err := walk.Run(g, pilot, wcfg)
	if err != nil {
		return wcfg, nil, err
	}
	meanLen := float64(pres.Steps) / float64(pilotN)
	if meanLen < 1 {
		meanLen = 1
	}
	n := int(float64(c.Opts.Queries) * float64(c.Opts.WalkLength) / meanLen)
	if n < c.Opts.Queries {
		n = c.Opts.Queries
	}
	if limit := c.Opts.Queries * 20; n > limit {
		// Cap the auto-scaling: very short walks (sink-heavy twins) would
		// otherwise inflate static-baseline runtimes quadratically (zombie
		// slots consume the full WalkLength schedule per query).
		n = limit
	}
	qs, err := walk.RandomQueries(g, wcfg, n, c.Opts.Seed^0xabcd)
	return wcfg, qs, err
}

// paperFootprint returns the ORIGINAL dataset's memory footprint (Table II
// sizes), used to preserve cache-fit relationships when running on scaled
// twins.
func paperFootprint(name string, weighted bool) (int64, error) {
	spec, err := graph.DatasetByName(name)
	if err != nil {
		return 0, err
	}
	b := spec.PaperVertices*8 + spec.PaperEdges*4
	if weighted {
		b += spec.PaperEdges * 4
	}
	return b, nil
}
