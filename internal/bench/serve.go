package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ridgewalker"

	"ridgewalker/internal/graph"
)

func init() {
	register(Experiment{ID: "serve", Title: "Serving under overload: saturation goodput, shed latency, admission budget",
		Run: func(c *Context, w io.Writer) error {
			rec, err := RunServe(c)
			if err != nil {
				return err
			}
			return WriteServeTable(rec, w)
		}})
}

// Serving-harness shape. Requests carry serveRequestQueries walk queries
// each — the GraphSAGE-ish "one front-end call, a few dozen walks" unit —
// so request-level latency prices a realistic serving quantum rather than
// a single walk. The closed loop keeps 4× the worker count of submitters
// resubmitting back-to-back (enough to hold the admission budget full
// through the feedback window), and each open-loop point paces
// submissions at a fixed multiple of the measured saturation rate.
const (
	serveRequestQueries = 64
	serveSubmitterMult  = 4
	serveWarm           = 150 * time.Millisecond
	serveMeasure        = 400 * time.Millisecond
	servePointDur       = 400 * time.Millisecond
	// servePaceFloor is the shortest sleep the pacing loop relies on;
	// faster target rates are reached by submitting bursts per slot
	// instead of trusting sub-200µs timer resolution.
	servePaceFloor = 200 * time.Microsecond
)

// serveLoadFactors are the open-loop operating points, as multiples of
// the measured saturation rate. 2.0 is the acceptance point: shed
// requests must fail fast there while admitted goodput holds.
var serveLoadFactors = []float64{0.5, 1.0, 2.0}

// ServePoint is one open-loop operating point of the serving harness:
// requests paced at LoadFactor × the measured saturation rate against a
// Service with the feedback-derived admission budget. Latencies are
// request-level (one request = RequestQueries walks); shed requests are
// the ones rejected at the admission door with ErrOverloaded (or
// ErrQuotaExceeded, when quotas are configured), whose latency is the
// rejection cost the caller pays before it can retry elsewhere.
type ServePoint struct {
	LoadFactor float64 `json:"load_factor"`
	OfferedRPS float64 `json:"offered_rps"`
	// GoodputRPS counts only completed (admitted and finished) requests
	// over the point's full wall time, drain included.
	GoodputRPS float64 `json:"goodput_rps"`
	Admitted   int     `json:"admitted"`
	Shed       int     `json:"shed"`
	ShedRate   float64 `json:"shed_rate"`
	P50MS      float64 `json:"p50_ms"`
	P95MS      float64 `json:"p95_ms"`
	P99MS      float64 `json:"p99_ms"`
	ShedP50MS  float64 `json:"shed_p50_ms,omitempty"`
	ShedP99MS  float64 `json:"shed_p99_ms,omitempty"`
}

// ServeRecord is the BENCH.json serving measurement (schema 6): one
// closed-loop saturation probe plus the open-loop load sweep, all against
// one Service running the auto (Theorem VI.1 feedback) admission budget.
type ServeRecord struct {
	Backend        string  `json:"backend"`
	Algorithm      string  `json:"algorithm"`
	Graph          string  `json:"graph"`
	Workers        int     `json:"workers"`
	RequestQueries int     `json:"request_queries"`
	WalkLength     int     `json:"walk_length"`
	SaturationRPS  float64 `json:"saturation_rps"`
	// Budget and ServiceRate snapshot the admission controller after the
	// sweep: the feedback-derived in-flight query budget and the EWMA
	// per-worker service rate it was derived from.
	Budget      int          `json:"budget"`
	ServiceRate float64      `json:"service_rate"`
	Points      []ServePoint `json:"points"`
}

// RunServe generates the perf suite's RMAT graph at the configured
// shrink and runs the serving harness on it.
func RunServe(c *Context) (*ServeRecord, error) {
	scale := 22 - c.Opts.Shrink
	if scale < 10 {
		scale = 10
	}
	g, err := graph.GenerateRMAT(graph.Graph500(scale, 16, c.Opts.Seed))
	if err != nil {
		return nil, err
	}
	return runServe(g, fmt.Sprintf("rmat-%d-graph500", scale), c.Opts)
}

// runServe measures the serving layer on an already generated graph:
// first a closed loop finds the saturation request rate, then each load
// factor runs open-loop against the same warm Service, so the admission
// budget enters the sweep already calibrated by observed service times.
func runServe(g *graph.CSR, name string, opts Options) (*ServeRecord, error) {
	wcfg := ridgewalker.DefaultWalkConfig(ridgewalker.URW)
	wcfg.WalkLength = opts.WalkLength
	wcfg.Seed = opts.Seed
	wcfg.Lane = ridgewalker.LaneInteractive
	qs, err := ridgewalker.RandomQueries(g, wcfg, serveRequestQueries, opts.Seed^0x5e17)
	if err != nil {
		return nil, err
	}
	svc, err := ridgewalker.NewService(g, ridgewalker.ServiceConfig{
		Backend:     "cpu",
		MaxInFlight: ridgewalker.AutoInFlight,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	rec := &ServeRecord{
		Backend:        "cpu",
		Algorithm:      wcfg.Algorithm.String(),
		Graph:          name,
		Workers:        runtime.GOMAXPROCS(0),
		RequestQueries: len(qs),
		WalkLength:     opts.WalkLength,
	}
	sat, err := serveSaturate(svc, wcfg, qs)
	if err != nil {
		return nil, err
	}
	rec.SaturationRPS = sat
	for _, f := range serveLoadFactors {
		pt, err := servePoint(svc, wcfg, qs, sat, f)
		if err != nil {
			return nil, err
		}
		rec.Points = append(rec.Points, pt)
	}
	ast := svc.AdmissionStatus()
	rec.Budget = ast.Budget
	rec.ServiceRate = ast.ServiceRate
	return rec, nil
}

// serveSaturate runs the closed loop: a fixed pool of submitters
// resubmitting back-to-back, retrying shed requests after a tiny backoff
// (the loop's job is to keep the admission budget full, not to count
// rejections). The completed-request rate over the measurement window —
// after a warm-up that lets the feedback budget calibrate — is the
// saturation rate the open-loop points are paced against.
func serveSaturate(svc *ridgewalker.Service, cfg ridgewalker.WalkConfig, qs []ridgewalker.Query) (float64, error) {
	var (
		stop      atomic.Bool
		completed atomic.Int64
		errMu     sync.Mutex
		firstErr  error
		wg        sync.WaitGroup
	)
	for i := 0; i < serveSubmitterMult*runtime.GOMAXPROCS(0); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				_, err := svc.Submit(context.Background(), cfg, qs)
				switch {
				case err == nil:
					completed.Add(1)
				case errors.Is(err, ridgewalker.ErrOverloaded):
					time.Sleep(50 * time.Microsecond)
				default:
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}()
	}
	time.Sleep(serveWarm)
	completed.Store(0)
	t0 := time.Now()
	time.Sleep(serveMeasure)
	n := completed.Load()
	el := time.Since(t0)
	stop.Store(true)
	wg.Wait()
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return 0, err
	}
	if n == 0 {
		return 0, fmt.Errorf("bench: serve closed loop completed no requests in %v", serveMeasure)
	}
	return float64(n) / el.Seconds(), nil
}

// servePoint runs one open-loop operating point: submissions paced at
// factor × satRPS (bursting per pacing slot when the interval would fall
// below timer resolution), every outcome classified and timed.
func servePoint(svc *ridgewalker.Service, cfg ridgewalker.WalkConfig, qs []ridgewalker.Query, satRPS, factor float64) (ServePoint, error) {
	target := satRPS * factor
	if target <= 0 {
		return ServePoint{}, fmt.Errorf("bench: serve point target rate %.2f rps", target)
	}
	burst := 1
	if iv := time.Duration(float64(time.Second) / target); iv < servePaceFloor {
		burst = int(servePaceFloor/iv) + 1
	}
	interval := time.Duration(float64(time.Second) * float64(burst) / target)
	var (
		mu       sync.Mutex
		admitted []float64 // request latency, ms
		shed     []float64 // rejection latency, ms
		ptErr    error
		wg       sync.WaitGroup
	)
	submitted := 0
	t0 := time.Now()
	next := t0
	for time.Since(t0) < servePointDur {
		for b := 0; b < burst; b++ {
			submitted++
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				_, err := svc.Submit(context.Background(), cfg, qs)
				ms := float64(time.Since(start)) / float64(time.Millisecond)
				mu.Lock()
				defer mu.Unlock()
				switch {
				case err == nil:
					admitted = append(admitted, ms)
				case errors.Is(err, ridgewalker.ErrOverloaded) || errors.Is(err, ridgewalker.ErrQuotaExceeded):
					shed = append(shed, ms)
				default:
					if ptErr == nil {
						ptErr = err
					}
				}
			}()
		}
		next = next.Add(interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	elSubmit := time.Since(t0)
	wg.Wait()
	elTotal := time.Since(t0)
	mu.Lock()
	defer mu.Unlock()
	if ptErr != nil {
		return ServePoint{}, ptErr
	}
	sort.Float64s(admitted)
	sort.Float64s(shed)
	return ServePoint{
		LoadFactor: factor,
		OfferedRPS: float64(submitted) / elSubmit.Seconds(),
		GoodputRPS: float64(len(admitted)) / elTotal.Seconds(),
		Admitted:   len(admitted),
		Shed:       len(shed),
		ShedRate:   float64(len(shed)) / float64(submitted),
		P50MS:      pctileMS(admitted, 0.50),
		P95MS:      pctileMS(admitted, 0.95),
		P99MS:      pctileMS(admitted, 0.99),
		ShedP50MS:  pctileMS(shed, 0.50),
		ShedP99MS:  pctileMS(shed, 0.99),
	}, nil
}

// pctileMS reads the p-th percentile (nearest-rank) from an
// ascending-sorted latency slice; 0 when empty.
func pctileMS(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	return sorted[idx]
}

// WriteServeTable renders the serving sweep as the usual aligned table.
func WriteServeTable(rec *ServeRecord, w io.Writer) error {
	t := newTable(w, fmt.Sprintf("Serving under overload — %s on %s, %d queries/request × len %d, %d workers",
		rec.Backend, rec.Graph, rec.RequestQueries, rec.WalkLength, rec.Workers))
	t.row("load", "offered rps", "goodput rps", "shed", "p50 ms", "p95 ms", "p99 ms", "shed p99 ms")
	for _, p := range rec.Points {
		t.row(fmt.Sprintf("%.1fx", p.LoadFactor),
			fmt.Sprintf("%.0f", p.OfferedRPS), fmt.Sprintf("%.0f", p.GoodputRPS),
			fmt.Sprintf("%.0f%%", 100*p.ShedRate),
			fmt.Sprintf("%.2f", p.P50MS), fmt.Sprintf("%.2f", p.P95MS), fmt.Sprintf("%.2f", p.P99MS),
			fmt.Sprintf("%.3f", p.ShedP99MS))
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "saturation: %.0f req/s closed-loop; admission budget %d queries (EWMA %.0f q/s/worker)\n",
		rec.SaturationRPS, rec.Budget, rec.ServiceRate)
	return nil
}
