package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"ridgewalker/internal/exec"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/plan"
	"ridgewalker/internal/walk"
)

func init() {
	register(Experiment{ID: "planner", Title: "Auto-planner regret vs best hand-picked configuration",
		Run: func(c *Context, w io.Writer) error {
			rep, err := RunPerf(c)
			if err != nil {
				return err
			}
			return WritePlannerTable(rep, w)
		}})
}

// PlannerRecord is one {algorithm × GOMAXPROCS} cell of the planner
// sweep: the "auto" backend calibrates, picks a configuration, and runs
// the full workload; the cell's regret is how far that lands below the
// best hand-picked configuration, re-measured PAIRED with the auto run
// (interleaved rounds, medians — see plannerCell) so machine-speed
// drift across the sweep cancels out of the ratio. ChosenShards is
// split out of the rendered name so gates can test shardedness without
// string parsing; BestSharded/BestUnsharded carry the empirical
// crossover evidence the shard-crossover gate conditions on (a runner
// without real hardware parallelism shows no sharded advantage, and
// the gate must skip rather than fail there).
type PlannerRecord struct {
	Algorithm  string `json:"algorithm"`
	Graph      string `json:"graph"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Chosen renders the planner's resolved configuration ("cpu-pipelined
	// c64 s2"); ChosenBackend/ChosenCohort/ChosenShards are its parts,
	// split out so gates match shapes without string parsing; PlanSource
	// records how the decision was made.
	Chosen        string `json:"chosen"`
	ChosenBackend string `json:"chosen_backend"`
	ChosenCohort  int    `json:"chosen_cohort,omitempty"`
	ChosenShards  int    `json:"chosen_shards,omitempty"`
	PlanSource    string `json:"plan_source"`
	// PredictedStepsPerSec is the calibration probe's estimate;
	// AutoStepsPerSec the realized full-workload throughput (median over
	// the paired rounds).
	PredictedStepsPerSec float64 `json:"predicted_steps_per_sec"`
	AutoStepsPerSec      float64 `json:"auto_steps_per_sec"`
	// BestManual names the fastest hand-picked perf-sweep configuration
	// for the same cell (non-tiered, non-hub records only);
	// BestManualStepsPerSec is its PAIRED re-measurement against the
	// auto session, not the sweep number. The sharded/unsharded bests
	// are sweep numbers — they only feed the crossover threshold, a
	// within-sweep comparison.
	BestManualStepsPerSec    float64 `json:"best_manual_steps_per_sec"`
	BestManual               string  `json:"best_manual"`
	BestUnshardedStepsPerSec float64 `json:"best_unsharded_steps_per_sec,omitempty"`
	BestShardedStepsPerSec   float64 `json:"best_sharded_steps_per_sec,omitempty"`
	// Regret is (best − auto)/best over the paired medians, clamped at 0
	// when auto wins outright.
	Regret float64 `json:"regret"`
}

const (
	// plannerMaxRounds bounds the paired rounds; plannerRoundBudget is
	// the wall-clock past which no extra rounds beyond the repeat floor
	// are added.
	plannerMaxRounds   = 15
	plannerRoundBudget = 6 * time.Second
)

// plannerCell measures one {algorithm × procs} regret cell. The sweep's
// records name the cell's best hand-picked configuration; the cell then
// prices auto against that reference with a PAIRED measurement — both
// sessions open at once, timed runs alternating auto/manual round by
// round, medians over the rounds — instead of comparing against the
// sweep numbers gathered minutes earlier. On a shared runner the
// machine's speed drifts by tens of percent across a sweep, which is
// larger than the real gap between the top engines; pairing makes both
// sides see the same machine moments so the drift cancels, and the
// sweep's winner's-curse inflation (its "best" is a max over many
// best-of-N measurements) never enters the regret at all.
//
// rep.Records must already contain the cell's sweep records (tiered and
// hub records are excluded — they run a different workload or a memory
// constraint the planner cell does not).
func plannerCell(rep *PerfReport, name string, g *graph.CSR, wcfg walk.Config, qs []walk.Query, repeat int) (PlannerRecord, error) {
	if repeat < 1 {
		repeat = 1
	}
	procs := runtime.GOMAXPROCS(0)
	// The cell's reference configuration and the crossover evidence, from
	// the sweep records measured on the same queries.
	var best *PerfRecord
	var unsharded, sharded float64
	for i := range rep.Records {
		r := &rep.Records[i]
		if r.Algorithm != wcfg.Algorithm.String() || r.GoMaxProcs != procs ||
			r.MemBudget != 0 || r.HubWorkload {
			continue
		}
		if best == nil || r.StepsPerSec > best.StepsPerSec {
			best = r
		}
		if r.Shards > 1 {
			if r.StepsPerSec > sharded {
				sharded = r.StepsPerSec
			}
		} else if r.StepsPerSec > unsharded {
			unsharded = r.StepsPerSec
		}
	}
	auto, err := exec.Open("auto", g, exec.Config{
		Walk: wcfg, DiscardPaths: true,
		Plan: &plan.Options{Calibrate: true},
	})
	if err != nil {
		return PlannerRecord{}, err
	}
	defer auto.Close()
	reporter, ok := auto.(exec.PlanReporter)
	if !ok {
		return PlannerRecord{}, fmt.Errorf("bench: auto session reports no plan")
	}
	pr := reporter.PlanReport()
	chosen := plan.Candidate{Backend: pr.Backend, Cohort: pr.Cohort, Shards: pr.Shards}
	rec := PlannerRecord{
		Algorithm:                wcfg.Algorithm.String(),
		Graph:                    name,
		GoMaxProcs:               procs,
		Chosen:                   chosen.String(),
		ChosenBackend:            pr.Backend,
		ChosenCohort:             pr.Cohort,
		ChosenShards:             pr.Shards,
		PlanSource:               pr.Source,
		PredictedStepsPerSec:     pr.PredictedStepsPerSec,
		BestUnshardedStepsPerSec: unsharded,
		BestShardedStepsPerSec:   sharded,
	}
	if best == nil {
		// No reference to pair against; the gate skips the cell.
		return rec, nil
	}
	rec.BestManual = best.configName()
	manual, err := exec.Open(best.Backend, g, exec.Config{
		Walk: wcfg, Shards: best.Shards, Cohort: best.Cohort, DiscardPaths: true,
	})
	if err != nil {
		return PlannerRecord{}, err
	}
	defer manual.Close()
	warm := len(qs) / 10
	if warm < 1 {
		warm = 1
	}
	ctx := context.Background()
	timed := func(ses exec.Session) (float64, error) {
		start := time.Now()
		res, err := ses.Run(ctx, exec.Batch{Queries: qs})
		el := time.Since(start).Seconds()
		if err != nil {
			return 0, err
		}
		if el <= 0 || res.Steps == 0 {
			return 0, fmt.Errorf("bench: planner cell run took no steps")
		}
		return float64(res.Steps) / el, nil
	}
	for _, ses := range []exec.Session{auto, manual} {
		if _, err := ses.Run(ctx, exec.Batch{Queries: qs[:warm]}); err != nil {
			return PlannerRecord{}, err
		}
	}
	// Round count adapts to workload speed: at least repeat rounds, and
	// fast cells keep pairing until the time budget is spent (capped) —
	// a 25ms URW run gets 9 medians for the price of noise, while a
	// multi-second Node2Vec run stops at the floor. Within a round the
	// two sides alternate who goes first: with a fixed order, periodic
	// machine effects (GC cycles near the pair period) land on one slot
	// systematically — measured as ~8% "regret" between two sessions of
	// the IDENTICAL configuration — and flipping the order each round
	// turns that bias into noise the medians absorb.
	autoRounds := make([]float64, 0, plannerMaxRounds)
	manualRounds := make([]float64, 0, plannerMaxRounds)
	start := time.Now()
	for i := 0; i < repeat || (i < plannerMaxRounds && time.Since(start) < plannerRoundBudget); i++ {
		first, second := auto, manual
		if i%2 == 1 {
			first, second = manual, auto
		}
		f, err := timed(first)
		if err != nil {
			return PlannerRecord{}, err
		}
		s, err := timed(second)
		if err != nil {
			return PlannerRecord{}, err
		}
		a, m := f, s
		if i%2 == 1 {
			a, m = s, f
		}
		autoRounds = append(autoRounds, a)
		manualRounds = append(manualRounds, m)
	}
	rec.AutoStepsPerSec = median(autoRounds)
	rec.BestManualStepsPerSec = median(manualRounds)
	// Regret is the median of the per-round auto/manual ratios, not the
	// ratio of the medians: each round's ratio cancels that round's
	// machine speed, so rounds measured under different external load
	// never mix into a phantom gap. And when auto resolved to exactly
	// the shape the sweep crowned, regret is zero by definition — the
	// pairing then compares two sessions of the identical configuration,
	// which can only measure noise, never a planning mistake.
	if pr.Backend == best.Backend && pr.Cohort == best.Cohort && pr.Shards == best.Shards {
		return rec, nil
	}
	ratios := make([]float64, len(autoRounds))
	for i := range autoRounds {
		ratios[i] = autoRounds[i] / manualRounds[i]
	}
	if r := median(ratios); r < 1 {
		rec.Regret = 1 - r
	}
	return rec, nil
}

// median of a non-empty sample (even counts average the middle pair);
// the input is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// WritePlannerTable renders the regret cells and logs, per cell, whether
// the shard-crossover check applies — the skip reasons the gate in
// ComparePerf relies on are made visible here instead of failing
// silently on hosts without real parallelism.
func WritePlannerTable(rep *PerfReport, w io.Writer) error {
	t := newTable(w, fmt.Sprintf("Auto-planner regret — %s, %d queries × len %d",
		rep.Graph, rep.Queries, rep.WalkLength))
	t.row("alg", "procs", "chosen", "source", "auto MStep/s", "best manual", "manual MStep/s", "regret")
	for _, p := range rep.Planner {
		t.row(p.Algorithm, p.GoMaxProcs, p.Chosen, p.PlanSource,
			p.AutoStepsPerSec/1e6, p.BestManual, p.BestManualStepsPerSec/1e6,
			fmt.Sprintf("%.1f%%", 100*p.Regret))
	}
	if err := t.flush(); err != nil {
		return err
	}
	for _, p := range rep.Planner {
		switch {
		case p.GoMaxProcs <= 1:
			fmt.Fprintf(w, "shard-crossover %s p%d: skipped — single-core cell, sharding cannot win\n",
				p.Algorithm, p.GoMaxProcs)
		case p.BestShardedStepsPerSec <= p.BestUnshardedStepsPerSec*plannerCrossoverFactor:
			fmt.Fprintf(w, "shard-crossover %s p%d: skipped — no empirical sharded advantage (sharded %.3g vs unsharded %.3g steps/s; the runner shows no real parallelism)\n",
				p.Algorithm, p.GoMaxProcs, p.BestShardedStepsPerSec, p.BestUnshardedStepsPerSec)
		default:
			ok := "chose a sharded plan"
			if p.ChosenShards <= 1 {
				ok = "VIOLATION: chose an unsharded plan (the regression gate flags this)"
			}
			fmt.Fprintf(w, "shard-crossover %s p%d: sharding wins %.2fx — %s\n",
				p.Algorithm, p.GoMaxProcs,
				p.BestShardedStepsPerSec/p.BestUnshardedStepsPerSec, ok)
		}
	}
	return nil
}
