package bench

import (
	"fmt"
	"io"

	"ridgewalker/internal/baselines"
	"ridgewalker/internal/exec"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/walk"
)

// Paper-reported speedups for reference columns.
var (
	paperFig8a = map[string]float64{"WG": 2.2, "CP": 2.4, "AS": 14.2, "LJ": 71.0}
	paperFig8c = map[string]float64{"WG": 1.2, "CP": 1.2, "AS": 1.2, "LJ": 1.1, "AB": 1.5, "UK": 1.3}
	paperFig8d = map[string]float64{"WG": 1.6, "CP": 1.4, "AS": 1.3, "LJ": 1.5, "AB": 1.7, "UK": 1.5}
)

func init() {
	register(Experiment{
		ID:    "fig3a",
		Title: "Fig. 3a: FastRW effective bandwidth vs Eq.(1) peak (Obs. #1)",
		Run:   runFig3a,
	})
	register(Experiment{
		ID:    "fig8a",
		Title: "Fig. 8a: DeepWalk throughput vs FastRW on U50",
		Run:   runFig8a,
	})
	register(Experiment{
		ID:    "fig8b",
		Title: "Fig. 8b: PPR and URW throughput vs Su et al. on U280-class HBM",
		Run:   runFig8b,
	})
	register(Experiment{
		ID:    "fig8c",
		Title: "Fig. 8c: Node2Vec (reservoir) throughput vs LightRW on U250",
		Run:   runFig8c,
	})
	register(Experiment{
		ID:    "fig8d",
		Title: "Fig. 8d: MetaPath throughput vs LightRW on U250",
		Run:   runFig8d,
	})
}

// runFig3a reproduces the motivation analysis: FastRW's bandwidth collapses
// once the graph exceeds on-chip memory, against the Eq.(1) MAX line.
func runFig3a(c *Context, w io.Writer) error {
	t := newTable(w, "Fig. 3a — FastRW bandwidth analysis (DeepWalk, U50)")
	t.row("graph", "cache hit", "effective GB/s", "% of Eq.(1) peak", "paper")
	cfg := baselines.DefaultFastRW()
	peak := cfg.Platform.Eq1PeakBytesPerSec() / 1e9
	for _, name := range []string{"WG", "LJ"} {
		g, err := c.Twin(name)
		if err != nil {
			return err
		}
		gw := Weighted(g)
		wcfg, qs, err := c.workload(gw, walk.DeepWalk)
		if err != nil {
			return err
		}
		// The twins are ~1/20 scale; the cache-fit decision uses the
		// original dataset's footprint (WG's row pointers fit on-chip, LJ
		// is far beyond on-chip capacity — §III Observation #1).
		fcfg := cfg
		fcfg.WorkingSetBytes, err = paperFootprint(name, true)
		if err != nil {
			return err
		}
		r, err := runModel("fastrw", gw, qs, exec.Config{Walk: wcfg, FastRW: &fcfg})
		if err != nil {
			return err
		}
		paper := "11.8 GB/s (45% peak)"
		if name == "LJ" {
			paper = "0.6 GB/s (2.3% peak)"
		}
		t.row(name, fmt.Sprintf("%.0f%% hit", 100*(1-r.BubbleRatio)),
			fmt.Sprintf("%.2f", r.EffectiveBandwidthGBs),
			fmt.Sprintf("%.1f%%", 100*r.EffectiveBandwidthGBs/peak), paper)
	}
	t.row("MAX (Eq.1)", "-", fmt.Sprintf("%.2f", peak), "100%", "-")
	return t.flush()
}

func runFig8a(c *Context, w io.Writer) error {
	t := newTable(w, "Fig. 8a — DeepWalk: RidgeWalker vs FastRW (U50)")
	t.row("graph", "FastRW MStep/s", "RidgeWalker MStep/s", "speedup", "paper speedup")
	fcfg := baselines.DefaultFastRW()
	for _, name := range []string{"WG", "CP", "AS", "LJ"} {
		g, err := c.Twin(name)
		if err != nil {
			return err
		}
		gw := Weighted(g)
		wcfg, qs, err := c.workload(gw, walk.DeepWalk)
		if err != nil {
			return err
		}
		// Cache-fit decisions use the original dataset footprints (fig3a).
		fc := fcfg
		var err2 error
		fc.WorkingSetBytes, err2 = paperFootprint(name, true)
		if err2 != nil {
			return err2
		}
		fr, err := runModel("fastrw", gw, qs, exec.Config{Walk: wcfg, FastRW: &fc})
		if err != nil {
			return err
		}
		st, err := runRidgeWalker(gw, wcfg, hbm.U50, qs)
		if err != nil {
			return err
		}
		t.row(name, fr.ThroughputMSteps, st.ThroughputMSteps(),
			fmt.Sprintf("%.1fx", st.ThroughputMSteps()/fr.ThroughputMSteps),
			fmt.Sprintf("%.1fx", paperFig8a[name]))
	}
	return t.flush()
}

func runFig8b(c *Context, w io.Writer) error {
	t := newTable(w, "Fig. 8b — PPR / URW: RidgeWalker vs Su et al. (U280)")
	t.row("algorithm", "Su et al. MStep/s", "RidgeWalker MStep/s", "speedup", "paper speedup")
	g, err := c.Twin("WG")
	if err != nil {
		return err
	}
	for _, alg := range []walk.Algorithm{walk.PPR, walk.URW} {
		wcfg, qs, err := c.workload(g, alg)
		if err != nil {
			return err
		}
		su, err := runModel("suetal", g, qs, exec.Config{Walk: wcfg, Platform: hbm.U280})
		if err != nil {
			return err
		}
		st, err := runRidgeWalker(g, wcfg, hbm.U280, qs)
		if err != nil {
			return err
		}
		paper := 9.2
		if alg == walk.URW {
			paper = 9.9
		}
		t.row(alg.String(), su.ThroughputMSteps, st.ThroughputMSteps(),
			fmt.Sprintf("%.1fx", st.ThroughputMSteps()/su.ThroughputMSteps),
			fmt.Sprintf("%.1fx", paper))
	}
	return t.flush()
}

// lightRWComparison shares the Fig. 8c/8d structure.
func lightRWComparison(c *Context, w io.Writer, title string, alg walk.Algorithm, paper map[string]float64) error {
	t := newTable(w, title)
	t.row("graph", "LightRW MStep/s", "RidgeWalker MStep/s", "speedup", "paper speedup")
	for _, name := range []string{"WG", "CP", "AS", "LJ", "AB", "UK"} {
		g, err := c.Twin(name)
		if err != nil {
			return err
		}
		gw := Weighted(g)
		if alg == walk.MetaPath {
			gw = Labeled(gw, 3)
		}
		wcfg, qs, err := c.workload(gw, alg)
		if err != nil {
			return err
		}
		lr, err := runModel("lightrw", gw, qs, exec.Config{Walk: wcfg, Platform: hbm.U250})
		if err != nil {
			return err
		}
		st, err := runRidgeWalker(gw, wcfg, hbm.U250, qs)
		if err != nil {
			return err
		}
		t.row(name, lr.ThroughputMSteps, st.ThroughputMSteps(),
			fmt.Sprintf("%.2fx", st.ThroughputMSteps()/lr.ThroughputMSteps),
			fmt.Sprintf("%.1fx", paper[name]))
	}
	return t.flush()
}

func runFig8c(c *Context, w io.Writer) error {
	return lightRWComparison(c, w,
		"Fig. 8c — Node2Vec (reservoir, p=2 q=0.5): RidgeWalker vs LightRW (U250)",
		walk.Node2Vec, paperFig8c)
}

func runFig8d(c *Context, w io.Writer) error {
	return lightRWComparison(c, w,
		"Fig. 8d — MetaPath: RidgeWalker vs LightRW (U250)",
		walk.MetaPath, paperFig8d)
}
