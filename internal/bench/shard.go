package bench

import (
	"context"
	"io"
	"sync/atomic"
	"time"

	"ridgewalker/internal/exec"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/shard"
	"ridgewalker/internal/walk"
)

func init() {
	register(Experiment{ID: "shard", Title: "Sharded CPU engine: shard-count sweep vs flat cpu backend",
		Run: runShardSweep})
}

// runShardSweep compares the flat cpu backend against the cpu-sharded
// engine across shard counts on a dataset twin. Unlike the figure
// reproductions this measures wall-clock software throughput, not
// simulated cycles: the table shows how partition locality and migration
// overhead trade off as shards grow, alongside the partitioner's edge-cut
// fraction and the realized migrations per walk.
func runShardSweep(c *Context, w io.Writer) error {
	g, err := c.Twin("LJ")
	if err != nil {
		return err
	}
	wcfg, qs, err := c.workload(g, walk.URW)
	if err != nil {
		return err
	}
	t := newTable(w, "Sharded engine sweep — URW on LJ twin (wall-clock)")
	t.row("backend", "shards", "cut %", "migr/walk", "MStep/s", "vs cpu")

	// Flat cpu baseline through the execution layer.
	ses, err := exec.Open("cpu", g, exec.Config{Walk: wcfg, DiscardPaths: true})
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := ses.Run(context.Background(), exec.Batch{Queries: qs})
	ses.Close()
	if err != nil {
		return err
	}
	base := float64(res.Steps) / time.Since(start).Seconds() / 1e6
	t.row("cpu", "-", "-", "-", base, 1.0)

	for _, k := range []int{1, 2, 4, 8} {
		if k > g.NumVertices {
			break
		}
		p, err := shard.Partition(g, k)
		if err != nil {
			return err
		}
		eng, err := shard.NewEngine(g, p, wcfg, shard.EngineConfig{})
		if err != nil {
			return err
		}
		start := time.Now()
		var steps atomic.Int64
		stats, err := eng.Run(context.Background(), qs,
			func(_ int, _ walk.Query, _ []graph.VertexID, st int64) error {
				steps.Add(st)
				return nil
			})
		if err != nil {
			return err
		}
		ms := float64(steps.Load()) / time.Since(start).Seconds() / 1e6
		t.row("cpu-sharded", k, 100*p.CutFraction(),
			float64(stats.Migrations)/float64(len(qs)), ms, ms/base)
	}
	return t.flush()
}
