package bench

import (
	"fmt"
	"io"
	"time"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/sampling"
)

func init() {
	register(Experiment{ID: "mutation",
		Title: "Dynamic-graph sampler maintenance: incremental dirty-row rebuild vs cold O(E) rebuild",
		Run: func(c *Context, w io.Writer) error {
			scale := 22 - c.Opts.Shrink
			if scale < 10 {
				scale = 10
			}
			g, err := graph.GenerateRMAT(graph.Graph500(scale, 16, c.Opts.Seed))
			if err != nil {
				return err
			}
			rec, err := MeasureMutation(Weighted(g), fmt.Sprintf("rmat-%d-graph500", scale), c.Opts.Repeat)
			if err != nil {
				return err
			}
			t := newTable(w, fmt.Sprintf("Sampler maintenance after a mutation batch — %s (%d vertices, %d edges)",
				rec.Graph, rec.Vertices, rec.Edges))
			t.row("path", "rows rebuilt", "entries", "latency ms")
			t.row("incremental (WithRebuiltRows)", rec.DirtyRows, rec.SpillEntries, fmt.Sprintf("%.3f", rec.IncrementalMS))
			t.row("cold rebuild (NewAliasSampler)", rec.Vertices, rec.Edges, fmt.Sprintf("%.3f", rec.ColdRebuildMS))
			if err := t.flush(); err != nil {
				return err
			}
			fmt.Fprintf(w, "incremental speedup: %.1fx (dirty fraction %.5f of edge entries)\n",
				rec.Speedup, rec.DirtyFraction)
			return nil
		}})
}

// MutationRecord is the BENCH.json dynamic-graph maintenance measurement:
// after one mutation batch touching DirtyRows vertices, the latency of
// deriving the serving alias store incrementally (rebuilding only the
// overlay's dirty rows into spill arenas, base arenas shared) versus a
// cold O(E) rebuild over the folded graph. Speedup — ColdRebuildMS over
// IncrementalMS — is the number the regression gate tracks: an
// implementation that silently degraded to O(E) maintenance would pull it
// toward 1.
type MutationRecord struct {
	Graph    string `json:"graph"`
	Vertices int    `json:"vertices"`
	Edges    int64  `json:"edges"`
	// MutatedEdges is the batch size; DirtyRows the distinct vertices the
	// batch touched (insert mirrors included); SpillEntries the alias
	// slots the incremental path rebuilt (Σ dirty merged degrees).
	MutatedEdges  int     `json:"mutated_edges"`
	DirtyRows     int     `json:"dirty_rows"`
	SpillEntries  int     `json:"spill_entries"`
	IncrementalMS float64 `json:"incremental_ms"`
	ColdRebuildMS float64 `json:"cold_rebuild_ms"`
	Speedup       float64 `json:"speedup"`
	// DirtyFraction is SpillEntries over the graph's edge entries — the
	// work fraction the incremental path actually performs.
	DirtyFraction float64 `json:"dirty_fraction"`
}

// mutationBatchEdges sizes the measured batch: enough churn to be a
// realistic serving-path update, small enough that the incremental path's
// advantage is the thing measured rather than the batch construction.
const mutationBatchEdges = 64

// measureMutation applies one deterministic mutation batch to a weighted
// graph and times both sampler maintenance paths, best of repeat
// repetitions each (downward outliers are scheduling noise, as
// everywhere in the perf suite).
func MeasureMutation(gw *graph.CSR, name string, repeat int) (*MutationRecord, error) {
	if repeat < 1 {
		repeat = 1
	}
	base, err := sampling.NewAliasSampler(gw)
	if err != nil {
		return nil, err
	}
	vg := graph.NewVersioned(gw)
	n := graph.VertexID(gw.NumVertices)
	edges := make([]graph.Edge, mutationBatchEdges)
	for i := range edges {
		edges[i] = graph.Edge{
			Src: graph.VertexID(uint64(i)*2654435761) % n,
			Dst: graph.VertexID(uint64(i)*40503+17) % n,
		}
	}
	if err := vg.InsertEdges(edges); err != nil {
		return nil, err
	}
	if err := vg.DeleteEdges(edges[:mutationBatchEdges/4]); err != nil {
		return nil, err
	}
	snap := vg.Snapshot()
	final := vg.Compact()

	rec := &MutationRecord{
		Graph:        name,
		Vertices:     gw.NumVertices,
		Edges:        gw.NumEdges(),
		MutatedEdges: len(edges) + mutationBatchEdges/4,
		DirtyRows:    snap.NumDirty(),
	}
	for i := 0; i < repeat; i++ {
		start := time.Now()
		d, err := base.WithRebuiltRows(snap)
		el := time.Since(start)
		if err != nil {
			return nil, err
		}
		rec.SpillEntries = d.SpillEntries()
		if ms := float64(el) / float64(time.Millisecond); rec.IncrementalMS == 0 || ms < rec.IncrementalMS {
			rec.IncrementalMS = ms
		}
	}
	for i := 0; i < repeat; i++ {
		start := time.Now()
		if _, err := sampling.NewAliasSampler(final); err != nil {
			return nil, err
		}
		if ms := float64(time.Since(start)) / float64(time.Millisecond); rec.ColdRebuildMS == 0 || ms < rec.ColdRebuildMS {
			rec.ColdRebuildMS = ms
		}
	}
	if rec.IncrementalMS > 0 {
		rec.Speedup = rec.ColdRebuildMS / rec.IncrementalMS
	}
	if entries := int64(len(gw.Col)); entries > 0 {
		rec.DirtyFraction = float64(rec.SpillEntries) / float64(entries)
	}
	return rec, nil
}
