package bench

import (
	"fmt"
	"io"

	"ridgewalker/internal/baselines"
	"ridgewalker/internal/exec"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/walk"
)

var (
	paperFig9a = map[string]float64{"WG": 18.7, "CP": 21.1, "AS": 10.9, "LJ": 9.5, "AB": 8.9, "UK": 8.8}
	paperFig9b = map[string]float64{"WG": 3.1, "CP": 7.6, "AS": 5.9, "LJ": 3.7, "AB": 4.3, "UK": 4.7}
	paperFig9c = map[string]float64{"WG": 8.7, "CP": 16.7, "AS": 22.9, "LJ": 8.9, "AB": 10.0, "UK": 11.0}
	paperFig9d = map[string]float64{"WG": 1.4, "CP": 2.2, "AS": 1.6, "LJ": 1.7, "AB": 1.3, "UK": 1.4}
)

func init() {
	register(Experiment{ID: "fig9a", Title: "Fig. 9a: PPR speedup over gSampler (H100)",
		Run: func(c *Context, w io.Writer) error {
			return gSamplerComparison(c, w, "Fig. 9a — PPR vs gSampler", walk.PPR, paperFig9a)
		}})
	register(Experiment{ID: "fig9b", Title: "Fig. 9b: URW speedup over gSampler (H100)",
		Run: func(c *Context, w io.Writer) error {
			return gSamplerComparison(c, w, "Fig. 9b — URW vs gSampler", walk.URW, paperFig9b)
		}})
	register(Experiment{ID: "fig9c", Title: "Fig. 9c: DeepWalk speedup over gSampler (H100)",
		Run: func(c *Context, w io.Writer) error {
			return gSamplerComparison(c, w, "Fig. 9c — DeepWalk vs gSampler", walk.DeepWalk, paperFig9c)
		}})
	register(Experiment{ID: "fig9d", Title: "Fig. 9d: Node2Vec speedup over gSampler (H100)",
		Run: func(c *Context, w io.Writer) error {
			return gSamplerComparison(c, w, "Fig. 9d — Node2Vec (rejection) vs gSampler", walk.Node2Vec, paperFig9d)
		}})
	register(Experiment{ID: "fig10", Title: "Fig. 10: RMAT balanced vs Graph500 (DeepWalk)",
		Run: runFig10})
}

func gSamplerComparison(c *Context, w io.Writer, title string, alg walk.Algorithm, paper map[string]float64) error {
	t := newTable(w, title+" (RidgeWalker on U55C)")
	t.row("graph", "gSampler MStep/s", "RidgeWalker MStep/s", "speedup", "paper speedup")
	for _, name := range []string{"WG", "CP", "AS", "LJ", "AB", "UK"} {
		g, err := c.Twin(name)
		if err != nil {
			return err
		}
		gg := g
		if alg == walk.DeepWalk {
			gg = Weighted(g)
		}
		wcfg, qs, err := c.workload(gg, alg)
		if err != nil {
			return err
		}
		// The twins are scaled; the cache-fit decision uses the original
		// dataset's footprint (WG ~48 MB nearly fits H100's 50 MB L2; the
		// rest do not), and the degree skew uses a power-law-scale CV² the
		// scaled twins compress away.
		gpu := baselines.DefaultH100()
		gpu.WorkingSetBytes, err = paperFootprint(name, alg == walk.DeepWalk)
		if err != nil {
			return err
		}
		gpu.SkewCV2Override = 20
		gr, err := runModel("gsampler", gg, qs, exec.Config{Walk: wcfg, GPU: &gpu})
		if err != nil {
			return err
		}
		st, err := runRidgeWalker(gg, wcfg, hbm.U55C, qs)
		if err != nil {
			return err
		}
		t.row(name, gr.ThroughputMSteps, st.ThroughputMSteps(),
			fmt.Sprintf("%.1fx", st.ThroughputMSteps()/gr.ThroughputMSteps),
			fmt.Sprintf("%.1fx", paper[name]))
	}
	return t.flush()
}

// runFig10 compares DeepWalk on synthetic RMAT graphs under the balanced
// and Graph500 initiators. The paper's SC16/SC24 scales are represented at
// Shrink-reduced sizes (the label records the scale actually run); the
// phenomenon under test — gSampler collapsing on skewed graphs while
// RidgeWalker holds steady — is scale-independent.
func runFig10(c *Context, w io.Writer) error {
	t := newTable(w, "Fig. 10 — RMAT DeepWalk: gSampler (H100) vs RidgeWalker (U55C)")
	t.row("config", "initiator", "gSampler MStep/s", "RidgeWalker MStep/s", "winner")
	small := 16 - c.Opts.Shrink
	large := small + 2
	type point struct {
		scale, ef int
		balanced  bool
	}
	points := []point{
		{small, 8, true}, {small, 32, true}, {large, 8, true}, {large, 32, true},
		{small, 8, false}, {small, 32, false}, {large, 8, false}, {large, 32, false},
	}
	for _, pt := range points {
		var cfg graph.RMATConfig
		label := "Graph500 (a=0.57)"
		if pt.balanced {
			cfg = graph.Balanced(pt.scale, pt.ef, c.Opts.Seed)
			label = "balanced (0.25^4)"
		} else {
			cfg = graph.Graph500(pt.scale, pt.ef, c.Opts.Seed)
		}
		g, err := graph.GenerateRMAT(cfg)
		if err != nil {
			return err
		}
		gw := Weighted(g)
		wcfg, qs, err := c.workload(gw, walk.DeepWalk)
		if err != nil {
			return err
		}
		// Small points represent the paper's SC16 (L2-resident); large
		// points represent SC24, which busts the 50 MB L2 by ~40×.
		gpu := baselines.DefaultH100()
		gpu.WorkingSetBytes = gw.MemoryFootprintBytes() << c.Opts.Shrink
		if pt.scale == large {
			gpu.WorkingSetBytes <<= 6
		}
		gr, err := runModel("gsampler", gw, qs, exec.Config{Walk: wcfg, GPU: &gpu})
		if err != nil {
			return err
		}
		st, err := runRidgeWalker(gw, wcfg, hbm.U55C, qs)
		if err != nil {
			return err
		}
		winner := "RidgeWalker"
		if gr.ThroughputMSteps > st.ThroughputMSteps() {
			winner = "gSampler"
		}
		t.row(fmt.Sprintf("SC%d-%d", pt.scale, pt.ef), label,
			gr.ThroughputMSteps, st.ThroughputMSteps(), winner)
	}
	fmt.Fprintf(w, "paper: balanced SC24-32 gSampler 9473 vs RidgeWalker ~2241; Graph500 gSampler 592 vs RidgeWalker ~2130\n")
	fmt.Fprintf(w, "H100 random-access upper bound: %.0f MStep/s\n",
		baselines.DefaultH100().RandomAccessGBs*1e9/8/1e6)
	return t.flush()
}
