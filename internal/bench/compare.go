package bench

import (
	"fmt"
	"sort"
)

// ComparePerf diffs a freshly measured PerfReport against a checked-in
// baseline and reports throughput regressions: every baseline record with
// a matching fresh record (same graph, workload, backend, algorithm,
// shards, cohort, and GOMAXPROCS) whose fresh throughput falls more than
// tol below the baseline produces one regression line. It returns the
// regression descriptions (empty means pass) and the number of record
// pairs actually compared — callers should treat zero comparisons as a
// configuration mismatch, not a pass.
//
// By default throughput is compared in cpu-normalized form: each
// record's steps/sec is divided by the same report's flat-cpu record for
// the same algorithm and GOMAXPROCS before comparison, so absolute
// machine speed cancels out and the gate is meaningful across runner
// generations (a shared-CI runner being 2× slower than the baseline
// machine does not fail the build, the sharded backend regressing
// relative to cpu does). absolute switches to raw steps/sec comparison
// for same-machine trend tracking.
func ComparePerf(baseline, fresh *PerfReport, tol float64, absolute bool) (regressions []string, compared int) {
	if tol <= 0 {
		tol = 0.15
	}
	type key struct {
		graph      string
		queries    int
		walkLength int
		backend    string
		algorithm  string
		shards     int
		cohort     int
		procs      int
		tiered     bool
		hub        bool
	}
	recKey := func(rep *PerfReport, r PerfRecord) key {
		return key{
			graph:      r.Graph,
			queries:    rep.Queries,
			walkLength: rep.WalkLength,
			backend:    r.Backend,
			algorithm:  r.Algorithm,
			shards:     r.Shards,
			cohort:     r.Cohort,
			procs:      r.GoMaxProcs,
			// Budget-constrained (tiered) records compare only against
			// tiered records; the budget value itself is auto-derived from
			// the graph, so the bool is the stable part of the identity.
			tiered: r.MemBudget != 0,
			hub:    r.HubWorkload,
		}
	}
	// cpuBase indexes each report's flat-cpu throughput per (algorithm,
	// procs, workload) for normalization — hub-workload records normalize
	// against the hub-workload cpu run, which walks different traffic.
	cpuBase := func(rep *PerfReport) map[[3]interface{}]float64 {
		m := map[[3]interface{}]float64{}
		for _, r := range rep.Records {
			if r.Backend == "cpu" && r.Shards == 0 && r.MemBudget == 0 {
				m[[3]interface{}{r.Algorithm, r.GoMaxProcs, r.HubWorkload}] = r.StepsPerSec
			}
		}
		return m
	}
	baseCPU, freshCPU := cpuBase(baseline), cpuBase(fresh)
	value := func(r PerfRecord, cpu map[[3]interface{}]float64) (float64, bool) {
		if absolute {
			return r.StepsPerSec, true
		}
		if r.Backend == "cpu" && r.Shards == 0 && r.MemBudget == 0 {
			// The normalization anchor is 1.0 by construction; nothing to
			// compare in normalized mode.
			return 0, false
		}
		b := cpu[[3]interface{}{r.Algorithm, r.GoMaxProcs, r.HubWorkload}]
		if b <= 0 {
			return 0, false
		}
		return r.StepsPerSec / b, true
	}
	freshByKey := map[key]PerfRecord{}
	for _, r := range fresh.Records {
		freshByKey[recKey(fresh, r)] = r
	}
	var missing []string
	for _, br := range baseline.Records {
		fr, ok := freshByKey[recKey(baseline, br)]
		if !ok {
			// Record the gap instead of silently narrowing coverage: a
			// configuration dropped from the sweep would otherwise exit
			// the gate unnoticed while the remaining matches keep CI
			// green. Reported as a regression only when the workloads
			// otherwise overlap (compared > 0) — fully disjoint reports
			// are the caller's compared==0 mismatch case.
			missing = append(missing, fmt.Sprintf(
				"%s %s p%d: present in baseline but missing from the fresh report (configuration dropped from the sweep?)",
				br.configName(), br.Algorithm, br.GoMaxProcs))
			continue
		}
		bv, bok := value(br, baseCPU)
		fv, fok := value(fr, freshCPU)
		if !bok || !fok {
			continue
		}
		compared++
		if fv < bv*(1-tol) {
			unit := "×cpu"
			if absolute {
				unit = "steps/s"
			}
			regressions = append(regressions, fmt.Sprintf(
				"%s %s p%d: %.3g %s → %.3g %s (%.1f%% drop, tolerance %.0f%%)",
				br.configName(), br.Algorithm, br.GoMaxProcs,
				bv, unit, fv, unit, 100*(1-fv/bv), 100*tol))
		}
	}
	if compared > 0 {
		regressions = append(regressions, missing...)
	}
	if msg := compareMutation(baseline, fresh); msg != "" {
		regressions = append(regressions, msg)
		compared++
	}
	pmsgs, pcompared := comparePlanner(baseline, fresh)
	regressions = append(regressions, pmsgs...)
	compared += pcompared
	smsgs, scompared := compareServe(baseline, fresh)
	regressions = append(regressions, smsgs...)
	compared += scompared
	sort.Strings(regressions)
	return regressions, compared
}

// mutationMinSpeedup is the hard floor on the incremental-maintenance
// advantage (cold rebuild latency over incremental derive latency). The
// number prices the structural claim, not the machine: rebuilding ~100
// dirty rows of a million-edge store runs orders of magnitude faster
// than the O(E) cold build, so any honest implementation clears 5× with
// a huge margin, while an implementation that silently degraded to O(E)
// maintenance sits at ~1×. A relative tolerance would be the wrong gate
// here — the ratio of a µs-scale to an ms-scale measurement jitters far
// more run-to-run than the throughput records do.
const mutationMinSpeedup = 5.0

// compareMutation gates the dynamic-graph maintenance record: present in
// the baseline means the fresh report must carry it too, and its
// incremental speedup must clear the structural floor.
func compareMutation(baseline, fresh *PerfReport) string {
	bm := baseline.Mutation
	if bm == nil {
		return ""
	}
	fm := fresh.Mutation
	if fm == nil {
		return "mutation: present in baseline but missing from the fresh report (measurement dropped from the sweep?)"
	}
	if fm.Speedup < mutationMinSpeedup {
		return fmt.Sprintf(
			"mutation: incremental sampler maintenance %.1fx over cold rebuild (floor %.0fx) — dirty-row rebuild has degraded toward O(E)",
			fm.Speedup, mutationMinSpeedup)
	}
	return ""
}

// plannerMaxRegret caps how far the "auto" backend may fall below the
// best hand-picked configuration in any {algorithm × procs} cell: 10%,
// the acceptance criterion. Like the mutation floor, this is a gate on
// the fresh report alone — regret is already a within-run ratio, so
// machine speed cancels out by construction and no baseline record is
// needed to evaluate it.
const plannerMaxRegret = 0.10

// plannerCrossoverFactor is the empirical-parallelism threshold for the
// shard-crossover check: only when the cell's best sharded configuration
// beats its best unsharded one by more than this factor does the runner
// demonstrably have the parallelism that makes sharding the right call —
// and then the planner must have picked a sharded plan. Below it (and on
// single-core cells, where p1 sharding always loses) the check is
// skipped; WritePlannerTable logs each skip with its reason.
const plannerCrossoverFactor = 1.2

// comparePlanner gates the planner cells: present in the baseline means
// the fresh report must carry them too; each fresh cell's regret must
// stay under the cap; and cells with demonstrated parallel advantage
// must have resolved to a sharded plan.
func comparePlanner(baseline, fresh *PerfReport) (msgs []string, compared int) {
	if len(baseline.Planner) > 0 && len(fresh.Planner) == 0 {
		return []string{"planner: cells present in baseline but missing from the fresh report (sweep dropped?)"}, 1
	}
	for _, p := range fresh.Planner {
		if p.BestManualStepsPerSec <= 0 {
			continue
		}
		compared++
		if p.Regret > plannerMaxRegret {
			msgs = append(msgs, fmt.Sprintf(
				"planner %s p%d: auto chose %s at %.3g steps/s, best manual %s at %.3g — %.1f%% regret (cap %.0f%%)",
				p.Algorithm, p.GoMaxProcs, p.Chosen, p.AutoStepsPerSec,
				p.BestManual, p.BestManualStepsPerSec, 100*p.Regret, 100*plannerMaxRegret))
		}
		if p.GoMaxProcs > 1 &&
			p.BestShardedStepsPerSec > p.BestUnshardedStepsPerSec*plannerCrossoverFactor &&
			p.ChosenShards <= 1 {
			msgs = append(msgs, fmt.Sprintf(
				"planner %s p%d: sharding wins %.2fx on this runner but the plan (%s) is unsharded — shard crossover missed",
				p.Algorithm, p.GoMaxProcs,
				p.BestShardedStepsPerSec/p.BestUnshardedStepsPerSec, p.Chosen))
		}
	}
	return msgs, compared
}

// Serving-gate constants. Like the planner regret cap, these gate the
// fresh report alone — every number is a within-run ratio, so machine
// speed cancels out and no baseline value is compared. The baseline's
// role is presence detection: a baseline with a serve section pins the
// measurement into every future report.
const (
	// serveOverloadFactor is the acceptance operating point: 2× the
	// measured saturation load.
	serveOverloadFactor = 2.0
	// serveGoodputTolerance bounds how far admitted goodput at the
	// overload point may fall below the saturation-point goodput (the
	// acceptance criterion's 15%): overload must shed the excess, not
	// collapse the work that was admitted.
	serveGoodputTolerance = 0.15
	// serveShedLatencyRatio caps shed-rejection p99 as a fraction of the
	// saturation-point admitted p50 — "fail fast" means a rejection costs
	// well under one service time. The true ratio is ~1000× (a mutex
	// check against milliseconds of walking), so 0.5 is a loose
	// structural gate, not a tuned threshold.
	serveShedLatencyRatio = 0.5
	// serveMinShedSamples is the minimum shed count for the fail-fast
	// latency gate: a p99 over a handful of samples is noise.
	serveMinShedSamples = 5
)

// compareServe gates the serving measurement: present in the baseline
// means the fresh report must carry it too; at 2× saturation the fresh
// run must actually shed, hold admitted goodput within tolerance of the
// saturation point, and reject at well under one service time.
func compareServe(baseline, fresh *PerfReport) (msgs []string, compared int) {
	if baseline.Serve == nil {
		return nil, 0
	}
	fs := fresh.Serve
	if fs == nil {
		return []string{"serve: present in baseline but missing from the fresh report (harness dropped from the sweep?)"}, 1
	}
	point := func(rec *ServeRecord, f float64) *ServePoint {
		for i := range rec.Points {
			if rec.Points[i].LoadFactor == f {
				return &rec.Points[i]
			}
		}
		return nil
	}
	over := point(fs, serveOverloadFactor)
	sat := point(fs, 1.0)
	if over == nil || sat == nil {
		return []string{fmt.Sprintf("serve: fresh report lacks the 1.0x/%.1fx load points", serveOverloadFactor)}, 1
	}
	compared++
	if over.Shed == 0 {
		msgs = append(msgs, fmt.Sprintf(
			"serve: no requests shed at %.0fx saturation (offered %.0f rps, %d admitted) — admission control is not engaging under overload",
			serveOverloadFactor, over.OfferedRPS, over.Admitted))
	}
	if sat.GoodputRPS > 0 && over.GoodputRPS < sat.GoodputRPS*(1-serveGoodputTolerance) {
		msgs = append(msgs, fmt.Sprintf(
			"serve: goodput at %.0fx load is %.0f rps, %.1f%% below the saturation point's %.0f rps (tolerance %.0f%%) — overload is collapsing admitted work instead of shedding excess",
			serveOverloadFactor, over.GoodputRPS, 100*(1-over.GoodputRPS/sat.GoodputRPS),
			sat.GoodputRPS, 100*serveGoodputTolerance))
	}
	if over.Shed >= serveMinShedSamples && sat.P50MS > 0 && over.ShedP99MS >= sat.P50MS*serveShedLatencyRatio {
		msgs = append(msgs, fmt.Sprintf(
			"serve: shed p99 %.3f ms at %.0fx load vs admitted p50 %.3f ms — rejections are not failing fast (cap %.0f%% of a service time)",
			over.ShedP99MS, serveOverloadFactor, sat.P50MS, 100*serveShedLatencyRatio))
	}
	return msgs, compared
}
