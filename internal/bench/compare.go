package bench

import (
	"fmt"
	"sort"
)

// ComparePerf diffs a freshly measured PerfReport against a checked-in
// baseline and reports throughput regressions: every baseline record with
// a matching fresh record (same graph, workload, backend, algorithm,
// shards, cohort, and GOMAXPROCS) whose fresh throughput falls more than
// tol below the baseline produces one regression line. It returns the
// regression descriptions (empty means pass) and the number of record
// pairs actually compared — callers should treat zero comparisons as a
// configuration mismatch, not a pass.
//
// By default throughput is compared in cpu-normalized form: each
// record's steps/sec is divided by the same report's flat-cpu record for
// the same algorithm and GOMAXPROCS before comparison, so absolute
// machine speed cancels out and the gate is meaningful across runner
// generations (a shared-CI runner being 2× slower than the baseline
// machine does not fail the build, the sharded backend regressing
// relative to cpu does). absolute switches to raw steps/sec comparison
// for same-machine trend tracking.
func ComparePerf(baseline, fresh *PerfReport, tol float64, absolute bool) (regressions []string, compared int) {
	if tol <= 0 {
		tol = 0.15
	}
	type key struct {
		graph      string
		queries    int
		walkLength int
		backend    string
		algorithm  string
		shards     int
		cohort     int
		procs      int
		tiered     bool
		hub        bool
	}
	recKey := func(rep *PerfReport, r PerfRecord) key {
		return key{
			graph:      r.Graph,
			queries:    rep.Queries,
			walkLength: rep.WalkLength,
			backend:    r.Backend,
			algorithm:  r.Algorithm,
			shards:     r.Shards,
			cohort:     r.Cohort,
			procs:      r.GoMaxProcs,
			// Budget-constrained (tiered) records compare only against
			// tiered records; the budget value itself is auto-derived from
			// the graph, so the bool is the stable part of the identity.
			tiered: r.MemBudget != 0,
			hub:    r.HubWorkload,
		}
	}
	// cpuBase indexes each report's flat-cpu throughput per (algorithm,
	// procs, workload) for normalization — hub-workload records normalize
	// against the hub-workload cpu run, which walks different traffic.
	cpuBase := func(rep *PerfReport) map[[3]interface{}]float64 {
		m := map[[3]interface{}]float64{}
		for _, r := range rep.Records {
			if r.Backend == "cpu" && r.Shards == 0 && r.MemBudget == 0 {
				m[[3]interface{}{r.Algorithm, r.GoMaxProcs, r.HubWorkload}] = r.StepsPerSec
			}
		}
		return m
	}
	baseCPU, freshCPU := cpuBase(baseline), cpuBase(fresh)
	value := func(r PerfRecord, cpu map[[3]interface{}]float64) (float64, bool) {
		if absolute {
			return r.StepsPerSec, true
		}
		if r.Backend == "cpu" && r.Shards == 0 && r.MemBudget == 0 {
			// The normalization anchor is 1.0 by construction; nothing to
			// compare in normalized mode.
			return 0, false
		}
		b := cpu[[3]interface{}{r.Algorithm, r.GoMaxProcs, r.HubWorkload}]
		if b <= 0 {
			return 0, false
		}
		return r.StepsPerSec / b, true
	}
	freshByKey := map[key]PerfRecord{}
	for _, r := range fresh.Records {
		freshByKey[recKey(fresh, r)] = r
	}
	var missing []string
	for _, br := range baseline.Records {
		fr, ok := freshByKey[recKey(baseline, br)]
		if !ok {
			// Record the gap instead of silently narrowing coverage: a
			// configuration dropped from the sweep would otherwise exit
			// the gate unnoticed while the remaining matches keep CI
			// green. Reported as a regression only when the workloads
			// otherwise overlap (compared > 0) — fully disjoint reports
			// are the caller's compared==0 mismatch case.
			missing = append(missing, fmt.Sprintf(
				"%s %s p%d: present in baseline but missing from the fresh report (configuration dropped from the sweep?)",
				br.configName(), br.Algorithm, br.GoMaxProcs))
			continue
		}
		bv, bok := value(br, baseCPU)
		fv, fok := value(fr, freshCPU)
		if !bok || !fok {
			continue
		}
		compared++
		if fv < bv*(1-tol) {
			unit := "×cpu"
			if absolute {
				unit = "steps/s"
			}
			regressions = append(regressions, fmt.Sprintf(
				"%s %s p%d: %.3g %s → %.3g %s (%.1f%% drop, tolerance %.0f%%)",
				br.configName(), br.Algorithm, br.GoMaxProcs,
				bv, unit, fv, unit, 100*(1-fv/bv), 100*tol))
		}
	}
	if compared > 0 {
		regressions = append(regressions, missing...)
	}
	if msg := compareMutation(baseline, fresh); msg != "" {
		regressions = append(regressions, msg)
		compared++
	}
	sort.Strings(regressions)
	return regressions, compared
}

// mutationMinSpeedup is the hard floor on the incremental-maintenance
// advantage (cold rebuild latency over incremental derive latency). The
// number prices the structural claim, not the machine: rebuilding ~100
// dirty rows of a million-edge store runs orders of magnitude faster
// than the O(E) cold build, so any honest implementation clears 5× with
// a huge margin, while an implementation that silently degraded to O(E)
// maintenance sits at ~1×. A relative tolerance would be the wrong gate
// here — the ratio of a µs-scale to an ms-scale measurement jitters far
// more run-to-run than the throughput records do.
const mutationMinSpeedup = 5.0

// compareMutation gates the dynamic-graph maintenance record: present in
// the baseline means the fresh report must carry it too, and its
// incremental speedup must clear the structural floor.
func compareMutation(baseline, fresh *PerfReport) string {
	bm := baseline.Mutation
	if bm == nil {
		return ""
	}
	fm := fresh.Mutation
	if fm == nil {
		return "mutation: present in baseline but missing from the fresh report (measurement dropped from the sweep?)"
	}
	if fm.Speedup < mutationMinSpeedup {
		return fmt.Sprintf(
			"mutation: incremental sampler maintenance %.1fx over cold rebuild (floor %.0fx) — dirty-row rebuild has degraded toward O(E)",
			fm.Speedup, mutationMinSpeedup)
	}
	return ""
}
