package bench

import (
	"fmt"
	"io"

	"ridgewalker/internal/exec"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/queuing"
	"ridgewalker/internal/resource"
	"ridgewalker/internal/walk"
)

// Paper Fig. 11 speedups over the double-disabled baseline.
var (
	paperFig11Sched = map[string]float64{"WG": 3.6, "CP": 4.1, "AS": 4.8, "LJ": 1.6, "AB": 4.3, "UK": 4.7}
	paperFig11Async = map[string]float64{"WG": 6.8, "CP": 7.1, "AS": 10.2, "LJ": 14.7, "AB": 6.9, "UK": 8.2}
	paperFig11Full  = map[string]float64{"WG": 12.4, "CP": 14.1, "AS": 16.7, "LJ": 16.2, "AB": 16.7, "UK": 16.0}
)

func init() {
	register(Experiment{ID: "fig11", Title: "Fig. 11: ablation breakdown (URW, U55C)", Run: runFig11})
	register(Experiment{ID: "tab3", Title: "Table III: URW across FPGA platforms", Run: runTab3})
	register(Experiment{ID: "tab4", Title: "Table IV: resource utilization and frequency (U55C)", Run: runTab4})
	register(Experiment{ID: "obs2", Title: "Obs. #2: LightRW bubble ratio under early termination", Run: runObs2})
	register(Experiment{ID: "micro", Title: "§VIII-D microbench: Theorem VI.1 queue-depth sweep", Run: runMicro})
}

func runFig11(c *Context, w io.Writer) error {
	t := newTable(w, "Fig. 11 — breakdown of gains (URW, normalized to Eq.(1) peak, U55C)")
	t.row("graph", "baseline", "+sched", "+async", "full",
		"sched x (paper)", "async x (paper)", "full x (paper)")
	for _, name := range []string{"WG", "CP", "AS", "LJ", "AB", "UK"} {
		g, err := c.Twin(name)
		if err != nil {
			return err
		}
		wcfg, qs, err := c.workload(g, walk.URW)
		if err != nil {
			return err
		}
		var util [4]float64
		for i, m := range []struct{ async, dyn bool }{
			{false, false}, {false, true}, {true, false}, {true, true},
		} {
			m := m
			st, err := runSim("ridgewalker", g, wcfg, hbm.U55C, qs, func(cfg *exec.Config) {
				cfg.DisableAsync = !m.async
				cfg.DisableDynamicSched = !m.dyn
			})
			if err != nil {
				return err
			}
			util[i] = st.Eq1Utilization()
		}
		t.row(name,
			fmt.Sprintf("%.3f", util[0]), fmt.Sprintf("%.3f", util[1]),
			fmt.Sprintf("%.3f", util[2]), fmt.Sprintf("%.3f", util[3]),
			fmt.Sprintf("%.1fx (%.1fx)", util[1]/util[0], paperFig11Sched[name]),
			fmt.Sprintf("%.1fx (%.1fx)", util[2]/util[0], paperFig11Async[name]),
			fmt.Sprintf("%.1fx (%.1fx)", util[3]/util[0], paperFig11Full[name]))
	}
	return t.flush()
}

// paperTab3 holds Table III's published rows.
var paperTab3 = map[string][2]float64{
	"U250": {258, 81}, "VCK5000": {202, 87}, "U50": {1463, 88}, "U55C": {2098, 88},
}

func runTab3(c *Context, w io.Writer) error {
	t := newTable(w, "Table III — average URW throughput across datasets by platform")
	t.row("platform", "memory", "chans", "MStep/s", "BW util", "paper MStep/s", "paper util")
	for _, p := range hbm.Platforms {
		var sumT, sumU float64
		n := 0
		for _, name := range []string{"WG", "CP", "AS", "LJ", "AB", "UK"} {
			g, err := c.Twin(name)
			if err != nil {
				return err
			}
			wcfg, qs, err := c.workload(g, walk.URW)
			if err != nil {
				return err
			}
			st, err := runRidgeWalker(g, wcfg, p, qs)
			if err != nil {
				return err
			}
			sumT += st.ThroughputMSteps()
			sumU += st.Eq1Utilization()
			n++
		}
		paper := paperTab3[p.Name]
		t.row(p.Name, p.Memory, p.Channels,
			sumT/float64(n), fmt.Sprintf("%.0f%%", 100*sumU/float64(n)),
			paper[0], fmt.Sprintf("%.0f%%", paper[1]))
	}
	return t.flush()
}

func runTab4(c *Context, w io.Writer) error {
	t := newTable(w, "Table IV — resource consumption and frequency on U55C (16 pipelines)")
	t.row("app", "LUTs", "REGs", "BRAMs", "DSPs", "freq", "paper (LUT/REG/BRAM/DSP)")
	paper := map[walk.Algorithm]string{
		walk.PPR:      "61.1% / 29.8% / 19.5% / 2.2%",
		walk.URW:      "50.1% / 24.0% / 19.5% / 2.2%",
		walk.DeepWalk: "67.5% / 32.3% / 39.1% / 4.4%",
		walk.Node2Vec: "79.1% / 41.6% / 36.0% / 7.3%",
	}
	for _, alg := range []walk.Algorithm{walk.PPR, walk.URW, walk.DeepWalk, walk.Node2Vec} {
		u, err := resource.Estimate(alg, 16, resource.U55C)
		if err != nil {
			return err
		}
		lut, reg, bram, dsp := u.Percent(resource.U55C)
		t.row(alg.String(),
			fmt.Sprintf("%.1f%%", lut), fmt.Sprintf("%.1f%%", reg),
			fmt.Sprintf("%.1f%%", bram), fmt.Sprintf("%.1f%%", dsp),
			fmt.Sprintf("%dMHz", u.FrequencyMHz), paper[alg])
	}
	su := resource.SchedulerStandalone(16)
	lut, _, _, _ := su.Percent(resource.U55C)
	fmt.Fprintf(w, "standalone zero-bubble scheduler: %.1f%% LUTs at %d MHz (paper: 1.8%% at 450 MHz)\n",
		lut, su.FrequencyMHz)
	return t.flush()
}

// runObs2 measures LightRW's bubble ratio on an early-terminating workload
// (§III Observation #2 reports up to 37%).
func runObs2(c *Context, w io.Writer) error {
	t := newTable(w, "Obs. #2 — LightRW bubble ratio under early termination (MetaPath, U250)")
	t.row("graph", "bubble ratio", "paper bound")
	for _, name := range []string{"WG", "CP"} {
		g, err := c.Twin(name)
		if err != nil {
			return err
		}
		gw := Labeled(Weighted(g), 3)
		wcfg, qs, err := c.workload(gw, walk.MetaPath)
		if err != nil {
			return err
		}
		lr, err := runModel("lightrw", gw, qs, exec.Config{Walk: wcfg, Platform: hbm.U250})
		if err != nil {
			return err
		}
		t.row(name, fmt.Sprintf("%.1f%%", 100*lr.BubbleRatio), "up to 37%")
	}
	return t.flush()
}

// runMicro sweeps queue depth in the delayed-feedback dispatch model,
// validating Theorem VI.1's bound (§VIII-D).
func runMicro(c *Context, w io.Writer) error {
	t := newTable(w, "§VIII-D micro — bubbles vs per-pipeline queue depth (N=8, C=8, µ=0.5)")
	t.row("depth", "bubble ratio", "Theorem VI.1 verdict")
	need := queuing.MinDepth(8, 0.5, 8) / 8
	for _, depth := range []int{1, 2, 3, need, need + 3, 17} {
		res, err := queuing.SimulateFeedback(queuing.FeedbackSimConfig{
			Servers: 8, Depth: depth, FeedbackDelay: 8,
			MeanService: 2, Cycles: 60000, Backlogged: true, Seed: c.Opts.Seed,
		})
		if err != nil {
			return err
		}
		verdict := "below bound"
		if depth >= need {
			verdict = "at/above bound (zero-bubble)"
		}
		t.row(depth, fmt.Sprintf("%.2f%%", 100*res.BubbleRatio()), verdict)
	}
	return t.flush()
}
