package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// quickContext shrinks workloads so the full registry runs in test time.
func quickContext() *Context {
	return NewContext(Options{Shrink: 6, Queries: 250, WalkLength: 40, Seed: 42})
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig3a", "fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b", "fig9c", "fig9d", "fig10", "fig11",
		"tab3", "tab4", "obs2", "micro", "shard", "perf", "mutation",
		"planner", "serve",
	}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig9a")
	if err != nil || e.ID != "fig9a" {
		t.Fatalf("ByID(fig9a) = %+v, %v", e, err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestEveryExperimentRuns executes the entire registry at miniature scale —
// the end-to-end integration test of the whole repository. Experiments run
// in parallel (Context is concurrency-safe) to keep the default test loop
// fast; pass -short to skip them entirely.
func TestEveryExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow in -short mode")
	}
	c := quickContext()
	// Pre-generate the shared twins so parallel subtests start hot.
	for _, name := range []string{"WG", "CP", "AS", "LJ", "AB", "UK"} {
		if _, err := c.Twin(name); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			if err := e.Run(c, &buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 50 {
				t.Fatalf("%s produced implausibly short output: %q", e.ID, out)
			}
			if !strings.Contains(out, "==") {
				t.Fatalf("%s output missing table header", e.ID)
			}
		})
	}
}

// TestFig9SpeedupDirections asserts the headline result's shape at small
// scale: RidgeWalker beats the gSampler model on PPR for most graphs.
func TestFig9SpeedupDirections(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := quickContext()
	var buf bytes.Buffer
	e, err := ByID("fig9a")
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(c, &buf); err != nil {
		t.Fatal(err)
	}
	// Count data rows where the speedup column shows >= 1x.
	wins := 0
	rows := 0
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 5 || !strings.HasSuffix(fields[3], "x") {
			continue
		}
		rows++
		sp, err := strconv.ParseFloat(strings.TrimSuffix(fields[3], "x"), 64)
		if err == nil && sp >= 1 {
			wins++
		}
	}
	if rows < 6 {
		t.Fatalf("expected 6 graph rows, parsed %d:\n%s", rows, buf.String())
	}
	if wins < 4 {
		t.Fatalf("RidgeWalker won only %d/%d PPR comparisons:\n%s", wins, rows, buf.String())
	}
}
