package bench

import (
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

func TestWeightedDoesNotMutateOriginal(t *testing.T) {
	g := graph.SmallTestGraph()
	gw := Weighted(g)
	if g.Weighted() {
		t.Fatal("Weighted mutated the original graph")
	}
	if !gw.Weighted() {
		t.Fatal("copy not weighted")
	}
	// Topology is shared (shallow copy by design).
	if gw.NumEdges() != g.NumEdges() {
		t.Fatal("copy changed topology")
	}
}

func TestLabeledDoesNotMutateOriginal(t *testing.T) {
	g := graph.SmallTestGraph()
	gl := Labeled(g, 3)
	if g.Labels != nil {
		t.Fatal("Labeled mutated the original graph")
	}
	if gl.Labels == nil {
		t.Fatal("copy not labeled")
	}
}

func TestTwinCaching(t *testing.T) {
	c := NewContext(Options{Shrink: 7, Queries: 10, WalkLength: 5, Seed: 1})
	a, err := c.Twin("WG")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Twin("WG")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Twin did not cache")
	}
	if _, err := c.Twin("nope"); err == nil {
		t.Fatal("unknown twin accepted")
	}
}

func TestWorkloadScalesShortWalks(t *testing.T) {
	c := NewContext(Options{Shrink: 7, Queries: 100, WalkLength: 40, Seed: 1})
	g, err := c.Twin("CP") // sink-heavy: short walks
	if err != nil {
		t.Fatal(err)
	}
	_, qsShort, err := c.workload(g, walk.PPR)
	if err != nil {
		t.Fatal(err)
	}
	gSinkless := graph.SmallTestGraph()
	_, qsLong, err := c.workload(gSinkless, walk.URW)
	if err != nil {
		t.Fatal(err)
	}
	if len(qsShort) <= len(qsLong) {
		t.Fatalf("short-walk workload (%d queries) not scaled above long-walk (%d)",
			len(qsShort), len(qsLong))
	}
}

func TestPaperFootprint(t *testing.T) {
	// WG: 0.9M vertices × 8 + 5.1M edges × 4 ≈ 27.6 MB unweighted.
	b, err := paperFootprint("WG", false)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(900000*8 + 5100000*4)
	if b != want {
		t.Fatalf("paperFootprint(WG) = %d, want %d", b, want)
	}
	bw, _ := paperFootprint("WG", true)
	if bw <= b {
		t.Fatal("weighted footprint not larger")
	}
	if _, err := paperFootprint("nope", false); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestNewContextDefaults(t *testing.T) {
	c := NewContext(Options{})
	if c.Opts.Queries == 0 || c.Opts.WalkLength == 0 || c.Opts.Seed == 0 {
		t.Fatalf("defaults not applied: %+v", c.Opts)
	}
}
