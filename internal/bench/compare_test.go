package bench

import (
	"strings"
	"testing"
)

// perfFixture builds a report with a cpu baseline and one pipelined
// configuration per algorithm at two GOMAXPROCS levels. scale multiplies
// every throughput (simulating a faster/slower machine); pipelinedFactor
// sets the pipelined backend's speed relative to cpu.
func perfFixture(scale, pipelinedFactor float64) *PerfReport {
	rep := &PerfReport{
		Schema: 2, Graph: "rmat-15-graph500", Queries: 2000, WalkLength: 80,
		Procs: []int{1, 2}, Ratios: map[string]float64{},
	}
	for _, alg := range []string{"URW", "DeepWalk"} {
		for _, p := range []int{1, 2} {
			cpu := 1e6 * scale * float64(p)
			rep.Records = append(rep.Records,
				PerfRecord{Backend: "cpu", Algorithm: alg, Graph: rep.Graph,
					GoMaxProcs: p, StepsPerSec: cpu},
				PerfRecord{Backend: "cpu-pipelined", Algorithm: alg, Graph: rep.Graph,
					Cohort: 64, GoMaxProcs: p, StepsPerSec: cpu * pipelinedFactor},
				PerfRecord{Backend: "cpu-pipelined", Algorithm: alg, Graph: rep.Graph,
					Cohort: 64, Shards: 4, GoMaxProcs: p, StepsPerSec: cpu * pipelinedFactor * 1.1},
			)
		}
	}
	return rep
}

// TestComparePerfNormalizedIgnoresMachineSpeed: a uniformly 2× slower
// machine must not trip the normalized gate.
func TestComparePerfNormalizedIgnoresMachineSpeed(t *testing.T) {
	baseline := perfFixture(1.0, 2.0)
	fresh := perfFixture(0.5, 2.0) // everything half as fast, same shape
	regs, compared := ComparePerf(baseline, fresh, 0.15, false)
	if compared == 0 {
		t.Fatal("no records compared")
	}
	if len(regs) != 0 {
		t.Fatalf("uniform slowdown flagged as regression: %v", regs)
	}
}

// TestComparePerfCatchesRelativeRegression: the pipelined backend losing
// a third of its edge over cpu must be flagged, machine speed unchanged.
func TestComparePerfCatchesRelativeRegression(t *testing.T) {
	baseline := perfFixture(1.0, 2.0)
	fresh := perfFixture(1.0, 1.3)
	regs, compared := ComparePerf(baseline, fresh, 0.15, false)
	if compared == 0 {
		t.Fatal("no records compared")
	}
	if len(regs) == 0 {
		t.Fatal("35% relative regression not flagged")
	}
	for _, r := range regs {
		if !strings.Contains(r, "cpu-pipelined") {
			t.Fatalf("unexpected regression line: %s", r)
		}
	}
}

// TestComparePerfAbsolute: absolute mode flags the uniform slowdown the
// normalized mode forgives, and the cpu baseline itself participates.
func TestComparePerfAbsolute(t *testing.T) {
	baseline := perfFixture(1.0, 2.0)
	fresh := perfFixture(0.5, 2.0)
	regs, compared := ComparePerf(baseline, fresh, 0.15, true)
	if compared == 0 {
		t.Fatal("no records compared")
	}
	if len(regs) == 0 {
		t.Fatal("50% absolute slowdown not flagged in absolute mode")
	}
}

// TestComparePerfTolerance: drops inside the tolerance pass.
func TestComparePerfTolerance(t *testing.T) {
	baseline := perfFixture(1.0, 2.0)
	fresh := perfFixture(1.0, 2.0*0.9) // 10% relative drop
	regs, _ := ComparePerf(baseline, fresh, 0.15, false)
	if len(regs) != 0 {
		t.Fatalf("10%% drop flagged at 15%% tolerance: %v", regs)
	}
}

// TestComparePerfMismatchedConfigs: disjoint configurations compare
// nothing and say so.
func TestComparePerfMismatchedConfigs(t *testing.T) {
	baseline := perfFixture(1.0, 2.0)
	fresh := perfFixture(1.0, 2.0)
	for i := range fresh.Records {
		fresh.Records[i].Graph = "rmat-22-graph500" // different workload
	}
	regs, compared := ComparePerf(baseline, fresh, 0.15, false)
	if compared != 0 || len(regs) != 0 {
		t.Fatalf("mismatched workloads compared: %d pairs, %v", compared, regs)
	}
}

// TestComparePerfFlagsDroppedConfiguration: a configuration present in
// the baseline but absent from the fresh report must fail the gate, not
// silently exit its coverage.
func TestComparePerfFlagsDroppedConfiguration(t *testing.T) {
	baseline := perfFixture(1.0, 2.0)
	fresh := perfFixture(1.0, 2.0)
	kept := fresh.Records[:0]
	for _, r := range fresh.Records {
		if r.Shards != 4 {
			kept = append(kept, r)
		}
	}
	fresh.Records = kept
	regs, compared := ComparePerf(baseline, fresh, 0.15, false)
	if compared == 0 {
		t.Fatal("no records compared")
	}
	if len(regs) == 0 {
		t.Fatal("dropped cpu-pipelined-s4 configuration not flagged")
	}
	for _, r := range regs {
		if !strings.Contains(r, "missing from the fresh report") {
			t.Fatalf("unexpected regression line: %s", r)
		}
	}
}

// plannerFixture attaches one planner cell per procs level to a report.
// regret sets every cell's regret; sharded controls whether the chosen
// plan is sharded at p2.
func plannerFixture(rep *PerfReport, regret float64, sharded bool) {
	for _, p := range []int{1, 2} {
		best := 2.2e6 * float64(p)
		pr := PlannerRecord{
			Algorithm: "URW", Graph: rep.Graph, GoMaxProcs: p,
			Chosen: "cpu-pipelined c64", PlanSource: "calibrated",
			AutoStepsPerSec:          best * (1 - regret),
			BestManual:               "cpu-pipelined-s4",
			BestManualStepsPerSec:    best,
			BestUnshardedStepsPerSec: best / 2,
			BestShardedStepsPerSec:   best,
			Regret:                   regret,
		}
		if p == 1 {
			// Single-core cells have no sharded advantage to assert on.
			pr.BestShardedStepsPerSec = pr.BestUnshardedStepsPerSec * 0.8
			pr.BestManualStepsPerSec = pr.BestUnshardedStepsPerSec
		} else if sharded {
			pr.Chosen, pr.ChosenShards = "cpu-pipelined c64 s4", 4
		}
		rep.Planner = append(rep.Planner, pr)
	}
}

// TestComparePlannerRegretGate: regret under the cap passes, over fails,
// and the gate needs no baseline planner cells to evaluate a fresh one.
func TestComparePlannerRegretGate(t *testing.T) {
	baseline := perfFixture(1.0, 2.0)
	fresh := perfFixture(1.0, 2.0)
	plannerFixture(fresh, 0.05, true)
	regs, compared := ComparePerf(baseline, fresh, 0.15, false)
	if compared == 0 {
		t.Fatal("no records compared")
	}
	if len(regs) != 0 {
		t.Fatalf("5%% regret flagged at the 10%% cap: %v", regs)
	}
	over := perfFixture(1.0, 2.0)
	plannerFixture(over, 0.25, true)
	regs, _ = ComparePerf(baseline, over, 0.15, false)
	if len(regs) == 0 {
		t.Fatal("25% regret not flagged")
	}
	for _, r := range regs {
		if !strings.Contains(r, "regret") {
			t.Fatalf("unexpected regression line: %s", r)
		}
	}
}

// TestComparePlannerShardCrossover: a runner where sharding demonstrably
// wins at p2 must see a sharded plan; the p1 cell (sharding loses) and
// the advantage-free case are skipped, not failed.
func TestComparePlannerShardCrossover(t *testing.T) {
	baseline := perfFixture(1.0, 2.0)
	fresh := perfFixture(1.0, 2.0)
	plannerFixture(fresh, 0.02, false) // sharding wins 2x at p2, plan unsharded
	regs, _ := ComparePerf(baseline, fresh, 0.15, false)
	if len(regs) == 0 {
		t.Fatal("missed shard crossover not flagged")
	}
	for _, r := range regs {
		if !strings.Contains(r, "crossover") {
			t.Fatalf("unexpected regression line: %s", r)
		}
		if strings.Contains(r, "p1") {
			t.Fatalf("single-core cell must be skipped, not failed: %s", r)
		}
	}
	// No sharded advantage on this runner: check skipped entirely.
	flat := perfFixture(1.0, 2.0)
	plannerFixture(flat, 0.02, false)
	for i := range flat.Planner {
		flat.Planner[i].BestShardedStepsPerSec = flat.Planner[i].BestUnshardedStepsPerSec
	}
	regs, _ = ComparePerf(baseline, flat, 0.15, false)
	if len(regs) != 0 {
		t.Fatalf("crossover check fired without empirical sharded advantage: %v", regs)
	}
}

// TestComparePlannerFlagsDroppedCells: baseline planner cells missing
// from the fresh report fail the gate.
func TestComparePlannerFlagsDroppedCells(t *testing.T) {
	baseline := perfFixture(1.0, 2.0)
	plannerFixture(baseline, 0.02, true)
	fresh := perfFixture(1.0, 2.0)
	regs, _ := ComparePerf(baseline, fresh, 0.15, false)
	found := false
	for _, r := range regs {
		if strings.Contains(r, "planner") && strings.Contains(r, "missing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped planner cells not flagged: %v", regs)
	}
}
