package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"ridgewalker/internal/exec"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

func init() {
	register(Experiment{ID: "perf", Title: "Software-engine perf suite (machine-readable; see -json)",
		Run: func(c *Context, w io.Writer) error {
			rep, err := RunPerf(c)
			if err != nil {
				return err
			}
			return WritePerfTable(rep, w)
		}})
}

// PerfRecord is one measured engine configuration in the BENCH.json
// report. Steps/sec is wall-clock software throughput (the paper's
// MStep/s numerator over elapsed time); AllocsPerWalk is the measured
// heap-allocation count per served walk on the hot path (paths discarded),
// which must stay ~0 for the allocation-free engines.
type PerfRecord struct {
	Backend       string  `json:"backend"`
	Algorithm     string  `json:"algorithm"`
	Graph         string  `json:"graph"`
	Vertices      int     `json:"vertices"`
	Edges         int64   `json:"edges"`
	Shards        int     `json:"shards,omitempty"`
	Cohort        int     `json:"cohort,omitempty"`
	Queries       int     `json:"queries"`
	Steps         int64   `json:"steps"`
	WallSeconds   float64 `json:"wall_seconds"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	AllocsPerWalk float64 `json:"allocs_per_walk"`
}

// PerfReport is the BENCH.json schema: the perf trajectory record CI
// uploads per commit, and the input to cross-commit throughput tracking.
type PerfReport struct {
	Schema     int    `json:"schema"`
	Graph      string `json:"graph"`
	Vertices   int    `json:"vertices"`
	Edges      int64  `json:"edges"`
	Queries    int    `json:"queries"`
	WalkLength int    `json:"walk_length"`
	Seed       uint64 `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// Records holds one entry per backend × algorithm configuration.
	Records []PerfRecord `json:"records"`
	// Ratios normalizes key backends to the flat cpu baseline per
	// algorithm (steps/sec over steps/sec), e.g.
	// "cpu-pipelined/cpu URW": 1.31.
	Ratios map[string]float64 `json:"ratios"`
}

// perfConfigs lists the software-engine configurations the suite sweeps.
var perfConfigs = []struct {
	backend string
	shards  int
	cohort  int
}{
	{backend: "cpu"},
	{backend: "cpu-sharded"},
	{backend: "cpu-pipelined", cohort: exec.DefaultCohort},
	{backend: "cpu-pipelined", cohort: exec.DefaultCohort, shards: 4},
}

// RunPerf measures the software engines on an RMAT graph scaled by
// Options.Shrink (scale 22 at shrink 0 — the acceptance sweep's graph —
// down to a CI-friendly size at larger shrinks) and returns the report.
func RunPerf(c *Context) (*PerfReport, error) {
	scale := 22 - c.Opts.Shrink
	if scale < 10 {
		scale = 10
	}
	g, err := graph.GenerateRMAT(graph.Graph500(scale, 16, c.Opts.Seed))
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("rmat-%d-graph500", scale)
	rep := &PerfReport{
		Schema:     1,
		Graph:      name,
		Vertices:   g.NumVertices,
		Edges:      g.NumEdges(),
		WalkLength: c.Opts.WalkLength,
		Seed:       c.Opts.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Ratios:     map[string]float64{},
	}
	base := map[string]float64{} // algorithm → flat cpu steps/sec
	for _, alg := range []walk.Algorithm{walk.URW, walk.DeepWalk} {
		gw := g
		if alg == walk.DeepWalk {
			gw = Weighted(g)
		}
		wcfg := walk.DefaultConfig(alg)
		wcfg.WalkLength = c.Opts.WalkLength
		wcfg.Seed = c.Opts.Seed
		qs, err := walk.RandomQueries(gw, wcfg, c.Opts.Queries, c.Opts.Seed^0xabcd)
		if err != nil {
			return nil, err
		}
		rep.Queries = len(qs)
		for _, pc := range perfConfigs {
			rec, err := measure(pc.backend, gw, wcfg, qs, pc.shards, pc.cohort)
			if err != nil {
				return nil, err
			}
			rec.Graph, rec.Vertices, rec.Edges = name, g.NumVertices, g.NumEdges()
			rep.Records = append(rep.Records, rec)
			if pc.backend == "cpu" {
				base[rec.Algorithm] = rec.StepsPerSec
			} else if b := base[rec.Algorithm]; b > 0 && pc.shards == 0 {
				rep.Ratios[fmt.Sprintf("%s/cpu %s", pc.backend, rec.Algorithm)] =
					rec.StepsPerSec / b
			}
		}
	}
	return rep, nil
}

// measure runs one backend configuration once (after a small warm-up
// batch that also triggers lazy setup) and records wall-clock throughput
// and per-walk allocations.
func measure(backend string, g *graph.CSR, wcfg walk.Config, qs []walk.Query, shards, cohort int) (PerfRecord, error) {
	ses, err := exec.Open(backend, g, exec.Config{
		Walk: wcfg, Shards: shards, Cohort: cohort, DiscardPaths: true,
	})
	if err != nil {
		return PerfRecord{}, err
	}
	defer ses.Close()
	warm := len(qs) / 10
	if warm < 1 {
		warm = 1
	}
	if _, err := ses.Run(context.Background(), exec.Batch{Queries: qs[:warm]}); err != nil {
		return PerfRecord{}, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := ses.Run(context.Background(), exec.Batch{Queries: qs})
	el := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return PerfRecord{}, err
	}
	return PerfRecord{
		Backend:       backend,
		Algorithm:     wcfg.Algorithm.String(),
		Shards:        shards,
		Cohort:        cohort,
		Queries:       len(qs),
		Steps:         res.Steps,
		WallSeconds:   el.Seconds(),
		StepsPerSec:   float64(res.Steps) / el.Seconds(),
		AllocsPerWalk: float64(after.Mallocs-before.Mallocs) / float64(len(qs)),
	}, nil
}

// WritePerfTable renders the report as the usual aligned text table.
func WritePerfTable(rep *PerfReport, w io.Writer) error {
	t := newTable(w, fmt.Sprintf("Software-engine perf — %s (%d vertices, %d edges), %d queries × len %d",
		rep.Graph, rep.Vertices, rep.Edges, rep.Queries, rep.WalkLength))
	t.row("backend", "alg", "shards", "cohort", "MStep/s", "allocs/walk")
	for _, r := range rep.Records {
		t.row(r.Backend, r.Algorithm, r.Shards, r.Cohort, r.StepsPerSec/1e6, r.AllocsPerWalk)
	}
	if err := t.flush(); err != nil {
		return err
	}
	keys := make([]string, 0, len(rep.Ratios))
	for k := range rep.Ratios {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s: %.2fx\n", k, rep.Ratios[k])
	}
	return nil
}

// WritePerfJSON writes the report as indented JSON to path (BENCH.json).
func WritePerfJSON(rep *PerfReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
