package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"ridgewalker/internal/exec"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

func init() {
	register(Experiment{ID: "perf", Title: "Software-engine perf suite (machine-readable; see -json)",
		Run: func(c *Context, w io.Writer) error {
			rep, err := RunPerf(c)
			if err != nil {
				return err
			}
			return WritePerfTable(rep, w)
		}})
}

// PerfRecord is one measured engine configuration in the BENCH.json
// report. Steps/sec is wall-clock software throughput (the paper's
// MStep/s numerator over elapsed time); AllocsPerWalk is the measured
// heap-allocation count per served walk on the hot path (paths discarded),
// which must stay ~0 for the allocation-free engines. GoMaxProcs is the
// setting the record was measured under (the suite sweeps GOMAXPROCS ∈
// {1, N}); ParallelSpeedup, present on records with GoMaxProcs > 1, is
// this record's steps/sec over the same configuration's GOMAXPROCS=1
// record — the realized multi-core scaling. PreprocessMS is the session
// open cost — sampler construction (the flat alias store for weighted
// workloads), graph partitioning, layout building — and SamplerBytes the
// resident size of the session's registry-shared sampler state.
type PerfRecord struct {
	Backend         string  `json:"backend"`
	Algorithm       string  `json:"algorithm"`
	Graph           string  `json:"graph"`
	Vertices        int     `json:"vertices"`
	Edges           int64   `json:"edges"`
	Shards          int     `json:"shards,omitempty"`
	Cohort          int     `json:"cohort,omitempty"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	Queries         int     `json:"queries"`
	Steps           int64   `json:"steps"`
	WallSeconds     float64 `json:"wall_seconds"`
	StepsPerSec     float64 `json:"steps_per_sec"`
	AllocsPerWalk   float64 `json:"allocs_per_walk"`
	PreprocessMS    float64 `json:"preprocess_ms"`
	SamplerBytes    int64   `json:"sampler_bytes"`
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
}

// SamplerBuildRecord reports the weighted-sampler preprocessing
// measurement: the flat alias store built serially (workers=1) versus by
// the degree-partitioned worker pool (workers=NumCPU) over the suite's
// weighted graph. On single-core hosts the two are expected to be at
// parity (the pool buys nothing without hardware parallelism); the
// record exists so multi-core hosts capture the realized build speedup.
type SamplerBuildRecord struct {
	Graph      string  `json:"graph"`
	Vertices   int     `json:"vertices"`
	Edges      int64   `json:"edges"`
	Workers    int     `json:"workers"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	// Speedup is SerialMS / ParallelMS.
	Speedup float64 `json:"speedup"`
	// Bytes is the store's resident size (prob+alias arenas + locators).
	Bytes int64 `json:"sampler_bytes"`
}

// configName renders the record's engine configuration compactly
// ("cpu-pipelined-s4" for the sharded composition).
func (r PerfRecord) configName() string {
	if r.Shards > 0 {
		return fmt.Sprintf("%s-s%d", r.Backend, r.Shards)
	}
	return r.Backend
}

// PerfReport is the BENCH.json schema: the perf trajectory record CI
// uploads per commit, and the input to cross-commit throughput tracking.
type PerfReport struct {
	Schema     int    `json:"schema"`
	Graph      string `json:"graph"`
	Vertices   int    `json:"vertices"`
	Edges      int64  `json:"edges"`
	Queries    int    `json:"queries"`
	WalkLength int    `json:"walk_length"`
	Seed       uint64 `json:"seed"`
	// GoMaxProcs is the host's available processor count; Procs lists the
	// GOMAXPROCS settings the suite swept (each record carries its own).
	GoMaxProcs int   `json:"gomaxprocs"`
	Procs      []int `json:"procs"`
	// Records holds one entry per backend × algorithm × procs
	// configuration.
	Records []PerfRecord `json:"records"`
	// SamplerBuild is the alias-store preprocessing measurement, emitted
	// when the sweep includes DeepWalk (the workload whose sampler is the
	// O(E) flat alias store); other weighted workloads (node2vec's
	// reservoir) have no prebuilt store to measure.
	SamplerBuild *SamplerBuildRecord `json:"sampler_build,omitempty"`
	// Ratios normalizes each configuration to the flat cpu baseline per
	// algorithm at the same GOMAXPROCS (steps/sec over steps/sec), e.g.
	// "cpu-pipelined/cpu URW": 1.31 (GOMAXPROCS=1) or
	// "cpu-pipelined-s4/cpu URW @p4": 2.1 (GOMAXPROCS=4).
	Ratios map[string]float64 `json:"ratios"`
}

// perfConfigs lists the software-engine configurations the suite sweeps.
var perfConfigs = []struct {
	backend string
	shards  int
	cohort  int
}{
	{backend: "cpu"},
	{backend: "cpu-sharded"},
	{backend: "cpu-sharded", shards: 4},
	{backend: "cpu-pipelined", cohort: exec.DefaultCohort},
	{backend: "cpu-pipelined", cohort: exec.DefaultCohort, shards: 2},
	{backend: "cpu-pipelined", cohort: exec.DefaultCohort, shards: 4},
}

// perfProcs returns the GOMAXPROCS sweep: the configured list, or
// {1, NumCPU} deduplicated.
func perfProcs(opts Options) []int {
	if len(opts.Procs) > 0 {
		return opts.Procs
	}
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// perfAlgorithms returns the GRW workload sweep: the configured list, or
// {URW, DeepWalk}.
func perfAlgorithms(opts Options) ([]walk.Algorithm, error) {
	if len(opts.Algorithms) == 0 {
		return []walk.Algorithm{walk.URW, walk.DeepWalk}, nil
	}
	var out []walk.Algorithm
	for _, name := range opts.Algorithms {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "urw":
			out = append(out, walk.URW)
		case "ppr":
			out = append(out, walk.PPR)
		case "deepwalk":
			out = append(out, walk.DeepWalk)
		case "node2vec":
			out = append(out, walk.Node2Vec)
		default:
			return nil, fmt.Errorf("bench: unknown perf algorithm %q (have urw, ppr, deepwalk, node2vec)", name)
		}
	}
	return out, nil
}

// measureSamplerBuild times the flat alias store's construction over the
// weighted graph, serial versus the full worker pool, keeping the best
// of repeat repetitions of each.
func measureSamplerBuild(gw *graph.CSR, name string, repeat int) (*SamplerBuildRecord, error) {
	if repeat < 1 {
		repeat = 1
	}
	workers := runtime.NumCPU()
	// Pin GOMAXPROCS for the measurement: the caller's procs sweep may
	// have left it at any value (a sweep ending in 1 would run the
	// "parallel" build on a single P and report a bogus ~1.0x).
	prevProcs := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prevProcs)
	// One untimed warm-up so the serial measurement does not absorb the
	// first-touch page faults of the arena working set.
	if _, err := sampling.NewAliasSamplerWorkers(gw, workers); err != nil {
		return nil, err
	}
	best := func(w int) (float64, int64, error) {
		bestMS := math.Inf(1)
		var bytes int64
		for i := 0; i < repeat; i++ {
			start := time.Now()
			s, err := sampling.NewAliasSamplerWorkers(gw, w)
			if err != nil {
				return 0, 0, err
			}
			if ms := float64(time.Since(start)) / float64(time.Millisecond); ms < bestMS {
				bestMS = ms
			}
			bytes = s.MemoryFootprint()
		}
		return bestMS, bytes, nil
	}
	serial, bytes, err := best(1)
	if err != nil {
		return nil, err
	}
	parallel, _, err := best(workers)
	if err != nil {
		return nil, err
	}
	return &SamplerBuildRecord{
		Graph:      name,
		Vertices:   gw.NumVertices,
		Edges:      gw.NumEdges(),
		Workers:    workers,
		SerialMS:   serial,
		ParallelMS: parallel,
		Speedup:    serial / parallel,
		Bytes:      bytes,
	}, nil
}

// RunPerf measures the software engines on an RMAT graph scaled by
// Options.Shrink (scale 22 at shrink 0 — the acceptance sweep's graph —
// down to a CI-friendly size at larger shrinks) across the GOMAXPROCS
// sweep and returns the report.
func RunPerf(c *Context) (*PerfReport, error) {
	scale := 22 - c.Opts.Shrink
	if scale < 10 {
		scale = 10
	}
	g, err := graph.GenerateRMAT(graph.Graph500(scale, 16, c.Opts.Seed))
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("rmat-%d-graph500", scale)
	procs := perfProcs(c.Opts)
	rep := &PerfReport{
		Schema:     3,
		Graph:      name,
		Vertices:   g.NumVertices,
		Edges:      g.NumEdges(),
		WalkLength: c.Opts.WalkLength,
		Seed:       c.Opts.Seed,
		GoMaxProcs: runtime.NumCPU(),
		Procs:      procs,
		Ratios:     map[string]float64{},
	}
	algs, err := perfAlgorithms(c.Opts)
	if err != nil {
		return nil, err
	}
	// One weighted twin shared by every weighted workload, so their
	// sessions also share one registry sampler store per spec.
	var weighted *graph.CSR
	weightedTwin := func() *graph.CSR {
		if weighted == nil {
			weighted = Weighted(g)
		}
		return weighted
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, alg := range algs {
		gw := g
		if alg == walk.DeepWalk || alg == walk.Node2Vec {
			// Weighted twin: DeepWalk draws from the flat alias store,
			// Node2Vec takes the weighted-reservoir path.
			gw = weightedTwin()
		}
		if alg == walk.DeepWalk && rep.SamplerBuild == nil {
			sb, err := measureSamplerBuild(gw, name, c.Opts.Repeat)
			if err != nil {
				return nil, err
			}
			rep.SamplerBuild = sb
		}
		wcfg := walk.DefaultConfig(alg)
		wcfg.WalkLength = c.Opts.WalkLength
		wcfg.Seed = c.Opts.Seed
		qs, err := walk.RandomQueries(gw, wcfg, c.Opts.Queries, c.Opts.Seed^0xabcd)
		if err != nil {
			return nil, err
		}
		rep.Queries = len(qs)
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			for _, pc := range perfConfigs {
				rec, err := measure(pc.backend, gw, wcfg, qs, pc.shards, pc.cohort, c.Opts.Repeat)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return nil, err
				}
				rec.Graph, rec.Vertices, rec.Edges = name, g.NumVertices, g.NumEdges()
				rep.Records = append(rep.Records, rec)
			}
		}
	}
	runtime.GOMAXPROCS(prev)
	finishReport(rep)
	return rep, nil
}

// finishReport derives the cpu-normalized ratios and the per-record
// parallel speedups from the raw records.
func finishReport(rep *PerfReport) {
	type baseKey struct {
		alg   string
		procs int
	}
	base := map[baseKey]float64{} // flat cpu steps/sec per (algorithm, procs)
	type cfgKey struct {
		backend string
		alg     string
		shards  int
		cohort  int
	}
	single := map[cfgKey]float64{} // GOMAXPROCS=1 steps/sec per configuration
	for _, r := range rep.Records {
		if r.Backend == "cpu" && r.Shards == 0 {
			base[baseKey{r.Algorithm, r.GoMaxProcs}] = r.StepsPerSec
		}
		if r.GoMaxProcs == 1 {
			single[cfgKey{r.Backend, r.Algorithm, r.Shards, r.Cohort}] = r.StepsPerSec
		}
	}
	for i := range rep.Records {
		r := &rep.Records[i]
		if b := base[baseKey{r.Algorithm, r.GoMaxProcs}]; b > 0 && !(r.Backend == "cpu" && r.Shards == 0) {
			key := fmt.Sprintf("%s/cpu %s", r.configName(), r.Algorithm)
			if r.GoMaxProcs > 1 {
				key += fmt.Sprintf(" @p%d", r.GoMaxProcs)
			}
			rep.Ratios[key] = r.StepsPerSec / b
		}
		if r.GoMaxProcs > 1 {
			if s := single[cfgKey{r.Backend, r.Algorithm, r.Shards, r.Cohort}]; s > 0 {
				r.ParallelSpeedup = r.StepsPerSec / s
			}
		}
	}
}

// measure runs one backend configuration (after a small warm-up batch
// that also triggers lazy setup) and records wall-clock throughput and
// per-walk allocations under the current GOMAXPROCS. With repeat > 1 the
// batch is measured that many times and the best repetition is kept —
// downward outliers on shared machines are scheduling noise, which the
// regression gate must not mistake for a code regression.
func measure(backend string, g *graph.CSR, wcfg walk.Config, qs []walk.Query, shards, cohort, repeat int) (PerfRecord, error) {
	if repeat < 1 {
		repeat = 1
	}
	openStart := time.Now()
	ses, err := exec.Open(backend, g, exec.Config{
		Walk: wcfg, Shards: shards, Cohort: cohort, DiscardPaths: true,
	})
	preprocess := time.Since(openStart)
	if err != nil {
		return PerfRecord{}, err
	}
	defer ses.Close()
	var samplerBytes int64
	if sizer, ok := ses.(exec.SamplerSizer); ok {
		samplerBytes = sizer.SamplerBytes()
	}
	warm := len(qs) / 10
	if warm < 1 {
		warm = 1
	}
	if _, err := ses.Run(context.Background(), exec.Batch{Queries: qs[:warm]}); err != nil {
		return PerfRecord{}, err
	}
	best := PerfRecord{
		Backend:      backend,
		Algorithm:    wcfg.Algorithm.String(),
		Shards:       shards,
		Cohort:       cohort,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Queries:      len(qs),
		PreprocessMS: float64(preprocess) / float64(time.Millisecond),
		SamplerBytes: samplerBytes,
	}
	for i := 0; i < repeat; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := ses.Run(context.Background(), exec.Batch{Queries: qs})
		el := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return PerfRecord{}, err
		}
		sps := float64(res.Steps) / el.Seconds()
		if sps > best.StepsPerSec {
			best.Steps = res.Steps
			best.WallSeconds = el.Seconds()
			best.StepsPerSec = sps
			best.AllocsPerWalk = float64(after.Mallocs-before.Mallocs) / float64(len(qs))
		}
	}
	return best, nil
}

// WritePerfTable renders the report as the usual aligned text table.
func WritePerfTable(rep *PerfReport, w io.Writer) error {
	t := newTable(w, fmt.Sprintf("Software-engine perf — %s (%d vertices, %d edges), %d queries × len %d, procs %v",
		rep.Graph, rep.Vertices, rep.Edges, rep.Queries, rep.WalkLength, rep.Procs))
	t.row("backend", "alg", "shards", "cohort", "procs", "MStep/s", "allocs/walk", "prep ms", "sampler KiB", "speedup")
	for _, r := range rep.Records {
		speedup := "-"
		if r.ParallelSpeedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.ParallelSpeedup)
		}
		t.row(r.Backend, r.Algorithm, r.Shards, r.Cohort, r.GoMaxProcs,
			r.StepsPerSec/1e6, r.AllocsPerWalk,
			fmt.Sprintf("%.1f", r.PreprocessMS), r.SamplerBytes>>10, speedup)
	}
	if err := t.flush(); err != nil {
		return err
	}
	if sb := rep.SamplerBuild; sb != nil {
		fmt.Fprintf(w, "sampler build (alias store, %d edges): serial %.1f ms, parallel(%d workers) %.1f ms, %.2fx, %d KiB\n",
			sb.Edges, sb.SerialMS, sb.Workers, sb.ParallelMS, sb.Speedup, sb.Bytes>>10)
	}
	keys := make([]string, 0, len(rep.Ratios))
	for k := range rep.Ratios {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s: %.2fx\n", k, rep.Ratios[k])
	}
	return nil
}

// WritePerfJSON writes the report as indented JSON to path (BENCH.json).
func WritePerfJSON(rep *PerfReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPerfJSON loads a previously written BENCH.json report.
func ReadPerfJSON(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &PerfReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return rep, nil
}
