package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"ridgewalker/internal/exec"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

func init() {
	register(Experiment{ID: "perf", Title: "Software-engine perf suite (machine-readable; see -json)",
		Run: func(c *Context, w io.Writer) error {
			rep, err := RunPerf(c)
			if err != nil {
				return err
			}
			return WritePerfTable(rep, w)
		}})
}

// PerfRecord is one measured engine configuration in the BENCH.json
// report. Steps/sec is wall-clock software throughput (the paper's
// MStep/s numerator over elapsed time); AllocsPerWalk is the measured
// heap-allocation count per served walk on the hot path (paths discarded),
// which must stay ~0 for the allocation-free engines. GoMaxProcs is the
// setting the record was measured under (the suite sweeps GOMAXPROCS ∈
// {1, N}); ParallelSpeedup, present on records with GoMaxProcs > 1, is
// this record's steps/sec over the same configuration's GOMAXPROCS=1
// record — the realized multi-core scaling. PreprocessMS is the session
// open cost — sampler construction (the flat alias store for weighted
// workloads), graph partitioning, layout building — and SamplerBytes the
// resident size of the session's registry-shared sampler state.
//
// The schema-4 memory fields appear on budget-constrained (tiered)
// records only: MemBudget is the MemoryBudgetBytes the session ran
// under, GraphBytes the tiered graph's resident size (hot arena +
// compressed cold arena + locators), SamplerBytesTiered the tiered
// sampler's resident size, and CompressionRatio the combined flat-over-
// resident byte ratio of both stores — how many times the same content
// the flat engines read fits in the tiered footprint.
//
// HubWorkload marks the hub-heavy variant: the same algorithm run as
// hubWalkLen-step ego walks restarted at the graph's top-degree
// vertices (neighbor sampling around popular nodes), the access
// pattern the hot tier is built for.
// The "cpu-hub-tiered/cpu-hub" ratio is the tiering acceptance number —
// hub-heavy steps/sec must stay within 10% of the untiered engine —
// while the plain "cpu-tiered/cpu" ratio prices the worst case, a
// uniform workload whose steady-state traffic is edge-mass distributed
// and therefore mostly cold.
type PerfRecord struct {
	Backend         string  `json:"backend"`
	Algorithm       string  `json:"algorithm"`
	Graph           string  `json:"graph"`
	Vertices        int     `json:"vertices"`
	Edges           int64   `json:"edges"`
	Shards          int     `json:"shards,omitempty"`
	Cohort          int     `json:"cohort,omitempty"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	Queries         int     `json:"queries"`
	Steps           int64   `json:"steps"`
	WallSeconds     float64 `json:"wall_seconds"`
	StepsPerSec     float64 `json:"steps_per_sec"`
	AllocsPerWalk   float64 `json:"allocs_per_walk"`
	PreprocessMS    float64 `json:"preprocess_ms"`
	SamplerBytes    int64   `json:"sampler_bytes"`
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`

	MemBudget          int64   `json:"mem_budget,omitempty"`
	GraphBytes         int64   `json:"graph_bytes,omitempty"`
	SamplerBytesTiered int64   `json:"sampler_bytes_tiered,omitempty"`
	CompressionRatio   float64 `json:"compression_ratio,omitempty"`
	HubWorkload        bool    `json:"hub_workload,omitempty"`
}

// SamplerBuildRecord reports the weighted-sampler preprocessing
// measurement: the flat alias store built serially (workers=1) versus by
// the degree-partitioned worker pool (workers=NumCPU) over the suite's
// weighted graph. On single-core hosts the two are expected to be at
// parity (the pool buys nothing without hardware parallelism); the
// record exists so multi-core hosts capture the realized build speedup.
type SamplerBuildRecord struct {
	Graph      string  `json:"graph"`
	Vertices   int     `json:"vertices"`
	Edges      int64   `json:"edges"`
	Workers    int     `json:"workers"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	// Speedup is SerialMS / ParallelMS.
	Speedup float64 `json:"speedup"`
	// Bytes is the store's resident size (prob+alias arenas + locators).
	Bytes int64 `json:"sampler_bytes"`
}

// configName renders the record's engine configuration compactly
// ("cpu-pipelined-s4" for the sharded composition, "cpu-tiered" for a
// budget-constrained run).
func (r PerfRecord) configName() string {
	name := r.Backend
	if r.Shards > 0 {
		name = fmt.Sprintf("%s-s%d", name, r.Shards)
	}
	if r.HubWorkload {
		name += "-hub"
	}
	if r.MemBudget != 0 {
		name += "-tiered"
	}
	return name
}

// PerfReport is the BENCH.json schema: the perf trajectory record CI
// uploads per commit, and the input to cross-commit throughput tracking.
type PerfReport struct {
	Schema     int    `json:"schema"`
	Graph      string `json:"graph"`
	Vertices   int    `json:"vertices"`
	Edges      int64  `json:"edges"`
	Queries    int    `json:"queries"`
	WalkLength int    `json:"walk_length"`
	Seed       uint64 `json:"seed"`
	// GoMaxProcs is the host's available processor count; Procs lists the
	// GOMAXPROCS settings the suite swept (each record carries its own).
	GoMaxProcs int   `json:"gomaxprocs"`
	Procs      []int `json:"procs"`
	// Records holds one entry per backend × algorithm × procs
	// configuration.
	Records []PerfRecord `json:"records"`
	// Planner (schema 5) holds one regret cell per algorithm × procs:
	// the "auto" backend's realized throughput against the best
	// hand-picked configuration from Records on the same queries.
	Planner []PlannerRecord `json:"planner,omitempty"`
	// SamplerBuild is the alias-store preprocessing measurement, emitted
	// when the sweep includes DeepWalk (the workload whose sampler is the
	// O(E) flat alias store); other weighted workloads (node2vec's
	// reservoir) have no prebuilt store to measure.
	SamplerBuild *SamplerBuildRecord `json:"sampler_build,omitempty"`
	// Mutation is the dynamic-graph maintenance measurement (incremental
	// dirty-row sampler rebuild vs cold O(E) rebuild), emitted alongside
	// SamplerBuild when the sweep includes DeepWalk.
	Mutation *MutationRecord `json:"mutation,omitempty"`
	// Serve (schema 6) is the overload-serving measurement: closed-loop
	// saturation rate plus the open-loop load sweep against the Service's
	// feedback-derived admission budget (see ServeRecord).
	Serve *ServeRecord `json:"serve,omitempty"`
	// Ratios normalizes each configuration to the flat cpu baseline per
	// algorithm at the same GOMAXPROCS (steps/sec over steps/sec), e.g.
	// "cpu-pipelined/cpu URW": 1.31 (GOMAXPROCS=1) or
	// "cpu-pipelined-s4/cpu URW @p4": 2.1 (GOMAXPROCS=4).
	Ratios map[string]float64 `json:"ratios"`
	// PeakRSSMB is the process's peak resident set (/proc/self/status
	// VmHWM) sampled after the sweep, in MiB. The high-water mark is
	// monotonic over the process lifetime, so it bounds the whole suite —
	// graph generation included — rather than any single configuration;
	// its value is catching footprint growth across commits at fixed
	// workload parameters. 0 where the proc interface is unavailable.
	PeakRSSMB float64 `json:"peak_rss_mb,omitempty"`
}

// perfConfigs lists the software-engine configurations the suite sweeps.
// The tiered entry reruns the flat-cpu workload under the auto memory
// budget (hot hubs in the uncompressed arena, cold tail through the
// delta-varint decode path), so every report prices the tiering's
// throughput cost next to its footprint saving. The hub pair measures
// the same engines on the hub-heavy workload (short walks seeded at the
// top-degree vertices), whose traffic the hot tier is sized to absorb.
var perfConfigs = []struct {
	backend string
	shards  int
	cohort  int
	tiered  bool
	hub     bool
}{
	{backend: "cpu"},
	{backend: "cpu", tiered: true},
	{backend: "cpu", hub: true},
	{backend: "cpu", hub: true, tiered: true},
	{backend: "cpu-sharded"},
	{backend: "cpu-sharded", shards: 4},
	{backend: "cpu-pipelined", cohort: exec.DefaultCohort},
	{backend: "cpu-pipelined", cohort: exec.DefaultCohort, shards: 2},
	{backend: "cpu-pipelined", cohort: exec.DefaultCohort, shards: 4},
}

// perfProcs returns the GOMAXPROCS sweep: the configured list, or
// {1, NumCPU} deduplicated.
func perfProcs(opts Options) []int {
	if len(opts.Procs) > 0 {
		return opts.Procs
	}
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// perfAlgorithms returns the GRW workload sweep: the configured list, or
// {URW, DeepWalk}.
func perfAlgorithms(opts Options) ([]walk.Algorithm, error) {
	if len(opts.Algorithms) == 0 {
		return []walk.Algorithm{walk.URW, walk.DeepWalk}, nil
	}
	var out []walk.Algorithm
	for _, name := range opts.Algorithms {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "urw":
			out = append(out, walk.URW)
		case "ppr":
			out = append(out, walk.PPR)
		case "deepwalk":
			out = append(out, walk.DeepWalk)
		case "node2vec":
			out = append(out, walk.Node2Vec)
		default:
			return nil, fmt.Errorf("bench: unknown perf algorithm %q (have urw, ppr, deepwalk, node2vec)", name)
		}
	}
	return out, nil
}

// measureSamplerBuild times the flat alias store's construction over the
// weighted graph, serial versus the full worker pool, keeping the best
// of repeat repetitions of each.
func measureSamplerBuild(gw *graph.CSR, name string, repeat int) (*SamplerBuildRecord, error) {
	if repeat < 1 {
		repeat = 1
	}
	workers := runtime.NumCPU()
	// Pin GOMAXPROCS for the measurement: the caller's procs sweep may
	// have left it at any value (a sweep ending in 1 would run the
	// "parallel" build on a single P and report a bogus ~1.0x).
	prevProcs := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prevProcs)
	// One untimed warm-up so the serial measurement does not absorb the
	// first-touch page faults of the arena working set.
	if _, err := sampling.NewAliasSamplerWorkers(gw, workers); err != nil {
		return nil, err
	}
	best := func(w int) (float64, int64, error) {
		bestMS := math.Inf(1)
		var bytes int64
		for i := 0; i < repeat; i++ {
			start := time.Now()
			s, err := sampling.NewAliasSamplerWorkers(gw, w)
			if err != nil {
				return 0, 0, err
			}
			if ms := float64(time.Since(start)) / float64(time.Millisecond); ms < bestMS {
				bestMS = ms
			}
			bytes = s.MemoryFootprint()
		}
		return bestMS, bytes, nil
	}
	serial, bytes, err := best(1)
	if err != nil {
		return nil, err
	}
	parallel, _, err := best(workers)
	if err != nil {
		return nil, err
	}
	return &SamplerBuildRecord{
		Graph:      name,
		Vertices:   gw.NumVertices,
		Edges:      gw.NumEdges(),
		Workers:    workers,
		SerialMS:   serial,
		ParallelMS: parallel,
		Speedup:    serial / parallel,
		Bytes:      bytes,
	}, nil
}

// RunPerf measures the software engines on an RMAT graph scaled by
// Options.Shrink (scale 22 at shrink 0 — the acceptance sweep's graph —
// down to a CI-friendly size at larger shrinks) across the GOMAXPROCS
// sweep and returns the report.
func RunPerf(c *Context) (*PerfReport, error) {
	scale := 22 - c.Opts.Shrink
	if scale < 10 {
		scale = 10
	}
	g, err := graph.GenerateRMAT(graph.Graph500(scale, 16, c.Opts.Seed))
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("rmat-%d-graph500", scale)
	procs := perfProcs(c.Opts)
	rep := &PerfReport{
		Schema:     6,
		Graph:      name,
		Vertices:   g.NumVertices,
		Edges:      g.NumEdges(),
		WalkLength: c.Opts.WalkLength,
		Seed:       c.Opts.Seed,
		GoMaxProcs: runtime.NumCPU(),
		Procs:      procs,
		Ratios:     map[string]float64{},
	}
	algs, err := perfAlgorithms(c.Opts)
	if err != nil {
		return nil, err
	}
	// One weighted twin shared by every weighted workload, so their
	// sessions also share one registry sampler store per spec.
	var weighted *graph.CSR
	weightedTwin := func() *graph.CSR {
		if weighted == nil {
			weighted = Weighted(g)
		}
		return weighted
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, alg := range algs {
		gw := g
		if alg == walk.DeepWalk || alg == walk.Node2Vec {
			// Weighted twin: DeepWalk draws from the flat alias store,
			// Node2Vec takes the weighted-reservoir path.
			gw = weightedTwin()
		}
		if alg == walk.DeepWalk && rep.SamplerBuild == nil {
			sb, err := measureSamplerBuild(gw, name, c.Opts.Repeat)
			if err != nil {
				return nil, err
			}
			rep.SamplerBuild = sb
			mut, err := MeasureMutation(gw, name, c.Opts.Repeat)
			if err != nil {
				return nil, err
			}
			rep.Mutation = mut
		}
		wcfg := walk.DefaultConfig(alg)
		wcfg.WalkLength = c.Opts.WalkLength
		wcfg.Seed = c.Opts.Seed
		qs, err := walk.RandomQueries(gw, wcfg, c.Opts.Queries, c.Opts.Seed^0xabcd)
		if err != nil {
			return nil, err
		}
		rep.Queries = len(qs)
		hcfg, hqs := hubWorkload(gw, wcfg, len(qs))
		for _, p := range procs {
			runtime.GOMAXPROCS(p)
			for _, pc := range perfConfigs {
				var budget int64
				if pc.tiered {
					budget = graph.AutoMemoryBudget(gw)
				}
				mcfg, mqs := wcfg, qs
				if pc.hub {
					mcfg, mqs = hcfg, hqs
				}
				rec, err := measure(pc.backend, gw, mcfg, mqs, pc.shards, pc.cohort, budget, c.Opts.Repeat)
				if err != nil {
					runtime.GOMAXPROCS(prev)
					return nil, err
				}
				rec.HubWorkload = pc.hub
				rec.Graph, rec.Vertices, rec.Edges = name, g.NumVertices, g.NumEdges()
				rep.Records = append(rep.Records, rec)
			}
			// One planner cell per algorithm × procs: the "auto" backend
			// calibrates, then races the cell's best sweep configuration
			// in a paired measurement on the same queries.
			pcell, err := plannerCell(rep, name, gw, wcfg, qs, c.Opts.Repeat)
			if err != nil {
				runtime.GOMAXPROCS(prev)
				return nil, err
			}
			rep.Planner = append(rep.Planner, pcell)
		}
	}
	runtime.GOMAXPROCS(prev)
	// The serving measurement runs at the host's full GOMAXPROCS (it
	// exercises the Service front door, not a swept engine shape) on the
	// suite's unweighted graph.
	srec, err := runServe(g, name, c.Opts)
	if err != nil {
		return nil, err
	}
	rep.Serve = srec
	finishReport(rep)
	rep.PeakRSSMB = peakRSSMB()
	return rep, nil
}

// Hub-workload shape: walks of hubWalkLen steps seeded round-robin at
// the hubSeeds top-degree vertices, hubQueryMult times the base query
// count (short walks need more of them for a stable wall-clock). Walk
// length 2 is the canonical serving shape — two-hop ego/neighbor
// sampling around popular vertices, the GraphSAGE-style fan-out a
// front-end issues for trending content — and it is what keeps the
// traffic actually hub-heavy: a random walk mixes to the graph's
// edge-mass distribution within a few steps, so every step past the
// first hop reads mostly cold rows no matter where the walk started.
const (
	hubWalkLen   = 2
	hubSeeds     = 64
	hubQueryMult = 16
)

// hubWorkload derives the hub-heavy variant of a workload: same
// algorithm and seed, hubWalkLen-step walks from the top-degree rows.
func hubWorkload(g *graph.CSR, wcfg walk.Config, nq int) (walk.Config, []walk.Query) {
	hcfg := wcfg
	hcfg.WalkLength = hubWalkLen
	order := make([]graph.VertexID, g.NumVertices)
	for v := range order {
		order[v] = graph.VertexID(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	k := hubSeeds
	if k > len(order) {
		k = len(order)
	}
	hqs := make([]walk.Query, nq*hubQueryMult)
	for i := range hqs {
		hqs[i] = walk.Query{ID: uint32(i), Start: order[i%k]}
	}
	return hcfg, hqs
}

// peakRSSMB reads the process's resident-set high-water mark from
// /proc/self/status (VmHWM, reported in KiB) and converts to MiB.
// Returns 0 on platforms without the proc interface.
func peakRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return 0
		}
		return kb / 1024
	}
	return 0
}

// finishReport derives the cpu-normalized ratios and the per-record
// parallel speedups from the raw records.
func finishReport(rep *PerfReport) {
	type baseKey struct {
		alg   string
		procs int
		hub   bool
	}
	// Flat cpu steps/sec per (algorithm, procs, workload): hub records
	// normalize against the hub-workload cpu run — the two workloads walk
	// different traffic, so their numbers must not be mixed.
	base := map[baseKey]float64{}
	type cfgKey struct {
		backend string
		alg     string
		shards  int
		cohort  int
		tiered  bool
		hub     bool
	}
	single := map[cfgKey]float64{} // GOMAXPROCS=1 steps/sec per configuration
	for _, r := range rep.Records {
		if r.Backend == "cpu" && r.Shards == 0 && r.MemBudget == 0 {
			base[baseKey{r.Algorithm, r.GoMaxProcs, r.HubWorkload}] = r.StepsPerSec
		}
		if r.GoMaxProcs == 1 {
			single[cfgKey{r.Backend, r.Algorithm, r.Shards, r.Cohort, r.MemBudget != 0, r.HubWorkload}] = r.StepsPerSec
		}
	}
	for i := range rep.Records {
		r := &rep.Records[i]
		if b := base[baseKey{r.Algorithm, r.GoMaxProcs, r.HubWorkload}]; b > 0 && !(r.Backend == "cpu" && r.Shards == 0 && r.MemBudget == 0) {
			den := "cpu"
			if r.HubWorkload {
				den = "cpu-hub"
			}
			key := fmt.Sprintf("%s/%s %s", r.configName(), den, r.Algorithm)
			if r.GoMaxProcs > 1 {
				key += fmt.Sprintf(" @p%d", r.GoMaxProcs)
			}
			rep.Ratios[key] = r.StepsPerSec / b
		}
		if r.GoMaxProcs > 1 {
			if s := single[cfgKey{r.Backend, r.Algorithm, r.Shards, r.Cohort, r.MemBudget != 0, r.HubWorkload}]; s > 0 {
				r.ParallelSpeedup = r.StepsPerSec / s
			}
		}
	}
}

// measure runs one backend configuration (after a small warm-up batch
// that also triggers lazy setup) and records wall-clock throughput and
// per-walk allocations under the current GOMAXPROCS. With repeat > 1 the
// batch is measured that many times and the best repetition is kept —
// downward outliers on shared machines are scheduling noise, which the
// regression gate must not mistake for a code regression.
func measure(backend string, g *graph.CSR, wcfg walk.Config, qs []walk.Query, shards, cohort int, budget int64, repeat int) (PerfRecord, error) {
	if repeat < 1 {
		repeat = 1
	}
	openStart := time.Now()
	ses, err := exec.Open(backend, g, exec.Config{
		Walk: wcfg, Shards: shards, Cohort: cohort, DiscardPaths: true,
		MemoryBudgetBytes: budget,
	})
	preprocess := time.Since(openStart)
	if err != nil {
		return PerfRecord{}, err
	}
	defer ses.Close()
	var samplerBytes int64
	if sizer, ok := ses.(exec.SamplerSizer); ok {
		samplerBytes = sizer.SamplerBytes()
	}
	warm := len(qs) / 10
	if warm < 1 {
		warm = 1
	}
	if _, err := ses.Run(context.Background(), exec.Batch{Queries: qs[:warm]}); err != nil {
		return PerfRecord{}, err
	}
	best := PerfRecord{
		Backend:      backend,
		Algorithm:    wcfg.Algorithm.String(),
		Shards:       shards,
		Cohort:       cohort,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Queries:      len(qs),
		PreprocessMS: float64(preprocess) / float64(time.Millisecond),
		SamplerBytes: samplerBytes,
		MemBudget:    budget,
	}
	if reporter, ok := ses.(exec.MemoryReporter); ok && budget != 0 {
		if m := reporter.MemoryReport(); m != nil {
			best.GraphBytes = m.GraphBytes
			best.SamplerBytesTiered = m.SamplerBytes
			if resident := m.TotalBytes(); resident > 0 {
				best.CompressionRatio = float64(m.GraphFlatBytes+m.SamplerFlatBytes) / float64(resident)
			}
		}
	}
	for i := 0; i < repeat; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := ses.Run(context.Background(), exec.Batch{Queries: qs})
		el := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return PerfRecord{}, err
		}
		sps := float64(res.Steps) / el.Seconds()
		if sps > best.StepsPerSec {
			best.Steps = res.Steps
			best.WallSeconds = el.Seconds()
			best.StepsPerSec = sps
			best.AllocsPerWalk = float64(after.Mallocs-before.Mallocs) / float64(len(qs))
		}
	}
	return best, nil
}

// WritePerfTable renders the report as the usual aligned text table.
func WritePerfTable(rep *PerfReport, w io.Writer) error {
	t := newTable(w, fmt.Sprintf("Software-engine perf — %s (%d vertices, %d edges), %d queries × len %d, procs %v",
		rep.Graph, rep.Vertices, rep.Edges, rep.Queries, rep.WalkLength, rep.Procs))
	t.row("backend", "alg", "shards", "cohort", "procs", "MStep/s", "allocs/walk", "prep ms", "sampler KiB", "speedup", "mem")
	for _, r := range rep.Records {
		speedup := "-"
		if r.ParallelSpeedup > 0 {
			speedup = fmt.Sprintf("%.2fx", r.ParallelSpeedup)
		}
		mem := "-"
		if r.MemBudget != 0 {
			mem = fmt.Sprintf("tiered %dKiB %.1fx", (r.GraphBytes+r.SamplerBytesTiered)>>10, r.CompressionRatio)
		}
		t.row(r.Backend, r.Algorithm, r.Shards, r.Cohort, r.GoMaxProcs,
			r.StepsPerSec/1e6, r.AllocsPerWalk,
			fmt.Sprintf("%.1f", r.PreprocessMS), r.SamplerBytes>>10, speedup, mem)
	}
	if err := t.flush(); err != nil {
		return err
	}
	if rep.PeakRSSMB > 0 {
		fmt.Fprintf(w, "peak RSS: %.1f MiB (process high-water mark, whole suite)\n", rep.PeakRSSMB)
	}
	if sb := rep.SamplerBuild; sb != nil {
		fmt.Fprintf(w, "sampler build (alias store, %d edges): serial %.1f ms, parallel(%d workers) %.1f ms, %.2fx, %d KiB\n",
			sb.Edges, sb.SerialMS, sb.Workers, sb.ParallelMS, sb.Speedup, sb.Bytes>>10)
	}
	if mu := rep.Mutation; mu != nil {
		fmt.Fprintf(w, "mutation maintenance (%d edges mutated, %d dirty rows): incremental %.3f ms vs cold rebuild %.3f ms — %.1fx, dirty fraction %.5f\n",
			mu.MutatedEdges, mu.DirtyRows, mu.IncrementalMS, mu.ColdRebuildMS, mu.Speedup, mu.DirtyFraction)
	}
	if sv := rep.Serve; sv != nil {
		fmt.Fprintf(w, "serving: saturation %.0f req/s (%d queries/request); budget %d queries",
			sv.SaturationRPS, sv.RequestQueries, sv.Budget)
		for _, p := range sv.Points {
			fmt.Fprintf(w, "; %.1fx load → %.0f rps goodput, %.0f%% shed, p99 %.2f ms (shed p99 %.3f ms)",
				p.LoadFactor, p.GoodputRPS, 100*p.ShedRate, p.P99MS, p.ShedP99MS)
		}
		fmt.Fprintln(w)
	}
	keys := make([]string, 0, len(rep.Ratios))
	for k := range rep.Ratios {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s: %.2fx\n", k, rep.Ratios[k])
	}
	return nil
}

// WritePerfJSON writes the report as indented JSON to path (BENCH.json).
func WritePerfJSON(rep *PerfReport, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadPerfJSON loads a previously written BENCH.json report.
func ReadPerfJSON(path string) (*PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &PerfReport{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return rep, nil
}
