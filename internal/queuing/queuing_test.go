package queuing

import (
	"math"
	"testing"
)

func TestMinDepthMatchesPaper(t *testing.T) {
	// µ=1, C=4·log2(N): D = N + 4·N·log2(N) (paper §VI-D).
	for _, n := range []int{2, 4, 8, 16, 32} {
		log := int(math.Log2(float64(n)))
		want := n + 4*n*log
		if got := MinDepth(n, 1, FeedbackDelay(n)); got != want {
			t.Errorf("MinDepth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPerPipelineDepth(t *testing.T) {
	// Paper: "a FIFO per pipeline with a depth of 1 + 4·log N".
	for n, want := range map[int]int{2: 5, 4: 9, 16: 17} {
		if got := PerPipelineDepth(n); got != want {
			t.Errorf("PerPipelineDepth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFeedbackDelay(t *testing.T) {
	// 16 pipelines → 4·log2(16) = 16 cycle round trip; the one-way balancer
	// latency is half that (the paper's "eight cycles for 16 pipelines").
	if got := FeedbackDelay(16); got != 16 {
		t.Fatalf("FeedbackDelay(16) = %d, want 16", got)
	}
	if got := FeedbackDelay(2); got != 4 {
		t.Fatalf("FeedbackDelay(2) = %d, want 4", got)
	}
}

func TestMinDepthPanicsOnBadInput(t *testing.T) {
	for _, f := range []func(){
		func() { MinDepth(0, 1, 1) },
		func() { MinDepth(4, 0, 1) },
		func() { MinDepth(4, 1, -1) },
		func() { FeedbackDelay(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			f()
		}()
	}
}

func TestBulkQueueBatchOneMatchesMM1(t *testing.T) {
	// Batch=1 reduces to M/M/1: P(n) = (1-ρ)ρ^n, mean = ρ/(1-ρ).
	q := BulkQueue{Lambda: 0.6, Mu: 1.0, Batch: 1}
	p, err := q.Solve(400)
	if err != nil {
		t.Fatal(err)
	}
	rho := 0.6
	for n := 0; n < 10; n++ {
		want := (1 - rho) * math.Pow(rho, float64(n))
		if math.Abs(p[n]-want) > 1e-4 {
			t.Fatalf("P(%d) = %v, want %v", n, p[n], want)
		}
	}
	wantMean := rho / (1 - rho)
	if m := MeanQueueLength(p); math.Abs(m-wantMean) > 0.01 {
		t.Fatalf("mean = %v, want %v", m, wantMean)
	}
}

func TestBulkQueueBatchReducesBacklog(t *testing.T) {
	// Same arrival rate; larger service batches drain faster → shorter
	// queue.
	p1, err := (BulkQueue{Lambda: 1.5, Mu: 1, Batch: 2}).Solve(600)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := (BulkQueue{Lambda: 1.5, Mu: 1, Batch: 8}).Solve(600)
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := MeanQueueLength(p1), MeanQueueLength(p2)
	if m2 >= m1 {
		t.Fatalf("batch 8 mean %v >= batch 2 mean %v", m2, m1)
	}
}

func TestBulkQueueDistributionSums(t *testing.T) {
	q := BulkQueue{Lambda: 2.5, Mu: 1, Batch: 4}
	p, err := q.Solve(500)
	if err != nil {
		t.Fatal(err)
	}
	s := 0.0
	for _, v := range p {
		if v < 0 {
			t.Fatal("negative probability")
		}
		s += v
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("distribution sums to %v", s)
	}
	if TailProbability(p, 0) < 0.999999 {
		t.Fatal("tail from 0 must be ~1")
	}
	if TailProbability(p, len(p)/2) > 0.01 {
		t.Fatal("truncation point carries visible mass; enlarge state space")
	}
}

func TestBulkQueueRejectsUnstable(t *testing.T) {
	if _, err := (BulkQueue{Lambda: 5, Mu: 1, Batch: 4}).Solve(100); err == nil {
		t.Error("unstable queue solved")
	}
	if _, err := (BulkQueue{Lambda: -1, Mu: 1, Batch: 4}).Solve(100); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := (BulkQueue{Lambda: 1, Mu: 1, Batch: 4}).Solve(3); err == nil {
		t.Error("tiny state space accepted")
	}
}

func TestBulkQueueStableUtilization(t *testing.T) {
	q := BulkQueue{Lambda: 3, Mu: 1, Batch: 4}
	if !q.Stable() {
		t.Fatal("q should be stable")
	}
	if u := q.Utilization(); math.Abs(u-0.75) > 1e-12 {
		t.Fatalf("utilization = %v, want 0.75", u)
	}
}

func TestSimulateFeedbackZeroBubblesAtTheoremDepth(t *testing.T) {
	// Backlogged source, stochastic service (mean 2 → µ=0.5), delay C=8.
	// Theorem VI.1 per-server depth: 1 + ceil(0.5·8) = 5.
	cfg := FeedbackSimConfig{
		Servers: 8, Depth: 5, FeedbackDelay: 8,
		MeanService: 2, Cycles: 40000, Backlogged: true, Seed: 5,
	}
	res, err := SimulateFeedback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 1000 {
		t.Fatalf("only %d completions", res.Completed)
	}
	if r := res.BubbleRatio(); r > 0.01 {
		t.Fatalf("bubble ratio %.4f at theorem depth, want ~0", r)
	}
}

func TestSimulateFeedbackShallowDepthBubbles(t *testing.T) {
	cfg := FeedbackSimConfig{
		Servers: 8, Depth: 1, FeedbackDelay: 8,
		MeanService: 2, Cycles: 40000, Backlogged: true, Seed: 5,
	}
	res, err := SimulateFeedback(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r := res.BubbleRatio(); r < 0.05 {
		t.Fatalf("bubble ratio %.4f with depth 1 and delay 8; expected starvation", r)
	}
}

func TestSimulateFeedbackDepthSweepMonotone(t *testing.T) {
	// Bubble ratio must not increase with depth (within noise).
	prev := math.Inf(1)
	for _, depth := range []int{1, 2, 3, 5, 8} {
		res, err := SimulateFeedback(FeedbackSimConfig{
			Servers: 4, Depth: depth, FeedbackDelay: 8,
			MeanService: 2, Cycles: 30000, Backlogged: true, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		r := res.BubbleRatio()
		if r > prev+0.02 {
			t.Fatalf("bubble ratio rose from %.4f to %.4f at depth %d", prev, r, depth)
		}
		prev = r
	}
}

func TestSimulateFeedbackValidation(t *testing.T) {
	bad := []FeedbackSimConfig{
		{Servers: 0, Depth: 1, Cycles: 10, MeanService: 1},
		{Servers: 1, Depth: 0, Cycles: 10, MeanService: 1},
		{Servers: 1, Depth: 1, Cycles: 0, MeanService: 1},
		{Servers: 1, Depth: 1, Cycles: 10, MeanService: 0.5},
		{Servers: 1, Depth: 1, Cycles: 10, MeanService: 1, FeedbackDelay: -1},
	}
	for i, cfg := range bad {
		if _, err := SimulateFeedback(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
