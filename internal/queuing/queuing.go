// Package queuing implements the analytic machinery behind the Zero-Bubble
// Scheduler (paper §VI): the M/M/1[N] bulk-service queuing model used to
// reason about dispatching to N parallel pipelines, and Theorem VI.1's
// minimum buffer depth under delayed feedback.
//
// The continuous-time Markov chain for the bulk-service queue is solved
// numerically on a truncated state space, which keeps the code free of
// closed-form fragility and lets tests cross-validate against discrete-event
// simulation.
package queuing

import (
	"fmt"
	"math"
)

// MinDepth is Theorem VI.1: the minimum total queue depth D between a
// scheduler and N downstream servers, each consuming up to mu tasks per
// cycle, when availability feedback is delayed by at most cMax cycles:
//
//	D = N + ⌈mu·cMax⌉·N
//
// (the concrete instantiation of D = N + O(mu·cMax·N) the paper deploys).
func MinDepth(n int, mu float64, cMax int) int {
	if n < 1 {
		panic(fmt.Sprintf("queuing: n=%d, want >= 1", n))
	}
	if mu <= 0 || cMax < 0 {
		panic(fmt.Sprintf("queuing: mu=%v cMax=%d invalid", mu, cMax))
	}
	return n + int(math.Ceil(mu*float64(cMax)))*n
}

// FeedbackDelay returns the paper's bound on scheduler round-trip feedback
// delay for N pipelines: tasks cross log2(N) Dispatchers and log2(N)
// Mergers at ≤2 cycles each (balancer ≤ 2·log2 N), and the full
// scheduler-to-pipeline round trip is ≤ 4·log2 N cycles.
func FeedbackDelay(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("queuing: n=%d, want >= 1", n))
	}
	return 4 * log2Ceil(n)
}

// PerPipelineDepth is the per-pipeline FIFO depth implied by Theorem VI.1
// with mu = 1 task/cycle and C = FeedbackDelay(n): depth 1 + 4·log2(N).
func PerPipelineDepth(n int) int {
	return MinDepth(n, 1, FeedbackDelay(n)) / n
}

func log2Ceil(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	return k
}

// BulkQueue is the M/M/1[N] bulk-service model: Poisson task arrivals at
// rate Lambda, a single scheduler/server that, at exponential rate Mu,
// dispatches a batch of up to Batch tasks at once (one decision epoch
// serving up to N pipelines).
type BulkQueue struct {
	Lambda float64
	Mu     float64
	Batch  int
}

// Stable reports whether the queue has a stationary distribution
// (offered load below batch service capacity).
func (q BulkQueue) Stable() bool { return q.Lambda < q.Mu*float64(q.Batch) }

// Utilization returns the offered load ρ = λ/(N·µ).
func (q BulkQueue) Utilization() float64 { return q.Lambda / (q.Mu * float64(q.Batch)) }

// Solve computes the stationary distribution of the queue length on the
// truncated state space [0, maxStates). It returns an error for invalid or
// unstable configurations.
//
// Transition structure: n → n+1 at rate λ; n → max(0, n−Batch) at rate µ
// for n ≥ 1. The truncated chain is solved by Gauss–Seidel sweeps on the
// balance equations, which converges quickly because the chain is a
// skip-free-to-the-right birth process with bulk downward jumps.
func (q BulkQueue) Solve(maxStates int) ([]float64, error) {
	if q.Lambda <= 0 || q.Mu <= 0 || q.Batch < 1 {
		return nil, fmt.Errorf("queuing: invalid bulk queue %+v", q)
	}
	if !q.Stable() {
		return nil, fmt.Errorf("queuing: unstable queue: lambda=%v >= batch capacity %v",
			q.Lambda, q.Mu*float64(q.Batch))
	}
	if maxStates < q.Batch*4 {
		return nil, fmt.Errorf("queuing: maxStates=%d too small for batch %d", maxStates, q.Batch)
	}
	n := maxStates
	p := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	// Build per-state outflow rates: state 0 flows out at λ only; others at
	// λ+µ (the last state's arrival edge is truncated but keeping λ in the
	// denominator just biases mass slightly downward, vanishing as n grows).
	for iter := 0; iter < 20000; iter++ {
		delta := 0.0
		for i := 0; i < n; i++ {
			// Inflow to state i.
			in := 0.0
			if i > 0 {
				in += q.Lambda * p[i-1]
			}
			if i == 0 {
				// Service from any state 1..Batch empties the queue.
				for j := 1; j <= q.Batch && j < n; j++ {
					in += q.Mu * p[j]
				}
			} else if i+q.Batch < n {
				in += q.Mu * p[i+q.Batch]
			}
			out := q.Lambda
			if i > 0 {
				out += q.Mu
			}
			if i == n-1 {
				out = q.Mu // no arrival edge out of the truncated top state
			}
			newP := in / out
			delta += math.Abs(newP - p[i])
			p[i] = newP
		}
		// Normalize each sweep to keep the iteration bounded.
		sum := 0.0
		for _, v := range p {
			sum += v
		}
		if sum == 0 {
			return nil, fmt.Errorf("queuing: solver degenerated")
		}
		for i := range p {
			p[i] /= sum
		}
		if delta < 1e-13 {
			break
		}
	}
	return p, nil
}

// MeanQueueLength returns Σ n·P(n) for a solved distribution.
func MeanQueueLength(p []float64) float64 {
	m := 0.0
	for i, v := range p {
		m += float64(i) * v
	}
	return m
}

// TailProbability returns P(queue length >= k).
func TailProbability(p []float64, k int) float64 {
	s := 0.0
	for i := k; i < len(p); i++ {
		s += p[i]
	}
	return s
}
