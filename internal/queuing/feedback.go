package queuing

import (
	"fmt"

	"ridgewalker/internal/rng"
)

// FeedbackSimConfig parameterizes a discrete-event simulation of the
// delayed-feedback dispatching system Theorem VI.1 describes: N servers
// with stochastic service times behind per-server queues of depth D/N,
// fed by a dispatcher that observes queue occupancy C cycles late.
//
// It is the §VIII-D microbenchmark: sweeping Depth below and above
// MinDepth shows bubbles appearing and vanishing.
type FeedbackSimConfig struct {
	Servers int
	// Depth is the per-server queue depth.
	Depth int
	// FeedbackDelay is C: the dispatcher sees occupancy from C cycles ago.
	FeedbackDelay int
	// MeanService is the mean geometric service time in cycles (µ = 1/mean).
	MeanService float64
	// Cycles is the simulation horizon.
	Cycles int
	// Backlogged keeps the upstream source saturated (the regime where
	// zero-bubble must hold). When false, arrivals are Bernoulli with
	// ArrivalProb per server per cycle.
	Backlogged  bool
	ArrivalProb float64
	Seed        uint64
}

// FeedbackSimResult reports bubble accounting.
type FeedbackSimResult struct {
	// BubbleCycles counts server-cycles idle while upstream work existed.
	BubbleCycles int64
	// BusyCycles counts server-cycles spent serving.
	BusyCycles int64
	// Completed counts finished tasks.
	Completed int64
}

// BubbleRatio returns bubbles/(bubbles+busy).
func (r FeedbackSimResult) BubbleRatio() float64 {
	total := r.BubbleCycles + r.BusyCycles
	if total == 0 {
		return 0
	}
	return float64(r.BubbleCycles) / float64(total)
}

// SimulateFeedback runs the delayed-feedback dispatch simulation.
//
// Per cycle: the dispatcher consults occupancy snapshots from
// FeedbackDelay cycles ago and pushes one task to every server whose stale
// snapshot shows room (mirroring hardware that commits a write based on a
// registered full flag); pushes beyond real capacity are dropped back to
// the source (retried later). Each server consumes its queue head with
// geometric service completion.
func SimulateFeedback(cfg FeedbackSimConfig) (FeedbackSimResult, error) {
	if cfg.Servers < 1 || cfg.Depth < 1 || cfg.Cycles < 1 {
		return FeedbackSimResult{}, fmt.Errorf("queuing: invalid feedback sim config %+v", cfg)
	}
	if cfg.MeanService < 1 {
		return FeedbackSimResult{}, fmt.Errorf("queuing: mean service %v, want >= 1", cfg.MeanService)
	}
	if cfg.FeedbackDelay < 0 {
		return FeedbackSimResult{}, fmt.Errorf("queuing: negative feedback delay")
	}
	r := rng.New(cfg.Seed)
	n := cfg.Servers
	occupancy := make([]int, n) // true current queue lengths
	remaining := make([]int, n) // cycles left on in-service task (0 = idle)
	history := make([][]int, cfg.FeedbackDelay+1)
	for i := range history {
		history[i] = make([]int, n)
	}
	var res FeedbackSimResult
	pCompletion := 1 / cfg.MeanService
	pending := 0 // tasks the source still wants to hand over (non-backlogged)

	for now := 0; now < cfg.Cycles; now++ {
		// Record the current occupancy snapshot for future delayed reads.
		copy(history[now%(cfg.FeedbackDelay+1)], occupancy)
		// Dispatcher acts on the stale snapshot.
		staleIdx := (now + 1) % (cfg.FeedbackDelay + 1) // oldest slot = now - delay
		stale := history[staleIdx]
		if !cfg.Backlogged {
			for i := 0; i < n; i++ {
				if r.Float64() < cfg.ArrivalProb {
					pending++
				}
			}
		}
		for i := 0; i < n; i++ {
			if !cfg.Backlogged && pending == 0 {
				break
			}
			if stale[i] < cfg.Depth && occupancy[i] < cfg.Depth {
				occupancy[i]++
				if !cfg.Backlogged {
					pending--
				}
			}
		}
		// Servers.
		for i := 0; i < n; i++ {
			if remaining[i] == 0 && occupancy[i] > 0 {
				occupancy[i]--
				// Geometric service: at least 1 cycle.
				remaining[i] = 1
				for r.Float64() >= pCompletion {
					remaining[i]++
				}
			}
			if remaining[i] > 0 {
				remaining[i]--
				res.BusyCycles++
				if remaining[i] == 0 {
					res.Completed++
				}
			} else {
				// Idle. A bubble only if upstream work existed.
				if cfg.Backlogged || pending > 0 {
					res.BubbleCycles++
				}
			}
		}
	}
	return res, nil
}
