// Package baselines models the systems the paper compares RidgeWalker
// against (§VIII-B, §VIII-C). None of their artifacts are runnable here
// (FastRW was never released; LightRW/Su et al. are FPGA bitstreams;
// gSampler needs an H100), so each is reproduced as an architectural
// performance model — the mechanism that loses performance in the paper
// (blocking access, cache thrash, batch bubbles, warp lockstep) is modeled
// explicitly and fed with the real walk traces, so the losses emerge rather
// than being pasted in.
//
// Two fidelity levels are used (see DESIGN.md):
//   - LightRW and Su et al. run on the same cycle-level simulator as
//     RidgeWalker, with the core's ablation switches configured to match
//     their architectures (async+static ring for LightRW, blocking
//     multi-walker for Su et al.).
//   - FastRW and gSampler are trace-driven analytic models: the golden
//     engine produces per-query walk traces, and the model prices them
//     under the architecture's constraints.
package baselines

import (
	"fmt"

	"ridgewalker/internal/core"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/walk"
)

// Result is a baseline's predicted performance on a workload.
type Result struct {
	System string
	// ThroughputMSteps is millions of GRW steps per second.
	ThroughputMSteps float64
	// EffectiveBandwidthGBs is the paper's traversed-edge-footprint measure.
	EffectiveBandwidthGBs float64
	// Steps is the workload size used for the estimate.
	Steps int64
	// BubbleRatio, when the model exposes it, is the fraction of issue
	// slots wasted on terminated or stalled work.
	BubbleRatio float64
}

// Trace summarizes a walk workload for the analytic models (FastRW,
// gSampler). It accumulates one walk at a time, so execution layers can
// stream walks through AddWalk without materializing the full path set; the
// per-walk path is only read, never retained.
type Trace struct {
	// Steps is the total hop count across all walks.
	Steps int64
	// Lengths holds each walk's hop count in completion order (warp
	// assignment for the GPU model).
	Lengths []int
	// MaxLen is the longest walk's hop count.
	MaxLen int
	// Footprint is the graph's memory footprint in bytes.
	Footprint int64

	sumDeg float64
	visits int64
}

// NewTrace returns an empty trace bound to g's footprint.
func NewTrace(g *graph.CSR) *Trace {
	return &Trace{Footprint: g.MemoryFootprintBytes()}
}

// AddWalk folds one completed walk path (start vertex included) into the
// trace.
func (t *Trace) AddWalk(g *graph.CSR, path []graph.VertexID) {
	hops := len(path) - 1
	if hops < 0 {
		return
	}
	t.Steps += int64(hops)
	t.Lengths = append(t.Lengths, hops)
	if hops > t.MaxLen {
		t.MaxLen = hops
	}
	for _, v := range path {
		t.sumDeg += float64(g.Degree(v))
		t.visits++
	}
}

// SetWalks installs a pre-aggregated walk summary: per-walk hop counts in
// input order plus the degree sum and visit count along all paths. It is
// the bulk alternative to AddWalk for engines that stream walks out of
// input order but track indices.
func (t *Trace) SetWalks(hops []int, sumDeg float64, visits int64) {
	t.Lengths = hops
	t.Steps = 0
	t.MaxLen = 0
	for _, h := range hops {
		t.Steps += int64(h)
		if h > t.MaxLen {
			t.MaxLen = h
		}
	}
	t.sumDeg = sumDeg
	t.visits = visits
}

// MeanLen returns the mean hop count per walk.
func (t *Trace) MeanLen() float64 {
	if len(t.Lengths) == 0 {
		return 0
	}
	return float64(t.Steps) / float64(len(t.Lengths))
}

// MeanDegree returns the mean out-degree along visited vertices.
func (t *Trace) MeanDegree() float64 {
	if t.visits == 0 {
		return 0
	}
	return t.sumDeg / float64(t.visits)
}

// runTrace executes the workload on the golden engine and summarizes it.
func runTrace(g *graph.CSR, queries []walk.Query, cfg walk.Config) (*Trace, error) {
	res, err := walk.Run(g, queries, cfg)
	if err != nil {
		return nil, err
	}
	t := NewTrace(g)
	for _, p := range res.Paths {
		t.AddWalk(g, p)
	}
	return t, nil
}

// ResultFromStats converts simulator statistics into the uniform baseline
// Result shape (used for the simulator-backed baselines LightRW and
// Su et al.).
func ResultFromStats(system string, st *core.Stats) Result {
	return Result{
		System:                system,
		ThroughputMSteps:      st.ThroughputMSteps(),
		EffectiveBandwidthGBs: st.EffectiveBandwidthGBs(),
		Steps:                 st.Steps,
		BubbleRatio:           st.MeanBubbleRatio(),
	}
}

// RunLightRW models LightRW (Tan et al., SIGMOD'23): an HBM/DDR dataflow
// design with asynchronous memory access but batched ring-buffer execution
// in a predetermined issue order — early-terminating walks leave their
// reserved slots empty (§III Observation #2 reports bubble ratios up to
// 37%). That is exactly the simulator's async+static configuration.
func RunLightRW(g *graph.CSR, queries []walk.Query, wcfg walk.Config, platform hbm.Platform) (Result, *core.Stats, error) {
	cfg := LightRWCoreConfig(platform, wcfg)
	cfg.RecordPaths = false
	a, err := core.New(g, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	_, st, err := a.Run(queries)
	if err != nil {
		return Result{}, nil, err
	}
	return ResultFromStats("LightRW", st), st, nil
}

// LightRWCoreConfig returns the cycle-level simulator configuration that
// models LightRW's architecture on platform: asynchronous access with a
// static ring schedule.
func LightRWCoreConfig(platform hbm.Platform, wcfg walk.Config) core.Config {
	cfg := core.DefaultConfig(platform, wcfg)
	cfg.Async = true
	cfg.DynamicSched = false
	cfg.BatchSize = 256
	return cfg
}

// RunSuEtAl models Su et al. (FPL'21): a multi-walker HBM sampler whose
// walkers issue blocking accesses in a fixed schedule — the simulator's
// blocking+static configuration with a modest outstanding budget.
func RunSuEtAl(g *graph.CSR, queries []walk.Query, wcfg walk.Config, platform hbm.Platform) (Result, *core.Stats, error) {
	cfg := SuEtAlCoreConfig(platform, wcfg)
	cfg.RecordPaths = false
	a, err := core.New(g, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	_, st, err := a.Run(queries)
	if err != nil {
		return Result{}, nil, err
	}
	return ResultFromStats("SuEtAl", st), st, nil
}

// SuEtAlCoreConfig returns the cycle-level simulator configuration that
// models Su et al.'s architecture on platform: blocking multi-walker access
// with a fixed static schedule.
func SuEtAlCoreConfig(platform hbm.Platform, wcfg walk.Config) core.Config {
	cfg := core.DefaultConfig(platform, wcfg)
	cfg.Async = false
	cfg.DynamicSched = false
	cfg.BlockingOutstanding = 8
	cfg.BatchSize = 256
	return cfg
}

// clamp bounds x to [lo, hi].
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func validateWorkload(g *graph.CSR, queries []walk.Query, cfg walk.Config) error {
	if len(queries) == 0 {
		return fmt.Errorf("baselines: no queries")
	}
	return cfg.Validate(g)
}
