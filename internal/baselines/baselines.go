// Package baselines models the systems the paper compares RidgeWalker
// against (§VIII-B, §VIII-C). None of their artifacts are runnable here
// (FastRW was never released; LightRW/Su et al. are FPGA bitstreams;
// gSampler needs an H100), so each is reproduced as an architectural
// performance model — the mechanism that loses performance in the paper
// (blocking access, cache thrash, batch bubbles, warp lockstep) is modeled
// explicitly and fed with the real walk traces, so the losses emerge rather
// than being pasted in.
//
// Two fidelity levels are used (see DESIGN.md):
//   - LightRW and Su et al. run on the same cycle-level simulator as
//     RidgeWalker, with the core's ablation switches configured to match
//     their architectures (async+static ring for LightRW, blocking
//     multi-walker for Su et al.).
//   - FastRW and gSampler are trace-driven analytic models: the golden
//     engine produces per-query walk traces, and the model prices them
//     under the architecture's constraints.
package baselines

import (
	"fmt"

	"ridgewalker/internal/core"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/walk"
)

// Result is a baseline's predicted performance on a workload.
type Result struct {
	System string
	// ThroughputMSteps is millions of GRW steps per second.
	ThroughputMSteps float64
	// EffectiveBandwidthGBs is the paper's traversed-edge-footprint measure.
	EffectiveBandwidthGBs float64
	// Steps is the workload size used for the estimate.
	Steps int64
	// BubbleRatio, when the model exposes it, is the fraction of issue
	// slots wasted on terminated or stalled work.
	BubbleRatio float64
}

// trace summarizes a golden-engine run for the analytic models.
type trace struct {
	steps     int64
	queries   int
	lengths   []int
	meanLen   float64
	maxLen    int
	sumDeg    float64 // mean degree along visited vertices
	graph     *graph.CSR
	footprint int64
}

// runTrace executes the workload on the golden engine and summarizes it.
func runTrace(g *graph.CSR, queries []walk.Query, cfg walk.Config) (*trace, error) {
	res, err := walk.Run(g, queries, cfg)
	if err != nil {
		return nil, err
	}
	t := &trace{
		steps:     res.Steps,
		queries:   len(queries),
		graph:     g,
		footprint: g.MemoryFootprintBytes(),
	}
	var sumDeg float64
	var visits int64
	for _, p := range res.Paths {
		hops := len(p) - 1
		t.lengths = append(t.lengths, hops)
		if hops > t.maxLen {
			t.maxLen = hops
		}
		for _, v := range p {
			sumDeg += float64(g.Degree(v))
			visits++
		}
	}
	if len(t.lengths) > 0 {
		t.meanLen = float64(t.steps) / float64(len(t.lengths))
	}
	if visits > 0 {
		t.sumDeg = sumDeg / float64(visits)
	}
	return t, nil
}

// RunLightRW models LightRW (Tan et al., SIGMOD'23): an HBM/DDR dataflow
// design with asynchronous memory access but batched ring-buffer execution
// in a predetermined issue order — early-terminating walks leave their
// reserved slots empty (§III Observation #2 reports bubble ratios up to
// 37%). That is exactly the simulator's async+static configuration.
func RunLightRW(g *graph.CSR, queries []walk.Query, wcfg walk.Config, platform hbm.Platform) (Result, *core.Stats, error) {
	cfg := core.DefaultConfig(platform, wcfg)
	cfg.Async = true
	cfg.DynamicSched = false
	cfg.BatchSize = 256
	cfg.RecordPaths = false
	a, err := core.New(g, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	_, st, err := a.Run(queries)
	if err != nil {
		return Result{}, nil, err
	}
	return Result{
		System:                "LightRW",
		ThroughputMSteps:      st.ThroughputMSteps(),
		EffectiveBandwidthGBs: st.EffectiveBandwidthGBs(),
		Steps:                 st.Steps,
		BubbleRatio:           st.MeanBubbleRatio(),
	}, st, nil
}

// RunSuEtAl models Su et al. (FPL'21): a multi-walker HBM sampler whose
// walkers issue blocking accesses in a fixed schedule — the simulator's
// blocking+static configuration with a modest outstanding budget.
func RunSuEtAl(g *graph.CSR, queries []walk.Query, wcfg walk.Config, platform hbm.Platform) (Result, *core.Stats, error) {
	cfg := core.DefaultConfig(platform, wcfg)
	cfg.Async = false
	cfg.DynamicSched = false
	cfg.BlockingOutstanding = 8
	cfg.BatchSize = 256
	cfg.RecordPaths = false
	a, err := core.New(g, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	_, st, err := a.Run(queries)
	if err != nil {
		return Result{}, nil, err
	}
	return Result{
		System:                "SuEtAl",
		ThroughputMSteps:      st.ThroughputMSteps(),
		EffectiveBandwidthGBs: st.EffectiveBandwidthGBs(),
		Steps:                 st.Steps,
		BubbleRatio:           st.MeanBubbleRatio(),
	}, st, nil
}

// clamp bounds x to [lo, hi].
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func validateWorkload(g *graph.CSR, queries []walk.Query, cfg walk.Config) error {
	if len(queries) == 0 {
		return fmt.Errorf("baselines: no queries")
	}
	return cfg.Validate(g)
}
