package baselines

import (
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/walk"
)

// FastRWConfig parameterizes the FastRW model (Gao et al., DATE'23).
//
// FastRW is a dataflow GRW accelerator that (a) caches the graph in on-chip
// BRAM/URAM by access frequency, (b) issues blocking memory accesses with a
// shallow outstanding window when the cache misses, (c) schedules queries
// statically in bulk batches, and (d) pre-generates random numbers on the
// CPU and streams them from device memory, spending bandwidth RidgeWalker
// saves with on-fabric RNG (§VIII-B).
type FastRWConfig struct {
	Platform hbm.Platform
	// OnChipBytes is the BRAM+URAM budget for graph caching (U50 ≈ 24 MB).
	OnChipBytes int64
	// HitLatency / MissLatency are per-access cycles.
	HitLatency, MissLatency float64
	// Outstanding is the blocking window on misses.
	Outstanding float64
	// CachedPeakFraction is the fraction of the Equation-(1) peak the
	// design reaches when the working set is fully cached. §III Obs. #2
	// measures 45% for FastRW — a figure that already includes its static
	// scheduling bubbles, so no separate batch factor is applied.
	CachedPeakFraction float64
	// RNGStreamOverhead is the throughput tax of streaming pre-generated
	// random numbers from memory (one 8-byte word per step competing with
	// graph traffic).
	RNGStreamOverhead float64
	// WorkingSetBytes, when > 0, overrides the graph footprint for the
	// cache-fit decision (used with scaled dataset twins to preserve the
	// paper's fits-on-chip relationships).
	WorkingSetBytes int64
}

// DefaultFastRW returns the model tuned to FastRW's published platform
// (Alveo U50).
func DefaultFastRW() FastRWConfig {
	return FastRWConfig{
		Platform:           hbm.U50,
		OnChipBytes:        24 << 20,
		HitLatency:         2,
		MissLatency:        100,
		Outstanding:        12,
		CachedPeakFraction: 0.45,
		RNGStreamOverhead:  0.25,
	}
}

// RunFastRW prices the workload under the FastRW model. The walk trace
// comes from the golden engine; timing follows the architecture:
//
//	hitFrac  = 1 / (1 + (footprint / 8·OnChipBytes)²)
//	           (a smooth frequency-caching curve: hit rate stays high while
//	           the hot structure is within reach of on-chip memory and
//	           collapses as GRW's probabilistic neighbor selection — which
//	           defeats frequency caching, §I — spreads accesses across a
//	           structure many times the cache)
//	cached   = CachedPeakFraction × Eq.(1) peak steps  (45%: measured
//	           ceiling including FastRW's static-scheduling bubbles)
//	missing  = Outstanding / MissLatency steps/cycle   (blocking window)
//	rate     = harmonic mix of cached and missing rates
//	         ÷ (1 + RNGStreamOverhead)                 (CPU-pregenerated RNG)
func RunFastRW(g *graph.CSR, queries []walk.Query, wcfg walk.Config, cfg FastRWConfig) (Result, error) {
	if err := validateWorkload(g, queries, wcfg); err != nil {
		return Result{}, err
	}
	tr, err := runTrace(g, queries, wcfg)
	if err != nil {
		return Result{}, err
	}
	return EstimateFastRW(tr, cfg), nil
}

// EstimateFastRW prices an already-collected walk trace under the FastRW
// model (the pricing half of RunFastRW, usable with streamed traces).
func EstimateFastRW(tr *Trace, cfg FastRWConfig) Result {
	p := cfg.Platform
	footprint := tr.Footprint
	if cfg.WorkingSetBytes > 0 {
		footprint = cfg.WorkingSetBytes
	}
	reach := float64(footprint) / (8 * float64(cfg.OnChipBytes))
	hitFrac := 1 / (1 + reach*reach)

	cachedRate := cfg.CachedPeakFraction * p.Eq1PeakStepsPerSec()
	// FastRW's published design is a single deep dataflow pipeline; the
	// blocking window is not multiplied by channel count.
	missRate := cfg.Outstanding / cfg.MissLatency * p.CoreHz()

	rate := 1 / (hitFrac/cachedRate + (1-hitFrac)/missRate)
	rate /= 1 + cfg.RNGStreamOverhead

	return Result{
		System:                "FastRW",
		ThroughputMSteps:      rate / 1e6,
		EffectiveBandwidthGBs: rate * 8 / 1e9,
		Steps:                 tr.Steps,
		BubbleRatio:           1 - hitFrac,
	}
}
