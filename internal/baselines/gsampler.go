package baselines

import (
	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

// GPUConfig parameterizes the gSampler model (Gong et al., SOSP'23) on an
// NVIDIA H100 (§VIII-A3).
//
// gSampler executes GRWs as SIMT kernels with "super batching": walks are
// grouped into 32-thread warps that advance in lockstep, and a super-batch
// advances by whole kernel rounds. Its losses in the paper come from four
// mechanisms, each modeled explicitly:
//
//	warp lockstep   — a warp retires with its longest walk; early-
//	                  terminating threads idle (Fig. 9a, Fig. 10)
//	batch rounds    — kernel rounds continue until the batch's longest
//	                  walk ends; occupancy decays with the survivor count
//	degree skew     — scattered neighbor lists of wildly different lengths
//	                  defeat coalescing and memory-level parallelism (the
//	                  intro's "0.9% of random-access bandwidth" on real
//	                  graphs vs near-peak on balanced RMAT)
//	cache residence — graphs fitting L2 serve reads at cache bandwidth
type GPUConfig struct {
	Name string
	// RandomAccessGBs is the measured random 8-byte access bandwidth
	// (derived from the Fig. 10 upper-bound line, ~10 GStep/s × 8 B).
	RandomAccessGBs float64
	// L2Bytes is the cache capacity (H100: 50 MB).
	L2Bytes int64
	// L2Boost multiplies effective random throughput for the cached
	// fraction of the working set.
	L2Boost float64
	// WarpSize is the SIMT width (32).
	WarpSize int
	// KernelOverheadFraction is the residual per-super-batch launch and
	// synchronization cost.
	KernelOverheadFraction float64
	// WorkingSetBytes, when > 0, overrides the trace's graph footprint for
	// the cache-residence decision. The dataset twins are ~1/20 scale, so
	// comparisons set this to the original dataset's footprint to preserve
	// the paper's fits-in-L2 relationships.
	WorkingSetBytes int64
	// SkewCV2Override, when > 0, replaces the graph's measured squared
	// degree coefficient of variation. Scaled twins compress the degree
	// range of their power-law originals, so dataset comparisons pass the
	// original's skew.
	SkewCV2Override float64
	// MinSkewEff floors the degree-uniformity efficiency.
	MinSkewEff float64
	// DivergeK is the divergence half-length: a walk of mean length L runs
	// at efficiency L/(L+DivergeK). Short walks (PPR teleports, dangling
	// sinks, schema misses) strand warp slots and re-pay kernel-round
	// overheads before super-batch compaction recovers them; long walks
	// amortize those costs away.
	DivergeK float64
}

// DefaultH100 returns the H100 gSampler model.
func DefaultH100() GPUConfig {
	return GPUConfig{
		Name:                   "gSampler/H100",
		RandomAccessGBs:        80,
		L2Bytes:                50 << 20,
		L2Boost:                2.0,
		WarpSize:               32,
		KernelOverheadFraction: 0.05,
		MinSkewEff:             0.02,
		DivergeK:               15,
	}
}

// algorithmFactor scales gSampler's throughput by the per-step instruction
// and memory overhead of the sampling method (§VIII-C):
//
//	uniform (URW, PPR): 1 — one random read per step
//	alias (DeepWalk): 0.5 — twice the pseudo-random numbers and extra
//	  instructions limit gSampler to 0.9–2.4% of peak (§VIII-C1)
//	rejection (Node2Vec): 1.6 — biased walks read the neighbor list with
//	  structured bulk accesses the GPU coalesces, so gSampler is
//	  comparatively strong here (Fig. 9d shows the smallest gaps)
func algorithmFactor(alg walk.Algorithm) float64 {
	switch alg {
	case walk.DeepWalk:
		return 0.5
	case walk.Node2Vec:
		return 1.6
	case walk.MetaPath:
		return 0.8
	default:
		return 1.0
	}
}

// degreeCV2 returns the squared coefficient of variation of out-degrees
// over non-sink vertices.
func degreeCV2(g *graph.CSR) float64 {
	var n, sum, sum2 float64
	for v := 0; v < g.NumVertices; v++ {
		d := float64(g.Degree(graph.VertexID(v)))
		if d == 0 {
			continue
		}
		n++
		sum += d
		sum2 += d * d
	}
	if n == 0 || sum == 0 {
		return 0
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return variance / (mean * mean)
}

// RunGSampler prices the workload under the GPU model:
//
//	divEff  = meanLen / (meanLen + DivergeK)       (length amortization)
//	skewEff = clamp(1 / (1 + CV²degree))           (coalescing uniformity)
//	memRate = RandomAccessGBs/8 × (1 + cachedFrac×(L2Boost−1))
//	rate    = memRate × divEff × skewEff × algFactor ÷ (1 + kernel overhead)
//
// The warp-lockstep efficiency Σ len_i / (W × Σ_warps max len) is also
// computed from the real length distribution and reported as BubbleRatio.
func RunGSampler(g *graph.CSR, queries []walk.Query, wcfg walk.Config, cfg GPUConfig) (Result, error) {
	if err := validateWorkload(g, queries, wcfg); err != nil {
		return Result{}, err
	}
	tr, err := runTrace(g, queries, wcfg)
	if err != nil {
		return Result{}, err
	}
	return EstimateGSampler(g, tr, wcfg, cfg), nil
}

// EstimateGSampler prices an already-collected walk trace under the GPU
// model (the pricing half of RunGSampler, usable with streamed traces).
func EstimateGSampler(g *graph.CSR, tr *Trace, wcfg walk.Config, cfg GPUConfig) Result {
	// Warp divergence from the actual length distribution: walks are
	// assigned to warps in input order, as gSampler's super-batching does.
	w := cfg.WarpSize
	var usefulSlots, totalSlots int64
	for i := 0; i < len(tr.Lengths); i += w {
		maxLen := 0
		sum := 0
		for j := i; j < min(i+w, len(tr.Lengths)); j++ {
			sum += tr.Lengths[j]
			if tr.Lengths[j] > maxLen {
				maxLen = tr.Lengths[j]
			}
		}
		usefulSlots += int64(sum)
		totalSlots += int64(w * maxLen)
	}
	warpEff := 1.0
	if totalSlots > 0 {
		warpEff = float64(usefulSlots) / float64(totalSlots)
	}
	// Length-amortization divergence: walks shorter than DivergeK strand
	// their warp slots and re-pay kernel-round costs.
	divEff := 1.0
	if cfg.DivergeK > 0 {
		divEff = tr.MeanLen() / (tr.MeanLen() + cfg.DivergeK)
	}
	// Degree-uniformity efficiency: balanced RMAT graphs have near-constant
	// degrees and coalesce beautifully (gSampler approaches the measured
	// random-access ceiling in Fig. 10); power-law real graphs scatter warp
	// accesses across wildly different list lengths, and the intro's
	// profiling finds gSampler at 0.9–2.4% of random-access bandwidth.
	// 1/(1+CV²) captures the transition (CV = out-degree coefficient of
	// variation over non-sink vertices).
	cv2 := degreeCV2(g)
	if cfg.SkewCV2Override > 0 {
		cv2 = cfg.SkewCV2Override
	}
	skewEff := clamp(1/(1+cv2), cfg.MinSkewEff, 1)

	footprint := tr.Footprint
	if cfg.WorkingSetBytes > 0 {
		footprint = cfg.WorkingSetBytes
	}
	cachedFrac := clamp(float64(cfg.L2Bytes)/float64(footprint), 0, 1)
	memRate := cfg.RandomAccessGBs * 1e9 / 8 * (1 + cachedFrac*(cfg.L2Boost-1))

	rate := memRate * divEff * skewEff * algorithmFactor(wcfg.Algorithm)
	rate /= 1 + cfg.KernelOverheadFraction

	return Result{
		System:                cfg.Name,
		ThroughputMSteps:      rate / 1e6,
		EffectiveBandwidthGBs: rate * 8 / 1e9,
		Steps:                 tr.Steps,
		BubbleRatio:           1 - warpEff,
	}
}
