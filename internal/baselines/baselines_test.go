package baselines

import (
	"testing"

	"ridgewalker/internal/core"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/walk"
)

// sinkyGraph is a directed graph with dangling vertices, producing the
// variable walk lengths every baseline's weakness feeds on.
func sinkyGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.RMATConfig{
		Scale: 11, EdgeFactor: 8, A: 0.5, B: 0.2, C: 0.2, D: 0.1,
		Directed: true, Seed: 19,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallPlat() hbm.Platform {
	p := hbm.U250 // 4 channels, 2 pipelines: fast to simulate
	return p
}

func TestLightRWSlowerThanRidgeWalker(t *testing.T) {
	g := sinkyGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 40, Seed: 3}
	qs, err := walk.RandomQueries(g, w, 600, 5)
	if err != nil {
		t.Fatal(err)
	}
	lr, _, err := RunLightRW(g, qs, w, smallPlat())
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(smallPlat(), w)
	cfg.RecordPaths = false
	a, err := core.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := a.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	ratio := st.ThroughputMSteps() / lr.ThroughputMSteps
	// Fig. 8c/8d: RidgeWalker beats LightRW by 1.1×–1.7×.
	if ratio < 1.02 {
		t.Fatalf("RidgeWalker/LightRW = %.2f, want > 1", ratio)
	}
	if ratio > 5 {
		t.Fatalf("RidgeWalker/LightRW = %.2f, implausibly large (paper: 1.1–1.7)", ratio)
	}
}

func TestSuEtAlMuchSlowerThanRidgeWalker(t *testing.T) {
	g := sinkyGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 40, Seed: 7}
	qs, err := walk.RandomQueries(g, w, 400, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the platform to 8 channels (4 pipelines) on both sides to
	// keep the test fast.
	plat := hbm.U280
	plat.Channels = 8
	su, _, err := RunSuEtAl(g, qs, w, plat)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(plat, w)
	cfg.RecordPaths = false
	a, err := core.New(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := a.Run(qs)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 8b: ~9–10× on the full 32-channel U280; with 4 pipelines on the
	// RidgeWalker side and the full baseline the gap narrows, but must stay
	// well above 2×.
	if ratio := st.ThroughputMSteps() / su.ThroughputMSteps; ratio < 2 {
		t.Fatalf("RidgeWalker/SuEtAl = %.2f, want > 2", ratio)
	}
}

func TestFastRWCacheCliff(t *testing.T) {
	// Fig. 3a: FastRW holds up while the graph fits on-chip and collapses
	// beyond it.
	small := graph.SmallTestGraph()
	big := sinkyGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 30, Seed: 11}

	qsSmall, _ := walk.RandomQueries(small, w, 200, 1)
	qsBig, _ := walk.RandomQueries(big, w, 200, 1)

	cfg := DefaultFastRW()
	rSmall, err := RunFastRW(small, qsSmall, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Force the big graph far out of cache reach via the working-set
	// override (the scale-11 twin is small in absolute terms).
	cfg.WorkingSetBytes = cfg.OnChipBytes * 64
	rBig, err := RunFastRW(big, qsBig, w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rSmall.ThroughputMSteps < 5*rBig.ThroughputMSteps {
		t.Fatalf("cache cliff missing: cached %.1f vs thrashed %.1f MStep/s",
			rSmall.ThroughputMSteps, rBig.ThroughputMSteps)
	}
	// Cached throughput is capped at the 45%-of-peak static-scheduling
	// ceiling.
	peak := cfg.Platform.Eq1PeakStepsPerSec() / 1e6
	if rSmall.ThroughputMSteps > 0.46*peak {
		t.Fatalf("cached FastRW %.1f exceeds its 45%%-of-peak ceiling %.1f",
			rSmall.ThroughputMSteps, 0.45*peak)
	}
}

func TestFastRWMissFractionMonotoneInWorkingSet(t *testing.T) {
	g := sinkyGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 60, Seed: 13}
	qs, _ := walk.RandomQueries(g, w, 300, 3)
	prev := -1.0
	for _, mult := range []int64{1, 8, 64} {
		cfg := DefaultFastRW()
		cfg.WorkingSetBytes = cfg.OnChipBytes * mult
		r, err := RunFastRW(g, qs, w, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.BubbleRatio <= prev {
			t.Fatalf("miss fraction not increasing with working set: %.3f then %.3f", prev, r.BubbleRatio)
		}
		prev = r.BubbleRatio
	}
}

func TestGSamplerDivergencePenalty(t *testing.T) {
	// Uniform-length walks: no divergence. Variable lengths: penalty.
	gEven := graph.SmallTestGraph() // no sinks → all walks full length
	gVar := sinkyGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 40, Seed: 17}

	qsE, _ := walk.RandomQueries(gEven, w, 640, 2)
	qsV, _ := walk.RandomQueries(gVar, w, 640, 2)

	rE, err := RunGSampler(gEven, qsE, w, DefaultH100())
	if err != nil {
		t.Fatal(err)
	}
	rV, err := RunGSampler(gVar, qsV, w, DefaultH100())
	if err != nil {
		t.Fatal(err)
	}
	if rE.BubbleRatio > 0.01 {
		t.Fatalf("uniform-length walks diverged: %.3f", rE.BubbleRatio)
	}
	if rV.BubbleRatio < 0.1 {
		t.Fatalf("variable-length walks show no divergence: %.3f", rV.BubbleRatio)
	}
	if rV.ThroughputMSteps >= rE.ThroughputMSteps {
		t.Fatal("divergent workload not slower")
	}
}

func TestGSamplerCacheBoost(t *testing.T) {
	g := sinkyGraph(t)
	w := walk.Config{Algorithm: walk.URW, WalkLength: 40, Seed: 23}
	qs, _ := walk.RandomQueries(g, w, 320, 4)
	cached := DefaultH100()
	uncached := DefaultH100()
	uncached.L2Bytes = 0
	rC, err := RunGSampler(g, qs, w, cached)
	if err != nil {
		t.Fatal(err)
	}
	rU, err := RunGSampler(g, qs, w, uncached)
	if err != nil {
		t.Fatal(err)
	}
	if rC.ThroughputMSteps <= rU.ThroughputMSteps {
		t.Fatal("L2-resident graph not faster")
	}
}

func TestGSamplerDeepWalkSlowerThanURW(t *testing.T) {
	g := sinkyGraph(t)
	g.AttachWeights()
	urw := walk.Config{Algorithm: walk.URW, WalkLength: 40, Seed: 29}
	dw := walk.Config{Algorithm: walk.DeepWalk, WalkLength: 40, Seed: 29}
	qs, _ := walk.RandomQueries(g, urw, 320, 6)
	rU, err := RunGSampler(g, qs, urw, DefaultH100())
	if err != nil {
		t.Fatal(err)
	}
	rD, err := RunGSampler(g, qs, dw, DefaultH100())
	if err != nil {
		t.Fatal(err)
	}
	// Alias sampling halves gSampler's effective rate (§VIII-C1).
	if rD.ThroughputMSteps >= rU.ThroughputMSteps*0.7 {
		t.Fatalf("DeepWalk %.1f not clearly slower than URW %.1f on GPU",
			rD.ThroughputMSteps, rU.ThroughputMSteps)
	}
}

func TestBaselinesRejectEmptyWorkload(t *testing.T) {
	g := graph.SmallTestGraph()
	w := walk.Config{Algorithm: walk.URW, WalkLength: 5, Seed: 1}
	if _, err := RunFastRW(g, nil, w, DefaultFastRW()); err == nil {
		t.Error("FastRW accepted empty workload")
	}
	if _, err := RunGSampler(g, nil, w, DefaultH100()); err == nil {
		t.Error("gSampler accepted empty workload")
	}
}
