package hbm

import (
	"math"
	"testing"
)

func basicCfg() ChannelConfig {
	return ChannelConfig{ServiceInterval: 2, Latency: 10, MaxOutstanding: 8}
}

func TestChannelSingleRequestLatency(t *testing.T) {
	c := NewChannel(basicCfg())
	if !c.Push(Request{Addr: 0x100, Tag: 1}) {
		t.Fatal("push rejected")
	}
	var got Response
	var when int64 = -1
	for now := int64(0); now < 40; now++ {
		c.Tick(now)
		if r, ok := c.PopResponse(); ok {
			got = r
			when = now
			break
		}
	}
	if when < 0 {
		t.Fatal("request never completed")
	}
	if got.Tag != 1 || got.Addr != 0x100 {
		t.Fatalf("response = %+v", got)
	}
	// Service starts at cycle 0 (credit 1/2 at t=0... reaches 1 at t=1) and
	// completes latency cycles later; exact cycle depends on credit
	// accumulation, so just bound it.
	if when < 10 || when > 14 {
		t.Fatalf("completion at cycle %d, want ~latency (10..14)", when)
	}
}

func TestChannelServiceRate(t *testing.T) {
	// Interval 2 → ~0.5 transactions per cycle in steady state.
	cfg := basicCfg()
	cfg.MaxOutstanding = 1024
	c := NewChannel(cfg)
	const n = 500
	pushed := 0
	completed := 0
	var lastCycle int64
	for now := int64(0); now < 5000 && completed < n; now++ {
		if pushed < n {
			if c.Push(Request{Tag: uint64(pushed)}) {
				pushed++
			}
		}
		c.Tick(now)
		for {
			if _, ok := c.PopResponse(); !ok {
				break
			}
			completed++
			lastCycle = now
		}
	}
	if completed != n {
		t.Fatalf("completed %d/%d", completed, n)
	}
	want := float64(n)*2 + 10
	if math.Abs(float64(lastCycle)-want) > want*0.05 {
		t.Fatalf("drained %d transactions at interval 2 in %d cycles, want ~%v", n, lastCycle, want)
	}
}

func TestChannelFractionalInterval(t *testing.T) {
	// Interval 1.5 → 2 transactions every 3 cycles.
	cfg := ChannelConfig{ServiceInterval: 1.5, Latency: 5, MaxOutstanding: 4096}
	c := NewChannel(cfg)
	const n = 3000
	pushed, completed := 0, 0
	var lastCycle int64
	for now := int64(0); now < 20000 && completed < n; now++ {
		for pushed < n && c.Push(Request{Tag: uint64(pushed)}) {
			pushed++
		}
		c.Tick(now)
		for {
			if _, ok := c.PopResponse(); !ok {
				break
			}
			completed++
			lastCycle = now
		}
	}
	want := float64(n) * 1.5
	if math.Abs(float64(lastCycle)-want) > want*0.02 {
		t.Fatalf("%d tx at interval 1.5 took %d cycles, want ~%v", n, lastCycle, want)
	}
}

func TestChannelOutstandingWindow(t *testing.T) {
	cfg := basicCfg()
	cfg.MaxOutstanding = 3
	c := NewChannel(cfg)
	accepted := 0
	for i := 0; i < 10; i++ {
		if c.Push(Request{Tag: uint64(i)}) {
			accepted++
		}
	}
	if accepted != 3 {
		t.Fatalf("accepted %d, want 3 (window)", accepted)
	}
	if c.Stats().RejectedFull != 7 {
		t.Fatalf("RejectedFull = %d, want 7", c.Stats().RejectedFull)
	}
}

func TestChannelInOrderWithoutReorderWindow(t *testing.T) {
	cfg := basicCfg()
	cfg.MaxOutstanding = 64
	c := NewChannel(cfg)
	for i := 0; i < 20; i++ {
		c.Push(Request{Tag: uint64(i)})
	}
	var next uint64
	for now := int64(0); now < 200 && next < 20; now++ {
		c.Tick(now)
		for {
			r, ok := c.PopResponse()
			if !ok {
				break
			}
			if r.Tag != next {
				t.Fatalf("out-of-order response %d, want %d", r.Tag, next)
			}
			next++
		}
	}
	if next != 20 {
		t.Fatalf("only %d responses", next)
	}
}

func TestChannelReorderWindowReorders(t *testing.T) {
	cfg := basicCfg()
	cfg.MaxOutstanding = 64
	cfg.ReorderWindow = 12
	cfg.Seed = 7
	c := NewChannel(cfg)
	for i := 0; i < 50; i++ {
		c.Push(Request{Tag: uint64(i)})
	}
	var order []uint64
	for now := int64(0); now < 2000 && len(order) < 50; now++ {
		c.Tick(now)
		for {
			r, ok := c.PopResponse()
			if !ok {
				break
			}
			order = append(order, r.Tag)
		}
	}
	if len(order) != 50 {
		t.Fatalf("only %d responses", len(order))
	}
	inversions := 0
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("reorder window produced perfectly ordered responses")
	}
	// All tags present exactly once.
	seen := map[uint64]bool{}
	for _, tag := range order {
		if seen[tag] {
			t.Fatalf("tag %d delivered twice", tag)
		}
		seen[tag] = true
	}
}

func TestChannelUtilizationCounting(t *testing.T) {
	c := NewChannel(ChannelConfig{ServiceInterval: 1, Latency: 2, MaxOutstanding: 16})
	// 10 busy cycles then idle.
	for i := 0; i < 10; i++ {
		c.Push(Request{Tag: uint64(i)})
	}
	for now := int64(0); now < 40; now++ {
		c.Tick(now)
		for {
			if _, ok := c.PopResponse(); !ok {
				break
			}
		}
	}
	st := c.Stats()
	if st.Completed != 10 {
		t.Fatalf("completed %d", st.Completed)
	}
	if st.Utilization() <= 0 || st.Utilization() >= 1 {
		t.Fatalf("utilization = %v, want in (0,1)", st.Utilization())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []ChannelConfig{
		{ServiceInterval: 0, Latency: 1, MaxOutstanding: 1},
		{ServiceInterval: 1, Latency: 0, MaxOutstanding: 1},
		{ServiceInterval: 1, Latency: 1, MaxOutstanding: 0},
		{ServiceInterval: 1, Latency: 1, MaxOutstanding: 1, ReorderWindow: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := basicCfg().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestPlatformEq1Peak(t *testing.T) {
	// U55C: 74.5M tx/s × 32 channels × 8 B = 19.07 GB/s.
	got := U55C.Eq1PeakBytesPerSec()
	want := 74.5e6 * 32 * 8
	if math.Abs(got-want) > 1 {
		t.Fatalf("Eq1PeakBytesPerSec = %v, want %v", got, want)
	}
	if U55C.Eq1PeakStepsPerSec() != want/8 {
		t.Fatal("Eq1PeakStepsPerSec inconsistent with bytes")
	}
}

func TestPlatformServiceInterval(t *testing.T) {
	// U55C: 320 MHz core, 133M tx/s per channel → ~2.4 cycles per tx.
	got := U55C.ServiceIntervalCycles()
	if got < 2.3 || got > 2.5 {
		t.Fatalf("ServiceIntervalCycles = %v, want ~2.4", got)
	}
}

func TestPlatformPipelines(t *testing.T) {
	if U55C.Pipelines() != 16 {
		t.Fatalf("U55C pipelines = %d, want 16 (32 channels / 2)", U55C.Pipelines())
	}
	if U250.Pipelines() != 2 {
		t.Fatalf("U250 pipelines = %d, want 2", U250.Pipelines())
	}
}

func TestPlatformByName(t *testing.T) {
	for _, name := range []string{"U55C", "U50", "U250", "VCK5000", "U280"} {
		p, err := PlatformByName(name)
		if err != nil || p.Name != name {
			t.Errorf("PlatformByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := PlatformByName("U9000"); err == nil {
		t.Error("unknown platform accepted")
	}
}

func TestPlatformChannelConfigValid(t *testing.T) {
	for _, p := range Platforms {
		if err := p.ChannelConfig(1).Validate(); err != nil {
			t.Errorf("%s channel config invalid: %v", p.Name, err)
		}
	}
}
