// Package hbm models the random-access behavior of HBM2 and DDR4 memory
// channels as seen by a GRW accelerator, plus the paper's Equation (1)
// theoretical-peak calculator.
//
// Each GRW step issues 64-bit transactions at effectively random addresses,
// so nearly every access opens a new DRAM row. The model therefore reduces
// a channel to three parameters:
//
//   - a service interval (core cycles between random-transaction
//     completions, set by row-cycling limits),
//   - a round-trip latency (request to response), and
//   - a bounded outstanding-request window (controller queue).
//
// Responses can optionally complete out of order within the window (bank
// interleaving), which is what forces the access engine's reorder buffer to
// exist (paper §V-B).
package hbm

import (
	"fmt"

	"ridgewalker/internal/rng"
)

// Request is one 64-bit random-access transaction. Tag is an opaque value
// the issuer uses to reunite responses with metadata.
type Request struct {
	Addr uint64
	Tag  uint64
}

// Response reports completion of the transaction with the same Tag.
type Response struct {
	Addr uint64
	Tag  uint64
}

// ChannelConfig sets a channel's timing.
type ChannelConfig struct {
	// ServiceInterval is the mean number of core cycles between random
	// transaction completions (fractional values accumulate exactly).
	ServiceInterval float64
	// Latency is the round-trip cycles from issue to response availability.
	Latency int
	// MaxOutstanding bounds in-flight transactions (controller queue).
	MaxOutstanding int
	// ReorderWindow > 0 lets responses complete out of order within a
	// window of that many in-flight transactions, seeded by Seed. 0 keeps
	// responses strictly in issue order.
	ReorderWindow int
	Seed          uint64
}

// Validate checks config sanity.
func (c ChannelConfig) Validate() error {
	if c.ServiceInterval <= 0 {
		return fmt.Errorf("hbm: service interval %v, want > 0", c.ServiceInterval)
	}
	if c.Latency < 1 {
		return fmt.Errorf("hbm: latency %d, want >= 1", c.Latency)
	}
	if c.MaxOutstanding < 1 {
		return fmt.Errorf("hbm: max outstanding %d, want >= 1", c.MaxOutstanding)
	}
	if c.ReorderWindow < 0 {
		return fmt.Errorf("hbm: reorder window %d, want >= 0", c.ReorderWindow)
	}
	return nil
}

// ChannelStats counts a channel's lifetime activity.
type ChannelStats struct {
	Issued    int64
	Completed int64
	// RejectedFull counts Push attempts beyond the outstanding window.
	RejectedFull int64
	// BusyCycles counts cycles in which the service unit was occupied.
	BusyCycles int64
	Cycles     int64
}

// Utilization returns the fraction of cycles the channel was servicing a
// transaction.
func (s ChannelStats) Utilization() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.BusyCycles) / float64(s.Cycles)
}

type inflight struct {
	resp  Response
	ready int64
}

// Channel is one memory channel. It is a hwsim.Module.
type Channel struct {
	cfg ChannelConfig

	queue []Request // accepted, not yet serviced
	// inflight holds serviced transactions waiting out their latency.
	inflight []inflight
	done     []Response // completed, ready for PopResponse

	// credit accumulates service opportunities: each cycle adds
	// 1/ServiceInterval; a transaction starts when credit >= 1.
	credit float64
	jitter *rng.Stream
	stats  ChannelStats
}

// NewChannel builds a channel; panics on invalid config (configuration is
// programmer error, not runtime input).
func NewChannel(cfg ChannelConfig) *Channel {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Channel{cfg: cfg, jitter: rng.New(cfg.Seed)}
}

// CanAccept reports whether the outstanding window has room.
func (c *Channel) CanAccept() bool { return c.CanAcceptN(1) }

// CanAcceptN reports whether the window has room for n more transactions.
func (c *Channel) CanAcceptN(n int) bool {
	return len(c.queue)+len(c.inflight)+len(c.done)+n <= c.cfg.MaxOutstanding
}

// Push submits a transaction. It returns false when the window is full.
func (c *Channel) Push(req Request) bool {
	if !c.CanAccept() {
		c.stats.RejectedFull++
		return false
	}
	c.queue = append(c.queue, req)
	c.stats.Issued++
	return true
}

// Outstanding returns the number of transactions inside the channel.
func (c *Channel) Outstanding() int {
	return len(c.queue) + len(c.inflight) + len(c.done)
}

// Tick implements hwsim.Module: accrues service credit, starts transactions,
// and retires those whose latency has elapsed.
func (c *Channel) Tick(now int64) {
	c.stats.Cycles++
	if len(c.queue) > 0 || len(c.inflight) > 0 {
		c.stats.BusyCycles++
	}
	c.credit += 1 / c.cfg.ServiceInterval
	for c.credit >= 1 && len(c.queue) > 0 {
		c.credit--
		req := c.queue[0]
		c.queue = c.queue[1:]
		ready := now + int64(c.cfg.Latency)
		if c.cfg.ReorderWindow > 0 {
			// Bank interleaving: a uniformly jittered completion within
			// [0, ReorderWindow) extra cycles makes responses complete out
			// of issue order.
			ready += int64(c.jitter.Intn(c.cfg.ReorderWindow))
		}
		c.inflight = append(c.inflight, inflight{resp: Response{Addr: req.Addr, Tag: req.Tag}, ready: ready})
	}
	// Cap unused credit so an idle channel cannot bank unbounded bursts.
	if c.credit > 1 {
		c.credit = 1
	}
	// Retire completed transactions.
	kept := c.inflight[:0]
	for _, f := range c.inflight {
		if f.ready <= now {
			c.done = append(c.done, f.resp)
			c.stats.Completed++
		} else {
			kept = append(kept, f)
		}
	}
	c.inflight = kept
}

// PopResponse removes one completed response, if any.
func (c *Channel) PopResponse() (Response, bool) {
	if len(c.done) == 0 {
		return Response{}, false
	}
	r := c.done[0]
	c.done = c.done[1:]
	return r, true
}

// Stats returns a copy of the channel counters.
func (c *Channel) Stats() ChannelStats { return c.stats }
