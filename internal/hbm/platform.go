package hbm

import "fmt"

// Platform describes one evaluation board's memory system and clocking
// (paper Table III and §VIII-A). Two transaction rates matter:
//
//   - ServiceTxPerSecPerChan: what a channel can actually sustain for
//     random 64-bit transactions with bank-level parallelism — this drives
//     the simulator.
//   - Eq1TxPerSecPerChan: fmem/tRRD, the conservative row-activation-limited
//     rate Equation (1) uses as the *metric denominator* for bandwidth
//     utilization. The paper normalizes measured throughput against this.
type Platform struct {
	Name     string
	Memory   string
	Channels int
	// CoreMHz is the accelerator clock (paper: 300–320 MHz designs).
	CoreMHz float64
	// ServiceTxPerSecPerChan is the sustainable random transaction rate.
	ServiceTxPerSecPerChan float64
	// Eq1TxPerSecPerChan is fmem/tRRD in Equation (1).
	Eq1TxPerSecPerChan float64
	// SequentialGBs is the datasheet sequential bandwidth (reporting only).
	SequentialGBs float64
	// LatencyCycles is the random-access round-trip in core cycles.
	LatencyCycles int
	// MaxOutstanding is the per-channel controller window.
	MaxOutstanding int
}

// Predefined platforms. Service rates are set so that a pipeline-per-two-
// channels design saturates at throughputs scaling like Table III; Eq.(1)
// rates follow the paper's utilization accounting (§III, §VIII-D).
var (
	// U55C: the primary evaluation board (HBM2, 32 channels, 460 GB/s).
	U55C = Platform{
		Name: "U55C", Memory: "HBM2", Channels: 32, CoreMHz: 320,
		ServiceTxPerSecPerChan: 133e6, Eq1TxPerSecPerChan: 74.5e6,
		SequentialGBs: 460, LatencyCycles: 96, MaxOutstanding: 128,
	}
	// U50: FastRW's board (HBM2, 32 channels, 316 GB/s).
	U50 = Platform{
		Name: "U50", Memory: "HBM2", Channels: 32, CoreMHz: 300,
		ServiceTxPerSecPerChan: 92e6, Eq1TxPerSecPerChan: 52e6,
		SequentialGBs: 316, LatencyCycles: 100, MaxOutstanding: 128,
	}
	// U280: Su et al.'s board (HBM2, 32 channels), approximated between U50
	// and U55C (DESIGN.md §8).
	U280 = Platform{
		Name: "U280", Memory: "HBM2", Channels: 32, CoreMHz: 300,
		ServiceTxPerSecPerChan: 100e6, Eq1TxPerSecPerChan: 56e6,
		SequentialGBs: 460, LatencyCycles: 100, MaxOutstanding: 128,
	}
	// U250: LightRW's board (DDR4, 4 channels, 77 GB/s).
	U250 = Platform{
		Name: "U250", Memory: "DDR4", Channels: 4, CoreMHz: 320,
		ServiceTxPerSecPerChan: 130e6, Eq1TxPerSecPerChan: 80e6,
		SequentialGBs: 77, LatencyCycles: 110, MaxOutstanding: 64,
	}
	// VCK5000: Versal with a hardened NoC in front of 4 DDR4 channels
	// (102 GB/s aggregate); NoC arbitration lowers the sustainable random
	// rate (paper §VIII-E disables NoC interleaving).
	VCK5000 = Platform{
		Name: "VCK5000", Memory: "DDR4-NoC", Channels: 4, CoreMHz: 320,
		ServiceTxPerSecPerChan: 101e6, Eq1TxPerSecPerChan: 58e6,
		SequentialGBs: 102, LatencyCycles: 130, MaxOutstanding: 64,
	}
)

// Platforms lists all FPGA platforms in Table III order.
var Platforms = []Platform{U250, VCK5000, U50, U55C}

// PlatformByName looks a platform up by name.
func PlatformByName(name string) (Platform, error) {
	for _, p := range append([]Platform{U280}, Platforms...) {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("hbm: unknown platform %q", name)
}

// CoreHz returns the accelerator clock in Hz.
func (p Platform) CoreHz() float64 { return p.CoreMHz * 1e6 }

// ServiceIntervalCycles converts the per-channel service rate into core
// cycles per transaction for the channel model.
func (p Platform) ServiceIntervalCycles() float64 {
	return p.CoreHz() / p.ServiceTxPerSecPerChan
}

// Eq1PeakBytesPerSec is Equation (1): Bpeak = fmem/tRRD × Nchn × 64bit/8,
// the theoretical peak 64-bit random-access bandwidth across all channels.
func (p Platform) Eq1PeakBytesPerSec() float64 {
	return p.Eq1TxPerSecPerChan * float64(p.Channels) * 8
}

// Eq1PeakStepsPerSec converts Equation (1) into the GRW step rate the
// paper's normalized-throughput figures use (8 bytes of traversed-edge
// footprint per step).
func (p Platform) Eq1PeakStepsPerSec() float64 {
	return p.Eq1PeakBytesPerSec() / 8
}

// ChannelConfig derives the channel model parameters for this platform.
func (p Platform) ChannelConfig(seed uint64) ChannelConfig {
	return ChannelConfig{
		ServiceInterval: p.ServiceIntervalCycles(),
		Latency:         p.LatencyCycles,
		MaxOutstanding:  p.MaxOutstanding,
		ReorderWindow:   8,
		Seed:            seed,
	}
}

// Pipelines returns the number of asynchronous pipelines this platform
// supports: each pipeline occupies two channels (one row-access, one
// column-access; paper §VIII-A says 32/2 = 16 on U55C).
func (p Platform) Pipelines() int { return p.Channels / 2 }
