package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses one "point=mode[:k=v...]" fault-injection directive,
// the syntax the CLI -chaos flag and the chaos tests share:
//
//	batch-exec=panic
//	cold-decode=error:every=3:limit=2
//	batch-exec=panic:tag=cpu-pipelined:after=1
//
// Mode is "error" or "panic"; the optional keys are every, after,
// limit (ints) and tag (string).
func ParseSpec(directive string) (Point, Spec, error) {
	name, rest, ok := strings.Cut(directive, "=")
	if !ok {
		return "", Spec{}, fmt.Errorf("fault: bad directive %q (want point=mode[:k=v...])", directive)
	}
	point := Point(strings.TrimSpace(name))
	valid := false
	for _, p := range Points() {
		if p == point {
			valid = true
			break
		}
	}
	if !valid {
		return "", Spec{}, fmt.Errorf("fault: unknown injection point %q (have %v)", point, Points())
	}
	parts := strings.Split(rest, ":")
	spec := Spec{Every: 1}
	switch strings.TrimSpace(parts[0]) {
	case "error":
		spec.Mode = ModeError
	case "panic":
		spec.Mode = ModePanic
	default:
		return "", Spec{}, fmt.Errorf("fault: bad mode %q in %q (want error or panic)", parts[0], directive)
	}
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", Spec{}, fmt.Errorf("fault: bad option %q in %q (want k=v)", kv, directive)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		if k == "tag" {
			spec.Tag = v
			continue
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return "", Spec{}, fmt.Errorf("fault: bad value %q for %s in %q", v, k, directive)
		}
		switch k {
		case "every":
			spec.Every = n
		case "after":
			spec.After = n
		case "limit":
			spec.Limit = n
		default:
			return "", Spec{}, fmt.Errorf("fault: unknown option %q in %q", k, directive)
		}
	}
	if spec.Every < 1 {
		spec.Every = 1
	}
	return point, spec, nil
}

// ParseSpecs parses a comma-separated list of directives and enables
// each one, returning the enabled points. On error nothing is enabled.
func ParseSpecs(directives string) ([]Point, error) {
	var parsed []Point
	var specs []Spec
	for _, d := range strings.Split(directives, ",") {
		d = strings.TrimSpace(d)
		if d == "" {
			continue
		}
		p, s, err := ParseSpec(d)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, p)
		specs = append(specs, s)
	}
	for i, p := range parsed {
		Enable(p, specs[i])
	}
	return parsed, nil
}
