// Package fault is the serving stack's failure-domain toolkit: a
// deterministic fault-injection registry with named injection points
// threaded through the execution layers, the typed engine-fault error
// that panic containment converts crashes into, and the per-class
// circuit breaker the planner's demotion path rides on.
//
// Injection is zero-cost when disabled: every Check compiles to one
// atomic load on the disarmed fast path, so the points can sit on hot
// paths (cold-row decode, shard ring hand-off) without a steady-state
// tax. When armed, firing is a deterministic function of the per-point
// check counter and the Spec's After/Every/Limit schedule — two runs of
// the same single-threaded workload under the same spec fault at the
// same checks — which is what makes the chaos matrix a regression test
// instead of a dice roll.
package fault

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Point names one injection site threaded through the stack.
type Point string

// The registered injection points.
const (
	// SamplerBuild fires in the sampler construction path (registry
	// acquire and direct builds).
	SamplerBuild Point = "sampler-build"
	// ColdDecode fires in the tiered store's cold-row decode hot path.
	// Its error-mode injections surface as contained panics: the decode
	// API has no error return.
	ColdDecode Point = "cold-decode"
	// ShardHandoff fires at the sharded engine's migration-ring push
	// (walker hand-off between shard workers). Like ColdDecode it
	// surfaces as a contained panic.
	ShardHandoff Point = "shard-handoff"
	// DispatchFlush fires at the top of the serving layer's batch-group
	// dispatch (a flushed group about to run).
	DispatchFlush Point = "dispatch-flush"
	// CalibrationProbe fires in the planner's calibration probe step;
	// the tag is the probed candidate's backend name.
	CalibrationProbe Point = "calibration-probe"
	// BatchExec fires inside backend batch execution, at the engines'
	// cooperative-stop checkpoints; the tag is the executing backend
	// name ("cpu", "cpu-pipelined", "cpu-sharded").
	BatchExec Point = "batch-exec"
)

// Points lists every registered injection point in deterministic order.
func Points() []Point {
	return []Point{SamplerBuild, ColdDecode, ShardHandoff, DispatchFlush, CalibrationProbe, BatchExec}
}

// Mode selects how an injection surfaces.
type Mode int

const (
	// ModeError returns a typed engine-fault error from the check.
	// Points on no-error hot paths (ColdDecode, ShardHandoff) surface
	// it as a contained panic instead.
	ModeError Mode = iota
	// ModePanic panics with the typed engine fault; a containment
	// boundary (Contain) converts it back into an error.
	ModePanic
)

func (m Mode) String() string {
	if m == ModePanic {
		return "panic"
	}
	return "error"
}

// Spec schedules a point's injections deterministically over its
// eligible checks (checks whose tag matches the spec's).
type Spec struct {
	// Mode selects error-return or panic injection.
	Mode Mode
	// Every fires on the 1st, (Every+1)th, ... eligible check after the
	// After skip. 0 or 1 means every eligible check.
	Every int
	// After skips the first After eligible checks entirely.
	After int
	// Limit caps total fires; 0 means unlimited. A finite limit makes
	// the fault transient: later checks pass, so the chaos tests can
	// pin recovery (byte-identical retries, breaker restore) too.
	Limit int
	// Tag, when nonempty, restricts firing to CheckTag calls carrying
	// this tag — e.g. fault only "cpu-pipelined" batch execution while
	// "cpu" stays healthy, which is how the breaker's demote-then-serve
	// path is tested.
	Tag string
}

// String renders the spec the way the CLI -chaos flag parses it.
func (s Spec) String() string {
	out := s.Mode.String()
	if s.Every > 1 {
		out += fmt.Sprintf(":every=%d", s.Every)
	}
	if s.After > 0 {
		out += fmt.Sprintf(":after=%d", s.After)
	}
	if s.Limit > 0 {
		out += fmt.Sprintf(":limit=%d", s.Limit)
	}
	if s.Tag != "" {
		out += ":tag=" + s.Tag
	}
	return out
}

// ErrEngineFault is the sentinel every contained engine failure —
// injected or real — matches through errors.Is. Serving layers convert
// it into per-request replies, breaker strikes, and quarantine counts
// while the process keeps serving.
var ErrEngineFault = errors.New("engine fault")

// EngineFault is the typed error a containment boundary produces: the
// injection point (empty for organic panics), the boundary that caught
// it, and — for contained panics — the panic value and stack.
type EngineFault struct {
	// Point is the injection point that fired, "" when the fault was an
	// organic (non-injected) panic.
	Point Point
	// Boundary names the containment boundary that produced the error
	// ("exec-worker", "shard-worker", "batch-group", ...). Empty until
	// a boundary catches the fault.
	Boundary string
	// PanicValue and Stack record a contained panic; nil/empty for
	// error-mode injections.
	PanicValue any
	Stack      []byte
}

func (e *EngineFault) Error() string {
	msg := "fault: engine fault"
	if e.Boundary != "" {
		msg += " at " + e.Boundary
	}
	if e.Point != "" {
		msg += fmt.Sprintf(" (injected: %s)", e.Point)
	}
	if e.PanicValue != nil {
		if _, ok := e.PanicValue.(*EngineFault); !ok {
			msg += fmt.Sprintf(": panic: %v", e.PanicValue)
		}
	}
	return msg
}

// Unwrap makes errors.Is(err, ErrEngineFault) hold.
func (e *EngineFault) Unwrap() error { return ErrEngineFault }

// Contain runs fn, converting a panic into a typed *EngineFault carrying
// the given boundary name (and the injection point, when the panic was
// an injected one). It is the stack's panic firewall: worker goroutines,
// batch-group dispatch, and calibration probes all run under it, so one
// crashing walk kills its group, never the process. Non-panic errors
// pass through unchanged.
func Contain(boundary string, fn func() error) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if ef, ok := rec.(*EngineFault); ok {
				if ef.Boundary == "" {
					ef.Boundary = boundary
				}
				err = ef
				return
			}
			err = &EngineFault{Boundary: boundary, PanicValue: rec, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// pointState tracks one enabled point's schedule position.
type pointState struct {
	spec   Spec
	checks int64 // eligible (tag-matched) checks observed
	fired  int64
}

var (
	// armed counts enabled points; the disarmed fast path is one atomic
	// load.
	armed atomic.Int32

	mu     sync.Mutex
	points map[Point]*pointState
)

// Armed reports whether any injection point is enabled. Hot paths may
// use it to guard a check, though Check itself starts with the same
// single atomic load.
func Armed() bool { return armed.Load() != 0 }

// Enable arms p with the given schedule, replacing any previous spec
// (and resetting p's counters).
func Enable(p Point, s Spec) {
	if s.Every < 1 {
		s.Every = 1
	}
	mu.Lock()
	if points == nil {
		points = map[Point]*pointState{}
	}
	if _, ok := points[p]; !ok {
		armed.Add(1)
	}
	points[p] = &pointState{spec: s}
	mu.Unlock()
}

// Disable disarms p.
func Disable(p Point) {
	mu.Lock()
	if _, ok := points[p]; ok {
		delete(points, p)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset disarms every point and clears all counters.
func Reset() {
	mu.Lock()
	if n := len(points); n > 0 {
		armed.Add(-int32(n))
	}
	points = nil
	mu.Unlock()
}

// Fired reports how many times p has fired since it was enabled.
func Fired(p Point) int64 {
	mu.Lock()
	defer mu.Unlock()
	if st := points[p]; st != nil {
		return st.fired
	}
	return 0
}

// Counts snapshots fire counts for every enabled point.
func Counts() map[Point]int64 {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[Point]int64, len(points))
	for p, st := range points {
		out[p] = st.fired
	}
	return out
}

// Check is CheckTag with an empty tag: it fires under any spec whose
// Tag is empty. Error-mode injections return the typed engine fault;
// panic-mode injections panic with it (contain upstream).
func Check(p Point) error {
	if armed.Load() == 0 {
		return nil
	}
	return checkSlow(p, "")
}

// CheckTag is Check for sites that carry a discriminator (the backend
// name). A spec with an empty Tag matches every tag; a nonempty Tag
// matches only its own, and non-matching checks do not advance the
// schedule.
func CheckTag(p Point, tag string) error {
	if armed.Load() == 0 {
		return nil
	}
	return checkSlow(p, tag)
}

// MustCheck is Check for no-error hot paths (cold-row decode, ring
// hand-off): any injection — either mode — surfaces as a panic carrying
// the typed fault, to be converted back by the nearest Contain.
func MustCheck(p Point) {
	if armed.Load() == 0 {
		return
	}
	if err := checkSlow(p, ""); err != nil {
		panic(err)
	}
}

func checkSlow(p Point, tag string) error {
	mu.Lock()
	st := points[p]
	if st == nil {
		mu.Unlock()
		return nil
	}
	if st.spec.Tag != "" && st.spec.Tag != tag {
		mu.Unlock()
		return nil
	}
	st.checks++
	seq := st.checks - int64(st.spec.After)
	fire := seq >= 1 && (seq-1)%int64(st.spec.Every) == 0 &&
		(st.spec.Limit == 0 || st.fired < int64(st.spec.Limit))
	if fire {
		st.fired++
	}
	mode := st.spec.Mode
	mu.Unlock()
	if !fire {
		return nil
	}
	ef := &EngineFault{Point: p}
	if mode == ModePanic {
		panic(ef)
	}
	return ef
}
