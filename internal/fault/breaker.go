package fault

import (
	"sort"
	"sync"
	"time"
)

// Breaker is a per-key (plan-class) circuit breaker over consecutive
// engine faults. The serving layer reports Fault/Success per executed
// batch group; when a key accumulates `threshold` consecutive faults
// the breaker opens (the caller demotes the class to the known-good
// cpu backend). After `cooldown` the next AllowProbe returns true
// exactly once (half-open): the caller runs a health probe of the
// demoted candidate and calls Reset on success or Reopen on failure,
// which restarts the cool-down clock.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	keys      map[string]*breakerKey
	opens     int64
}

type breakerKey struct {
	consecutive int
	open        bool
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
}

// BreakerStatus is one key's snapshot for diagnostics.
type BreakerStatus struct {
	Key         string
	State       string // "closed", "open", "half-open"
	Consecutive int
	OpenedAt    time.Time
}

// NewBreaker returns a breaker opening after `threshold` consecutive
// faults and half-opening `cooldown` after it last opened.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		keys:      map[string]*breakerKey{},
	}
}

// SetClock overrides the breaker's time source (tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// Fault records one engine fault on key and reports whether this fault
// transitioned the key's breaker from closed to open (the caller should
// demote exactly when it did).
func (b *Breaker) Fault(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := b.key(key)
	k.consecutive++
	if !k.open && k.consecutive >= b.threshold {
		k.open = true
		k.openedAt = b.now()
		k.probing = false
		b.opens++
		return true
	}
	return false
}

// Success records one fault-free group on key, zeroing its consecutive
// count. It does not close an open breaker: only a successful half-open
// probe (Reset) does, so a demoted class serving fine on cpu doesn't
// mask the original backend's health.
func (b *Breaker) Success(key string) {
	b.mu.Lock()
	if k := b.keys[key]; k != nil {
		k.consecutive = 0
	}
	b.mu.Unlock()
}

// AllowProbe reports whether key is open, cooled down, and not already
// being probed; it returns true at most once per cool-down window
// (marking the key half-open) so exactly one caller runs the health
// probe.
func (b *Breaker) AllowProbe(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := b.keys[key]
	if k == nil || !k.open || k.probing {
		return false
	}
	if b.now().Sub(k.openedAt) < b.cooldown {
		return false
	}
	k.probing = true
	return true
}

// Reset closes key's breaker after a successful half-open probe.
func (b *Breaker) Reset(key string) {
	b.mu.Lock()
	if k := b.keys[key]; k != nil {
		k.open = false
		k.probing = false
		k.consecutive = 0
	}
	b.mu.Unlock()
}

// Reopen restarts key's cool-down after a failed half-open probe.
func (b *Breaker) Reopen(key string) {
	b.mu.Lock()
	if k := b.keys[key]; k != nil && k.open {
		k.probing = false
		k.openedAt = b.now()
	}
	b.mu.Unlock()
}

// Open reports whether key's breaker is currently open.
func (b *Breaker) Open(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	k := b.keys[key]
	return k != nil && k.open
}

// Opens returns the total number of closed→open transitions.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// ResetAll forgets all per-key state (graph swap) but keeps the opens
// total for metrics continuity.
func (b *Breaker) ResetAll() {
	b.mu.Lock()
	b.keys = map[string]*breakerKey{}
	b.mu.Unlock()
}

// Snapshot returns every tracked key's status, sorted by key.
func (b *Breaker) Snapshot() []BreakerStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerStatus, 0, len(b.keys))
	for key, k := range b.keys {
		st := BreakerStatus{Key: key, State: "closed", Consecutive: k.consecutive}
		if k.open {
			st.State = "open"
			st.OpenedAt = k.openedAt
			if k.probing {
				st.State = "half-open"
			}
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

func (b *Breaker) key(key string) *breakerKey {
	k := b.keys[key]
	if k == nil {
		k = &breakerKey{}
		b.keys[key] = k
	}
	return k
}
