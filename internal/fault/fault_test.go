package fault

import (
	"errors"
	"testing"
	"time"
)

func TestCheckSchedule(t *testing.T) {
	defer Reset()
	Reset()
	if Armed() {
		t.Fatal("armed before any Enable")
	}
	if err := Check(BatchExec); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}

	// After=2, Every=3, Limit=2: eligible checks 3, 6 fire; 9 would but
	// the limit stops it.
	Enable(BatchExec, Spec{Mode: ModeError, Every: 3, After: 2, Limit: 2})
	var fires []int
	for i := 1; i <= 12; i++ {
		if err := Check(BatchExec); err != nil {
			if !errors.Is(err, ErrEngineFault) {
				t.Fatalf("check %d: error %v does not match ErrEngineFault", i, err)
			}
			fires = append(fires, i)
		}
	}
	want := []int{3, 6}
	if len(fires) != len(want) || fires[0] != want[0] || fires[1] != want[1] {
		t.Fatalf("fires at checks %v, want %v", fires, want)
	}
	if got := Fired(BatchExec); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestCheckTagFiltering(t *testing.T) {
	defer Reset()
	Enable(BatchExec, Spec{Mode: ModeError, Tag: "cpu-pipelined"})
	if err := CheckTag(BatchExec, "cpu"); err != nil {
		t.Fatalf("non-matching tag fired: %v", err)
	}
	if err := Check(BatchExec); err != nil {
		t.Fatalf("untagged check fired against tagged spec: %v", err)
	}
	if err := CheckTag(BatchExec, "cpu-pipelined"); err == nil {
		t.Fatal("matching tag did not fire")
	}
	// Non-matching checks must not advance the schedule.
	Enable(ColdDecode, Spec{Mode: ModeError, Tag: "x", After: 1})
	_ = CheckTag(ColdDecode, "y") // ignored entirely
	if err := CheckTag(ColdDecode, "x"); err != nil {
		t.Fatal("first eligible check should be skipped by After=1")
	}
	if err := CheckTag(ColdDecode, "x"); err == nil {
		t.Fatal("second eligible check should fire")
	}
}

func TestContainPanicMode(t *testing.T) {
	defer Reset()
	Enable(ShardHandoff, Spec{Mode: ModePanic})
	err := Contain("shard-worker", func() error {
		MustCheck(ShardHandoff)
		return nil
	})
	if !errors.Is(err, ErrEngineFault) {
		t.Fatalf("contained panic = %v, want ErrEngineFault", err)
	}
	var ef *EngineFault
	if !errors.As(err, &ef) {
		t.Fatalf("error %T is not *EngineFault", err)
	}
	if ef.Point != ShardHandoff || ef.Boundary != "shard-worker" {
		t.Fatalf("fault = %+v, want point/boundary preserved", ef)
	}
}

func TestContainOrganicPanic(t *testing.T) {
	err := Contain("batch-group", func() error { panic("walker exploded") })
	var ef *EngineFault
	if !errors.As(err, &ef) || !errors.Is(err, ErrEngineFault) {
		t.Fatalf("organic panic not converted: %v", err)
	}
	if ef.Point != "" || ef.PanicValue != "walker exploded" || len(ef.Stack) == 0 {
		t.Fatalf("fault = %+v, want empty point + panic value + stack", ef)
	}
	// Plain errors pass through untouched.
	sentinel := errors.New("not a fault")
	if got := Contain("x", func() error { return sentinel }); got != sentinel {
		t.Fatalf("plain error mangled: %v", got)
	}
	if got := Contain("x", func() error { return nil }); got != nil {
		t.Fatalf("nil mangled: %v", got)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(3, 5*time.Second)
	b.SetClock(func() time.Time { return now })

	// Two faults then success: consecutive resets, never opens.
	b.Fault("k")
	b.Fault("k")
	b.Success("k")
	if b.Fault("k") {
		t.Fatal("opened after reset sequence")
	}
	if b.Fault("k") {
		t.Fatal("opened at 2 consecutive")
	}
	if !b.Fault("k") {
		t.Fatal("did not open at threshold")
	}
	if !b.Open("k") || b.Opens() != 1 {
		t.Fatalf("open=%v opens=%d after threshold", b.Open("k"), b.Opens())
	}
	if b.Fault("k") {
		t.Fatal("re-reported open on already-open key")
	}

	// Probe gate: closed until cool-down, then exactly once.
	if b.AllowProbe("k") {
		t.Fatal("probe allowed before cool-down")
	}
	now = now.Add(6 * time.Second)
	if !b.AllowProbe("k") {
		t.Fatal("probe not allowed after cool-down")
	}
	if b.AllowProbe("k") {
		t.Fatal("second concurrent probe allowed")
	}

	// Failed probe reopens: cool-down restarts.
	b.Reopen("k")
	if b.AllowProbe("k") {
		t.Fatal("probe allowed right after reopen")
	}
	now = now.Add(6 * time.Second)
	if !b.AllowProbe("k") {
		t.Fatal("probe not allowed after second cool-down")
	}

	// Successful probe closes.
	b.Reset("k")
	if b.Open("k") {
		t.Fatal("still open after Reset")
	}
	snap := b.Snapshot()
	if len(snap) != 1 || snap[0].State != "closed" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestParseSpec(t *testing.T) {
	p, s, err := ParseSpec("batch-exec=panic:every=3:after=1:limit=2:tag=cpu")
	if err != nil {
		t.Fatal(err)
	}
	if p != BatchExec || s.Mode != ModePanic || s.Every != 3 || s.After != 1 || s.Limit != 2 || s.Tag != "cpu" {
		t.Fatalf("parsed %v %+v", p, s)
	}
	if s.String() != "panic:every=3:after=1:limit=2:tag=cpu" {
		t.Fatalf("String() = %q", s.String())
	}
	for _, bad := range []string{"", "batch-exec", "nope=error", "batch-exec=maybe", "batch-exec=error:every=x", "batch-exec=error:bogus=1"} {
		if _, _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
	defer Reset()
	pts, err := ParseSpecs("sampler-build=error:limit=1, cold-decode=panic")
	if err != nil || len(pts) != 2 {
		t.Fatalf("ParseSpecs: %v %v", pts, err)
	}
	if !Armed() {
		t.Fatal("ParseSpecs did not arm")
	}
}
