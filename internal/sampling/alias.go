package sampling

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// Packed alias-row locator layout: offset(40) | len(24). One word per
// vertex locates its alias row inside the shared prob/alias arenas — the
// software shadow of the paper's 256-bit RP entry, which points at a flat
// pre-sampled auxiliary region in HBM rather than at per-vertex heap
// objects. 2^40 arena slots (1T edges) and 2^24 max degree (16.7M)
// comfortably exceed every graph this repository generates.
const (
	aliasDegBits  = 24
	aliasDegMask  = 1<<aliasDegBits - 1
	aliasOffShift = aliasDegBits
	aliasMaxOff   = 1 << 40
)

// aliasScratch is one builder's reusable Vose worklist storage, grown to
// the largest row it has seen and recycled across vertices, so a
// steady-state build performs no per-vertex allocations.
type aliasScratch struct {
	scaled []float64
	small  []int32
	large  []int32
}

func (sc *aliasScratch) grow(n int) {
	if cap(sc.scaled) < n {
		sc.scaled = make([]float64, n)
		sc.small = make([]int32, 0, n)
		sc.large = make([]int32, 0, n)
	}
}

// buildAliasRow runs Vose's stable two-worklist construction for one
// weight row, writing the table into prob/alias (both of length
// len(weights)). The construction is deterministic in the weights, so
// every representation built from the same row draws identically.
func buildAliasRow(prob []float64, alias []int32, weights []float32, sc *aliasScratch) error {
	n := len(weights)
	if n == 0 {
		return fmt.Errorf("sampling: alias table over empty weight set")
	}
	total := 0.0
	for i, w := range weights {
		// NaN and non-positive weights fail the first test; +Inf passes
		// it but would poison total (every scaled entry becomes NaN and
		// the table silently draws garbage), so reject it explicitly.
		if !(w > 0) || math.IsInf(float64(w), 1) {
			return fmt.Errorf("sampling: weight[%d]=%v, want finite and > 0", i, w)
		}
		total += float64(w)
	}
	sc.grow(n)
	scaled := sc.scaled[:n]
	small := sc.small[:0]
	large := sc.large[:0]
	for i, w := range weights {
		scaled[i] = float64(w) * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
		alias[i] = i
	}
	for _, i := range small {
		// Only numerically-rounded leftovers end up here.
		prob[i] = 1
		alias[i] = i
	}
	return nil
}

// AliasTable is a standalone Walker alias structure over n weighted
// outcomes, supporting O(1) draws after O(n) construction. The graph-wide
// samplers no longer build one of these per vertex — they pack all rows
// into an AliasSampler's shared arenas — but the standalone form remains
// for callers sampling over ad-hoc weight sets.
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds a table for the given positive, finite weights.
func NewAliasTable(weights []float32) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: alias table over empty weight set")
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	if err := buildAliasRow(t.prob, t.alias, weights, &aliasScratch{}); err != nil {
		return nil, err
	}
	return t, nil
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// Draw returns an outcome index distributed proportionally to the weights.
func (t *AliasTable) Draw(r *rng.Stream) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// AliasSampler implements DeepWalk's weighted neighbor selection with a
// flat, arena-backed alias store: every vertex's alias table is packed
// into two shared arrays (prob, alias) laid out exactly like the CSR's
// edge space, plus one packed locator word (offset|len) per vertex —
// mirroring the paper's RP entries, which point into a flat pre-sampled
// region of HBM. Draws are pointer-free (one locator load, two arena
// loads) and the whole store is three slices, so GC scan load is O(1)
// instead of O(V) table pointers.
type AliasSampler struct {
	prob  []float64
	alias []int32
	loc   []uint64
	// bytes is the prob+alias arena footprint, tracked at build so
	// TableBytes is O(1).
	bytes int64

	// spillProb/spillAlias hold incrementally rebuilt rows of a sampler
	// derived via WithRebuiltRows: the base arenas stay shared (and
	// untouched), dirty rows are re-packed here, and their locators carry
	// offsets displaced by len(prob) — off >= len(prob) routes a draw to
	// the spill arenas. Nil on a base sampler.
	spillProb  []float64
	spillAlias []int32
}

// NewAliasSampler packs alias tables for every vertex of g with degree > 0
// into the shared arenas, building rows in parallel across
// runtime.GOMAXPROCS(0) workers. The graph must be weighted.
func NewAliasSampler(g *graph.CSR) (*AliasSampler, error) {
	return NewAliasSamplerWorkers(g, 0)
}

// NewAliasSamplerWorkers is NewAliasSampler with an explicit builder pool
// size (0 means runtime.GOMAXPROCS(0)). Vertices are partitioned into
// contiguous edge-balanced ranges, one per worker; each worker constructs
// its rows with reusable Vose scratch, so a build performs O(1)
// allocations beyond the three arenas regardless of graph size. The
// arenas and every row in them are identical at any worker count.
func NewAliasSamplerWorkers(g *graph.CSR, workers int) (*AliasSampler, error) {
	if !g.Weighted() {
		return nil, fmt.Errorf("sampling: alias sampler requires a weighted graph")
	}
	if int64(len(g.Col)) >= aliasMaxOff || (g.NumVertices > 0 && g.MaxDegree() > aliasDegMask) {
		return nil, fmt.Errorf("sampling: graph exceeds alias locator packing limits (%d edges, max degree %d)",
			len(g.Col), g.MaxDegree())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > g.NumVertices {
		workers = g.NumVertices
	}
	if workers < 1 {
		workers = 1
	}
	s := &AliasSampler{
		prob:  make([]float64, len(g.Col)),
		alias: make([]int32, len(g.Col)),
		loc:   make([]uint64, g.NumVertices),
		bytes: int64(len(g.Col)) * 12,
	}
	// Degree-partitioned ranges: split the vertex space at edge-count
	// boundaries so each worker owns ~1/workers of the arena, not of the
	// vertex count — on power-law graphs the hub-heavy prefix would
	// otherwise serialize the build on one worker.
	bounds := make([]int, workers+1)
	bounds[workers] = g.NumVertices
	perWorker := (int64(len(g.Col)) + int64(workers) - 1) / int64(workers)
	for w, v := 1, 0; w < workers; w++ {
		target := int64(w) * perWorker
		for v < g.NumVertices && g.RowPtr[v] < target {
			v++
		}
		bounds[w] = v
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc aliasScratch
			for v := bounds[w]; v < bounds[w+1]; v++ {
				off, hi := g.RowPtr[v], g.RowPtr[v+1]
				deg := hi - off
				s.loc[v] = uint64(off)<<aliasOffShift | uint64(deg)
				if deg == 0 {
					continue
				}
				ws := g.Weights[off:hi]
				if err := buildAliasRow(s.prob[off:hi], s.alias[off:hi], ws, &sc); err != nil {
					errs[w] = fmt.Errorf("sampling: vertex %d: %w", v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// DrawAt returns a neighbor index of v distributed proportionally to v's
// edge weights, or -1 when v has no outgoing edges. The draw is
// pointer-free: one locator load plus two arena loads.
func (s *AliasSampler) DrawAt(v graph.VertexID, r *rng.Stream) int {
	p := s.loc[v]
	deg := int(p & aliasDegMask)
	if deg == 0 {
		return -1
	}
	off := p >> aliasOffShift
	i := r.Intn(deg)
	prob, alias := s.prob, s.alias
	if off >= uint64(len(s.prob)) {
		// Spill row of a WithRebuiltRows-derived sampler.
		off -= uint64(len(s.prob))
		prob, alias = s.spillProb, s.spillAlias
	}
	if r.Float64() < prob[off+uint64(i)] {
		return i
	}
	return int(alias[off+uint64(i)])
}

// TouchRow loads v's locator word and the boundary slots of its alias row,
// returning mixed bits the caller must fold into a sink so the compiler
// keeps the loads. Gather stages call it alongside the CSR row-locator
// load to put the alias row's cache lines in flight before the Sample
// stage draws from them.
func (s *AliasSampler) TouchRow(v graph.VertexID) uint64 {
	p := s.loc[v]
	deg := p & aliasDegMask
	if deg == 0 {
		return p
	}
	off := p >> aliasOffShift
	prob, alias := s.prob, s.alias
	if off >= uint64(len(s.prob)) {
		off -= uint64(len(s.prob))
		prob, alias = s.spillProb, s.spillAlias
	}
	return p ^ math.Float64bits(prob[off]) ^ uint64(uint32(alias[off+deg-1]))
}

// TableBytes reports the alias-arena memory footprint (8-byte prob +
// 4-byte alias per slot) — the auxiliary structure the 256-bit RP entry
// points at. Tracked at build, so this is O(1).
func (s *AliasSampler) TableBytes() int64 { return s.bytes }

// MemoryFootprint is TableBytes plus the per-vertex locator words — the
// store's whole resident size.
func (s *AliasSampler) MemoryFootprint() int64 {
	return s.bytes + int64(len(s.loc))*8
}

// WithRebuiltRows derives a sampler for an epoch snapshot by rebuilding
// only the snapshot's dirty rows — the incremental maintenance path for
// dynamic graphs. The base prob/alias arenas are shared untouched (the
// packed-locator layout isolates rows, so clean locators keep pointing
// into them); dirty rows are re-packed into fresh spill arenas sized to
// their merged degrees, and only their locators are repointed. A
// mutation touching k vertices therefore costs O(k·deg) row builds plus
// one O(V) locator-word copy — never the O(E) arena rebuild of a cold
// NewAliasSampler. Rows come out of the same deterministic Vose
// construction, so draws over clean and rebuilt rows alike are identical
// to a cold build of the merged graph.
//
// The receiver must be a base sampler built over snap.Graph(); deriving
// from an already-derived sampler is rejected (always derive from the
// epoch's base so spill arenas never chain).
func (s *AliasSampler) WithRebuiltRows(snap *graph.Snapshot) (*AliasSampler, error) {
	if s.spillProb != nil {
		return nil, fmt.Errorf("sampling: WithRebuiltRows on an already-derived sampler")
	}
	dirty := snap.DirtyVertices()
	var entries int64
	for _, v := range dirty {
		deg := int64(snap.Degree(v))
		if deg > aliasDegMask {
			return nil, fmt.Errorf("sampling: vertex %d degree %d exceeds alias locator packing limit", v, deg)
		}
		entries += deg
	}
	if uint64(len(s.prob))+uint64(entries) >= aliasMaxOff {
		return nil, fmt.Errorf("sampling: spill arena exceeds alias locator offset limit")
	}
	d := &AliasSampler{
		prob:       s.prob,
		alias:      s.alias,
		loc:        append([]uint64(nil), s.loc...),
		bytes:      s.bytes + entries*12,
		spillProb:  make([]float64, entries),
		spillAlias: make([]int32, entries),
	}
	spillBase := uint64(len(s.prob))
	var off int64
	var sc aliasScratch
	for _, v := range dirty {
		row, wts := snap.MergedRow(v)
		deg := int64(len(row))
		d.loc[v] = (spillBase+uint64(off))<<aliasOffShift | uint64(deg)
		if deg == 0 {
			continue
		}
		if wts == nil {
			return nil, fmt.Errorf("sampling: vertex %d has no weights in snapshot", v)
		}
		if err := buildAliasRow(d.spillProb[off:off+deg], d.spillAlias[off:off+deg], wts, &sc); err != nil {
			return nil, fmt.Errorf("sampling: vertex %d: %w", v, err)
		}
		off += deg
	}
	return d, nil
}

// SpillEntries reports the number of alias slots in the spill arenas (0
// on a base sampler) — the incremental-maintenance cost, in entries.
func (s *AliasSampler) SpillEntries() int { return len(s.spillProb) }

// SharesArenasWith reports whether s and o share the same base arenas —
// true exactly when one was derived from the other (or both from the
// same base) without copying the O(E) tables.
func (s *AliasSampler) SharesArenasWith(o *AliasSampler) bool {
	return len(s.prob) > 0 && len(o.prob) > 0 && &s.prob[0] == &o.prob[0]
}

// Sample implements Sampler.
func (s *AliasSampler) Sample(g *graph.CSR, ctx Context, r *rng.Stream) Result {
	return SampleStaged(s, g, ctx, r)
}

// Kind implements Sampler.
func (s *AliasSampler) Kind() Kind { return KindAlias }

// RPEntryBits implements Sampler.
func (s *AliasSampler) RPEntryBits() int { return 256 }
