package sampling

import (
	"fmt"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// AliasTable is a Walker alias structure over n weighted outcomes,
// supporting O(1) draws after O(n) construction. DeepWalk on weighted
// graphs keeps one table per neighbor list (paper Table I; the RP entry
// grows to 256 bits to carry the table pointer and size).
type AliasTable struct {
	prob  []float64
	alias []int32
}

// NewAliasTable builds a table for the given positive weights.
func NewAliasTable(weights []float32) (*AliasTable, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sampling: alias table over empty weight set")
	}
	total := 0.0
	for i, w := range weights {
		if !(w > 0) {
			return nil, fmt.Errorf("sampling: weight[%d]=%v, want > 0", i, w)
		}
		total += float64(w)
	}
	t := &AliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	// Scaled probabilities; Vose's stable two-worklist construction.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = float64(w) * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		// Only numerically-rounded leftovers end up here.
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t, nil
}

// Len returns the number of outcomes.
func (t *AliasTable) Len() int { return len(t.prob) }

// Draw returns an outcome index distributed proportionally to the weights.
func (t *AliasTable) Draw(r *rng.Stream) int {
	i := r.Intn(len(t.prob))
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}

// AliasSampler implements DeepWalk's weighted neighbor selection with
// per-vertex alias tables, prebuilt from the graph's edge weights.
type AliasSampler struct {
	tables []*AliasTable
}

// NewAliasSampler precomputes alias tables for every vertex of g with
// degree > 0. The graph must be weighted.
func NewAliasSampler(g *graph.CSR) (*AliasSampler, error) {
	if !g.Weighted() {
		return nil, fmt.Errorf("sampling: alias sampler requires a weighted graph")
	}
	s := &AliasSampler{tables: make([]*AliasTable, g.NumVertices)}
	for v := 0; v < g.NumVertices; v++ {
		ws := g.NeighborWeights(graph.VertexID(v))
		if len(ws) == 0 {
			continue
		}
		t, err := NewAliasTable(ws)
		if err != nil {
			return nil, fmt.Errorf("sampling: vertex %d: %w", v, err)
		}
		s.tables[v] = t
	}
	return s, nil
}

// TableBytes reports the alias-table memory footprint (8-byte prob + 4-byte
// alias per slot), the auxiliary structure the 256-bit RP entry points at.
func (s *AliasSampler) TableBytes() int64 {
	var b int64
	for _, t := range s.tables {
		if t != nil {
			b += int64(t.Len()) * 12
		}
	}
	return b
}

// Sample implements Sampler.
func (s *AliasSampler) Sample(g *graph.CSR, ctx Context, r *rng.Stream) Result {
	return SampleStaged(s, g, ctx, r)
}

// Kind implements Sampler.
func (s *AliasSampler) Kind() Kind { return KindAlias }

// RPEntryBits implements Sampler.
func (s *AliasSampler) RPEntryBits() int { return 256 }
