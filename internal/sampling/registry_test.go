package sampling

import (
	"fmt"
	"sync"
	"testing"

	"ridgewalker/internal/graph"
)

func registryTestGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.Graph500(8, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	g.AttachLabels(3)
	return g
}

// TestRegistrySharesSamplerInstance: acquisitions of the same (graph,
// spec) key must return the same sampler instance and hold one entry.
func TestRegistrySharesSamplerInstance(t *testing.T) {
	g := registryTestGraph(t)
	reg := NewRegistry()
	spec := Spec{Kind: KindAlias, Weighted: true}
	a, err := reg.Acquire(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := reg.Acquire(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Sampler() != b.Sampler() {
		t.Fatal("same key returned distinct sampler instances")
	}
	if reg.Len() != 1 || reg.Refs(g, spec) != 2 {
		t.Fatalf("Len=%d Refs=%d, want 1/2", reg.Len(), reg.Refs(g, spec))
	}
	a.Release()
	if reg.Refs(g, spec) != 1 {
		t.Fatalf("Refs after one release = %d, want 1", reg.Refs(g, spec))
	}
	a.Release() // double release must not double-decrement
	if reg.Refs(g, spec) != 1 {
		t.Fatalf("double Release decremented twice: Refs = %d", reg.Refs(g, spec))
	}
	b.Release()
	if reg.Len() != 0 {
		t.Fatalf("entry not evicted with the last reference: Len = %d", reg.Len())
	}
	// Re-acquisition after eviction rebuilds.
	c, err := reg.Acquire(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if c.Sampler() == a.Sampler() {
		t.Fatal("evicted sampler instance resurrected")
	}
	c.Release()
}

// TestRegistryKeysDistinguishSpecs: differing kinds, parameters, schemas,
// and graphs must not share entries.
func TestRegistryKeysDistinguishSpecs(t *testing.T) {
	g1 := registryTestGraph(t)
	g2 := registryTestGraph(t)
	reg := NewRegistry()
	var refs []*SamplerRef
	for _, tc := range []struct {
		g    *graph.CSR
		spec Spec
	}{
		{g1, Spec{Kind: KindUniform}},
		{g1, Spec{Kind: KindAlias, Weighted: true}},
		{g1, Spec{Kind: KindReservoir, Weighted: true, P: 2, Q: 0.5}},
		{g1, Spec{Kind: KindReservoir, Weighted: true, P: 1, Q: 1}},
		{g1, Spec{Kind: KindMetaPath, Weighted: true, Schema: string([]uint8{0, 1})}},
		{g1, Spec{Kind: KindMetaPath, Weighted: true, Schema: string([]uint8{0, 1, 2})}},
		{g2, Spec{Kind: KindUniform}},
	} {
		ref, err := reg.Acquire(tc.g, tc.spec)
		if err != nil {
			t.Fatalf("%v: %v", tc.spec, err)
		}
		refs = append(refs, ref)
	}
	if reg.Len() != len(refs) {
		t.Fatalf("Len = %d, want %d distinct entries", reg.Len(), len(refs))
	}
	for _, ref := range refs {
		ref.Release()
	}
	if reg.Len() != 0 {
		t.Fatalf("Len after releasing all = %d", reg.Len())
	}
}

// TestRegistryFailedBuildRetries: a failed build (alias sampler on an
// unweighted graph) must not leave a poisoned entry — after weights are
// attached, acquisition succeeds.
func TestRegistryFailedBuildRetries(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Graph500(8, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	spec := Spec{Kind: KindAlias, Weighted: true}
	if _, err := reg.Acquire(g, spec); err == nil {
		t.Fatal("alias sampler built over unweighted graph")
	}
	if reg.Len() != 0 {
		t.Fatalf("failed build left an entry: Len = %d", reg.Len())
	}
	g.AttachWeights()
	ref, err := reg.Acquire(g, spec)
	if err != nil {
		t.Fatalf("retry after attaching weights failed: %v", err)
	}
	ref.Release()
}

// TestRegistryConcurrentAcquireRelease hammers one registry from many
// goroutines across a handful of keys (run under -race in CI): every
// acquisition must observe a usable sampler, same-key acquisitions in the
// same epoch must share one instance, and the registry must end empty.
func TestRegistryConcurrentAcquireRelease(t *testing.T) {
	g := registryTestGraph(t)
	reg := NewRegistry()
	specs := []Spec{
		{Kind: KindUniform},
		{Kind: KindAlias, Weighted: true},
		{Kind: KindRejection, P: 2, Q: 0.5},
		{Kind: KindReservoir, Weighted: true, P: 2, Q: 0.5},
	}
	const goroutines = 16
	iters := 200
	if testing.Short() {
		iters = 50
	}
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				spec := specs[(i+n)%len(specs)]
				ref, err := reg.Acquire(g, spec)
				if err != nil {
					errCh <- err
					return
				}
				if ref.Sampler() == nil {
					errCh <- fmt.Errorf("nil sampler for %v", spec)
					return
				}
				if ref.Sampler().Kind() != spec.Kind {
					errCh <- fmt.Errorf("kind mismatch for %v", spec)
					return
				}
				ref.Release()
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if reg.Len() != 0 {
		t.Fatalf("registry leaked %d entries", reg.Len())
	}
}
