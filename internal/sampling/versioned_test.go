package sampling

import (
	"strings"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// TestRegistryVersionKeyAfterAttachWeights is the stale-sampler
// regression test: AttachWeights revises a CSR in place, and before the
// version dimension was added to the registry key, a sampler built over
// the pre-revision graph kept being served for the post-revision one.
// Now a revision makes stale acquisitions miss.
func TestRegistryVersionKeyAfterAttachWeights(t *testing.T) {
	g := registryTestGraph(t)
	reg := NewRegistry()
	spec := Spec{Kind: KindAlias, Weighted: true}
	old, err := reg.Acquire(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	verBefore := g.Version()
	g.AttachWeights() // in-place revision: same pointer, new version
	if g.Version() == verBefore {
		t.Fatal("AttachWeights did not bump the CSR version")
	}

	fresh, err := reg.Acquire(g, spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Sampler() == old.Sampler() {
		t.Fatal("revised graph served the stale pre-revision sampler")
	}
	// Both entries are live — the old borrow keeps its (now unreachable)
	// entry, the new version gets its own.
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (stale + fresh entries)", reg.Len())
	}
	if reg.Refs(g, spec) != 1 {
		t.Fatalf("Refs at current version = %d, want 1", reg.Refs(g, spec))
	}
	old.Release()
	fresh.Release()
	if reg.Len() != 0 {
		t.Fatalf("entries leaked after release: Len = %d", reg.Len())
	}
}

// versionedSamplingFixture mutates a weighted graph and returns the
// wrapper plus a dirty snapshot.
func versionedSamplingFixture(t testing.TB) (*graph.CSR, *graph.Versioned, *graph.Snapshot) {
	t.Helper()
	g := registryTestGraph(t)
	vg := graph.NewVersioned(g)
	if err := vg.InsertEdges([]graph.Edge{{Src: 1, Dst: 9}, {Src: 1, Dst: 9}, {Src: 40, Dst: 3}, {Src: 200, Dst: 201}}); err != nil {
		t.Fatal(err)
	}
	if err := vg.DeleteEdges([]graph.Edge{{Src: 1, Dst: 9}}); err != nil {
		t.Fatal(err)
	}
	return g, vg, vg.Snapshot()
}

// TestAliasWithRebuiltRowsIncremental pins the incremental-maintenance
// contract structurally: a derived sampler shares the base arenas (no
// O(E) copy), its spill arenas hold exactly the dirty rows' merged
// degrees, and every draw — clean row or rebuilt row — is byte-identical
// to a cold build over the materialized graph.
func TestAliasWithRebuiltRowsIncremental(t *testing.T) {
	g, vg, snap := versionedSamplingFixture(t)
	base, err := NewAliasSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	d, err := base.WithRebuiltRows(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SharesArenasWith(base) {
		t.Fatal("derived sampler copied the base arenas")
	}
	wantSpill := 0
	for _, v := range snap.DirtyVertices() {
		wantSpill += snap.Degree(v)
	}
	if d.SpillEntries() != wantSpill {
		t.Fatalf("spill entries %d, want Σ dirty merged degrees %d", d.SpillEntries(), wantSpill)
	}
	if base.SpillEntries() != 0 {
		t.Fatal("base sampler grew spill arenas")
	}

	// Cold build over the materialized final graph: identical draws
	// everywhere, from identical RNG streams.
	final := vg.Compact()
	cold, err := NewAliasSampler(final)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices; v++ {
		r1, r2 := rng.New(uint64(v)+1), rng.New(uint64(v)+1)
		for i := 0; i < 32; i++ {
			got := d.DrawAt(graph.VertexID(v), r1)
			want := cold.DrawAt(graph.VertexID(v), r2)
			if got != want {
				t.Fatalf("vertex %d draw %d: derived %d, cold %d", v, i, got, want)
			}
		}
	}

	// Derive-from-derived is rejected: spill arenas must never chain.
	if _, err := d.WithRebuiltRows(snap); err == nil {
		t.Fatal("WithRebuiltRows accepted an already-derived receiver")
	}
}

// TestRegistryAcquireSnapshot covers the epoch dimension of the registry:
// parametric samplers stay shared across epochs, dirty alias snapshots
// get per-epoch derived entries whose base borrow is released on
// eviction, and the tiered alias store refuses dirty snapshots.
func TestRegistryAcquireSnapshot(t *testing.T) {
	g, _, snap := versionedSamplingFixture(t)
	reg := NewRegistry()

	// Parametric kinds resolve to the plain (graph, spec) entry.
	uspec := Spec{Kind: KindUniform}
	plain, err := reg.Acquire(g, uspec)
	if err != nil {
		t.Fatal(err)
	}
	snapped, err := reg.AcquireSnapshot(snap, uspec)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sampler() != snapped.Sampler() {
		t.Fatal("parametric snapshot acquisition split the shared entry")
	}
	plain.Release()
	snapped.Release()

	// Dirty alias snapshot: a derived per-epoch entry sharing base arenas.
	aspec := Spec{Kind: KindAlias, Weighted: true}
	baseRef, err := reg.Acquire(g, aspec)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := reg.AcquireSnapshot(snap, aspec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := reg.AcquireSnapshot(snap, aspec)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Sampler() != d2.Sampler() {
		t.Fatal("same-epoch acquisitions returned distinct derived samplers")
	}
	if reg.SnapshotRefs(snap, aspec) != 2 {
		t.Fatalf("SnapshotRefs = %d, want 2", reg.SnapshotRefs(snap, aspec))
	}
	derived, ok := d1.Sampler().(*AliasSampler)
	if !ok {
		t.Fatalf("derived sampler is %T", d1.Sampler())
	}
	if !derived.SharesArenasWith(baseRef.Sampler().(*AliasSampler)) {
		t.Fatal("derived registry sampler does not share base arenas")
	}
	if derived == baseRef.Sampler() {
		t.Fatal("dirty snapshot served the base sampler itself")
	}

	// The derived entry holds a borrow of the base entry; when the last
	// external reference to both goes, the registry must empty.
	baseRef.Release()
	if reg.Refs(g, aspec) != 1 { // derived entry's internal borrow remains
		t.Fatalf("base refs after external release = %d, want 1", reg.Refs(g, aspec))
	}
	d1.Release()
	d2.Release()
	if reg.Len() != 0 {
		t.Fatalf("registry not empty after releasing all refs: Len = %d", reg.Len())
	}

	// Tiered alias + dirty snapshot is a policy error.
	if _, err := reg.AcquireSnapshot(snap, Spec{Kind: KindAlias, Weighted: true, TierBudget: 1 << 20}); err == nil {
		t.Fatal("tiered alias spec accepted a dirty snapshot")
	}
}

// TestSpecStringRoundTrip is the Spec.String bugfix regression: the
// rendering must be injective (rejection and reservoir no longer collapse
// at p=q=0, schemas print as label lists, not raw bytes) and ParseSpec
// must invert it exactly.
func TestSpecStringRoundTrip(t *testing.T) {
	specs := []Spec{
		{Kind: KindUniform},
		{Kind: KindUniform, Weighted: true},
		{Kind: KindAlias, Weighted: true},
		{Kind: KindAlias, Weighted: true, TierBudget: 1 << 20},
		{Kind: KindAlias, Weighted: true, TierBudget: -1},
		{Kind: KindRejection},
		{Kind: KindReservoir},
		{Kind: KindRejection, P: 0.25, Q: 4},
		{Kind: KindReservoir, P: 0.25, Q: 4},
		{Kind: KindRejection, P: 0.5},
		{Kind: KindMetaPath, Schema: string([]byte{0, 1, 2})},
		{Kind: KindMetaPath, Schema: string([]byte{2, 200})},
		{Kind: KindMetaPath},
	}
	seen := map[string]Spec{}
	for _, s := range specs {
		str := s.String()
		if prev, dup := seen[str]; dup {
			t.Fatalf("specs %+v and %+v both render %q", prev, s, str)
		}
		seen[str] = s
		got, err := ParseSpec(str)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", str, err)
		}
		if got != s {
			t.Fatalf("round trip of %q: got %+v, want %+v", str, got, s)
		}
	}
	// The schema must render as decimal labels, not raw bytes.
	if str := (Spec{Kind: KindMetaPath, Schema: string([]byte{0, 1, 2})}).String(); !strings.Contains(str, "schema=[0,1,2]") {
		t.Fatalf("schema rendering %q not a label list", str)
	}
	for _, bad := range []string{"", "warp", "metapath schema=0,1", "rejection p=x q=1", "uniform tier=x", "alias+w nonsense"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}
