package sampling

import (
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// TestTieredAliasMatchesFlat is the byte-identity property: for every
// vertex and every hot budget — all-cold, partial, all-hot — the tiered
// store must draw exactly what the flat store draws on the same RNG
// stream.
func TestTieredAliasMatchesFlat(t *testing.T) {
	g := storeTestGraph(t, 9)
	flat, err := NewAliasSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{-1, 1 << 12, 1 << 40} {
		tiered, err := NewTieredAlias(g, budget)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices; v++ {
			id := graph.VertexID(v)
			r1, r2 := rng.New(uint64(v)), rng.New(uint64(v))
			for i := 0; i < 32; i++ {
				want := flat.DrawAt(id, r1)
				got := tiered.DrawAt(id, r2)
				if got != want {
					t.Fatalf("budget %d vertex %d draw %d: tiered %d, flat %d", budget, v, i, got, want)
				}
			}
		}
	}
}

// TestTieredAliasBudgetTiers pins the placement accounting: all-cold at
// negative budget, all-hot at unbounded budget, hot bytes within budget
// in between, and both cold encodings present on a mixed-weight graph.
func TestTieredAliasBudgetTiers(t *testing.T) {
	g := storeTestGraph(t, 9)
	cold, err := NewTieredAlias(g, -1)
	if err != nil {
		t.Fatal(err)
	}
	if cold.HotRows != 0 {
		t.Fatalf("negative budget pinned %d rows", cold.HotRows)
	}
	cs := cold.Stats()
	if cs.ColdFlatBytes != cs.FlatBytes {
		t.Fatalf("all-cold: cold flat bytes %d != flat bytes %d", cs.ColdFlatBytes, cs.FlatBytes)
	}
	// AttachWeights mixes row weights, so most rows take the float64
	// exactness fallback, while uniform-weight rows (all probs == 1)
	// quantize — both encodings must occur.
	if cs.QuantRows == 0 || cs.ExactRows == 0 {
		t.Fatalf("want both cold encodings exercised, got quant=%d exact=%d", cs.QuantRows, cs.ExactRows)
	}
	if cs.CompressionRatio <= 1 {
		t.Fatalf("cold alias rows grew: ratio %.2f (cold %d flat %d)", cs.CompressionRatio, cs.ColdBytes, cs.ColdFlatBytes)
	}

	budget := int64(1 << 16)
	mid, err := NewTieredAlias(g, budget)
	if err != nil {
		t.Fatal(err)
	}
	if s := mid.Stats(); s.HotBytes > budget || s.HotRows == 0 {
		t.Fatalf("budget %d: hot bytes %d rows %d", budget, s.HotBytes, s.HotRows)
	}

	hot, err := NewTieredAlias(g, 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if s := hot.Stats(); s.ColdRows != 0 || s.ColdBytes != 0 {
		t.Fatalf("unbounded budget left %d cold rows", s.ColdRows)
	}
}

// TestQuantProbRoundTrip pins the fixed-point rule: quantization is used
// only when decode reproduces the float64 exactly, and the 0xFFFF
// sentinel never collides with 65535/65536.
func TestQuantProbRoundTrip(t *testing.T) {
	exact := []float64{0, 0.5, 0.25, 1.0 / 65536, 32767.0 / 65536, 1}
	for _, p := range exact {
		q, ok := quantProb(p)
		if !ok {
			t.Fatalf("p=%v should quantize", p)
		}
		if got := dequantProb(q); got != p {
			t.Fatalf("p=%v round-tripped to %v", p, got)
		}
	}
	inexact := []float64{1.0 / 3, 0.1, 65535.0 / 65536, 1.0000001}
	for _, p := range inexact {
		if _, ok := quantProb(p); ok {
			t.Fatalf("p=%v must not quantize", p)
		}
	}
}

// TestTieredAliasGoF is the chi-square goodness-of-fit check on cold
// rows: draws from a quantized row (uniform weights) and from an
// exactness-fallback row (mixed weights) must both match the weight
// distribution.
func TestTieredAliasGoF(t *testing.T) {
	// Vertex 0 → uniform weights (quantized row); vertex 1 → mixed
	// weights (fallback row). Star edges give the two rows; an all-cold
	// budget forces both through the compressed arena.
	edges := []graph.Edge{
		{Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 0, Dst: 4}, {Src: 0, Dst: 5},
		{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 1, Dst: 4}, {Src: 1, Dst: 5},
	}
	g, err := graph.Build(6, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	ws := []float32{1, 1, 1, 1, 1, 2, 3, 4}
	g.Weights = ws
	s, err := NewTieredAlias(g, -1)
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.QuantRows != 1 || st.ExactRows != 1 {
		t.Fatalf("want 1 quantized + 1 fallback row, got quant=%d exact=%d", st.QuantRows, st.ExactRows)
	}
	const draws = 200000
	r := rng.New(42)
	for _, v := range []graph.VertexID{0, 1} {
		row := g.NeighborWeights(v)
		total := 0.0
		for _, w := range row {
			total += float64(w)
		}
		probs := make([]float64, len(row))
		for i, w := range row {
			probs[i] = float64(w) / total
		}
		counts := make([]int, len(row))
		for i := 0; i < draws; i++ {
			counts[s.DrawAt(v, r)]++
		}
		if c := chi2(counts, probs, draws); c > chi2Critical999[len(row)-1] {
			t.Fatalf("vertex %d distribution off: chi2=%v counts=%v", v, c, counts)
		}
	}
}

// TestRegistryTierBudgetKeys makes sure tiered and flat alias stores
// coexist in the registry under distinct keys and share within a key.
func TestRegistryTierBudgetKeys(t *testing.T) {
	g := storeTestGraph(t, 8)
	reg := NewRegistry()
	flat, err := reg.Acquire(g, Spec{Kind: KindAlias, Weighted: true})
	if err != nil {
		t.Fatal(err)
	}
	tiered1, err := reg.Acquire(g, Spec{Kind: KindAlias, Weighted: true, TierBudget: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	tiered2, err := reg.Acquire(g, Spec{Kind: KindAlias, Weighted: true, TierBudget: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := flat.Sampler().(*AliasSampler); !ok {
		t.Fatalf("zero budget built %T, want *AliasSampler", flat.Sampler())
	}
	ts, ok := tiered1.Sampler().(*TieredAlias)
	if !ok {
		t.Fatalf("tier budget built %T, want *TieredAlias", tiered1.Sampler())
	}
	if tiered2.Sampler() != ts {
		t.Fatal("same tier budget must share one store")
	}
	if reg.Len() != 2 {
		t.Fatalf("registry holds %d entries, want 2", reg.Len())
	}
	if Footprint(ts) != ts.MemoryFootprint() {
		t.Fatal("Footprint must report the tiered store's resident size")
	}
	flat.Release()
	tiered1.Release()
	tiered2.Release()
	if reg.Len() != 0 {
		t.Fatalf("registry holds %d entries after release", reg.Len())
	}
}
