// Package sampling implements the neighbor-sampling algorithms RidgeWalker
// supports (paper Table I):
//
//	GRW                    sampling algorithm    RP entry
//	URW, PPR               uniform               64-bit
//	DeepWalk (weighted)    alias                 256-bit
//	Node2Vec (unweighted)  rejection             64-bit
//	Node2Vec (weighted)    reservoir             128-bit
//	MetaPath (weighted)    reservoir             128-bit
//
// Samplers are stateless between calls — all walk state arrives in the
// Context, mirroring the paper's stateless task decomposition. Each result
// reports the number of probes (sampling iterations touching neighbor-list
// memory) so cycle-level models can charge the right service time.
package sampling

import (
	"fmt"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// Kind enumerates the sampling algorithms of Table I.
type Kind int

const (
	KindUniform Kind = iota
	KindAlias
	KindRejection
	KindReservoir
	KindMetaPath
)

// String returns the paper's name for the sampling algorithm.
func (k Kind) String() string {
	switch k {
	case KindUniform:
		return "uniform"
	case KindAlias:
		return "alias"
	case KindRejection:
		return "rejection"
	case KindReservoir:
		return "reservoir"
	case KindMetaPath:
		return "metapath-reservoir"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Context carries the walk state a sampler may condition on. First-order
// walks use only Cur; second-order walks (Node2Vec) also use Prev; MetaPath
// uses Step to index its schema.
type Context struct {
	Cur  graph.VertexID
	Prev graph.VertexID
	// HasPrev is false on the first hop, before any previous vertex exists.
	HasPrev bool
	// Deg, when positive, is Cur's already-known out-degree. Engines that
	// fetch the row before sampling (the cohort Gather stage, Advance)
	// set it so degree-only samplers (uniform, rejection proposals) never
	// reload row pointers. 0 means unknown. The Context stays pass-by-
	// value small (one pointer beyond the original 24 bytes) on purpose:
	// it crosses an interface call per hop on the hottest loop in the
	// repository.
	Deg int32
	// Step is the hop index within the walk (0-based).
	Step int
	// Mem, when non-nil, is the gathered-row view a tiered engine
	// attaches: samplers must read Cur's row (and weights) from it
	// instead of the CSR, because under a tiered store the CSR's Col is
	// not where cold rows live. Flat engines leave it nil and samplers
	// read g directly — the original zero-overhead path.
	Mem *RowView
}

// RowView carries the memory a tiered engine has already staged for the
// current sampling decision: Cur's neighbor row (hot-arena slice or
// per-lane decode scratch), its weight row (nil on unweighted graphs),
// and the per-worker TierView for rows of *other* vertices — the
// second-order HasEdge(prev, ·) probes. One RowView lives per worker or
// per cohort lane and is reused across hops.
type RowView struct {
	Row  []graph.VertexID
	Wts  []float32
	Tier *graph.TierView
	// Snap, when non-nil, is the epoch snapshot the engine is serving:
	// second-order probes of *other* vertices' rows (HasEdge(prev, ·))
	// must consult its overlay before the base CSR or tier, because a
	// dirty row's base copy is stale for this epoch.
	Snap *graph.Snapshot
}

// degree returns the out-degree of ctx.Cur, preferring the pre-gathered
// field.
func (ctx *Context) degree(g *graph.CSR) int {
	if ctx.Deg > 0 {
		return int(ctx.Deg)
	}
	return g.Degree(ctx.Cur)
}

// row returns Cur's neighbor list: the staged view under a tiered
// engine, the CSR row otherwise.
func (ctx *Context) row(g *graph.CSR) []graph.VertexID {
	if ctx.Mem != nil {
		return ctx.Mem.Row
	}
	return g.Neighbors(ctx.Cur)
}

// rowWeights returns Cur's weight row parallel to row (nil when the
// graph is unweighted). Tiered engines stage it in Mem.Wts for the
// samplers that scan weights.
func (ctx *Context) rowWeights(g *graph.CSR) []float32 {
	if ctx.Mem != nil {
		return ctx.Mem.Wts
	}
	if g.Weighted() {
		return g.NeighborWeights(ctx.Cur)
	}
	return nil
}

// tier returns the engine's TierView, nil under flat stores.
func (ctx *Context) tier() *graph.TierView {
	if ctx.Mem != nil {
		return ctx.Mem.Tier
	}
	return nil
}

// Result is the outcome of one sampling decision.
type Result struct {
	// Index is the chosen position within Neighbors(Cur), or -1 when no
	// neighbor is selectable (e.g. no neighbor matches the MetaPath schema).
	Index int
	// Probes counts sampling iterations that touched neighbor-list memory:
	// 1 for uniform/alias, the rejection-loop trip count for rejection, and
	// the neighbor-list length for reservoir scans. Hardware models convert
	// probes into cycles.
	Probes int
}

// Sampler chooses a neighbor index for the current vertex.
type Sampler interface {
	// Sample picks a neighbor of ctx.Cur. The caller guarantees
	// g.Degree(ctx.Cur) > 0.
	Sample(g *graph.CSR, ctx Context, r *rng.Stream) Result
	// Kind identifies the algorithm.
	Kind() Kind
	// RPEntryBits is the row-pointer entry width this sampler needs
	// (Table I): wider entries carry alias-table or weight-prefix pointers.
	RPEntryBits() int
}

// Uniform selects neighbors uniformly at random; used by URW and PPR.
type Uniform struct{}

// Sample implements Sampler.
func (u Uniform) Sample(g *graph.CSR, ctx Context, r *rng.Stream) Result {
	return SampleStaged(u, g, ctx, r)
}

// Kind implements Sampler.
func (Uniform) Kind() Kind { return KindUniform }

// RPEntryBits implements Sampler.
func (Uniform) RPEntryBits() int { return 64 }
