package sampling

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// TieredAlias is the two-tier counterpart of AliasSampler, mirroring the
// graph store's split: hub alias rows stay pinned in flat prob/alias
// arenas (the PR 5 representation, byte for byte), while tail rows are
// stored compressed in one cold byte arena — probabilities as uint16
// fixed-point when the row quantizes exactly (with a per-row exactness
// fallback to raw float64 when it does not), alias indices as row-uniform
// truncated little-endian integers sized to the row's degree. Every cold
// row is O(1)-addressable, so a draw never decodes more than one
// probability and one alias entry.
//
// Draws are draw-for-draw identical to AliasSampler over the same graph:
// rows come out of the same Vose construction, the quantized encoding is
// used only when decoding reproduces the exact float64 probability, and
// the RNG consumption pattern (one Intn, one Float64) is unchanged. The
// store is immutable after construction and safe for concurrent use.
type TieredAlias struct {
	// loc[v] packs v's row location: offset(39) | degree(24) | hot(1).
	// Hot offsets index hotProb/hotAlias in entries; cold offsets index
	// cold in bytes.
	loc      []uint64
	hotProb  []float64
	hotAlias []int32
	cold     []byte

	// HotRows is the number of alias rows pinned in the flat arenas.
	HotRows int

	coldRows  int
	quantRows int
	coldEnt   int64 // entries stored cold
	budget    int64
	flatBytes int64 // the flat AliasSampler's arena bytes (12/entry)
}

// Tiered alias locator packing: offset(39) | degree(24) | hot(1). Degree
// keeps AliasSampler's 2^24 bound; 2^39 bytes of cold arena outruns any
// resident graph by orders of magnitude.
const (
	taHotBit   = 1
	taDegShift = 1
	taDegBits  = aliasDegBits
	taDegMask  = aliasDegMask
	taOffShift = taDegShift + taDegBits
	taMaxOff   = 1 << 39
)

// Cold alias row tag byte: bit 0 selects the probability encoding, bits
// 1-2 carry the alias entry width minus one.
const (
	taTagQuant    = 0x01
	taTagWidthSh  = 1
	taTagWidthMsk = 0x3
)

// quantProb returns p's uint16 fixed-point encoding and whether decoding
// it reproduces p exactly. 0xFFFF is reserved for p == 1 (the most common
// alias probability), so 65535/65536 falls back to the raw encoding.
func quantProb(p float64) (uint16, bool) {
	if p == 1 {
		return math.MaxUint16, true
	}
	t := p * 65536
	if t != math.Trunc(t) || t < 0 || t > 65534 {
		return 0, false
	}
	return uint16(t), true
}

// dequantProb inverts quantProb. Division by a power of two is exact, so
// a quantized row's probabilities compare bit-identically to the float64
// values the Vose construction produced.
func dequantProb(q uint16) float64 {
	if q == math.MaxUint16 {
		return 1
	}
	return float64(q) / 65536
}

// aliasWidth returns the byte width that holds every alias index of a
// row with the given degree (indices are < deg).
func aliasWidth(deg int) int {
	switch {
	case deg <= 1<<8:
		return 1
	case deg <= 1<<16:
		return 2
	default:
		return 3
	}
}

// NewTieredAlias builds a tiered alias store over the weighted graph g
// with the given hot-tier byte budget (negative pins nothing). The hot
// set follows the same policy as graph.NewTiered: rows in descending
// degree order, ties by vertex id, pinned until the budget is spent.
func NewTieredAlias(g *graph.CSR, budgetBytes int64) (*TieredAlias, error) {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	if !g.Weighted() {
		return nil, fmt.Errorf("sampling: alias sampler requires a weighted graph")
	}
	if int64(len(g.Col)) >= aliasMaxOff || (g.NumVertices > 0 && g.MaxDegree() > aliasDegMask) {
		return nil, fmt.Errorf("sampling: graph exceeds alias locator packing limits (%d edges, max degree %d)",
			len(g.Col), g.MaxDegree())
	}
	s := &TieredAlias{
		loc:       make([]uint64, g.NumVertices),
		budget:    budgetBytes,
		flatBytes: int64(len(g.Col)) * 12,
	}

	// Hot selection: descending degree prefix fit, 12 bytes per entry
	// (float64 prob + int32 alias), unpadded — alias rows are read once
	// per draw at a random slot, so cache-line alignment buys nothing.
	order := make([]graph.VertexID, g.NumVertices)
	for v := range order {
		order[v] = graph.VertexID(v)
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(order[i]), g.Degree(order[j])
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	var entries int64
	for _, v := range order {
		deg := int64(g.Degree(v))
		if deg == 0 {
			break
		}
		if (entries+deg)*12 > budgetBytes {
			break
		}
		s.loc[v] = uint64(entries)<<taOffShift | uint64(deg)<<taDegShift | taHotBit
		entries += deg
		s.HotRows++
	}
	if s.HotRows > 0 {
		s.hotProb = make([]float64, entries)
		s.hotAlias = make([]int32, entries)
	}

	// Row construction: one Vose build per vertex into reusable scratch,
	// then placement — hot rows copy into the flat arenas, cold rows
	// encode into the byte arena.
	maxDeg := g.MaxDegree()
	probRow := make([]float64, maxDeg)
	aliasRow := make([]int32, maxDeg)
	var sc aliasScratch
	for v := 0; v < g.NumVertices; v++ {
		id := graph.VertexID(v)
		deg := g.Degree(id)
		if deg == 0 {
			if s.loc[v]&taHotBit == 0 {
				s.loc[v] = 0
			}
			continue
		}
		if err := buildAliasRow(probRow[:deg], aliasRow[:deg], g.NeighborWeights(id), &sc); err != nil {
			return nil, fmt.Errorf("sampling: vertex %d: %w", v, err)
		}
		if s.loc[v]&taHotBit != 0 {
			off := s.loc[v] >> taOffShift
			copy(s.hotProb[off:], probRow[:deg])
			copy(s.hotAlias[off:], aliasRow[:deg])
			continue
		}
		off := int64(len(s.cold))
		if off >= taMaxOff {
			return nil, fmt.Errorf("sampling: tiered alias cold arena exceeds %d bytes", int64(taMaxOff))
		}
		s.loc[v] = uint64(off)<<taOffShift | uint64(deg)<<taDegShift
		s.cold = appendColdAliasRow(s.cold, probRow[:deg], aliasRow[:deg])
		if s.cold[off]&taTagQuant != 0 {
			s.quantRows++
		}
		s.coldRows++
		s.coldEnt += int64(deg)
	}
	return s, nil
}

// appendColdAliasRow encodes one alias row: tag byte, probability
// payload (uint16 fixed-point when the whole row quantizes exactly, raw
// float64 otherwise), then row-uniform truncated alias indices.
func appendColdAliasRow(dst []byte, prob []float64, alias []int32) []byte {
	quant := true
	for _, p := range prob {
		if _, ok := quantProb(p); !ok {
			quant = false
			break
		}
	}
	w := aliasWidth(len(prob))
	tag := byte(w-1) << taTagWidthSh
	if quant {
		tag |= taTagQuant
	}
	dst = append(dst, tag)
	if quant {
		for _, p := range prob {
			q, _ := quantProb(p)
			dst = binary.LittleEndian.AppendUint16(dst, q)
		}
	} else {
		for _, p := range prob {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p))
		}
	}
	for _, a := range alias {
		v := uint32(a)
		switch w {
		case 1:
			dst = append(dst, byte(v))
		case 2:
			dst = append(dst, byte(v), byte(v>>8))
		default:
			dst = append(dst, byte(v), byte(v>>8), byte(v>>16))
		}
	}
	return dst
}

// DrawAt returns a neighbor index of v distributed proportionally to v's
// edge weights, or -1 when v has no outgoing edges — draw-for-draw
// identical to AliasSampler.DrawAt over the same graph.
func (s *TieredAlias) DrawAt(v graph.VertexID, r *rng.Stream) int {
	p := s.loc[v]
	deg := int(p >> taDegShift & taDegMask)
	if deg == 0 {
		return -1
	}
	off := p >> taOffShift
	i := r.Intn(deg)
	if p&taHotBit != 0 {
		if r.Float64() < s.hotProb[off+uint64(i)] {
			return i
		}
		return int(s.hotAlias[off+uint64(i)])
	}
	b := s.cold[off:]
	tag := b[0]
	var pv float64
	probBytes := 2 * deg
	if tag&taTagQuant != 0 {
		pv = dequantProb(binary.LittleEndian.Uint16(b[1+2*i:]))
	} else {
		pv = math.Float64frombits(binary.LittleEndian.Uint64(b[1+8*i:]))
		probBytes = 8 * deg
	}
	if r.Float64() < pv {
		return i
	}
	w := int(tag>>taTagWidthSh&taTagWidthMsk) + 1
	ab := b[1+probBytes+i*w:]
	a := uint32(ab[0])
	if w > 1 {
		a |= uint32(ab[1]) << 8
	}
	if w > 2 {
		a |= uint32(ab[2]) << 16
	}
	return int(a)
}

// TouchRow loads v's locator word and the head of its row (hot arena
// slot or cold tag byte), returning mixed bits the caller must fold into
// a sink — the Gather-stage prefetch hook, mirroring
// AliasSampler.TouchRow.
func (s *TieredAlias) TouchRow(v graph.VertexID) uint64 {
	p := s.loc[v]
	deg := p >> taDegShift & taDegMask
	if deg == 0 {
		return p
	}
	off := p >> taOffShift
	if p&taHotBit != 0 {
		return p ^ math.Float64bits(s.hotProb[off])
	}
	return p ^ uint64(s.cold[off])
}

// AliasTierStats is a tiered alias store's per-tier accounting.
type AliasTierStats struct {
	HotRows, ColdRows int
	// QuantRows counts cold rows stored with uint16 fixed-point
	// probabilities; ExactRows took the float64 exactness fallback.
	QuantRows, ExactRows int
	HotBytes, ColdBytes  int64
	LocatorBytes         int64
	// ColdFlatBytes is what the cold rows occupy in the flat store, the
	// numerator of CompressionRatio.
	ColdFlatBytes    int64
	CompressionRatio float64
	// FlatBytes is the whole flat store's arena size (12 bytes/entry).
	FlatBytes int64
}

// Stats returns the store's per-tier accounting.
func (s *TieredAlias) Stats() AliasTierStats {
	st := AliasTierStats{
		HotRows:       s.HotRows,
		ColdRows:      s.coldRows,
		QuantRows:     s.quantRows,
		ExactRows:     s.coldRows - s.quantRows,
		HotBytes:      int64(len(s.hotProb))*8 + int64(len(s.hotAlias))*4,
		ColdBytes:     int64(len(s.cold)),
		LocatorBytes:  int64(len(s.loc)) * 8,
		ColdFlatBytes: s.coldEnt * 12,
		FlatBytes:     s.flatBytes,
	}
	if st.ColdBytes > 0 {
		st.CompressionRatio = float64(st.ColdFlatBytes) / float64(st.ColdBytes)
	}
	return st
}

// TableBytes reports the arena footprint across both tiers (the
// counterpart of AliasSampler.TableBytes).
func (s *TieredAlias) TableBytes() int64 {
	return int64(len(s.hotProb))*8 + int64(len(s.hotAlias))*4 + int64(len(s.cold))
}

// MemoryFootprint is TableBytes plus the per-vertex locator words.
func (s *TieredAlias) MemoryFootprint() int64 {
	return s.TableBytes() + int64(len(s.loc))*8
}

// Budget returns the hot-tier byte budget the store was built with.
func (s *TieredAlias) Budget() int64 { return s.budget }

// Sample implements Sampler.
func (s *TieredAlias) Sample(g *graph.CSR, ctx Context, r *rng.Stream) Result {
	return SampleStaged(s, g, ctx, r)
}

// Kind implements Sampler.
func (s *TieredAlias) Kind() Kind { return KindAlias }

// RPEntryBits implements Sampler.
func (s *TieredAlias) RPEntryBits() int { return 256 }

// Propose implements StagedSampler: one draw from whichever tier holds
// the row, always final (the alias method's single-decision shape is
// tier-independent).
func (s *TieredAlias) Propose(_ *graph.CSR, ctx Context, _ Candidate, r *rng.Stream) Candidate {
	return Candidate{Index: s.DrawAt(ctx.Cur, r), Probes: 1, Final: true}
}

// Accept implements StagedSampler (never reached: proposals are final).
func (s *TieredAlias) Accept(*graph.CSR, Context, Candidate, *rng.Stream) bool { return true }
