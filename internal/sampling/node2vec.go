package sampling

import (
	"fmt"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// node2vecBias returns the second-order bias node2vec applies to candidate
// next-vertex v given the previous vertex prev:
//
//	1/p if v == prev           (return)
//	1   if prev has edge to v  (stay near)
//	1/q otherwise              (explore)
//
// The adjacency probe routes through the engine's staged memory view:
// a snapshot overlay first when prev's row is dirty for the serving
// epoch (its base copy is stale), then the tiered store's view when the
// engine runs over one (prev's row may live compressed in the cold
// arena; the view caches its decode), and the CSR otherwise.
func node2vecBias(g *graph.CSR, mem *RowView, prev, v graph.VertexID, p, q float64) float64 {
	switch {
	case v == prev:
		return 1 / p
	case hasEdge(g, mem, prev, v):
		return 1
	default:
		return 1 / q
	}
}

// hasEdge is the overlay- and tier-routed adjacency probe behind
// node2vecBias.
func hasEdge(g *graph.CSR, mem *RowView, u, v graph.VertexID) bool {
	if mem != nil {
		if mem.Snap != nil && mem.Snap.Dirty(u) {
			return mem.Snap.HasEdge(u, v)
		}
		if mem.Tier != nil {
			return mem.Tier.HasEdge(u, v)
		}
	}
	return g.HasEdge(u, v)
}

// Rejection implements node2vec's neighbor selection on unweighted graphs by
// rejection sampling (the scheme gSampler and the paper use): draw a
// candidate uniformly, accept with probability bias/maxBias. Each loop trip
// costs one neighbor-list probe plus an adjacency check against prev.
type Rejection struct {
	P, Q float64
	// maxBias = max(1/p, 1, 1/q), the acceptance envelope.
	maxBias float64
	// MaxTrips bounds the rejection loop; on exhaustion the last candidate
	// is accepted (bias toward exact sampling is negligible for sane p,q and
	// the bound keeps hardware service time finite, as real designs do).
	MaxTrips int
}

// NewRejection validates p and q and returns the sampler.
func NewRejection(p, q float64) (*Rejection, error) {
	// The negated predicate also rejects NaN bias factors.
	if !(p > 0) || !(q > 0) {
		return nil, fmt.Errorf("sampling: node2vec p=%v q=%v must be > 0", p, q)
	}
	m := 1.0
	if 1/p > m {
		m = 1 / p
	}
	if 1/q > m {
		m = 1 / q
	}
	return &Rejection{P: p, Q: q, maxBias: m, MaxTrips: 64}, nil
}

// Sample implements Sampler by running the Propose/Accept protocol to
// completion: draw a candidate uniformly, accept with probability
// bias/maxBias, repeat.
func (s *Rejection) Sample(g *graph.CSR, ctx Context, r *rng.Stream) Result {
	return SampleStaged(s, g, ctx, r)
}

// Kind implements Sampler.
func (s *Rejection) Kind() Kind { return KindRejection }

// RPEntryBits implements Sampler.
func (s *Rejection) RPEntryBits() int { return 64 }

// Reservoir implements weighted second-order selection by a one-pass
// weighted reservoir over the neighbor list — the scheme LightRW uses for
// weighted node2vec and MetaPath. Cost is one probe per neighbor.
type Reservoir struct {
	// P, Q are node2vec bias factors; set both to 1 for plain weighted
	// selection.
	P, Q float64
}

// NewReservoir validates p and q and returns the sampler.
func NewReservoir(p, q float64) (*Reservoir, error) {
	// The negated predicate also rejects NaN bias factors.
	if !(p > 0) || !(q > 0) {
		return nil, fmt.Errorf("sampling: node2vec p=%v q=%v must be > 0", p, q)
	}
	return &Reservoir{P: p, Q: q}, nil
}

// Sample implements Sampler.
func (s *Reservoir) Sample(g *graph.CSR, ctx Context, r *rng.Stream) Result {
	return SampleStaged(s, g, ctx, r)
}

// scan is the one-pass weighted reservoir over the neighbor list — the
// single (non-resumable) stage behind Propose.
func (s *Reservoir) scan(g *graph.CSR, ctx Context, r *rng.Stream) Result {
	ns := ctx.row(g)
	ws := ctx.rowWeights(g)
	chosen := -1
	cum := 0.0
	for i, v := range ns {
		w := 1.0
		if ws != nil {
			w = float64(ws[i])
		}
		if ctx.HasPrev {
			w *= node2vecBias(g, ctx.Mem, ctx.Prev, v, s.P, s.Q)
		}
		cum += w
		// A-Chao weighted reservoir of size 1: replace the incumbent with
		// probability w/cum; the final winner is exactly w-proportional.
		if r.Float64()*cum < w {
			chosen = i
		}
	}
	return Result{Index: chosen, Probes: len(ns)}
}

// Kind implements Sampler.
func (s *Reservoir) Kind() Kind { return KindReservoir }

// RPEntryBits implements Sampler.
func (s *Reservoir) RPEntryBits() int { return 128 }

// MetaPath selects the next vertex among neighbors whose label matches the
// walk's schema (metapath2vec), weighted when the graph is weighted. A walk
// terminates early when no neighbor matches — the irregularity Fig. 8d
// exercises.
type MetaPath struct {
	// Schema is the cyclic sequence of vertex types; hop i must land on a
	// vertex labeled Schema[(i+1) % len(Schema)].
	Schema []uint8
}

// NewMetaPath validates the schema.
func NewMetaPath(schema []uint8) (*MetaPath, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("sampling: empty metapath schema")
	}
	return &MetaPath{Schema: schema}, nil
}

// Sample implements Sampler. Index is -1 when no neighbor matches the
// required type.
func (s *MetaPath) Sample(g *graph.CSR, ctx Context, r *rng.Stream) Result {
	return SampleStaged(s, g, ctx, r)
}

// scan is the schema-filtered weighted reservoir over the neighbor list —
// the single (non-resumable) stage behind Propose.
func (s *MetaPath) scan(g *graph.CSR, ctx Context, r *rng.Stream) Result {
	want := s.Schema[(ctx.Step+1)%len(s.Schema)]
	ns := ctx.row(g)
	ws := ctx.rowWeights(g)
	chosen := -1
	cum := 0.0
	for i, v := range ns {
		if g.Label(v) != want {
			continue
		}
		w := 1.0
		if ws != nil {
			w = float64(ws[i])
		}
		cum += w
		if r.Float64()*cum < w {
			chosen = i
		}
	}
	return Result{Index: chosen, Probes: len(ns)}
}

// Kind implements Sampler.
func (s *MetaPath) Kind() Kind { return KindMetaPath }

// RPEntryBits implements Sampler.
func (s *MetaPath) RPEntryBits() int { return 128 }
