package sampling

import (
	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// Candidate is the resumable state of one in-progress sampling decision.
// It is the value a pipelined engine parks in a walker's lane between
// pipeline passes: when a rejection sampler turns a candidate down, the
// walker re-enters the Sample stage on a later pass with the previous
// Candidate instead of spinning inline, so the row fetches of other
// walkers overlap the rejection loop.
//
// The zero Candidate means "no proposal yet" and is what the first
// Propose call of a decision receives.
type Candidate struct {
	// Index is the proposed position within Neighbors(Cur), or -1 when no
	// neighbor is selectable (MetaPath schema miss, missing alias row).
	Index int
	// Probes accumulates sampling iterations that touched neighbor-list
	// memory across the proposals of this decision (Result.Probes).
	Probes int
	// Trips counts rejection-loop proposals so far; it is the resume state
	// that bounds the rejection loop across pipeline passes.
	Trips int
	// Final marks a proposal that needs no Accept phase: Index is the
	// decision (single-draw samplers, first-hop shortcuts, full-row
	// reservoir scans).
	Final bool
}

// StagedSampler decomposes Sample into a Propose half and an Accept half
// so a step-interleaved engine can run the decision as pipeline stages and
// re-enter it across passes.
//
// The protocol, starting from the zero Candidate c:
//
//	c = Propose(g, ctx, c, r)
//	if c.Final            -> decision is c.Index
//	else if Accept(c)     -> decision is c.Index
//	else                  -> repeat from Propose with c
//
// Running the protocol to completion on a fresh RNG stream MUST consume
// draws in exactly the order Sample does and produce the same Result —
// byte-identical trajectories across engines depend on it. SampleStaged is
// the reference driver, and every sampler in this package implements
// Sample by calling it.
type StagedSampler interface {
	Sampler
	// Propose draws the next candidate for the decision. prev is the zero
	// Candidate on the first call, or the rejected candidate when the
	// decision re-enters the pipeline.
	Propose(g *graph.CSR, ctx Context, prev Candidate, r *rng.Stream) Candidate
	// Accept decides a non-final candidate: true accepts c.Index, false
	// sends the decision back to Propose. Never called when c.Final.
	Accept(g *graph.CSR, ctx Context, c Candidate, r *rng.Stream) bool
}

// SampleStaged runs the Propose/Accept protocol to completion — the
// reference semantics a staged sampler's Sample must equal.
func SampleStaged(s StagedSampler, g *graph.CSR, ctx Context, r *rng.Stream) Result {
	var c Candidate
	for {
		c = s.Propose(g, ctx, c, r)
		if c.Final || s.Accept(g, ctx, c, r) {
			return Result{Index: c.Index, Probes: c.Probes}
		}
	}
}

// AsStaged returns s as a StagedSampler. All samplers in this package are
// staged; the second return guards external Sampler implementations.
func AsStaged(s Sampler) (StagedSampler, bool) {
	ss, ok := s.(StagedSampler)
	return ss, ok
}

// Propose implements StagedSampler: one uniform draw, always final.
func (Uniform) Propose(g *graph.CSR, ctx Context, _ Candidate, r *rng.Stream) Candidate {
	return Candidate{Index: r.Intn(ctx.degree(g)), Probes: 1, Final: true}
}

// Accept implements StagedSampler (never reached: proposals are final).
func (Uniform) Accept(*graph.CSR, Context, Candidate, *rng.Stream) bool { return true }

// Propose implements StagedSampler: one pointer-free draw from the flat
// alias store (locator word + two arena loads), always final. DrawAt
// returns -1 without consuming randomness for zero-degree vertices,
// exactly as the per-vertex-table representation did for missing tables.
func (s *AliasSampler) Propose(_ *graph.CSR, ctx Context, _ Candidate, r *rng.Stream) Candidate {
	return Candidate{Index: s.DrawAt(ctx.Cur, r), Probes: 1, Final: true}
}

// Accept implements StagedSampler (never reached: proposals are final).
func (s *AliasSampler) Accept(*graph.CSR, Context, Candidate, *rng.Stream) bool { return true }

// Propose implements StagedSampler: draw one uniform candidate per trip.
// The first hop has no previous vertex and is unbiased, hence final.
func (s *Rejection) Propose(g *graph.CSR, ctx Context, prev Candidate, r *rng.Stream) Candidate {
	deg := ctx.degree(g)
	if !ctx.HasPrev {
		return Candidate{Index: r.Intn(deg), Probes: 1, Final: true}
	}
	return Candidate{Index: r.Intn(deg), Probes: prev.Probes + 1, Trips: prev.Trips + 1}
}

// Accept implements StagedSampler: accept with probability bias/maxBias,
// or unconditionally once the trip bound is exhausted (the draw still
// happens first, preserving the stream position of the inline loop).
func (s *Rejection) Accept(g *graph.CSR, ctx Context, c Candidate, r *rng.Stream) bool {
	bias := node2vecBias(g, ctx.Mem, ctx.Prev, ctx.row(g)[c.Index], s.P, s.Q)
	return r.Float64()*s.maxBias < bias || c.Trips >= s.MaxTrips
}

// Propose implements StagedSampler: the one-pass weighted reservoir scan
// is a single stage over the row the Gather stage prefetched, so the
// proposal is always final.
func (s *Reservoir) Propose(g *graph.CSR, ctx Context, _ Candidate, r *rng.Stream) Candidate {
	res := s.scan(g, ctx, r)
	return Candidate{Index: res.Index, Probes: res.Probes, Final: true}
}

// Accept implements StagedSampler (never reached: proposals are final).
func (s *Reservoir) Accept(*graph.CSR, Context, Candidate, *rng.Stream) bool { return true }

// Propose implements StagedSampler: the schema-filtered reservoir scan is
// a single stage over the prefetched row, so the proposal is always final.
func (s *MetaPath) Propose(g *graph.CSR, ctx Context, _ Candidate, r *rng.Stream) Candidate {
	res := s.scan(g, ctx, r)
	return Candidate{Index: res.Index, Probes: res.Probes, Final: true}
}

// Accept implements StagedSampler (never reached: proposals are final).
func (s *MetaPath) Accept(*graph.CSR, Context, Candidate, *rng.Stream) bool { return true }
