package sampling

import (
	"math"
	"runtime"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// storeTestGraph returns a weighted RMAT graph big enough to exercise the
// parallel builder's range partitioning and hub rows.
func storeTestGraph(t testing.TB, scale int) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.Graph500(scale, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	return g
}

// TestAliasStoreMatchesPerVertexTables pins the flat arena representation
// to the reference per-vertex construction: for every vertex, the packed
// row must draw byte-identically to a standalone AliasTable built from
// the same weight row on the same RNG stream.
func TestAliasStoreMatchesPerVertexTables(t *testing.T) {
	g := storeTestGraph(t, 9)
	s, err := NewAliasSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices; v++ {
		id := graph.VertexID(v)
		ws := g.NeighborWeights(id)
		if len(ws) == 0 {
			if got := s.DrawAt(id, rng.New(1)); got != -1 {
				t.Fatalf("vertex %d: zero-degree DrawAt = %d, want -1", v, got)
			}
			continue
		}
		tab, err := NewAliasTable(ws)
		if err != nil {
			t.Fatal(err)
		}
		r1, r2 := rng.New(uint64(v)), rng.New(uint64(v))
		for i := 0; i < 32; i++ {
			want := tab.Draw(r1)
			got := s.DrawAt(id, r2)
			if got != want {
				t.Fatalf("vertex %d draw %d: flat store %d, per-vertex table %d", v, i, got, want)
			}
		}
	}
}

// TestAliasStoreWorkerCountInvariant asserts the arenas are identical at
// every worker count — the parallel build must be deterministic.
func TestAliasStoreWorkerCountInvariant(t *testing.T) {
	g := storeTestGraph(t, 9)
	ref, err := NewAliasSamplerWorkers(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 7, 16} {
		s, err := NewAliasSamplerWorkers(g, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.prob {
			if s.prob[i] != ref.prob[i] || s.alias[i] != ref.alias[i] {
				t.Fatalf("workers=%d: arena slot %d differs (prob %v vs %v, alias %d vs %d)",
					workers, i, s.prob[i], ref.prob[i], s.alias[i], ref.alias[i])
			}
		}
		for v := range ref.loc {
			if s.loc[v] != ref.loc[v] {
				t.Fatalf("workers=%d: locator %d differs", workers, v)
			}
		}
	}
}

// TestAliasStoreGoodnessOfFit chi-squares the flat store's draws against
// the exact edge-weight distribution on a weighted graph, for a spread of
// vertices including the highest-degree hub.
func TestAliasStoreGoodnessOfFit(t *testing.T) {
	g := storeTestGraph(t, 8)
	s, err := NewAliasSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	// Pick the hub plus a few arbitrary mid-degree vertices.
	hub := graph.VertexID(0)
	for v := 0; v < g.NumVertices; v++ {
		if g.Degree(graph.VertexID(v)) > g.Degree(hub) {
			hub = graph.VertexID(v)
		}
	}
	vertices := []graph.VertexID{hub}
	for v := 0; v < g.NumVertices && len(vertices) < 5; v++ {
		if d := g.Degree(graph.VertexID(v)); d >= 2 && d <= 10 {
			vertices = append(vertices, graph.VertexID(v))
		}
	}
	for _, v := range vertices {
		ws := g.NeighborWeights(v)
		total := 0.0
		for _, w := range ws {
			total += float64(w)
		}
		probs := make([]float64, len(ws))
		for i, w := range ws {
			probs[i] = float64(w) / total
		}
		draws := 2000 * len(ws)
		if draws > 400000 {
			draws = 400000
		}
		counts := make([]int, len(ws))
		r := rng.New(uint64(v) + 1000)
		for i := 0; i < draws; i++ {
			counts[s.DrawAt(v, r)]++
		}
		// Conservative p=0.001 threshold: for k-1 degrees of freedom the
		// critical value is below k-1 + 4*sqrt(2(k-1)) for the sizes here.
		df := float64(len(ws) - 1)
		crit := df + 4*math.Sqrt(2*df)
		if df < 10 {
			crit = chi2Critical999[len(ws)-1]
		}
		if c := chi2(counts, probs, draws); c > crit {
			t.Fatalf("vertex %d (deg %d): chi2=%v > %v", v, len(ws), c, crit)
		}
	}
}

// TestAliasRejectsNonFiniteWeights pins the validation fix: +Inf used to
// pass the w > 0 test, poison the row total, and yield a NaN-filled table
// that silently drew garbage.
func TestAliasRejectsNonFiniteWeights(t *testing.T) {
	inf := float32(math.Inf(1))
	nan := float32(math.NaN())
	for _, ws := range [][]float32{
		{1, inf, 2},
		{inf},
		{nan, 1},
		{1, 2, nan},
	} {
		if _, err := NewAliasTable(ws); err == nil {
			t.Errorf("NewAliasTable(%v) accepted non-finite weights", ws)
		}
	}
	// The graph-level builder must reject them too, naming the vertex.
	g := graph.SmallTestGraph()
	g.AttachWeights()
	g.Weights[1] = inf
	if _, err := NewAliasSampler(g); err == nil {
		t.Error("NewAliasSampler accepted a graph with an infinite weight")
	}
	g.Weights[1] = nan
	if _, err := NewAliasSampler(g); err == nil {
		t.Error("NewAliasSampler accepted a graph with a NaN weight")
	}
}

// TestAliasTableBytesTracked pins TableBytes to its exact value (12 bytes
// per arena slot, one slot per edge) — now tracked at build, not summed
// over V.
func TestAliasTableBytesTracked(t *testing.T) {
	g := storeTestGraph(t, 8)
	s, err := NewAliasSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(g.Col)) * 12; s.TableBytes() != want {
		t.Fatalf("TableBytes = %d, want %d", s.TableBytes(), want)
	}
	if want := int64(len(g.Col))*12 + int64(g.NumVertices)*8; s.MemoryFootprint() != want {
		t.Fatalf("MemoryFootprint = %d, want %d", s.MemoryFootprint(), want)
	}
}

// TestAliasStoreBuildAllocs pins the arena build's allocation count:
// O(1) beyond the three arenas and per-worker scratch, independent of
// graph size. The old per-vertex representation allocated 5+ objects per
// vertex (~100k for this graph).
func TestAliasStoreBuildAllocs(t *testing.T) {
	g := storeTestGraph(t, 11) // 2^11 vertices: old build was ~10^4 allocs
	workers := 2
	// Warm once so lazy runtime state doesn't bill the measured build.
	if _, err := NewAliasSamplerWorkers(g, workers); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	s, err := NewAliasSamplerWorkers(g, workers)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	// 3 arenas + locator + bounds + error slot + per-worker scratch and
	// goroutine bookkeeping; 64 is an order of magnitude of headroom while
	// still catching any O(V) regression (this graph has 2^11 vertices).
	if allocs > 64 {
		t.Fatalf("build allocated %d objects, want O(1) (<= 64)", allocs)
	}
	if s.TableBytes() == 0 {
		t.Fatal("sanity: empty store")
	}
}

// TestAliasStoreTouchRow sanity-checks the Gather-stage prefetch helper:
// nonpanicking for every vertex, including zero-degree ones.
func TestAliasStoreTouchRow(t *testing.T) {
	g := storeTestGraph(t, 8)
	s, err := NewAliasSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	var sink uint64
	for v := 0; v < g.NumVertices; v++ {
		sink ^= s.TouchRow(graph.VertexID(v))
	}
	_ = sink
}

// BenchmarkSamplerBuild compares weighted-sampler preprocessing cost:
// serial-old reproduces the retired representation (one heap AliasTable
// per vertex, built serially — 5+ allocations per vertex), parallel-new
// is the flat arena store built by the degree-partitioned worker pool.
func BenchmarkSamplerBuild(b *testing.B) {
	g, err := graph.GenerateRMAT(graph.Graph500(14, 16, 7))
	if err != nil {
		b.Fatal(err)
	}
	g.AttachWeights()
	b.Run("serial-old", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tables := make([]*AliasTable, g.NumVertices)
			for v := 0; v < g.NumVertices; v++ {
				ws := g.NeighborWeights(graph.VertexID(v))
				if len(ws) == 0 {
					continue
				}
				tab, err := NewAliasTable(ws)
				if err != nil {
					b.Fatal(err)
				}
				tables[v] = tab
			}
			if tables[0] == nil && g.Degree(0) > 0 {
				b.Fatal("missing table")
			}
		}
	})
	b.Run("parallel-new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := NewAliasSamplerWorkers(g, runtime.GOMAXPROCS(0))
			if err != nil {
				b.Fatal(err)
			}
			if s.TableBytes() == 0 {
				b.Fatal("empty store")
			}
		}
	})
	b.Run("serial-new", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s, err := NewAliasSamplerWorkers(g, 1)
			if err != nil {
				b.Fatal(err)
			}
			if s.TableBytes() == 0 {
				b.Fatal("empty store")
			}
		}
	})
}

// BenchmarkAliasStoreDraw measures the pointer-free draw path against a
// skewed row mix (the store version of BenchmarkAliasDraw).
func BenchmarkAliasStoreDraw(b *testing.B) {
	g, err := graph.GenerateRMAT(graph.Graph500(12, 8, 3))
	if err != nil {
		b.Fatal(err)
	}
	g.AttachWeights()
	s, err := NewAliasSampler(g)
	if err != nil {
		b.Fatal(err)
	}
	// Cycle over vertices with edges.
	var vs []graph.VertexID
	for v := 0; v < g.NumVertices && len(vs) < 1024; v++ {
		if g.Degree(graph.VertexID(v)) > 0 {
			vs = append(vs, graph.VertexID(v))
		}
	}
	r := rng.New(1)
	var sink int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += s.DrawAt(vs[i%len(vs)], r)
	}
	_ = sink
}
