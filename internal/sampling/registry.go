package sampling

import (
	"fmt"
	"sync"

	"ridgewalker/internal/graph"
)

// Spec names everything that determines a sampler's state: the sampling
// algorithm plus only the parameters that algorithm actually conditions
// on. Walk-level parameters that never reach the sampler — walk length,
// PPR's α, the seed — are deliberately absent, so sessions differing only
// in those share one sampler instance through the Registry instead of
// rebuilding O(E) state per configuration.
type Spec struct {
	// Kind selects the sampling algorithm (Table I).
	Kind Kind
	// Weighted records whether the sampler reads edge weights. It is part
	// of the key because weights can be attached to a CSR in place:
	// a sampler built before AttachWeights must not be served after.
	Weighted bool
	// P, Q are the node2vec bias factors (rejection, reservoir); zero for
	// the other kinds.
	P, Q float64
	// Schema is MetaPath's cyclic vertex-type sequence, stored as a
	// string so the Spec is comparable.
	Schema string
	// TierBudget, when nonzero, selects the tiered alias store with that
	// hot-tier byte budget (negative pins nothing — an all-cold store).
	// Zero keeps the flat arenas. Part of the key because different
	// budgets pin different hot sets; only KindAlias conditions on it, so
	// engines must leave it zero for the other kinds or sessions that
	// could share a sampler will not.
	TierBudget int64
}

// String renders the spec for diagnostics.
func (s Spec) String() string {
	out := s.Kind.String()
	if s.Weighted {
		out += "+w"
	}
	if s.P != 0 || s.Q != 0 {
		out += fmt.Sprintf(" p=%g q=%g", s.P, s.Q)
	}
	if s.Schema != "" {
		out += fmt.Sprintf(" schema=%v", []uint8(s.Schema))
	}
	if s.TierBudget != 0 {
		out += fmt.Sprintf(" tier=%d", s.TierBudget)
	}
	return out
}

// Build constructs the sampler the spec describes over g.
func (s Spec) Build(g *graph.CSR) (Sampler, error) {
	switch s.Kind {
	case KindUniform:
		return Uniform{}, nil
	case KindAlias:
		if s.TierBudget != 0 {
			return NewTieredAlias(g, s.TierBudget)
		}
		return NewAliasSampler(g)
	case KindRejection:
		return NewRejection(s.P, s.Q)
	case KindReservoir:
		return NewReservoir(s.P, s.Q)
	case KindMetaPath:
		return NewMetaPath([]uint8(s.Schema))
	}
	return nil, fmt.Errorf("sampling: unknown sampler kind %d", int(s.Kind))
}

// regKey identifies one immutable sampler: the graph it was built over
// (by identity — CSRs are immutable in use) and its spec.
type regKey struct {
	g    *graph.CSR
	spec Spec
}

// regEntry is one registry slot. The sampler is built outside the
// registry lock under the once — an O(E) alias build must not stall
// acquisitions of unrelated samplers.
type regEntry struct {
	once    sync.Once
	sampler Sampler
	err     error
	refs    int
}

// Registry shares immutable samplers across sessions and backends.
// Samplers are keyed by what actually determines them (graph identity,
// kind, weights, p, q, schema); Acquire returns a refcounted borrow and
// the entry is evicted when the last borrower releases it, so a sampler
// lives exactly as long as some session is using it.
type Registry struct {
	mu      sync.Mutex
	entries map[regKey]*regEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[regKey]*regEntry{}}
}

// defaultRegistry is the process-wide registry the execution layer
// borrows from.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry.
func DefaultRegistry() *Registry { return defaultRegistry }

// SamplerRef is a refcounted borrow of a registry sampler. Release it
// when the borrowing session closes; the underlying sampler is dropped
// from the registry when the last reference goes.
type SamplerRef struct {
	reg     *Registry
	key     regKey
	e       *regEntry
	release sync.Once
}

// Sampler returns the borrowed sampler. Valid until Release.
func (r *SamplerRef) Sampler() Sampler { return r.e.sampler }

// Release returns the borrow. Safe to call more than once; only the
// first call decrements.
func (r *SamplerRef) Release() {
	r.release.Do(func() { r.reg.drop(r.key, r.e) })
}

// Acquire returns a refcounted sampler for (g, spec), building it on
// first use. Concurrent acquisitions of the same key share one build;
// acquisitions of different keys never wait on each other's builds.
func (reg *Registry) Acquire(g *graph.CSR, spec Spec) (*SamplerRef, error) {
	key := regKey{g: g, spec: spec}
	reg.mu.Lock()
	e := reg.entries[key]
	if e == nil {
		e = &regEntry{}
		reg.entries[key] = e
	}
	e.refs++
	reg.mu.Unlock()
	e.once.Do(func() {
		e.sampler, e.err = spec.Build(g)
	})
	if e.err != nil {
		// Failed builds are evicted with their last waiter so a later
		// Acquire (e.g. after weights were attached) can retry.
		reg.drop(key, e)
		return nil, e.err
	}
	return &SamplerRef{reg: reg, key: key, e: e}, nil
}

// drop decrements an entry, evicting it when the last reference goes.
func (reg *Registry) drop(key regKey, e *regEntry) {
	reg.mu.Lock()
	e.refs--
	if e.refs == 0 && reg.entries[key] == e {
		delete(reg.entries, key)
	}
	reg.mu.Unlock()
}

// Len reports the number of live (referenced) samplers.
func (reg *Registry) Len() int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return len(reg.entries)
}

// Refs reports the reference count of (g, spec), 0 when absent (tests
// and introspection).
func (reg *Registry) Refs(g *graph.CSR, spec Spec) int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if e := reg.entries[regKey{g: g, spec: spec}]; e != nil {
		return e.refs
	}
	return 0
}

// Footprint reports a sampler's resident byte size: the flat alias store
// for weighted DeepWalk, near-zero for the parametric samplers. Serving
// layers surface it as sampler_bytes in perf reports.
func Footprint(s Sampler) int64 {
	switch t := s.(type) {
	case *AliasSampler:
		return t.MemoryFootprint()
	case *TieredAlias:
		return t.MemoryFootprint()
	case *MetaPath:
		return int64(len(t.Schema))
	default:
		return 0
	}
}
