package sampling

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
)

// Spec names everything that determines a sampler's state: the sampling
// algorithm plus only the parameters that algorithm actually conditions
// on. Walk-level parameters that never reach the sampler — walk length,
// PPR's α, the seed — are deliberately absent, so sessions differing only
// in those share one sampler instance through the Registry instead of
// rebuilding O(E) state per configuration.
type Spec struct {
	// Kind selects the sampling algorithm (Table I).
	Kind Kind
	// Weighted records whether the sampler reads edge weights. It is part
	// of the key because weights can be attached to a CSR in place:
	// a sampler built before AttachWeights must not be served after.
	Weighted bool
	// P, Q are the node2vec bias factors (rejection, reservoir); zero for
	// the other kinds.
	P, Q float64
	// Schema is MetaPath's cyclic vertex-type sequence, stored as a
	// string so the Spec is comparable.
	Schema string
	// TierBudget, when nonzero, selects the tiered alias store with that
	// hot-tier byte budget (negative pins nothing — an all-cold store).
	// Zero keeps the flat arenas. Part of the key because different
	// budgets pin different hot sets; only KindAlias conditions on it, so
	// engines must leave it zero for the other kinds or sessions that
	// could share a sampler will not.
	TierBudget int64
}

// String renders the spec for diagnostics — eviction logs, perf reports.
// The rendering is injective over valid specs and ParseSpec inverts it.
// Kinds that condition on p/q (rejection, reservoir) always print them,
// even at p=q=0, so two such specs never collapse to the same string;
// schemas print as bracketed decimal label lists instead of raw bytes.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Kind.String())
	if s.Weighted {
		b.WriteString("+w")
	}
	if s.Kind == KindRejection || s.Kind == KindReservoir || s.P != 0 || s.Q != 0 {
		fmt.Fprintf(&b, " p=%g q=%g", s.P, s.Q)
	}
	if s.Kind == KindMetaPath || s.Schema != "" {
		b.WriteString(" schema=[")
		for i := 0; i < len(s.Schema); i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(s.Schema[i])))
		}
		b.WriteByte(']')
	}
	if s.TierBudget != 0 {
		fmt.Fprintf(&b, " tier=%d", s.TierBudget)
	}
	return b.String()
}

// ParseSpec inverts Spec.String, so diagnostics are round-trippable.
func ParseSpec(str string) (Spec, error) {
	var s Spec
	fields := strings.Fields(str)
	if len(fields) == 0 {
		return s, fmt.Errorf("sampling: empty spec string")
	}
	name := fields[0]
	if w := strings.TrimSuffix(name, "+w"); w != name {
		s.Weighted = true
		name = w
	}
	kind := Kind(-1)
	for k := KindUniform; k <= KindMetaPath; k++ {
		if k.String() == name {
			kind = k
			break
		}
	}
	if kind < 0 {
		return s, fmt.Errorf("sampling: unknown sampler kind %q", name)
	}
	s.Kind = kind
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return s, fmt.Errorf("sampling: malformed spec field %q", f)
		}
		switch key {
		case "p", "q":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return s, fmt.Errorf("sampling: bad %s value %q: %w", key, val, err)
			}
			if key == "p" {
				s.P = x
			} else {
				s.Q = x
			}
		case "schema":
			body := strings.TrimSuffix(strings.TrimPrefix(val, "["), "]")
			if len(body)+2 != len(val) {
				return s, fmt.Errorf("sampling: malformed schema %q", val)
			}
			if body == "" {
				continue
			}
			var sb strings.Builder
			for _, lab := range strings.Split(body, ",") {
				x, err := strconv.ParseUint(lab, 10, 8)
				if err != nil {
					return s, fmt.Errorf("sampling: bad schema label %q: %w", lab, err)
				}
				sb.WriteByte(byte(x))
			}
			s.Schema = sb.String()
		case "tier":
			x, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return s, fmt.Errorf("sampling: bad tier budget %q: %w", val, err)
			}
			s.TierBudget = x
		default:
			return s, fmt.Errorf("sampling: unknown spec field %q", key)
		}
	}
	return s, nil
}

// Build constructs the sampler the spec describes over g.
func (s Spec) Build(g *graph.CSR) (Sampler, error) {
	switch s.Kind {
	case KindUniform:
		return Uniform{}, nil
	case KindAlias:
		if s.TierBudget != 0 {
			return NewTieredAlias(g, s.TierBudget)
		}
		return NewAliasSampler(g)
	case KindRejection:
		return NewRejection(s.P, s.Q)
	case KindReservoir:
		return NewReservoir(s.P, s.Q)
	case KindMetaPath:
		return NewMetaPath([]uint8(s.Schema))
	}
	return nil, fmt.Errorf("sampling: unknown sampler kind %d", int(s.Kind))
}

// regKey identifies one immutable sampler: the graph it was built over —
// by identity AND revision stamp, because AttachWeights/AttachLabels
// revise a CSR in place and a sampler built before such a revision must
// not be served after (the version dimension makes stale acquisitions
// miss instead of silently aliasing) — plus, for samplers derived for an
// epoch snapshot, the snapshot's epoch, and the spec.
type regKey struct {
	g     *graph.CSR
	ver   uint64
	epoch uint64
	spec  Spec
}

// regEntry is one registry slot. The sampler is built outside the
// registry lock under the once — an O(E) alias build must not stall
// acquisitions of unrelated samplers.
type regEntry struct {
	once    sync.Once
	sampler Sampler
	err     error
	refs    int
	// onEvict, when set, runs after the entry leaves the map — derived
	// snapshot samplers release their base-sampler borrow here.
	onEvict func()
}

// Registry shares immutable samplers across sessions and backends.
// Samplers are keyed by what actually determines them (graph identity,
// kind, weights, p, q, schema); Acquire returns a refcounted borrow and
// the entry is evicted when the last borrower releases it, so a sampler
// lives exactly as long as some session is using it.
type Registry struct {
	mu      sync.Mutex
	entries map[regKey]*regEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[regKey]*regEntry{}}
}

// defaultRegistry is the process-wide registry the execution layer
// borrows from.
var defaultRegistry = NewRegistry()

// DefaultRegistry returns the process-wide registry.
func DefaultRegistry() *Registry { return defaultRegistry }

// SamplerRef is a refcounted borrow of a registry sampler. Release it
// when the borrowing session closes; the underlying sampler is dropped
// from the registry when the last reference goes.
type SamplerRef struct {
	reg     *Registry
	key     regKey
	e       *regEntry
	release sync.Once
}

// Sampler returns the borrowed sampler. Valid until Release.
func (r *SamplerRef) Sampler() Sampler { return r.e.sampler }

// Release returns the borrow. Safe to call more than once; only the
// first call decrements.
func (r *SamplerRef) Release() {
	r.release.Do(func() { r.reg.drop(r.key, r.e) })
}

// Acquire returns a refcounted sampler for (g, spec), building it on
// first use. Concurrent acquisitions of the same key share one build;
// acquisitions of different keys never wait on each other's builds.
func (reg *Registry) Acquire(g *graph.CSR, spec Spec) (*SamplerRef, error) {
	// Injection sits before any registry mutation: a panic here leaves no
	// half-registered entry behind.
	if err := fault.Check(fault.SamplerBuild); err != nil {
		return nil, err
	}
	key := regKey{g: g, ver: g.Version(), spec: spec}
	reg.mu.Lock()
	e := reg.entries[key]
	if e == nil {
		e = &regEntry{}
		reg.entries[key] = e
	}
	e.refs++
	reg.mu.Unlock()
	e.once.Do(func() {
		e.sampler, e.err = spec.Build(g)
	})
	if e.err != nil {
		// Failed builds are evicted with their last waiter so a later
		// Acquire (e.g. after weights were attached) can retry.
		reg.drop(key, e)
		return nil, e.err
	}
	if e.sampler == nil {
		// The building goroutine panicked inside the once (and was
		// contained upstream): the once is burned but the entry holds
		// nothing. Evict so a later Acquire rebuilds instead of serving a
		// nil sampler forever.
		reg.drop(key, e)
		return nil, fmt.Errorf("sampling: sampler build for %v aborted", spec)
	}
	return &SamplerRef{reg: reg, key: key, e: e}, nil
}

// AcquireSnapshot returns a refcounted sampler serving an epoch snapshot.
// Parametric samplers (uniform, rejection, reservoir, metapath) hold no
// per-row state — the walk layer consults the overlay at sampling time —
// so they resolve to the plain (graph, spec) entry and stay shared across
// epochs. The alias kind holds O(E) row state, so a snapshot with dirty
// rows gets a per-epoch entry derived incrementally from the base
// sampler via WithRebuiltRows (base arenas shared, dirty rows rebuilt);
// the base borrow is released when the derived entry is evicted.
func (reg *Registry) AcquireSnapshot(snap *graph.Snapshot, spec Spec) (*SamplerRef, error) {
	g := snap.Graph()
	if spec.Kind != KindAlias || snap.NumDirty() == 0 {
		return reg.Acquire(g, spec)
	}
	if err := fault.Check(fault.SamplerBuild); err != nil {
		return nil, err
	}
	if spec.TierBudget != 0 {
		return nil, fmt.Errorf("sampling: tiered alias store cannot serve a dirty snapshot (use a flat spec; the graph tier keeps the budget)")
	}
	key := regKey{g: g, ver: g.Version(), epoch: snap.Epoch(), spec: spec}
	reg.mu.Lock()
	e := reg.entries[key]
	if e == nil {
		e = &regEntry{}
		reg.entries[key] = e
	}
	e.refs++
	reg.mu.Unlock()
	e.once.Do(func() {
		baseRef, err := reg.Acquire(g, spec)
		if err != nil {
			e.err = err
			return
		}
		base, ok := baseRef.Sampler().(*AliasSampler)
		if !ok {
			baseRef.Release()
			e.err = fmt.Errorf("sampling: base sampler for %v is %T, want *AliasSampler", spec, baseRef.Sampler())
			return
		}
		d, err := base.WithRebuiltRows(snap)
		if err != nil {
			baseRef.Release()
			e.err = err
			return
		}
		e.sampler = d
		e.onEvict = baseRef.Release
	})
	if e.err != nil {
		reg.drop(key, e)
		return nil, e.err
	}
	if e.sampler == nil {
		// Burned once with no sampler: the deriving goroutine panicked and
		// was contained upstream (see Acquire).
		reg.drop(key, e)
		return nil, fmt.Errorf("sampling: snapshot sampler derivation for %v aborted", spec)
	}
	return &SamplerRef{reg: reg, key: key, e: e}, nil
}

// SnapshotRefs reports the reference count of snap's derived alias entry
// for spec, 0 when absent (tests and introspection).
func (reg *Registry) SnapshotRefs(snap *graph.Snapshot, spec Spec) int {
	g := snap.Graph()
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if e := reg.entries[regKey{g: g, ver: g.Version(), epoch: snap.Epoch(), spec: spec}]; e != nil {
		return e.refs
	}
	return 0
}

// drop decrements an entry, evicting it when the last reference goes.
func (reg *Registry) drop(key regKey, e *regEntry) {
	reg.mu.Lock()
	e.refs--
	evicted := e.refs == 0 && reg.entries[key] == e
	if evicted {
		delete(reg.entries, key)
	}
	reg.mu.Unlock()
	if evicted && e.onEvict != nil {
		e.onEvict()
	}
}

// Len reports the number of live (referenced) samplers.
func (reg *Registry) Len() int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	return len(reg.entries)
}

// Refs reports the reference count of (g, spec) at g's current version,
// 0 when absent (tests and introspection).
func (reg *Registry) Refs(g *graph.CSR, spec Spec) int {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if e := reg.entries[regKey{g: g, ver: g.Version(), spec: spec}]; e != nil {
		return e.refs
	}
	return 0
}

// Footprint reports a sampler's resident byte size: the flat alias store
// for weighted DeepWalk, near-zero for the parametric samplers. Serving
// layers surface it as sampler_bytes in perf reports.
func Footprint(s Sampler) int64 {
	switch t := s.(type) {
	case *AliasSampler:
		return t.MemoryFootprint()
	case *TieredAlias:
		return t.MemoryFootprint()
	case *MetaPath:
		return int64(len(t.Schema))
	default:
		return 0
	}
}
