package sampling

// Statistical correctness battery: chi-square goodness-of-fit for the
// samplers whose distributions have closed forms — the alias sampler
// against exact edge-weight proportions and the node2vec rejection (and
// reservoir) samplers against the exact second-order bias distribution.
//
// Methodology: fixed RNG seeds make every run identical, so these are
// deterministic regressions, not flaky stochastic tests; the significance
// level only calibrates how far a buggy sampler must drift to fail. Draw
// counts (≥200k) and p=0.001 critical values (chi2Critical999, indexed by
// degrees of freedom = outcomes-1) follow the existing alias-table test.

import (
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// biasTestGraph builds the fixed second-order scenario used throughout:
// the walk arrived 1→0 and now samples a neighbor of 0.
//
//	cur = 0 with neighbors 1..6
//	prev = 1 with out-edges to 0, 2, 3
//
// node2vec biases at (prev=1, cur=0): neighbor 1 is the return vertex
// (1/p), neighbors 2 and 3 are prev-adjacent (1), neighbors 4, 5, 6 are
// explore vertices (1/q).
func biasTestGraph(t testing.TB) *graph.CSR {
	t.Helper()
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 0, Dst: 4}, {Src: 0, Dst: 5}, {Src: 0, Dst: 6},
		{Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 1, Dst: 3},
	}
	g, err := graph.Build(7, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAliasSamplerMatchesEdgeWeights draws from the per-vertex alias
// tables of a weighted graph and checks each neighbor is selected
// proportionally to its exact edge weight.
func TestAliasSamplerMatchesEdgeWeights(t *testing.T) {
	g := biasTestGraph(t)
	g.AttachWeights() // weight(u→v) = 1 + v%5: unequal across 0's neighbors
	s, err := NewAliasSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, cur := range []graph.VertexID{0, 1} {
		ws := g.NeighborWeights(cur)
		probs := make([]float64, len(ws))
		var z float64
		for i, w := range ws {
			probs[i] = float64(w)
			z += probs[i]
		}
		for i := range probs {
			probs[i] /= z
		}
		const draws = 300000
		r := rng.New(41)
		counts := make([]int, len(ws))
		ctx := Context{Cur: cur}
		for i := 0; i < draws; i++ {
			res := s.Sample(g, ctx, r)
			if res.Index < 0 || res.Index >= len(ws) {
				t.Fatalf("cur=%d: index %d out of range", cur, res.Index)
			}
			counts[res.Index]++
		}
		df := len(ws) - 1
		if c := chi2(counts, probs, draws); c > chi2Critical999[df] {
			t.Fatalf("cur=%d: alias sampler off the edge-weight distribution: chi2=%.2f > %.2f (df=%d) counts=%v",
				cur, c, chi2Critical999[df], df, counts)
		}
	}
}

// TestRejectionSamplerMatchesNode2VecBias draws from the unweighted
// rejection sampler at a fixed (prev, cur) and checks the empirical
// distribution against the exact normalized bias. The MaxTrips=64 cutoff
// biases the true distribution by at most (1-1/maxBias)^64 (< 1e-8 for
// every p, q here) — far below the test's resolution.
func TestRejectionSamplerMatchesNode2VecBias(t *testing.T) {
	g := biasTestGraph(t)
	for _, pq := range []struct{ p, q float64 }{
		{2, 0.5},   // paper defaults: explore-leaning
		{0.5, 2},   // return-leaning
		{1, 1},     // degenerates to uniform
		{4, 0.25},  // strongly skewed envelope
		{0.25, 10}, // strong return bias, heavy rejection
	} {
		s, err := NewRejection(pq.p, pq.q)
		if err != nil {
			t.Fatal(err)
		}
		ctx := Context{Cur: 0, Prev: 1, HasPrev: true, Step: 1}
		probs := exactNode2VecProbs(g, ctx.Prev, ctx.Cur, pq.p, pq.q)
		const draws = 300000
		r := rng.New(43)
		counts := make([]int, len(probs))
		probes := 0
		for i := 0; i < draws; i++ {
			res := s.Sample(g, ctx, r)
			counts[res.Index]++
			probes += res.Probes
		}
		df := len(probs) - 1
		if c := chi2(counts, probs, draws); c > chi2Critical999[df] {
			t.Fatalf("p=%v q=%v: rejection sampler off the bias distribution: chi2=%.2f > %.2f (df=%d) counts=%v",
				pq.p, pq.q, c, chi2Critical999[df], df, counts)
		}
		if probes < draws {
			t.Fatalf("p=%v q=%v: %d probes for %d draws", pq.p, pq.q, probes, draws)
		}
	}
}

// TestReservoirSamplerMatchesWeightedBias checks the weighted-node2vec
// reservoir against the exact weight×bias distribution — the A-Chao
// reservoir must be exactly proportional, not merely approximate.
func TestReservoirSamplerMatchesWeightedBias(t *testing.T) {
	g := biasTestGraph(t)
	g.AttachWeights()
	s, err := NewReservoir(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{Cur: 0, Prev: 1, HasPrev: true, Step: 1}
	ns := g.Neighbors(0)
	ws := g.NeighborWeights(0)
	probs := make([]float64, len(ns))
	var z float64
	for i, v := range ns {
		probs[i] = float64(ws[i]) * node2vecBias(g, nil, 1, v, 2, 0.5)
		z += probs[i]
	}
	for i := range probs {
		probs[i] /= z
	}
	const draws = 300000
	r := rng.New(53)
	counts := make([]int, len(ns))
	for i := 0; i < draws; i++ {
		res := s.Sample(g, ctx, r)
		counts[res.Index]++
		if res.Probes != len(ns) {
			t.Fatalf("reservoir scan took %d probes, want %d", res.Probes, len(ns))
		}
	}
	df := len(ns) - 1
	if c := chi2(counts, probs, draws); c > chi2Critical999[df] {
		t.Fatalf("reservoir off the weight×bias distribution: chi2=%.2f > %.2f counts=%v",
			c, chi2Critical999[df], counts)
	}
}
