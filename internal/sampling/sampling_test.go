package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// chi2 computes the chi-squared statistic of observed counts against
// expected probabilities over the same index set.
func chi2(counts []int, probs []float64, draws int) float64 {
	s := 0.0
	for i, c := range counts {
		e := probs[i] * float64(draws)
		if e == 0 {
			if c != 0 {
				return math.Inf(1)
			}
			continue
		}
		d := float64(c) - e
		s += d * d / e
	}
	return s
}

// chi2Critical999 is a conservative p=0.001 critical value lookup for small
// degrees of freedom.
var chi2Critical999 = []float64{0, 10.83, 13.82, 16.27, 18.47, 20.52, 22.46, 24.32, 26.12, 27.88, 29.59}

func TestAliasTableExactness(t *testing.T) {
	weights := []float32{1, 2, 3, 4}
	tab, err := NewAliasTable(weights)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[tab.Draw(r)]++
	}
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	if c := chi2(counts, probs, draws); c > chi2Critical999[3] {
		t.Fatalf("alias distribution off: chi2=%v counts=%v", c, counts)
	}
}

func TestAliasTableSingleOutcome(t *testing.T) {
	tab, err := NewAliasTable([]float32{7})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 100; i++ {
		if tab.Draw(r) != 0 {
			t.Fatal("single-outcome table drew nonzero index")
		}
	}
}

func TestAliasTableRejectsBadWeights(t *testing.T) {
	if _, err := NewAliasTable(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAliasTable([]float32{1, 0}); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := NewAliasTable([]float32{1, -2}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestAliasTablePropertyTotalProbability(t *testing.T) {
	// For any weight vector, empirical frequencies must track weights to
	// within a loose tolerance (checked on modest sample sizes to keep the
	// property test fast).
	f := func(seed uint64, raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		weights := make([]float32, len(raw))
		total := 0.0
		for i, b := range raw {
			weights[i] = float32(b%17) + 1
			total += float64(weights[i])
		}
		tab, err := NewAliasTable(weights)
		if err != nil {
			return false
		}
		r := rng.New(seed)
		const draws = 30000
		counts := make([]int, len(weights))
		for i := 0; i < draws; i++ {
			counts[tab.Draw(r)]++
		}
		for i, c := range counts {
			want := float64(weights[i]) / total
			got := float64(c) / draws
			if math.Abs(got-want) > 0.03 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformSampler(t *testing.T) {
	g := graph.SmallTestGraph()
	r := rng.New(3)
	const draws = 60000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		res := Uniform{}.Sample(g, Context{Cur: 0}, r)
		if res.Probes != 1 {
			t.Fatal("uniform sampler should cost one probe")
		}
		counts[res.Index]++
	}
	probs := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if c := chi2(counts, probs, draws); c > chi2Critical999[2] {
		t.Fatalf("uniform distribution off: chi2=%v counts=%v", c, counts)
	}
}

func TestAliasSamplerMatchesWeights(t *testing.T) {
	g := graph.SmallTestGraph()
	g.AttachWeights()
	s, err := NewAliasSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	if s.RPEntryBits() != 256 {
		t.Fatalf("RPEntryBits = %d, want 256", s.RPEntryBits())
	}
	cur := graph.VertexID(0)
	ws := g.NeighborWeights(cur)
	total := 0.0
	for _, w := range ws {
		total += float64(w)
	}
	probs := make([]float64, len(ws))
	for i, w := range ws {
		probs[i] = float64(w) / total
	}
	r := rng.New(4)
	const draws = 100000
	counts := make([]int, len(ws))
	for i := 0; i < draws; i++ {
		counts[s.Sample(g, Context{Cur: cur}, r).Index]++
	}
	if c := chi2(counts, probs, draws); c > chi2Critical999[len(ws)-1] {
		t.Fatalf("alias sampler off: chi2=%v counts=%v probs=%v", c, counts, probs)
	}
}

func TestAliasSamplerRequiresWeights(t *testing.T) {
	if _, err := NewAliasSampler(graph.SmallTestGraph()); err == nil {
		t.Fatal("unweighted graph accepted")
	}
}

// exactNode2VecProbs enumerates the exact node2vec transition distribution
// from cur given prev on an optionally weighted graph.
func exactNode2VecProbs(g *graph.CSR, prev, cur graph.VertexID, p, q float64) []float64 {
	ns := g.Neighbors(cur)
	var ws []float32
	if g.Weighted() {
		ws = g.NeighborWeights(cur)
	}
	probs := make([]float64, len(ns))
	total := 0.0
	for i, v := range ns {
		w := 1.0
		if ws != nil {
			w = float64(ws[i])
		}
		w *= node2vecBias(g, nil, prev, v, p, q)
		probs[i] = w
		total += w
	}
	for i := range probs {
		probs[i] /= total
	}
	return probs
}

func TestRejectionMatchesExactNode2Vec(t *testing.T) {
	g := graph.SmallTestGraph()
	s, err := NewRejection(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Walk arrived at 4 from 0; neighbors of 4 are {0,1,3}.
	ctx := Context{Cur: 4, Prev: 0, HasPrev: true}
	probs := exactNode2VecProbs(g, 0, 4, 2, 0.5)
	r := rng.New(5)
	const draws = 120000
	counts := make([]int, len(probs))
	probesTotal := 0
	for i := 0; i < draws; i++ {
		res := s.Sample(g, ctx, r)
		counts[res.Index]++
		probesTotal += res.Probes
	}
	if c := chi2(counts, probs, draws); c > chi2Critical999[len(probs)-1] {
		t.Fatalf("rejection sampler off: chi2=%v counts=%v probs=%v", c, counts, probs)
	}
	if probesTotal <= draws {
		t.Fatal("rejection sampler reported impossible probe counts")
	}
}

func TestRejectionFirstHopUniform(t *testing.T) {
	g := graph.SmallTestGraph()
	s, _ := NewRejection(2, 0.5)
	r := rng.New(6)
	const draws = 60000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[s.Sample(g, Context{Cur: 0}, r).Index]++
	}
	probs := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	if c := chi2(counts, probs, draws); c > chi2Critical999[2] {
		t.Fatalf("first hop not uniform: chi2=%v", c)
	}
}

func TestRejectionRejectsBadParams(t *testing.T) {
	if _, err := NewRejection(0, 1); err == nil {
		t.Error("p=0 accepted")
	}
	if _, err := NewRejection(1, -1); err == nil {
		t.Error("q<0 accepted")
	}
}

func TestReservoirMatchesExactWeightedNode2Vec(t *testing.T) {
	g := graph.SmallTestGraph()
	g.AttachWeights()
	s, err := NewReservoir(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx := Context{Cur: 4, Prev: 0, HasPrev: true}
	probs := exactNode2VecProbs(g, 0, 4, 2, 0.5)
	r := rng.New(7)
	const draws = 120000
	counts := make([]int, len(probs))
	for i := 0; i < draws; i++ {
		res := s.Sample(g, ctx, r)
		if res.Probes != len(probs) {
			t.Fatalf("reservoir probes = %d, want degree %d", res.Probes, len(probs))
		}
		counts[res.Index]++
	}
	if c := chi2(counts, probs, draws); c > chi2Critical999[len(probs)-1] {
		t.Fatalf("reservoir sampler off: chi2=%v counts=%v probs=%v", c, counts, probs)
	}
}

func TestReservoirPlainWeighted(t *testing.T) {
	// p=q=1 with no prev reduces to plain weight-proportional selection.
	g := graph.SmallTestGraph()
	g.AttachWeights()
	s, _ := NewReservoir(1, 1)
	cur := graph.VertexID(1)
	ws := g.NeighborWeights(cur)
	total := 0.0
	for _, w := range ws {
		total += float64(w)
	}
	probs := make([]float64, len(ws))
	for i, w := range ws {
		probs[i] = float64(w) / total
	}
	r := rng.New(8)
	const draws = 100000
	counts := make([]int, len(ws))
	for i := 0; i < draws; i++ {
		counts[s.Sample(g, Context{Cur: cur}, r).Index]++
	}
	if c := chi2(counts, probs, draws); c > chi2Critical999[len(ws)-1] {
		t.Fatalf("weighted reservoir off: chi2=%v counts=%v", c, counts)
	}
}

func TestMetaPathOnlyMatchingLabels(t *testing.T) {
	g := graph.SmallTestGraph()
	g.AttachLabels(2)
	s, err := NewMetaPath([]uint8{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	for step := 0; step < 2; step++ {
		want := s.Schema[(step+1)%2]
		for i := 0; i < 2000; i++ {
			res := s.Sample(g, Context{Cur: 0, Step: step}, r)
			if res.Index < 0 {
				continue
			}
			chosen := g.Neighbors(0)[res.Index]
			if g.Label(chosen) != want {
				t.Fatalf("step %d chose label %d, want %d", step, g.Label(chosen), want)
			}
		}
	}
}

func TestMetaPathNoMatchTerminates(t *testing.T) {
	g := graph.SmallTestGraph()
	// All labels 0; schema demands type 5, which nothing has.
	g.Labels = make([]uint8, g.NumVertices)
	s, _ := NewMetaPath([]uint8{0, 5})
	r := rng.New(10)
	res := s.Sample(g, Context{Cur: 0, Step: 0}, r)
	if res.Index != -1 {
		t.Fatalf("expected no selectable neighbor, got index %d", res.Index)
	}
}

func TestMetaPathRejectsEmptySchema(t *testing.T) {
	if _, err := NewMetaPath(nil); err == nil {
		t.Fatal("empty schema accepted")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindUniform: "uniform", KindAlias: "alias", KindRejection: "rejection",
		KindReservoir: "reservoir", KindMetaPath: "metapath-reservoir",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	ws := make([]float32, 64)
	for i := range ws {
		ws[i] = float32(i + 1)
	}
	tab, _ := NewAliasTable(ws)
	r := rng.New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += tab.Draw(r)
	}
	_ = sink
}

func BenchmarkReservoirSample(b *testing.B) {
	g, err := graph.GenerateRMAT(graph.Balanced(12, 8, 3))
	if err != nil {
		b.Fatal(err)
	}
	g.AttachWeights()
	s, _ := NewReservoir(2, 0.5)
	r := rng.New(1)
	ctx := Context{Cur: 1, Prev: 0, HasPrev: true}
	if g.Degree(1) == 0 {
		b.Skip("vertex 1 has no neighbors in this draw")
	}
	for i := 0; i < b.N; i++ {
		s.Sample(g, ctx, r)
	}
}
