package sampling

import (
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// stagedTestGraph builds a weighted, labeled graph with skewed degrees,
// self-loops, and sinks, so every sampler sees realistic rows.
func stagedTestGraph(t *testing.T) *graph.CSR {
	t.Helper()
	const n = 300
	r := rng.New(5)
	var edges []graph.Edge
	for i := 0; i < 8*n; i++ {
		src := graph.VertexID(r.Intn(n))
		dst := graph.VertexID(r.Intn(n))
		if src < 20 {
			continue // sinks
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	for v := 30; v < n; v += 11 {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v)})
	}
	g, err := graph.Build(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	g.AttachLabels(3)
	return g
}

// stagedContexts generates valid sampling contexts (Cur with out-degree >
// 0, Prev an actual predecessor when HasPrev) by walking real edges.
func stagedContexts(g *graph.CSR, n int, seed uint64) []Context {
	r := rng.New(seed)
	var out []Context
	for len(out) < n {
		cur := graph.VertexID(r.Intn(g.NumVertices))
		if g.Degree(cur) == 0 {
			continue
		}
		ctx := Context{Cur: cur, Step: r.Intn(10)}
		ns := g.Neighbors(cur)
		next := ns[r.Intn(len(ns))]
		if g.Degree(next) > 0 {
			// A second-order context one hop later.
			out = append(out, Context{Cur: next, Prev: cur, HasPrev: true, Step: r.Intn(10)})
		}
		out = append(out, ctx)
	}
	return out[:n]
}

// runInterrupted drives the Propose/Accept protocol the way a pipelined
// engine does: the Candidate is parked between iterations (here in a local,
// in the engine in a cohort lane) and the decision re-enters with it.
func runInterrupted(s StagedSampler, g *graph.CSR, ctx Context, r *rng.Stream) (Result, int) {
	var parked Candidate
	passes := 0
	for {
		passes++
		parked = s.Propose(g, ctx, parked, r)
		if parked.Final || s.Accept(g, ctx, parked, r) {
			return Result{Index: parked.Index, Probes: parked.Probes}, passes
		}
	}
}

// testSamplers returns every Table-I sampler over g.
func testSamplers(t *testing.T, g *graph.CSR) map[string]StagedSampler {
	t.Helper()
	alias, err := NewAliasSampler(g)
	if err != nil {
		t.Fatal(err)
	}
	rej, err := NewRejection(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewReservoir(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := NewMetaPath([]uint8{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]StagedSampler{
		"uniform":   Uniform{},
		"alias":     alias,
		"rejection": rej,
		"reservoir": res,
		"metapath":  mp,
	}
}

// TestStagedMatchesSample pins the staged protocol's contract: for every
// sampler and context, the interrupted Propose/Accept protocol must return
// the same Result as Sample AND leave the RNG stream in the same position
// (checked by comparing subsequent raw draws). Identical stream positions
// are what make pipelined engines byte-identical to the inline engines.
func TestStagedMatchesSample(t *testing.T) {
	g := stagedTestGraph(t)
	ctxs := stagedContexts(g, 500, 23)
	for name, s := range testSamplers(t, g) {
		t.Run(name, func(t *testing.T) {
			for i, ctx := range ctxs {
				seed := uint64(i)*1000003 + 7
				a := rng.New(seed)
				b := rng.New(seed)
				want := s.Sample(g, ctx, a)
				got, _ := runInterrupted(s, g, ctx, b)
				if got != want {
					t.Fatalf("ctx %d %+v: staged %+v, want %+v", i, ctx, got, want)
				}
				for d := 0; d < 4; d++ {
					if x, y := a.Uint64(), b.Uint64(); x != y {
						t.Fatalf("ctx %d: stream diverged after decision (draw %d: %x vs %x)", i, d, x, y)
					}
				}
			}
		})
	}
}

// TestRejectionReentry pins that the rejection sampler actually spans
// passes (some decision takes > 1 pass on a biased graph) and that the
// MaxTrips bound holds under re-entry: no decision may exceed MaxTrips
// passes, and the final pass accepts unconditionally.
func TestRejectionReentry(t *testing.T) {
	g := stagedTestGraph(t)
	// Extreme p pushes the acceptance envelope down so rejections happen.
	rej, err := NewRejection(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rej.MaxTrips = 5
	ctxs := stagedContexts(g, 800, 41)
	r := rng.New(9)
	multi, capped := false, true
	for _, ctx := range ctxs {
		_, passes := runInterrupted(rej, g, ctx, r)
		if passes > 1 {
			multi = true
		}
		if passes > rej.MaxTrips {
			capped = false
		}
	}
	if !multi {
		t.Fatal("no decision required re-entry; rejection pressure test is vacuous")
	}
	if !capped {
		t.Fatalf("a decision exceeded MaxTrips=%d passes", rej.MaxTrips)
	}
}

// TestStagedFirstHopShortcut pins the unbiased first hop: without a
// previous vertex the rejection sampler's proposal must be final after a
// single uniform draw.
func TestStagedFirstHopShortcut(t *testing.T) {
	g := stagedTestGraph(t)
	rej, err := NewRejection(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for _, ctx := range stagedContexts(g, 200, 77) {
		if ctx.HasPrev {
			continue
		}
		c := rej.Propose(g, ctx, Candidate{}, r)
		if !c.Final || c.Probes != 1 {
			t.Fatalf("first-hop proposal %+v, want final single probe", c)
		}
	}
}

// TestAsStaged pins that every built-in sampler is staged.
func TestAsStaged(t *testing.T) {
	g := stagedTestGraph(t)
	for name, s := range testSamplers(t, g) {
		if _, ok := AsStaged(Sampler(s)); !ok {
			t.Fatalf("%s sampler is not staged", name)
		}
	}
}
