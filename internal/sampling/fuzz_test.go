package sampling

import (
	"encoding/binary"
	"math"
	"testing"

	"ridgewalker/internal/rng"
)

// FuzzAliasTableWeights feeds arbitrary float32 weight vectors (decoded
// from the raw fuzz bytes, so NaN, ±Inf, subnormals, and negative zero
// all appear) through the alias construction. The invariant: either
// construction rejects the vector, or the resulting table is well-formed
// — finite probabilities, in-range alias targets, and in-range draws.
// Construction must accept exactly the vectors whose weights are all
// finite and > 0.
func FuzzAliasTableWeights(f *testing.F) {
	add := func(ws ...float32) {
		buf := make([]byte, 4*len(ws))
		for i, w := range ws {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(w))
		}
		f.Add(buf)
	}
	add(1, 2, 3)
	add(float32(math.Inf(1)))
	add(1, float32(math.Inf(1)), 2)
	add(float32(math.NaN()), 1)
	add(0, 1)
	add(-1, 5)
	add(math.SmallestNonzeroFloat32, math.MaxFloat32)
	add(1e-30, 1e30, 1e-30)
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 4
		if n == 0 || n > 1<<12 {
			return
		}
		ws := make([]float32, n)
		allValid := true
		for i := range ws {
			ws[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4*i:]))
			if !(ws[i] > 0) || math.IsInf(float64(ws[i]), 1) {
				allValid = false
			}
		}
		tab, err := NewAliasTable(ws)
		if err != nil {
			if allValid {
				t.Fatalf("all-valid weights rejected: %v (%v)", err, ws)
			}
			return
		}
		if !allValid {
			t.Fatalf("invalid weights accepted: %v", ws)
		}
		for i := 0; i < n; i++ {
			p := tab.prob[i]
			if math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("prob[%d]=%v not finite for weights %v", i, p, ws)
			}
			if a := tab.alias[i]; a < 0 || int(a) >= n {
				t.Fatalf("alias[%d]=%d out of range [0,%d)", i, a, n)
			}
		}
		r := rng.New(uint64(n))
		for i := 0; i < 64; i++ {
			if d := tab.Draw(r); d < 0 || d >= n {
				t.Fatalf("draw %d out of range [0,%d)", d, n)
			}
		}
	})
}
