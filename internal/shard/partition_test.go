package shard

import (
	"testing"

	"ridgewalker/internal/graph"
)

func partitionTestGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.Graph500(10, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPartitionCoversGraph(t *testing.T) {
	g := partitionTestGraph(t)
	for _, k := range []int{1, 2, 3, 4, 7, 16} {
		p, err := Partition(g, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.K != k || len(p.Shards) != k {
			t.Fatalf("k=%d: got %d shards", k, len(p.Shards))
		}
		var vertices int
		var edges int64
		prev := graph.VertexID(0)
		for i, s := range p.Shards {
			if s.ID != i {
				t.Fatalf("k=%d: shard %d has ID %d", k, i, s.ID)
			}
			if s.Lo != prev {
				t.Fatalf("k=%d: shard %d starts at %d, want %d (contiguous cover)", k, i, s.Lo, prev)
			}
			if s.Hi <= s.Lo {
				t.Fatalf("k=%d: shard %d empty range [%d,%d)", k, i, s.Lo, s.Hi)
			}
			prev = s.Hi
			vertices += s.NumVertices()
			edges += s.NumEdges()
			if s.Internal+s.External != s.NumEdges() {
				t.Fatalf("k=%d: shard %d internal %d + external %d != edges %d",
					k, i, s.Internal, s.External, s.NumEdges())
			}
			var degSum int64
			for lv := 0; lv < s.NumVertices(); lv++ {
				degSum += int64(s.Degree(graph.VertexID(lv)))
			}
			if degSum != s.NumEdges() {
				t.Fatalf("k=%d: shard %d degrees sum to %d, want %d edges", k, i, degSum, s.NumEdges())
			}
		}
		if prev != graph.VertexID(g.NumVertices) {
			t.Fatalf("k=%d: shards end at %d, want %d", k, prev, g.NumVertices)
		}
		if vertices != g.NumVertices || edges != g.NumEdges() {
			t.Fatalf("k=%d: shards cover %d vertices / %d edges, want %d / %d",
				k, vertices, edges, g.NumVertices, g.NumEdges())
		}
	}
}

// TestPartitionShardViewMatchesGraph asserts every shard's local CSR view
// reproduces the global graph's rows exactly — degrees, neighbor lists,
// and weights.
func TestPartitionShardViewMatchesGraph(t *testing.T) {
	g := partitionTestGraph(t)
	g.AttachWeights()
	p, err := Partition(g, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range p.Shards {
		for v := s.Lo; v < s.Hi; v++ {
			lv, ok := s.Local(v)
			if !ok {
				t.Fatalf("shard %d does not own %d despite range", s.ID, v)
			}
			if s.Global(lv) != v {
				t.Fatalf("shard %d: Global(Local(%d)) = %d", s.ID, v, s.Global(lv))
			}
			if s.Degree(lv) != g.Degree(v) {
				t.Fatalf("shard %d: degree(%d) = %d, want %d", s.ID, v, s.Degree(lv), g.Degree(v))
			}
			ns, gns := s.Neighbors(lv), g.Neighbors(v)
			for i := range gns {
				if ns[i] != gns[i] {
					t.Fatalf("shard %d: neighbors(%d) diverge at %d", s.ID, v, i)
				}
			}
			ws, gws := s.NeighborWeights(lv), g.NeighborWeights(v)
			for i := range gws {
				if ws[i] != gws[i] {
					t.Fatalf("shard %d: weights(%d) diverge at %d", s.ID, v, i)
				}
			}
		}
	}
}

// TestPartitionOwnerAndCut brute-forces ownership and the edge cut.
func TestPartitionOwnerAndCut(t *testing.T) {
	g := partitionTestGraph(t)
	for _, k := range []int{1, 2, 4, 7} {
		p, err := Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.NumVertices; v++ {
			o := p.Owner(graph.VertexID(v))
			if o < 0 || o >= k || !p.Shards[o].Owns(graph.VertexID(v)) {
				t.Fatalf("k=%d: Owner(%d) = %d does not own the vertex", k, v, o)
			}
		}
		var cut int64
		for v := 0; v < g.NumVertices; v++ {
			o := p.Owner(graph.VertexID(v))
			for _, dst := range g.Neighbors(graph.VertexID(v)) {
				if p.Owner(dst) != o {
					cut++
				}
			}
		}
		if cut != p.CutEdges {
			t.Fatalf("k=%d: CutEdges %d, brute force %d", k, p.CutEdges, cut)
		}
		if k == 1 {
			if p.CutEdges != 0 || p.CutFraction() != 0 {
				t.Fatalf("k=1 must have an empty cut, got %d", p.CutEdges)
			}
		} else if p.CutFraction() <= 0 || p.CutFraction() >= 1 {
			t.Fatalf("k=%d: implausible cut fraction %v", k, p.CutFraction())
		}
	}
}

// TestPartitionEdgeBalance checks the greedy sweep lands within a loose
// balance envelope: no shard may exceed twice its fair edge share plus the
// largest single row (a hub vertex is indivisible).
func TestPartitionEdgeBalance(t *testing.T) {
	g := partitionTestGraph(t)
	for _, k := range []int{2, 4, 8} {
		p, err := Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		fair := g.NumEdges() / int64(k)
		limit := 2*fair + int64(g.MaxDegree())
		for _, s := range p.Shards {
			if s.NumEdges() > limit {
				t.Fatalf("k=%d: shard %d has %d edges, limit %d (fair %d)",
					k, s.ID, s.NumEdges(), limit, fair)
			}
		}
	}
}

func TestPartitionRejectsBadCounts(t *testing.T) {
	g := partitionTestGraph(t)
	if _, err := Partition(g, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Partition(g, -3); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := Partition(g, g.NumVertices+1); err == nil {
		t.Fatal("k > vertices accepted")
	}
	if _, err := Partition(g, g.NumVertices); err != nil {
		t.Fatalf("k == vertices rejected: %v", err)
	}
}

// TestPartitionEmptyGraph pins parity with the rest of the repository:
// the 0-vertex graph (Validate and ReadBinary both accept it) partitions
// into a single empty shard.
func TestPartitionEmptyGraph(t *testing.T) {
	g, err := graph.Build(0, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != 1 || p.Shards[0].NumVertices() != 0 || p.Shards[0].NumEdges() != 0 {
		t.Fatalf("empty graph partition: %+v", p.Shards[0])
	}
	if _, err := Partition(g, 2); err == nil {
		t.Fatal("k=2 on empty graph accepted")
	}
}
