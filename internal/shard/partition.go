// Package shard partitions a CSR graph into edge-balanced shards and
// executes graph random walks across them: each shard owns a worker
// goroutine pool that advances only walkers standing on its own vertices,
// and walkers migrate between shards through fixed-capacity SPSC rings —
// one flat record copy per hand-off, no boxing, no allocation — when a
// hop crosses a partition boundary.
//
// This is the software analogue of RidgeWalker's per-channel task routing:
// the accelerator keeps many walkers in flight by pinning each memory
// channel to a slice of the graph and steering tasks to the channel that
// owns their current vertex; here each shard plays the channel's role, so
// the rows a worker touches concentrate in one partition's working set
// instead of striding across the whole CSR. ThunderRW's step-interleaved
// partition execution and FlexiWalker's cross-partition adaptation follow
// the same shape in software.
//
// Determinism is preserved end to end: every walker carries its own
// query-keyed RNG stream and resumable walk.State, so the trajectory of a
// walk depends only on (seed, query ID, start vertex) — never on which
// shard advanced it or in what order migrations were delivered. The
// "cpu-sharded" execution backend built on this package is byte-identical
// to the "cpu" backend for the same seed.
package shard

import (
	"fmt"
	"sort"

	"ridgewalker/internal/graph"
)

// Shard is one partition of the graph: a CSR-shaped view of the contiguous
// global vertex range [Lo, Hi) it owns, read through local vertex ids
// 0..NumVertices()-1. Every array aliases the parent graph's storage —
// building a shard copies nothing — and Col keeps global destination ids:
// a neighbor may live in any shard, which is exactly what walker
// migration handles.
type Shard struct {
	// ID is the shard's index within the Partitioning.
	ID int
	// Lo, Hi bound the owned global vertex range [Lo, Hi).
	Lo, Hi graph.VertexID
	// Col holds the owned rows' neighbor lists with global vertex ids; it
	// aliases the parent graph's storage.
	Col []graph.VertexID
	// Weights parallels Col when the parent graph is weighted; nil
	// otherwise. It aliases the parent graph's storage.
	Weights []float32
	// Internal counts owned edges whose destination is also owned;
	// External counts owned edges that cross into another shard (the
	// edge-cut contribution of this shard).
	Internal, External int64

	// rowPtr aliases the parent graph's row-pointer entries for [Lo, Hi];
	// base rebases its offsets into Col/Weights.
	rowPtr []int64
	base   int64
}

// NumVertices returns the number of owned vertices.
func (s *Shard) NumVertices() int { return int(s.Hi - s.Lo) }

// NumEdges returns the number of owned directed edges.
func (s *Shard) NumEdges() int64 { return int64(len(s.Col)) }

// Owns reports whether global vertex v belongs to this shard.
func (s *Shard) Owns(v graph.VertexID) bool { return v >= s.Lo && v < s.Hi }

// Local maps a global vertex id to the shard-local id, reporting false for
// vertices owned by other shards.
func (s *Shard) Local(v graph.VertexID) (graph.VertexID, bool) {
	if !s.Owns(v) {
		return 0, false
	}
	return v - s.Lo, true
}

// Global maps a shard-local vertex id back to the global id.
func (s *Shard) Global(lv graph.VertexID) graph.VertexID { return lv + s.Lo }

// Degree returns the out-degree of the shard-local vertex lv.
func (s *Shard) Degree(lv graph.VertexID) int {
	return int(s.rowPtr[lv+1] - s.rowPtr[lv])
}

// Neighbors returns the neighbor list (global ids) of the shard-local
// vertex lv. The slice aliases graph storage and must not be modified.
func (s *Shard) Neighbors(lv graph.VertexID) []graph.VertexID {
	return s.Col[s.rowPtr[lv]-s.base : s.rowPtr[lv+1]-s.base]
}

// NeighborWeights returns the edge weights parallel to Neighbors(lv), or
// nil for unweighted graphs. The slice aliases graph storage.
func (s *Shard) NeighborWeights(lv graph.VertexID) []float32 {
	if s.Weights == nil {
		return nil
	}
	return s.Weights[s.rowPtr[lv]-s.base : s.rowPtr[lv+1]-s.base]
}

// Partitioning is an edge-balanced, contiguous-range edge-cut partition of
// a graph into K shards.
type Partitioning struct {
	// K is the shard count.
	K int
	// Shards holds the per-shard CSR views, ordered by vertex range.
	Shards []*Shard
	// CutEdges counts directed edges whose endpoints land in different
	// shards.
	CutEdges int64
	// TotalEdges is the graph's directed edge count.
	TotalEdges int64

	// ResidentHubs counts vertices marked memory-resident (see Resident).
	ResidentHubs int
	// ResidentBytes is the total neighbor-list footprint of resident rows.
	ResidentBytes int64

	// bounds[s]..bounds[s+1] is shard s's vertex range (len K+1).
	bounds []graph.VertexID
	// resident is a bitset over vertices whose rows are hot enough to be
	// cache-resident on every core (see Resident).
	resident []uint64
}

// Partition splits g into k shards of near-equal edge count over
// contiguous vertex ranges — the cheapest edge-cut heuristic that keeps
// the global→local map O(1) and lets every shard's rows alias the parent
// CSR. Generators in this repository (RMAT, dataset twins) emit
// locality-heavy id orders, so contiguous ranges also keep the cut
// fraction low without a k-way min-cut pass.
//
// k must satisfy 1 <= k <= g.NumVertices; every shard owns at least one
// vertex. The degenerate empty graph (0 vertices, accepted everywhere
// else in the repository) partitions into a single empty shard at k = 1.
func Partition(g *graph.CSR, k int) (*Partitioning, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: partition count %d, want >= 1", k)
	}
	if k > g.NumVertices && !(k == 1 && g.NumVertices == 0) {
		return nil, fmt.Errorf("shard: partition count %d exceeds %d vertices", k, g.NumVertices)
	}
	n := g.NumVertices
	total := g.NumEdges()
	bounds := make([]graph.VertexID, k+1)
	bounds[k] = graph.VertexID(n)
	// Greedy sweep: close shard s at the first vertex where the cumulative
	// edge count reaches s/k of the total, clamped so every remaining shard
	// still gets at least one vertex.
	v := 0
	for s := 1; s < k; s++ {
		targetEdges := total * int64(s) / int64(k)
		for v < n && g.RowPtr[v] < targetEdges {
			v++
		}
		lo := int(bounds[s-1]) + 1 // at least one vertex in shard s-1
		hi := n - (k - s)          // at least one vertex per remaining shard
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		bounds[s] = graph.VertexID(v)
	}
	p := &Partitioning{
		K:          k,
		Shards:     make([]*Shard, k),
		TotalEdges: total,
		bounds:     bounds,
	}
	for s := 0; s < k; s++ {
		lo, hi := bounds[s], bounds[s+1]
		sh := &Shard{
			ID:     s,
			Lo:     lo,
			Hi:     hi,
			Col:    g.Col[g.RowPtr[lo]:g.RowPtr[hi]],
			rowPtr: g.RowPtr[lo : int64(hi)+1],
			base:   g.RowPtr[lo],
		}
		if g.Weights != nil {
			sh.Weights = g.Weights[g.RowPtr[lo]:g.RowPtr[hi]]
		}
		for _, dst := range sh.Col {
			if sh.Owns(dst) {
				sh.Internal++
			} else {
				sh.External++
			}
		}
		p.CutEdges += sh.External
		p.Shards[s] = sh
	}
	p.markResidentHubs(g)
	return p, nil
}

// residentHubBudget bounds the neighbor-list bytes marked resident (the
// working set assumed to stay in shared cache regardless of shard).
const residentHubBudget = 4 << 20

// markResidentHubs flags hub vertices as memory-resident. Power-law walks
// concentrate their hops on a handful of high-degree vertices; those rows
// stay in the last-level cache no matter which shard's worker touches
// them, so a walker stepping onto a hub gains nothing from migrating —
// FlexiWalker's partition-adaptation insight. Only vertices with at least
// 4× the average degree qualify (uniform-degree graphs mark none), taken
// in descending degree order until the row-byte budget is spent.
func (p *Partitioning) markResidentHubs(g *graph.CSR) {
	if p.K == 1 || g.NumVertices == 0 || g.NumEdges() == 0 {
		return
	}
	threshold := 4 * int(g.NumEdges()/int64(g.NumVertices))
	if threshold < 4 {
		threshold = 4
	}
	type hub struct {
		v   graph.VertexID
		deg int
	}
	var hubs []hub
	for v := 0; v < g.NumVertices; v++ {
		if d := g.Degree(graph.VertexID(v)); d >= threshold {
			hubs = append(hubs, hub{graph.VertexID(v), d})
		}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].deg > hubs[j].deg })
	p.resident = make([]uint64, (g.NumVertices+63)/64)
	for _, h := range hubs {
		bytes := int64(h.deg) * 4 // Col entries
		if p.ResidentBytes+bytes > residentHubBudget {
			break
		}
		p.resident[h.v/64] |= 1 << (h.v % 64)
		p.ResidentBytes += bytes
		p.ResidentHubs++
	}
}

// Resident reports whether v's row is treated as cache-resident on every
// shard: walkers standing on a resident vertex are advanced in place by
// whichever shard holds them instead of migrating.
func (p *Partitioning) Resident(v graph.VertexID) bool {
	if p.resident == nil {
		return false
	}
	return p.resident[v/64]&(1<<(v%64)) != 0
}

// Owner returns the shard index owning global vertex v. Bounds are a
// handful of entries, so the binary search stays in cache on the hot path.
func (p *Partitioning) Owner(v graph.VertexID) int {
	// sort.Search over bounds[1..K]: the first upper bound exceeding v.
	return sort.Search(p.K-1, func(s int) bool { return v < p.bounds[s+1] })
}

// CutFraction returns the edge-cut ratio CutEdges/TotalEdges (0 for an
// edgeless graph).
func (p *Partitioning) CutFraction() float64 {
	if p.TotalEdges == 0 {
		return 0
	}
	return float64(p.CutEdges) / float64(p.TotalEdges)
}

// String summarizes the partitioning for logs and CLI output.
func (p *Partitioning) String() string {
	return fmt.Sprintf("shard.Partitioning{k=%d cut=%.1f%% edges=%d}",
		p.K, 100*p.CutFraction(), p.TotalEdges)
}
