package shard

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

// EngineConfig sizes a sharded execution engine.
type EngineConfig struct {
	// Workers is the total worker budget across all shards; each shard's
	// pool gets max(1, Workers/K) goroutines, so the actual total is at
	// least K. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// MigrateBatch is the walker hand-off batch size: a worker accumulates
	// walkers bound for the same destination shard and delivers them as one
	// mailbox message, so migration costs one channel send per batch
	// instead of per step. 0 means 64.
	MigrateBatch int
	// MaxInflight caps the walkers concurrently in flight across all
	// shards. It bounds the per-run state pool (each walker owns a path
	// buffer and RNG stream) and sizes every mailbox so hand-off sends can
	// never block — the structural property that makes the migration mesh
	// deadlock-free. 0 means 4096.
	MaxInflight int
	// Cohort switches the per-shard workers from depth-first advancement
	// to the step-interleaved cohort pipeline (walk.Cohort): each worker
	// batches up to Cohort resident walkers and runs the Gather/Sample/Move
	// stages over all of them per pass, so row fetches overlap sampling
	// across walkers. Walkers still migrate on boundary crossings with
	// identical trajectories. 0 keeps depth-first advancement.
	Cohort int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MigrateBatch == 0 {
		c.MigrateBatch = 64
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 4096
	}
	return c
}

// RunStats reports one Run's migration traffic.
type RunStats struct {
	// Migrations counts cross-shard walker hand-offs (one walker crossing
	// one partition boundary).
	Migrations int64
	// HandoffBatches counts mailbox messages delivered; Migrations divided
	// by HandoffBatches is the realized migration batching factor.
	HandoffBatches int64
}

// EmitFunc receives one finished walk: the query's position in the input
// batch, the query itself, the visited path (including the start vertex),
// and the hop count. The path aliases a recycled walker buffer and is
// valid only during the call. Emits may arrive concurrently from
// different shard workers; callers needing serialized delivery must lock.
type EmitFunc func(index int, q walk.Query, path []graph.VertexID, steps int64) error

// Engine executes walk batches over a partitioned graph. Each shard owns
// a worker pool that advances only walkers currently standing on its
// vertices; when a hop crosses a partition boundary the walker — its
// resumable walk.State, path buffer, and RNG stream — is staged and
// handed to the owning shard's mailbox in batches.
//
// Sampling always reads the global CSR, not the per-shard views:
// second-order samplers touch rows outside the current shard (Node2Vec's
// HasEdge check against the previous vertex, MetaPath's labels of
// cross-shard neighbors), so shard-local row storage cannot serve them.
// The engine's locality comes from grouping walkers by owning shard —
// each worker's accesses concentrate in its partition's slice of the
// global arrays; the Shard CSR views serve partition statistics and
// tooling.
//
// Results are byte-identical to the unsharded engines for the same seed:
// a walker's RNG stream is keyed by its query ID exactly as walk.Run's,
// and its state travels with it, so the trajectory never depends on shard
// count, worker interleaving, or migration order.
//
// An Engine holds only immutable workload state (graph, partitioning,
// sampler); Run calls are independent and safe to issue concurrently.
type Engine struct {
	g       *graph.CSR
	part    *Partitioning
	wcfg    walk.Config
	sampler sampling.Sampler
	src     *rng.Source
	cfg     EngineConfig
}

// NewEngine binds a partitioned graph and a walk configuration,
// constructing the sampler once.
func NewEngine(g *graph.CSR, p *Partitioning, wcfg walk.Config, cfg EngineConfig) (*Engine, error) {
	if p == nil || len(p.Shards) == 0 {
		return nil, fmt.Errorf("shard: engine needs a non-empty partitioning")
	}
	if cfg.Cohort < 0 {
		return nil, fmt.Errorf("shard: cohort %d, want >= 0", cfg.Cohort)
	}
	sampler, err := walk.BuildSampler(g, wcfg)
	if err != nil {
		return nil, err
	}
	if cfg.Cohort > 0 {
		if _, ok := sampling.AsStaged(sampler); !ok {
			return nil, fmt.Errorf("shard: sampler %T is not stage-resumable; cohort stepping unavailable", sampler)
		}
	}
	return &Engine{
		g:       g,
		part:    p,
		wcfg:    wcfg,
		sampler: sampler,
		src:     rng.NewSource(wcfg.Seed),
		cfg:     cfg.withDefaults(),
	}, nil
}

// Partitioning returns the engine's graph partitioning.
func (e *Engine) Partitioning() *Partitioning { return e.part }

// WorkersPerShard returns the per-shard pool size.
func (e *Engine) WorkersPerShard() int {
	w := e.cfg.Workers / e.part.K
	if w < 1 {
		w = 1
	}
	return w
}

// walker is one in-flight walk: resumable state, a reused path buffer
// (inside st), the query-keyed RNG stream, and the batch slot to report
// into. Walkers are recycled through the run's free list.
type walker struct {
	q   walk.Query
	idx int
	st  walk.State
	r   rng.Stream
}

// run is the per-Run execution state.
type run struct {
	eng *Engine
	fn  EmitFunc

	// mail[s] delivers walker batches to shard s. Capacity MaxInflight
	// batches: every in-flight walker sits in at most one batch, so sends
	// can never block and the migration mesh cannot deadlock.
	mail []chan []*walker
	// free recycles walker state; it bounds walkers in flight.
	free chan *walker

	remaining atomic.Int64
	doneCh    chan struct{} // closed when remaining hits 0
	abortCh   chan struct{} // closed on first error / cancellation
	abortOnce sync.Once
	err       error

	migrations atomic.Int64
	handoffs   atomic.Int64
	wg         sync.WaitGroup
}

func (r *run) fail(err error) {
	r.abortOnce.Do(func() {
		r.err = err
		close(r.abortCh)
	})
}

// aborted reports whether the run has failed (cheap enough for per-walker
// polling).
func (r *run) aborted() bool {
	select {
	case <-r.abortCh:
		return true
	default:
		return false
	}
}

// send delivers a staged batch to a shard mailbox. Capacity sizing makes
// this non-blocking; the default case documents (and surfaces) a sizing
// bug instead of deadlocking.
func (r *run) send(dst int, batch []*walker) {
	r.handoffs.Add(1)
	select {
	case r.mail[dst] <- batch:
	default:
		r.fail(fmt.Errorf("shard: mailbox %d overflow (%d walkers): inflight sizing bug", dst, len(batch)))
	}
}

// stageWalker queues w for shard dst, flushing the destination's staging
// buffer when it reaches the migration batch size.
func (r *run) stageWalker(stage [][]*walker, dst int, w *walker) {
	s := stage[dst]
	if s == nil {
		s = make([]*walker, 0, r.eng.cfg.MigrateBatch)
	}
	s = append(s, w)
	if len(s) >= r.eng.cfg.MigrateBatch {
		r.send(dst, s)
		s = nil
	}
	stage[dst] = s
}

// flushStages delivers every partial staging batch. Workers call it after
// each inbound batch and the injector before blocking, so no walker ever
// waits in a staging buffer while its holder sleeps.
func (r *run) flushStages(stage [][]*walker) {
	for dst, s := range stage {
		if len(s) > 0 {
			r.send(dst, s)
			stage[dst] = nil
		}
	}
}

// finish emits a completed walk and recycles its walker.
func (r *run) finish(w *walker) {
	if err := r.fn(w.idx, w.q, w.st.Path, int64(w.st.Step)); err != nil {
		r.fail(err)
	}
	r.free <- w // capacity equals the pool size; never blocks
	if r.remaining.Add(-1) == 0 {
		close(r.doneCh)
	}
}

// absorb drains every already-queued mailbox message into the worker's
// local walker set without blocking. Under high cut rates, processing one
// message at a time would split hand-off batches geometrically (toward
// per-step sends); absorbing arrivals re-aggregates them into full
// passes.
func (r *run) absorb(shardID int, local []*walker) []*walker {
	for {
		select {
		case b := <-r.mail[shardID]:
			local = append(local, b...)
		default:
			return local
		}
	}
}

// advanceWalker walks w while it stays on this shard's vertices — or on
// cache-resident hub rows, which cost the same from any shard — then
// either finishes it or stages it for the shard that owns its new
// position. Depth-first advancement (walk until you leave) beats
// hop-per-pass interleaving here: a walker's state and path buffer stay
// hot in L1/L2 across consecutive hops, which measures faster than the
// row-access locality a sorted per-hop pass buys back.
func (r *run) advanceWalker(shardID int, w *walker, stage [][]*walker) {
	e := r.eng
	for {
		if !walk.Advance(e.g, e.sampler, e.wcfg, &w.st, &w.r) {
			r.finish(w)
			return
		}
		// The O(1) resident-hub bitset goes first: hub hops are the common
		// case on power-law graphs, and short-circuiting here skips the
		// Owner binary search entirely on the per-hop hot path.
		cur := w.st.Cur
		if e.part.Resident(cur) {
			continue
		}
		dst := e.part.Owner(cur)
		if dst == shardID {
			continue
		}
		r.migrations.Add(1)
		r.stageWalker(stage, dst, w)
		return
	}
}

// worker is one goroutine of shard shardID's pool: absorb every queued
// arrival, advance each walker as far as the shard allows, flush the
// staged hand-offs, block for more.
func (r *run) worker(shardID int) {
	defer r.wg.Done()
	stage := make([][]*walker, r.eng.part.K)
	var local []*walker
	for {
		select {
		case b := <-r.mail[shardID]:
			local = append(local[:0], b...)
		case <-r.doneCh:
			return
		case <-r.abortCh:
			return
		}
		local = r.absorb(shardID, local)
		for _, w := range local {
			if r.aborted() {
				return
			}
			r.advanceWalker(shardID, w, stage)
		}
		r.flushStages(stage)
	}
}

// workerPipelined is the cohort-stepping variant of worker: resident
// walkers are batched into a walk.Cohort and advanced one Gather/Sample/
// Move pass at a time, so one walker's CSR row fetch overlaps the sampling
// and move work of the rest. Migration is decided per hop through the
// depart callback — the same resident-hub / owner check the depth-first
// worker makes — and ejected walkers leave with their State synced, so the
// hand-off is race-free and trajectories stay byte-identical.
func (r *run) workerPipelined(shardID int) {
	defer r.wg.Done()
	e := r.eng
	cohort, err := walk.NewCohort(e.g, e.wcfg, e.sampler, e.cfg.Cohort)
	if err != nil {
		r.fail(err) // NewEngine validated stagedness; defensive only
		return
	}
	stage := make([][]*walker, e.part.K)
	lanes := make([]*walker, cohort.Cap())
	free := make([]int32, cohort.Cap())
	for i := range free {
		free[i] = int32(i)
	}
	top := len(free)
	dst := make([]int, cohort.Cap()) // owner computed by depart, reused by eject
	var backlog []*walker
	depart := func(tag int32, cur graph.VertexID) bool {
		// Same short-circuit order as advanceWalker: resident hub rows
		// first, then the owner binary search.
		if e.part.Resident(cur) {
			return false
		}
		owner := e.part.Owner(cur)
		if owner == shardID {
			return false
		}
		dst[tag] = owner
		return true
	}
	eject := func(tag int32) {
		w := lanes[tag]
		lanes[tag] = nil
		free[top] = tag
		top++
		r.migrations.Add(1)
		r.stageWalker(stage, dst[tag], w)
	}
	retire := func(tag int32) error {
		w := lanes[tag]
		lanes[tag] = nil
		free[top] = tag
		top++
		r.finish(w) // emit errors surface through r.fail/abortCh
		return nil
	}
	for {
		select {
		case b := <-r.mail[shardID]:
			backlog = append(backlog[:0], b...)
		case <-r.doneCh:
			return
		case <-r.abortCh:
			return
		}
		backlog = r.absorb(shardID, backlog)
		for {
			for top > 0 && len(backlog) > 0 {
				w := backlog[len(backlog)-1]
				backlog = backlog[:len(backlog)-1]
				top--
				lanes[free[top]] = w
				cohort.Admit(&w.st, &w.r, free[top])
			}
			if cohort.Len() == 0 {
				break
			}
			if r.aborted() {
				return
			}
			cohort.Step(depart, eject, retire) // retire never errors here
			// Refill freed lanes from fresh arrivals without blocking, so
			// the cohort stays as full as the mailbox allows.
			backlog = r.absorb(shardID, backlog)
		}
		r.flushStages(stage)
	}
}

// Run executes the query batch, delivering each finished walk through fn
// (possibly concurrently — see EmitFunc). It returns the run's migration
// statistics and the first error (a failed emit or context cancellation).
func (e *Engine) Run(ctx context.Context, queries []walk.Query, fn EmitFunc) (RunStats, error) {
	if len(queries) == 0 {
		return RunStats{}, nil
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	poolSize := e.cfg.MaxInflight
	if poolSize > len(queries) {
		poolSize = len(queries)
	}
	r := &run{
		eng:     e,
		fn:      fn,
		mail:    make([]chan []*walker, e.part.K),
		free:    make(chan *walker, poolSize),
		doneCh:  make(chan struct{}),
		abortCh: make(chan struct{}),
	}
	r.remaining.Store(int64(len(queries)))
	for s := range r.mail {
		r.mail[s] = make(chan []*walker, poolSize)
	}
	pool := make([]walker, poolSize)
	for i := range pool {
		pool[i].st.Path = make([]graph.VertexID, 0, e.wcfg.WalkLength+1)
		r.free <- &pool[i]
	}
	perShard := e.WorkersPerShard()
	for s := 0; s < e.part.K; s++ {
		for i := 0; i < perShard; i++ {
			r.wg.Add(1)
			if e.cfg.Cohort > 0 {
				go r.workerPipelined(s)
			} else {
				go r.worker(s)
			}
		}
	}

	// Inject queries, recycling walker state as walks finish. Partial
	// staging batches are flushed before blocking on the free list: a
	// staged walker is in flight but undelivered, and sleeping on it would
	// starve the pool.
	stage := make([][]*walker, e.part.K)
inject:
	for i := range queries {
		var w *walker
		select {
		case w = <-r.free:
		default:
			r.flushStages(stage)
			select {
			case w = <-r.free:
			case <-r.abortCh:
				break inject
			case <-ctx.Done():
				r.fail(ctx.Err())
				break inject
			}
		}
		q := queries[i]
		w.q, w.idx = q, i
		e.src.StreamInto(uint64(q.ID), &w.r)
		w.st.Start(q)
		r.stageWalker(stage, e.part.Owner(q.Start), w)
	}
	r.flushStages(stage)

	select {
	case <-r.doneCh:
	case <-r.abortCh:
	case <-ctx.Done():
		r.fail(ctx.Err())
	}
	r.wg.Wait()
	stats := RunStats{
		Migrations:     r.migrations.Load(),
		HandoffBatches: r.handoffs.Load(),
	}
	return stats, r.err
}
