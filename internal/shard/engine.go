package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

// EngineConfig sizes a sharded execution engine.
type EngineConfig struct {
	// Workers is the total worker budget across all shards; each shard's
	// pool gets max(1, Workers/K) goroutines, so the actual total is at
	// least K. 0 means runtime.GOMAXPROCS(0).
	Workers int
	// MigrateBatch is retained for configuration compatibility and is
	// ignored: the SPSC migration rings hand walkers off as individual
	// record copies (cheaper than one channel send), and doorbell
	// notifications are coalesced per drain pass, so there is no batch
	// size left to tune.
	MigrateBatch int
	// MaxInflight caps the walkers concurrently in flight across all
	// shards. It sizes the engine's walker-record pool: each record owns
	// a path buffer and RNG stream, recycled through the mesh's free
	// rings for the engine's lifetime. 0 means 4096.
	MaxInflight int
	// Cohort switches the per-shard workers from depth-first advancement
	// to the step-interleaved cohort pipeline (walk.Cohort): each worker
	// batches up to Cohort resident walkers and runs the Gather/Sample/Move
	// stages over all of them per pass, so row fetches overlap sampling
	// across walkers. Walkers still migrate on boundary crossings with
	// identical trajectories. 0 keeps depth-first advancement.
	Cohort int
	// RingCapacity caps each SPSC migration ring (walker records per
	// producer→consumer worker pair). A full ring never blocks and never
	// drops: the holding worker advances the walker in place until the
	// consumer drains — lossless backpressure with identical trajectories
	// (a walk's path never depends on which worker advances it). 0 means
	// 512.
	RingCapacity int
	// Layout optionally serves cohort Gather reads through a degree-aware
	// graph.Layout (hub rows in a compact cache-resident arena). It must
	// be built over the engine's graph; content identity makes it
	// trajectory-neutral. Ignored when Cohort == 0.
	Layout *graph.Layout
	// Tiered optionally serves row reads through a tiered store (hot
	// arena + compressed cold CSR): cohort workers route their Gather
	// stage through it and depth-first workers advance through per-worker
	// TierViews. It must be built over the engine's graph; content
	// identity makes it trajectory-neutral. Mutually exclusive with
	// Layout (the tiered store subsumes the hub arena).
	Tiered *graph.Tiered
	// Snapshot optionally serves an epoch snapshot of a versioned graph:
	// rows dirty for the snapshot's epoch are read from its merged
	// overlay (cohort workers through Cohort.SetSnapshot, depth-first
	// workers through their staged RowView), and second-order probes
	// route through it. It must be a snapshot over the engine's graph.
	Snapshot *graph.Snapshot
	// Sampler, when non-nil, is a prebuilt sampler the engine borrows
	// instead of building its own — the execution layer passes its
	// registry-shared sampler here so per-shard execution reads the one
	// global flat store rather than duplicating O(E) sampler state. The
	// caller retains ownership (and any registry ref) and must keep it
	// alive for the engine's lifetime.
	Sampler sampling.Sampler
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxInflight == 0 {
		c.MaxInflight = 4096
	}
	if c.RingCapacity == 0 {
		c.RingCapacity = 512
	}
	return c
}

// RunStats reports one Run's migration traffic.
type RunStats struct {
	// Migrations counts cross-shard walker hand-offs (one walker crossing
	// one partition boundary and being delivered to the owning shard).
	Migrations int64
	// HandoffBatches counts doorbell flushes that published at least one
	// migrated walker; Migrations divided by HandoffBatches is the
	// realized migration batching factor.
	HandoffBatches int64
	// RingStalls counts hand-off attempts that found the destination ring
	// full; each stalled walker was advanced in place instead (lossless
	// backpressure), so stalls cost locality, never correctness.
	RingStalls int64
	// Epoch is the versioned-graph epoch the run served (EngineConfig.
	// Snapshot's epoch), 0 when the engine runs an unversioned graph.
	// OverlayRows is that snapshot's dirty-row count — the per-epoch
	// overlay footprint every walker of this run consulted.
	Epoch       uint64
	OverlayRows int
}

// EmitFunc receives one finished walk: the query's position in the input
// batch, the query itself, the visited path (including the start vertex),
// and the hop count. The path aliases a recycled walker buffer and is
// valid only during the call. Emits may arrive concurrently from
// different shard workers; callers needing serialized delivery must lock.
type EmitFunc func(index int, q walk.Query, path []graph.VertexID, steps int64) error

// Engine executes walk batches over a partitioned graph. Each shard owns
// a worker pool that advances only walkers currently standing on its
// vertices; when a hop crosses a partition boundary the walker — its
// resumable walk.State, path buffer, and RNG stream — is copied as one
// flat record into the fixed-capacity SPSC migration ring joining the
// two workers. Rings replace the earlier per-message mailbox channels:
// a hand-off is a single struct copy ordered by one atomic store, there
// is no per-walker boxing or per-batch slice allocation, and the whole
// fabric (rings, walker records, path buffers, worker scratch, cohort
// lanes) is pooled per engine, so steady-state migration performs zero
// heap allocations.
//
// Sampling always reads the global CSR, not the per-shard views:
// second-order samplers touch rows outside the current shard (Node2Vec's
// HasEdge check against the previous vertex, MetaPath's labels of
// cross-shard neighbors), so shard-local row storage cannot serve them.
// The engine's locality comes from grouping walkers by owning shard —
// each worker's accesses concentrate in its partition's slice of the
// global arrays (plus the shared hub arena when a Layout is configured);
// the Shard CSR views serve partition statistics and tooling.
//
// Results are byte-identical to the unsharded engines for the same seed:
// a walker's RNG stream is keyed by its query ID exactly as walk.Run's,
// and its state travels with it, so the trajectory never depends on shard
// count, worker interleaving, migration order, or backpressure (a walker
// advanced in place because a ring was full takes the same path it would
// have taken after migrating).
//
// An Engine holds only immutable workload state plus a mesh cache; Run
// calls are independent and safe to issue concurrently (each Run draws
// its own mesh).
type Engine struct {
	g       *graph.CSR
	part    *Partitioning
	wcfg    walk.Config
	sampler sampling.Sampler
	src     *rng.Source
	cfg     EngineConfig

	// meshes caches up to meshCacheCap idle migration fabrics. A plain
	// bounded stack rather than a sync.Pool: pools are GC-evictable (and
	// deliberately lossy under the race detector), which would charge a
	// full mesh rebuild — thousands of allocations — to whichever Run the
	// collector happened to precede. Steady-state reuse must be
	// deterministic for the 0-alloc migration guarantee to mean anything.
	meshMu sync.Mutex
	meshes []*mesh
}

// meshCacheCap bounds idle cached meshes (concurrent Runs beyond it
// build transient meshes that are dropped on completion).
const meshCacheCap = 4

// NewEngine binds a partitioned graph and a walk configuration,
// constructing the sampler once.
func NewEngine(g *graph.CSR, p *Partitioning, wcfg walk.Config, cfg EngineConfig) (*Engine, error) {
	if p == nil || len(p.Shards) == 0 {
		return nil, fmt.Errorf("shard: engine needs a non-empty partitioning")
	}
	if cfg.Cohort < 0 {
		return nil, fmt.Errorf("shard: cohort %d, want >= 0", cfg.Cohort)
	}
	if cfg.RingCapacity < 0 {
		return nil, fmt.Errorf("shard: ring capacity %d, want >= 0", cfg.RingCapacity)
	}
	if cfg.Layout != nil && cfg.Layout.Graph() != g {
		return nil, fmt.Errorf("shard: layout built over a different graph")
	}
	if cfg.Tiered != nil {
		if cfg.Tiered.Graph() != g {
			return nil, fmt.Errorf("shard: tiered store built over a different graph")
		}
		if cfg.Layout != nil {
			return nil, fmt.Errorf("shard: layout and tiered store are mutually exclusive")
		}
	}
	if cfg.Snapshot != nil && cfg.Snapshot.Graph() != g {
		return nil, fmt.Errorf("shard: snapshot over a different graph")
	}
	sampler := cfg.Sampler
	if sampler == nil {
		var err error
		sampler, err = walk.BuildSampler(g, wcfg)
		if err != nil {
			return nil, err
		}
		// A dirty snapshot needs the alias store's dirty rows rebuilt —
		// the base arenas' locators still describe the pre-mutation rows.
		// Callers that pass a prebuilt Sampler (the exec layer) have
		// already derived it against the snapshot.
		if snap := cfg.Snapshot; snap != nil && snap.NumDirty() > 0 {
			if base, ok := sampler.(*sampling.AliasSampler); ok {
				if sampler, err = base.WithRebuiltRows(snap); err != nil {
					return nil, err
				}
			}
		}
	} else if err := wcfg.Validate(g); err != nil {
		return nil, err
	}
	if cfg.Cohort > 0 {
		if _, ok := sampling.AsStaged(sampler); !ok {
			return nil, fmt.Errorf("shard: sampler %T is not stage-resumable; cohort stepping unavailable", sampler)
		}
	}
	return &Engine{
		g:       g,
		part:    p,
		wcfg:    wcfg,
		sampler: sampler,
		src:     rng.NewSource(wcfg.Seed),
		cfg:     cfg.withDefaults(),
	}, nil
}

// getMesh draws an idle mesh from the cache or builds one.
func (e *Engine) getMesh() *mesh {
	e.meshMu.Lock()
	if n := len(e.meshes); n > 0 {
		m := e.meshes[n-1]
		e.meshes[n-1] = nil
		e.meshes = e.meshes[:n-1]
		e.meshMu.Unlock()
		return m
	}
	e.meshMu.Unlock()
	return newMesh(e)
}

// putMesh returns a mesh to the cache (dropped beyond the cap).
func (e *Engine) putMesh(m *mesh) {
	e.meshMu.Lock()
	if len(e.meshes) < meshCacheCap {
		e.meshes = append(e.meshes, m)
	}
	e.meshMu.Unlock()
}

// Partitioning returns the engine's graph partitioning.
func (e *Engine) Partitioning() *Partitioning { return e.part }

// WorkersPerShard returns the per-shard pool size.
func (e *Engine) WorkersPerShard() int {
	w := e.cfg.Workers / e.part.K
	if w < 1 {
		w = 1
	}
	return w
}

// run is the per-Run execution state; the heavy structures live in the
// pooled mesh.
type run struct {
	eng *Engine
	m   *mesh
	fn  EmitFunc

	remaining atomic.Int64
	doneCh    chan struct{} // closed when remaining hits 0
	abortCh   chan struct{} // closed on first error / cancellation
	abortOnce sync.Once
	err       error

	migrations atomic.Int64
	handoffs   atomic.Int64
	stalls     atomic.Int64
	wg         sync.WaitGroup
}

func (r *run) fail(err error) {
	r.abortOnce.Do(func() {
		r.err = err
		close(r.abortCh)
	})
}

// aborted reports whether the run has failed (cheap enough for per-walker
// polling).
func (r *run) aborted() bool {
	select {
	case <-r.abortCh:
		return true
	default:
		return false
	}
}

// finishRec emits a completed walk and returns its record — path buffer
// and all — to the injector through worker wi's free ring.
func (r *run) finishRec(wi int, w *walkerRec) {
	if err := r.fn(int(w.idx), w.q, w.st.Path, int64(w.st.Step)); err != nil {
		r.fail(err)
	}
	r.m.free[wi].push(w) // capacity MaxInflight bounds records in flight; never fails
	r.m.bellInjector()
	if r.remaining.Add(-1) == 0 {
		close(r.doneCh)
	}
}

// flushBells publishes this worker's pending hand-offs: one doorbell per
// consumer pushed to since the last flush. Counted as hand-off batches —
// the ring-mesh analogue of the old per-batch mailbox message.
func (r *run) flushBells(ws *workerState) {
	for c, d := range ws.dirty {
		if d {
			ws.dirty[c] = false
			r.handoffs.Add(1)
			r.m.bell(c)
		}
	}
}

// advanceRec walks the record in ws.rec while it stays on this shard's
// vertices — or on cache-resident hub rows, which cost the same from any
// shard — then either finishes it or copies it into the owner's ring.
// Depth-first advancement (walk until you leave) keeps a walker's state
// and path buffer hot in L1/L2 across consecutive hops. A full
// destination ring is lossless backpressure: the walker simply keeps
// advancing here (same trajectory) and retries at its next boundary
// crossing.
func (r *run) advanceRec(wi int, ws *workerState) {
	e, m := r.eng, r.m
	w := &ws.rec
	for {
		var more bool
		if ws.tv != nil || ws.mem.Snap != nil {
			more = walk.AdvanceView(e.g, ws.tv, &ws.mem, e.sampler, e.wcfg, &w.st, &w.r)
		} else {
			more = walk.Advance(e.g, e.sampler, e.wcfg, &w.st, &w.r)
		}
		if !more {
			r.finishRec(wi, w)
			return
		}
		// The O(1) resident-hub bitset goes first: hub hops are the common
		// case on power-law graphs, and short-circuiting here skips the
		// Owner binary search entirely on the per-hop hot path.
		cur := w.st.Cur
		if e.part.Resident(cur) {
			continue
		}
		dst := e.part.Owner(cur)
		if dst == ws.shardID {
			continue
		}
		// Hand-off injection point (armed-guarded: one atomic load when
		// chaos is off); surfaces as a panic the shard-worker containment
		// converts to an engine fault.
		if fault.Armed() {
			fault.MustCheck(fault.ShardHandoff)
		}
		c := m.route(&ws.rr, dst)
		if m.rings[wi][c].push(w) {
			r.migrations.Add(1)
			ws.dirty[c] = true
			return
		}
		r.stalls.Add(1)
		m.bell(c) // nudge the consumer to drain; meanwhile advance in place
	}
}

// ejectLane hands a cohort lane's walker to the shard owning its new
// position (called by the cohort's eject callback after the lane's State
// was synced). A full ring parks the lane on the stalled list; the
// worker retries after the pass and re-admits locally if still full.
func (r *run) ejectLane(wi int, ws *workerState, tag int32) {
	if fault.Armed() {
		fault.MustCheck(fault.ShardHandoff)
	}
	m := r.m
	c := m.route(&ws.rr, int(ws.dst[tag]))
	if m.rings[wi][c].push(&ws.recs[tag]) {
		r.migrations.Add(1)
		ws.dirty[c] = true
		ws.freeLanes = append(ws.freeLanes, tag)
		return
	}
	r.stalls.Add(1)
	ws.stalled = append(ws.stalled, tag)
}

// workerDF is one depth-first goroutine of a shard's pool: drain every
// inbound ring, advance each arrival as far as the shard allows, flush
// doorbells, park when idle.
func (r *run) workerDF(wi int) {
	defer r.wg.Done()
	// Panic firewall: a crash while advancing one walker fails the run
	// (closing abortCh wakes every parked worker and the injector) and
	// quarantines the mesh, never the process.
	if err := fault.Contain("shard-worker", func() error {
		r.workerDFLoop(wi)
		return nil
	}); err != nil {
		r.fail(err)
	}
}

func (r *run) workerDFLoop(wi int) {
	m := r.m
	ws := m.workers[wi]
	for {
		worked := false
		for p := 0; p <= m.W; p++ {
			ring := m.rings[p][wi]
			for ring.pop(&ws.rec) {
				worked = true
				if r.aborted() {
					return
				}
				r.advanceRec(wi, ws)
			}
		}
		r.flushBells(ws)
		if worked {
			continue
		}
		select {
		case <-m.bells[wi]:
		case <-r.doneCh:
			return
		case <-r.abortCh:
			return
		}
	}
}

// workerCohort is the cohort-stepping variant: arrivals are popped
// straight into free lane records and admitted to the walk.Cohort, which
// advances all resident walkers one Gather/Sample/Move pass at a time —
// one walker's CSR row fetch overlaps the sampling and move work of the
// rest. Ejection is decided per hop by the depart callback (the same
// resident-hub / owner check the depth-first worker makes); ejected
// walkers leave with their State synced, as one flat record copy into
// the destination ring. The inbound rings double as the admission
// backlog: the worker pops only when a lane is free, so excess arrivals
// wait in the ring, not in a growing slice.
func (r *run) workerCohort(wi int) {
	defer r.wg.Done()
	if err := fault.Contain("shard-worker", func() error {
		r.workerCohortLoop(wi)
		return nil
	}); err != nil {
		r.fail(err)
	}
}

func (r *run) workerCohortLoop(wi int) {
	m := r.m
	ws := m.workers[wi]
	cohort := ws.cohort
	for {
		worked := false
		for p := 0; p <= m.W && len(ws.freeLanes) > 0; p++ {
			ring := m.rings[p][wi]
			for len(ws.freeLanes) > 0 {
				lane := ws.freeLanes[len(ws.freeLanes)-1]
				if !ring.pop(&ws.recs[lane]) {
					break
				}
				ws.freeLanes = ws.freeLanes[:len(ws.freeLanes)-1]
				cohort.Admit(&ws.recs[lane].st, &ws.recs[lane].r, lane)
				worked = true
			}
		}
		if cohort.Len() > 0 {
			if r.aborted() {
				return
			}
			cohort.Step(ws.depart, ws.eject, ws.retire) // retire never errors here
			worked = true
			// Retry ejections that found a full ring during the pass; if
			// still full, re-admit the walker locally — it advances here
			// with an identical trajectory and re-attempts migration at
			// its next boundary crossing.
			for _, tag := range ws.stalled {
				c := m.route(&ws.rr, int(ws.dst[tag]))
				if m.rings[wi][c].push(&ws.recs[tag]) {
					r.migrations.Add(1)
					ws.dirty[c] = true
					ws.freeLanes = append(ws.freeLanes, tag)
				} else {
					m.bell(c)
					cohort.Admit(&ws.recs[tag].st, &ws.recs[tag].r, tag)
				}
			}
			ws.stalled = ws.stalled[:0]
		}
		r.flushBells(ws)
		if worked {
			continue
		}
		select {
		case <-m.bells[wi]:
		case <-r.doneCh:
			return
		case <-r.abortCh:
			return
		}
	}
}

// flushInjectorBells wakes every consumer the injector has pushed to
// since the last flush. Injection hand-offs are not migrations, so they
// are not counted in HandoffBatches.
func (r *run) flushInjectorBells() {
	m := r.m
	for c, d := range m.injDirty {
		if d {
			m.injDirty[c] = false
			m.bell(c)
		}
	}
}

// inject feeds the query batch into the mesh, drawing walker records
// first from the pool prefix and then from the free rings as walks
// finish. It parks on the injector doorbell when no record is free and
// yields when a destination ring is full (the consumer always drains).
func (r *run) inject(ctx context.Context, queries []walk.Query) {
	// The injector runs on Run's caller goroutine; containment here keeps
	// an injection-path crash inside the run like any worker crash.
	if err := fault.Contain("shard-inject", func() error {
		r.injectLoop(ctx, queries)
		return nil
	}); err != nil {
		r.fail(err)
	}
}

func (r *run) injectLoop(ctx context.Context, queries []walk.Query) {
	m, e := r.m, r.eng
	freeTop := len(m.pool)
	if freeTop > len(queries) {
		freeTop = len(queries)
	}
	scan := 0 // round-robin start for the free-ring sweep
	for next := 0; next < len(queries); {
		var w *walkerRec
		if freeTop > 0 {
			freeTop--
			w = &m.pool[freeTop]
		} else {
			for i := 0; i < m.W; i++ {
				c := (scan + i) % m.W
				if m.free[c].pop(&m.injRec) {
					w = &m.injRec
					scan = c + 1
					break
				}
			}
			if w == nil {
				r.flushInjectorBells()
				select {
				case <-m.injBell:
					continue
				case <-r.abortCh:
					return
				case <-ctx.Done():
					r.fail(ctx.Err())
					return
				}
			}
		}
		q := queries[next]
		w.q, w.idx = q, int32(next)
		e.src.StreamInto(uint64(q.ID), &w.r)
		w.st.Start(q)
		c := m.route(&m.injRR, e.part.Owner(q.Start))
		for !m.rings[m.W][c].push(w) {
			m.bell(c)
			if r.aborted() {
				return
			}
			runtime.Gosched()
		}
		m.injDirty[c] = true
		next++
		if next&63 == 0 {
			r.flushInjectorBells()
		}
	}
	r.flushInjectorBells()
}

// Run executes the query batch, delivering each finished walk through fn
// (possibly concurrently — see EmitFunc). It returns the run's migration
// statistics and the first error (a failed emit or context cancellation).
func (e *Engine) Run(ctx context.Context, queries []walk.Query, fn EmitFunc) (RunStats, error) {
	if len(queries) == 0 {
		return RunStats{}, nil
	}
	if err := ctx.Err(); err != nil {
		return RunStats{}, err
	}
	m := e.getMesh()
	r := &run{
		eng:     e,
		m:       m,
		fn:      fn,
		doneCh:  make(chan struct{}),
		abortCh: make(chan struct{}),
	}
	r.remaining.Store(int64(len(queries)))
	m.acquire(r)
	for wi := 0; wi < m.W; wi++ {
		r.wg.Add(1)
		if e.cfg.Cohort > 0 {
			go r.workerCohort(wi)
		} else {
			go r.workerDF(wi)
		}
	}
	r.inject(ctx, queries)
	select {
	case <-r.doneCh:
	case <-r.abortCh:
	case <-ctx.Done():
		r.fail(ctx.Err())
	}
	r.wg.Wait()
	stats := RunStats{
		Migrations:     r.migrations.Load(),
		HandoffBatches: r.handoffs.Load(),
		RingStalls:     r.stalls.Load(),
	}
	if snap := e.cfg.Snapshot; snap != nil {
		stats.Epoch = snap.Epoch()
		stats.OverlayRows = snap.NumDirty()
	}
	err := r.err
	m.run = nil
	if errors.Is(err, fault.ErrEngineFault) {
		// A contained panic can leave the mesh's cohort lanes and ring
		// cursors mid-mutation; a concurrent Run drawing it from the cache
		// would inherit the corruption. Drop it — the next Run builds
		// fresh.
	} else {
		e.putMesh(m)
	}
	return stats, err
}
