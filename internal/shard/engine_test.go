package shard

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

// ringGraph builds the directed cycle 0→1→…→n-1→0: every walk is forced
// to sweep across every shard boundary, making migration traffic exact
// and predictable.
func ringGraph(t testing.TB, n int) *graph.CSR {
	t.Helper()
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % n)}
	}
	g, err := graph.Build(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runEngine collects an engine run into a walk.Result, mirroring how the
// exec session adapts the concurrent emit callback.
func runEngine(t testing.TB, e *Engine, queries []walk.Query) (*walk.Result, RunStats) {
	t.Helper()
	res := &walk.Result{Paths: make([][]graph.VertexID, len(queries))}
	var mu sync.Mutex
	stats, err := e.Run(context.Background(), queries, func(i int, _ walk.Query, path []graph.VertexID, steps int64) error {
		cp := make([]graph.VertexID, len(path))
		copy(cp, path)
		mu.Lock()
		res.Paths[i] = cp
		res.Steps += steps
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, stats
}

// TestEngineMatchesGoldenEngine pins the core contract: sharded execution
// is byte-identical to the sequential golden engine at any shard count,
// worker count, and hand-off batch size.
func TestEngineMatchesGoldenEngine(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Graph500(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	cfg := walk.DefaultConfig(walk.DeepWalk)
	cfg.WalkLength = 25
	cfg.Seed = 13
	qs, err := walk.RandomQueries(g, cfg, 400, 19)
	if err != nil {
		t.Fatal(err)
	}
	want, err := walk.Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7} {
		for _, ecfg := range []EngineConfig{
			{},
			{Workers: 1, MigrateBatch: 1, MaxInflight: 2},
			{Workers: 16, MigrateBatch: 8, MaxInflight: 64},
		} {
			p, err := Partition(g, k)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(g, p, cfg, ecfg)
			if err != nil {
				t.Fatal(err)
			}
			got, _ := runEngine(t, e, qs)
			if got.Steps != want.Steps {
				t.Fatalf("k=%d cfg=%+v: steps %d, want %d", k, ecfg, got.Steps, want.Steps)
			}
			if !reflect.DeepEqual(got.Paths, want.Paths) {
				t.Fatalf("k=%d cfg=%+v: paths differ from golden engine", k, ecfg)
			}
		}
	}
}

// TestEngineMigrationTraffic uses the directed ring, where migration
// counts are exact: a walk of L hops starting anywhere crosses a shard
// boundary every time it steps onto a vertex owned by another shard.
func TestEngineMigrationTraffic(t *testing.T) {
	const n, walkLen = 64, 32
	g := ringGraph(t, n)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = walkLen
	cfg.Seed = 5
	qs := make([]walk.Query, n)
	for i := range qs {
		qs[i] = walk.Query{ID: uint32(i), Start: graph.VertexID(i)}
	}
	want, err := walk.Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4, 8} {
		p, err := Partition(g, k)
		if err != nil {
			t.Fatal(err)
		}
		// Expected migrations: every hop onto a vertex with a different
		// owner than the previous one — except a walk's terminal hop
		// (WalkLength reached), after which the walker finishes in place
		// instead of being handed off.
		var wantMig int64
		for _, path := range want.Paths {
			for j := 1; j < len(path); j++ {
				if j == len(path)-1 && j == walkLen {
					continue
				}
				if p.Owner(path[j]) != p.Owner(path[j-1]) {
					wantMig++
				}
			}
		}
		e, err := NewEngine(g, p, cfg, EngineConfig{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		got, stats := runEngine(t, e, qs)
		if !reflect.DeepEqual(got.Paths, want.Paths) {
			t.Fatalf("k=%d: ring paths differ", k)
		}
		if stats.Migrations != wantMig {
			t.Fatalf("k=%d: %d migrations, want %d", k, stats.Migrations, wantMig)
		}
		if stats.HandoffBatches == 0 || stats.HandoffBatches > stats.Migrations+int64(k) {
			t.Fatalf("k=%d: implausible hand-off batches %d for %d migrations",
				k, stats.HandoffBatches, stats.Migrations)
		}
	}
}

// TestEngineBatchedHandoff checks hand-offs actually batch: with a large
// walker population and MigrateBatch 64, mailbox messages must be far
// fewer than migrations.
func TestEngineBatchedHandoff(t *testing.T) {
	g := ringGraph(t, 256)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 64
	cfg.Seed = 5
	qs := make([]walk.Query, 2048)
	for i := range qs {
		qs[i] = walk.Query{ID: uint32(i), Start: graph.VertexID(i % 256)}
	}
	p, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, p, cfg, EngineConfig{Workers: 2, MigrateBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, stats := runEngine(t, e, qs)
	if stats.Migrations == 0 {
		t.Fatal("no migrations on a ring spanning 2 shards")
	}
	factor := float64(stats.Migrations) / float64(stats.HandoffBatches)
	if factor < 4 {
		t.Fatalf("hand-off batching factor %.1f (migrations %d, batches %d): per-step sends",
			factor, stats.Migrations, stats.HandoffBatches)
	}
}

func TestEngineEmitErrorStopsRun(t *testing.T) {
	g := ringGraph(t, 64)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 20
	qs := make([]walk.Query, 500)
	for i := range qs {
		qs[i] = walk.Query{ID: uint32(i), Start: graph.VertexID(i % 64)}
	}
	p, err := Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, p, cfg, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n := 0
	var mu sync.Mutex
	_, err = e.Run(context.Background(), qs, func(int, walk.Query, []graph.VertexID, int64) error {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestEngineContextCancellation(t *testing.T) {
	g := ringGraph(t, 64)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 20
	qs := make([]walk.Query, 200)
	for i := range qs {
		qs[i] = walk.Query{ID: uint32(i), Start: graph.VertexID(i % 64)}
	}
	p, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, p, cfg, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, qs, func(int, walk.Query, []graph.VertexID, int64) error {
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEngineEmptyBatchAndDuplicateIDs(t *testing.T) {
	g := ringGraph(t, 16)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 10
	p, err := Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, p, cfg, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background(), nil, func(int, walk.Query, []graph.VertexID, int64) error {
		return fmt.Errorf("emit on empty batch")
	}); err != nil {
		t.Fatal(err)
	}
	// Duplicate query IDs (merged service batches): each slot must still be
	// filled with that ID's deterministic walk.
	qs := []walk.Query{{ID: 7, Start: 0}, {ID: 7, Start: 0}, {ID: 7, Start: 8}}
	res, _ := runEngine(t, e, qs)
	if len(res.Paths[0]) == 0 || !reflect.DeepEqual(res.Paths[0], res.Paths[1]) {
		t.Fatal("duplicate-ID walks from the same start must be identical")
	}
}

// TestEngineTinyInflightLiveness forces the degenerate pool (one walker in
// flight) through a migration-heavy workload: any staging/recycling
// ordering bug deadlocks here.
func TestEngineTinyInflightLiveness(t *testing.T) {
	g := ringGraph(t, 32)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 40
	cfg.Seed = 2
	qs := make([]walk.Query, 128)
	for i := range qs {
		qs[i] = walk.Query{ID: uint32(i), Start: graph.VertexID(i % 32)}
	}
	want, err := walk.Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, p, cfg, EngineConfig{Workers: 8, MigrateBatch: 4, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runEngine(t, e, qs)
	if !reflect.DeepEqual(got.Paths, want.Paths) {
		t.Fatal("tiny-inflight run differs from golden engine")
	}
}

// TestEngineCohortStepping pins the cohort-stepping worker: an engine
// with Cohort > 0 runs walkers through the batched Gather/Sample/Move
// pipeline inside each shard worker and must stay byte-identical to the
// golden engine across shard counts, cohort sizes, and tight inflight
// bounds, with migration traffic still flowing (walkers eject mid-cohort).
func TestEngineCohortStepping(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Graph500(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	for _, alg := range []walk.Algorithm{walk.URW, walk.DeepWalk, walk.Node2Vec} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := walk.DefaultConfig(alg)
			cfg.WalkLength = 25
			cfg.Seed = 13
			qs, err := walk.RandomQueries(g, cfg, 400, 19)
			if err != nil {
				t.Fatal(err)
			}
			want, err := walk.Run(g, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{1, 3, 7} {
				for _, ecfg := range []EngineConfig{
					{Cohort: 1},
					{Cohort: 8, Workers: 1, MigrateBatch: 1, MaxInflight: 2},
					{Cohort: 64, Workers: 16, MigrateBatch: 8, MaxInflight: 64},
				} {
					p, err := Partition(g, k)
					if err != nil {
						t.Fatal(err)
					}
					e, err := NewEngine(g, p, cfg, ecfg)
					if err != nil {
						t.Fatal(err)
					}
					got, stats := runEngine(t, e, qs)
					if got.Steps != want.Steps {
						t.Fatalf("k=%d cfg=%+v: steps %d, want %d", k, ecfg, got.Steps, want.Steps)
					}
					if !reflect.DeepEqual(got.Paths, want.Paths) {
						t.Fatalf("k=%d cfg=%+v: paths differ from golden engine", k, ecfg)
					}
					if k > 1 && stats.Migrations == 0 {
						t.Fatalf("k=%d cfg=%+v: no migrations on a multi-shard run", k, ecfg)
					}
				}
			}
		})
	}
}

// TestEngineCohortValidation pins EngineConfig.Cohort validation.
func TestEngineCohortValidation(t *testing.T) {
	g := ringGraph(t, 64)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 5
	p, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(g, p, cfg, EngineConfig{Cohort: -1}); err == nil {
		t.Fatal("negative cohort accepted")
	}
}

// TestEngineRingBackpressure squeezes heavy cross-shard traffic through
// capacity-1 migration rings: backpressure must never drop or duplicate
// a walker, never deadlock, and never change a trajectory (a stalled
// walker is advanced in place — same path either way). The stall counter
// must show the backpressure path actually ran.
func TestEngineRingBackpressure(t *testing.T) {
	g := ringGraph(t, 256)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 48
	cfg.Seed = 11
	qs := make([]walk.Query, 2048)
	for i := range qs {
		qs[i] = walk.Query{ID: uint32(i), Start: graph.VertexID(i % 256)}
	}
	want, err := walk.Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ecfg := range []EngineConfig{
		{Workers: 2, RingCapacity: 1},             // depth-first
		{Workers: 2, RingCapacity: 1, Cohort: 64}, // cohort-stepping
	} {
		p, err := Partition(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(g, p, cfg, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		got, stats := runEngine(t, e, qs)
		if !reflect.DeepEqual(got.Paths, want.Paths) {
			t.Fatalf("cfg=%+v: backpressured run differs from golden engine", ecfg)
		}
		if stats.RingStalls == 0 {
			t.Fatalf("cfg=%+v: no ring stalls through capacity-1 rings (backpressure path untested)", ecfg)
		}
		if stats.Migrations == 0 {
			t.Fatalf("cfg=%+v: no migrations delivered at all", ecfg)
		}
	}
}

// TestEngineSingleShardDegenerate pins the K=1 path: no partition
// boundary exists, so the run must complete with zero migration traffic
// in both worker modes, byte-identical to the golden engine.
func TestEngineSingleShardDegenerate(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Graph500(9, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 30
	cfg.Seed = 7
	qs, err := walk.RandomQueries(g, cfg, 300, 23)
	if err != nil {
		t.Fatal(err)
	}
	want, err := walk.Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, ecfg := range []EngineConfig{{Workers: 2}, {Workers: 2, Cohort: 16}} {
		p, err := Partition(g, 1)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(g, p, cfg, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		got, stats := runEngine(t, e, qs)
		if !reflect.DeepEqual(got.Paths, want.Paths) {
			t.Fatalf("cfg=%+v: single-shard run differs from golden engine", ecfg)
		}
		if stats.Migrations != 0 || stats.HandoffBatches != 0 {
			t.Fatalf("cfg=%+v: migration traffic %+v on a single shard", ecfg, stats)
		}
	}
}

// TestEngineLayoutEquivalenceMatrix is the reordered-layout acceptance
// matrix: every algorithm × shards {2, 4}, with the degree-aware hub
// arena serving the cohort Gather stage, must stay byte-identical to the
// sequential golden engine (the layout changes where row bytes live,
// never what they are).
func TestEngineLayoutEquivalenceMatrix(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Graph500(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	g.AttachLabels(3)
	lay := graph.NewLayout(g, 0)
	if lay.Hubs == 0 {
		t.Fatal("RMAT graph produced no hub rows; layout not exercised")
	}
	for _, alg := range walk.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := walk.DefaultConfig(alg)
			cfg.WalkLength = 25
			cfg.Seed = 13
			qs, err := walk.RandomQueries(g, cfg, 400, 19)
			if err != nil {
				t.Fatal(err)
			}
			want, err := walk.Run(g, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 4} {
				for _, cohort := range []int{0, 16} {
					p, err := Partition(g, k)
					if err != nil {
						t.Fatal(err)
					}
					e, err := NewEngine(g, p, cfg, EngineConfig{Cohort: cohort, Layout: lay})
					if err != nil {
						t.Fatal(err)
					}
					got, _ := runEngine(t, e, qs)
					if got.Steps != want.Steps {
						t.Fatalf("k=%d cohort=%d: steps %d, want %d", k, cohort, got.Steps, want.Steps)
					}
					if !reflect.DeepEqual(got.Paths, want.Paths) {
						t.Fatalf("k=%d cohort=%d: layout run differs from golden engine", k, cohort)
					}
				}
			}
		})
	}
}

// TestEngineLayoutGraphMismatch pins the wrong-graph guard.
func TestEngineLayoutGraphMismatch(t *testing.T) {
	g := ringGraph(t, 64)
	other := ringGraph(t, 32)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 5
	p, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(g, p, cfg, EngineConfig{Cohort: 4, Layout: graph.NewLayout(other, 0)}); err == nil {
		t.Fatal("layout over a different graph accepted")
	}
}

// TestEngineSteadyStateMigrationAllocs pins the tentpole property: after
// the first Run warms the engine's mesh pool, further Runs perform no
// per-migration heap allocation — the entire migration fabric (rings,
// records, path buffers, cohort lanes, scratch) is recycled. Only the
// per-Run bookkeeping (run struct, two channels, goroutine starts)
// remains, a constant independent of migration count.
func TestEngineSteadyStateMigrationAllocs(t *testing.T) {
	g := ringGraph(t, 256)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 80
	cfg.Seed = 3
	qs := make([]walk.Query, 1024)
	for i := range qs {
		qs[i] = walk.Query{ID: uint32(i), Start: graph.VertexID(i % 256)}
	}
	for _, ecfg := range []EngineConfig{
		{Workers: 4},
		{Workers: 4, Cohort: 32},
	} {
		p, err := Partition(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEngine(g, p, cfg, ecfg)
		if err != nil {
			t.Fatal(err)
		}
		emit := func(int, walk.Query, []graph.VertexID, int64) error { return nil }
		// Warm-up builds the mesh (rings, record pool, cohorts); the
		// engine's mesh cache is deterministic (not a GC-evictable
		// sync.Pool), so the very next Run must hit the steady state.
		if _, err := e.Run(context.Background(), qs, emit); err != nil {
			t.Fatal(err)
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		stats, err := e.Run(context.Background(), qs, emit)
		runtime.ReadMemStats(&after)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Migrations < 1000 {
			t.Fatalf("cfg=%+v: only %d migrations; workload too small to pin the hot path", ecfg, stats.Migrations)
		}
		allocs := after.Mallocs - before.Mallocs
		if perMigration := float64(allocs) / float64(stats.Migrations); perMigration > 0.01 {
			t.Fatalf("cfg=%+v: %d allocs over %d migrations (%.4f/migration), want ~0",
				ecfg, allocs, stats.Migrations, perMigration)
		}
	}
}
