package shard

import (
	"reflect"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

// TestEngineSnapshotEquivalence pins the sharded fabric's dynamic-graph
// contract: runs over (base + overlay snapshot) are byte-identical to the
// golden engine over a cold fold of the final graph, in both depth-first
// and cohort stepping, and RunStats carries the pinned epoch and overlay
// size.
func TestEngineSnapshotEquivalence(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Graph500(9, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	vg := graph.NewVersioned(g)
	n := graph.VertexID(g.NumVertices)
	var ins []graph.Edge
	for i := 0; i < 40; i++ {
		ins = append(ins, graph.Edge{Src: graph.VertexID(i*29) % n, Dst: graph.VertexID(i*83+7) % n})
	}
	if err := vg.InsertEdges(ins); err != nil {
		t.Fatal(err)
	}
	if err := vg.DeleteEdges(ins[:10]); err != nil {
		t.Fatal(err)
	}
	snap := vg.ServingSnapshot()
	if snap == nil {
		t.Fatal("no overlay")
	}
	final := vg.Compact()

	for _, alg := range []walk.Algorithm{walk.URW, walk.DeepWalk, walk.Node2Vec} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := walk.DefaultConfig(alg)
			cfg.WalkLength = 20
			cfg.Seed = 13
			qs, err := walk.RandomQueries(g, cfg, 200, 19)
			if err != nil {
				t.Fatal(err)
			}
			want, err := walk.Run(final, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, ecfg := range []EngineConfig{
				{Workers: 4, Snapshot: snap},
				{Workers: 4, Cohort: 8, Snapshot: snap},
			} {
				p, err := Partition(g, 3)
				if err != nil {
					t.Fatal(err)
				}
				e, err := NewEngine(g, p, cfg, ecfg)
				if err != nil {
					t.Fatal(err)
				}
				got, stats := runEngine(t, e, qs)
				if !reflect.DeepEqual(got.Paths, want.Paths) {
					t.Fatalf("cohort=%d: overlay paths differ from cold fold", ecfg.Cohort)
				}
				if stats.Epoch != snap.Epoch() || stats.OverlayRows != snap.NumDirty() {
					t.Fatalf("cohort=%d: stats epoch=%d overlay=%d, want %d/%d",
						ecfg.Cohort, stats.Epoch, stats.OverlayRows, snap.Epoch(), snap.NumDirty())
				}
			}

			// Unversioned runs report zero epoch accounting.
			p, err := Partition(g, 2)
			if err != nil {
				t.Fatal(err)
			}
			e, err := NewEngine(g, p, cfg, EngineConfig{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			_, stats := runEngine(t, e, qs)
			if stats.Epoch != 0 || stats.OverlayRows != 0 {
				t.Fatalf("unversioned stats epoch=%d overlay=%d", stats.Epoch, stats.OverlayRows)
			}
		})
	}

	// A snapshot over a different graph is rejected at construction.
	other, err := graph.GenerateRMAT(graph.Graph500(6, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	other.AttachWeights()
	p, err := Partition(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(other, p, walk.DefaultConfig(walk.URW), EngineConfig{Snapshot: snap}); err == nil {
		t.Fatal("snapshot over a different graph accepted")
	}
}
