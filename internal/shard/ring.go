package shard

import (
	"sync/atomic"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

// walkerRec is one in-flight walk moved by value through the migration
// mesh: the query, its batch slot, the resumable walk.State (whose Path
// slice header carries the recycled path buffer along), and the
// query-keyed RNG stream. Records travel as flat struct copies — the
// "SoA lane copy" of a cohort lane — so handing a walker between shards
// never boxes it behind a pointer or touches the heap.
type walkerRec struct {
	q   walk.Query
	idx int32
	st  walk.State
	r   rng.Stream
}

// spscRing is a fixed-capacity single-producer/single-consumer ring of
// walker records — the migration channel between one producing worker
// and one consuming worker. head and tail are monotonically increasing
// positions (masked into the buffer), each written by exactly one side;
// the atomic store/load pair orders the record copy against the position
// publish, which is all the synchronization a SPSC hand-off needs. A
// full ring reports failure instead of blocking: migration backpressure
// is handled losslessly by the caller (see run.eject / run.advanceRec).
type spscRing struct {
	buf  []walkerRec
	mask uint64
	_    [48]byte      // keep head off the buf header's cache line
	head atomic.Uint64 // next position to pop; written only by the consumer
	_    [56]byte      // head and tail on separate cache lines
	tail atomic.Uint64 // next position to push; written only by the producer
}

// newRing builds a ring holding at least capacity records (rounded up to
// a power of two, minimum 1).
func newRing(capacity int) *spscRing {
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &spscRing{buf: make([]walkerRec, c), mask: uint64(c - 1)}
}

// push copies *w into the ring, reporting false when full. Producer-side
// only.
func (r *spscRing) push(w *walkerRec) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = *w
	r.tail.Store(t + 1)
	return true
}

// pop copies the oldest record into *w, reporting false when empty.
// Consumer-side only.
func (r *spscRing) pop(w *walkerRec) bool {
	h := r.head.Load()
	if h == r.tail.Load() {
		return false
	}
	*w = r.buf[h&r.mask]
	r.head.Store(h + 1)
	return true
}

// reset empties the ring. Only safe when no producer or consumer is
// active (between runs).
func (r *spscRing) reset() {
	r.head.Store(0)
	r.tail.Store(0)
}

// workerState is one worker's preallocated scratch, owned by the mesh so
// steady-state runs reuse it without allocating.
type workerState struct {
	shardID int
	// dirty[c] marks consumers this worker pushed to since its last
	// doorbell flush.
	dirty []bool
	// rec is the depth-first worker's walker scratch slot.
	rec walkerRec

	// rr rotates this producer's hand-offs across the destination
	// shard's workers (see mesh.route).
	rr uint32

	// tv/mem are the depth-first worker's tiered-store view and row
	// scratch (nil/zero when the engine is untiered); cohort mode routes
	// tiering through the cohort's own lanes instead.
	tv  *graph.TierView
	mem sampling.RowView

	// Cohort-mode state (nil/empty in depth-first mode): lane-backed
	// records, the free-lane stack, per-lane destination shards computed
	// by the depart callback, and the per-pass stalled-ejection list.
	cohort    *walk.Cohort
	recs      []walkerRec
	freeLanes []int32
	dst       []int32
	stalled   []int32

	// Callbacks bound once at mesh construction; they reach the current
	// run through mesh.run.
	depart func(tag int32, cur graph.VertexID) bool
	eject  func(tag int32)
	retire func(tag int32) error
}

// mesh is the reusable migration fabric of one Engine: the SPSC ring
// matrix, the per-worker doorbells and scratch, the walker-record pool
// (each record owning a preallocated path buffer), and the free-record
// return rings. An Engine recycles meshes through its bounded,
// deterministic mesh cache (deliberately NOT a sync.Pool — see
// Engine.meshes), so a steady-state Run allocates nothing beyond its
// own bookkeeping struct — and migration itself is allocation-free by
// construction.
//
// Producers are the W shard workers plus the injector (producer index
// W); consumers are the W workers. rings[p][c] is the p→c migration
// ring; free[c] returns finished records from worker c to the injector.
type mesh struct {
	eng      *Engine
	W        int // total shard workers (K × perShard)
	perShard int

	rings [][]*spscRing // [W+1][W]
	free  []*spscRing   // [W], worker → injector
	bells []chan struct{}
	// injBell wakes the injector when a finished record is returned.
	injBell chan struct{}
	// injDirty marks consumers the injector pushed to since its flush.
	injDirty []bool
	// injRec is the injector's scratch slot for recycled records.
	injRec walkerRec
	// injRR rotates the injector's hand-offs across a destination
	// shard's workers (see route).
	injRR uint32

	pool    []walkerRec
	workers []*workerState

	// run is the engine run currently driving this mesh; set by acquire,
	// read by the worker callbacks.
	run *run
}

// route returns the consumer worker index a producer uses to reach
// shard dst: shard workers are numbered dst*perShard..dst*perShard+
// perShard-1, and each producer rotates its hand-offs across them
// through its own counter (*rr), so work spreads over every worker of
// the destination pool. Rotation keeps the SPSC invariant intact —
// whichever consumer is chosen, rings[p][c] still has exactly one
// producer and one consumer — it only varies which of the producer's
// own rings carries each walker. (A static residue-class route here
// would strand all traffic on one worker per shard whenever
// perShard > 1: the injector and every class-0 worker would only ever
// feed class-0 workers, leaving the rest parked for the whole run.)
func (m *mesh) route(rr *uint32, dst int) int {
	i := int(*rr) % m.perShard
	*rr++
	return dst*m.perShard + i
}

// newMesh builds the migration fabric for e.
func newMesh(e *Engine) *mesh {
	cfg := e.cfg
	perShard := e.WorkersPerShard()
	W := e.part.K * perShard
	ringCap := cfg.RingCapacity
	if ringCap > cfg.MaxInflight {
		ringCap = cfg.MaxInflight
	}
	m := &mesh{
		eng:      e,
		W:        W,
		perShard: perShard,
		rings:    make([][]*spscRing, W+1),
		free:     make([]*spscRing, W),
		bells:    make([]chan struct{}, W),
		injBell:  make(chan struct{}, 1),
		injDirty: make([]bool, W),
		pool:     make([]walkerRec, cfg.MaxInflight),
		workers:  make([]*workerState, W),
	}
	for p := range m.rings {
		// Worker→worker rings carry migrations and are bounded by
		// RingCapacity (backpressure); the injector's producer row is
		// sized to the inflight cap so admission is never throttled by
		// the migration-ring tuning.
		cap := ringCap
		if p == W {
			cap = cfg.MaxInflight
		}
		m.rings[p] = make([]*spscRing, W)
		for c := range m.rings[p] {
			m.rings[p][c] = newRing(cap)
		}
	}
	for i := range m.pool {
		m.pool[i].st.Path = make([]graph.VertexID, 0, e.wcfg.WalkLength+1)
	}
	for c := 0; c < W; c++ {
		m.free[c] = newRing(cfg.MaxInflight)
		m.bells[c] = make(chan struct{}, 1)
		ws := &workerState{
			shardID: c / perShard,
			dirty:   make([]bool, W),
		}
		if cfg.Tiered != nil && cfg.Cohort == 0 {
			ws.tv = graph.NewTierView(cfg.Tiered)
			// Narrow the view to what this workload's sampler reads (the
			// engine validated e.wcfg, so TierAccess cannot fail here).
			if needRow, needW, err := walk.TierAccess(e.g, e.wcfg); err == nil {
				ws.tv.SetAccess(needRow, needW)
			}
		}
		if cfg.Snapshot != nil && cfg.Cohort == 0 {
			// Depth-first workers consult the epoch overlay through their
			// staged row view (AdvanceView checks mem.Snap before the base
			// row); cohort workers get it via SetSnapshot below.
			ws.mem.Snap = cfg.Snapshot
		}
		if cfg.Cohort > 0 {
			// NewEngine validated the cohort size and sampler stagedness.
			cohort, err := walk.NewCohort(e.g, e.wcfg, e.sampler, cfg.Cohort)
			if err != nil {
				panic("shard: mesh cohort: " + err.Error())
			}
			if cfg.Layout != nil {
				cohort.SetLayout(cfg.Layout)
			}
			if cfg.Tiered != nil {
				cohort.SetTiered(cfg.Tiered)
			}
			if cfg.Snapshot != nil {
				cohort.SetSnapshot(cfg.Snapshot)
			}
			ws.cohort = cohort
			ws.recs = make([]walkerRec, cfg.Cohort)
			ws.freeLanes = make([]int32, 0, cfg.Cohort)
			ws.dst = make([]int32, cfg.Cohort)
			ws.stalled = make([]int32, 0, cfg.Cohort)
			m.bindCohortCallbacks(c, ws)
		}
		m.workers[c] = ws
	}
	return m
}

// bindCohortCallbacks builds worker c's depart/eject/retire closures
// once; they dispatch to the run installed by acquire.
func (m *mesh) bindCohortCallbacks(c int, ws *workerState) {
	e := m.eng
	ws.depart = func(tag int32, cur graph.VertexID) bool {
		// Resident hub rows are cheap from every shard: advance in place.
		if e.part.Resident(cur) {
			return false
		}
		owner := e.part.Owner(cur)
		if owner == ws.shardID {
			return false
		}
		ws.dst[tag] = int32(owner)
		return true
	}
	ws.eject = func(tag int32) {
		m.run.ejectLane(c, ws, tag)
	}
	ws.retire = func(tag int32) error {
		m.run.finishRec(c, &ws.recs[tag])
		ws.freeLanes = append(ws.freeLanes, tag)
		return nil
	}
}

// acquire readies the mesh for a run: empty rings, drained doorbells,
// cleared cohorts and scratch. Cheap relative to a run; performs no
// allocation.
func (m *mesh) acquire(r *run) {
	m.run = r
	for _, row := range m.rings {
		for _, ring := range row {
			ring.reset()
		}
	}
	for _, ring := range m.free {
		ring.reset()
	}
	for _, bell := range m.bells {
		select {
		case <-bell:
		default:
		}
	}
	select {
	case <-m.injBell:
	default:
	}
	for i := range m.injDirty {
		m.injDirty[i] = false
	}
	m.injRR = 0
	for _, ws := range m.workers {
		ws.rr = 0
		for i := range ws.dirty {
			ws.dirty[i] = false
		}
		if ws.cohort != nil {
			ws.cohort.Reset()
			ws.freeLanes = ws.freeLanes[:0]
			for lane := len(ws.recs) - 1; lane >= 0; lane-- {
				ws.freeLanes = append(ws.freeLanes, int32(lane))
			}
			ws.stalled = ws.stalled[:0]
		}
	}
}

// bell wakes consumer c if it is parked (no-op when already signaled).
func (m *mesh) bell(c int) {
	select {
	case m.bells[c] <- struct{}{}:
	default:
	}
}

// bellInjector wakes the injector if it is parked on the free list.
func (m *mesh) bellInjector() {
	select {
	case m.injBell <- struct{}{}:
	default:
	}
}
