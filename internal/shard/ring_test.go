package shard

import (
	"runtime"
	"sync"
	"testing"

	"ridgewalker/internal/walk"
)

// TestRingBasics pins push/pop ordering, capacity rounding, and the
// full/empty boundary conditions.
func TestRingBasics(t *testing.T) {
	r := newRing(3) // rounds up to 4
	if len(r.buf) != 4 {
		t.Fatalf("capacity %d, want 4", len(r.buf))
	}
	var w walkerRec
	if r.pop(&w) {
		t.Fatal("pop on empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		w.idx = int32(i)
		if !r.push(&w) {
			t.Fatalf("push %d on non-full ring failed", i)
		}
	}
	w.idx = 99
	if r.push(&w) {
		t.Fatal("push on full ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.pop(&w) {
			t.Fatalf("pop %d on non-empty ring failed", i)
		}
		if w.idx != int32(i) {
			t.Fatalf("pop %d returned record %d: FIFO order broken", i, w.idx)
		}
	}
	if r.pop(&w) {
		t.Fatal("pop after drain succeeded")
	}
}

// TestRingWraparound cycles far past the capacity so the monotonic
// position arithmetic is exercised across many wraps.
func TestRingWraparound(t *testing.T) {
	r := newRing(2)
	var w walkerRec
	for i := 0; i < 1000; i++ {
		w.idx = int32(i)
		if !r.push(&w) {
			t.Fatalf("push %d failed on empty-ish ring", i)
		}
		if !r.pop(&w) || w.idx != int32(i) {
			t.Fatalf("pop %d returned %d", i, w.idx)
		}
	}
}

// TestRingSPSCStress runs a real producer/consumer pair under the race
// detector: every record pushed must arrive exactly once, in order, with
// its payload intact.
func TestRingSPSCStress(t *testing.T) {
	const n = 100000
	r := newRing(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var w walkerRec
		for i := 0; i < n; {
			w.idx = int32(i)
			w.q = walk.Query{ID: uint32(i), Start: uint32(i * 3)}
			w.st.Step = i
			if r.push(&w) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var w walkerRec
	for i := 0; i < n; {
		if !r.pop(&w) {
			runtime.Gosched()
			continue
		}
		if w.idx != int32(i) || w.q.ID != uint32(i) || w.q.Start != uint32(i*3) || w.st.Step != i {
			t.Fatalf("record %d arrived corrupted: %+v", i, w)
		}
		i++
	}
	wg.Wait()
	if r.pop(&w) {
		t.Fatal("ring not empty after stress")
	}
}

// TestMeshRouteSpreadsAcrossPoolWorkers pins the routing fix for
// multi-worker shard pools: a producer's consecutive hand-offs to one
// shard must rotate over every worker of that shard's pool (a static
// residue-class route would strand all traffic on one worker per shard
// and park the rest for the whole run).
func TestMeshRouteSpreadsAcrossPoolWorkers(t *testing.T) {
	g := ringGraph(t, 64)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 5
	p, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, p, cfg, EngineConfig{Workers: 8}) // perShard = 4
	if err != nil {
		t.Fatal(err)
	}
	m := newMesh(e)
	if m.perShard != 4 {
		t.Fatalf("perShard = %d, want 4", m.perShard)
	}
	for dst := 0; dst < 2; dst++ {
		var rr uint32
		seen := map[int]bool{}
		for i := 0; i < m.perShard; i++ {
			c := m.route(&rr, dst)
			if c/m.perShard != dst {
				t.Fatalf("route(dst=%d) returned worker %d outside the shard's pool", dst, c)
			}
			seen[c] = true
		}
		if len(seen) != m.perShard {
			t.Fatalf("dst=%d: %d consecutive hand-offs reached only %d of %d pool workers",
				dst, m.perShard, len(seen), m.perShard)
		}
	}
}
