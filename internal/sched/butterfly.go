package sched

import (
	"fmt"

	"ridgewalker/internal/hwsim"
)

// Balancer is the N-to-N load-balancing butterfly of Fig. 7b: log N stages,
// each pairing wires that differ in one index bit through a 2×2 balancing
// switch built from two Dispatchers feeding two Mergers. Local congestion
// on any output propagates upstream through back-pressure and is averaged
// pairwise at every stage, keeping earlier stages uniformly loaded even
// when a single downstream channel is throttled.
type Balancer[T any] struct {
	n   int
	in  []*hwsim.FIFO[T]
	out []*hwsim.FIFO[T]
}

// NewBalancer builds a balancer over n wires (power of two). stageDepth is
// the capacity of the inter-stage FIFOs (the paper's shallow LUT FIFOs).
// Inputs() and Outputs() expose the edge FIFOs.
func NewBalancer[T any](s *hwsim.Sim, name string, n, stageDepth int) (*Balancer[T], error) {
	stages, err := log2(n)
	if err != nil {
		return nil, err
	}
	if stageDepth < 1 {
		return nil, fmt.Errorf("sched: stage depth %d, want >= 1", stageDepth)
	}
	b := &Balancer[T]{n: n}
	cur := make([]*hwsim.FIFO[T], n)
	for i := range cur {
		cur[i] = hwsim.NewFIFO[T](s, fmt.Sprintf("%s.in%d", name, i), stageDepth)
	}
	b.in = cur
	if stages == 0 {
		// Single wire: input is output.
		b.out = cur
		return b, nil
	}
	for st := 0; st < stages; st++ {
		next := make([]*hwsim.FIFO[T], n)
		for i := range next {
			next[i] = hwsim.NewFIFO[T](s, fmt.Sprintf("%s.s%d.%d", name, st, i), stageDepth)
		}
		bit := 1 << st
		// One 2×2 switch per wire pair (i, i|bit) with i's bit clear.
		for i := 0; i < n; i++ {
			if i&bit != 0 {
				continue
			}
			j := i | bit
			// Dispatcher outputs cross into per-merger FIFOs.
			di1 := hwsim.NewFIFO[T](s, fmt.Sprintf("%s.s%d.d%d.a", name, st, i), stageDepth)
			di2 := hwsim.NewFIFO[T](s, fmt.Sprintf("%s.s%d.d%d.b", name, st, i), stageDepth)
			dj1 := hwsim.NewFIFO[T](s, fmt.Sprintf("%s.s%d.d%d.a", name, st, j), stageDepth)
			dj2 := hwsim.NewFIFO[T](s, fmt.Sprintf("%s.s%d.d%d.b", name, st, j), stageDepth)
			NewDispatcher(s, cur[i], di1, di2)
			NewDispatcher(s, cur[j], dj1, dj2)
			// Merger for wire i takes the straight leg of i and the cross
			// leg of j; symmetrically for wire j.
			NewMerger(s, di1, dj2, next[i])
			NewMerger(s, dj1, di2, next[j])
		}
		cur = next
	}
	b.out = cur
	return b, nil
}

// Inputs returns the N input FIFOs.
func (b *Balancer[T]) Inputs() []*hwsim.FIFO[T] { return b.in }

// Outputs returns the N output FIFOs.
func (b *Balancer[T]) Outputs() []*hwsim.FIFO[T] { return b.out }

// routerSwitch is a 2×2 destination-routed crossbar: each input's task goes
// straight or crosses depending on one bit of its destination. Contention
// for an output is resolved by round-robin grant.
type routerSwitch[T any] struct {
	inA, inB   *hwsim.FIFO[T]
	outA, outB *hwsim.FIFO[T]
	// wantB reports whether a task must leave on the B (bit-set) wire.
	wantB func(T) bool
	// grantB alternates arbitration priority between inputs.
	grantB bool
}

// Tick implements hwsim.Module: route up to one task from each input,
// arbitrating output conflicts fairly.
func (r *routerSwitch[T]) Tick(now int64) {
	// Determine requests.
	type req struct {
		in   *hwsim.FIFO[T]
		outB bool
	}
	var reqs []req
	first, second := r.inA, r.inB
	if r.grantB {
		first, second = r.inB, r.inA
	}
	for _, in := range []*hwsim.FIFO[T]{first, second} {
		if v, ok := in.Peek(); ok {
			reqs = append(reqs, req{in: in, outB: r.wantB(v)})
		}
	}
	taken := map[bool]bool{}
	for _, q := range reqs {
		if taken[q.outB] {
			continue // output already granted this cycle
		}
		out := r.outA
		if q.outB {
			out = r.outB
		}
		if out.Full() {
			continue
		}
		v, _ := q.in.Pop()
		out.Push(v)
		taken[q.outB] = true
	}
	r.grantB = !r.grantB
}

// Router is a destination-routed butterfly: a task entering on any wire
// leaves on the wire Dest(task). It is the Task Router of §IV-A, which
// sends each task to the pipeline owning the memory channel that stores the
// data the task needs.
type Router[T any] struct {
	n    int
	in   []*hwsim.FIFO[T]
	out  []*hwsim.FIFO[T]
	dest func(T) int
}

// NewRouter builds a router over n wires (power of two). dest must return a
// value in [0, n) for every task.
func NewRouter[T any](s *hwsim.Sim, name string, n, stageDepth int, dest func(T) int) (*Router[T], error) {
	stages, err := log2(n)
	if err != nil {
		return nil, err
	}
	if stageDepth < 1 {
		return nil, fmt.Errorf("sched: stage depth %d, want >= 1", stageDepth)
	}
	r := &Router[T]{n: n, dest: dest}
	cur := make([]*hwsim.FIFO[T], n)
	for i := range cur {
		cur[i] = hwsim.NewFIFO[T](s, fmt.Sprintf("%s.in%d", name, i), stageDepth)
	}
	r.in = cur
	if stages == 0 {
		r.out = cur
		return r, nil
	}
	for st := 0; st < stages; st++ {
		next := make([]*hwsim.FIFO[T], n)
		for i := range next {
			next[i] = hwsim.NewFIFO[T](s, fmt.Sprintf("%s.s%d.%d", name, st, i), stageDepth)
		}
		bit := 1 << st
		for i := 0; i < n; i++ {
			if i&bit != 0 {
				continue
			}
			j := i | bit
			sw := &routerSwitch[T]{
				inA: cur[i], inB: cur[j],
				outA: next[i], outB: next[j],
				wantB: func(v T) bool { return dest(v)&bit != 0 },
			}
			s.Register(sw)
		}
		cur = next
	}
	r.out = cur
	return r, nil
}

// Inputs returns the N input FIFOs.
func (r *Router[T]) Inputs() []*hwsim.FIFO[T] { return r.in }

// Outputs returns the N output FIFOs; a task with Dest d emerges from
// Outputs()[d].
func (r *Router[T]) Outputs() []*hwsim.FIFO[T] { return r.out }
