// Package sched implements RidgeWalker's Zero-Bubble Query Scheduler
// (paper §VI): O(1) Dispatcher and Merger elements (Algorithms VI.1 and
// VI.2), butterfly networks built from them — a load Balancer (Fig. 7b) and
// a destination-aware Router — and the composed Scheduler that feeds N
// asynchronous pipelines through FIFOs provisioned per Theorem VI.1.
//
// Every element is fully pipelined with a one-cycle initiation interval and
// a fixed two-cycle latency (one FIFO register hop plus one internal stage
// register), matching the paper's timing analysis: a task traverses log N
// Dispatchers and log N Mergers, ≤ 2 cycles each, so the balancer delay is
// bounded by 2·log N and the total scheduling round trip by 4·log N cycles.
package sched

import (
	"fmt"

	"ridgewalker/internal/hwsim"
)

// Dispatcher routes tasks from one input stream to two output channels
// while honoring back-pressure and preserving fairness (Algorithm VI.1).
//
// Policy, decoded from scode = {out2.full, out1.full, last_selection}:
//   - both outputs free → pick the not-last-served output (alternation)
//   - one output free → pick it (never stall when progress is possible)
//   - both full → block on the not-last-served output (fairness under
//     worst-case congestion; in hardware a blocking write, here a retry
//     every cycle until that output drains)
type Dispatcher[T any] struct {
	in         *hwsim.FIFO[T]
	out1, out2 *hwsim.FIFO[T]

	reg      T
	regValid bool
	// last is 0 when out1 was served most recently, 1 for out2.
	last int

	busy hwsim.BusyCounter
}

// NewDispatcher wires a dispatcher between the given FIFOs and registers it
// with the simulator.
func NewDispatcher[T any](s *hwsim.Sim, in, out1, out2 *hwsim.FIFO[T]) *Dispatcher[T] {
	d := &Dispatcher[T]{in: in, out1: out1, out2: out2}
	s.Register(d)
	return d
}

// Tick implements hwsim.Module.
func (d *Dispatcher[T]) Tick(now int64) {
	progressed := false
	if d.regValid {
		full1, full2 := d.out1.Full(), d.out2.Full()
		var target *hwsim.FIFO[T]
		var sel int
		switch {
		case !full1 && !full2:
			// Alternate: serve the not-last-served channel.
			if d.last == 0 {
				target, sel = d.out2, 1
			} else {
				target, sel = d.out1, 0
			}
		case !full1:
			target, sel = d.out1, 0
		case !full2:
			target, sel = d.out2, 1
		default:
			// Both full: block on the not-last-served channel; it is not
			// writable this cycle, so wait.
		}
		if target != nil && target.Push(d.reg) {
			var zero T
			d.reg = zero
			d.regValid = false
			d.last = sel
			progressed = true
		}
	}
	if !d.regValid {
		if v, ok := d.in.Pop(); ok {
			d.reg = v
			d.regValid = true
			progressed = true
		}
	}
	d.busy.Record(progressed)
}

// Busy returns the element's activity counters.
func (d *Dispatcher[T]) Busy() hwsim.BusyCounter { return d.busy }

// Merger combines two input streams into one output while maintaining
// balanced service under back-pressure (Algorithm VI.2).
//
// Policy, decoded from scode = {in2.empty, in1.empty, last_selection}:
//   - both empty → nothing
//   - exactly one input valid → forward it
//   - both valid → pick the not-last-served input (starvation freedom), or
//     always in1 when Prioritize is set (the paper's module ➋ gives
//     in-flight unfinished queries priority over newly injected ones)
type Merger[T any] struct {
	in1, in2 *hwsim.FIFO[T]
	out      *hwsim.FIFO[T]

	// Prioritize makes in1 win every contention instead of alternating.
	Prioritize bool

	reg      T
	regValid bool
	last     int

	busy hwsim.BusyCounter
}

// NewMerger wires a merger and registers it with the simulator.
func NewMerger[T any](s *hwsim.Sim, in1, in2, out *hwsim.FIFO[T]) *Merger[T] {
	m := &Merger[T]{in1: in1, in2: in2, out: out}
	s.Register(m)
	return m
}

// Tick implements hwsim.Module.
func (m *Merger[T]) Tick(now int64) {
	progressed := false
	if m.regValid && !m.out.Full() {
		if m.out.Push(m.reg) {
			var zero T
			m.reg = zero
			m.regValid = false
			progressed = true
		}
	}
	if !m.regValid {
		empty1, empty2 := m.in1.Empty(), m.in2.Empty()
		var src *hwsim.FIFO[T]
		var sel int
		switch {
		case empty1 && empty2:
			// Nothing to do.
		case !empty1 && empty2:
			src, sel = m.in1, 0
		case empty1 && !empty2:
			src, sel = m.in2, 1
		default:
			// Both valid: priority or alternation.
			if m.Prioritize || m.last == 1 {
				src, sel = m.in1, 0
			} else {
				src, sel = m.in2, 1
			}
		}
		if src != nil {
			if v, ok := src.Pop(); ok {
				m.reg = v
				m.regValid = true
				m.last = sel
				progressed = true
			}
		}
	}
	m.busy.Record(progressed)
}

// Busy returns the element's activity counters.
func (m *Merger[T]) Busy() hwsim.BusyCounter { return m.busy }

// log2 returns log2(n) for a positive power of two, or an error otherwise.
func log2(n int) (int, error) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("sched: size %d is not a positive power of two", n)
	}
	k := 0
	for 1<<k < n {
		k++
	}
	return k, nil
}
