package sched

import (
	"fmt"

	"ridgewalker/internal/hwsim"
	"ridgewalker/internal/queuing"
)

// SchedulerConfig parameterizes the composed Zero-Bubble Scheduler.
type SchedulerConfig struct {
	// Pipelines is N, the number of asynchronous pipelines (power of two).
	Pipelines int
	// StageDepth is the capacity of inter-element FIFOs (shallow LUT FIFOs
	// in the paper; they only need to sustain pipelining).
	StageDepth int
	// OutputDepth is the per-pipeline FIFO depth between scheduler and
	// pipeline. Zero selects Theorem VI.1's minimum, 1 + 4·log2(N).
	OutputDepth int
	// PrioritizeRecycled makes module ➋'s mergers always prefer in-flight
	// unfinished queries over new injections (the paper's policy).
	PrioritizeRecycled bool
}

// Scheduler is the composed Zero-Bubble Query Scheduler of Fig. 7a:
//
//	query loader → ➊ spread tree of Dispatchers (adaptive initial balance)
//	             → ➋ per-path Mergers joining recycled in-flight tasks
//	             → ➌ destination-routed butterfly (back-pressure aware)
//	             → per-pipeline FIFOs of depth ≥ 1 + 4·log2(N)
//
// Tasks carry their own destination (the pipeline owning the memory channel
// with their vertex's data); the scheduler's job is to keep every pipeline
// FIFO non-empty whenever matching work exists anywhere upstream.
type Scheduler[T any] struct {
	cfg SchedulerConfig

	loader   *hwsim.FIFO[T]
	recycled []*hwsim.FIFO[T]
	outputs  []*hwsim.FIFO[T]

	injected int64
	recycles int64
}

// NewScheduler builds the scheduler inside sim. dest maps a task to its
// required pipeline in [0, Pipelines).
func NewScheduler[T any](sim *hwsim.Sim, cfg SchedulerConfig, dest func(T) int) (*Scheduler[T], error) {
	n := cfg.Pipelines
	if _, err := log2(n); err != nil {
		return nil, err
	}
	if cfg.StageDepth == 0 {
		cfg.StageDepth = 4
	}
	if cfg.StageDepth < 1 {
		return nil, fmt.Errorf("sched: stage depth %d, want >= 1", cfg.StageDepth)
	}
	if cfg.OutputDepth == 0 {
		cfg.OutputDepth = queuing.PerPipelineDepth(n)
	}
	s := &Scheduler[T]{cfg: cfg}

	// ➊ Spread tree: 1 → N through log2(N) levels of Dispatchers.
	s.loader = hwsim.NewFIFO[T](sim, "sched.loader", cfg.StageDepth*2)
	level := []*hwsim.FIFO[T]{s.loader}
	for len(level) < n {
		next := make([]*hwsim.FIFO[T], 0, len(level)*2)
		for i, f := range level {
			o1 := hwsim.NewFIFO[T](sim, fmt.Sprintf("sched.spread%d.%d", len(level), 2*i), cfg.StageDepth)
			o2 := hwsim.NewFIFO[T](sim, fmt.Sprintf("sched.spread%d.%d", len(level), 2*i+1), cfg.StageDepth)
			NewDispatcher(sim, f, o1, o2)
			next = append(next, o1, o2)
		}
		level = next
	}

	// ➌ Destination router feeding the per-pipeline output FIFOs.
	router, err := NewRouter[T](sim, "sched.route", n, cfg.StageDepth, dest)
	if err != nil {
		return nil, err
	}

	// ➋ Per-path mergers: recycled tasks (in1, prioritized) join newly
	// spread tasks (in2) and enter the router.
	s.recycled = make([]*hwsim.FIFO[T], n)
	for i := 0; i < n; i++ {
		s.recycled[i] = hwsim.NewFIFO[T](sim, fmt.Sprintf("sched.recycle%d", i), cfg.StageDepth*2)
		m := NewMerger(sim, s.recycled[i], level[i], router.Inputs()[i])
		m.Prioritize = cfg.PrioritizeRecycled
	}

	// Output FIFOs sized per Theorem VI.1: drain the router into them.
	s.outputs = make([]*hwsim.FIFO[T], n)
	for i := 0; i < n; i++ {
		s.outputs[i] = hwsim.NewFIFO[T](sim, fmt.Sprintf("sched.out%d", i), cfg.OutputDepth)
		in := router.Outputs()[i]
		out := s.outputs[i]
		sim.Register(hwsim.ModuleFunc(func(now int64) {
			if !out.Full() {
				if v, ok := in.Pop(); ok {
					out.Push(v)
				}
			}
		}))
	}
	return s, nil
}

// Inject offers a new task from the query loader. It returns false under
// back-pressure (loader FIFO full this cycle).
func (s *Scheduler[T]) Inject(v T) bool {
	if s.loader.Push(v) {
		s.injected++
		return true
	}
	return false
}

// CanInject reports whether the loader FIFO has room this cycle.
func (s *Scheduler[T]) CanInject() bool { return !s.loader.Full() }

// Recycle returns an unfinished task from pipeline src back into the
// scheduler. It returns false under back-pressure; callers must retry next
// cycle (the paper sizes recycle paths so this cannot deadlock: a pipeline
// only recycles after popping, freeing a slot).
func (s *Scheduler[T]) Recycle(src int, v T) bool {
	if s.recycled[src].Push(v) {
		s.recycles++
		return true
	}
	return false
}

// Output returns pipeline i's task FIFO.
func (s *Scheduler[T]) Output(i int) *hwsim.FIFO[T] { return s.outputs[i] }

// Outputs returns all pipeline FIFOs.
func (s *Scheduler[T]) Outputs() []*hwsim.FIFO[T] { return s.outputs }

// OutputDepth reports the provisioned per-pipeline FIFO depth.
func (s *Scheduler[T]) OutputDepth() int { return s.cfg.OutputDepth }

// Injected returns the count of accepted loader injections.
func (s *Scheduler[T]) Injected() int64 { return s.injected }

// Recycled returns the count of accepted recycle returns.
func (s *Scheduler[T]) Recycled() int64 { return s.recycles }
