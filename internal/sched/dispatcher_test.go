package sched

import (
	"testing"

	"ridgewalker/internal/hwsim"
)

// drainAll pops every committed item from f into dst.
func drainAll(f *hwsim.FIFO[int], dst *[]int) {
	for {
		v, ok := f.Pop()
		if !ok {
			return
		}
		*dst = append(*dst, v)
	}
}

func TestDispatcherConservesAndAlternates(t *testing.T) {
	sim := hwsim.NewSim()
	in := hwsim.NewFIFO[int](sim, "in", 4)
	out1 := hwsim.NewFIFO[int](sim, "out1", 4)
	out2 := hwsim.NewFIFO[int](sim, "out2", 4)
	NewDispatcher(sim, in, out1, out2)

	const n = 200
	pushed := 0
	var got1, got2 []int
	for cycle := 0; cycle < 4*n; cycle++ {
		if pushed < n {
			if in.Push(pushed) {
				pushed++
			}
		}
		sim.Step()
		drainAll(out1, &got1)
		drainAll(out2, &got2)
	}
	if len(got1)+len(got2) != n {
		t.Fatalf("delivered %d+%d, want %d", len(got1), len(got2), n)
	}
	// With both outputs always drained, alternation splits evenly.
	if len(got1) != n/2 || len(got2) != n/2 {
		t.Fatalf("split %d/%d, want %d/%d", len(got1), len(got2), n/2, n/2)
	}
	// Conservation with no duplication.
	seen := make([]bool, n)
	for _, v := range append(got1, got2...) {
		if seen[v] {
			t.Fatalf("task %d duplicated", v)
		}
		seen[v] = true
	}
}

func TestDispatcherRoutesAroundBlockedOutput(t *testing.T) {
	sim := hwsim.NewSim()
	in := hwsim.NewFIFO[int](sim, "in", 4)
	out1 := hwsim.NewFIFO[int](sim, "out1", 2)
	out2 := hwsim.NewFIFO[int](sim, "out2", 64)
	NewDispatcher(sim, in, out1, out2)

	const n = 40
	pushed := 0
	var got2 []int
	for cycle := 0; cycle < 8*n; cycle++ {
		if pushed < n {
			if in.Push(pushed) {
				pushed++
			}
		}
		sim.Step()
		// Never drain out1: it fills and stays full.
		drainAll(out2, &got2)
	}
	// out1 absorbs at most its capacity; the rest must flow out2.
	if len(got2) < n-2 {
		t.Fatalf("out2 received %d, want >= %d with out1 blocked", len(got2), n-2)
	}
}

func TestDispatcherBlocksFairlyWhenBothFull(t *testing.T) {
	sim := hwsim.NewSim()
	in := hwsim.NewFIFO[int](sim, "in", 8)
	out1 := hwsim.NewFIFO[int](sim, "out1", 1)
	out2 := hwsim.NewFIFO[int](sim, "out2", 1)
	NewDispatcher(sim, in, out1, out2)
	for i := 0; i < 8; i++ {
		in.Push(i)
	}
	// Run without draining: exactly 2 tasks land (one per output), rest wait.
	for cycle := 0; cycle < 20; cycle++ {
		sim.Step()
	}
	if out1.Len()+out2.Len() != 2 {
		t.Fatalf("outputs hold %d+%d, want 1+1", out1.Len(), out2.Len())
	}
	// Drain both; everything eventually flows.
	var got []int
	for cycle := 0; cycle < 100 && len(got) < 8; cycle++ {
		sim.Step()
		drainAll(out1, &got)
		drainAll(out2, &got)
	}
	if len(got) != 8 {
		t.Fatalf("delivered %d/8 after unblocking", len(got))
	}
}

func TestMergerConservesFromBothInputs(t *testing.T) {
	sim := hwsim.NewSim()
	in1 := hwsim.NewFIFO[int](sim, "in1", 4)
	in2 := hwsim.NewFIFO[int](sim, "in2", 4)
	out := hwsim.NewFIFO[int](sim, "out", 4)
	NewMerger(sim, in1, in2, out)

	const n = 100 // per input; in1 carries 0..n-1, in2 carries n..2n-1
	p1, p2 := 0, 0
	var got []int
	for cycle := 0; cycle < 12*n; cycle++ {
		if p1 < n && in1.Push(p1) {
			p1++
		}
		if p2 < n && in2.Push(n+p2) {
			p2++
		}
		sim.Step()
		drainAll(out, &got)
	}
	if len(got) != 2*n {
		t.Fatalf("delivered %d, want %d", len(got), 2*n)
	}
	seen := make([]bool, 2*n)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("task %d duplicated", v)
		}
		seen[v] = true
	}
	// Per-input FIFO order must be preserved.
	last1, last2 := -1, -1
	for _, v := range got {
		if v < n {
			if v <= last1 {
				t.Fatalf("in1 order violated at %d", v)
			}
			last1 = v
		} else {
			if v <= last2 {
				t.Fatalf("in2 order violated at %d", v)
			}
			last2 = v
		}
	}
}

func TestMergerAlternatesUnderContention(t *testing.T) {
	sim := hwsim.NewSim()
	in1 := hwsim.NewFIFO[int](sim, "in1", 8)
	in2 := hwsim.NewFIFO[int](sim, "in2", 8)
	out := hwsim.NewFIFO[int](sim, "out", 2)
	NewMerger(sim, in1, in2, out)

	// Keep both inputs saturated; count per-source deliveries.
	count1, count2 := 0, 0
	for cycle := 0; cycle < 400; cycle++ {
		in1.Push(1)
		in2.Push(2)
		sim.Step()
		for {
			v, ok := out.Pop()
			if !ok {
				break
			}
			if v == 1 {
				count1++
			} else {
				count2++
			}
		}
	}
	if count1 == 0 || count2 == 0 {
		t.Fatalf("starvation: %d vs %d", count1, count2)
	}
	ratio := float64(count1) / float64(count1+count2)
	if ratio < 0.45 || ratio > 0.55 {
		t.Fatalf("unfair split under contention: %d vs %d", count1, count2)
	}
}

func TestMergerPrioritizeStarvesSecondInput(t *testing.T) {
	sim := hwsim.NewSim()
	in1 := hwsim.NewFIFO[int](sim, "in1", 8)
	in2 := hwsim.NewFIFO[int](sim, "in2", 8)
	out := hwsim.NewFIFO[int](sim, "out", 2)
	m := NewMerger(sim, in1, in2, out)
	m.Prioritize = true

	count1, count2 := 0, 0
	for cycle := 0; cycle < 200; cycle++ {
		in1.Push(1)
		in2.Push(2)
		sim.Step()
		for {
			v, ok := out.Pop()
			if !ok {
				break
			}
			if v == 1 {
				count1++
			} else {
				count2++
			}
		}
	}
	// in2 only gets through in the first cycles before in1 backlog builds.
	if count2 > 5 {
		t.Fatalf("prioritized merger let %d low-priority tasks through under full contention", count2)
	}
	if count1 < 150 {
		t.Fatalf("prioritized merger throughput too low: %d", count1)
	}
}

func TestMergerForwardsSingleInputAtFullRate(t *testing.T) {
	sim := hwsim.NewSim()
	in1 := hwsim.NewFIFO[int](sim, "in1", 4)
	in2 := hwsim.NewFIFO[int](sim, "in2", 4)
	out := hwsim.NewFIFO[int](sim, "out", 4)
	NewMerger(sim, in1, in2, out)
	delivered := 0
	for cycle := 0; cycle < 200; cycle++ {
		in2.Push(cycle)
		sim.Step()
		for {
			if _, ok := out.Pop(); !ok {
				break
			}
			delivered++
		}
	}
	// II=1 after 2-cycle fill.
	if delivered < 190 {
		t.Fatalf("single-input throughput %d/200, want II=1", delivered)
	}
}

func TestLog2(t *testing.T) {
	for n, want := range map[int]int{1: 0, 2: 1, 4: 2, 16: 4, 64: 6} {
		got, err := log2(n)
		if err != nil || got != want {
			t.Errorf("log2(%d) = (%d,%v), want %d", n, got, err, want)
		}
	}
	for _, n := range []int{0, -2, 3, 12} {
		if _, err := log2(n); err == nil {
			t.Errorf("log2(%d) accepted", n)
		}
	}
}
