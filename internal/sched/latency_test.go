package sched

import (
	"testing"

	"ridgewalker/internal/hwsim"
)

// TestDispatcherLatencyBound verifies the paper's timing claim: each
// Dispatcher is fully pipelined with a fixed latency of at most two cycles
// plus the FIFO register hop.
func TestDispatcherLatencyBound(t *testing.T) {
	sim := hwsim.NewSim()
	in := hwsim.NewFIFO[int](sim, "in", 4)
	out1 := hwsim.NewFIFO[int](sim, "out1", 4)
	out2 := hwsim.NewFIFO[int](sim, "out2", 4)
	NewDispatcher(sim, in, out1, out2)

	in.Push(42)
	arrival := int64(-1)
	for cycle := int64(0); cycle < 10; cycle++ {
		sim.Step()
		if _, ok := out1.Peek(); ok {
			arrival = cycle
			break
		}
		if _, ok := out2.Peek(); ok {
			arrival = cycle
			break
		}
	}
	if arrival < 0 {
		t.Fatal("task never emerged")
	}
	// Push at cycle 0 (visible cycle 1), register stage, output commit:
	// the task must be poppable within 3 cycles.
	if arrival > 3 {
		t.Fatalf("dispatcher latency %d cycles, want <= 3 (paper: 2-cycle element)", arrival)
	}
}

// TestMergerLatencyBound mirrors the dispatcher bound for the Merger.
func TestMergerLatencyBound(t *testing.T) {
	sim := hwsim.NewSim()
	in1 := hwsim.NewFIFO[int](sim, "in1", 4)
	in2 := hwsim.NewFIFO[int](sim, "in2", 4)
	out := hwsim.NewFIFO[int](sim, "out", 4)
	NewMerger(sim, in1, in2, out)

	in1.Push(7)
	arrival := int64(-1)
	for cycle := int64(0); cycle < 10; cycle++ {
		sim.Step()
		if _, ok := out.Peek(); ok {
			arrival = cycle
			break
		}
	}
	if arrival < 0 || arrival > 3 {
		t.Fatalf("merger latency %d cycles, want in [0,3]", arrival)
	}
}

// TestBalancerLatencyScalesWithLogN: the paper bounds balancer delay by
// 2·log2(N) elements; end-to-end latency should grow logarithmically, not
// linearly, with N.
func TestBalancerLatencyScalesWithLogN(t *testing.T) {
	measure := func(n int) int64 {
		sim := hwsim.NewSim()
		b, err := NewBalancer[int](sim, "b", n, 4)
		if err != nil {
			t.Fatal(err)
		}
		b.Inputs()[0].Push(1)
		for cycle := int64(0); cycle < 200; cycle++ {
			sim.Step()
			for _, out := range b.Outputs() {
				if _, ok := out.Peek(); ok {
					return cycle
				}
			}
		}
		t.Fatalf("task lost in %d-wire balancer", n)
		return -1
	}
	l4 := measure(4)
	l16 := measure(16)
	// log2(16)/log2(4) = 2: latency should roughly double, not quadruple.
	if l16 > 3*l4 {
		t.Fatalf("balancer latency not logarithmic: N=4 → %d, N=16 → %d", l4, l16)
	}
	// Sanity: per-stage cost ≤ ~5 cycles (2-cycle elements + FIFO hops).
	if l16 > 5*4*2 {
		t.Fatalf("N=16 balancer latency %d exceeds per-stage budget", l16)
	}
}

func TestBusyAccessors(t *testing.T) {
	sim := hwsim.NewSim()
	in := hwsim.NewFIFO[int](sim, "in", 4)
	out1 := hwsim.NewFIFO[int](sim, "out1", 4)
	out2 := hwsim.NewFIFO[int](sim, "out2", 4)
	d := NewDispatcher(sim, in, out1, out2)
	m := NewMerger(sim, out1, out2, hwsim.NewFIFO[int](sim, "o", 4))
	in.Push(1)
	for i := 0; i < 10; i++ {
		sim.Step()
	}
	if d.Busy().Busy == 0 {
		t.Fatal("dispatcher never recorded activity")
	}
	if m.Busy().Busy+m.Busy().Idle == 0 {
		t.Fatal("merger recorded no cycles")
	}
}
