package sched

import (
	"testing"

	"ridgewalker/internal/hwsim"
	"ridgewalker/internal/queuing"
	"ridgewalker/internal/rng"
)

// runClosedLoop drives a Scheduler with K circulating tasks: each consumer
// pops from its pipeline FIFO at the given service interval (in cycles),
// then recycles the task with a fresh uniform destination, for the given
// number of hops before the task retires. Returns per-consumer busy
// counters and total completed hops.
func runClosedLoop(t *testing.T, n, outputDepth, circulating, hopsPerTask, cycles, serviceInterval int) ([]hwsim.BusyCounter, int64) {
	t.Helper()
	sim := hwsim.NewSim()
	s, err := NewScheduler[task](sim, SchedulerConfig{
		Pipelines:          n,
		OutputDepth:        outputDepth,
		PrioritizeRecycled: true,
	}, func(v task) int { return v.dest })
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	injected := 0
	var hops int64
	remaining := make(map[int]int) // task id → hops left
	busy := make([]hwsim.BusyCounter, n)
	inFlight := 0
	type pend struct {
		src int
		v   task
	}
	var retries []pend

	for cycle := 0; cycle < cycles; cycle++ {
		if injected < circulating && s.CanInject() {
			if s.Inject(task{id: injected, dest: r.Intn(n)}) {
				remaining[injected] = hopsPerTask
				injected++
				inFlight++
			}
		}
		// Retry recycles rejected in earlier cycles.
		kept := retries[:0]
		for _, p := range retries {
			if !s.Recycle(p.src, p.v) {
				kept = append(kept, p)
			}
		}
		retries = kept

		sim.Step()
		warm := cycle > cycles/4
		for i := 0; i < n; i++ {
			if cycle%serviceInterval != 0 {
				continue // consumer busy with previous task
			}
			v, ok := s.Output(i).Pop()
			if warm {
				busy[i].Record(ok)
			}
			if !ok {
				continue
			}
			hops++
			remaining[v.id]--
			if remaining[v.id] > 0 {
				nv := task{id: v.id, dest: r.Intn(n)}
				if !s.Recycle(i, nv) {
					retries = append(retries, pend{src: i, v: nv})
				}
			} else {
				inFlight--
			}
		}
		if inFlight == 0 && injected == circulating {
			break
		}
	}
	return busy, hops
}

func TestSchedulerHighUtilizationAtProvisionedDepth(t *testing.T) {
	// N=4 pipelines at the paper's deployed per-pipeline FIFO depth (65,
	// §VIII-F), abundant circulating tasks, consumers at service interval 2
	// (memory-bound pipelines). Destination-constrained routing leaves a
	// small residual imbalance — the paper's own measured utilization is
	// 81–88%, not 100% — so assert bubbles stay in single digits.
	const n = 4
	busy, hops := runClosedLoop(t, n, 65, 256, 1<<30, 8000, 2)
	if hops < 1000 {
		t.Fatalf("only %d hops completed; scheduler not flowing", hops)
	}
	total := 0.0
	for _, b := range busy {
		total += b.BubbleRatio()
	}
	if mean := total / n; mean > 0.06 {
		t.Errorf("mean bubble ratio %.3f at deployed depth, want < 0.06", mean)
	}
}

func TestSchedulerDepthMonotonicallyRemovesBubbles(t *testing.T) {
	// Sweeping the per-pipeline FIFO from starved (1) through Theorem VI.1
	// minimum (9 for N=4) to the deployed 65 must monotonically (within
	// noise) reduce bubbles, and the starved configuration must be clearly
	// worse — the mechanism Theorem VI.1 formalizes.
	const n = 4
	ratios := make([]float64, 0, 3)
	for _, depth := range []int{1, 9, 65} {
		busy, _ := runClosedLoop(t, n, depth, 256, 1<<30, 8000, 2)
		total := 0.0
		for _, b := range busy {
			total += b.BubbleRatio()
		}
		ratios = append(ratios, total/n)
	}
	if ratios[0] < ratios[1] || ratios[1] < ratios[2] {
		t.Fatalf("bubble ratios %v not decreasing with depth", ratios)
	}
	if ratios[0] < 1.5*ratios[2] {
		t.Fatalf("starved depth (%.3f) not clearly worse than deployed depth (%.3f)", ratios[0], ratios[2])
	}
}

func TestSchedulerDefaultDepthMatchesTheorem(t *testing.T) {
	sim := hwsim.NewSim()
	s, err := NewScheduler[task](sim, SchedulerConfig{Pipelines: 16}, func(v task) int { return v.dest })
	if err != nil {
		t.Fatal(err)
	}
	want := queuing.PerPipelineDepth(16) // 1 + 4·log2(16) = 17
	if s.OutputDepth() != want {
		t.Fatalf("OutputDepth = %d, want %d", s.OutputDepth(), want)
	}
}

func TestSchedulerAllTasksRetire(t *testing.T) {
	// Closed loop with finite hops: every injected task must complete all
	// its hops (conservation through spread tree + mergers + router).
	const n = 8
	const circulating = 64
	const hopsPerTask = 20
	busy, hops := runClosedLoop(t, n, 0, circulating, hopsPerTask, 200000, 1)
	_ = busy
	if hops != circulating*hopsPerTask {
		t.Fatalf("completed %d hops, want %d", hops, circulating*hopsPerTask)
	}
}

func TestSchedulerRejectsBadConfig(t *testing.T) {
	sim := hwsim.NewSim()
	if _, err := NewScheduler[task](sim, SchedulerConfig{Pipelines: 3}, func(v task) int { return 0 }); err == nil {
		t.Error("accepted non-power-of-two pipelines")
	}
	if _, err := NewScheduler[task](sim, SchedulerConfig{Pipelines: 4, StageDepth: -1}, func(v task) int { return 0 }); err == nil {
		t.Error("accepted negative stage depth")
	}
}

func TestSchedulerInjectBackpressure(t *testing.T) {
	sim := hwsim.NewSim()
	s, err := NewScheduler[task](sim, SchedulerConfig{Pipelines: 2}, func(v task) int { return v.dest })
	if err != nil {
		t.Fatal(err)
	}
	// Without stepping the sim, the loader FIFO fills and rejects.
	accepted := 0
	for i := 0; i < 100; i++ {
		if s.Inject(task{id: i}) {
			accepted++
		}
	}
	if accepted >= 100 {
		t.Fatal("loader accepted unbounded injections without backpressure")
	}
	if s.Injected() != int64(accepted) {
		t.Fatalf("Injected() = %d, want %d", s.Injected(), accepted)
	}
}
