package sched

import (
	"testing"
	"testing/quick"

	"ridgewalker/internal/hwsim"
	"ridgewalker/internal/rng"
)

type task struct {
	id   int
	dest int
}

func TestBalancerConservation(t *testing.T) {
	sim := hwsim.NewSim()
	const n = 4
	b, err := NewBalancer[int](sim, "bal", n, 4)
	if err != nil {
		t.Fatal(err)
	}
	const total = 400
	pushed := 0
	var got []int
	for cycle := 0; cycle < 40*total; cycle++ {
		if pushed < total {
			// Feed round-robin across inputs.
			if b.Inputs()[pushed%n].Push(pushed) {
				pushed++
			}
		}
		sim.Step()
		for _, out := range b.Outputs() {
			for {
				v, ok := out.Pop()
				if !ok {
					break
				}
				got = append(got, v)
			}
		}
		if len(got) == total {
			break
		}
	}
	if len(got) != total {
		t.Fatalf("delivered %d/%d", len(got), total)
	}
	seen := make([]bool, total)
	for _, v := range got {
		if seen[v] {
			t.Fatalf("task %d duplicated", v)
		}
		seen[v] = true
	}
}

func TestBalancerSpreadsSingleHotInput(t *testing.T) {
	sim := hwsim.NewSim()
	const n = 8
	b, err := NewBalancer[int](sim, "bal", n, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	const total = 800
	pushed := 0
	for cycle := 0; cycle < 20*total && sum(counts) < total; cycle++ {
		if pushed < total && b.Inputs()[0].Push(pushed) {
			pushed++
		}
		sim.Step()
		for i, out := range b.Outputs() {
			for {
				if _, ok := out.Pop(); !ok {
					break
				}
				counts[i]++
			}
		}
	}
	if sum(counts) != total {
		t.Fatalf("delivered %d/%d", sum(counts), total)
	}
	// All traffic entered on wire 0; the butterfly must spread it across
	// all outputs within ~2x of even.
	want := total / n
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("output %d got %d, want ~%d (counts %v)", i, c, want, counts)
		}
	}
}

func TestBalancerRoutesAroundThrottledOutput(t *testing.T) {
	// Fig. 7b scenario: one slow output; the network must keep total
	// throughput high by shifting load to fast outputs.
	sim := hwsim.NewSim()
	const n = 4
	b, err := NewBalancer[int](sim, "bal", n, 4)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	slowDelivered := 0
	pushed := 0
	const cycles = 2000
	for cycle := 0; cycle < cycles; cycle++ {
		for i := 0; i < n; i++ {
			if b.Inputs()[i].Push(pushed) {
				pushed++
			}
		}
		sim.Step()
		for i, out := range b.Outputs() {
			// Output 2 drains once every 25 cycles; others every cycle.
			if i == 2 && cycle%25 != 0 {
				continue
			}
			if _, ok := out.Pop(); ok {
				delivered++
				if i == 2 {
					slowDelivered++
				}
			}
		}
	}
	// Fast outputs sustain close to 1/cycle each: ≥ 2.5 of 3 fast wires.
	if float64(delivered-slowDelivered) < 0.8*3*cycles {
		t.Fatalf("fast outputs delivered %d in %d cycles; load not rebalanced", delivered-slowDelivered, cycles)
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestRouterDeliversToDestination(t *testing.T) {
	sim := hwsim.NewSim()
	const n = 8
	r, err := NewRouter[task](sim, "rt", n, 4, func(v task) int { return v.dest })
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(11)
	const total = 600
	pushed := 0
	received := make(map[int]int) // id → output wire
	for cycle := 0; cycle < 100*total && len(received) < total; cycle++ {
		if pushed < total {
			in := src.Intn(n)
			if r.Inputs()[in].Push(task{id: pushed, dest: src.Intn(n)}) {
				pushed++
			}
		}
		sim.Step()
		for i, out := range r.Outputs() {
			for {
				v, ok := out.Pop()
				if !ok {
					break
				}
				if v.dest != i {
					t.Fatalf("task %d with dest %d emerged on wire %d", v.id, v.dest, i)
				}
				if _, dup := received[v.id]; dup {
					t.Fatalf("task %d duplicated", v.id)
				}
				received[v.id] = i
			}
		}
	}
	if len(received) != total {
		t.Fatalf("delivered %d/%d", len(received), total)
	}
}

// TestRouterPropertyAllSizes checks destination routing and conservation
// across network sizes and random workloads.
func TestRouterPropertyAllSizes(t *testing.T) {
	f := func(seed uint64, sizeRaw, nRaw uint8) bool {
		n := 1 << (sizeRaw%4 + 1) // 2,4,8,16
		total := int(nRaw%60) + 1
		sim := hwsim.NewSim()
		r, err := NewRouter[task](sim, "rt", n, 4, func(v task) int { return v.dest })
		if err != nil {
			return false
		}
		src := rng.New(seed)
		pushed := 0
		delivered := 0
		ok := true
		for cycle := 0; cycle < 200*total+500 && delivered < total; cycle++ {
			if pushed < total {
				if r.Inputs()[src.Intn(n)].Push(task{id: pushed, dest: src.Intn(n)}) {
					pushed++
				}
			}
			sim.Step()
			for i, out := range r.Outputs() {
				for {
					v, popOK := out.Pop()
					if !popOK {
						break
					}
					if v.dest != i {
						ok = false
					}
					delivered++
				}
			}
		}
		return ok && delivered == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRouterSingleWire(t *testing.T) {
	sim := hwsim.NewSim()
	r, err := NewRouter[task](sim, "rt", 1, 2, func(v task) int { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	r.Inputs()[0].Push(task{id: 1})
	sim.Step()
	if v, ok := r.Outputs()[0].Pop(); !ok || v.id != 1 {
		t.Fatalf("single-wire router failed: (%v,%v)", v, ok)
	}
}

func TestNetworksRejectNonPowerOfTwo(t *testing.T) {
	sim := hwsim.NewSim()
	if _, err := NewBalancer[int](sim, "b", 3, 4); err == nil {
		t.Error("balancer accepted n=3")
	}
	if _, err := NewRouter[int](sim, "r", 6, 4, func(int) int { return 0 }); err == nil {
		t.Error("router accepted n=6")
	}
	if _, err := NewBalancer[int](sim, "b", 4, 0); err == nil {
		t.Error("balancer accepted depth 0")
	}
}
