package walk

import (
	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/sampling"
)

// EmitFunc receives one finished walk from a Pipeline: the query's
// position in the input batch, the query itself, the visited path
// (including the start vertex), and the hop count. The path aliases a
// recycled lane buffer and is valid only during the call.
type EmitFunc func(index int, q Query, path []graph.VertexID, steps int64) error

// Pipeline drives a query batch through a Cohort: it keeps the cohort's
// lanes full by injecting pending queries as walks retire, so the
// Gather/Sample/Move stages always have a cohort's worth of independent
// row fetches in flight. One Pipeline serves one goroutine.
//
// Like Walker, a Pipeline owns preallocated per-lane path buffers and RNG
// streams that are recycled across queries, so the steady-state hot path
// performs zero allocations per step — Run itself allocates nothing (the
// emit trampoline and slot pools are built at construction).
//
// Output is byte-identical to Run's for the same seed: each walk draws
// from its own query-keyed stream in Advance's order, so cohort size and
// lane interleaving never change a trajectory, only emission order.
type Pipeline struct {
	g       *graph.CSR
	cfg     Config
	cohort  *Cohort
	src     *rng.Source
	states  []State
	rngs    []rng.Stream
	queryOf []Query // per-slot originating query
	indexOf []int   // per-slot batch index
	freeTop int
	freeIDs []int32

	// Per-Run fields, referenced by the preallocated retire closure.
	emit     EmitFunc
	retireFn func(tag int32) error
	steps    int64
	err      error // first emit error; once set, emit is never called again

	// stop, when set, is polled once per cohort pass; when it reports
	// true, Run abandons in-flight lanes and returns ErrStopped.
	stop func() bool
}

// NewPipeline builds a pipelined stepper for g under cfg with the given
// cohort size, constructing its own sampler.
func NewPipeline(g *graph.CSR, cfg Config, size int) (*Pipeline, error) {
	s, err := BuildSampler(g, cfg)
	if err != nil {
		return nil, err
	}
	return NewPipelineWithSampler(g, cfg, s, size)
}

// NewPipelineWithSampler builds a pipelined stepper sharing a previously
// built sampler (safe: samplers are read-only in use).
func NewPipelineWithSampler(g *graph.CSR, cfg Config, s sampling.Sampler, size int) (*Pipeline, error) {
	if err := cfg.Validate(g); err != nil {
		return nil, err
	}
	c, err := NewCohort(g, cfg, s, size)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		g:       g,
		cfg:     cfg,
		cohort:  c,
		src:     rng.NewSource(cfg.Seed),
		states:  make([]State, size),
		rngs:    make([]rng.Stream, size),
		queryOf: make([]Query, size),
		indexOf: make([]int, size),
		freeIDs: make([]int32, size),
	}
	for i := range p.states {
		p.states[i].Path = make([]graph.VertexID, 0, cfg.WalkLength+1)
	}
	p.resetFree()
	p.retireFn = func(tag int32) error {
		st := &p.states[tag]
		p.steps += int64(st.Step)
		// Several lanes can retire in one Step pass; once an emit has
		// failed, later retirees are recycled without another emit call
		// (matching the sequential engines' stop-on-error contract).
		if p.err == nil {
			if err := p.emit(p.indexOf[tag], p.queryOf[tag], st.Path, int64(st.Step)); err != nil {
				p.err = err
			}
		}
		p.freeIDs[p.freeTop] = tag
		p.freeTop++
		return p.err
	}
	return p, nil
}

func (p *Pipeline) resetFree() {
	for i := range p.freeIDs {
		p.freeIDs[i] = int32(i)
	}
	p.freeTop = len(p.freeIDs)
}

// CohortSize returns the pipeline's lane count.
func (p *Pipeline) CohortSize() int { return p.cohort.Cap() }

// SetLayout routes the cohort's Gather stage through a degree-aware
// graph.Layout (see Cohort.SetLayout). Call before the first Run.
func (p *Pipeline) SetLayout(l *graph.Layout) { p.cohort.SetLayout(l) }

// SetTiered routes the cohort's Gather stage through a tiered store
// (see Cohort.SetTiered). Call before the first Run.
func (p *Pipeline) SetTiered(t *graph.Tiered) { p.cohort.SetTiered(t) }

// SetSnapshot makes the cohort serve an epoch snapshot of a versioned
// graph (see Cohort.SetSnapshot). Call before the first Run.
func (p *Pipeline) SetSnapshot(snap *graph.Snapshot) { p.cohort.SetSnapshot(snap) }

// SetStop installs a cooperative cancellation hook, polled once per
// cohort pass (every lane takes at most one hop between polls). When it
// reports true, Run abandons its in-flight lanes and returns ErrStopped,
// shedding the batch's remaining steps. nil clears the hook. The hook is
// retained across Runs; engines that share a Pipeline between batches
// should install the current batch's hook before each Run.
func (p *Pipeline) SetStop(stop func() bool) { p.stop = stop }

// Run executes the query batch, delivering each finished walk through
// emit. Delivery order is unspecified (lanes retire as they terminate);
// the batch index passed to emit identifies each walk. It returns the
// total hop count and the first emit error, after which remaining
// in-flight lanes are abandoned.
func (p *Pipeline) Run(queries []Query, emit EmitFunc) (int64, error) {
	p.emit = emit
	p.steps = 0
	p.err = nil
	next := 0
	for {
		// Inject: fill free lanes with pending queries.
		for p.freeTop > 0 && next < len(queries) {
			p.freeTop--
			slot := p.freeIDs[p.freeTop]
			q := queries[next]
			p.queryOf[slot] = q
			p.indexOf[slot] = next
			next++
			p.src.StreamInto(uint64(q.ID), &p.rngs[slot])
			p.states[slot].Start(q)
			p.cohort.Admit(&p.states[slot], &p.rngs[slot], slot)
		}
		if p.cohort.Len() == 0 {
			p.emit = nil
			return p.steps, nil
		}
		if p.stop != nil && p.stop() {
			// Cooperative cancellation checkpoint: shed the remaining steps
			// of every in-flight lane. Walks already emitted stand; the
			// abandoned lanes' partial paths are discarded.
			p.abandon()
			p.emit = nil
			return p.steps, ErrStopped
		}
		if err := p.cohort.Step(nil, nil, p.retireFn); err != nil {
			// Drain the cohort without emitting: lanes must not keep stale
			// State pointers across Runs.
			p.abandon()
			p.emit = nil
			return p.steps, err
		}
	}
}

// abandon empties the cohort after an emit error.
func (p *Pipeline) abandon() {
	for p.cohort.n > 0 {
		p.cohort.remove(0)
	}
	p.resetFree()
}
