package walk

import (
	"fmt"
	"reflect"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
)

// pipelineTestGraph builds a weighted, labeled graph with sinks and
// self-loops — the irregularities that exercise every retire path of the
// cohort stepper.
func pipelineTestGraph(t testing.TB) *graph.CSR {
	t.Helper()
	const n = 500
	r := rng.New(321)
	var edges []graph.Edge
	for i := 0; i < 6*n; i++ {
		src := graph.VertexID(r.Intn(n))
		dst := graph.VertexID(r.Intn(n))
		if src < 30 {
			continue // sinks
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	for v := 40; v < n; v += 17 {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v)})
	}
	g, err := graph.Build(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	g.AttachLabels(3)
	return g
}

// TestPipelineMatchesRun is the pipelined stepper's golden-equivalence
// matrix: every algorithm × cohort sizes {1, 3, 64} must reproduce Run's
// paths byte-identically, including when the cohort is larger than the
// batch and when a pipeline is reused across batches.
func TestPipelineMatchesRun(t *testing.T) {
	g := pipelineTestGraph(t)
	for _, alg := range Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := DefaultConfig(alg)
			cfg.WalkLength = 24
			cfg.Seed = 5
			qs, err := RandomQueries(g, cfg, 300, 9)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Run(g, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{1, 3, 64, len(qs) + 10} {
				t.Run(fmt.Sprintf("cohort=%d", size), func(t *testing.T) {
					p, err := NewPipeline(g, cfg, size)
					if err != nil {
						t.Fatal(err)
					}
					for rep := 0; rep < 2; rep++ { // reuse across batches
						paths := make([][]graph.VertexID, len(qs))
						steps, err := p.Run(qs, func(i int, _ Query, path []graph.VertexID, _ int64) error {
							if paths[i] != nil {
								return fmt.Errorf("index %d emitted twice", i)
							}
							cp := make([]graph.VertexID, len(path))
							copy(cp, path)
							paths[i] = cp
							return nil
						})
						if err != nil {
							t.Fatal(err)
						}
						if steps != want.Steps {
							t.Fatalf("rep %d: steps %d, want %d", rep, steps, want.Steps)
						}
						if !reflect.DeepEqual(paths, want.Paths) {
							t.Fatalf("rep %d: pipelined paths differ from Run", rep)
						}
					}
				})
			}
		})
	}
}

// TestPipelineEmitError pins error handling: a failing emit aborts the
// run, and the pipeline is reusable (and still correct) afterwards.
func TestPipelineEmitError(t *testing.T) {
	g := pipelineTestGraph(t)
	cfg := DefaultConfig(URW)
	cfg.WalkLength = 12
	cfg.Seed = 3
	qs, err := RandomQueries(g, cfg, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(g, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	boom := fmt.Errorf("boom")
	n := 0
	if _, err := p.Run(qs, func(int, Query, []graph.VertexID, int64) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	}); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 3 {
		t.Fatalf("emit called %d times, want exactly 3 (no emits after an error)", n)
	}
	want, err := Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]graph.VertexID, len(qs))
	steps, err := p.Run(qs, func(i int, _ Query, path []graph.VertexID, _ int64) error {
		cp := make([]graph.VertexID, len(path))
		copy(cp, path)
		got[i] = cp
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != want.Steps || !reflect.DeepEqual(got, want.Paths) {
		t.Fatal("pipeline not reusable after emit error")
	}
}

// TestPipelineRunAllocFree pins the tentpole's allocation claim at the
// stepper level: a Run over a reused Pipeline performs zero allocations,
// for the single-draw, alias, and rejection sampler families.
func TestPipelineRunAllocFree(t *testing.T) {
	g := pipelineTestGraph(t)
	for _, alg := range []Algorithm{URW, PPR, DeepWalk, Node2Vec} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := DefaultConfig(alg)
			cfg.WalkLength = 16
			cfg.Seed = 7
			qs, err := RandomQueries(g, cfg, 64, 11)
			if err != nil {
				t.Fatal(err)
			}
			p, err := NewPipeline(g, cfg, 16)
			if err != nil {
				t.Fatal(err)
			}
			emit := func(int, Query, []graph.VertexID, int64) error { return nil }
			// Warm once (lazy growth, if any, happens here).
			if _, err := p.Run(qs, emit); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(10, func() {
				if _, err := p.Run(qs, emit); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("pipelined Run allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestCohortAdmitBounds pins cohort capacity behavior.
func TestCohortAdmitBounds(t *testing.T) {
	g := pipelineTestGraph(t)
	cfg := DefaultConfig(URW)
	cfg.WalkLength = 4
	s, err := BuildSampler(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCohort(g, cfg, s, 0); err == nil {
		t.Fatal("zero-capacity cohort accepted")
	}
	c, err := NewCohort(g, cfg, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	var st [3]State
	var r [3]rng.Stream
	for i := range st {
		st[i].Start(Query{ID: uint32(i), Start: 100})
	}
	if !c.Admit(&st[0], &r[0], 0) || !c.Admit(&st[1], &r[1], 1) {
		t.Fatal("admission below capacity refused")
	}
	if c.Admit(&st[2], &r[2], 2) {
		t.Fatal("admission above capacity accepted")
	}
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("Len=%d Cap=%d, want 2/2", c.Len(), c.Cap())
	}
}
