package walk

import (
	"math"
	"testing"

	"ridgewalker/internal/graph"
)

func urwConfig(length int) Config {
	return Config{Algorithm: URW, WalkLength: length, Seed: 7}
}

func TestURWPathsValid(t *testing.T) {
	g := graph.SmallTestGraph()
	qs, err := RandomQueries(g, urwConfig(10), 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, qs, urwConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePaths(g, res, urwConfig(10)); err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps taken")
	}
}

func TestURWFixedLengthOnSinklessGraph(t *testing.T) {
	// SmallTestGraph has no zero-out-degree vertices, so every URW runs the
	// full length.
	g := graph.SmallTestGraph()
	cfg := urwConfig(20)
	qs, _ := RandomQueries(g, cfg, 30, 2)
	res, err := Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Paths {
		if len(p) != 21 {
			t.Fatalf("query %d path length %d, want 21", i, len(p))
		}
	}
	if res.Steps != 30*20 {
		t.Fatalf("Steps = %d, want %d", res.Steps, 30*20)
	}
}

func TestURWTerminatesAtSink(t *testing.T) {
	// 0→1→2, 2 has no out-edges.
	g, err := graph.Build(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := urwConfig(10)
	res, err := Run(g, []Query{{ID: 0, Start: 0}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Paths[0]
	if len(p) != 3 || p[2] != 2 {
		t.Fatalf("path = %v, want [0 1 2]", p)
	}
}

func TestPPRLengthsGeometric(t *testing.T) {
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(PPR)
	cfg.WalkLength = 1000 // effectively unbounded; alpha terminates
	cfg.Seed = 3
	qs, _ := RandomQueries(g, cfg, 4000, 4)
	res, err := Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Hop count per walk ~ Geometric(alpha) with mean 1/alpha = 5.
	mean := float64(res.Steps) / float64(len(qs))
	if math.Abs(mean-5) > 0.3 {
		t.Fatalf("PPR mean walk length %v, want ~5 (alpha=0.2)", mean)
	}
}

func TestDeepWalkRequiresWeights(t *testing.T) {
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(DeepWalk)
	if _, err := Run(g, []Query{{Start: 0}}, cfg); err == nil {
		t.Fatal("DeepWalk ran on unweighted graph")
	}
}

func TestDeepWalkBiasedTowardHeavyEdges(t *testing.T) {
	// Two neighbors with weights 1 and 9: the heavy one must dominate.
	g, err := graph.Build(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 0, Dst: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	g.Weights = []float32{1, 9}
	cfg := Config{Algorithm: DeepWalk, WalkLength: 1, Seed: 5}
	qs := make([]Query, 20000)
	for i := range qs {
		qs[i] = Query{ID: uint32(i), Start: 0}
	}
	res, err := Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	heavy := 0
	for _, p := range res.Paths {
		if len(p) > 1 && p[1] == 2 {
			heavy++
		}
	}
	frac := float64(heavy) / float64(len(qs))
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("heavy edge fraction %v, want ~0.9", frac)
	}
}

func TestNode2VecPathsValid(t *testing.T) {
	g := graph.SmallTestGraph()
	cfg := DefaultConfig(Node2Vec)
	cfg.WalkLength = 15
	qs, _ := RandomQueries(g, cfg, 40, 6)
	res, err := Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePaths(g, res, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNode2VecWeightedUsesReservoir(t *testing.T) {
	g := graph.SmallTestGraph()
	g.AttachWeights()
	cfg := DefaultConfig(Node2Vec)
	s, err := BuildSampler(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.RPEntryBits() != 128 {
		t.Fatalf("weighted Node2Vec RP entry = %d bits, want 128 (reservoir)", s.RPEntryBits())
	}
}

func TestMetaPathRespectsSchema(t *testing.T) {
	g := graph.SmallTestGraph()
	g.AttachWeights()
	g.AttachLabels(3)
	cfg := DefaultConfig(MetaPath)
	cfg.WalkLength = 12
	qs, err := RandomQueries(g, cfg, 30, 7)
	if err != nil {
		t.Skip("no start vertices with schema label in tiny graph")
	}
	res, err := Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Paths {
		for j, v := range p {
			if want := cfg.Schema[j%len(cfg.Schema)]; g.Label(v) != want {
				t.Fatalf("query %d position %d: label %d, want %d", i, j, g.Label(v), want)
			}
		}
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Balanced(10, 8, 9))
	if err != nil {
		t.Fatal(err)
	}
	cfg := urwConfig(30)
	qs, _ := RandomQueries(g, cfg, 200, 8)
	seq, err := Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(g, qs, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Steps != par.Steps {
		t.Fatalf("steps differ: %d vs %d", seq.Steps, par.Steps)
	}
	for i := range seq.Paths {
		if len(seq.Paths[i]) != len(par.Paths[i]) {
			t.Fatalf("query %d path length differs", i)
		}
		for j := range seq.Paths[i] {
			if seq.Paths[i][j] != par.Paths[i][j] {
				t.Fatalf("query %d position %d differs", i, j)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := graph.SmallTestGraph()
	bad := []Config{
		{Algorithm: URW, WalkLength: 0},
		{Algorithm: PPR, WalkLength: 10, Alpha: 1.5},
		{Algorithm: Node2Vec, WalkLength: 10, P: 0, Q: 1},
		{Algorithm: MetaPath, WalkLength: 10},
		{Algorithm: Algorithm(99), WalkLength: 10},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(g); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRandomQueriesSkipSinks(t *testing.T) {
	g, err := graph.Build(3, []graph.Edge{{Src: 0, Dst: 2}}, true)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := RandomQueries(g, urwConfig(5), 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Start != 0 {
			t.Fatalf("query starts at sink/isolated vertex %d", q.Start)
		}
	}
}

func TestVisitCounts(t *testing.T) {
	g := graph.SmallTestGraph()
	res := &Result{Paths: [][]graph.VertexID{{0, 1, 0}, {2}}}
	counts := VisitCounts(g, res)
	if counts[0] != 2 || counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestValidatePathsCatchesNonEdges(t *testing.T) {
	g := graph.SmallTestGraph()
	res := &Result{Paths: [][]graph.VertexID{{0, 2}}} // 0→2 not an edge
	if err := ValidatePaths(g, res, urwConfig(5)); err == nil {
		t.Fatal("invalid path accepted")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, a := range Algorithms {
		if a.String() == "" || a.String()[0] == 'A' {
			t.Errorf("Algorithm(%d).String() = %q", int(a), a.String())
		}
	}
}
