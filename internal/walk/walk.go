// Package walk is the software reference GRW engine: a straightforward,
// correct implementation of Algorithm II.1 for every GRW variant the paper
// evaluates (URW, PPR, DeepWalk, Node2Vec, MetaPath).
//
// It serves three roles:
//   - the golden model against which the cycle-level accelerator's walk
//     statistics are validated,
//   - the workload/query substrate shared by the accelerator and all
//     baseline models, and
//   - a ThunderRW-style multi-core CPU engine in its own right
//     (RunParallel), usable by downstream applications directly.
package walk

import (
	"errors"
	"fmt"
	"sync"

	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/sampling"
)

// ErrStopped is returned by Pipeline.Run when a stop hook installed with
// SetStop fires mid-batch: in-flight lanes are abandoned and the batch's
// remaining steps are shed. Engines map it to their own cancellation
// cause (typically the context error).
var ErrStopped = errors.New("walk: stopped")

// Algorithm enumerates the GRW variants of the paper's evaluation (§VIII-A).
type Algorithm int

const (
	// URW is the unbiased uniform random walk.
	URW Algorithm = iota
	// PPR is the personalized-PageRank walk: uniform steps with teleport
	// termination probability Alpha per hop.
	PPR
	// DeepWalk uses weight-proportional (alias-sampled) neighbor selection.
	DeepWalk
	// Node2Vec uses second-order biased selection with parameters P and Q;
	// rejection sampling on unweighted graphs, reservoir on weighted.
	Node2Vec
	// MetaPath constrains each hop to a vertex-type schema on labeled
	// graphs, terminating early when no neighbor matches.
	MetaPath
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case URW:
		return "URW"
	case PPR:
		return "PPR"
	case DeepWalk:
		return "DeepWalk"
	case Node2Vec:
		return "Node2Vec"
	case MetaPath:
		return "MetaPath"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Algorithms lists all supported variants.
var Algorithms = []Algorithm{URW, PPR, DeepWalk, Node2Vec, MetaPath}

// Lane is a serving priority class. It is pure scheduling metadata: the
// Service drains interactive lanes ahead of bulk under weighted-round-
// robin, but a walk's trajectory never depends on its lane.
type Lane uint8

const (
	// LaneInteractive is the latency-sensitive lane (default): user-facing
	// queries that want the tightest tail latency.
	LaneInteractive Lane = iota
	// LaneBulk is the throughput lane: corpus jobs that tolerate queueing
	// behind interactive traffic.
	LaneBulk
)

// String names the lane for metrics keys.
func (l Lane) String() string {
	switch l {
	case LaneInteractive:
		return "interactive"
	case LaneBulk:
		return "bulk"
	default:
		return fmt.Sprintf("Lane(%d)", int(l))
	}
}

// Config selects the GRW variant and its parameters.
type Config struct {
	Algorithm Algorithm
	// WalkLength is the maximum number of hops per query (paper: 80).
	WalkLength int
	// Alpha is PPR's per-hop teleport (termination) probability.
	Alpha float64
	// P, Q are Node2Vec's return and in-out bias factors (paper: 2, 0.5).
	P, Q float64
	// Schema is MetaPath's cyclic vertex-type sequence.
	Schema []uint8
	// Seed drives all sampling deterministically.
	Seed uint64
	// Lane is the serving priority class (interactive vs. bulk). Serving
	// metadata only: it steers admission and drain order in the Service
	// and never affects a trajectory.
	Lane Lane
	// Tenant identifies the submitting tenant for quota accounting and
	// fairness. Serving metadata only; empty means the default tenant.
	Tenant string
}

// DefaultConfig returns the paper's standard configuration for alg.
func DefaultConfig(alg Algorithm) Config {
	cfg := Config{Algorithm: alg, WalkLength: 80, Seed: 1}
	switch alg {
	case PPR:
		cfg.Alpha = 0.2
	case Node2Vec:
		cfg.P, cfg.Q = 2, 0.5
	case MetaPath:
		cfg.Schema = []uint8{0, 1, 2}
	}
	return cfg
}

// Validate checks parameter sanity against the target graph.
func (c Config) Validate(g *graph.CSR) error {
	if c.WalkLength < 1 {
		return fmt.Errorf("walk: walk length %d, want >= 1", c.WalkLength)
	}
	switch c.Algorithm {
	case URW:
	case PPR:
		// The negated predicate also rejects NaN, which would otherwise
		// slip through both comparisons.
		if !(c.Alpha >= 0 && c.Alpha < 1) {
			return fmt.Errorf("walk: PPR alpha %v, want [0,1)", c.Alpha)
		}
	case DeepWalk:
		if !g.Weighted() {
			return fmt.Errorf("walk: DeepWalk requires a weighted graph (alias sampling)")
		}
	case Node2Vec:
		// NaN must fail here: p and q key the sampler registry, and a NaN
		// map key is unfindable and undeletable — every open would leak a
		// registry entry. The negated predicate rejects it.
		if !(c.P > 0) || !(c.Q > 0) {
			return fmt.Errorf("walk: Node2Vec p=%v q=%v, want > 0", c.P, c.Q)
		}
	case MetaPath:
		if g.Labels == nil {
			return fmt.Errorf("walk: MetaPath requires a labeled graph")
		}
		if len(c.Schema) == 0 {
			return fmt.Errorf("walk: MetaPath requires a schema")
		}
	default:
		return fmt.Errorf("walk: unknown algorithm %d", int(c.Algorithm))
	}
	if c.Lane > LaneBulk {
		return fmt.Errorf("walk: unknown lane %d", int(c.Lane))
	}
	return nil
}

// SamplerSpec maps a validated walk configuration to the parameters that
// actually determine its Table-I sampler — the registry key. Walk length,
// α, the seed, and the serving metadata (lane, tenant) never reach a
// sampler, so configurations differing only in those map to the same spec
// (and share one registry sampler).
func SamplerSpec(g *graph.CSR, cfg Config) (sampling.Spec, error) {
	if err := cfg.Validate(g); err != nil {
		return sampling.Spec{}, err
	}
	switch cfg.Algorithm {
	case URW, PPR:
		return sampling.Spec{Kind: sampling.KindUniform}, nil
	case DeepWalk:
		return sampling.Spec{Kind: sampling.KindAlias, Weighted: true}, nil
	case Node2Vec:
		if g.Weighted() {
			return sampling.Spec{Kind: sampling.KindReservoir, Weighted: true, P: cfg.P, Q: cfg.Q}, nil
		}
		return sampling.Spec{Kind: sampling.KindRejection, P: cfg.P, Q: cfg.Q}, nil
	case MetaPath:
		return sampling.Spec{Kind: sampling.KindMetaPath, Weighted: g.Weighted(), Schema: string(cfg.Schema)}, nil
	}
	return sampling.Spec{}, fmt.Errorf("walk: unknown algorithm %d", int(cfg.Algorithm))
}

// BuildSampler constructs a private Table-I sampler for the configured
// algorithm. Long-lived sessions should prefer AcquireSampler, which
// shares the (potentially O(E)) sampler state through the registry.
func BuildSampler(g *graph.CSR, cfg Config) (sampling.Sampler, error) {
	if err := fault.Check(fault.SamplerBuild); err != nil {
		return nil, err
	}
	spec, err := SamplerSpec(g, cfg)
	if err != nil {
		return nil, err
	}
	return spec.Build(g)
}

// AcquireSampler borrows the configured algorithm's sampler from the
// process-wide sampler registry, building it on first use and sharing it
// with every other session whose configuration maps to the same spec.
// Release the ref when the borrowing session closes.
func AcquireSampler(g *graph.CSR, cfg Config) (*sampling.SamplerRef, error) {
	spec, err := SamplerSpec(g, cfg)
	if err != nil {
		return nil, err
	}
	return sampling.DefaultRegistry().Acquire(g, spec)
}

// SamplerSpecTiered is SamplerSpec under a sampler-side hot-tier byte
// budget: algorithms backed by a prebuilt O(E) store (DeepWalk's alias
// rows) get the tiered store with that budget keyed into their spec;
// the parametric samplers are returned unchanged — their spec must not
// carry the budget, or sessions that could share them would not.
func SamplerSpecTiered(g *graph.CSR, cfg Config, budget int64) (sampling.Spec, error) {
	spec, err := SamplerSpec(g, cfg)
	if err != nil {
		return spec, err
	}
	if spec.Kind == sampling.KindAlias && budget != 0 {
		spec.TierBudget = budget
	}
	return spec, nil
}

// AcquireSamplerTiered is AcquireSampler under a sampler-side hot-tier
// budget (see SamplerSpecTiered). A zero budget is exactly
// AcquireSampler.
func AcquireSamplerTiered(g *graph.CSR, cfg Config, budget int64) (*sampling.SamplerRef, error) {
	spec, err := SamplerSpecTiered(g, cfg, budget)
	if err != nil {
		return nil, err
	}
	return sampling.DefaultRegistry().Acquire(g, spec)
}

// AcquireSamplerSnap is AcquireSampler for an epoch snapshot of a
// versioned graph: parametric samplers resolve to the base graph's
// shared entry, while alias sampling gets a per-epoch sampler derived
// incrementally from the base arenas (only the snapshot's dirty rows are
// rebuilt — see sampling.Registry.AcquireSnapshot). Release the ref when
// the borrowing session closes.
func AcquireSamplerSnap(snap *graph.Snapshot, cfg Config) (*sampling.SamplerRef, error) {
	spec, err := SamplerSpec(snap.Graph(), cfg)
	if err != nil {
		return nil, err
	}
	return sampling.DefaultRegistry().AcquireSnapshot(snap, spec)
}

// TierAccess reports which row components cfg's sampler reads through a
// tiered view: needRow false means the sampler consumes only a degree
// and one drawn slot per hop (uniform draws by index, alias draws from
// its own store), which lets engines take the slot-decode fast path;
// needW false means weight rows are never read and their decode can be
// skipped. Pass the result to graph.TierView.SetAccess.
func TierAccess(g *graph.CSR, cfg Config) (needRow, needW bool, err error) {
	spec, err := SamplerSpec(g, cfg)
	if err != nil {
		return true, true, err
	}
	switch spec.Kind {
	case sampling.KindUniform, sampling.KindAlias:
		return false, false, nil
	}
	return true, spec.Weighted, nil
}

// Query is one random-walk request.
type Query struct {
	ID    uint32
	Start graph.VertexID
}

// RandomQueries draws n start vertices uniformly from vertices with
// outgoing edges (for MetaPath, from vertices labeled Schema[0]).
func RandomQueries(g *graph.CSR, cfg Config, n int, seed uint64) ([]Query, error) {
	if n < 1 {
		return nil, fmt.Errorf("walk: query count %d, want >= 1", n)
	}
	var pool []graph.VertexID
	for v := 0; v < g.NumVertices; v++ {
		id := graph.VertexID(v)
		if g.Degree(id) == 0 {
			continue
		}
		if cfg.Algorithm == MetaPath && g.Label(id) != cfg.Schema[0] {
			continue
		}
		pool = append(pool, id)
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("walk: no eligible start vertices")
	}
	r := rng.New(seed)
	qs := make([]Query, n)
	for i := range qs {
		qs[i] = Query{ID: uint32(i), Start: pool[r.Intn(len(pool))]}
	}
	return qs, nil
}

// Result aggregates the outcome of a query batch.
type Result struct {
	// Paths[i] is query i's visited-vertex sequence, starting with the
	// start vertex.
	Paths [][]graph.VertexID
	// Steps is the total number of hops taken across all queries — the
	// numerator of the paper's MStep/s metric.
	Steps int64
}

// Run executes all queries sequentially and deterministically.
func Run(g *graph.CSR, queries []Query, cfg Config) (*Result, error) {
	s, err := BuildSampler(g, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Paths: make([][]graph.VertexID, len(queries))}
	src := rng.NewSource(cfg.Seed)
	for i, q := range queries {
		r := src.Stream(uint64(q.ID))
		path, steps := walkOne(g, s, cfg, q, r)
		res.Paths[i] = path
		res.Steps += steps
	}
	return res, nil
}

// RunParallel executes queries across the given number of goroutines. The
// per-query RNG streams make the result independent of scheduling: the
// output equals Run's output for the same seed.
func RunParallel(g *graph.CSR, queries []Query, cfg Config, workers int) (*Result, error) {
	if workers < 1 {
		return nil, fmt.Errorf("walk: workers %d, want >= 1", workers)
	}
	s, err := BuildSampler(g, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{Paths: make([][]graph.VertexID, len(queries))}
	var steps int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(queries) + workers - 1) / workers
	src := rng.NewSource(cfg.Seed)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, len(queries))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var local int64
			for i := lo; i < hi; i++ {
				r := src.Stream(uint64(queries[i].ID))
				path, st := walkOne(g, s, cfg, queries[i], r)
				res.Paths[i] = path
				local += st
			}
			mu.Lock()
			steps += local
			mu.Unlock()
		}(lo, hi)
	}
	wg.Wait()
	res.Steps = steps
	return res, nil
}

// State is the resumable per-walk state: everything a single query's walk
// needs besides the graph, sampler, configuration, and RNG stream. Engines
// that interleave or migrate in-flight walks (the sharded engine) carry a
// State per walker and advance it hop by hop with Advance; the batch
// engines here drive the same primitive in a tight loop, so every engine
// takes byte-identical trajectories for the same RNG stream.
type State struct {
	// Cur is the vertex the walk currently stands on (Path's last entry).
	Cur graph.VertexID
	// Prev is the previously visited vertex; meaningful only when HasPrev
	// (second-order samplers condition on it).
	Prev    graph.VertexID
	HasPrev bool
	// Step is the number of hops taken so far (the next hop's index) —
	// also the walk's step tally for batch aggregation.
	Step int
	// Path is the visited-vertex sequence including the start vertex. Start
	// reuses its backing array, so a State recycled across queries with
	// capacity WalkLength+1 walks allocation-free.
	Path []graph.VertexID
}

// Start resets the state to the beginning of q's walk, reusing Path's
// backing array.
func (st *State) Start(q Query) {
	st.Cur = q.Start
	st.Prev = 0
	st.HasPrev = false
	st.Step = 0
	st.Path = append(st.Path[:0], q.Start)
}

// Advance takes one hop of the walk, drawing from r exactly as the batch
// engines do. It returns false when the walk has terminated — walk length
// reached, zero out-degree (Fig. 1b), no selectable neighbor (MetaPath
// schema miss), or PPR teleport — after which the state must not be
// advanced again.
func Advance(g *graph.CSR, s sampling.Sampler, cfg Config, st *State, r *rng.Stream) bool {
	if st.Step >= cfg.WalkLength {
		return false
	}
	row := g.Neighbors(st.Cur)
	if len(row) == 0 {
		return false // zero outgoing edges: immediate termination (Fig. 1b)
	}
	res := s.Sample(g, sampling.Context{Cur: st.Cur, Prev: st.Prev, HasPrev: st.HasPrev, Deg: int32(len(row)), Step: st.Step}, r)
	if res.Index < 0 {
		return false // no selectable neighbor (MetaPath schema miss)
	}
	next := row[res.Index]
	st.Prev, st.HasPrev = st.Cur, true
	st.Cur = next
	st.Path = append(st.Path, next)
	st.Step++
	if cfg.Algorithm == PPR && r.Float64() < cfg.Alpha {
		return false // teleport: the walk restarts, ending this query
	}
	return st.Step < cfg.WalkLength
}

// AdvanceView is Advance over a tiered graph store and/or an epoch
// snapshot: the current row is read through mem.Snap's overlay when the
// vertex is dirty for the serving epoch, through tv (hot arena or cached
// cold-row decode) otherwise, and staged into mem, the caller-owned
// sampling.RowView the sampler reads instead of the CSR. One mem lives
// per worker and is reused across hops, so the view costs no
// allocations. With tv == nil and no snapshot it is exactly Advance —
// flat engines keep their unchanged zero-overhead path.
func AdvanceView(g *graph.CSR, tv *graph.TierView, mem *sampling.RowView, s sampling.Sampler, cfg Config, st *State, r *rng.Stream) bool {
	var snap *graph.Snapshot
	if mem != nil {
		snap = mem.Snap
	}
	if tv == nil && snap == nil {
		return Advance(g, s, cfg, st, r)
	}
	if st.Step >= cfg.WalkLength {
		return false
	}
	var next graph.VertexID
	if snap != nil && snap.Dirty(st.Cur) {
		// Overlay path: the serving epoch's merged row replaces the base
		// row entirely (a bit set by a later epoch falls back to the base
		// row inside MergedRow, keeping this branch trajectory-neutral).
		row, wts := snap.MergedRow(st.Cur)
		if len(row) == 0 {
			return false // zero outgoing edges: immediate termination (Fig. 1b)
		}
		mem.Row, mem.Wts = row, wts
		if tv != nil {
			mem.Tier = tv
		}
		res := s.Sample(g, sampling.Context{Cur: st.Cur, Prev: st.Prev, HasPrev: st.HasPrev, Deg: int32(len(row)), Step: st.Step, Mem: mem}, r)
		if res.Index < 0 {
			return false // no selectable neighbor (MetaPath schema miss)
		}
		next = row[res.Index]
	} else if tv == nil {
		// Flat store under a snapshot, clean row: stage the base row so
		// second-order probes of dirty *other* rows route through mem.Snap.
		row := g.Neighbors(st.Cur)
		if len(row) == 0 {
			return false // zero outgoing edges: immediate termination (Fig. 1b)
		}
		mem.Row = row
		if g.Weighted() {
			mem.Wts = g.NeighborWeights(st.Cur)
		} else {
			mem.Wts = nil
		}
		res := s.Sample(g, sampling.Context{Cur: st.Cur, Prev: st.Prev, HasPrev: st.HasPrev, Deg: int32(len(row)), Step: st.Step, Mem: mem}, r)
		if res.Index < 0 {
			return false // no selectable neighbor (MetaPath schema miss)
		}
		next = row[res.Index]
	} else if !tv.NeedRow() {
		// Slot fast path (uniform and alias kinds, see TierAccess): the
		// sampler consumes only the degree and the walk only the drawn
		// neighbor, so cold rows decode one block-bounded slot instead of
		// materializing.
		t := tv.Tiered()
		off, deg, hot := t.Locate(st.Cur)
		if deg == 0 {
			return false // zero outgoing edges: immediate termination (Fig. 1b)
		}
		res := s.Sample(g, sampling.Context{Cur: st.Cur, Prev: st.Prev, HasPrev: st.HasPrev, Deg: deg, Step: st.Step}, r)
		if res.Index < 0 {
			return false
		}
		if hot {
			next = t.HotArena()[off+int64(res.Index)]
		} else {
			next = t.ColdEntryAt(st.Cur, off, int32(res.Index))
		}
	} else {
		row, wts := tv.RowAndWeights(st.Cur)
		if len(row) == 0 {
			return false // zero outgoing edges: immediate termination (Fig. 1b)
		}
		mem.Row, mem.Wts, mem.Tier = row, wts, tv
		res := s.Sample(g, sampling.Context{Cur: st.Cur, Prev: st.Prev, HasPrev: st.HasPrev, Deg: int32(len(row)), Step: st.Step, Mem: mem}, r)
		if res.Index < 0 {
			return false // no selectable neighbor (MetaPath schema miss)
		}
		next = row[res.Index]
	}
	st.Prev, st.HasPrev = st.Cur, true
	st.Cur = next
	st.Path = append(st.Path, next)
	st.Step++
	if cfg.Algorithm == PPR && r.Float64() < cfg.Alpha {
		return false // teleport: the walk restarts, ending this query
	}
	return st.Step < cfg.WalkLength
}

// walkOne runs a single query, returning the visited path (including the
// start vertex) and the number of hops taken.
func walkOne(g *graph.CSR, s sampling.Sampler, cfg Config, q Query, r *rng.Stream) ([]graph.VertexID, int64) {
	return walkInto(g, s, cfg, q, r, make([]graph.VertexID, 0, cfg.WalkLength+1))
}

// walkInto runs a single query, appending the visited path (including the
// start vertex) to path[:0] and returning it with the number of hops taken.
// Passing a buffer with capacity WalkLength+1 makes the walk allocation-free.
func walkInto(g *graph.CSR, s sampling.Sampler, cfg Config, q Query, r *rng.Stream, path []graph.VertexID) ([]graph.VertexID, int64) {
	st := State{Path: path}
	st.Start(q)
	for Advance(g, s, cfg, &st, r) {
	}
	return st.Path, int64(st.Step)
}

// Walker is a reusable single-walk executor: it owns a path buffer and an
// RNG stream that are recycled across queries, so the steady-state hot path
// performs zero allocations per step (and zero per query). One Walker serves
// one goroutine; create one per worker and share the sampler, which is safe
// for concurrent use.
//
// The slice returned by Walk aliases the internal buffer and is only valid
// until the next Walk call; callers that retain paths must copy them.
type Walker struct {
	g       *graph.CSR
	sampler sampling.Sampler
	cfg     Config
	src     *rng.Source
	r       rng.Stream
	buf     []graph.VertexID
	// tv, when set, routes row reads through a tiered store's per-worker
	// view; mem is the staged row view handed to the sampler.
	tv  *graph.TierView
	mem sampling.RowView
}

// NewWalker builds a walker for g under cfg, constructing its own sampler.
func NewWalker(g *graph.CSR, cfg Config) (*Walker, error) {
	s, err := BuildSampler(g, cfg)
	if err != nil {
		return nil, err
	}
	return NewWalkerWithSampler(g, cfg, s), nil
}

// NewWalkerWithSampler builds a walker sharing a previously built sampler
// (alias tables and schema state are read-only and safe to share across
// walkers).
func NewWalkerWithSampler(g *graph.CSR, cfg Config, s sampling.Sampler) *Walker {
	return &Walker{
		g:       g,
		sampler: s,
		cfg:     cfg,
		src:     rng.NewSource(cfg.Seed),
		buf:     make([]graph.VertexID, 0, cfg.WalkLength+1),
	}
}

// SetTierView makes the walker read neighbor rows through a tiered
// store's per-worker view (the view must be private to this walker;
// build one per worker with graph.NewTierView). Because a tiered store
// is content-identical to its CSR, trajectories are unaffected. Call
// before the first Walk; nil restores direct CSR reads.
func (w *Walker) SetTierView(tv *graph.TierView) {
	w.tv = tv
	if tv == nil {
		return
	}
	// Narrow the view to what this walker's sampler reads (cfg validated
	// at construction, so TierAccess cannot fail here).
	if needRow, needW, err := TierAccess(w.g, w.cfg); err == nil {
		tv.SetAccess(needRow, needW)
	}
}

// SetSnapshot makes the walker serve an epoch snapshot of a versioned
// graph: rows dirty for the snapshot's epoch are read from its merged
// overlay (and second-order probes route through it) instead of the base
// CSR the walker was built over, which must be snap.Graph(). Call before
// the first Walk; nil restores base-only reads.
func (w *Walker) SetSnapshot(snap *graph.Snapshot) { w.mem.Snap = snap }

// Walk executes one query. The per-query RNG stream is derived from the
// query ID exactly as Run does, so a Walker's output is byte-identical to
// Run's for the same seed regardless of execution order. The returned path
// is reused by the next call.
func (w *Walker) Walk(q Query) ([]graph.VertexID, int64) {
	w.src.StreamInto(uint64(q.ID), &w.r)
	st := State{Path: w.buf}
	st.Start(q)
	for AdvanceView(w.g, w.tv, &w.mem, w.sampler, w.cfg, &st, &w.r) {
	}
	w.buf = st.Path
	return st.Path, int64(st.Step)
}

// VisitCounts tallies how often each vertex appears across all paths —
// the statistic used to compare engines for distributional equivalence.
func VisitCounts(g *graph.CSR, res *Result) []int64 {
	counts := make([]int64, g.NumVertices)
	for _, p := range res.Paths {
		for _, v := range p {
			counts[v]++
		}
	}
	return counts
}

// ValidatePaths checks that every consecutive pair in every path is an edge
// of g and that no path exceeds the configured length.
func ValidatePaths(g *graph.CSR, res *Result, cfg Config) error {
	for i, p := range res.Paths {
		if len(p) == 0 {
			return fmt.Errorf("walk: query %d has empty path", i)
		}
		if len(p) > cfg.WalkLength+1 {
			return fmt.Errorf("walk: query %d path length %d exceeds %d", i, len(p), cfg.WalkLength+1)
		}
		for j := 1; j < len(p); j++ {
			if !g.HasEdge(p[j-1], p[j]) {
				return fmt.Errorf("walk: query %d hop %d: %d→%d is not an edge", i, j, p[j-1], p[j])
			}
		}
	}
	return nil
}
