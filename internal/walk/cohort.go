package walk

import (
	"fmt"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/sampling"
)

// Lane phases: where a walker stands in the step pipeline between passes.
const (
	// phaseGather: the walker needs its current vertex's row bounds before
	// it can sample.
	phaseGather = iota
	// phaseSample: row bounds are loaded; a sampling decision is in
	// progress (possibly parked mid-rejection across passes).
	phaseSample
)

// Per-pass lane fates, reset every pass.
const (
	fateNone = iota
	// fateMove: the Sample stage accepted a candidate this pass.
	fateMove
	// fateRetire: the walk terminated (length, sink, schema miss, teleport).
	fateRetire
	// fateDepart: the hop landed on a vertex the host rejected (sharded
	// engines: a vertex owned by another shard).
	fateDepart
)

// Cohort is the struct-of-arrays ring of in-flight walkers behind the
// step-interleaved execution pipeline. Each walk step is decomposed into
// three stages — Gather (fetch CSR row bounds, touch the neighbor slice so
// its cache lines are in flight), Sample (run the stage-resumable
// Propose/Accept decision), Move (advance state, extend the path, decide
// termination) — and each Step call runs every stage as a tight batched
// loop over all lanes. Row fetches for one walker therefore overlap the
// sampling and move work of the others, instead of every walker's row
// fetch being a dependent cache miss in a sequential Advance loop
// (ThunderRW's step interleaving, the software shadow of the paper's
// perfectly pipelined datapath).
//
// Hot per-walker fields live in parallel arrays; the lane only touches its
// backing State (path append) and RNG stream through pointers. All RNG
// draws come from the lane's own stream in exactly Advance's order, so
// trajectories are byte-identical to the sequential engines for the same
// seed no matter how lanes interleave.
//
// A Cohort performs no allocations after construction: lanes are
// preallocated at capacity, and path appends stay within the caller's
// preallocated buffers.
type Cohort struct {
	g       *graph.CSR
	lay     *graph.Layout // optional degree-aware row source
	sampler sampling.StagedSampler
	cfg     Config
	// scanRow marks samplers that read the whole neighbor row per
	// decision (reservoir, metapath): for those, Gather prefetches the
	// row's interior cache lines too. Single-element samplers (uniform,
	// alias, rejection) get only the row ends — touching more would burn
	// bandwidth on lines the Sample stage never reads.
	scanRow bool
	// aliasStore, set when the sampler is the flat alias store, lets
	// Gather touch the lane's locator word and alias-row boundary slots
	// alongside the CSR row locator, so the arena lines the Sample
	// stage's draw will hit are already in flight.
	aliasStore *sampling.AliasSampler
	// tieredAlias is aliasStore's counterpart for the tiered alias store
	// (kept as a second concrete field so the flat path's direct call
	// never becomes an interface dispatch).
	tieredAlias *sampling.TieredAlias

	n int // lanes in use; live lanes are always the prefix [0, n)

	// arenaCol caches the layout's hub arena backing store (or, under a
	// tiered store, the hot arena — the Move stage indexes both the same
	// way).
	arenaCol []graph.VertexID

	// Tiered-store state (SetTiered). The Gather stage decodes cold rows
	// into per-lane scratch that persists across passes — a lane parked
	// mid-rejection re-enters Sample without re-decoding — and the
	// Sample stage hands the sampler a per-lane RowView so it never
	// reads the CSR's Col (cold rows do not live there).
	tiered *graph.Tiered
	tview  *graph.TierView
	hotW   []float32 // tiered hot weight arena, parallel to arenaCol
	rowBuf [][]graph.VertexID
	wtsBuf [][]float32
	scr    []bool // lane's gathered row lives in rowBuf scratch
	mem    []sampling.RowView
	// Snapshot-overlay state (SetSnapshot). Lanes standing on a vertex
	// dirty for the serving epoch gather the snapshot's merged row into
	// ovRow/ovWts instead of any base-row source. The overlay rows are
	// snapshot-owned (never written through), deliberately separate from
	// rowBuf: DecodeRowInto writes into rowBuf in place and would corrupt
	// a snapshot row stored there.
	snap  *graph.Snapshot
	ovRow [][]graph.VertexID
	ovWts [][]float32
	ovl   []bool
	// needW marks full-row-scan samplers on weighted graphs: only those
	// read weight rows, so only they pay cold weight decode.
	needW bool
	// slotKind marks samplers that consume only the degree plus one drawn
	// neighbor slot per hop (uniform draws by index, alias draws from its
	// own store): under a tiered store their cold rows skip the full
	// decode and the Move stage reads the one slot straight from the
	// compressed arena.
	slotKind bool

	// Struct-of-arrays lane state. The gathered row is kept as scalar
	// locator fields (bounds plus which array) rather than a slice
	// header: the Gather loop's usefulness is how many independent row
	// misses it keeps in flight, and a leaner loop body keeps more
	// iterations inside the out-of-order window.
	cur, prev []graph.VertexID
	hasPrev   []bool
	step      []int32
	lo, hi    []int64 // gathered row bounds in Col or the hub arena
	arena     []bool  // gathered row lives in the hub arena
	cand      []sampling.Candidate
	phase     []uint8
	fate      []uint8
	tag       []int32
	st        []*State
	r         []*rng.Stream

	// touch sinks the Gather stage's cache-warming loads so the compiler
	// cannot discard them.
	touch uint64
}

// NewCohort builds a cohort of the given capacity. The sampler must be
// stage-resumable (every sampler built by BuildSampler is).
func NewCohort(g *graph.CSR, cfg Config, s sampling.Sampler, size int) (*Cohort, error) {
	if size < 1 {
		return nil, fmt.Errorf("walk: cohort size %d, want >= 1", size)
	}
	ss, ok := sampling.AsStaged(s)
	if !ok {
		return nil, fmt.Errorf("walk: sampler %T is not stage-resumable", s)
	}
	kind := ss.Kind()
	aliasStore, _ := s.(*sampling.AliasSampler)
	tieredAlias, _ := s.(*sampling.TieredAlias)
	return &Cohort{
		g:           g,
		sampler:     ss,
		cfg:         cfg,
		scanRow:     kind == sampling.KindReservoir || kind == sampling.KindMetaPath,
		slotKind:    kind == sampling.KindUniform || kind == sampling.KindAlias,
		aliasStore:  aliasStore,
		tieredAlias: tieredAlias,
		cur:         make([]graph.VertexID, size),
		prev:        make([]graph.VertexID, size),
		hasPrev:     make([]bool, size),
		step:        make([]int32, size),
		lo:          make([]int64, size),
		hi:          make([]int64, size),
		arena:       make([]bool, size),
		cand:        make([]sampling.Candidate, size),
		phase:       make([]uint8, size),
		fate:        make([]uint8, size),
		tag:         make([]int32, size),
		st:          make([]*State, size),
		r:           make([]*rng.Stream, size),
	}, nil
}

// SetLayout makes the Gather stage serve neighbor rows from a
// degree-aware graph.Layout instead of the raw CSR — hub rows come from
// the layout's compact cache-resident arena. The layout must be built
// over the cohort's graph; because a Layout is content-identical to its
// CSR, trajectories are unaffected. Call before the first Admit.
func (c *Cohort) SetLayout(l *graph.Layout) {
	c.lay = l
	if l != nil {
		c.arenaCol = l.Arena()
	} else {
		c.arenaCol = nil
	}
}

// SetTiered routes the Gather stage through a tiered graph store: hot
// rows come from the store's uncompressed arena exactly like a Layout's
// hub rows, cold rows are decoded row-at-a-time into per-lane scratch,
// and the Sample stage serves the sampler a staged RowView — Sample and
// Move never see which tier a row came from. Because a tiered store is
// content-identical to its CSR, trajectories are unaffected. SetTiered
// supersedes SetLayout (the layout is a rearrangement of the flat store
// the tiered store replaces). Call before the first Admit; nil restores
// direct CSR reads.
func (c *Cohort) SetTiered(t *graph.Tiered) {
	c.tiered = t
	if t == nil {
		c.tview = nil
		c.arenaCol = nil
		c.hotW = nil
		c.needW = false
		return
	}
	c.lay = nil
	c.tview = graph.NewTierView(t)
	c.arenaCol = t.HotArena()
	c.hotW = t.HotWeights()
	c.needW = c.scanRow && t.Graph().Weighted()
	if c.rowBuf == nil {
		size := len(c.cur)
		c.rowBuf = make([][]graph.VertexID, size)
		c.wtsBuf = make([][]float32, size)
		c.scr = make([]bool, size)
		c.mem = make([]sampling.RowView, size)
	}
}

// SetSnapshot makes the cohort serve an epoch snapshot of a versioned
// graph: lanes on vertices dirty for the snapshot's epoch gather the
// merged overlay row, and second-order probes route through the
// snapshot. The cohort's graph must be snap.Graph(). Composes with
// SetLayout and SetTiered (clean rows keep their fast paths). Call
// before the first Admit; nil restores base-only reads.
func (c *Cohort) SetSnapshot(snap *graph.Snapshot) {
	c.snap = snap
	if snap == nil {
		return
	}
	size := len(c.cur)
	if c.mem == nil {
		c.mem = make([]sampling.RowView, size)
	}
	if c.ovl == nil {
		c.ovRow = make([][]graph.VertexID, size)
		c.ovWts = make([][]float32, size)
		c.ovl = make([]bool, size)
	}
}

// ScratchBytes reports the decode-scratch high water across lanes and
// the per-cohort TierView cache — the "scratch" term of the tier
// accounting (0 for flat cohorts).
func (c *Cohort) ScratchBytes() int64 {
	var b int64
	for i := range c.rowBuf {
		b += int64(cap(c.rowBuf[i])) * 4
	}
	for i := range c.wtsBuf {
		b += int64(cap(c.wtsBuf[i])) * 4
	}
	if c.tview != nil {
		b += c.tview.ScratchBytes()
	}
	return b
}

// Len returns the number of occupied lanes.
func (c *Cohort) Len() int { return c.n }

// Cap returns the cohort capacity.
func (c *Cohort) Cap() int { return len(c.cur) }

// Admit installs an in-flight walk into a free lane, loading the hot
// fields from st (which may be freshly started or mid-walk, e.g. a walker
// migrating in from another shard). tag is returned through the Step
// callbacks when the walk leaves the cohort. It reports false when the
// cohort is full.
func (c *Cohort) Admit(st *State, r *rng.Stream, tag int32) bool {
	if c.n == len(c.cur) {
		return false
	}
	i := c.n
	c.n++
	c.cur[i] = st.Cur
	c.prev[i] = st.Prev
	c.hasPrev[i] = st.HasPrev
	c.step[i] = int32(st.Step)
	c.arena[i] = false
	if c.scr != nil {
		c.scr[i] = false
	}
	if c.ovl != nil {
		c.ovl[i] = false
	}
	c.cand[i] = sampling.Candidate{}
	c.phase[i] = phaseGather
	c.fate[i] = fateNone
	c.tag[i] = tag
	c.st[i] = st
	c.r[i] = r
	return true
}

// syncState writes lane i's hot fields back into its State, making the
// State self-contained again (the Path is already current: Move appends
// through the pointer).
func (c *Cohort) syncState(i int) {
	st := c.st[i]
	st.Cur = c.cur[i]
	st.Prev = c.prev[i]
	st.HasPrev = c.hasPrev[i]
	st.Step = int(c.step[i])
}

// remove frees lane i by moving the last live lane into it.
func (c *Cohort) remove(i int) {
	c.n--
	j := c.n
	if i != j {
		c.cur[i] = c.cur[j]
		c.prev[i] = c.prev[j]
		c.hasPrev[i] = c.hasPrev[j]
		c.step[i] = c.step[j]
		c.lo[i] = c.lo[j]
		c.hi[i] = c.hi[j]
		c.arena[i] = c.arena[j]
		c.cand[i] = c.cand[j]
		c.phase[i] = c.phase[j]
		c.fate[i] = c.fate[j]
		c.tag[i] = c.tag[j]
		c.st[i] = c.st[j]
		c.r[i] = c.r[j]
		if c.scr != nil {
			// Swap (not copy) the decode buffers so lane j keeps a
			// recyclable buffer — a parked lane's scratch row must follow
			// it to its new slot.
			c.rowBuf[i], c.rowBuf[j] = c.rowBuf[j], c.rowBuf[i]
			c.wtsBuf[i], c.wtsBuf[j] = c.wtsBuf[j], c.wtsBuf[i]
			c.scr[i] = c.scr[j]
		}
		if c.ovl != nil {
			// Plain copy: overlay rows alias snapshot storage, not
			// lane-owned buffers, so nothing needs swapping back.
			c.ovRow[i] = c.ovRow[j]
			c.ovWts[i] = c.ovWts[j]
			c.ovl[i] = c.ovl[j]
		}
	}
	c.st[j] = nil
	c.r[j] = nil
	if c.ovl != nil {
		c.ovRow[j] = nil
		c.ovWts[j] = nil
		c.ovl[j] = false
	}
}

// Reset drops every lane without syncing or emitting, leaving the cohort
// empty. Engines that pool cohorts across runs call it to clear lanes
// abandoned by an aborted run (stale State/RNG pointers must not leak
// into the next run).
func (c *Cohort) Reset() {
	for c.n > 0 {
		c.remove(0)
	}
}

// gatherOverlay is the Gather-stage hook for epoch snapshots (c.snap
// non-nil): when lane i's vertex is dirty for the serving epoch it
// stages the snapshot's merged row (zero-degree merged rows retire) and
// reports true — the caller skips its base-row gather. Clean vertices
// clear the lane's overlay mark and gather from the base as usual.
func (c *Cohort) gatherOverlay(i int, v graph.VertexID) bool {
	if !c.snap.Dirty(v) {
		c.ovl[i] = false
		return false
	}
	row, wts := c.snap.MergedRow(v)
	if len(row) == 0 {
		c.fate[i] = fateRetire // zero out-degree at this epoch
		return true
	}
	c.ovRow[i], c.ovWts[i] = row, wts
	c.ovl[i] = true
	c.lo[i], c.hi[i] = 0, int64(len(row))
	c.arena[i] = false
	if c.scr != nil {
		c.scr[i] = false
	}
	if c.aliasStore != nil {
		c.touch ^= c.aliasStore.TouchRow(v)
	}
	c.cand[i] = sampling.Candidate{}
	c.phase[i] = phaseSample
	return true
}

// Step runs one Gather→Sample→Move pass over every lane.
//
// depart, when non-nil, is consulted after each completed hop with the
// lane's tag and the walker's new vertex; returning true ejects the lane
// (the walk continues elsewhere — sharded engines use it for the owner
// check, recording the computed owner per tag so ejection reuses it).
// eject is then called with the lane's tag after its State has been
// synced, so the caller can hand the self-contained walker off safely.
// retire is called (also post-sync) for each walk that terminated; a
// non-nil retire error is returned after the pass completes (remaining
// callbacks still run, so the cohort stays consistent).
//
// Walkers parked mid-rejection stay in the Sample stage across passes and
// skip Gather — the stage-resumable re-entry that keeps Node2Vec's
// rejection loop from stalling the whole cohort.
func (c *Cohort) Step(
	depart func(tag int32, cur graph.VertexID) bool,
	eject func(tag int32),
	retire func(tag int32) error,
) error {
	g := c.g
	// Gather: fetch the neighbor row bounds for every lane entering a new
	// step and touch the row's ends (plus its interior cache lines for
	// full-row-scan samplers), so the row's lines are in flight before the
	// Sample stage reads them. Termination conditions that precede
	// sampling (walk length, sinks) are decided here, before any RNG
	// draw, exactly as Advance orders them. The loop is specialized on
	// the row source once per pass — the body must stay lean enough that
	// many lanes' independent misses overlap inside the out-of-order
	// window, which is the whole point of the stage.
	if c.tiered != nil {
		// Tiered variant: hot rows resolve to the uncompressed hot arena
		// (one locator load, like the Layout path); cold rows decode into
		// the lane's scratch, which persists across passes — a lane parked
		// mid-rejection re-enters Sample without re-decoding.
		for i := 0; i < c.n; i++ {
			if c.phase[i] != phaseGather {
				continue
			}
			if int(c.step[i]) >= c.cfg.WalkLength {
				c.fate[i] = fateRetire
				continue
			}
			v := c.cur[i]
			if c.snap != nil && c.gatherOverlay(i, v) {
				continue
			}
			off, deg, hot := c.tiered.Locate(v)
			if deg == 0 {
				c.fate[i] = fateRetire // zero out-degree: immediate termination
				continue
			}
			if hot {
				lo, hi := off, off+int64(deg)
				c.lo[i], c.hi[i] = lo, hi
				c.arena[i], c.scr[i] = true, false
				c.touch ^= uint64(c.arenaCol[lo]) ^ uint64(c.arenaCol[hi-1])
				if c.scanRow {
					for o := lo + 16; o < hi && o <= lo+112; o += 16 {
						c.touch ^= uint64(c.arenaCol[o])
					}
				}
			} else if c.slotKind {
				// Slot fast path: the sampler reads only the degree and the
				// Move stage one drawn slot, so the row stays encoded. lo
				// carries the cold byte offset; hi keeps Deg = hi-lo intact.
				c.lo[i], c.hi[i] = off, off+int64(deg)
				c.arena[i], c.scr[i] = false, false
				c.touch ^= c.tiered.TouchRow(v)
			} else {
				row, wts := c.tiered.DecodeRowInto(v, c.rowBuf[i], c.wtsBuf[i], c.needW)
				c.rowBuf[i] = row
				if c.needW {
					c.wtsBuf[i] = wts
				}
				c.lo[i], c.hi[i] = 0, int64(deg)
				c.arena[i], c.scr[i] = false, true
			}
			if c.aliasStore != nil {
				c.touch ^= c.aliasStore.TouchRow(v)
			}
			if c.tieredAlias != nil {
				c.touch ^= c.tieredAlias.TouchRow(v)
			}
			c.cand[i] = sampling.Candidate{}
			c.phase[i] = phaseSample
		}
	} else if c.lay == nil {
		for i := 0; i < c.n; i++ {
			if c.phase[i] != phaseGather {
				continue
			}
			if int(c.step[i]) >= c.cfg.WalkLength {
				c.fate[i] = fateRetire
				continue
			}
			v := c.cur[i]
			if c.snap != nil && c.gatherOverlay(i, v) {
				continue
			}
			lo, hi := g.RowPtr[v], g.RowPtr[v+1]
			if lo == hi {
				c.fate[i] = fateRetire // zero out-degree: immediate termination
				continue
			}
			c.lo[i], c.hi[i] = lo, hi
			c.touch ^= uint64(g.Col[lo]) ^ uint64(g.Col[hi-1])
			if c.scanRow {
				for off := lo + 16; off < hi && off <= lo+112; off += 16 {
					c.touch ^= uint64(g.Col[off])
				}
			}
			if c.aliasStore != nil {
				c.touch ^= c.aliasStore.TouchRow(v)
			}
			c.cand[i] = sampling.Candidate{}
			c.phase[i] = phaseSample
		}
	} else {
		// Layout variant: one packed-locator load replaces the two
		// row-pointer loads, and hub rows resolve to the compact arena.
		for i := 0; i < c.n; i++ {
			if c.phase[i] != phaseGather {
				continue
			}
			if int(c.step[i]) >= c.cfg.WalkLength {
				c.fate[i] = fateRetire
				continue
			}
			if c.snap != nil && c.gatherOverlay(i, c.cur[i]) {
				continue
			}
			lo, deg, inArena := c.lay.Locate(c.cur[i])
			if deg == 0 {
				c.fate[i] = fateRetire // zero out-degree: immediate termination
				continue
			}
			hi := lo + int64(deg)
			c.lo[i], c.hi[i] = lo, hi
			c.arena[i] = inArena
			base := g.Col
			if inArena {
				base = c.arenaCol
			}
			c.touch ^= uint64(base[lo]) ^ uint64(base[hi-1])
			if c.scanRow {
				for off := lo + 16; off < hi && off <= lo+112; off += 16 {
					c.touch ^= uint64(base[off])
				}
			}
			if c.aliasStore != nil {
				c.touch ^= c.aliasStore.TouchRow(c.cur[i])
			}
			c.cand[i] = sampling.Candidate{}
			c.phase[i] = phaseSample
		}
	}
	// Sample: one Propose (and, for two-phase samplers, one Accept) per
	// lane per pass. Rejected candidates park in the lane and re-enter
	// next pass instead of spinning inline.
	for i := 0; i < c.n; i++ {
		if c.fate[i] != fateNone || c.phase[i] != phaseSample {
			continue
		}
		ctx := sampling.Context{Cur: c.cur[i], Prev: c.prev[i], HasPrev: c.hasPrev[i], Deg: int32(c.hi[i] - c.lo[i]), Step: int(c.step[i])}
		if (c.tiered != nil || c.snap != nil) && !c.slotKind {
			// Stage the gathered row for the sampler: under a tiered store
			// it must not read the CSR's Col (cold rows do not live there),
			// and under a snapshot its second-order probes must route
			// through the overlay. Slot-kind samplers never read rows, so
			// their lanes skip the staging.
			m := &c.mem[i]
			switch {
			case c.ovl != nil && c.ovl[i]:
				m.Row, m.Wts = c.ovRow[i], c.ovWts[i]
			case c.scr != nil && c.scr[i]:
				m.Row, m.Wts = c.rowBuf[i], c.wtsBuf[i]
			case c.tiered != nil:
				m.Row = c.arenaCol[c.lo[i]:c.hi[i]]
				m.Wts = nil
				if c.needW {
					m.Wts = c.hotW[c.lo[i]:c.hi[i]]
				}
			default:
				// Flat or layout store, clean lane under a snapshot: stage
				// the base row by vertex (lo/hi may be arena offsets).
				m.Row = g.Neighbors(c.cur[i])
				m.Wts = nil
				if g.Weighted() {
					m.Wts = g.NeighborWeights(c.cur[i])
				}
			}
			m.Tier = c.tview
			m.Snap = c.snap
			ctx.Mem = m
		}
		cand := c.sampler.Propose(g, ctx, c.cand[i], c.r[i])
		c.cand[i] = cand
		if cand.Final || c.sampler.Accept(g, ctx, cand, c.r[i]) {
			if cand.Index < 0 {
				c.fate[i] = fateRetire // no selectable neighbor
			} else {
				c.fate[i] = fateMove
			}
		}
	}
	// Move: apply accepted hops, extend paths, and decide continuation —
	// the PPR teleport draw comes from the lane's stream immediately after
	// its accept draw, preserving Advance's per-walker order.
	for i := 0; i < c.n; i++ {
		if c.fate[i] != fateMove {
			continue
		}
		var next graph.VertexID
		if c.ovl != nil && c.ovl[i] {
			// Overlay lane: the merged row replaced every base source
			// (checked first — its arena/scr marks are cleared, so the
			// tiered branch below would misroute it to the cold arena).
			next = c.ovRow[i][c.cand[i].Index]
		} else if c.tiered != nil && !c.arena[i] && !c.scr[i] {
			// Slot-kind cold lane: the row never decoded; lo is the cold
			// byte offset (Gather's fast path).
			next = c.tiered.ColdEntryAt(c.cur[i], c.lo[i], int32(c.cand[i].Index))
		} else {
			base := g.Col
			if c.arena[i] {
				base = c.arenaCol
			}
			if c.scr != nil && c.scr[i] {
				base = c.rowBuf[i] // decoded cold row; lo is 0
			}
			next = base[c.lo[i]+int64(c.cand[i].Index)]
		}
		c.prev[i], c.hasPrev[i] = c.cur[i], true
		c.cur[i] = next
		st := c.st[i]
		st.Path = append(st.Path, next)
		c.step[i]++
		if c.cfg.Algorithm == PPR && c.r[i].Float64() < c.cfg.Alpha {
			c.fate[i] = fateRetire // teleport ends the query
			continue
		}
		if int(c.step[i]) >= c.cfg.WalkLength {
			c.fate[i] = fateRetire
			continue
		}
		if depart != nil && depart(c.tag[i], next) {
			c.fate[i] = fateDepart
			continue
		}
		c.fate[i] = fateNone
		c.phase[i] = phaseGather
	}
	// Sweep: sync departing/finished lanes back into their States, hand
	// them to the caller, and compact the ring.
	var err error
	for i := 0; i < c.n; {
		switch c.fate[i] {
		case fateRetire:
			c.syncState(i)
			t := c.tag[i]
			c.remove(i)
			if e := retire(t); e != nil && err == nil {
				err = e
			}
		case fateDepart:
			c.syncState(i)
			t := c.tag[i]
			c.remove(i)
			eject(t)
		default:
			i++
		}
	}
	return err
}
