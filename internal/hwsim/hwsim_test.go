package hwsim

import (
	"testing"
	"testing/quick"

	"ridgewalker/internal/rng"
)

func TestFIFORegisterSemantics(t *testing.T) {
	f := NewFIFO[int](nil, "f", 4)
	if !f.Push(1) {
		t.Fatal("push rejected on empty FIFO")
	}
	// Same cycle: not yet visible.
	if _, ok := f.Pop(); ok {
		t.Fatal("item visible in the cycle it was pushed")
	}
	f.CommitNow()
	v, ok := f.Pop()
	if !ok || v != 1 {
		t.Fatalf("Pop = (%v,%v), want (1,true)", v, ok)
	}
}

func TestFIFOOrderingAndCapacity(t *testing.T) {
	f := NewFIFO[int](nil, "f", 3)
	for i := 0; i < 3; i++ {
		if !f.Push(i) {
			t.Fatalf("push %d rejected below capacity", i)
		}
	}
	if f.Push(99) {
		t.Fatal("push accepted beyond capacity")
	}
	if f.Stats().FullStalls != 1 {
		t.Fatalf("FullStalls = %d, want 1", f.Stats().FullStalls)
	}
	f.CommitNow()
	for i := 0; i < 3; i++ {
		v, ok := f.Pop()
		if !ok || v != i {
			t.Fatalf("pop %d = (%v,%v)", i, v, ok)
		}
	}
	if _, ok := f.Pop(); ok {
		t.Fatal("pop succeeded on empty FIFO")
	}
}

func TestFIFOFullCountsPending(t *testing.T) {
	f := NewFIFO[int](nil, "f", 2)
	f.Push(1)
	f.Push(2)
	if !f.Full() {
		t.Fatal("FIFO with pending writes at capacity should report Full")
	}
}

func TestFIFOPeekDoesNotConsume(t *testing.T) {
	f := NewFIFO[int](nil, "f", 2)
	f.Push(7)
	f.CommitNow()
	v, ok := f.Peek()
	if !ok || v != 7 {
		t.Fatalf("Peek = (%v,%v)", v, ok)
	}
	if f.Len() != 1 {
		t.Fatal("Peek consumed the item")
	}
}

// TestFIFOConservationProperty drives a FIFO with a random push/pop schedule
// and checks that every pushed value pops exactly once, in order.
func TestFIFOConservationProperty(t *testing.T) {
	f := func(seed uint64, capRaw uint8, ops uint16) bool {
		capacity := int(capRaw%16) + 1
		fifo := NewFIFO[int](nil, "p", capacity)
		r := rng.New(seed)
		next := 0
		var popped []int
		for i := 0; i < int(ops%800); i++ {
			// Each iteration is one "cycle" with up to 2 pushes and pops.
			for j := 0; j < r.Intn(3); j++ {
				if fifo.Push(next) {
					next++
				}
			}
			for j := 0; j < r.Intn(3); j++ {
				if v, ok := fifo.Pop(); ok {
					popped = append(popped, v)
				}
			}
			fifo.CommitNow()
			if fifo.Len() > capacity {
				return false
			}
		}
		// Drain.
		fifo.CommitNow()
		for {
			v, ok := fifo.Pop()
			if !ok {
				break
			}
			popped = append(popped, v)
		}
		if len(popped) != next {
			return false
		}
		for i, v := range popped {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPipeLatencyExact(t *testing.T) {
	p := NewPipe[string](nil, 3)
	now := int64(10)
	if !p.Push("x", now) {
		t.Fatal("push rejected")
	}
	p.CommitNow()
	for c := now; c < now+3; c++ {
		if p.Ready(c) {
			t.Fatalf("item ready at cycle %d, latency 3 pushed at %d", c, now)
		}
	}
	v, ok := p.Pop(now + 3)
	if !ok || v != "x" {
		t.Fatalf("Pop = (%v,%v)", v, ok)
	}
}

func TestPipeIIOne(t *testing.T) {
	// With latency L, L items can be in flight; pushing one per cycle pops
	// one per cycle after the fill.
	const L = 4
	p := NewPipe[int](nil, L)
	pushed, popped := 0, 0
	for now := int64(0); now < 100; now++ {
		// Drain before fill, the discipline modules follow (see Pipe docs).
		if v, ok := p.Pop(now); ok {
			if v != popped {
				t.Fatalf("out of order: got %d want %d", v, popped)
			}
			popped++
		}
		if p.Push(pushed, now) {
			pushed++
		}
		p.CommitNow()
	}
	if pushed < 90 || popped < 90 {
		t.Fatalf("pipe did not sustain II=1: pushed %d popped %d in 100 cycles", pushed, popped)
	}
}

func TestPipeBackpressureWhenFull(t *testing.T) {
	p := NewPipe[int](nil, 2)
	if !p.Push(1, 0) || !p.Push(2, 0) {
		t.Fatal("pipe rejected pushes below capacity")
	}
	if p.Push(3, 0) {
		t.Fatal("pipe accepted push beyond latency-many in flight")
	}
}

func TestSimRunUntil(t *testing.T) {
	s := NewSim()
	count := 0
	s.Register(ModuleFunc(func(now int64) { count++ }))
	cycles, ok := s.RunUntil(func() bool { return count >= 10 }, 100)
	if !ok || cycles != 10 {
		t.Fatalf("RunUntil = (%d,%v), want (10,true)", cycles, ok)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %d, want 10", s.Now())
	}
}

func TestSimRunUntilTimeout(t *testing.T) {
	s := NewSim()
	cycles, ok := s.RunUntil(func() bool { return false }, 50)
	if ok || cycles != 50 {
		t.Fatalf("RunUntil = (%d,%v), want (50,false)", cycles, ok)
	}
}

func TestSimTicksInRegistrationOrder(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		s.Register(ModuleFunc(func(now int64) { order = append(order, i) }))
	}
	s.Step()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("tick order = %v", order)
	}
}

func TestSimCommitsFIFOsEachStep(t *testing.T) {
	s := NewSim()
	f := NewFIFO[int](s, "f", 4)
	s.Register(ModuleFunc(func(now int64) {
		if now == 0 {
			f.Push(42)
		}
	}))
	s.Step()
	if v, ok := f.Pop(); !ok || v != 42 {
		t.Fatalf("after step, Pop = (%v,%v)", v, ok)
	}
}

func TestBusyCounter(t *testing.T) {
	var b BusyCounter
	for i := 0; i < 60; i++ {
		b.Record(true)
	}
	for i := 0; i < 40; i++ {
		b.Record(false)
	}
	if r := b.BubbleRatio(); r != 0.4 {
		t.Fatalf("BubbleRatio = %v, want 0.4", r)
	}
	if u := b.Utilization(); u != 0.6 {
		t.Fatalf("Utilization = %v, want 0.6", u)
	}
}

func TestFIFOStatsOccupancy(t *testing.T) {
	f := NewFIFO[int](nil, "f", 8)
	f.Push(1)
	f.Push(2)
	f.CommitNow() // occupancy 2
	f.CommitNow() // occupancy 2
	f.Pop()
	f.Pop()
	f.CommitNow() // occupancy 0 → empty cycle
	st := f.Stats()
	if st.Cycles != 3 {
		t.Fatalf("Cycles = %d, want 3", st.Cycles)
	}
	if st.EmptyCycles != 1 {
		t.Fatalf("EmptyCycles = %d, want 1", st.EmptyCycles)
	}
	if got := st.MeanOccupancy(); got < 1.3 || got > 1.4 {
		t.Fatalf("MeanOccupancy = %v, want 4/3", got)
	}
}

func TestNewFIFOPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for capacity 0")
		}
	}()
	NewFIFO[int](nil, "bad", 0)
}

func TestNewPipePanicsOnBadLatency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for latency 0")
		}
	}()
	NewPipe[int](nil, 0)
}
