// Package hwsim is a deterministic cycle-level hardware simulation kernel.
//
// It is the substitute for the FPGA fabric the paper prototypes on: modules
// with an initiation interval and fixed latency, bounded FIFOs with
// backpressure, and a global clock. The semantics mirror registered
// hardware:
//
//   - All modules observe the FIFO state committed at the end of the
//     previous cycle. Pushes performed during cycle t become visible to
//     consumers at cycle t+1 (one register stage per FIFO hop).
//   - Pops take effect immediately, so two consumers draining one FIFO in
//     the same cycle receive distinct items.
//   - A Pipe models a fully pipelined datapath of fixed latency L with
//     II=1: up to L items in flight, each emerging exactly L cycles after
//     insertion.
//
// Determinism: modules tick in registration order and nothing depends on
// map iteration or wall time, so a simulation is a pure function of its
// inputs and seeds.
package hwsim

import "fmt"

// Module is a clocked hardware block. Tick is called once per cycle with
// the current cycle number.
type Module interface {
	Tick(now int64)
}

// committer is implemented by FIFOs and other stateful elements that defer
// visibility of writes to the end of the cycle.
type committer interface {
	commit()
}

// Sim drives a set of modules and FIFOs with a shared clock.
type Sim struct {
	now        int64
	modules    []Module
	committers []committer
}

// NewSim returns an empty simulator at cycle 0.
func NewSim() *Sim { return &Sim{} }

// Register adds a module; modules tick in registration order.
func (s *Sim) Register(m Module) { s.modules = append(s.modules, m) }

// Track adds a FIFO (or Pipe) so its writes commit at the end of each
// cycle. NewFIFO and NewPipe call this automatically when given a non-nil
// Sim.
func (s *Sim) track(c committer) { s.committers = append(s.committers, c) }

// Now returns the current cycle.
func (s *Sim) Now() int64 { return s.now }

// Step advances one cycle: every module ticks, then all pending FIFO
// writes commit.
func (s *Sim) Step() {
	for _, m := range s.modules {
		m.Tick(s.now)
	}
	for _, c := range s.committers {
		c.commit()
	}
	s.now++
}

// RunUntil steps until done() reports true or maxCycles elapse. It returns
// the number of cycles executed and whether done() was reached.
func (s *Sim) RunUntil(done func() bool, maxCycles int64) (cycles int64, ok bool) {
	start := s.now
	for s.now-start < maxCycles {
		if done() {
			return s.now - start, true
		}
		s.Step()
	}
	return s.now - start, done()
}

// FIFOStats aggregates a FIFO's lifetime counters for utilization and
// bubble analysis.
type FIFOStats struct {
	Pushes int64
	Pops   int64
	// FullStalls counts Push attempts rejected because the FIFO was full —
	// the backpressure signal the zero-bubble scheduler feeds on.
	FullStalls int64
	// EmptyCycles counts cycles that ended with the FIFO empty.
	EmptyCycles int64
	// OccupancySum accumulates end-of-cycle occupancy for mean-depth
	// reporting.
	OccupancySum int64
	// Cycles counts committed cycles.
	Cycles int64
}

// MeanOccupancy returns the average end-of-cycle occupancy.
func (st FIFOStats) MeanOccupancy() float64 {
	if st.Cycles == 0 {
		return 0
	}
	return float64(st.OccupancySum) / float64(st.Cycles)
}

// FIFO is a bounded queue with hardware register semantics (see package
// comment). The zero value is unusable; construct with NewFIFO.
type FIFO[T any] struct {
	name    string
	cap     int
	buf     []T
	head    int
	count   int
	pending []T
	stats   FIFOStats
}

// NewFIFO creates a FIFO with the given capacity and registers it with s
// (s may be nil for FIFOs stepped manually via CommitNow).
func NewFIFO[T any](s *Sim, name string, capacity int) *FIFO[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("hwsim: FIFO %q capacity %d, want > 0", name, capacity))
	}
	f := &FIFO[T]{name: name, cap: capacity, buf: make([]T, capacity)}
	if s != nil {
		s.track(f)
	}
	return f
}

// Name returns the FIFO's diagnostic name.
func (f *FIFO[T]) Name() string { return f.name }

// Cap returns the capacity.
func (f *FIFO[T]) Cap() int { return f.cap }

// Len returns the committed occupancy (items poppable this cycle).
func (f *FIFO[T]) Len() int { return f.count }

// Empty reports whether no committed items are available.
func (f *FIFO[T]) Empty() bool { return f.count == 0 }

// Full reports whether a push this cycle would exceed capacity, counting
// both committed items and writes already pending this cycle.
func (f *FIFO[T]) Full() bool { return f.count+len(f.pending) >= f.cap }

// Push enqueues v for visibility next cycle. It returns false (and counts
// a full-stall) when the FIFO cannot accept the item.
func (f *FIFO[T]) Push(v T) bool {
	if f.Full() {
		f.stats.FullStalls++
		return false
	}
	f.pending = append(f.pending, v)
	f.stats.Pushes++
	return true
}

// Peek returns the oldest committed item without removing it.
func (f *FIFO[T]) Peek() (T, bool) {
	var zero T
	if f.count == 0 {
		return zero, false
	}
	return f.buf[f.head], true
}

// Pop removes and returns the oldest committed item.
func (f *FIFO[T]) Pop() (T, bool) {
	var zero T
	if f.count == 0 {
		return zero, false
	}
	v := f.buf[f.head]
	f.buf[f.head] = zero
	f.head = (f.head + 1) % f.cap
	f.count--
	f.stats.Pops++
	return v, true
}

// commit publishes this cycle's pushes and updates occupancy statistics.
func (f *FIFO[T]) commit() {
	for _, v := range f.pending {
		tail := (f.head + f.count) % f.cap
		f.buf[tail] = v
		f.count++
	}
	f.pending = f.pending[:0]
	f.stats.Cycles++
	f.stats.OccupancySum += int64(f.count)
	if f.count == 0 {
		f.stats.EmptyCycles++
	}
}

// CommitNow forces an immediate commit; intended for tests and for use
// outside a Sim.
func (f *FIFO[T]) CommitNow() { f.commit() }

// Stats returns a copy of the FIFO's counters.
func (f *FIFO[T]) Stats() FIFOStats { return f.stats }

// Pipe is a fully pipelined fixed-latency datapath: an item pushed at cycle
// t pops at cycle t+latency, with one new item accepted per cycle (II=1).
// To sustain II=1 a module must drain the pipe before filling it within a
// cycle (pop, then push), matching how a shift register advances.
type Pipe[T any] struct {
	latency int64
	slots   []pipeSlot[T]
	head    int
	count   int
	pending []pipeSlot[T]
}

type pipeSlot[T any] struct {
	v     T
	ready int64
}

// NewPipe creates a Pipe with the given latency (>= 1) and registers it
// with s (may be nil).
func NewPipe[T any](s *Sim, latency int) *Pipe[T] {
	if latency < 1 {
		panic(fmt.Sprintf("hwsim: pipe latency %d, want >= 1", latency))
	}
	p := &Pipe[T]{latency: int64(latency), slots: make([]pipeSlot[T], latency)}
	if s != nil {
		s.track(p)
	}
	return p
}

// CanPush reports whether the pipe can accept an item this cycle.
func (p *Pipe[T]) CanPush() bool { return p.count+len(p.pending) < len(p.slots) }

// Push inserts v at cycle now; it emerges at now+latency.
func (p *Pipe[T]) Push(v T, now int64) bool {
	if !p.CanPush() {
		return false
	}
	p.pending = append(p.pending, pipeSlot[T]{v: v, ready: now + p.latency})
	return true
}

// Ready reports whether the head item has completed its traversal.
func (p *Pipe[T]) Ready(now int64) bool {
	return p.count > 0 && p.slots[p.head].ready <= now
}

// Pop removes the head item if ready.
func (p *Pipe[T]) Pop(now int64) (T, bool) {
	var zero T
	if !p.Ready(now) {
		return zero, false
	}
	v := p.slots[p.head].v
	p.slots[p.head] = pipeSlot[T]{}
	p.head = (p.head + 1) % len(p.slots)
	p.count--
	return v, true
}

// Len returns the number of items in flight (committed).
func (p *Pipe[T]) Len() int { return p.count }

func (p *Pipe[T]) commit() {
	for _, s := range p.pending {
		tail := (p.head + p.count) % len(p.slots)
		p.slots[tail] = s
		p.count++
	}
	p.pending = p.pending[:0]
}

// CommitNow forces an immediate commit for manual stepping.
func (p *Pipe[T]) CommitNow() { p.commit() }

// ModuleFunc adapts a function to the Module interface.
type ModuleFunc func(now int64)

// Tick implements Module.
func (f ModuleFunc) Tick(now int64) { f(now) }

// BusyCounter tracks per-cycle busy/idle state of a module for bubble-ratio
// reporting (paper §III, Observation #2).
type BusyCounter struct {
	Busy int64
	Idle int64
}

// Record notes one cycle of activity (busy) or a bubble (idle).
func (b *BusyCounter) Record(busy bool) {
	if busy {
		b.Busy++
	} else {
		b.Idle++
	}
}

// BubbleRatio returns idle/(busy+idle), the fraction of cycles wasted.
func (b *BusyCounter) BubbleRatio() float64 {
	total := b.Busy + b.Idle
	if total == 0 {
		return 0
	}
	return float64(b.Idle) / float64(total)
}

// Utilization returns busy/(busy+idle).
func (b *BusyCounter) Utilization() float64 {
	total := b.Busy + b.Idle
	if total == 0 {
		return 0
	}
	return float64(b.Busy) / float64(total)
}
