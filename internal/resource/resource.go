// Package resource is an analytic FPGA resource and frequency model for
// RidgeWalker configurations, reproducing Table IV. There is no synthesis
// in this repository, so the model is structural: each hardware unit
// (access engine, sampler, scheduler element, RNG) contributes a calibrated
// footprint, scaled by instance counts and data widths; the calibration
// constants were fitted to the paper's published U55C utilization numbers.
package resource

import (
	"fmt"

	"ridgewalker/internal/walk"
)

// Device describes an FPGA's available resources.
type Device struct {
	Name  string
	LUTs  int64
	REGs  int64
	BRAMs int64 // 36 Kb blocks
	DSPs  int64
}

// U55C is the primary evaluation device (XCU55C: ~1.3M LUTs, ~2.6M REGs,
// 2016 BRAM36, 9024 DSPs).
var U55C = Device{Name: "U55C", LUTs: 1_303_680, REGs: 2_607_360, BRAMs: 2016, DSPs: 9024}

// Utilization is a design's resource consumption.
type Utilization struct {
	LUTs, REGs, BRAMs, DSPs int64
	// FrequencyMHz is the achievable clock.
	FrequencyMHz int
}

// Percent returns utilization as percentages of the device.
func (u Utilization) Percent(d Device) (lut, reg, bram, dsp float64) {
	return 100 * float64(u.LUTs) / float64(d.LUTs),
		100 * float64(u.REGs) / float64(d.REGs),
		100 * float64(u.BRAMs) / float64(d.BRAMs),
		100 * float64(u.DSPs) / float64(d.DSPs)
}

// unit footprints (calibrated to Table IV; one asynchronous pipeline is a
// Row Access engine + Sampling module + Column Access engine + RNG).
type unitCost struct {
	luts, regs, brams, dsps int64
}

var (
	// accessEngine: request/response proxies, metadata queue (BRAM),
	// transaction-ID reorder buffer.
	accessEngine = unitCost{luts: 9200, regs: 8800, brams: 6, dsps: 0}
	// rngUnit is one ThundeRiNG instance.
	rngUnit = unitCost{luts: 1400, regs: 2600, brams: 0, dsps: 2}
	// schedulerPerPipe covers the per-pipeline share of the butterfly
	// balancer, dispatchers/mergers, and the Theorem-VI.1 FIFOs. The
	// standalone scheduler is tiny (1.8% of LUTs at 450 MHz, §VIII-F).
	schedulerPerPipe = unitCost{luts: 1500, regs: 2200, brams: 2, dsps: 0}
	// infrastructure: PCIe/XDMA shell share, AXI interconnect, control
	// registers, query loader/writer.
	infrastructure = unitCost{luts: 228_000, regs: 180_000, brams: 140, dsps: 40}
)

// samplerCost returns the per-pipeline sampler footprint for an algorithm
// (Table I: wider RP entries and heavier arithmetic cost more).
func samplerCost(alg walk.Algorithm) unitCost {
	switch alg {
	case walk.URW:
		return unitCost{luts: 6000, regs: 3700, brams: 2, dsps: 8}
	case walk.PPR:
		// Teleport comparison and α registers on top of uniform.
		return unitCost{luts: 15000, regs: 13000, brams: 2, dsps: 8}
	case walk.DeepWalk:
		// Alias tables: 256-bit RP entries and fused alias/neighbor reads
		// buffer in BRAM; extra comparators.
		return unitCost{luts: 20200, regs: 17000, brams: 27, dsps: 20}
	case walk.Node2Vec:
		// Rejection sampling: bias evaluation, membership probes, floating
		// point compare — the heaviest sampler.
		return unitCost{luts: 29700, regs: 24200, brams: 23, dsps: 37}
	case walk.MetaPath:
		// Reservoir with label matching, 128-bit entries.
		return unitCost{luts: 18500, regs: 16000, brams: 20, dsps: 24}
	default:
		return unitCost{}
	}
}

// Estimate computes the utilization of a RidgeWalker build with the given
// pipeline count for one GRW algorithm on the device.
func Estimate(alg walk.Algorithm, pipelines int, d Device) (Utilization, error) {
	if pipelines < 1 {
		return Utilization{}, fmt.Errorf("resource: pipelines %d, want >= 1", pipelines)
	}
	sc := samplerCost(alg)
	var u Utilization
	perPipe := unitCost{
		luts:  2*accessEngine.luts + rngUnit.luts + schedulerPerPipe.luts + sc.luts,
		regs:  2*accessEngine.regs + rngUnit.regs + schedulerPerPipe.regs + sc.regs,
		brams: 2*accessEngine.brams + rngUnit.brams + schedulerPerPipe.brams + sc.brams,
		dsps:  2*accessEngine.dsps + rngUnit.dsps + schedulerPerPipe.dsps + sc.dsps,
	}
	u.LUTs = infrastructure.luts + int64(pipelines)*perPipe.luts
	u.REGs = infrastructure.regs + int64(pipelines)*perPipe.regs
	u.BRAMs = infrastructure.brams + int64(pipelines)*perPipe.brams
	u.DSPs = infrastructure.dsps + int64(pipelines)*perPipe.dsps
	// The asynchronous, free-running design closes timing at 320 MHz on
	// every variant (§VIII-F); the scheduler alone reaches 450 MHz.
	u.FrequencyMHz = 320
	if u.LUTs > d.LUTs || u.REGs > d.REGs || u.BRAMs > d.BRAMs || u.DSPs > d.DSPs {
		return u, fmt.Errorf("resource: %s with %d pipelines exceeds %s", alg, pipelines, d.Name)
	}
	return u, nil
}

// SchedulerStandalone reports the zero-bubble scheduler profiled alone
// (§VIII-F): 450 MHz, 1.8% of U55C LUTs at 16 pipelines.
func SchedulerStandalone(pipelines int) Utilization {
	return Utilization{
		LUTs:         int64(pipelines) * schedulerPerPipe.luts,
		REGs:         int64(pipelines) * schedulerPerPipe.regs,
		BRAMs:        int64(pipelines) * schedulerPerPipe.brams,
		FrequencyMHz: 450,
	}
}
