package resource

import (
	"testing"

	"ridgewalker/internal/walk"
)

// paperTableIV holds the published utilization (LUT%, REG%, BRAM%, DSP%)
// for 16 pipelines on U55C.
var paperTableIV = map[walk.Algorithm][4]float64{
	walk.PPR:      {61.1, 29.8, 19.5, 2.2},
	walk.URW:      {50.1, 24.0, 19.5, 2.2},
	walk.DeepWalk: {67.5, 32.3, 39.1, 4.4},
	walk.Node2Vec: {79.1, 41.6, 36.0, 7.3},
}

func TestEstimateTracksTableIV(t *testing.T) {
	for alg, want := range paperTableIV {
		u, err := Estimate(alg, 16, U55C)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		lut, reg, bram, dsp := u.Percent(U55C)
		got := [4]float64{lut, reg, bram, dsp}
		for i := range got {
			// Within 30% relative or 3 points absolute of the paper.
			diff := got[i] - want[i]
			if diff < 0 {
				diff = -diff
			}
			if diff > 3 && diff > 0.3*want[i] {
				t.Errorf("%s metric %d: got %.1f%%, paper %.1f%%", alg, i, got[i], want[i])
			}
		}
		if u.FrequencyMHz != 320 {
			t.Errorf("%s frequency %d, want 320", alg, u.FrequencyMHz)
		}
	}
}

func TestOrderingAcrossAlgorithms(t *testing.T) {
	// Node2Vec > DeepWalk > PPR > URW in LUTs (Table IV's ordering).
	var luts []int64
	for _, alg := range []walk.Algorithm{walk.URW, walk.PPR, walk.DeepWalk, walk.Node2Vec} {
		u, err := Estimate(alg, 16, U55C)
		if err != nil {
			t.Fatal(err)
		}
		luts = append(luts, u.LUTs)
	}
	for i := 1; i < len(luts); i++ {
		if luts[i] <= luts[i-1] {
			t.Fatalf("LUT ordering violated: %v", luts)
		}
	}
}

func TestScalesWithPipelines(t *testing.T) {
	u8, err := Estimate(walk.URW, 8, U55C)
	if err != nil {
		t.Fatal(err)
	}
	u16, err := Estimate(walk.URW, 16, U55C)
	if err != nil {
		t.Fatal(err)
	}
	if u16.LUTs <= u8.LUTs || u16.BRAMs <= u8.BRAMs {
		t.Fatal("doubling pipelines did not grow the design")
	}
}

func TestOverflowRejected(t *testing.T) {
	if _, err := Estimate(walk.Node2Vec, 1024, U55C); err == nil {
		t.Fatal("1024 pipelines fit on U55C; model broken")
	}
	if _, err := Estimate(walk.URW, 0, U55C); err == nil {
		t.Fatal("0 pipelines accepted")
	}
}

func TestSchedulerStandalone(t *testing.T) {
	u := SchedulerStandalone(16)
	if u.FrequencyMHz != 450 {
		t.Fatalf("scheduler frequency %d, want 450", u.FrequencyMHz)
	}
	lut, _, _, _ := u.Percent(U55C)
	// §VIII-F: ~1.8% of LUTs.
	if lut < 0.5 || lut > 4 {
		t.Fatalf("standalone scheduler %.2f%% LUTs, paper ~1.8%%", lut)
	}
}
