package plan

import (
	"reflect"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.Graph500(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	g.AttachLabels(3)
	return g
}

// handGraph builds a tiny CSR with known degrees 3, 0, 1, 2.
func handGraph() *graph.CSR {
	return &graph.CSR{
		NumVertices: 4,
		RowPtr:      []int64{0, 3, 3, 4, 6},
		Col:         []graph.VertexID{1, 2, 3, 0, 0, 1},
		Directed:    true,
	}
}

func TestComputeStats(t *testing.T) {
	st := ComputeStats(handGraph(), nil)
	if st.Vertices != 4 || st.Edges != 6 {
		t.Fatalf("dims = %d/%d, want 4/6", st.Vertices, st.Edges)
	}
	if st.ZeroOutDegree != 1 {
		t.Fatalf("sinks = %d, want 1", st.ZeroOutDegree)
	}
	if st.MaxDegree != 3 || st.AvgDegree != 1.5 {
		t.Fatalf("degree max/avg = %d/%g, want 3/1.5", st.MaxDegree, st.AvgDegree)
	}
	// Top-1% cut on 4 vertices is 1 vertex; the highest bucket (degrees
	// {3,2}, mass 5) is consumed half a vertex deep: hub = ⌊0.5·5⌋ = 2.
	if want := 2.0 / 6.0; st.HubMass != want {
		t.Fatalf("hub mass = %g, want %g", st.HubMass, want)
	}
	if st.Weighted || st.Labeled {
		t.Fatal("payload flags set on a bare graph")
	}
	if st.Epoch != 0 || st.OverlayDirtyFraction != 0 {
		t.Fatal("overlay stats nonzero without a snapshot")
	}
}

func TestCandidatesSingleCore(t *testing.T) {
	st := ComputeStats(testGraph(t), nil)
	got := Candidates(st, Constraints{Workers: 1})
	want := []Candidate{
		{Backend: "cpu"},
		{Backend: "cpu-pipelined", Cohort: 16},
		{Backend: "cpu-pipelined", Cohort: 64},
		{Backend: "cpu-pipelined", Cohort: 256},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("single-core candidates = %v, want %v (no sharded shapes on one core)", got, want)
	}
}

func TestCandidatesMultiCoreAndPins(t *testing.T) {
	st := ComputeStats(testGraph(t), nil)
	got := Candidates(st, Constraints{Workers: 4})
	want := []Candidate{
		{Backend: "cpu"},
		{Backend: "cpu-pipelined", Cohort: 16},
		{Backend: "cpu-pipelined", Cohort: 64},
		{Backend: "cpu-pipelined", Cohort: 256},
		{Backend: "cpu-sharded", Shards: 4},
		{Backend: "cpu-pipelined", Cohort: 16, Shards: 4},
		{Backend: "cpu-pipelined", Cohort: 64, Shards: 4},
		{Backend: "cpu-pipelined", Cohort: 256, Shards: 4},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("multicore candidates = %v, want %v", got, want)
	}
	// Shard counts clamp at 8 regardless of worker count.
	for _, c := range Candidates(st, Constraints{Workers: 32}) {
		if c.Shards > 8 {
			t.Fatalf("candidate %v exceeds the shard clamp", c)
		}
	}
	// A pinned cohort collapses the pipelined sweep to that width.
	for _, c := range Candidates(st, Constraints{Workers: 1, Cohort: 32}) {
		if c.Backend == "cpu-pipelined" && c.Cohort != 32 {
			t.Fatalf("pinned cohort ignored: %v", c)
		}
	}
	// A pinned shard count drops every unsharded shape.
	pinned := Candidates(st, Constraints{Workers: 1, Shards: 2})
	if len(pinned) == 0 {
		t.Fatal("no candidates under pinned shards")
	}
	for _, c := range pinned {
		if c.Shards != 2 {
			t.Fatalf("pinned shards ignored: %v", c)
		}
	}
	// Shards can never exceed the vertex count; when the clamp removes
	// every pinned-shard shape the fallback is the flat engine.
	tiny := GraphStats{Vertices: 1}
	fb := Candidates(tiny, Constraints{Workers: 4, Shards: 2})
	if !reflect.DeepEqual(fb, []Candidate{{Backend: "cpu"}}) {
		t.Fatalf("vertex-clamped fallback = %v, want [{cpu}]", fb)
	}
}

// TestDecidePicksFastestAndIsPure: Decide is a pure function — same
// inputs, same plan — that picks the fastest surviving measurement,
// skipping failed probes and breaking ties toward the earlier
// (deterministically ordered) candidate.
func TestDecidePicksFastestAndIsPure(t *testing.T) {
	st := ComputeStats(testGraph(t), nil)
	cons := Constraints{Workers: 1}
	ms := []Measurement{
		{Candidate: Candidate{Backend: "cpu"}, StepsPerSec: 500},
		{Candidate: Candidate{Backend: "cpu-pipelined", Cohort: 16}, Err: "probe failed"},
		{Candidate: Candidate{Backend: "cpu-pipelined", Cohort: 64}, StepsPerSec: 900},
		{Candidate: Candidate{Backend: "cpu-pipelined", Cohort: 256}, StepsPerSec: 900},
	}
	p1 := Decide(st, cons, ms)
	p2 := Decide(st, cons, ms)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("Decide is not deterministic on identical inputs")
	}
	if p1.Backend != "cpu-pipelined" || p1.Cohort != 64 {
		t.Fatalf("chose %v, want the first of the tied fastest (cpu-pipelined c64)", p1.Candidate)
	}
	if p1.Source != "calibrated" || p1.PredictedStepsPerSec != 900 {
		t.Fatalf("source/predicted = %q/%g", p1.Source, p1.PredictedStepsPerSec)
	}
	// All probes failing degrades to the stats fallback.
	failed := []Measurement{{Candidate: Candidate{Backend: "cpu"}, Err: "x"}}
	if p := Decide(st, cons, failed); p.Source != "stats" {
		t.Fatalf("all-failed calibration should fall back to stats, got %q", p.Source)
	}
}

func TestDecideMemoryKnobs(t *testing.T) {
	st := ComputeStats(testGraph(t), nil)
	// A stated budget passes through verbatim and suppresses the hub pin.
	p := Decide(st, Constraints{Workers: 1, MemoryBudgetBytes: 1 << 20, HubCacheBytes: 1 << 16}, nil)
	if p.MemoryBudgetBytes != 1<<20 {
		t.Fatalf("budget = %d, want %d", p.MemoryBudgetBytes, 1<<20)
	}
	if p.HubCacheBytes != 0 {
		t.Fatalf("hub cache forwarded alongside a budget: %d", p.HubCacheBytes)
	}
	// Without a budget the hub pin passes through.
	p = Decide(st, Constraints{Workers: 1, HubCacheBytes: 1 << 16}, nil)
	if p.HubCacheBytes != 1<<16 || p.MemoryBudgetBytes != 0 {
		t.Fatalf("hub/budget = %d/%d, want %d/0", p.HubCacheBytes, p.MemoryBudgetBytes, 1<<16)
	}
}

func TestDecideStatsFallback(t *testing.T) {
	st := ComputeStats(testGraph(t), nil)
	// One core: the cohort pipeline at the middle width.
	p := Decide(st, Constraints{Workers: 1}, nil)
	if p.Backend != "cpu-pipelined" || p.Cohort != 64 || p.Shards != 0 {
		t.Fatalf("single-core fallback = %v", p.Candidate)
	}
	if p.Source != "stats" {
		t.Fatalf("source = %q, want stats", p.Source)
	}
	// Multicore: the sharded cohort pipeline.
	p = Decide(st, Constraints{Workers: 4}, nil)
	if p.Backend != "cpu-pipelined" || p.Shards != 4 {
		t.Fatalf("multicore fallback = %v", p.Candidate)
	}
}

func TestProbeConfigDeterministic(t *testing.T) {
	cfg := walk.DefaultConfig(walk.PPR)
	cfg.WalkLength = 123
	cfg.Seed = 456
	cfg.Alpha = 0.25
	p1 := ProbeConfig(cfg, Options{})
	p2 := ProbeConfig(cfg, Options{})
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("probe config differs across identical calls")
	}
	if p1.WalkLength != 123 || p1.Seed != defaultSeed {
		t.Fatalf("probe walk/seed = %d/%d, want the serving length 123 and the default seed", p1.WalkLength, p1.Seed)
	}
	// Extreme lengths clamp, degenerate ones fall back, pins win.
	long := cfg
	long.WalkLength = 5000
	if got := ProbeConfig(long, Options{}).WalkLength; got != probeWalkLenMax {
		t.Fatalf("probe length %d, want clamp %d", got, probeWalkLenMax)
	}
	zero := cfg
	zero.WalkLength = 0
	if got := ProbeConfig(zero, Options{}).WalkLength; got != defaultProbeWalkLen {
		t.Fatalf("probe length %d, want fallback %d", got, defaultProbeWalkLen)
	}
	if got := ProbeConfig(cfg, Options{WalkLength: 7}).WalkLength; got != 7 {
		t.Fatalf("probe length %d, want the pinned 7", got)
	}
	if p1.Algorithm != walk.PPR || p1.Alpha != 0.25 {
		t.Fatal("probe config lost the class's algorithm parameters")
	}
	// The probe workload itself is seed-deterministic.
	g := testGraph(t)
	q1, err := walk.RandomQueries(g, p1, 64, Options{}.withDefaults().Seed)
	if err != nil {
		t.Fatal(err)
	}
	q2, _ := walk.RandomQueries(g, p2, 64, Options{}.withDefaults().Seed)
	if !reflect.DeepEqual(q1, q2) {
		t.Fatal("probe queries differ under a fixed seed")
	}
}

func TestSampleSubgraph(t *testing.T) {
	g := testGraph(t)
	e := g.NumEdges()
	target := e / 4
	sub := SampleSubgraph(g, target)
	if sub == g {
		t.Fatal("sampling above target returned the original graph")
	}
	if got := sub.NumEdges(); got != target {
		t.Fatalf("sampled edges = %d, want exactly %d (shared-remainder scaling)", got, target)
	}
	if sub.NumVertices != g.NumVertices {
		t.Fatal("sampling dropped vertices")
	}
	// Each row is a prefix of the original row, weights aligned.
	for v := 0; v < g.NumVertices; v++ {
		n := sub.RowPtr[v+1] - sub.RowPtr[v]
		if n > g.RowPtr[v+1]-g.RowPtr[v] {
			t.Fatalf("vertex %d grew its row", v)
		}
		for i := int64(0); i < n; i++ {
			if sub.Col[sub.RowPtr[v]+i] != g.Col[g.RowPtr[v]+i] {
				t.Fatalf("vertex %d row is not a prefix of the original", v)
			}
			if sub.Weights[sub.RowPtr[v]+i] != g.Weights[g.RowPtr[v]+i] {
				t.Fatalf("vertex %d weights misaligned", v)
			}
		}
	}
	// Deterministic: two samples are identical.
	if again := SampleSubgraph(g, target); !reflect.DeepEqual(sub.RowPtr, again.RowPtr) || !reflect.DeepEqual(sub.Col, again.Col) {
		t.Fatal("sampling is not deterministic")
	}
	// At or under the target the graph passes through untouched.
	if SampleSubgraph(g, e) != g {
		t.Fatal("graph at target was copied")
	}
}

// fixedProbe steps at a constant fabricated rate.
type fixedProbe struct{ sps float64 }

func (p fixedProbe) Step() (float64, error) { return p.sps, nil }
func (p fixedProbe) Close() error           { return nil }

// fixedRunner fabricates probe results from a fixed table, making
// planner behavior a pure function of the candidate list.
func fixedRunner(sps map[string]float64) ProbeRunner {
	return func(_ *graph.CSR, cand Candidate, _ walk.Config, _ []walk.Query, _ int64) (Probe, error) {
		return fixedProbe{sps: sps[cand.String()]}, nil
	}
}

// TestPlannerDeterministicAndDrift: two planners over the same graph,
// options, and probe outcomes resolve identical plans; a served-rate
// drift beyond the factor marks the class stale and the next PlanFor
// advances the revision — changing the fingerprint so serving layers
// start fresh sessions instead of tearing live ones.
func TestPlannerDeterministicAndDrift(t *testing.T) {
	g := testGraph(t)
	cfg := walk.DefaultConfig(walk.URW)
	opts := Options{Calibrate: true, Queries: 16, WalkLength: 4, Repeat: 1,
		SubgraphEdges: -1, MinObservations: 1, DriftFactor: 1.5}
	runner := fixedRunner(map[string]float64{
		"cpu":                100,
		"cpu-pipelined c16":  300,
		"cpu-pipelined c64":  200,
		"cpu-pipelined c256": 150,
	})
	cons := Constraints{Workers: 1}
	p1 := New(g, cons, opts, runner)
	p2 := New(g, cons, opts, runner)
	pl1, err := p1.PlanFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := p2.PlanFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl1.Fingerprint() != pl2.Fingerprint() {
		t.Fatalf("planners diverged: %s vs %s", pl1.Fingerprint(), pl2.Fingerprint())
	}
	if pl1.Backend != "cpu-pipelined" || pl1.Cohort != 16 {
		t.Fatalf("plan = %v, want the fabricated winner cpu-pipelined c16", pl1.Candidate)
	}
	if pl1.Revision != 0 || pl1.Source != "calibrated" {
		t.Fatalf("revision/source = %d/%q", pl1.Revision, pl1.Source)
	}
	// Cached: a second request re-uses the plan without recalibrating.
	again, _ := p1.PlanFor(cfg)
	if again.Fingerprint() != pl1.Fingerprint() {
		t.Fatal("cached plan changed without any trigger")
	}
	// Settle the EWMA (MinObservations 1 adopts the first level), then
	// drift far beyond the factor.
	p1.Observe(cfg, 100)
	p1.Observe(cfg, 1000)
	repl, err := p1.PlanFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repl.Revision != pl1.Revision+1 {
		t.Fatalf("revision after drift = %d, want %d", repl.Revision, pl1.Revision+1)
	}
	if repl.Source != "replanned" {
		t.Fatalf("source after drift = %q, want replanned", repl.Source)
	}
	if repl.Fingerprint() == pl1.Fingerprint() {
		t.Fatal("drift re-plan kept the old fingerprint")
	}
	st := p1.Status()
	if len(st) != 1 || st[0].Recalibrations != 1 {
		t.Fatalf("status = %+v, want one class with one recalibration", st)
	}
}
