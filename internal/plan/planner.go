package plan

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

// Planner binds the decision machinery to one graph: it computes the
// statistics once, calibrates lazily per class (first request of a
// class pays the micro-bench; the result is cached), and folds served
// observations back in. All methods are safe for concurrent use.
type Planner struct {
	g      *graph.CSR
	cons   Constraints
	opts   Options
	runner ProbeRunner

	mu      sync.Mutex
	stats   GraphStats
	statsAt uint64 // epoch the stats were computed under
	probeG  *graph.CSR
	classes map[Class]*classState
}

// classState is one class's resolved plan plus its observation stream.
type classState struct {
	plan     Plan
	measured []Measurement
	calErr   string // why calibration fell back to stats, if it did
	// Drift tracking: ewma of served steps/sec, the level at adoption
	// time (set once observations settle), and counters.
	ewma    float64
	adopted float64
	obs     int64
	recals  int
	stale   bool // next PlanFor must re-plan
	// Breaker demotion: while demoted the class serves the known-good
	// cpu plan and prev holds the pre-demotion plan for Restore's
	// half-open health probe. Demoted classes neither observe drift nor
	// recalibrate — the breaker, not the drift detector, owns their
	// lifecycle until restored.
	demoted bool
	prev    Plan
}

// ClassStatus is one class's externally visible planning state (see
// Planner.Status and the Service's PlanStatus).
type ClassStatus struct {
	Class                Class
	Plan                 Plan
	PredictedStepsPerSec float64
	ObservedStepsPerSec  float64
	Observations         int64
	Recalibrations       int
	CalibrationError     string
	// Demoted reports the class is serving the breaker's cpu fallback.
	Demoted bool
}

// New builds a planner for g. runner may be nil when Options.Calibrate
// is false (stats-only planning never probes).
func New(g *graph.CSR, cons Constraints, opts Options, runner ProbeRunner) *Planner {
	return &Planner{
		g:       g,
		cons:    cons,
		opts:    opts.withDefaults(),
		runner:  runner,
		stats:   ComputeStats(g, nil),
		classes: map[Class]*classState{},
	}
}

// Stats returns the statistics the planner decides from.
func (p *Planner) Stats() GraphStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// RefreshStats recomputes the overlay-dependent statistics for a new
// serving view (mutations advanced the epoch). Plans are not
// invalidated here — the serving layer's epoch already re-keys sessions
// — but a heavily dirtied overlay shifts per-row costs, so the refresh
// marks every class stale once the dirty fraction crosses 10%, letting
// the next request of each class re-plan against current reality.
func (p *Planner) RefreshStats(snap *graph.Snapshot) {
	st := ComputeStats(p.g, snap)
	p.mu.Lock()
	defer p.mu.Unlock()
	crossed := st.OverlayDirtyFraction >= 0.10 && p.stats.OverlayDirtyFraction < 0.10
	p.stats = st
	p.statsAt = st.Epoch
	if crossed {
		for _, cs := range p.classes {
			cs.stale = true
		}
	}
}

// probeGraph lazily builds (and caches) the calibration graph.
func (p *Planner) probeGraph() *graph.CSR {
	if p.probeG == nil {
		if p.opts.SubgraphEdges < 0 {
			p.probeG = p.g
		} else {
			p.probeG = SampleSubgraph(p.g, p.opts.SubgraphEdges)
		}
	}
	return p.probeG
}

// PlanFor resolves the plan serving cfg's class, calibrating on first
// use (and again after drift or overlay staleness marked the class).
// The returned plan is a value: later re-plans produce new revisions,
// they never mutate a plan a caller already holds.
func (p *Planner) PlanFor(cfg walk.Config) (Plan, error) {
	if err := cfg.Validate(p.g); err != nil {
		return Plan{}, err
	}
	cls := ClassOf(p.g, cfg)
	p.mu.Lock()
	cs := p.classes[cls]
	if cs != nil && (cs.demoted || !cs.stale) {
		pl := cs.plan
		p.mu.Unlock()
		return pl, nil
	}
	rev := 0
	source := ""
	if cs != nil {
		rev = cs.plan.Revision + 1
		source = "replanned"
	}
	st := p.stats
	probeG := p.probeG
	p.mu.Unlock()

	// Calibration runs outside the planner lock: probes take real time
	// and other classes must keep planning meanwhile. The worst case is
	// two goroutines calibrating the same class concurrently; both
	// produce the same deterministic workload and the second result
	// simply overwrites the first.
	var ms []Measurement
	var calErr string
	if p.opts.Calibrate && p.runner != nil {
		if probeG == nil {
			p.mu.Lock()
			probeG = p.probeGraph()
			p.mu.Unlock()
		}
		var err error
		ms, err = calibrate(probeG, p.g.NumEdges(), cfg, st, p.cons, p.opts, p.runner)
		if err != nil {
			calErr = err.Error()
			ms = nil
		}
	}
	pl := Decide(st, p.cons, ms)
	pl.Revision = rev
	if source != "" && pl.Source == "calibrated" {
		pl.Source = source
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	cs = p.classes[cls]
	if cs == nil {
		cs = &classState{}
		p.classes[cls] = cs
	}
	cs.plan = pl
	cs.measured = ms
	cs.calErr = calErr
	cs.stale = false
	cs.ewma, cs.adopted, cs.obs = 0, 0, 0
	return pl, nil
}

// Observe feeds one served batch's realized steps/sec back into the
// class. Once MinObservations batches have settled an EWMA, a drift
// beyond DriftFactor of the adoption-time level (in either direction)
// marks the class stale: the next PlanFor recalibrates and advances the
// plan revision, so new sessions pick up the new reality while sessions
// already serving the old plan finish undisturbed.
func (p *Planner) Observe(cfg walk.Config, stepsPerSec float64) {
	if stepsPerSec <= 0 {
		return
	}
	cls := ClassOf(p.g, cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := p.classes[cls]
	if cs == nil || cs.stale || cs.demoted {
		return
	}
	if cs.ewma == 0 {
		cs.ewma = stepsPerSec
	} else {
		cs.ewma = 0.3*stepsPerSec + 0.7*cs.ewma
	}
	cs.obs++
	if cs.obs == int64(p.opts.MinObservations) {
		cs.adopted = cs.ewma
	}
	if cs.adopted > 0 && cs.obs > int64(p.opts.MinObservations) {
		f := p.opts.DriftFactor
		if cs.ewma > cs.adopted*f || cs.ewma < cs.adopted/f {
			cs.stale = true
			cs.recals++
		}
	}
}

// Demote switches cfg's class to the known-good flat cpu backend after
// its circuit breaker opened, stashing the current plan for Restore.
// The demoted plan keeps the constraint memory knobs and advances the
// revision — Revision feeds the plan fingerprint, so serving layers
// re-coalesce onto fresh sessions instead of reusing ones the faulting
// backend may have corrupted. Demoting an already-demoted class is a
// no-op returning the current plan.
func (p *Planner) Demote(cfg walk.Config, reason string) (Plan, bool) {
	cls := ClassOf(p.g, cfg)
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := p.classes[cls]
	if cs == nil {
		cs = &classState{}
		p.classes[cls] = cs
	}
	if cs.demoted {
		return cs.plan, false
	}
	pl := Plan{
		Candidate:         Candidate{Backend: "cpu"},
		MemoryBudgetBytes: p.cons.MemoryBudgetBytes,
		Source:            "demoted",
		Reason:            reason,
		Revision:          cs.plan.Revision + 1,
	}
	if p.cons.MemoryBudgetBytes == 0 {
		pl.HubCacheBytes = p.cons.HubCacheBytes
	}
	cs.prev = cs.plan
	cs.demoted = true
	cs.stale = false
	cs.plan = pl
	cs.ewma, cs.adopted, cs.obs = 0, 0, 0
	return pl, true
}

// Restore attempts to lift cfg's class out of demotion (the breaker
// half-opened): it health-probes the stashed pre-demotion candidate —
// one contained probe batch through the same runner calibration uses,
// so a still-faulting backend fails here instead of on served traffic —
// and on success reinstates that plan at a fresh revision. It returns
// false (class stays demoted) when the probe fails; the caller reopens
// the breaker. A planner without a probe runner restores optimistically:
// the breaker re-demotes on the next fault.
func (p *Planner) Restore(cfg walk.Config) (Plan, bool) {
	cls := ClassOf(p.g, cfg)
	p.mu.Lock()
	cs := p.classes[cls]
	if cs == nil || !cs.demoted {
		p.mu.Unlock()
		return Plan{}, false
	}
	prev := cs.prev
	runner := p.runner
	probeG := p.probeGraph()
	p.mu.Unlock()

	if runner != nil {
		if err := p.healthProbe(probeG, prev.Candidate, cfg); err != nil {
			return Plan{}, false
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	cs = p.classes[cls]
	if cs == nil || !cs.demoted {
		return Plan{}, false
	}
	pl := prev
	pl.Source = "restored"
	pl.Reason = "half-open health probe succeeded"
	pl.Revision = cs.plan.Revision + 1
	cs.plan = pl
	cs.demoted = false
	cs.stale = false
	cs.ewma, cs.adopted, cs.obs = 0, 0, 0
	return pl, true
}

// healthProbe opens cand once on the probe graph and runs a single
// probe batch, reporting any open/run error. The deliberate contrast
// with full recalibration: a restore must bring back the plan the class
// had, not re-run the candidate tournament.
func (p *Planner) healthProbe(probeG *graph.CSR, cand Candidate, cfg walk.Config) error {
	pcfg := ProbeConfig(cfg, p.opts)
	qs, err := walk.RandomQueries(probeG, pcfg, p.opts.Queries, p.opts.Seed)
	if err != nil {
		return err
	}
	budget := p.cons.MemoryBudgetBytes
	if budget > 0 {
		if pe, fe := probeG.NumEdges(), p.g.NumEdges(); pe < fe && fe > 0 {
			budget = budget * pe / fe
			if budget < 1<<16 {
				budget = 1 << 16
			}
		}
	}
	probe, err := p.runner(probeG, cand, pcfg, qs, budget)
	if err != nil {
		return err
	}
	defer probe.Close()
	_, err = probe.Step()
	return err
}

// Status snapshots every class's planning state, sorted by class name.
func (p *Planner) Status() []ClassStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ClassStatus, 0, len(p.classes))
	for cls, cs := range p.classes {
		out = append(out, ClassStatus{
			Class:                cls,
			Plan:                 cs.plan,
			PredictedStepsPerSec: cs.plan.PredictedStepsPerSec,
			ObservedStepsPerSec:  cs.ewma,
			Observations:         cs.obs,
			Recalibrations:       cs.recals,
			CalibrationError:     cs.calErr,
			Demoted:              cs.demoted,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class.String() < out[j].Class.String() })
	return out
}

// Explain renders the full decision record for cfg's class — the
// statistics, every probed candidate, and the chosen plan — resolving
// the plan first if the class has none yet.
func (p *Planner) Explain(cfg walk.Config) (string, error) {
	pl, err := p.PlanFor(cfg)
	if err != nil {
		return "", err
	}
	cls := ClassOf(p.g, cfg)
	p.mu.Lock()
	st := p.stats
	cs := p.classes[cls]
	var ms []Measurement
	var calErr string
	var obs float64
	var nobs int64
	if cs != nil {
		ms, calErr, obs, nobs = cs.measured, cs.calErr, cs.ewma, cs.obs
	}
	p.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "class %s\n", cls)
	fmt.Fprintf(&b, "graph: %d vertices, %d edges, avg degree %.1f, max %d, hub mass %.0f%%, dirty %.1f%%\n",
		st.Vertices, st.Edges, st.AvgDegree, st.MaxDegree, 100*st.HubMass, 100*st.OverlayDirtyFraction)
	if calErr != "" {
		fmt.Fprintf(&b, "calibration unavailable: %s\n", calErr)
	}
	for _, m := range ms {
		if m.Err != "" {
			fmt.Fprintf(&b, "  probe %-24s failed: %s\n", m.Candidate, m.Err)
			continue
		}
		mark := " "
		if m.Candidate == pl.Candidate {
			mark = "*"
		}
		fmt.Fprintf(&b, " %s probe %-24s %12.4g steps/s\n", mark, m.Candidate, m.StepsPerSec)
	}
	fmt.Fprintf(&b, "plan: %s\n", pl)
	if nobs > 0 {
		fmt.Fprintf(&b, "observed: %.4g steps/s over %d batches\n", obs, nobs)
	}
	return b.String(), nil
}
