package plan

import (
	"fmt"
	"sort"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

// Options tune planning. The zero value means stats-only decisions; a
// serving layer that can afford a few milliseconds of probing at start
// sets Calibrate.
type Options struct {
	// Calibrate enables the probe micro-bench; false decides from graph
	// statistics alone.
	Calibrate bool
	// Seed drives probe query generation. All probe state derives from
	// it, so two planners with equal options calibrate identical
	// workloads. 0 means the default seed.
	Seed uint64
	// Queries is the probe batch size per candidate (default 1024). The
	// batch must be large enough that the cohort pipeline reaches steady
	// state — on tiny batches its fill/drain overhead dominates and
	// calibration would systematically misrank it against the flat
	// engine (measured: 192 queries × len 16 inverts the ranking, 512×32
	// and up agrees with the full workload) — while keeping a sweep in
	// the tens of milliseconds.
	Queries int
	// WalkLength pins the probe walk length. 0 (the default) probes at
	// the triggering request's walk length, clamped to probeWalkLenMax —
	// relative engine ranking shifts with walk length (deeper cohorts
	// amortize better on long walks), so probing at the serving length
	// is the faithful measurement; the clamp bounds sweep cost for
	// extreme lengths. Degenerate requests (length 0) probe at
	// defaultProbeWalkLen.
	WalkLength int
	// Repeat is the timed-round count of the calibration sweep (default
	// 3). Rounds are interleaved across candidates — every candidate runs
	// once per round, in candidate order — and each candidate's score is
	// the median of its rounds, so a machine-state drift during the sweep
	// shifts all candidates together instead of penalizing whichever one
	// happened to be measured at the slow moment, and a single
	// scheduling spike cannot crown a loser.
	Repeat int
	// SubgraphEdges bounds the probe graph: graphs with more edges are
	// probed through a degree-proportional sample of this many edges
	// (default 4Mi edges), so candidate session opens stay O(sample)
	// instead of O(E). Negative disables sampling (always probe the
	// real graph).
	SubgraphEdges int64
	// DriftFactor is the online re-plan trigger: once served
	// observations settle, an observed steps/sec EWMA beyond this
	// factor (either direction) of the level the plan was adopted at
	// recalibrates the class (default 2).
	DriftFactor float64
	// MinObservations is how many served batches must be observed
	// before drift can trigger (default 8) — re-planning on the first
	// noisy batch would thrash.
	MinObservations int
}

const (
	defaultSeed          = 0x9e3779b97f4a7c15
	defaultProbeQueries  = 1024
	defaultProbeWalkLen  = 40
	probeWalkLenMax      = 128
	defaultProbeRepeat   = 3
	defaultSubgraphEdges = 4 << 20
	defaultDriftFactor   = 2.0
	defaultMinObs        = 8
)

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = defaultSeed
	}
	if o.Queries <= 0 {
		o.Queries = defaultProbeQueries
	}
	if o.Repeat <= 0 {
		o.Repeat = defaultProbeRepeat
	}
	if o.SubgraphEdges == 0 {
		o.SubgraphEdges = defaultSubgraphEdges
	}
	if o.DriftFactor <= 1 {
		o.DriftFactor = defaultDriftFactor
	}
	if o.MinObservations <= 0 {
		o.MinObservations = defaultMinObs
	}
	return o
}

// Probe is one candidate opened for calibration: Step runs the probe
// batch once and returns the observed steps/sec, and Close releases the
// candidate's session. The sweep holds every candidate's probe open at
// once — candidates that share a sampler spec then share one registry
// build for the whole sweep, instead of each probe paying (and GC-ing)
// its own O(E) rebuild — and steps them in interleaved rounds.
type Probe interface {
	Step() (float64, error)
	Close() error
}

// ProbeRunner opens one calibration probe: the candidate's backend on g
// (a real graph or a sampled subgraph) under pcfg, serving the query
// batch. The planner never opens sessions itself — the execution layer
// supplies the runner — which keeps this package free of an exec
// dependency and guarantees every probe goes through the same session
// path (and therefore the same sampler-registry acquire/release
// discipline) as served traffic.
type ProbeRunner func(g *graph.CSR, cand Candidate, pcfg walk.Config, qs []walk.Query, budget int64) (Probe, error)

// ProbeConfig derives the calibration walk configuration for a class
// representative: the caller's algorithm and parameters with the seed
// pinned by the options and the walk length either pinned
// (Options.WalkLength) or taken from the request, clamped. The probe
// workload is a deterministic function of (options, algorithm
// parameters, walk length) — the request influences only dimensions
// that genuinely shift engine ranking.
func ProbeConfig(cfg walk.Config, opts Options) walk.Config {
	o := opts.withDefaults()
	p := cfg
	p.WalkLength = o.WalkLength
	if p.WalkLength <= 0 {
		p.WalkLength = cfg.WalkLength
		if p.WalkLength > probeWalkLenMax {
			p.WalkLength = probeWalkLenMax
		}
		if p.WalkLength <= 0 {
			p.WalkLength = defaultProbeWalkLen
		}
	}
	p.Seed = o.Seed
	return p
}

// calibrate sweeps the candidates for one class on the probe graph and
// returns their measurements. A candidate that fails to open or run is
// recorded with its error and skipped by Decide; calibration as a whole
// fails only when query generation does (no eligible start vertices on
// the probe graph), in which case the caller falls back to stats-only
// planning.
func calibrate(probeG *graph.CSR, fullEdges int64, cfg walk.Config, st GraphStats, cons Constraints, opts Options, runner ProbeRunner) ([]Measurement, error) {
	o := opts.withDefaults()
	pcfg := ProbeConfig(cfg, o)
	qs, err := walk.RandomQueries(probeG, pcfg, o.Queries, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("plan: probe workload: %w", err)
	}
	// A budget stated for the full graph is scaled to the probe graph's
	// edge share so hot/cold placement on the sample resembles the real
	// split; the plan itself always carries the unscaled budget.
	budget := cons.MemoryBudgetBytes
	if budget > 0 && fullEdges > 0 {
		if pe := probeG.NumEdges(); pe < fullEdges {
			budget = budget * pe / fullEdges
			if budget < 1<<16 {
				budget = 1 << 16
			}
		}
	}
	cands := Candidates(st, cons)
	ms := make([]Measurement, len(cands))
	probes := make([]Probe, len(cands))
	defer func() {
		for _, p := range probes {
			if p != nil {
				p.Close()
			}
		}
	}()
	fail := func(i int, err error) {
		ms[i].Err = err.Error()
		if probes[i] != nil {
			probes[i].Close()
			probes[i] = nil
		}
	}
	// Open every candidate up front so samplers are shared for the whole
	// sweep, then one untimed warmup round before the scored rounds.
	for i, c := range cands {
		ms[i].Candidate = c
		p, err := runner(probeG, c, pcfg, qs, budget)
		if err != nil {
			ms[i].Err = err.Error()
			continue
		}
		probes[i] = p
	}
	for i, p := range probes {
		if p == nil {
			continue
		}
		if _, err := p.Step(); err != nil {
			fail(i, err)
		}
	}
	// Timed rounds, interleaved: round r measures every live candidate
	// once, in candidate order, so drift across the sweep moves all of
	// them together. Each candidate keeps the median of its rounds.
	rounds := make([][]float64, len(cands))
	for r := 0; r < o.Repeat; r++ {
		for i, p := range probes {
			if p == nil {
				continue
			}
			sps, err := p.Step()
			if err != nil {
				fail(i, err)
				continue
			}
			rounds[i] = append(rounds[i], sps)
		}
	}
	for i := range ms {
		if ms[i].Err != "" || len(rounds[i]) == 0 {
			continue
		}
		ms[i].StepsPerSec = median(rounds[i])
	}
	return ms, nil
}

// median of a non-empty sample (even counts average the middle pair);
// the input is sorted in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}
