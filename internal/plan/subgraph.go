package plan

import (
	"ridgewalker/internal/graph"
)

// SampleSubgraph builds the calibration probe graph: a degree-
// proportional edge sample of g with roughly targetEdges edges. Every
// vertex is kept and each row keeps a deterministic prefix of its
// neighbor list scaled by targetEdges/E, so the degree distribution's
// shape — the property that separates the candidate engines — survives
// the shrink while candidate session opens drop from O(E) to
// O(targetEdges). Weights and labels are carried so every algorithm
// remains servable. Graphs already at or under the target are returned
// as-is (calibration then probes the real graph and shares its
// registry-cached samplers with live sessions).
func SampleSubgraph(g *graph.CSR, targetEdges int64) *graph.CSR {
	e := g.NumEdges()
	if targetEdges <= 0 || e <= targetEdges {
		return g
	}
	sub := &graph.CSR{
		NumVertices: g.NumVertices,
		RowPtr:      make([]int64, g.NumVertices+1),
		Directed:    g.Directed,
		Labels:      g.Labels,
	}
	// First pass: scaled degrees. Integer scaling with a shared
	// remainder accumulator lands the total within one row of the
	// target without per-row rounding bias.
	var total, acc int64
	for v := 0; v < g.NumVertices; v++ {
		d := g.RowPtr[v+1] - g.RowPtr[v]
		acc += d * targetEdges
		keep := acc / e
		acc -= keep * e
		if keep > d {
			keep = d
		}
		total += keep
		sub.RowPtr[v+1] = total
	}
	sub.Col = make([]graph.VertexID, total)
	if g.Weighted() {
		sub.Weights = make([]float32, total)
	}
	for v := 0; v < g.NumVertices; v++ {
		src := g.RowPtr[v]
		dst := sub.RowPtr[v]
		keep := sub.RowPtr[v+1] - dst
		copy(sub.Col[dst:dst+keep], g.Col[src:src+keep])
		if sub.Weights != nil {
			copy(sub.Weights[dst:dst+keep], g.Weights[src:src+keep])
		}
	}
	return sub
}
