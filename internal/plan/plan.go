// Package plan is the execution planner behind the "auto" backend: it
// decides which concrete engine — and which shape (cohort width, shard
// count, hub/memory placement) — should serve a walk workload, instead
// of leaving every knob hand-picked.
//
// The decision combines three signals, cheapest first:
//
//   - Graph statistics (stats.go): vertex/edge counts, degree skew and
//     hub mass, weightedness, and the versioned-graph overlay dirtiness —
//     all O(V), computed once per graph.
//   - A calibration micro-bench (calibrate.go): tiny seeded cohort
//     sweeps per candidate configuration, run against a sampled subgraph
//     when the full graph is large, cached per (graph version, class).
//   - Served-query observations (planner.go): the serving layer feeds
//     realized steps/sec back through Observe; when it drifts beyond a
//     factor of the level the plan was adopted at, the class is
//     re-planned and the plan revision advances.
//
// The decision itself (Decide) is a pure function of the statistics,
// the constraints, and the calibration measurements, so it is
// deterministic and unit-testable without running a single probe.
package plan

import (
	"fmt"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

// Class is the planner's unit of decision: workloads that share a class
// share a plan. Walk length, seed, and termination parameters (PPR's α)
// shift absolute throughput but not the relative ordering of engines,
// so the class keys on the algorithm and the sampler-relevant graph
// weightedness only.
type Class struct {
	Algorithm walk.Algorithm
	Weighted  bool
}

// ClassOf maps a walk configuration on g to its planning class.
func ClassOf(g *graph.CSR, cfg walk.Config) Class {
	return Class{Algorithm: cfg.Algorithm, Weighted: g.Weighted()}
}

// String names the class for status displays ("DeepWalk/weighted").
func (c Class) String() string {
	if c.Weighted {
		return c.Algorithm.String() + "/weighted"
	}
	return c.Algorithm.String() + "/unweighted"
}

// Candidate is one concrete engine shape the planner can choose or
// probe: a backend name plus the shape knobs that backend honors.
type Candidate struct {
	Backend string
	// Cohort is the cpu-pipelined in-flight walker count per worker
	// (0 = backend default); other backends ignore it.
	Cohort int
	// Shards is the partition count for sharded execution (0 = none /
	// backend default).
	Shards int
}

// String renders the candidate the way the bench tables name
// configurations ("cpu-pipelined c64 s2").
func (c Candidate) String() string {
	s := c.Backend
	if c.Cohort > 0 {
		s += fmt.Sprintf(" c%d", c.Cohort)
	}
	if c.Shards > 0 {
		s += fmt.Sprintf(" s%d", c.Shards)
	}
	return s
}

// Constraints are the caller-pinned knobs the planner must honor: a
// nonzero Shards or Cohort restricts the candidate space to that value,
// and the memory knobs pass through to the chosen session unchanged —
// the planner never converts a stated budget into anything looser.
type Constraints struct {
	// Workers is the worker-pool size candidates run with; it doubles as
	// the effective parallelism bound when generating sharded candidates.
	// 0 means the runtime's GOMAXPROCS at planning time.
	Workers int
	// Shards, when nonzero, pins the shard count: only candidates with
	// exactly this shard count are considered.
	Shards int
	// Cohort, when nonzero, pins the cpu-pipelined cohort width.
	Cohort int
	// HubCacheBytes passes through to cpu-pipelined plans. It is dropped
	// (never forwarded) when MemoryBudgetBytes is also set — the tiered
	// hot arena subsumes the hub cache, and the pair is rejected by the
	// backend.
	HubCacheBytes int64
	// MemoryBudgetBytes is the stated memory budget. Every plan carries
	// it verbatim; the planner scales it only for probe runs on sampled
	// subgraphs, never for the plan itself.
	MemoryBudgetBytes int64
}

// Plan is a resolved execution decision for one class.
type Plan struct {
	Candidate
	// HubCacheBytes and MemoryBudgetBytes are the memory knobs the
	// session must be opened with (see Constraints).
	HubCacheBytes     int64
	MemoryBudgetBytes int64
	// PredictedStepsPerSec is the calibration measurement the choice was
	// based on; 0 when the plan came from statistics alone.
	PredictedStepsPerSec float64
	// Source records how the decision was made: "stats" (heuristics
	// only), "calibrated" (micro-bench), "replanned" (drift-triggered
	// recalibration), "demoted" (circuit breaker fell back to cpu), or
	// "restored" (half-open health probe reinstated the prior plan).
	Source string
	// Reason is a one-line human-readable justification.
	Reason string
	// Revision counts re-plans of this class; serving layers fold it
	// into their coalescing keys so a plan switch starts a fresh session
	// instead of tearing an in-flight one.
	Revision int
}

// Fingerprint canonicalizes everything about the plan that changes
// which session must serve it. Serving layers append it to their batch
// keys: requests under different fingerprints never share a session.
func (p Plan) Fingerprint() string {
	return fmt.Sprintf("%s|c%d|s%d|h%d|m%d|r%d",
		p.Backend, p.Cohort, p.Shards, p.HubCacheBytes, p.MemoryBudgetBytes, p.Revision)
}

// String renders the plan for -explain-plan output.
func (p Plan) String() string {
	s := p.Candidate.String()
	if p.HubCacheBytes > 0 {
		s += fmt.Sprintf(" hub=%dB", p.HubCacheBytes)
	}
	if p.MemoryBudgetBytes != 0 {
		s += fmt.Sprintf(" budget=%dB", p.MemoryBudgetBytes)
	}
	if p.PredictedStepsPerSec > 0 {
		s += fmt.Sprintf(" (predicted %.3g steps/s, %s)", p.PredictedStepsPerSec, p.Source)
	} else {
		s += fmt.Sprintf(" (%s)", p.Source)
	}
	return s
}

// Measurement is one calibration probe outcome.
type Measurement struct {
	Candidate   Candidate
	StepsPerSec float64
	// Err, when nonempty, marks a candidate that failed to open or run;
	// Decide skips it.
	Err string
}

// Candidates enumerates the engine shapes worth considering for st
// under cons, in deterministic order. The list is deliberately small —
// calibration cost is candidates × probe runtime — and prunes shapes
// the bench record shows cannot win: sharded execution needs more than
// one effective core, and hub-cache variants are a pass-through pin,
// not a searched dimension.
func Candidates(st GraphStats, cons Constraints) []Candidate {
	procs := cons.Workers
	if procs < 1 {
		procs = 1
	}
	cohorts := []int{16, 64, 256}
	if cons.Cohort > 0 {
		cohorts = []int{cons.Cohort}
	}
	shards := 0
	if procs > 1 {
		shards = procs
		if shards > 8 {
			shards = 8
		}
	}
	if cons.Shards > 0 {
		shards = cons.Shards
	}
	// A shard must own at least one vertex.
	if shards > st.Vertices {
		shards = st.Vertices
	}
	var out []Candidate
	if cons.Shards == 0 {
		// Unsharded shapes: the flat engine and the cohort pipeline.
		out = append(out, Candidate{Backend: "cpu"})
		for _, c := range cohorts {
			out = append(out, Candidate{Backend: "cpu-pipelined", Cohort: c})
		}
	}
	if shards > 1 {
		out = append(out, Candidate{Backend: "cpu-sharded", Shards: shards})
		for _, c := range cohorts {
			out = append(out, Candidate{Backend: "cpu-pipelined", Cohort: c, Shards: shards})
		}
	}
	if len(out) == 0 {
		out = append(out, Candidate{Backend: "cpu"})
	}
	return out
}

// Decide is the pure decision function: given the graph statistics, the
// constraints, and whatever calibration measurements exist (possibly
// none), it returns the plan. With measurements it picks the fastest
// surviving candidate (first wins ties, and the candidate order is
// deterministic, so so is the decision); without, it falls back to the
// heuristics the bench record supports: the cohort pipeline never loses
// to the flat engine, and sharding pays only past one effective core.
func Decide(st GraphStats, cons Constraints, ms []Measurement) Plan {
	p := Plan{MemoryBudgetBytes: cons.MemoryBudgetBytes}
	if cons.MemoryBudgetBytes == 0 {
		p.HubCacheBytes = cons.HubCacheBytes
	}
	var best *Measurement
	for i := range ms {
		m := &ms[i]
		if m.Err != "" || m.StepsPerSec <= 0 {
			continue
		}
		if best == nil || m.StepsPerSec > best.StepsPerSec {
			best = m
		}
	}
	if best != nil {
		p.Candidate = best.Candidate
		p.PredictedStepsPerSec = best.StepsPerSec
		p.Source = "calibrated"
		p.Reason = fmt.Sprintf("fastest of %d probed candidates", len(ms))
		return p
	}
	// Stats-only fallback.
	cands := Candidates(st, cons)
	p.Candidate = cands[0]
	p.Source = "stats"
	p.Reason = "no calibration measurements; first candidate"
	procs := cons.Workers
	if procs < 1 {
		procs = 1
	}
	for _, c := range cands {
		if procs > 1 && c.Shards > 1 && c.Backend == "cpu-pipelined" {
			p.Candidate = c
			p.Reason = fmt.Sprintf("stats: %d workers, sharded cohort pipeline", procs)
			return p
		}
	}
	for _, c := range cands {
		if c.Backend == "cpu-pipelined" && (c.Cohort == 64 || cons.Cohort > 0) {
			p.Candidate = c
			p.Reason = "stats: cohort pipeline is never slower than the flat engine"
			return p
		}
	}
	return p
}
