package plan

import (
	"math/bits"

	"ridgewalker/internal/graph"
)

// GraphStats are the load-time statistics feeding the plan decision.
// Everything here is one O(V) pass over the row-pointer array — no edge
// traversal — so computing them at graph load or service start is
// negligible next to building a single sampler.
type GraphStats struct {
	// Vertices and Edges are the graph dimensions.
	Vertices int
	Edges    int64
	// ZeroOutDegree counts sink vertices (walks terminate immediately).
	ZeroOutDegree int
	// AvgDegree and MaxDegree summarize the degree distribution.
	AvgDegree float64
	MaxDegree int
	// HubMass is the fraction of all edges owned by (approximately) the
	// top 1% highest-degree vertices — the skew signal that decides
	// whether hub-oriented placement (hot arenas, hub caches) can pay.
	// It is computed from power-of-two degree buckets, so the vertex cut
	// is approximate but deterministic.
	HubMass float64
	// Weighted and Labeled report which payloads the graph carries
	// (which algorithms are servable and which sampler kinds apply).
	Weighted bool
	Labeled  bool
	// Epoch and OverlayDirtyFraction describe the versioned-graph state
	// the statistics were taken under: the serving epoch and the
	// fraction of vertices whose rows live in the mutation overlay.
	// A dirty overlay shifts row reads onto the merged-row slow path,
	// which calibration measures implicitly when probing the base graph
	// underestimates; the fraction is surfaced so drift re-planning has
	// the context.
	Epoch                uint64
	OverlayDirtyFraction float64
}

// ComputeStats derives the planner's graph statistics for g, optionally
// under an epoch snapshot (nil for a pristine graph).
func ComputeStats(g *graph.CSR, snap *graph.Snapshot) GraphStats {
	st := GraphStats{
		Vertices: g.NumVertices,
		Edges:    g.NumEdges(),
		Weighted: g.Weighted(),
		Labeled:  g.Labels != nil,
	}
	// One pass: degree extremes, sinks, and power-of-two degree buckets
	// (bucket b holds degrees in [2^(b-1), 2^b)), each tracking its
	// vertex count and edge sum.
	const nbuckets = 64
	var cnt [nbuckets]int
	var mass [nbuckets]int64
	for v := 0; v < g.NumVertices; v++ {
		d := int(g.RowPtr[v+1] - g.RowPtr[v])
		if d == 0 {
			st.ZeroOutDegree++
			continue
		}
		if d > st.MaxDegree {
			st.MaxDegree = d
		}
		b := bits.Len(uint(d))
		cnt[b]++
		mass[b] += int64(d)
	}
	if st.Vertices > 0 {
		st.AvgDegree = float64(st.Edges) / float64(st.Vertices)
	}
	if st.Edges > 0 {
		// Walk buckets highest-degree first until the top ~1% of vertices
		// is covered; a partially consumed bucket contributes its edge
		// mass pro-rated by vertex count, keeping the statistic smooth.
		want := st.Vertices / 100
		if want < 1 {
			want = 1
		}
		taken, hub := 0, int64(0)
		for b := nbuckets - 1; b >= 0 && taken < want; b-- {
			if cnt[b] == 0 {
				continue
			}
			if taken+cnt[b] <= want {
				taken += cnt[b]
				hub += mass[b]
				continue
			}
			frac := float64(want-taken) / float64(cnt[b])
			hub += int64(frac * float64(mass[b]))
			taken = want
		}
		st.HubMass = float64(hub) / float64(st.Edges)
	}
	if snap != nil {
		st.Epoch = snap.Epoch()
		if g.NumVertices > 0 {
			st.OverlayDirtyFraction = float64(snap.NumDirty()) / float64(g.NumVertices)
		}
	}
	return st
}
