package exec

import (
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
)

// Placement oracle: the tiered store's hot-set policy (pin the
// highest-degree rows that fit the budget) is validated against the
// seed's cycle-level hbm channel simulator rather than asserted by
// construction. A walk workload's row-access trace is replayed through
// a two-channel memory model — a fast channel standing in for the
// uncompressed hot arena and a slow one for the compressed cold tier
// (varint decode on every access) — and the policy's placement must
// drain the trace in no more cycles than competing placements with the
// same hot capacity. See TestPlacementOracle.

// oracleHot / oracleCold are the replay channel timings. The exact
// numbers only need to preserve the ordering "hot access cheaper than
// cold access"; they are chosen in the seed simulator's units (core
// cycles) with the cold service interval and latency covering a
// row-at-a-time group-varint decode. ReorderWindow 0 keeps the replay
// deterministic.
var (
	oracleHot = hbm.ChannelConfig{ServiceInterval: 1, Latency: 2, MaxOutstanding: 16}
	// Cold rows pay the decode on top of the fetch: a longer service
	// occupancy (the decoder is busy) and a longer round trip.
	oracleCold = hbm.ChannelConfig{ServiceInterval: 4, Latency: 24, MaxOutstanding: 16}
)

// PlacementCost replays a row-access trace (one entry per row fetch, in
// workload order) through the two-channel oracle under the given
// placement and returns the core-cycle count to drain it. Lower is
// better; the only meaningful use is comparing placements over the same
// trace.
func PlacementCost(trace []graph.VertexID, isHot func(graph.VertexID) bool) int64 {
	hot := hbm.NewChannel(oracleHot)
	cold := hbm.NewChannel(oracleCold)
	var now int64
	pending := 0
	tick := func() {
		hot.Tick(now)
		cold.Tick(now)
		now++
		for {
			if _, ok := hot.PopResponse(); ok {
				pending--
				continue
			}
			if _, ok := cold.PopResponse(); ok {
				pending--
				continue
			}
			break
		}
	}
	for _, v := range trace {
		ch := cold
		if isHot(v) {
			ch = hot
		}
		for !ch.Push(hbm.Request{Addr: uint64(v)}) {
			tick()
		}
		pending++
	}
	for pending > 0 {
		tick()
	}
	return now
}

// RowTrace flattens finished walk paths into the row-access sequence the
// engines actually perform: every non-terminal path position is one row
// fetch of that vertex (the final vertex's row is never read).
func RowTrace(paths [][]graph.VertexID) []graph.VertexID {
	var trace []graph.VertexID
	for _, p := range paths {
		if len(p) > 1 {
			trace = append(trace, p[:len(p)-1]...)
		}
	}
	return trace
}
