package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/shard"
	"ridgewalker/internal/walk"
)

func init() {
	Register(pipelinedBackend{})
}

// DefaultCohort is the cpu-pipelined backend's in-flight walker count per
// worker when Config.Cohort is zero. Big enough that a cohort's row
// fetches cover memory latency, small enough that the per-lane state of a
// worker's cohort stays cache-resident.
const DefaultCohort = 64

// pipelinedBackend is the step-interleaved software engine: the walk step
// is decomposed into Gather (CSR row bounds + neighbor-slice touch),
// Sample (stage-resumable Propose/Accept decision), and Move (state
// advance, path emit, retire/respawn), each run as a tight batched loop
// over a cohort of in-flight walkers (walk.Cohort) — the software shadow
// of the paper's perfectly pipelined datapath, in the spirit of
// ThunderRW's step interleaving. With Shards > 0 the cohort stepper runs
// inside the sharded engine's per-shard workers, composing partition
// locality with step interleaving. Per-walker RNG streams keep output
// byte-identical to the cpu backend for the same seed at any cohort size,
// worker count, or shard count.
type pipelinedBackend struct{}

func (pipelinedBackend) Name() string { return "cpu-pipelined" }

func (pipelinedBackend) Description() string {
	return "step-interleaved software engine: cohort-batched Gather/Sample/Move pipeline"
}

// MergesBatches implements BatchMerger: per-lane RNG streams make walks
// independent of batch composition and cohort packing.
func (pipelinedBackend) MergesBatches() bool { return true }

// SupportsMemoryTiering implements MemoryTierer: the cohort Gather stage
// serves hot rows from the arena and decodes cold rows per lane.
func (pipelinedBackend) SupportsMemoryTiering() bool { return true }

// SupportsVersionedGraphs implements VersionedGrapher: the cohort Gather
// stage consults the epoch overlay before the base row.
func (pipelinedBackend) SupportsVersionedGraphs() bool { return true }

// Heartbeats implements Heartbeater: the cohort stepper bumps
// Batch.Heartbeat once per cohort pass (sharded composition: per
// finished walk).
func (pipelinedBackend) Heartbeats() bool { return true }

func (pipelinedBackend) Open(g *graph.CSR, cfg Config) (Session, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("exec: cpu-pipelined workers %d, want >= 0", cfg.Workers)
	}
	if cfg.Cohort < 0 {
		return nil, fmt.Errorf("exec: cpu-pipelined cohort %d, want >= 0", cfg.Cohort)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("exec: cpu-pipelined shards %d, want >= 0", cfg.Shards)
	}
	cohort := cfg.Cohort
	if cohort == 0 {
		cohort = DefaultCohort
	}
	if cfg.MemoryBudgetBytes != 0 && cfg.HubCacheBytes > 0 {
		return nil, fmt.Errorf("exec: cpu-pipelined: MemoryBudgetBytes and HubCacheBytes are mutually exclusive (the tiered hot arena subsumes the hub cache)")
	}
	// The degree-aware hub arena (opt-in via HubCacheBytes) serves the
	// cohort Gather stage in both the sharded and unsharded compositions;
	// content identity with the CSR keeps trajectories byte-identical.
	var lay *graph.Layout
	if cfg.HubCacheBytes > 0 {
		lay = graph.NewLayout(g, cfg.HubCacheBytes)
	}
	// The sampler is borrowed from the process-wide registry in both
	// compositions, so pipelined, sharded, and flat cpu sessions over the
	// same graph all read one store. A memory budget swaps both borrows
	// for their tiered counterparts; the cohort Gather stage then decodes
	// cold rows into per-lane scratch.
	ref, ts, err := acquireWalkState(g, cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Shards > 0 {
		// Sharding × pipelining: per-shard workers run the cohort stepper.
		part, err := shard.Partition(g, cfg.Shards)
		if err != nil {
			ts.release()
			ref.Release()
			return nil, err
		}
		ecfg := shard.EngineConfig{
			Workers:  cfg.Workers,
			Cohort:   cohort,
			Layout:   lay,
			Sampler:  ref.Sampler(),
			Snapshot: cfg.Snapshot,
		}
		if ts != nil {
			ecfg.Tiered = ts.gref.Store()
		}
		eng, err := shard.NewEngine(g, part, cfg.Walk, ecfg)
		if err != nil {
			ts.release()
			ref.Release()
			return nil, err
		}
		return &shardedSession{eng: eng, discard: cfg.DiscardPaths, sampler: ref, tier: ts, tag: "cpu-pipelined"}, nil
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &pipelinedSession{g: g, discard: cfg.DiscardPaths, sampler: ref, tier: ts}
	s.pipes = make([]*walk.Pipeline, workers)
	for i := range s.pipes {
		p, err := walk.NewPipelineWithSampler(g, cfg.Walk, ref.Sampler(), cohort)
		if err != nil {
			ts.release()
			ref.Release()
			return nil, err
		}
		if lay != nil {
			p.SetLayout(lay)
		}
		if ts != nil {
			p.SetTiered(ts.gref.Store())
		}
		if cfg.Snapshot != nil {
			p.SetSnapshot(cfg.Snapshot)
		}
		s.pipes[i] = p
	}
	return s, nil
}

// pipelinedSession mirrors cpuSession's worker-pool structure, with each
// worker driving its contiguous chunk of the batch through a reusable
// walk.Pipeline instead of a sequential Walker.
type pipelinedSession struct {
	mu      sync.Mutex // serializes Run/Stream: pipelines are single-batch state
	g       *graph.CSR
	discard bool
	sampler *sampling.SamplerRef
	tier    *tierState
	pipes   []*walk.Pipeline
}

// MemoryReport implements MemoryReporter (nil for untiered sessions).
func (s *pipelinedSession) MemoryReport() *MemoryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tier.report()
}

// SamplerBytes reports the resident size of the session's (shared)
// sampler state.
func (s *pipelinedSession) SamplerBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sampler == nil {
		return 0
	}
	return sampling.Footprint(s.sampler.Sampler())
}

// forEachWalk partitions the batch into contiguous chunks, one per worker
// pipeline, and invokes emit for every finished walk. Within a chunk,
// delivery order follows lane retirement, not batch order; the index
// passed to emit is the query's position in the whole batch. The path
// aliases a recycled lane buffer.
func (s *pipelinedSession) forEachWalk(ctx context.Context, batch Batch,
	emit func(worker, index int, q walk.Query, path []graph.VertexID, steps int64) error) error {
	workers := len(s.pipes)
	if workers == 0 {
		return fmt.Errorf("exec: session is closed")
	}
	hb := batch.Heartbeat
	return runChunked(ctx, len(batch.Queries), workers, func(w, lo, hi int, stopped func() bool) error {
		if err := fault.CheckTag(fault.BatchExec, "cpu-pipelined"); err != nil {
			return err
		}
		// Cooperative cancellation inside the cohort loop: the pipeline
		// polls the stop hook once per cohort pass (at most one hop per
		// lane between polls), so an expired deadline sheds remaining
		// steps mid-walk instead of finishing the chunk. The watchdog
		// heartbeat rides the same poll.
		hook := stopped
		if hb != nil {
			hook = func() bool {
				hb.Add(1)
				return stopped()
			}
		}
		s.pipes[w].SetStop(hook)
		defer s.pipes[w].SetStop(nil)
		_, err := s.pipes[w].Run(batch.Queries[lo:hi],
			func(i int, q walk.Query, path []graph.VertexID, steps int64) error {
				return emit(w, lo+i, q, path, steps)
			})
		if err == walk.ErrStopped {
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			return errStopped
		}
		return err
	})
}

func (s *pipelinedSession) Run(ctx context.Context, batch Batch) (*BatchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := &BatchResult{}
	if !s.discard {
		res.Paths = make([][]graph.VertexID, len(batch.Queries))
	}
	var steps atomic.Int64
	err := s.forEachWalk(ctx, batch, func(_, i int, _ walk.Query, path []graph.VertexID, st int64) error {
		if !s.discard {
			cp := make([]graph.VertexID, len(path))
			copy(cp, path)
			res.Paths[i] = cp
		}
		steps.Add(st)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Steps = steps.Load()
	res.Memory = s.tier.report()
	return res, nil
}

func (s *pipelinedSession) Stream(ctx context.Context, batch Batch, fn func(WalkOutput) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var outMu sync.Mutex // fn contract: never called concurrently
	return s.forEachWalk(ctx, batch, func(_, _ int, q walk.Query, path []graph.VertexID, st int64) error {
		outMu.Lock()
		defer outMu.Unlock()
		return fn(WalkOutput{Query: q.ID, Path: path, Steps: st})
	})
}

func (s *pipelinedSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pipes = nil
	if s.sampler != nil {
		s.sampler.Release()
		s.sampler = nil
	}
	s.tier.release() // idempotent with the sampler release above
	s.tier = nil
	return nil
}
