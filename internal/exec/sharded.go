package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/shard"
	"ridgewalker/internal/walk"
)

func init() {
	Register(shardedBackend{})
}

// shardedBackend is the partitioned software engine: the graph is split
// into edge-balanced shards (internal/shard), each shard owns a worker
// pool, and walkers migrate between shards through batched mailbox
// hand-offs when a hop crosses a partition boundary. Per-walker RNG
// streams keep its output byte-identical to the "cpu" backend for the
// same seed at any shard count.
type shardedBackend struct{}

func (shardedBackend) Name() string { return "cpu-sharded" }

func (shardedBackend) Description() string {
	return "partitioned software engine: per-shard worker pools, batched walker migration"
}

// MergesBatches implements BatchMerger: per-walker RNG streams make walks
// independent of batch composition.
func (shardedBackend) MergesBatches() bool { return true }

// SupportsMemoryTiering implements MemoryTierer: depth-first shard
// workers advance through per-worker TierViews when a budget is set.
func (shardedBackend) SupportsMemoryTiering() bool { return true }

// SupportsVersionedGraphs implements VersionedGrapher: shard workers
// consult the epoch overlay through their staged row views.
func (shardedBackend) SupportsVersionedGraphs() bool { return true }

// Heartbeats implements Heartbeater: the session bumps Batch.Heartbeat
// on every finished walk.
func (shardedBackend) Heartbeats() bool { return true }

// defaultShards picks a shard count when the config leaves it zero: one
// shard per core up to 8 (beyond that, cut-edge traffic outgrows the
// locality win on the graphs this repository generates), clamped to the
// vertex count so tiny graphs still open.
func defaultShards(g *graph.CSR) int {
	k := runtime.GOMAXPROCS(0)
	if k > 8 {
		k = 8
	}
	if k > g.NumVertices {
		k = g.NumVertices
	}
	if k < 1 {
		k = 1
	}
	return k
}

func (shardedBackend) Open(g *graph.CSR, cfg Config) (Session, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("exec: cpu-sharded workers %d, want >= 0", cfg.Workers)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("exec: cpu-sharded shards %d, want >= 0", cfg.Shards)
	}
	k := cfg.Shards
	if k == 0 {
		k = defaultShards(g)
	}
	part, err := shard.Partition(g, k)
	if err != nil {
		return nil, err
	}
	// Per-shard execution borrows the registry's global sampler store;
	// shard views never duplicate O(E) sampler state. A memory budget
	// swaps the borrows for their tiered counterparts; each depth-first
	// worker then advances through its own TierView.
	ref, ts, err := acquireWalkState(g, cfg)
	if err != nil {
		return nil, err
	}
	ecfg := shard.EngineConfig{Workers: cfg.Workers, Sampler: ref.Sampler(), Snapshot: cfg.Snapshot}
	if ts != nil {
		ecfg.Tiered = ts.gref.Store()
	}
	eng, err := shard.NewEngine(g, part, cfg.Walk, ecfg)
	if err != nil {
		ts.release()
		ref.Release()
		return nil, err
	}
	return &shardedSession{eng: eng, discard: cfg.DiscardPaths, sampler: ref, tier: ts, tag: "cpu-sharded"}, nil
}

// shardedSession adapts a shard.Engine to the Session interface. The
// engine keeps no cross-run state, so unlike cpuSession no run-serializing
// mutex is needed; mu only guards Close against in-flight calls observing
// a nil engine.
type shardedSession struct {
	mu      sync.RWMutex
	eng     *shard.Engine
	discard bool
	sampler *sampling.SamplerRef
	tier    *tierState
	// tag is the creating backend's name ("cpu-sharded", or
	// "cpu-pipelined" for the sharded×pipelined composition); it
	// discriminates BatchExec fault injections.
	tag string
}

// MemoryReport implements MemoryReporter (nil for untiered sessions).
func (s *shardedSession) MemoryReport() *MemoryReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tier.report()
}

// SamplerBytes reports the resident size of the session's (shared)
// sampler state.
func (s *shardedSession) SamplerBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.sampler == nil {
		return 0
	}
	return sampling.Footprint(s.sampler.Sampler())
}

func (s *shardedSession) engine() (*shard.Engine, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.eng == nil {
		return nil, fmt.Errorf("exec: session is closed")
	}
	return s.eng, nil
}

func (s *shardedSession) Run(ctx context.Context, batch Batch) (*BatchResult, error) {
	eng, err := s.engine()
	if err != nil {
		return nil, err
	}
	if err := fault.CheckTag(fault.BatchExec, s.tag); err != nil {
		return nil, err
	}
	res := &BatchResult{}
	if !s.discard {
		res.Paths = make([][]graph.VertexID, len(batch.Queries))
	}
	var steps atomic.Int64
	hb := batch.Heartbeat
	// Emits arrive concurrently from shard workers; each batch index is
	// finished exactly once, so the per-slot writes need no lock.
	_, err = eng.Run(ctx, batch.Queries, func(i int, _ walk.Query, path []graph.VertexID, st int64) error {
		if !s.discard {
			cp := make([]graph.VertexID, len(path))
			copy(cp, path)
			res.Paths[i] = cp
		}
		if hb != nil {
			hb.Add(1)
		}
		steps.Add(st)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Steps = steps.Load()
	res.Memory = s.tier.report()
	return res, nil
}

func (s *shardedSession) Stream(ctx context.Context, batch Batch, fn func(WalkOutput) error) error {
	eng, err := s.engine()
	if err != nil {
		return err
	}
	if err := fault.CheckTag(fault.BatchExec, s.tag); err != nil {
		return err
	}
	hb := batch.Heartbeat
	var outMu sync.Mutex // fn contract: never called concurrently
	_, err = eng.Run(ctx, batch.Queries, func(_ int, q walk.Query, path []graph.VertexID, st int64) error {
		outMu.Lock()
		defer outMu.Unlock()
		if hb != nil {
			hb.Add(1)
		}
		return fn(WalkOutput{Query: q.ID, Path: path, Steps: st})
	})
	return err
}

func (s *shardedSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.eng = nil
	if s.sampler != nil {
		s.sampler.Release()
		s.sampler = nil
	}
	s.tier.release() // idempotent with the sampler release above
	s.tier = nil
	return nil
}
