// Package exec is the unified execution layer: every way this repository
// can run a graph-random-walk workload — the multi-core CPU engine, the
// cycle-level RidgeWalker accelerator simulator, and the modeled baseline
// systems — is exposed behind one Backend interface and selected by a
// string key.
//
// The layer has three concepts:
//
//   - A Backend is a named engine factory. Open binds it to a graph and a
//     configuration, performing all per-workload setup (sampler and alias
//     table construction, simulator instantiation, worker allocation) once.
//   - A Session is a bound, reusable executor. Run executes a query batch
//     and returns the accumulated BatchResult; Stream executes the batch
//     and delivers each finished walk through a callback instead, so
//     arbitrarily large workloads run without materializing all paths.
//   - The registry maps backend names ("cpu", "cpu-sharded", "ridgewalker",
//     "lightrw", "suetal", "fastrw", "gsampler") to Backend values; higher layers —
//     the public ridgewalker.Service, the cmd/ridgewalker CLI, and the
//     internal/bench figure drivers — select engines by name only.
//
// Sessions are safe for concurrent use: calls on one Session are
// serialized internally, so a service layer can cache and share them.
package exec

import (
	"context"
	"sync/atomic"

	"ridgewalker/internal/baselines"
	"ridgewalker/internal/core"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/plan"
	"ridgewalker/internal/walk"
)

// Config configures a Session at Open time. Only Walk is required; every
// other field has a backend-appropriate default and fields irrelevant to
// the selected backend are ignored.
type Config struct {
	// Walk selects the GRW algorithm and its parameters (required).
	Walk walk.Config

	// Platform selects the accelerator memory system for simulator-backed
	// and analytic backends. The zero value uses each backend's published
	// platform (U55C for ridgewalker/lightrw/suetal; FastRW and gSampler
	// carry their own platform in their model configs).
	Platform hbm.Platform

	// Workers sets the CPU backends' worker-pool size. 0 means
	// runtime.GOMAXPROCS(0). Each worker owns a reused path buffer and RNG
	// stream, so the hot path allocates nothing per step.
	Workers int

	// Shards sets the cpu-sharded backend's partition count: the graph is
	// split into this many edge-balanced shards, each owning a worker pool,
	// with walkers migrating between shards on boundary crossings. 0 means
	// a backend-chosen default (GOMAXPROCS capped at 8). The cpu-pipelined
	// backend also honors it: Shards > 0 composes the cohort pipeline with
	// the sharded engine (per-shard workers run the pipelined stepper).
	// Other backends ignore it.
	Shards int

	// Cohort sets the cpu-pipelined backend's in-flight walker count per
	// worker: each worker advances that many walks together through the
	// batched Gather/Sample/Move stages, overlapping CSR row fetches across
	// walks. 0 means the backend default (64). Other backends ignore it.
	Cohort int

	// HubCacheBytes, when positive, sizes the degree-aware hub arena the
	// cpu-pipelined backend builds over the graph: the highest-degree
	// rows are copied, hub-first and cache-line aligned, into one compact
	// block served to the cohort Gather stage (graph.Layout), so the hot
	// rows of a power-law walk live in a cache-resident arena instead of
	// being scattered across the full CSR. The layout is content-
	// identical to the CSR, so results are unaffected. 0 (the default)
	// leaves the arena off: it is designed for multi-core runs where
	// shard workers contend for the last-level cache, and measures
	// neutral-to-slightly-negative on single-core hosts whose hub rows
	// are already LLC-resident in place (see graph.Layout). Other
	// backends ignore it.
	HubCacheBytes int64

	// MemoryBudgetBytes, when nonzero, serves the CPU backends through
	// tiered memory: the highest-degree rows — the bulk of a power-law
	// walk's traffic — stay uncompressed in a hot arena sized by the
	// budget, and the cold tail is stored delta-gap group-varint
	// compressed (graph.Tiered), decoded row-at-a-time into per-worker
	// scratch. Workloads with an O(E) alias store (weighted DeepWalk)
	// split the budget evenly between the graph and sampler tiers
	// (sampling.TieredAlias quantizes cold rows); other samplers give the
	// whole budget to the graph tier. Both stores are content-identical
	// to their flat counterparts, so trajectories are byte-identical at
	// any budget. Negative pins nothing — an all-cold store (tests,
	// worst-case footprint measurement). 0 (the default) keeps the flat
	// stores. Use graph.AutoMemoryBudget for a fit-the-hubs default.
	// Mutually exclusive with HubCacheBytes on cpu-pipelined (the hot
	// arena subsumes the hub cache). Simulator and analytic backends
	// ignore it.
	MemoryBudgetBytes int64

	// Snapshot, when non-nil, serves an epoch snapshot of a versioned
	// graph (graph.Versioned): rows dirtied by edge mutations since the
	// last compaction are read from the snapshot's merged overlay, clean
	// rows from the base CSR the session was opened on (which must be
	// Snapshot.Graph()). Weighted alias workloads derive their sampler
	// incrementally — only the dirty rows are rebuilt, into a spill arena
	// shared per (graph version, epoch, spec) through the sampler registry
	// — so opening against a snapshot costs O(dirty edges), not O(E).
	// Under a memory budget the graph tier gets the whole budget (tiered
	// alias rows cannot be incrementally rebuilt; draws are identical
	// either way). Only the CPU backends support snapshots
	// (SupportsVersionedGraphs); the simulator and analytic backends
	// reject them.
	Snapshot *graph.Snapshot

	// DiscardPaths drops per-query paths from Run results (throughput
	// studies on large workloads). Stream never accumulates paths.
	DiscardPaths bool

	// DisableAsync and DisableDynamicSched are the RidgeWalker backend's
	// Fig. 11 ablation switches.
	DisableAsync        bool
	DisableDynamicSched bool

	// FastRW overrides the FastRW backend's model parameters
	// (default baselines.DefaultFastRW).
	FastRW *baselines.FastRWConfig

	// GPU overrides the gSampler backend's model parameters
	// (default baselines.DefaultH100).
	GPU *baselines.GPUConfig

	// Plan tunes the "auto" backend's planner (calibration micro-bench,
	// probe seed and sizes, drift thresholds). nil means stats-only
	// planning at Open — cheap enough for one-shot sessions; long-lived
	// serving layers enable plan.Options.Calibrate. Other backends
	// ignore it.
	Plan *plan.Options
}

// platform returns the configured platform or the given default.
func (c Config) platform(def hbm.Platform) hbm.Platform {
	if c.Platform.Name == "" {
		return def
	}
	return c.Platform
}

// Batch is one unit of submitted work: a set of walk queries executed
// under the Session's configuration. Query IDs key the deterministic
// per-query RNG streams; batches merged from several requests may repeat
// IDs on the CPU backend (each query's walk depends only on its own ID),
// while simulator backends require unique IDs within a batch.
type Batch struct {
	Queries []walk.Query

	// Heartbeat, when non-nil, is incremented by heartbeat-capable
	// sessions (SupportsHeartbeats) at their cooperative-stop
	// checkpoints — every 64 walks on the flat engine, every cohort
	// pass on the pipeline, every finished walk on the sharded engine.
	// Serving-layer watchdogs watch the counter to tell a slow batch
	// from a wedged one; sessions without the capability ignore it.
	Heartbeat *atomic.Int64
}

// WalkOutput is one finished walk delivered through Session.Stream.
type WalkOutput struct {
	// Query is the originating query's ID.
	Query uint32
	// Path is the visited-vertex sequence including the start vertex. It
	// is valid only for the duration of the callback; callers that retain
	// paths must copy them (backends recycle the buffer).
	Path []graph.VertexID
	// Steps is the number of hops taken (len(Path)-1).
	Steps int64
}

// BatchResult aggregates a Run call.
type BatchResult struct {
	// Paths holds each query's path in batch order (nil when the session
	// was opened with DiscardPaths).
	Paths [][]graph.VertexID
	// Steps is the total hop count across the batch.
	Steps int64
	// Sim carries cycle-level performance statistics for simulator-backed
	// backends (ridgewalker, lightrw, suetal); nil otherwise.
	Sim *core.Stats
	// Model carries modeled performance for baseline backends (lightrw,
	// suetal, fastrw, gsampler); nil otherwise.
	Model *baselines.Result
	// Memory carries the session's tiered-memory placement accounting;
	// nil unless the session was opened with a nonzero MemoryBudgetBytes.
	Memory *MemoryReport
	// Plan carries the resolved execution plan for sessions opened
	// through the "auto" backend (chosen backend and shape, predicted
	// vs observed steps/sec); nil for manually selected backends.
	Plan *PlanReport
}

// Session is a backend bound to one graph and configuration, reusable
// across batches. Implementations serialize Run/Stream internally, so a
// Session may be shared between goroutines.
type Session interface {
	// Run executes the batch to completion and returns the accumulated
	// result. The output is deterministic in the configured seed.
	Run(ctx context.Context, batch Batch) (*BatchResult, error)
	// Stream executes the batch, delivering each finished walk to fn as it
	// completes instead of accumulating paths — the whole-workload memory
	// footprint stays O(queries), not O(steps). Delivery order is
	// unspecified; fn is never called concurrently. A non-nil error from
	// fn stops the run and is returned.
	Stream(ctx context.Context, batch Batch, fn func(WalkOutput) error) error
	// Close releases session resources. The session must not be used
	// afterwards.
	Close() error
}

// Backend is a named execution engine.
type Backend interface {
	// Name is the registry key ("cpu", "ridgewalker", ...).
	Name() string
	// Description is a one-line summary for CLI listings.
	Description() string
	// Open binds the backend to a graph and configuration, performing all
	// per-workload setup. The graph must satisfy the walk config's
	// requirements (weights for DeepWalk, labels for MetaPath).
	Open(g *graph.CSR, cfg Config) (Session, error)
}

// SamplerSizer is an optional Session capability: sessions that borrow
// sampler state from the sampler registry report its resident byte size
// (the flat alias store for weighted DeepWalk, near-zero for parametric
// samplers). The perf suite records it as sampler_bytes.
type SamplerSizer interface {
	SamplerBytes() int64
}

// BatchMerger is an optional Backend capability: backends whose walks
// depend only on (seed, query ID, start vertex) — never on batch
// composition — implement it (returning true) to let serving layers
// coalesce concurrent requests into one Session.Run dispatch. Backends
// without the capability (simulators routing walks through shared
// pipelines, models requiring unique query IDs per batch) are dispatched
// per request.
type BatchMerger interface {
	MergesBatches() bool
}

// MergesBatches reports whether the named backend declares the
// batch-merge capability. Unknown names report false.
func MergesBatches(name string) bool {
	b, err := Lookup(name)
	if err != nil {
		return false
	}
	m, ok := b.(BatchMerger)
	return ok && m.MergesBatches()
}

// Heartbeater is an optional Backend capability: backends whose sessions
// bump Batch.Heartbeat at cooperative-stop checkpoints implement it
// (returning true), which is what licenses a serving-layer watchdog to
// treat a flat heartbeat as "wedged" and cancel the batch. Backends
// without the capability (simulators, analytic models) are never
// watchdog-killed.
type Heartbeater interface {
	Heartbeats() bool
}

// SupportsHeartbeats reports whether the named backend declares the
// heartbeat capability. Unknown names report false.
func SupportsHeartbeats(name string) bool {
	b, err := Lookup(name)
	if err != nil {
		return false
	}
	h, ok := b.(Heartbeater)
	return ok && h.Heartbeats()
}

// MemoryTierer is an optional Backend capability: backends that honor
// Config.MemoryBudgetBytes — serving walks through the tiered graph and
// sampler stores — implement it (returning true) so CLI listings and
// serving layers can tell which engines the budget knob reaches.
type MemoryTierer interface {
	SupportsMemoryTiering() bool
}

// SupportsMemoryTiering reports whether the named backend declares the
// tiered-memory capability. Unknown names report false.
func SupportsMemoryTiering(name string) bool {
	b, err := Lookup(name)
	if err != nil {
		return false
	}
	m, ok := b.(MemoryTierer)
	return ok && m.SupportsMemoryTiering()
}

// VersionedGrapher is an optional Backend capability: backends that honor
// Config.Snapshot — serving walks against an epoch snapshot of a
// versioned graph — implement it (returning true). Backends without the
// capability reject a non-nil Snapshot at Open.
type VersionedGrapher interface {
	SupportsVersionedGraphs() bool
}

// SupportsVersionedGraphs reports whether the named backend declares the
// versioned-graph capability. Unknown names report false.
func SupportsVersionedGraphs(name string) bool {
	b, err := Lookup(name)
	if err != nil {
		return false
	}
	v, ok := b.(VersionedGrapher)
	return ok && v.SupportsVersionedGraphs()
}

// PlanReport is the resolved execution decision a planned session runs
// under, plus its realized throughput — the record that keeps the
// "auto" backend debuggable instead of a black box.
type PlanReport struct {
	// Backend, Cohort, Shards, HubCacheBytes, and MemoryBudgetBytes are
	// the chosen engine and shape.
	Backend           string
	Cohort            int
	Shards            int
	HubCacheBytes     int64
	MemoryBudgetBytes int64
	// Source and Reason record how the decision was made ("stats",
	// "calibrated", "replanned") and why.
	Source string
	Reason string
	// Revision counts drift-triggered re-plans of the class.
	Revision int
	// PredictedStepsPerSec is the calibration prediction (0 for
	// stats-only plans); ObservedStepsPerSec is the EWMA of the
	// session's own runs so far, with Runs counting them.
	PredictedStepsPerSec float64
	ObservedStepsPerSec  float64
	Runs                 int64
}

// PlanReporter is an optional Session capability: sessions opened
// through the "auto" backend report the plan they resolved to. The
// returned report is a snapshot; mutating it does not affect the
// session.
type PlanReporter interface {
	PlanReport() *PlanReport
}
