package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/plan"
	"ridgewalker/internal/walk"
)

// autoBackend is the planner-driven meta-backend: Open resolves an
// execution plan — from graph statistics, and from a calibration
// micro-bench when Config.Plan enables it — then delegates to the
// chosen CPU-family engine with the resolved shape. The session it
// returns is the chosen engine's session wrapped with plan reporting,
// so trajectories are byte-identical to opening the chosen backend by
// hand with the same knobs.
type autoBackend struct{}

func (autoBackend) Name() string { return "auto" }

func (autoBackend) Description() string {
	return "planner-selected CPU engine: graph stats + calibration pick backend/cohort/shards (see -explain-plan)"
}

// MergesBatches implements BatchMerger: every engine the planner can
// choose is in the CPU family, whose per-query RNG streams make walks
// independent of batch composition.
func (autoBackend) MergesBatches() bool { return true }

// SupportsMemoryTiering implements MemoryTierer: the budget passes
// through to the chosen engine unchanged (all candidates honor it).
func (autoBackend) SupportsMemoryTiering() bool { return true }

// SupportsVersionedGraphs implements VersionedGrapher: all candidate
// engines serve epoch snapshots.
func (autoBackend) SupportsVersionedGraphs() bool { return true }

// Heartbeats implements Heartbeater: every engine the planner can choose
// is in the CPU family, all of which bump Batch.Heartbeat.
func (autoBackend) Heartbeats() bool { return true }

func (autoBackend) Open(g *graph.CSR, cfg Config) (Session, error) {
	if err := cfg.Walk.Validate(g); err != nil {
		return nil, err
	}
	p := NewPlanner(g, cfg)
	pl, err := p.PlanFor(cfg.Walk)
	if err != nil {
		return nil, err
	}
	return openPlanned(g, cfg, pl)
}

// NewPlanner builds a plan.Planner for g from an exec configuration:
// the config's pinned knobs become planning constraints and its Plan
// options tune calibration, with probes executed through this
// registry's own Open path (so every probe session acquires and
// releases its samplers through the sampling registry exactly like a
// served session — a probe can bump a live store's refcount, never
// evict it or leak a reference).
func NewPlanner(g *graph.CSR, cfg Config) *plan.Planner {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cons := plan.Constraints{
		Workers:           workers,
		Shards:            cfg.Shards,
		Cohort:            cfg.Cohort,
		HubCacheBytes:     cfg.HubCacheBytes,
		MemoryBudgetBytes: cfg.MemoryBudgetBytes,
	}
	opts := plan.Options{}
	if cfg.Plan != nil {
		opts = *cfg.Plan
	}
	return plan.New(g, cons, opts, probeRunner(workers))
}

// probeRunner opens calibration probes through the ordinary backend
// Open path, so a probe session acquires and releases its samplers
// exactly like a served one. The planner holds every candidate's probe
// open for the whole sweep and steps them in interleaved rounds (see
// plan.Probe); Close releases the registry sampler borrow.
func probeRunner(workers int) plan.ProbeRunner {
	return func(g *graph.CSR, cand plan.Candidate, pcfg walk.Config, qs []walk.Query, budget int64) (plan.Probe, error) {
		// Contained like probe steps: an Open-path crash (e.g. a sampler
		// build panic) marks the candidate failed instead of unwinding
		// through the planner into its caller.
		var ses Session
		err := fault.Contain("calibration-probe", func() error {
			var err error
			ses, err = Open(cand.Backend, g, Config{
				Walk:              pcfg,
				Workers:           workers,
				Shards:            cand.Shards,
				Cohort:            cand.Cohort,
				MemoryBudgetBytes: budget,
				DiscardPaths:      true,
			})
			return err
		})
		if err != nil {
			return nil, err
		}
		return &execProbe{cand: cand, ses: ses, batch: Batch{Queries: qs}}, nil
	}
}

// execProbe adapts a backend session to the planner's probe handle: one
// timed run of the probe batch per Step.
type execProbe struct {
	cand  plan.Candidate
	ses   Session
	batch Batch
}

func (p *execProbe) Step() (float64, error) {
	if err := fault.CheckTag(fault.CalibrationProbe, p.cand.Backend); err != nil {
		return 0, err
	}
	// Probe runs are contained like served batches: a panicking candidate
	// scores as a failed measurement (Decide skips it) instead of taking
	// down the planner's caller.
	var sps float64
	err := fault.Contain("calibration-probe", func() error {
		start := time.Now()
		res, err := p.ses.Run(context.Background(), p.batch)
		if err != nil {
			return err
		}
		el := time.Since(start).Seconds()
		if el <= 0 || res.Steps == 0 {
			return fmt.Errorf("exec: probe %s took no steps", p.cand)
		}
		sps = float64(res.Steps) / el
		return nil
	})
	if err != nil {
		return 0, err
	}
	return sps, nil
}

func (p *execProbe) Close() error { return p.ses.Close() }

// openPlanned opens pl's chosen engine with cfg's pass-through fields
// and the plan's resolved shape, wrapping the session for reporting.
func openPlanned(g *graph.CSR, cfg Config, pl plan.Plan) (Session, error) {
	inner := cfg
	inner.Plan = nil
	inner.Shards = pl.Shards
	inner.Cohort = pl.Cohort
	inner.HubCacheBytes = pl.HubCacheBytes
	inner.MemoryBudgetBytes = pl.MemoryBudgetBytes
	ses, err := Open(pl.Backend, g, inner)
	if err != nil {
		return nil, err
	}
	return &autoSession{inner: ses, plan: pl}, nil
}

// autoSession wraps the chosen engine's session with plan reporting and
// observed-throughput tracking. Run and Stream delegate unchanged —
// the wrapper adds timing around the call, never inside it — so output
// is byte-identical to the chosen backend's.
type autoSession struct {
	inner Session
	plan  plan.Plan

	mu       sync.Mutex
	observed float64
	runs     int64
}

func (s *autoSession) observe(steps int64, elapsed float64) {
	if steps == 0 || elapsed <= 0 {
		return
	}
	sps := float64(steps) / elapsed
	s.mu.Lock()
	if s.observed == 0 {
		s.observed = sps
	} else {
		s.observed = 0.3*sps + 0.7*s.observed
	}
	s.runs++
	s.mu.Unlock()
}

// Plan returns the resolved plan the session serves.
func (s *autoSession) Plan() plan.Plan { return s.plan }

// PlanReport implements PlanReporter.
func (s *autoSession) PlanReport() *PlanReport {
	s.mu.Lock()
	observed, runs := s.observed, s.runs
	s.mu.Unlock()
	return &PlanReport{
		Backend:              s.plan.Backend,
		Cohort:               s.plan.Cohort,
		Shards:               s.plan.Shards,
		HubCacheBytes:        s.plan.HubCacheBytes,
		MemoryBudgetBytes:    s.plan.MemoryBudgetBytes,
		Source:               s.plan.Source,
		Reason:               s.plan.Reason,
		Revision:             s.plan.Revision,
		PredictedStepsPerSec: s.plan.PredictedStepsPerSec,
		ObservedStepsPerSec:  observed,
		Runs:                 runs,
	}
}

func (s *autoSession) Run(ctx context.Context, batch Batch) (*BatchResult, error) {
	start := time.Now()
	res, err := s.inner.Run(ctx, batch)
	if err != nil {
		return nil, err
	}
	s.observe(res.Steps, time.Since(start).Seconds())
	res.Plan = s.PlanReport()
	return res, nil
}

func (s *autoSession) Stream(ctx context.Context, batch Batch, fn func(WalkOutput) error) error {
	start := time.Now()
	var steps int64
	err := s.inner.Stream(ctx, batch, func(w WalkOutput) error {
		steps += w.Steps
		return fn(w)
	})
	if err != nil {
		return err
	}
	s.observe(steps, time.Since(start).Seconds())
	return nil
}

func (s *autoSession) Close() error { return s.inner.Close() }

// SamplerBytes implements SamplerSizer by delegation.
func (s *autoSession) SamplerBytes() int64 {
	if sz, ok := s.inner.(SamplerSizer); ok {
		return sz.SamplerBytes()
	}
	return 0
}

// MemoryReport delegates the chosen session's tiered-memory accounting.
func (s *autoSession) MemoryReport() *MemoryReport {
	if mr, ok := s.inner.(interface{ MemoryReport() *MemoryReport }); ok {
		return mr.MemoryReport()
	}
	return nil
}

func init() {
	Register(autoBackend{})
}
