package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ridgewalker/internal/baselines"
	"ridgewalker/internal/core"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/hbm"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

func init() {
	Register(simBackend{
		name: "ridgewalker",
		desc: "cycle-level RidgeWalker accelerator simulator (async engine + zero-bubble scheduler)",
		configure: func(cfg Config, ccfg *core.Config) {
			ccfg.Async = !cfg.DisableAsync
			ccfg.DynamicSched = !cfg.DisableDynamicSched
		},
	})
	Register(simBackend{
		name:   "lightrw",
		desc:   "LightRW baseline model (async access, static ring schedule) on the cycle-level simulator",
		system: "LightRW",
		configure: func(cfg Config, ccfg *core.Config) {
			lr := baselines.LightRWCoreConfig(ccfg.Platform, cfg.Walk)
			ccfg.Async = lr.Async
			ccfg.DynamicSched = lr.DynamicSched
			ccfg.BatchSize = lr.BatchSize
		},
	})
	Register(simBackend{
		name:   "suetal",
		desc:   "Su et al. baseline model (blocking multi-walker, static schedule) on the cycle-level simulator",
		system: "SuEtAl",
		configure: func(cfg Config, ccfg *core.Config) {
			su := baselines.SuEtAlCoreConfig(ccfg.Platform, cfg.Walk)
			ccfg.Async = su.Async
			ccfg.DynamicSched = su.DynamicSched
			ccfg.BlockingOutstanding = su.BlockingOutstanding
			ccfg.BatchSize = su.BatchSize
		},
	})
}

// simBackend adapts the cycle-level accelerator simulator (internal/core)
// to the Backend interface. The same simulator hosts RidgeWalker itself and
// the two architecture-twin baselines; configure applies the per-system
// ablation switches.
type simBackend struct {
	name string
	desc string
	// system, when non-empty, labels a baselines.Result built from the run
	// statistics (the simulator-hosted baselines report through both Sim
	// and Model).
	system    string
	configure func(cfg Config, ccfg *core.Config)
}

func (b simBackend) Name() string        { return b.name }
func (b simBackend) Description() string { return b.desc }

func (b simBackend) Open(g *graph.CSR, cfg Config) (Session, error) {
	if cfg.Snapshot != nil {
		return nil, fmt.Errorf("exec: backend %q does not serve versioned-graph snapshots (compact the graph first)", b.name)
	}
	ccfg := core.DefaultConfig(cfg.platform(hbm.U55C), cfg.Walk)
	b.configure(cfg, &ccfg)
	// Run records paths inside the accelerator and reindexes them into
	// batch order unless DiscardPaths; Stream re-enables recording per call
	// and hands each path out the cycle its query retires. Recording is
	// host-side bookkeeping and does not affect simulated timing.
	ccfg.RecordPaths = !cfg.DiscardPaths
	// Borrow the sampler (the flat alias store is O(E)) from the registry
	// once here; each batch gets a fresh accelerator so its cycle
	// counters, channel statistics, and RNG streams start from reset —
	// batches are reproducible and an aborted stream cannot leak
	// in-flight state into the next run.
	ref, err := walk.AcquireSampler(g, ccfg.Walk)
	if err != nil {
		return nil, err
	}
	ccfg.Sampler = ref.Sampler()
	// Validate eagerly so Open reports configuration errors.
	if _, err := core.New(g, ccfg); err != nil {
		ref.Release()
		return nil, err
	}
	return &simSession{backend: b, g: g, ccfg: ccfg, discard: cfg.DiscardPaths, sampler: ref}, nil
}

type simSession struct {
	mu      sync.Mutex // one simulator run at a time
	backend simBackend
	g       *graph.CSR
	ccfg    core.Config
	discard bool
	sampler *sampling.SamplerRef
}

// SamplerBytes reports the resident size of the session's (shared)
// sampler state.
func (s *simSession) SamplerBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sampler == nil {
		return 0
	}
	return sampling.Footprint(s.sampler.Sampler())
}

// result assembles the uniform BatchResult from a finished simulator run.
func (s *simSession) result(st *core.Stats, paths [][]graph.VertexID, steps int64) *BatchResult {
	res := &BatchResult{Paths: paths, Steps: steps, Sim: st}
	if s.backend.system != "" {
		model := baselines.ResultFromStats(s.backend.system, st)
		res.Model = &model
	}
	return res
}

func (s *simSession) Run(ctx context.Context, batch Batch) (*BatchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a, err := core.New(s.g, s.ccfg)
	if err != nil {
		return nil, err
	}
	res, st, err := a.Run(batch.Queries)
	if err != nil {
		return nil, err
	}
	var paths [][]graph.VertexID
	if !s.discard {
		// The accelerator keys paths by query ID; reindex to batch order.
		paths = make([][]graph.VertexID, len(batch.Queries))
		for i, q := range batch.Queries {
			paths[i] = res.Paths[q.ID]
		}
	}
	return s.result(st, paths, res.Steps), nil
}

func (s *simSession) Stream(ctx context.Context, batch Batch, fn func(WalkOutput) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return err
	}
	ccfg := s.ccfg
	ccfg.RecordPaths = true
	a, err := core.New(s.g, ccfg)
	if err != nil {
		return err
	}
	// The simulator is single-threaded; the callback runs on its goroutine,
	// so fn is never called concurrently. ctx is observed at walk
	// granularity (the simulator cannot be preempted mid-cycle).
	var fnErr error
	a.SetOnWalk(func(q uint32, path []graph.VertexID) bool {
		if err := ctx.Err(); err != nil {
			fnErr = err
			return false
		}
		if err := fn(WalkOutput{Query: q, Path: path, Steps: int64(len(path) - 1)}); err != nil {
			fnErr = err
			return false
		}
		return true
	})
	_, _, err = a.Run(batch.Queries)
	if errors.Is(err, core.ErrStopped) && fnErr != nil {
		return fnErr
	}
	return err
}

func (s *simSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sampler != nil {
		s.sampler.Release()
		s.sampler = nil
	}
	return nil
}
