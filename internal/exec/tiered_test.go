package exec

import (
	"context"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

// tieredBudgets are the hot-tier settings of the equivalence matrix:
// all-cold (every row through the compressed arena and decode scratch),
// ~10% of the flat row bytes (mixed hot/cold traffic), and unbounded
// (everything hot — the arena fast path end to end).
func tieredBudgets(g *graph.CSR) []int64 {
	flat := int64(len(g.Col)) * 4
	if g.Weighted() {
		flat *= 2
	}
	return []int64{-1, flat / 10, 1 << 40}
}

// TestTieredEquivalenceMatrix is the tentpole's correctness contract:
// for every algorithm × CPU backend × hot-tier budget, trajectories are
// byte-identical to the flat stores. Content identity of the tiered
// arenas plus unchanged RNG consumption make the tiers invisible to
// results — this pins it across the hot arena path, the cold decode
// path, the per-lane cohort scratch, and the sharded migration fabric.
func TestTieredEquivalenceMatrix(t *testing.T) {
	g := testGraph(t)
	backends := []string{"cpu", "cpu-pipelined", "cpu-sharded"}
	for _, alg := range walk.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			cfg, qs := testWorkload(t, g, alg, 200)
			want, err := walk.Run(g, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, backend := range backends {
				for _, budget := range tieredBudgets(g) {
					ses, err := Open(backend, g, Config{Walk: cfg, Workers: 2, MemoryBudgetBytes: budget})
					if err != nil {
						t.Fatalf("%s budget=%d: %v", backend, budget, err)
					}
					got, err := ses.Run(context.Background(), Batch{Queries: qs})
					if err != nil {
						ses.Close()
						t.Fatalf("%s budget=%d: %v", backend, budget, err)
					}
					if got.Memory == nil {
						ses.Close()
						t.Fatalf("%s budget=%d: no memory report", backend, budget)
					}
					for i := range want.Paths {
						if !equalPath(got.Paths[i], want.Paths[i]) {
							ses.Close()
							t.Fatalf("%s budget=%d query %d: tiered path %v, flat %v",
								backend, budget, i, got.Paths[i], want.Paths[i])
						}
					}
					ses.Close()
				}
			}
		})
	}
}

func equalPath(a, b []graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTieredMemoryReport pins the report plumbing: budgets surface on
// BatchResult and through the MemoryReporter capability, the all-cold
// graph compresses ≥2x, and untiered sessions report nothing.
func TestTieredMemoryReport(t *testing.T) {
	g := testGraph(t)
	cfg, qs := testWorkload(t, g, walk.DeepWalk, 50)
	ses, err := Open("cpu", g, Config{Walk: cfg, MemoryBudgetBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Memory
	if m == nil {
		t.Fatal("tiered session returned no memory report")
	}
	if m.Budget != -1 || m.GraphHotRows != 0 || m.SamplerHotRows != 0 {
		t.Fatalf("all-cold report off: %+v", m)
	}
	if m.GraphColdRatio < 2 {
		t.Fatalf("cold CSR compression %.2fx, want >= 2x", m.GraphColdRatio)
	}
	if m.SamplerBudget == 0 || m.SamplerColdRows == 0 {
		t.Fatalf("DeepWalk should tier the alias store: %+v", m)
	}
	if m.ScratchBoundPerWorker <= 0 {
		t.Fatalf("scratch bound %d, want > 0", m.ScratchBoundPerWorker)
	}
	mr, ok := ses.(MemoryReporter)
	if !ok {
		t.Fatal("cpu session lost the MemoryReporter capability")
	}
	if got := mr.MemoryReport(); got == nil || got.GraphBytes != m.GraphBytes {
		t.Fatalf("capability report %+v, want %+v", got, m)
	}

	flat, err := Open("cpu", g, Config{Walk: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	fres, err := flat.Run(context.Background(), Batch{Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Memory != nil {
		t.Fatal("untiered session attached a memory report")
	}
	if flat.(MemoryReporter).MemoryReport() != nil {
		t.Fatal("untiered capability report should be nil")
	}
}

// TestTieredEquivalenceRMAT18 repeats the trajectory-identity check at
// RMAT-18 (262k vertices, 4.2M edges, Graph500 parameters) — a graph
// whose degree distribution actually exercises the strided cold decode
// on deep rows, unlike the small matrix's. Skipped under -short;
// the acceptance sweep runs it on the full suite.
func TestTieredEquivalenceRMAT18(t *testing.T) {
	if testing.Short() {
		t.Skip("RMAT-18 equivalence matrix is not a -short test")
	}
	g, err := graph.GenerateRMAT(graph.Graph500(18, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	backends := []string{"cpu", "cpu-pipelined", "cpu-sharded"}
	for _, alg := range []walk.Algorithm{walk.URW, walk.DeepWalk, walk.Node2Vec} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg, qs := testWorkload(t, g, alg, 100)
			want, err := walk.Run(g, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, backend := range backends {
				for _, budget := range []int64{-1, graph.AutoMemoryBudget(g)} {
					ses, err := Open(backend, g, Config{Walk: cfg, Workers: 2, MemoryBudgetBytes: budget})
					if err != nil {
						t.Fatalf("%s budget=%d: %v", backend, budget, err)
					}
					got, err := ses.Run(context.Background(), Batch{Queries: qs})
					if err != nil {
						ses.Close()
						t.Fatalf("%s budget=%d: %v", backend, budget, err)
					}
					for i := range want.Paths {
						if !equalPath(got.Paths[i], want.Paths[i]) {
							ses.Close()
							t.Fatalf("%s budget=%d query %d: tiered path diverges from flat",
								backend, budget, i)
						}
					}
					ses.Close()
				}
			}
		})
	}
}

// TestTieredSessionSharing opens tiered sessions on two backends with
// the same budget and checks they share one tiered graph store through
// the acquire cache.
func TestTieredSessionSharing(t *testing.T) {
	g := testGraph(t)
	cfg, _ := testWorkload(t, g, walk.URW, 1)
	a, err := Open("cpu", g, Config{Walk: cfg, MemoryBudgetBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Open("cpu-sharded", g, Config{Walk: cfg, MemoryBudgetBytes: 1 << 16})
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	if n := graph.TieredRefs(g, 1<<16); n != 2 {
		t.Fatalf("tiered store refs %d, want 2", n)
	}
	a.Close()
	b.Close()
	if n := graph.TieredRefs(g, 1<<16); n != 0 {
		t.Fatalf("tiered store refs after close %d, want 0", n)
	}
}
