package exec

import (
	"context"
	"fmt"
	"sync"

	"ridgewalker/internal/baselines"
	"ridgewalker/internal/graph"
)

func init() {
	Register(analyticBackend{
		name: "fastrw",
		desc: "FastRW baseline model (on-chip caching, blocking misses), trace-driven analytic pricing",
		estimate: func(g *graph.CSR, tr *baselines.Trace, cfg Config) baselines.Result {
			fc := baselines.DefaultFastRW()
			if cfg.FastRW != nil {
				fc = *cfg.FastRW
			}
			return baselines.EstimateFastRW(tr, fc)
		},
	})
	Register(analyticBackend{
		name: "gsampler",
		desc: "gSampler baseline model (H100 SIMT super-batching), trace-driven analytic pricing",
		estimate: func(g *graph.CSR, tr *baselines.Trace, cfg Config) baselines.Result {
			gc := baselines.DefaultH100()
			if cfg.GPU != nil {
				gc = *cfg.GPU
			}
			return baselines.EstimateGSampler(g, tr, cfg.Walk, gc)
		},
	})
}

// analyticBackend adapts the trace-driven baseline models (FastRW,
// gSampler) to the Backend interface. Walks execute on the golden CPU
// engine — the models need the real per-walk trace — and the architecture
// model prices the trace; Run reports the modeled performance in
// BatchResult.Model.
type analyticBackend struct {
	name     string
	desc     string
	estimate func(g *graph.CSR, tr *baselines.Trace, cfg Config) baselines.Result
}

func (b analyticBackend) Name() string        { return b.name }
func (b analyticBackend) Description() string { return b.desc }

func (b analyticBackend) Open(g *graph.CSR, cfg Config) (Session, error) {
	if cfg.Snapshot != nil {
		return nil, fmt.Errorf("exec: backend %q does not serve versioned-graph snapshots (compact the graph first)", b.name)
	}
	inner, err := cpuBackend{}.Open(g, cfg)
	if err != nil {
		return nil, err
	}
	return &analyticSession{backend: b, g: g, cfg: cfg, cpu: inner.(*cpuSession)}, nil
}

type analyticSession struct {
	mu      sync.Mutex // serializes trace accumulation per batch
	backend analyticBackend
	g       *graph.CSR
	cfg     Config
	cpu     *cpuSession
}

func (s *analyticSession) Run(ctx context.Context, batch Batch) (*BatchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Stream the walks off the golden engine — the models price lengths and
	// degrees, so paths are only kept when the caller asked for them. Walk
	// lengths are recorded by batch index: the GPU model assigns walks to
	// warps in input order, and completion order is scheduling-dependent.
	res := &BatchResult{}
	n := len(batch.Queries)
	hops := make([]int, n)
	var sumDeg float64
	var visits int64
	if !s.cfg.DiscardPaths {
		res.Paths = make([][]graph.VertexID, n)
	}
	err := s.cpu.streamIndexed(ctx, batch, func(i int, w WalkOutput) error {
		hops[i] = len(w.Path) - 1
		res.Steps += w.Steps
		for _, v := range w.Path {
			sumDeg += float64(s.g.Degree(v))
			visits++
		}
		if res.Paths != nil {
			cp := make([]graph.VertexID, len(w.Path))
			copy(cp, w.Path)
			res.Paths[i] = cp
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tr := baselines.NewTrace(s.g)
	tr.SetWalks(hops, sumDeg, visits)
	model := s.backend.estimate(s.g, tr, s.cfg)
	res.Model = &model
	return res, nil
}

func (s *analyticSession) Stream(ctx context.Context, batch Batch, fn func(WalkOutput) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cpu.Stream(ctx, batch, fn)
}

func (s *analyticSession) Close() error { return s.cpu.Close() }
