package exec

import (
	"context"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/walk"
)

// TestPlacementOracle validates the tiered store's hot-set policy
// against the seed's hbm channel simulator: replaying a real walk
// workload's row-access trace through the hot/cold channel model, the
// descending-degree placement must drain it at least as fast as a
// random placement and a bottom-degree placement with the same hot
// capacity. On a power-law graph the hubs carry the bulk of the
// traffic, so this is exactly what the budget policy banks on — but the
// oracle measures it instead of assuming it.
func TestPlacementOracle(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Graph500(12, 8, 7))
	if err != nil {
		t.Fatal(err)
	}
	cfg := walk.Config{Algorithm: walk.URW, WalkLength: 40, Seed: 11}
	qs, err := walk.RandomQueries(g, cfg, 400, 99)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := Open("cpu", g, Config{Walk: cfg, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	trace := RowTrace(res.Paths)
	if len(trace) == 0 {
		t.Fatal("empty row trace")
	}

	tiered, err := graph.NewTiered(g, 1<<15)
	if err != nil {
		t.Fatal(err)
	}
	if tiered.HotRows == 0 || tiered.HotRows == g.NumVertices {
		t.Fatalf("degenerate placement: %d hot rows of %d", tiered.HotRows, g.NumVertices)
	}

	// Competing placements with the same hot-row capacity: uniformly
	// random rows, and the lowest-degree nonzero rows (the policy's
	// exact inverse).
	capRows := tiered.HotRows
	randomHot := make(map[graph.VertexID]bool, capRows)
	r := rng.New(3)
	for len(randomHot) < capRows {
		randomHot[graph.VertexID(r.Intn(g.NumVertices))] = true
	}
	type vd struct {
		v graph.VertexID
		d int
	}
	asc := make([]vd, 0, g.NumVertices)
	for v := 0; v < g.NumVertices; v++ {
		if d := g.Degree(graph.VertexID(v)); d > 0 {
			asc = append(asc, vd{graph.VertexID(v), d})
		}
	}
	for i := 0; i < len(asc); i++ { // selection by ascending degree, ties by id
		min := i
		for j := i + 1; j < len(asc); j++ {
			if asc[j].d < asc[min].d || (asc[j].d == asc[min].d && asc[j].v < asc[min].v) {
				min = j
			}
		}
		asc[i], asc[min] = asc[min], asc[i]
		if i+1 >= capRows {
			break
		}
	}
	bottomHot := make(map[graph.VertexID]bool, capRows)
	for i := 0; i < capRows && i < len(asc); i++ {
		bottomHot[asc[i].v] = true
	}

	policy := PlacementCost(trace, tiered.IsHot)
	random := PlacementCost(trace, func(v graph.VertexID) bool { return randomHot[v] })
	bottom := PlacementCost(trace, func(v graph.VertexID) bool { return bottomHot[v] })
	t.Logf("oracle cycles over %d accesses: policy=%d random=%d bottom-degree=%d",
		len(trace), policy, random, bottom)
	if policy > random {
		t.Fatalf("degree policy (%d cycles) lost to random placement (%d cycles)", policy, random)
	}
	if policy > bottom {
		t.Fatalf("degree policy (%d cycles) lost to bottom-degree placement (%d cycles)", policy, bottom)
	}
}
