package exec

import (
	"context"
	"reflect"
	"testing"

	"ridgewalker/internal/plan"
	"ridgewalker/internal/walk"
)

// fastCalibration keeps test probe sweeps tiny: few short queries, one
// timed repeat, and probing on the real graph (no subgraph sampling).
func fastCalibration() *plan.Options {
	return &plan.Options{Calibrate: true, Queries: 64, WalkLength: 8, Repeat: 1, SubgraphEdges: -1}
}

// TestAutoEquivalenceMatrix pins the auto backend's core contract:
// whatever engine and shape the planner resolves to, the trajectories
// are byte-identical to opening that backend by hand with the same
// knobs — across all five algorithms, on the static graph and under a
// mutated-snapshot serving view.
func TestAutoEquivalenceMatrix(t *testing.T) {
	g := testGraph(t)
	snap, _ := mutationFixture(t, g, "mixed")
	for _, alg := range walk.Algorithms {
		for _, view := range []string{"static", "mutated-snapshot"} {
			t.Run(alg.String()+"/"+view, func(t *testing.T) {
				cfg, qs := testWorkload(t, g, alg, 200)
				acfg := Config{Walk: cfg, Plan: fastCalibration()}
				if view == "mutated-snapshot" {
					acfg.Snapshot = snap
				}
				auto, err := Open("auto", g, acfg)
				if err != nil {
					t.Fatal(err)
				}
				defer auto.Close()
				got, err := auto.Run(context.Background(), Batch{Queries: qs})
				if err != nil {
					t.Fatal(err)
				}
				pr := got.Plan
				if pr == nil {
					t.Fatal("auto session attached no plan report")
				}
				if pr.Backend == "" || pr.Backend == "auto" {
					t.Fatalf("plan resolved to %q", pr.Backend)
				}
				// Re-run the resolved plan by hand.
				mcfg := Config{
					Walk:              cfg,
					Shards:            pr.Shards,
					Cohort:            pr.Cohort,
					HubCacheBytes:     pr.HubCacheBytes,
					MemoryBudgetBytes: pr.MemoryBudgetBytes,
					Snapshot:          acfg.Snapshot,
				}
				manual, err := Open(pr.Backend, g, mcfg)
				if err != nil {
					t.Fatal(err)
				}
				defer manual.Close()
				want, err := manual.Run(context.Background(), Batch{Queries: qs})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Paths, want.Paths) {
					t.Fatalf("auto (%s) diverged from manually opened %s", pr.Backend, pr.Backend)
				}
			})
		}
	}
}

// TestAutoRespectsMemoryBudget pins the planner's memory contract: a
// stated budget reaches the chosen session verbatim (the probe-side
// scaling never leaks into the plan), and the hub-cache knob — which
// the budget subsumes and the pipelined backend rejects alongside it —
// is dropped rather than forwarded.
func TestAutoRespectsMemoryBudget(t *testing.T) {
	g := testGraph(t)
	cfg, qs := testWorkload(t, g, walk.DeepWalk, 120)
	const budget = 1 << 16
	ses, err := Open("auto", g, Config{
		Walk:              cfg,
		Plan:              fastCalibration(),
		MemoryBudgetBytes: budget,
		HubCacheBytes:     1 << 20, // must be dropped, not forwarded
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Plan
	if pr == nil {
		t.Fatal("no plan report")
	}
	if pr.MemoryBudgetBytes != budget {
		t.Fatalf("plan budget %d, want the stated %d", pr.MemoryBudgetBytes, budget)
	}
	if pr.HubCacheBytes != 0 {
		t.Fatalf("plan forwarded HubCacheBytes %d alongside a budget", pr.HubCacheBytes)
	}
	if res.Memory == nil {
		t.Fatal("budgeted auto session attached no memory report")
	}
	if got := res.Memory.GraphBudget + res.Memory.SamplerBudget; got > budget {
		t.Fatalf("session tier budgets %d exceed the stated budget %d", got, budget)
	}
}

// TestAutoSessionCapabilities: the wrapper must pass the chosen
// session's capabilities through — sampler sizing and the plan report —
// and the backend itself must declare the cpu-family capabilities its
// delegates hold.
func TestAutoSessionCapabilities(t *testing.T) {
	if !MergesBatches("auto") || !SupportsMemoryTiering("auto") || !SupportsVersionedGraphs("auto") {
		t.Fatal("auto must declare the cpu-family capabilities")
	}
	g := testGraph(t)
	cfg, _ := testWorkload(t, g, walk.DeepWalk, 10)
	ses, err := Open("auto", g, Config{Walk: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	rep, ok := ses.(PlanReporter)
	if !ok {
		t.Fatal("auto session does not implement PlanReporter")
	}
	pr := rep.PlanReport()
	if pr.Source != "stats" {
		t.Fatalf("zero-config auto open should plan from stats, got %q", pr.Source)
	}
	sizer, ok := ses.(SamplerSizer)
	if !ok {
		t.Fatal("auto session does not implement SamplerSizer")
	}
	if sizer.SamplerBytes() == 0 {
		t.Fatal("DeepWalk alias store size not delegated")
	}
}
