package exec

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/plan"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

// sessionSampler exposes the registry borrow a cpu-family session holds.
func sessionSampler(t *testing.T, s Session) sampling.Sampler {
	t.Helper()
	switch ses := s.(type) {
	case *cpuSession:
		return ses.sampler.Sampler()
	case *pipelinedSession:
		return ses.sampler.Sampler()
	case *shardedSession:
		return ses.sampler.Sampler()
	}
	t.Fatalf("session %T holds no sampler ref", s)
	return nil
}

// TestSessionsShareSamplerAcrossWalkLengths pins the registry's whole
// point: sessions whose configurations differ only in parameters the
// sampler never reads — walk length, seed, PPR's α — must borrow one
// sampler instance instead of rebuilding O(E) state per configuration.
func TestSessionsShareSamplerAcrossWalkLengths(t *testing.T) {
	g := testGraph(t)
	cfg1 := walk.DefaultConfig(walk.DeepWalk)
	cfg1.WalkLength = 20
	cfg1.Seed = 11
	cfg2 := cfg1
	cfg2.WalkLength = 40
	cfg2.Seed = 99
	spec, err := walk.SamplerSpec(g, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	reg := sampling.DefaultRegistry()
	if n := reg.Refs(g, spec); n != 0 {
		t.Fatalf("stale refs before test: %d", n)
	}
	s1, err := Open("cpu", g, Config{Walk: cfg1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open("cpu", g, Config{Walk: cfg2})
	if err != nil {
		t.Fatal(err)
	}
	if sessionSampler(t, s1) != sessionSampler(t, s2) {
		t.Fatal("sessions differing only in walk length built separate samplers")
	}
	if n := reg.Refs(g, spec); n != 2 {
		t.Fatalf("registry refs = %d, want 2", n)
	}
	// The sharing crosses backends too: pipelined and sharded sessions
	// borrow the same flat store.
	s3, err := Open("cpu-pipelined", g, Config{Walk: cfg2, Cohort: 8})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := Open("cpu-sharded", g, Config{Walk: cfg1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	s5, err := Open("cpu-pipelined", g, Config{Walk: cfg1, Cohort: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range []Session{s3, s4, s5} {
		if sessionSampler(t, s) != sessionSampler(t, s1) {
			t.Fatalf("session %d does not share the registry sampler", i+3)
		}
	}
	if n := reg.Refs(g, spec); n != 5 {
		t.Fatalf("registry refs = %d, want 5", n)
	}
	// Shared state must not change behavior: both walk lengths still
	// match the golden engine.
	for _, tc := range []struct {
		ses Session
		cfg walk.Config
	}{{s1, cfg1}, {s2, cfg2}} {
		qs, err := walk.RandomQueries(g, tc.cfg, 120, 17)
		if err != nil {
			t.Fatal(err)
		}
		want, err := walk.Run(g, qs, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tc.ses.Run(context.Background(), Batch{Queries: qs})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Paths, want.Paths) {
			t.Fatal("shared-sampler session diverged from golden engine")
		}
	}
	// The last Close evicts the sampler from the registry.
	for _, s := range []Session{s1, s2, s3, s4, s5} {
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if n := reg.Refs(g, spec); n != 0 {
		t.Fatalf("refs after closing all sessions = %d, want 0 (evicted)", n)
	}
}

// TestCalibrationProbesAreRegistrySafe pins the planner's sampler
// discipline: calibration probes acquire samplers through the registry
// like any session and release them on probe close, so a sweep leaves
// refcounts exactly where it found them — it neither leaks borrows nor
// evicts the store a live session is walking on.
func TestCalibrationProbesAreRegistrySafe(t *testing.T) {
	g := testGraph(t)
	cfg := walk.DefaultConfig(walk.DeepWalk)
	cfg.WalkLength = 20
	cfg.Seed = 11
	spec, err := walk.SamplerSpec(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := sampling.DefaultRegistry()
	if n := reg.Refs(g, spec); n != 0 {
		t.Fatalf("stale refs before test: %d", n)
	}
	live, err := Open("cpu", g, Config{Walk: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Refs(g, spec); n != 1 {
		t.Fatalf("live session refs = %d, want 1", n)
	}
	liveSampler := sessionSampler(t, live)
	entries := reg.Len()
	// Calibrate on the full graph (SubgraphEdges < 0 disables probe
	// subsampling), so every probe's sampler spec collides with the live
	// session's registry entry — the worst case for a refcount bug.
	p := NewPlanner(g, Config{Walk: cfg, Plan: &plan.Options{
		Calibrate: true, Queries: 64, WalkLength: 8, Repeat: 1, SubgraphEdges: -1,
	}})
	pl, err := p.PlanFor(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Source != "calibrated" {
		t.Fatalf("plan source = %q, want calibrated", pl.Source)
	}
	if n := reg.Refs(g, spec); n != 1 {
		t.Fatalf("refs after calibration = %d, want 1 (probes must release)", n)
	}
	if n := reg.Len(); n != entries {
		t.Fatalf("registry entries %d -> %d across calibration", entries, n)
	}
	if sessionSampler(t, live) != liveSampler {
		t.Fatal("calibration evicted and rebuilt the live session's sampler")
	}
	// The borrowed store is still sound: the live session matches the
	// golden engine after the sweep ran over it.
	qs, err := walk.RandomQueries(g, cfg, 120, 17)
	if err != nil {
		t.Fatal(err)
	}
	want, err := walk.Run(g, qs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := live.Run(context.Background(), Batch{Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Paths, want.Paths) {
		t.Fatal("live session diverged after calibration sweep")
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if n := reg.Refs(g, spec); n != 0 {
		t.Fatalf("refs after close = %d, want 0", n)
	}
}

// TestSamplerBytesCapability: cpu-family sessions report the shared
// sampler footprint; the flat alias store's size is exact (12 bytes per
// edge slot + 8 per locator word).
func TestSamplerBytesCapability(t *testing.T) {
	g := testGraph(t)
	cfg := walk.DefaultConfig(walk.DeepWalk)
	ses, err := Open("cpu", g, Config{Walk: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	sizer, ok := ses.(SamplerSizer)
	if !ok {
		t.Fatal("cpu session does not implement SamplerSizer")
	}
	want := int64(len(g.Col))*12 + int64(g.NumVertices)*8
	if got := sizer.SamplerBytes(); got != want {
		t.Fatalf("SamplerBytes = %d, want %d", got, want)
	}
	uni, err := Open("cpu", g, Config{Walk: walk.DefaultConfig(walk.URW)})
	if err != nil {
		t.Fatal(err)
	}
	defer uni.Close()
	if got := uni.(SamplerSizer).SamplerBytes(); got != 0 {
		t.Fatalf("uniform SamplerBytes = %d, want 0", got)
	}
}

// TestUnweightedEquivalenceMatrix extends the cross-backend matrices to
// unweighted graphs, where Node2Vec takes the rejection path instead of
// the weighted reservoir: every applicable algorithm × backend must stay
// byte-identical to the cpu backend.
func TestUnweightedEquivalenceMatrix(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Graph500(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachLabels(3) // labeled but unweighted: MetaPath runs, DeepWalk cannot
	for _, alg := range []walk.Algorithm{walk.URW, walk.PPR, walk.Node2Vec, walk.MetaPath} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg, qs := testWorkload(t, g, alg, 250)
			cpu, err := Open("cpu", g, Config{Walk: cfg})
			if err != nil {
				t.Fatal(err)
			}
			defer cpu.Close()
			want, err := cpu.Run(context.Background(), Batch{Queries: qs})
			if err != nil {
				t.Fatal(err)
			}
			for _, variant := range []struct {
				backend string
				cfg     Config
			}{
				{"cpu-sharded", Config{Walk: cfg, Shards: 3}},
				{"cpu-pipelined", Config{Walk: cfg, Cohort: 16}},
				{"cpu-pipelined", Config{Walk: cfg, Cohort: 16, Shards: 2}},
			} {
				name := variant.backend
				if variant.cfg.Shards > 0 {
					name = fmt.Sprintf("%s-s%d", name, variant.cfg.Shards)
				}
				ses, err := Open(variant.backend, g, variant.cfg)
				if err != nil {
					t.Fatal(err)
				}
				got, err := ses.Run(context.Background(), Batch{Queries: qs})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Paths, want.Paths) {
					t.Fatalf("%s paths differ from cpu on unweighted graph", name)
				}
				if err := ses.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestNaNParametersRejected pins the validation guard the registry
// depends on: NaN p/q (or α) must fail Open — a NaN inside a registry
// map key would be unfindable and undeletable, leaking one entry per
// session open.
func TestNaNParametersRejected(t *testing.T) {
	g := testGraph(t)
	nan := math.NaN()
	n2v := walk.DefaultConfig(walk.Node2Vec)
	n2v.P = nan
	if _, err := Open("cpu", g, Config{Walk: n2v}); err == nil {
		t.Fatal("NaN p accepted")
	}
	n2v = walk.DefaultConfig(walk.Node2Vec)
	n2v.Q = nan
	if _, err := Open("cpu", g, Config{Walk: n2v}); err == nil {
		t.Fatal("NaN q accepted")
	}
	ppr := walk.DefaultConfig(walk.PPR)
	ppr.Alpha = nan
	if _, err := Open("cpu", g, Config{Walk: ppr}); err == nil {
		t.Fatal("NaN alpha accepted")
	}
}
