package exec

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/walk"
)

// testGraph returns a weighted, labeled RMAT graph usable by every
// algorithm.
func testGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.Graph500(10, 8, 5))
	if err != nil {
		t.Fatal(err)
	}
	g.AttachWeights()
	g.AttachLabels(3)
	return g
}

func testWorkload(t testing.TB, g *graph.CSR, alg walk.Algorithm, n int) (walk.Config, []walk.Query) {
	t.Helper()
	cfg := walk.DefaultConfig(alg)
	cfg.WalkLength = 20
	cfg.Seed = 11
	qs, err := walk.RandomQueries(g, cfg, n, 17)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, qs
}

func TestRegistryHasAllBackends(t *testing.T) {
	want := []string{"auto", "cpu", "cpu-pipelined", "cpu-sharded", "fastrw", "gsampler", "lightrw", "ridgewalker", "suetal"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if b.Name() != name || b.Description() == "" {
			t.Fatalf("backend %q: name %q, description %q", name, b.Name(), b.Description())
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestCPURunMatchesGoldenEngine asserts the cpu backend's Run output is
// byte-identical to walk.Run for every algorithm, at several worker counts.
func TestCPURunMatchesGoldenEngine(t *testing.T) {
	g := testGraph(t)
	for _, alg := range walk.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			cfg, qs := testWorkload(t, g, alg, 300)
			want, err := walk.Run(g, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				ses, err := Open("cpu", g, Config{Walk: cfg, Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				got, err := ses.Run(context.Background(), Batch{Queries: qs})
				if err != nil {
					t.Fatal(err)
				}
				if got.Steps != want.Steps {
					t.Fatalf("workers=%d: steps %d, want %d", workers, got.Steps, want.Steps)
				}
				if !reflect.DeepEqual(got.Paths, want.Paths) {
					t.Fatalf("workers=%d: paths differ from walk.Run", workers)
				}
				// A second batch on the same session must be identical:
				// walker state reuse must not leak across batches.
				again, err := ses.Run(context.Background(), Batch{Queries: qs})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(again.Paths, want.Paths) {
					t.Fatalf("workers=%d: second batch differs", workers)
				}
				if err := ses.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestCPUStreamMatchesRun asserts streamed walks reassemble into exactly
// the Run result for every algorithm.
func TestCPUStreamMatchesRun(t *testing.T) {
	g := testGraph(t)
	for _, alg := range walk.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			cfg, qs := testWorkload(t, g, alg, 200)
			want, err := walk.Run(g, qs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ses, err := Open("cpu", g, Config{Walk: cfg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer ses.Close()
			paths := make([][]graph.VertexID, len(qs))
			var steps int64
			err = ses.Stream(context.Background(), Batch{Queries: qs}, func(w WalkOutput) error {
				if paths[w.Query] != nil {
					return fmt.Errorf("query %d delivered twice", w.Query)
				}
				cp := make([]graph.VertexID, len(w.Path))
				copy(cp, w.Path)
				paths[w.Query] = cp
				steps += w.Steps
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if steps != want.Steps {
				t.Fatalf("streamed steps %d, want %d", steps, want.Steps)
			}
			if !reflect.DeepEqual(paths, want.Paths) {
				t.Fatal("streamed paths differ from walk.Run")
			}
		})
	}
}

// TestSimBackendsRunAndStream exercises every simulator-hosted backend
// through both entry points and validates the walks against the graph.
func TestSimBackendsRunAndStream(t *testing.T) {
	if testing.Short() {
		t.Skip("simulator runs are slow")
	}
	g := testGraph(t)
	cfg, qs := testWorkload(t, g, walk.URW, 150)
	for _, name := range []string{"ridgewalker", "lightrw", "suetal"} {
		t.Run(name, func(t *testing.T) {
			ses, err := Open(name, g, Config{Walk: cfg})
			if err != nil {
				t.Fatal(err)
			}
			defer ses.Close()
			res, err := ses.Run(context.Background(), Batch{Queries: qs})
			if err != nil {
				t.Fatal(err)
			}
			if res.Sim == nil || res.Sim.QueriesDone != len(qs) {
				t.Fatalf("sim stats missing or incomplete: %+v", res.Sim)
			}
			if len(res.Paths) != len(qs) || res.Steps == 0 {
				t.Fatalf("paths %d steps %d", len(res.Paths), res.Steps)
			}
			if err := walk.ValidatePaths(g, &walk.Result{Paths: res.Paths}, cfg); err != nil {
				t.Fatal(err)
			}
			if name != "ridgewalker" && res.Model == nil {
				t.Fatal("baseline backend did not report a model result")
			}
			// Stream must deliver every query exactly once without keeping
			// paths, and repeated batches must be reproducible.
			seen := make(map[uint32]int)
			var steps int64
			err = ses.Stream(context.Background(), Batch{Queries: qs}, func(w WalkOutput) error {
				seen[w.Query]++
				steps += w.Steps
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != len(qs) {
				t.Fatalf("streamed %d distinct queries, want %d", len(seen), len(qs))
			}
			if steps != res.Steps {
				t.Fatalf("streamed steps %d, run steps %d (fresh accelerator per batch should reproduce)", steps, res.Steps)
			}
		})
	}
}

// TestAnalyticBackends checks the trace-driven backends price batches and
// report model results deterministically.
func TestAnalyticBackends(t *testing.T) {
	g := testGraph(t)
	cfg, qs := testWorkload(t, g, walk.URW, 300)
	for _, name := range []string{"fastrw", "gsampler"} {
		t.Run(name, func(t *testing.T) {
			ses, err := Open(name, g, Config{Walk: cfg, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer ses.Close()
			a, err := ses.Run(context.Background(), Batch{Queries: qs})
			if err != nil {
				t.Fatal(err)
			}
			if a.Model == nil || a.Model.ThroughputMSteps <= 0 {
				t.Fatalf("model result missing: %+v", a.Model)
			}
			if len(a.Paths) != len(qs) {
				t.Fatalf("paths %d, want %d", len(a.Paths), len(qs))
			}
			b, err := ses.Run(context.Background(), Batch{Queries: qs})
			if err != nil {
				t.Fatal(err)
			}
			if *a.Model != *b.Model {
				t.Fatalf("model not deterministic across batches:\n%+v\n%+v", a.Model, b.Model)
			}
		})
	}
}

// TestStreamLargeWorkloadWithoutMaterializing streams a >1M-step workload
// and checks that no path survives delivery — the buffer is recycled, so
// retaining it would corrupt earlier outputs, which the checksum detects.
func TestStreamLargeWorkloadWithoutMaterializing(t *testing.T) {
	g := testGraph(t)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 50
	cfg.Seed = 3
	qs, err := walk.RandomQueries(g, cfg, 40_000, 9)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := Open("cpu", g, Config{Walk: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	var walks, steps int64
	err = ses.Stream(context.Background(), Batch{Queries: qs}, func(w WalkOutput) error {
		walks++
		steps += w.Steps
		if int64(len(w.Path)-1) != w.Steps {
			return fmt.Errorf("query %d: path length %d vs steps %d", w.Query, len(w.Path), w.Steps)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if walks != int64(len(qs)) {
		t.Fatalf("delivered %d walks, want %d", walks, len(qs))
	}
	if steps < 1_000_000 {
		t.Fatalf("workload too small for the acceptance criterion: %d steps", steps)
	}
}

func TestStreamCallbackErrorStopsRun(t *testing.T) {
	g := testGraph(t)
	cfg, qs := testWorkload(t, g, walk.URW, 500)
	boom := errors.New("boom")
	for _, name := range []string{"cpu", "ridgewalker"} {
		t.Run(name, func(t *testing.T) {
			if name == "ridgewalker" && testing.Short() {
				t.Skip("simulator runs are slow")
			}
			ses, err := Open(name, g, Config{Walk: cfg})
			if err != nil {
				t.Fatal(err)
			}
			defer ses.Close()
			n := 0
			err = ses.Stream(context.Background(), Batch{Queries: qs}, func(WalkOutput) error {
				n++
				if n == 10 {
					return boom
				}
				return nil
			})
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want %v", err, boom)
			}
		})
	}
}

func TestContextCancellation(t *testing.T) {
	g := testGraph(t)
	cfg, qs := testWorkload(t, g, walk.URW, 500)
	ses, err := Open("cpu", g, Config{Walk: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ses.Run(ctx, Batch{Queries: qs}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx: %v", err)
	}
	if err := ses.Stream(ctx, Batch{Queries: qs}, func(WalkOutput) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("Stream on cancelled ctx: %v", err)
	}
}

func TestOpenValidatesWorkload(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.Balanced(8, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	// DeepWalk needs weights; this graph has none.
	cfg := walk.DefaultConfig(walk.DeepWalk)
	for _, name := range Names() {
		if _, err := Open(name, g, Config{Walk: cfg}); err == nil {
			t.Errorf("backend %q accepted DeepWalk on an unweighted graph", name)
		}
	}
}

func TestDiscardPaths(t *testing.T) {
	g := testGraph(t)
	cfg, qs := testWorkload(t, g, walk.URW, 100)
	ses, err := Open("cpu", g, Config{Walk: cfg, DiscardPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths != nil {
		t.Fatal("DiscardPaths kept paths")
	}
	if res.Steps == 0 {
		t.Fatal("no steps counted")
	}
}

// TestWalkerZeroAllocations pins the zero-allocation claim of the CPU hot
// path: steady-state walking allocates nothing per step (and nothing per
// query) for any algorithm.
func TestWalkerZeroAllocations(t *testing.T) {
	g := testGraph(t)
	for _, alg := range walk.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			cfg, qs := testWorkload(t, g, alg, 64)
			w, err := walk.NewWalker(g, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm-up: let the buffer reach capacity.
			for _, q := range qs {
				w.Walk(q)
			}
			i := 0
			allocs := testing.AllocsPerRun(200, func() {
				w.Walk(qs[i%len(qs)])
				i++
			})
			if allocs != 0 {
				t.Fatalf("%v allocs per walk, want 0", allocs)
			}
		})
	}
}

// TestMergesBatchesCapability pins which backends declare the batch-merge
// capability the serving layer keys on: exactly the cpu family (whose
// per-query RNG streams make walks independent of batch composition).
func TestMergesBatchesCapability(t *testing.T) {
	want := map[string]bool{
		"cpu": true, "cpu-sharded": true, "cpu-pipelined": true,
		"ridgewalker": false, "lightrw": false, "suetal": false,
		"fastrw": false, "gsampler": false,
	}
	for name, m := range want {
		if got := MergesBatches(name); got != m {
			t.Errorf("MergesBatches(%q) = %v, want %v", name, got, m)
		}
	}
	if MergesBatches("nope") {
		t.Error("unknown backend reported mergeable")
	}
}
