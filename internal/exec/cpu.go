package exec

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"ridgewalker/internal/fault"
	"ridgewalker/internal/graph"
	"ridgewalker/internal/sampling"
	"ridgewalker/internal/walk"
)

func init() {
	Register(cpuBackend{})
}

// cpuBackend is the ThunderRW-style multi-core software engine. It is the
// serving hot path: a fixed pool of walkers, each owning a reused path
// buffer and RNG stream, walks queries with zero allocations per step.
type cpuBackend struct{}

func (cpuBackend) Name() string { return "cpu" }

func (cpuBackend) Description() string {
	return "multi-core software engine (ThunderRW-style), allocation-free hot path"
}

// MergesBatches implements BatchMerger: per-query RNG streams make walks
// independent of batch composition.
func (cpuBackend) MergesBatches() bool { return true }

// SupportsMemoryTiering implements MemoryTierer: walkers advance through
// per-worker TierViews when a budget is set.
func (cpuBackend) SupportsMemoryTiering() bool { return true }

// Heartbeats implements Heartbeater: the chunk loop bumps
// Batch.Heartbeat at its every-64-walks checkpoint.
func (cpuBackend) Heartbeats() bool { return true }

// SupportsVersionedGraphs implements VersionedGrapher: walkers consult
// the epoch overlay through their staged row views.
func (cpuBackend) SupportsVersionedGraphs() bool { return true }

func (cpuBackend) Open(g *graph.CSR, cfg Config) (Session, error) {
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("exec: cpu workers %d, want >= 0", cfg.Workers)
	}
	workers := cfg.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// One sampler (flat alias store, schema state) borrowed read-only
	// from the process-wide registry — shared with every other session
	// whose configuration maps to the same sampler spec — and one walker
	// (reused buffer + RNG) per worker. A memory budget swaps both
	// borrows for their tiered counterparts; each walker then advances
	// through its own TierView (per-worker cold-row decode scratch).
	ref, ts, err := acquireWalkState(g, cfg)
	if err != nil {
		return nil, err
	}
	s := &cpuSession{g: g, discard: cfg.DiscardPaths, sampler: ref, tier: ts}
	s.walkers = make([]*walk.Walker, workers)
	for i := range s.walkers {
		s.walkers[i] = walk.NewWalkerWithSampler(g, cfg.Walk, ref.Sampler())
		if ts != nil {
			s.walkers[i].SetTierView(graph.NewTierView(ts.gref.Store()))
		}
		if cfg.Snapshot != nil {
			s.walkers[i].SetSnapshot(cfg.Snapshot)
		}
	}
	return s, nil
}

type cpuSession struct {
	mu      sync.Mutex // serializes Run/Stream: walkers are single-batch state
	g       *graph.CSR
	discard bool
	sampler *sampling.SamplerRef
	tier    *tierState
	walkers []*walk.Walker
}

// MemoryReport implements MemoryReporter (nil for untiered sessions).
func (s *cpuSession) MemoryReport() *MemoryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tier.report()
}

// SamplerBytes reports the resident size of the session's (shared)
// sampler state.
func (s *cpuSession) SamplerBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sampler == nil {
		return 0
	}
	return sampling.Footprint(s.sampler.Sampler())
}

// forEachWalk partitions the batch into contiguous chunks, one per worker,
// and invokes each worker's emit for every finished walk. The path passed
// to emit aliases the worker's reused buffer.
func (s *cpuSession) forEachWalk(ctx context.Context, batch Batch,
	emit func(worker, index int, q walk.Query, path []graph.VertexID, steps int64) error) error {
	workers := len(s.walkers)
	if workers == 0 {
		return fmt.Errorf("exec: session is closed")
	}
	hb := batch.Heartbeat
	return runChunked(ctx, len(batch.Queries), workers, func(w, lo, hi int, stopped func() bool) error {
		if err := fault.CheckTag(fault.BatchExec, "cpu"); err != nil {
			return err
		}
		walker := s.walkers[w]
		for i := lo; i < hi; i++ {
			if i&0x3f == 0 {
				if hb != nil {
					hb.Add(1)
				}
				if stopped() {
					if err := ctx.Err(); err != nil {
						return err
					}
					return errStopped
				}
			}
			q := batch.Queries[i]
			path, steps := walker.Walk(q)
			if err := emit(w, i, q, path, steps); err != nil {
				return err
			}
		}
		return nil
	})
}

func (s *cpuSession) Run(ctx context.Context, batch Batch) (*BatchResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res := &BatchResult{}
	if !s.discard {
		res.Paths = make([][]graph.VertexID, len(batch.Queries))
	}
	var steps atomic.Int64
	err := s.forEachWalk(ctx, batch, func(_, i int, _ walk.Query, path []graph.VertexID, st int64) error {
		if !s.discard {
			cp := make([]graph.VertexID, len(path))
			copy(cp, path)
			res.Paths[i] = cp
		}
		steps.Add(st)
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Steps = steps.Load()
	res.Memory = s.tier.report()
	return res, nil
}

func (s *cpuSession) Stream(ctx context.Context, batch Batch, fn func(WalkOutput) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var outMu sync.Mutex // fn contract: never called concurrently
	return s.forEachWalk(ctx, batch, func(_, _ int, q walk.Query, path []graph.VertexID, st int64) error {
		outMu.Lock()
		defer outMu.Unlock()
		return fn(WalkOutput{Query: q.ID, Path: path, Steps: st})
	})
}

// streamIndexed is Stream plus the query's batch index — used by the
// analytic backends, whose pricing models need walk lengths in input order.
// Like Stream, fn is never called concurrently and the path is reused.
func (s *cpuSession) streamIndexed(ctx context.Context, batch Batch, fn func(index int, w WalkOutput) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var outMu sync.Mutex
	return s.forEachWalk(ctx, batch, func(_, i int, q walk.Query, path []graph.VertexID, st int64) error {
		outMu.Lock()
		defer outMu.Unlock()
		return fn(i, WalkOutput{Query: q.ID, Path: path, Steps: st})
	})
}

func (s *cpuSession) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.walkers = nil
	if s.sampler != nil {
		s.sampler.Release()
		s.sampler = nil
	}
	s.tier.release() // idempotent with the sampler release above
	s.tier = nil
	return nil
}
