package exec

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"ridgewalker/internal/graph"
	"ridgewalker/internal/rng"
	"ridgewalker/internal/walk"
)

// irregularTestGraph builds a directed graph with the pathologies the
// sharded engine must survive: zero-out-degree vertices (walks terminate
// mid-flight on arrival — paper Fig. 1b), self-loops (a "migration" to the
// same vertex must stay put), and skewed degrees. Weighted and labeled so
// every algorithm runs.
func irregularTestGraph(t testing.TB) *graph.CSR {
	t.Helper()
	const n = 600
	r := rng.New(99)
	var edges []graph.Edge
	for i := 0; i < 6*n; i++ {
		src := graph.VertexID(r.Intn(n))
		dst := graph.VertexID(r.Intn(n))
		if src < 40 {
			continue // vertices [0,40) keep zero out-degree: sinks
		}
		edges = append(edges, graph.Edge{Src: src, Dst: dst})
	}
	for v := 50; v < n; v += 13 {
		edges = append(edges, graph.Edge{Src: graph.VertexID(v), Dst: graph.VertexID(v)})
	}
	g, err := graph.Build(n, edges, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.ZeroOutDegreeCount() < 40 {
		t.Fatalf("test graph lost its sinks: %d", g.ZeroOutDegreeCount())
	}
	g.AttachWeights()
	g.AttachLabels(3)
	return g
}

// TestShardedEquivalenceMatrix is the cross-backend equivalence matrix:
// every algorithm × shard counts {1,2,4,7} on a graph with sinks and
// self-loops must be byte-identical to the cpu backend (itself pinned to
// walk.Run by TestCPURunMatchesGoldenEngine).
func TestShardedEquivalenceMatrix(t *testing.T) {
	g := irregularTestGraph(t)
	for _, alg := range walk.Algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			cfg, qs := testWorkload(t, g, alg, 350)
			cpu, err := Open("cpu", g, Config{Walk: cfg})
			if err != nil {
				t.Fatal(err)
			}
			defer cpu.Close()
			want, err := cpu.Run(context.Background(), Batch{Queries: qs})
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 4, 7} {
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					ses, err := Open("cpu-sharded", g, Config{Walk: cfg, Shards: shards})
					if err != nil {
						t.Fatal(err)
					}
					defer ses.Close()
					got, err := ses.Run(context.Background(), Batch{Queries: qs})
					if err != nil {
						t.Fatal(err)
					}
					if got.Steps != want.Steps {
						t.Fatalf("steps %d, want %d", got.Steps, want.Steps)
					}
					if !reflect.DeepEqual(got.Paths, want.Paths) {
						t.Fatal("sharded paths differ from cpu backend")
					}
					// Session reuse: a second batch must be identical.
					again, err := ses.Run(context.Background(), Batch{Queries: qs})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(again.Paths, want.Paths) {
						t.Fatal("second sharded batch differs")
					}
				})
			}
		})
	}
}

// TestShardedStreamMatchesRun pins the Stream entry point: streamed walks
// reassembled by query ID equal the Run result.
func TestShardedStreamMatchesRun(t *testing.T) {
	g := irregularTestGraph(t)
	for _, alg := range []walk.Algorithm{walk.URW, walk.Node2Vec} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg, qs := testWorkload(t, g, alg, 250)
			ses, err := Open("cpu-sharded", g, Config{Walk: cfg, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer ses.Close()
			want, err := ses.Run(context.Background(), Batch{Queries: qs})
			if err != nil {
				t.Fatal(err)
			}
			paths := make([][]graph.VertexID, len(qs))
			var steps int64
			err = ses.Stream(context.Background(), Batch{Queries: qs}, func(w WalkOutput) error {
				if paths[w.Query] != nil {
					return fmt.Errorf("query %d delivered twice", w.Query)
				}
				cp := make([]graph.VertexID, len(w.Path))
				copy(cp, w.Path)
				paths[w.Query] = cp
				steps += w.Steps
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if steps != want.Steps {
				t.Fatalf("streamed steps %d, want %d", steps, want.Steps)
			}
			if !reflect.DeepEqual(paths, want.Paths) {
				t.Fatal("streamed paths differ from Run")
			}
		})
	}
}

func TestShardedOpenValidation(t *testing.T) {
	g := irregularTestGraph(t)
	cfg := walk.DefaultConfig(walk.URW)
	cfg.WalkLength = 10
	if _, err := Open("cpu-sharded", g, Config{Walk: cfg, Shards: -1}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := Open("cpu-sharded", g, Config{Walk: cfg, Shards: g.NumVertices + 1}); err == nil {
		t.Fatal("shards > vertices accepted")
	}
	// Closed sessions must refuse work.
	ses, err := Open("cpu-sharded", g, Config{Walk: cfg, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Run(context.Background(), Batch{Queries: []walk.Query{{ID: 0, Start: 100}}}); err == nil {
		t.Fatal("Run on closed session accepted")
	}
	// Backend parity: the empty graph opens everywhere else (Validate and
	// ReadBinary accept it), so cpu-sharded must open it too.
	empty, err := graph.Build(0, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	ses, err = Open("cpu-sharded", empty, Config{Walk: cfg})
	if err != nil {
		t.Fatalf("empty graph rejected: %v", err)
	}
	if err := ses.Close(); err != nil {
		t.Fatal(err)
	}
	// Tiny graphs must still open with the default shard count.
	tiny, err := graph.Build(2, []graph.Edge{{Src: 0, Dst: 1}}, false)
	if err != nil {
		t.Fatal(err)
	}
	ses, err = Open("cpu-sharded", tiny, Config{Walk: cfg})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: []walk.Query{{ID: 0, Start: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("no steps on tiny graph")
	}
}

// TestShardedDiscardPaths mirrors TestDiscardPaths for the sharded
// backend.
func TestShardedDiscardPaths(t *testing.T) {
	g := irregularTestGraph(t)
	cfg, qs := testWorkload(t, g, walk.URW, 120)
	ses, err := Open("cpu-sharded", g, Config{Walk: cfg, Shards: 3, DiscardPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ses.Close()
	res, err := ses.Run(context.Background(), Batch{Queries: qs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths != nil {
		t.Fatal("DiscardPaths kept paths")
	}
	if res.Steps == 0 {
		t.Fatal("no steps counted")
	}
}
