package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"ridgewalker/internal/fault"
)

// errStopped is returned by a worker to bail out quietly after another
// worker already failed; it is never surfaced to callers.
var errStopped = errors.New("exec: stopped")

// runChunked is the CPU sessions' shared fan-out scaffolding: it
// partitions [0, n) into contiguous per-worker chunks and runs each chunk
// on its own goroutine through run(worker, lo, hi, stopped). run should
// poll stopped() periodically and then return ctx.Err() if the context
// was cancelled or errStopped to stand down after another worker's
// failure. The first real error wins; otherwise the context error (if
// any) is returned.
func runChunked(ctx context.Context, n, workers int, run func(w, lo, hi int, stopped func() bool) error) error {
	var (
		stop     atomic.Bool
		firstErr error
		errMu    sync.Mutex
		wg       sync.WaitGroup
	)
	stopped := func() bool { return stop.Load() || ctx.Err() != nil }
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			// Panic firewall: a crash in one worker's chunk (walker bug,
			// corrupted row, injected fault) becomes a typed engine fault
			// that fails the batch, never the process.
			err := fault.Contain("exec-worker", func() error {
				return run(w, lo, hi, stopped)
			})
			if err != nil && err != errStopped {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
				stop.Store(true)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}
